// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see EXPERIMENTS.md for the index):
//
//	BenchmarkFig1aCodeLineTimeline — Figure 1 top panel
//	BenchmarkFig1bAddressTimeline  — Figure 1 middle panel
//	BenchmarkFig1cCounterTimeline  — Figure 1 bottom panel
//	BenchmarkBandwidthByRegion     — in-text bandwidth table (a1/a2/B)
//	BenchmarkObjectAccounting      — in-text object sizes (617/89 MB ratio)
//	BenchmarkGroupingResolution    — preliminary-analysis experiment
//	BenchmarkMultiplexing          — single-run load+store capture
//
// plus ablation benches over the design choices called out in DESIGN.md and
// microbenchmarks of the substrates. Custom metrics carry the reproduced
// numbers (units suffixed per metric); the paper's absolute Jureca values
// are not expected to match — the shape criteria are listed in
// EXPERIMENTS.md and asserted in the integration tests.
package repro_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/hpcg"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/pebs"
	"repro/internal/reuse"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchConfig is the deterministic monitoring setup used by the harness.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Monitor.MuxQuantumNs = 0
	cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.Monitor.PEBS.Period = 400
	cfg.Monitor.PEBS.Randomize = false
	cfg.Monitor.PEBS.LatencyThreshold = 0
	return cfg
}

// benchParams is the scaled HPCG problem used by the figure benches (the
// paper used 104³ on real hardware; the fast-pathed simulator defaults to
// 32³ with the paper's 4 multigrid levels). REPRO_BENCH_NX overrides the
// box dimension — e.g. REPRO_BENCH_NX=16 reproduces the historical scale
// for benchstat comparisons, REPRO_BENCH_NX=104 runs paper scale.
func benchParams() hpcg.Params {
	nx := 32
	if s := os.Getenv("REPRO_BENCH_NX"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			nx = v
		}
	}
	// Paper-style 4-level multigrid at 32³ and above; the historical 16³
	// scale keeps its original 2 levels so benchstat series stay
	// comparable. REPRO_BENCH_MG overrides.
	levels := 4
	if nx < 32 {
		levels = 2
	}
	if s := os.Getenv("REPRO_BENCH_MG"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			levels = v
		}
	}
	for levels > 1 && nx%(1<<(levels-1)) != 0 {
		levels--
	}
	return hpcg.Params{NX: nx, NY: nx, NZ: nx, MGLevels: levels, MaxIters: 3}
}

func runHPCG(b *testing.B, cfg core.Config, params hpcg.Params) *core.HPCGRun {
	b.Helper()
	run, err := core.RunHPCG(cfg, params)
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkFig1aCodeLineTimeline regenerates the top panel of Figure 1:
// the folded source-code position over normalized time, whose phase
// sequence is SYMGS, SpMV, MG, SYMGS, SpMV (A B C D E).
func BenchmarkFig1aCodeLineTimeline(b *testing.B) {
	var phases, letters int
	for i := 0; i < b.N; i++ {
		run := runHPCG(b, benchConfig(), benchParams())
		if err := run.Figure1().RenderCodeLines(io.Discard); err != nil {
			b.Fatal(err)
		}
		phases = len(run.Folded.Phases)
		seen := map[byte]bool{}
		for _, pp := range run.Paper {
			if pp.Label != "-" {
				seen[pp.Label[0]|0x20] = true
			}
		}
		letters = len(seen)
	}
	b.ReportMetric(float64(phases), "phases")
	b.ReportMetric(float64(letters), "paper-letters")
}

// BenchmarkFig1bAddressTimeline regenerates the middle panel: folded
// addresses with load/store distinction and object annotation. Metrics:
// folded samples, and stores observed in the matrix (read-only) region —
// the paper's key observation is that this is zero.
func BenchmarkFig1bAddressTimeline(b *testing.B) {
	var samples, matrixStores, matrixLoads uint64
	for i := 0; i < b.N; i++ {
		run := runHPCG(b, benchConfig(), benchParams())
		if err := run.Figure1().RenderAddresses(io.Discard); err != nil {
			b.Fatal(err)
		}
		samples = uint64(len(run.Folded.Mem))
		if m := run.MatrixGroup(); m != nil {
			matrixStores = m.Stores
			matrixLoads = m.Loads
		}
	}
	b.ReportMetric(float64(samples), "folded-samples")
	b.ReportMetric(float64(matrixLoads), "matrix-loads")
	b.ReportMetric(float64(matrixStores), "matrix-stores")
}

// BenchmarkFig1cCounterTimeline regenerates the bottom panel: MIPS and
// per-instruction miss curves. Metrics: peak folded MIPS (paper: bounded by
// ~1500 at 2.5 GHz) and mean IPC (paper: ~0.6).
func BenchmarkFig1cCounterTimeline(b *testing.B) {
	var peak, ipc float64
	for i := 0; i < b.N; i++ {
		run := runHPCG(b, benchConfig(), benchParams())
		if err := run.Figure1().RenderCounters(io.Discard); err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, v := range run.Folded.MIPS() {
			if v > peak {
				peak = v
			}
		}
		ipc = run.Folded.MeanIPC()
	}
	b.ReportMetric(peak, "peak-MIPS")
	b.ReportMetric(ipc*1000, "mIPC")
}

// BenchmarkBandwidthByRegion regenerates the in-text bandwidth comparison:
// paper values a1=4197, a2=4315, B=6427 MB/s (shape: B > a2 >= a1).
func BenchmarkBandwidthByRegion(b *testing.B) {
	var a1bw, a2bw, bbw float64
	for i := 0; i < b.N; i++ {
		run := runHPCG(b, benchConfig(), benchParams())
		if p, ok := run.PhaseByLabel("a1"); ok {
			a1bw = p.SpanBandwidth / 1e6
		}
		if p, ok := run.PhaseByLabel("a2"); ok {
			a2bw = p.SpanBandwidth / 1e6
		}
		if p, ok := run.PhaseByLabel("B"); ok {
			bbw = p.SpanBandwidth / 1e6
		}
	}
	b.ReportMetric(a1bw, "a1-MB/s")
	b.ReportMetric(a2bw, "a2-MB/s")
	b.ReportMetric(bbw, "B-MB/s")
	if a1bw > 0 {
		b.ReportMetric(bbw/a1bw, "B/a1-ratio")
	}
}

// BenchmarkObjectAccounting regenerates the object-size accounting: the
// paper's two groups are 617 MB and 89 MB (ratio 6.93) at 104³; the ratio
// is size-invariant in our generator (540+ vs 80 bytes per row).
func BenchmarkObjectAccounting(b *testing.B) {
	var ratio float64
	var matrixRefs, mapRefs uint64
	for i := 0; i < b.N; i++ {
		run := runHPCG(b, benchConfig(), benchParams())
		m, g := run.MatrixGroup(), run.MapGroup()
		if m == nil || g == nil {
			b.Fatal("groups missing")
		}
		ratio = float64(m.Bytes) / float64(g.Bytes)
		matrixRefs, mapRefs = m.Refs, g.Refs
	}
	b.ReportMetric(ratio, "size-ratio")
	b.ReportMetric(float64(matrixRefs), "matrix-refs")
	b.ReportMetric(float64(mapRefs), "map-refs")
}

// BenchmarkGroupingResolution regenerates the preliminary-analysis
// experiment: sample resolution rate without and with allocation grouping.
func BenchmarkGroupingResolution(b *testing.B) {
	var ungrouped, grouped float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Monitor.MinTrackSize = 1024
		pu := benchParams()
		pu.DisableGrouping = true
		runU := runHPCG(b, cfg, pu)
		runG := runHPCG(b, cfg, benchParams())
		ungrouped = runU.Session.Mon.Registry().ResolutionRate()
		grouped = runG.Session.Mon.Registry().ResolutionRate()
	}
	b.ReportMetric(ungrouped*100, "ungrouped-%")
	b.ReportMetric(grouped*100, "grouped-%")
}

// BenchmarkMultiplexing regenerates the single-run load+store capture: with
// multiplexing on, one run records both sample classes.
func BenchmarkMultiplexing(b *testing.B) {
	var loads, stores int
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Monitor.MuxQuantumNs = 20_000
		cfg.Monitor.PEBS.Period = 300
		res, err := core.RunWorkload(cfg, workloads.NewStream(1<<15), 10)
		if err != nil {
			b.Fatal(err)
		}
		loads, stores = 0, 0
		for _, mp := range res.Folded.Mem {
			if mp.Store {
				stores++
			} else {
				loads++
			}
		}
	}
	b.ReportMetric(float64(loads), "load-samples")
	b.ReportMetric(float64(stores), "store-samples")
}

// BenchmarkMachineHPCG runs the full multi-threaded reproduction at 1, 2,
// 4 and 8 simulated cores (OpenMP-style row partitioning, private L1/L2,
// shared L3, one goroutine per core). The simulated work is fixed, so on a
// host with GOMAXPROCS >= threads the wall clock per op should drop close
// to linearly with the thread count — the tentpole scaling claim (>1.5×
// at 4 threads). On fewer host cores the bench still validates the
// concurrent path; the speedup simply cannot materialize. Metrics report
// the per-thread folded phase structure so scaling never trades away the
// reproduction shape.
func BenchmarkMachineHPCG(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var minPhases, letters int
			for i := 0; i < b.N; i++ {
				run, err := core.RunHPCGParallel(nil, benchConfig(), benchParams(), threads)
				if err != nil {
					b.Fatal(err)
				}
				minPhases = 1 << 30
				seen := map[byte]bool{}
				for _, tr := range run.Threads {
					if n := len(tr.Folded.Phases); n < minPhases {
						minPhases = n
					}
					for _, pp := range tr.Paper {
						if pp.Label != "-" {
							seen[pp.Label[0]|0x20] = true
						}
					}
				}
				letters = len(seen)
			}
			b.ReportMetric(float64(minPhases), "min-phases-per-thread")
			b.ReportMetric(float64(letters), "paper-letters")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// BenchmarkNUMAStreamPlacement measures the placement-policy axis on a
// DRAM-bound STREAM triad over a 2-socket machine (4 threads, sequential
// schedule for determinism): the working set (3 × 4 MiB) exceeds both
// sockets' L3s, so every iteration streams from DRAM, and the effective
// triad bandwidth is gated by the remote-fill fraction the policy
// produces. first-touch keeps each thread's block on its own node (~0%
// remote); interleave stripes pages across both nodes (~50% remote). The
// reported triad-MB/s uses the slowest thread's simulated clock — the
// wall time of the parallel section — and feeds the EXPERIMENTS.md
// local-vs-remote bandwidth table.
func BenchmarkNUMAStreamPlacement(b *testing.B) {
	const n, iters = 1 << 19, 4
	for _, policy := range []numa.Policy{numa.FirstTouch, numa.Interleave} {
		b.Run(policy.String(), func(b *testing.B) {
			var mbps, remotePct float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.NUMA = numa.Config{Sockets: 2, Policy: policy}
				res, err := core.RunWorkloadSequential(nil, cfg, workloads.NewStream(n), iters, 4)
				if err != nil {
					b.Fatal(err)
				}
				var maxCycles, fills, remote uint64
				for _, th := range res.Machine.Threads {
					if c := th.Core.Cycles(); c > maxCycles {
						maxCycles = c
					}
					fills += th.Hier.DRAMAccesses()
					remote += th.Hier.RemoteDRAMAccesses()
				}
				secs := float64(maxCycles) / res.Machine.Threads[0].Core.FreqHz()
				mbps = float64(iters) * 24 * n / secs / 1e6
				remotePct = 100 * float64(remote) / float64(fills)
			}
			b.ReportMetric(mbps, "triad-MB/s")
			b.ReportMetric(remotePct, "remote-fill-pct")
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationSamplingPeriod sweeps the PEBS period: folded detail
// (samples) versus monitoring overhead trade-off.
func BenchmarkAblationSamplingPeriod(b *testing.B) {
	for _, period := range []uint64{100, 400, 1600, 6400} {
		b.Run(periodName(period), func(b *testing.B) {
			var samples int
			var overheadPct float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Monitor.PEBS.Period = period
				run := runHPCG(b, cfg, benchParams())
				samples = len(run.Folded.Mem)
				st := run.Session.Mon.Engine().Stats()
				// Drain overhead cycles relative to total cycles.
				overheadPct = 100 * float64(st.Drains*cfg.Monitor.DrainOverheadCycles) /
					float64(run.Session.Core.Cycles())
			}
			b.ReportMetric(float64(samples), "folded-samples")
			b.ReportMetric(overheadPct, "overhead-%")
		})
	}
}

func periodName(p uint64) string {
	switch p {
	case 100:
		return "period100"
	case 400:
		return "period400"
	case 1600:
		return "period1600"
	default:
		return "period6400"
	}
}

// BenchmarkAblationKernelBandwidth sweeps the folding regression bandwidth:
// the smoothing that replaces Kriging. Too narrow → noisy rates; too wide →
// phase transitions blur.
func BenchmarkAblationKernelBandwidth(b *testing.B) {
	for _, bw := range []struct {
		name string
		val  float64
	}{{"bw0.005", 0.005}, {"bw0.02", 0.02}, {"bw0.08", 0.08}} {
		b.Run(bw.name, func(b *testing.B) {
			var phases int
			var peak float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Folding.Bandwidth = bw.val
				run := runHPCG(b, cfg, benchParams())
				phases = len(run.Folded.Phases)
				peak = 0
				for _, v := range run.Folded.MIPS() {
					if v > peak {
						peak = v
					}
				}
			}
			b.ReportMetric(float64(phases), "phases")
			b.ReportMetric(peak, "peak-MIPS")
		})
	}
}

// BenchmarkAblationPrefetcher compares the data-source mix with the
// next-line prefetcher on and off: linear sweeps benefit, DRAM share drops.
func BenchmarkAblationPrefetcher(b *testing.B) {
	for _, pf := range []bool{true, false} {
		name := "prefetch-on"
		if !pf {
			name = "prefetch-off"
		}
		b.Run(name, func(b *testing.B) {
			var dramShare float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Cache.NextLinePrefetch = pf
				run := runHPCG(b, cfg, benchParams())
				var total, dram int
				for _, mp := range run.Folded.Mem {
					total++
					if mp.Source == memhier.SrcDRAM {
						dram++
					}
				}
				if total > 0 {
					dramShare = 100 * float64(dram) / float64(total)
				}
			}
			b.ReportMetric(dramShare, "DRAM-sample-%")
		})
	}
}

// BenchmarkAblationMuxQuantum sweeps the PEBS load/store multiplexing
// quantum: smaller quanta interleave the classes more finely but each
// class sees fewer consecutive ops.
func BenchmarkAblationMuxQuantum(b *testing.B) {
	for _, q := range []struct {
		name string
		ns   uint64
	}{{"mux10us", 10_000}, {"mux100us", 100_000}, {"mux1ms", 1_000_000}} {
		b.Run(q.name, func(b *testing.B) {
			var storeShare float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Monitor.MuxQuantumNs = q.ns
				cfg.Monitor.PEBS.Period = 300
				res, err := core.RunWorkload(cfg, workloads.NewStream(1<<15), 10)
				if err != nil {
					b.Fatal(err)
				}
				var stores, total int
				for _, mp := range res.Folded.Mem {
					total++
					if mp.Store {
						stores++
					}
				}
				if total > 0 {
					storeShare = 100 * float64(stores) / float64(total)
				}
			}
			// STREAM's true store share is 1/3.
			b.ReportMetric(storeShare, "store-sample-%")
		})
	}
}

// BenchmarkAblationGroupThreshold sweeps the individual-allocation tracking
// threshold with grouping disabled: the knob whose default loses HPCG's
// rows (540 B each).
func BenchmarkAblationGroupThreshold(b *testing.B) {
	for _, th := range []struct {
		name string
		val  uint64
	}{{"min128", 128}, {"min512", 512}, {"min1024", 1024}} {
		b.Run(th.name, func(b *testing.B) {
			var rate float64
			var objects int
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Monitor.MinTrackSize = th.val
				p := benchParams()
				p.DisableGrouping = true
				run := runHPCG(b, cfg, p)
				rate = run.Session.Mon.Registry().ResolutionRate()
				objects = len(run.Session.Mon.Registry().Objects())
			}
			b.ReportMetric(rate*100, "resolution-%")
			b.ReportMetric(float64(objects), "objects")
		})
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkMemhierAccess measures the cache-simulator hot path: the
// historical random-address case plus streaming cases at three working-set
// residencies, each issued per-op (one Access per element) and through the
// line-run batch API (one AccessRun per 8-element line chunk, the issue
// granularity of the instrumented kernels). ns/op is per simulated element
// access in every case, so perop vs run at the same residency is the
// line-run batching speedup.
func BenchmarkMemhierAccess(b *testing.B) {
	b.Run("random", func(b *testing.B) {
		h, err := memhier.New(memhier.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		addrs := make([]uint64, 4096)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1 << 24))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(addrs[i%len(addrs)], 8, i%4 == 0)
		}
	})
	// Element sweeps over a 16 KiB (L1-resident), 256 KiB (L2-resident)
	// and 8 MiB (DRAM-bound) working set.
	for _, ws := range []struct {
		name  string
		words int
	}{{"L1", 1 << 11}, {"L2", 1 << 15}, {"DRAM", 1 << 20}} {
		b.Run("stream-perop-"+ws.name, func(b *testing.B) {
			h, err := memhier.New(memhier.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Access(uint64(i%ws.words)*8, 8, false)
			}
		})
		b.Run("stream-run-"+ws.name, func(b *testing.B) {
			h, err := memhier.New(memhier.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			var rr memhier.RunResult
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += 8 {
				h.AccessRun(uint64(i%ws.words)*8, 8, 8, false, &rr)
			}
		})
	}
}

// BenchmarkCoreLoad measures the full simulated-load path (cache + PMU).
func BenchmarkCoreLoad(b *testing.B) {
	h, _ := memhier.New(memhier.DefaultConfig())
	c, err := cpu.New(cpu.DefaultConfig(), h)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(0x400000, uint64(i%(1<<20))*8, 8)
	}
}

// BenchmarkCoreLoadStream measures the batched stream-issue path: the same
// sequential element traffic as BenchmarkCoreLoad, issued line-at-a-time.
func BenchmarkCoreLoadStream(b *testing.B) {
	h, _ := memhier.New(memhier.DefaultConfig())
	c, err := cpu.New(cpu.DefaultConfig(), h)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += chunk {
		base := uint64((i % (1 << 20))) * 8
		c.LoadStream(0x400000, base, 8, 8, chunk)
	}
}

// BenchmarkPEBSObserve measures the sampling engine's per-op cost.
func BenchmarkPEBSObserve(b *testing.B) {
	eng, err := pebs.New(pebs.DefaultConfig(), func([]pebs.Sample) {})
	if err != nil {
		b.Fatal(err)
	}
	op := cpu.MemOp{IP: 0x400000, Addr: 0x1000, Size: 8, Latency: 12, Source: memhier.SrcL2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Addr = uint64(i) * 8
		eng.Observe(op, uint64(i), 0)
	}
}

// BenchmarkFoldingFold measures the analysis cost on a synthetic trace.
func BenchmarkFoldingFold(b *testing.B) {
	instances := make([]folding.Instance, 50)
	for k := range instances {
		in := folding.Instance{T0: uint64(k) * 1000, T1: uint64(k)*1000 + 900}
		in.C1[cpu.CtrInstructions] = 100000
		in.C1[cpu.CtrCycles] = 200000
		for i := 0; i < 100; i++ {
			sigma := float64(i) / 100
			s := folding.Sample{
				TimeNs: in.T0 + uint64(sigma*900),
				Addr:   0x1000 + uint64(i*64),
				IP:     0x400000,
			}
			s.Counters[cpu.CtrInstructions] = uint64(sigma * 100000)
			s.Counters[cpu.CtrCycles] = uint64(sigma * 200000)
			in.Samples = append(in.Samples, s)
		}
		instances[k] = in
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := folding.Fold(instances, folding.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReuseDistance measures the Fenwick-tree stack-distance analyzer
// (the paper-motivated reuse-distance extension).
func BenchmarkReuseDistance(b *testing.B) {
	a, err := reuse.NewAnalyzer(64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<22)) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Touch(addrs[i%len(addrs)])
	}
}

// BenchmarkTraceEncode measures binary trace encoding throughput.
func BenchmarkTraceEncode(b *testing.B) {
	recs := make([]trace.Record, 10000)
	for i := range recs {
		recs[i] = trace.Record{
			TimeNs: uint64(i) * 100, Task: 1, Thread: 1,
			Pairs: []trace.TypeValue{
				{Type: trace.TypeSampleAddr, Value: int64(i) * 64},
				{Type: trace.TypeSampleLatency, Value: 36},
			},
		}
	}
	// Measure the actual encoded size once so the reported throughput is
	// bytes of output per second, not records per second.
	var cw countingWriter
	if err := trace.WriteBinary(&cw, 1, 1, 0, recs); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(cw.n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteBinary(io.Discard, 1, 1, 0, recs); err != nil {
			b.Fatal(err)
		}
	}
}

// countingWriter counts bytes written to it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
