// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON benchmark report on stdout. The CI bench job pipes the tier-1
// benchmarks through it to produce the BENCH_<pr>.json artifacts that track
// the repository's performance trajectory (ns/op, allocs, and the custom
// reproduction metrics the figure benches report).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem . | benchjson -out BENCH_4.json
//	go test -bench BenchmarkCoreLoadStream . | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerSec is present when the benchmark calls SetBytes.
	MBPerSec *float64 `json:"mb_per_sec,omitempty"`
	// Metrics holds the custom ReportMetric values keyed by unit
	// (e.g. "phases", "paper-letters", "a1-MB/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	// Context lines: goos/goarch/pkg/cpu from the bench header.
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	b, err := render(rep)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
}

// parse reads `go test -bench` text output into a normalized report:
// context header lines plus one Result per benchmark line, sorted by name.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// render serializes the report (two-space indent, trailing newline).
func render(rep *Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// parseBench parses one result line:
//
//	BenchmarkFoo-8  123456  12.3 ns/op  4 B/op  1 allocs/op  7.0 phases
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix (digits only) so series compare
		// across machines.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		case "MB/s":
			v := val
			r.MBPerSec = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
