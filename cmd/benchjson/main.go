// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON benchmark report on stdout. The CI bench job pipes the tier-1
// benchmarks through it to produce the BENCH_<pr>.json artifacts that track
// the repository's performance trajectory (ns/op, allocs, and the custom
// reproduction metrics the figure benches report).
//
// Usage:
//
//	go test -run NONE -bench . -benchmem . | benchjson -out BENCH_4.json
//	go test -bench BenchmarkCoreLoadStream . | benchjson
//
// With -baseline it additionally diffs the fresh results against a previous
// report and prints a per-benchmark ns/op delta table; -threshold N turns
// regressions beyond N percent into a non-zero exit so CI can gate on them
// (0, the default, reports without failing):
//
//	go test -run NONE -bench . . | benchjson -baseline BENCH_5.json -threshold 20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, normalized.
type Result struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerSec is present when the benchmark calls SetBytes.
	MBPerSec *float64 `json:"mb_per_sec,omitempty"`
	// Metrics holds the custom ReportMetric values keyed by unit
	// (e.g. "phases", "paper-letters", "a1-MB/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	// Context lines: goos/goarch/pkg/cpu from the bench header.
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "previous benchjson report to diff against (prints a delta table)")
	threshold := flag.Float64("threshold", 0, "exit non-zero when any ns/op regresses more than this percent over -baseline (0: report only)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	b, err := render(rep)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
	}
	if *baseline == "" {
		if *out == "" {
			os.Stdout.Write(b)
		}
		return
	}

	// Diff mode: the table replaces the JSON on stdout (the report itself
	// still lands in -out when asked for).
	base, err := loadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	rows := diffReports(base, rep)
	os.Stdout.WriteString(renderDiff(rows))
	if *threshold > 0 {
		if n := countRegressions(rows, *threshold); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% over %s\n",
				n, *threshold, *baseline)
			os.Exit(1)
		}
	}
}

func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// parse reads `go test -bench` text output into a normalized report:
// context header lines plus one Result per benchmark line, sorted by name.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseBench(line); ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	return rep, nil
}

// render serializes the report (two-space indent, trailing newline).
func render(rep *Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// parseBench parses one result line:
//
//	BenchmarkFoo-8  123456  12.3 ns/op  4 B/op  1 allocs/op  7.0 phases
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix (digits only) so series compare
		// across machines.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		case "MB/s":
			v := val
			r.MBPerSec = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}

// diffRow is one benchmark's old-vs-new comparison. DeltaPct is the ns/op
// change relative to the baseline (positive = slower); rows present on only
// one side have OldNs or NewNs at zero and no delta.
type diffRow struct {
	Name     string
	OldNs    float64
	NewNs    float64
	DeltaPct float64
	// Status: "=" within noise, "+" regressed, "-" improved, "new" only in
	// the fresh run, "gone" only in the baseline.
	Status string
}

// diffReports joins two reports by benchmark name, in the union's sorted
// order. Deltas under 1% render as "=" — bench noise, not signal.
func diffReports(old, fresh *Report) []diffRow {
	oldBy := map[string]Result{}
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	newBy := map[string]Result{}
	names := []string{}
	for _, r := range fresh.Results {
		newBy[r.Name] = r
		names = append(names, r.Name)
	}
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rows := make([]diffRow, 0, len(names))
	for _, name := range names {
		o, inOld := oldBy[name]
		n, inNew := newBy[name]
		row := diffRow{Name: name, OldNs: o.NsPerOp, NewNs: n.NsPerOp}
		switch {
		case !inOld:
			row.Status = "new"
		case !inNew:
			row.Status = "gone"
		case o.NsPerOp <= 0:
			row.Status = "="
		default:
			row.DeltaPct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			switch {
			case row.DeltaPct > 1:
				row.Status = "+"
			case row.DeltaPct < -1:
				row.Status = "-"
			default:
				row.Status = "="
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// renderDiff formats the delta table.
func renderDiff(rows []diffRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		switch r.Status {
		case "new":
			fmt.Fprintf(&b, "%-60s %14s %14.1f %8s\n", r.Name, "-", r.NewNs, "new")
		case "gone":
			fmt.Fprintf(&b, "%-60s %14.1f %14s %8s\n", r.Name, r.OldNs, "-", "gone")
		default:
			fmt.Fprintf(&b, "%-60s %14.1f %14.1f %+7.1f%%\n", r.Name, r.OldNs, r.NewNs, r.DeltaPct)
		}
	}
	return b.String()
}

// countRegressions counts benchmarks slower than the baseline by more than
// threshold percent. Added or removed benchmarks never count — renames must
// not fail CI.
func countRegressions(rows []diffRow, threshold float64) int {
	n := 0
	for _, r := range rows {
		if r.Status == "+" && r.DeltaPct > threshold {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
