package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParseBench is the table-driven single-line suite over real
// `go test -bench` output shapes.
func TestParseBench(t *testing.T) {
	f64 := func(v float64) *float64 { return &v }
	cases := []struct {
		name string
		line string
		ok   bool
		want Result
	}{
		{
			name: "plain ns/op only",
			line: "BenchmarkCoreLoad-8   	52693522	        21.38 ns/op",
			ok:   true,
			want: Result{Name: "BenchmarkCoreLoad", Iterations: 52693522, NsPerOp: 21.38},
		},
		{
			name: "sub-benchmark with slashes and key=value segments",
			line: "BenchmarkMemhierAccess/stream-run/L2/stride=8-4  	 5000000	       64.90 ns/op",
			ok:   true,
			// The trailing -4 is the GOMAXPROCS suffix and strips off.
			want: Result{Name: "BenchmarkMemhierAccess/stream-run/L2/stride=8", Iterations: 5000000, NsPerOp: 64.9},
		},
		{
			name: "benchmem columns",
			line: "BenchmarkFoldingFold-2  	     100	  11860305 ns/op	 1803659 B/op	     341 allocs/op",
			ok:   true,
			want: Result{Name: "BenchmarkFoldingFold", Iterations: 100, NsPerOp: 11860305,
				BytesPerOp: f64(1803659), AllocsPerOp: f64(341)},
		},
		{
			name: "SetBytes MB/s plus custom metrics",
			line: "BenchmarkFig1Reproduction-8  1  271000000 ns/op  123.45 MB/s  7.000 phases  5.000 paper-letters",
			ok:   true,
			want: Result{Name: "BenchmarkFig1Reproduction", Iterations: 1, NsPerOp: 271000000,
				MBPerSec: f64(123.45), Metrics: map[string]float64{"phases": 7, "paper-letters": 5}},
		},
		{
			name: "no GOMAXPROCS suffix",
			line: "BenchmarkTraceEncode  	 1000000	      1042 ns/op",
			ok:   true,
			want: Result{Name: "BenchmarkTraceEncode", Iterations: 1000000, NsPerOp: 1042},
		},
		{
			name: "sub-benchmark whose leaf ends in -digits keeps only the GOMAXPROCS strip",
			line: "BenchmarkMachineHPCG/threads=4-16  	       2	 500000000 ns/op",
			ok:   true,
			want: Result{Name: "BenchmarkMachineHPCG/threads=4", Iterations: 2, NsPerOp: 500000000},
		},
		{name: "too few fields", line: "BenchmarkBroken-8  123", ok: false},
		{name: "non-numeric iterations", line: "BenchmarkBroken-8  abc  12 ns/op", ok: false},
		{name: "non-numeric value", line: "BenchmarkBroken-8  10  twelve ns/op", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseBench(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if !ok {
				return
			}
			a, _ := json.Marshal(got)
			b, _ := json.Marshal(tc.want)
			if string(a) != string(b) {
				t.Errorf("parsed\n%s\nwant\n%s", a, b)
			}
		})
	}
}

// TestParseStream pins the whole-stream behaviour: context header capture,
// non-benchmark noise skipped, results sorted by name, stable JSON.
func TestParseStream(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU E5-2680 v3 @ 2.50GHz
BenchmarkZebra-8  	10	 100 ns/op
--- some test chatter
ok  	repro	1.234s
BenchmarkAlpha/sub/case-8  	20	 50 ns/op	 3.000 widgets
PASS
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Context["goos"] != "linux" || rep.Context["goarch"] != "amd64" ||
		rep.Context["pkg"] != "repro" || !strings.Contains(rep.Context["cpu"], "E5-2680") {
		t.Errorf("context: %+v", rep.Context)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results: %d", len(rep.Results))
	}
	if rep.Results[0].Name != "BenchmarkAlpha/sub/case" || rep.Results[1].Name != "BenchmarkZebra" {
		t.Errorf("not sorted by name: %q, %q", rep.Results[0].Name, rep.Results[1].Name)
	}
	if rep.Results[0].Metrics["widgets"] != 3 {
		t.Errorf("custom metric lost: %+v", rep.Results[0].Metrics)
	}
	b, err := render(rep)
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' {
		t.Error("render missing trailing newline")
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("rendered JSON does not round-trip: %v", err)
	}
	// Rendering twice is byte-identical (the CI artifact must be stable).
	b2, _ := render(rep)
	if string(b) != string(b2) {
		t.Error("render not deterministic")
	}
}

// TestDiffReports pins the baseline-diff join: deltas relative to the old
// ns/op, sub-1% changes flagged as noise, one-sided rows marked new/gone,
// and the regression count honoring the threshold.
func TestDiffReports(t *testing.T) {
	old := &Report{Results: []Result{
		{Name: "BenchmarkSteady", NsPerOp: 100},
		{Name: "BenchmarkFaster", NsPerOp: 200},
		{Name: "BenchmarkSlower", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	fresh := &Report{Results: []Result{
		{Name: "BenchmarkSteady", NsPerOp: 100.5},
		{Name: "BenchmarkFaster", NsPerOp: 150},
		{Name: "BenchmarkSlower", NsPerOp: 130},
		{Name: "BenchmarkNew", NsPerOp: 10},
	}}
	rows := diffReports(old, fresh)
	byName := map[string]diffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if len(rows) != 5 {
		t.Fatalf("rows: %d, want union of 5", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Name > rows[i].Name {
			t.Fatalf("rows not sorted: %q before %q", rows[i-1].Name, rows[i].Name)
		}
	}
	if r := byName["BenchmarkSteady"]; r.Status != "=" {
		t.Errorf("0.5%% drift flagged %q, want noise", r.Status)
	}
	if r := byName["BenchmarkFaster"]; r.Status != "-" || r.DeltaPct != -25 {
		t.Errorf("improvement: %+v", r)
	}
	if r := byName["BenchmarkSlower"]; r.Status != "+" || r.DeltaPct != 30 {
		t.Errorf("regression: %+v", r)
	}
	if r := byName["BenchmarkNew"]; r.Status != "new" {
		t.Errorf("added bench: %+v", r)
	}
	if r := byName["BenchmarkGone"]; r.Status != "gone" {
		t.Errorf("removed bench: %+v", r)
	}

	if n := countRegressions(rows, 20); n != 1 {
		t.Errorf("regressions over 20%% = %d, want 1 (only BenchmarkSlower)", n)
	}
	if n := countRegressions(rows, 50); n != 0 {
		t.Errorf("regressions over 50%% = %d, want 0", n)
	}

	table := renderDiff(rows)
	for _, want := range []string{"BenchmarkSlower", "+30.0%", "new", "gone", "old ns/op"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestParseEmpty covers the no-input edge: an empty report still renders
// valid JSON with no results.
func TestParseEmpty(t *testing.T) {
	rep, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results from empty input: %d", len(rep.Results))
	}
	if _, err := render(rep); err != nil {
		t.Fatal(err)
	}
}
