// Command extraerun runs a named synthetic workload under the monitoring
// stack and writes the resulting trace (PRV text + PCF labels), like
// running an application under Extrae.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/pebs"
	"repro/internal/workloads"
)

func main() {
	var (
		name   = flag.String("workload", "stream", "workload: stream | gups | chase | matmul | spmv")
		size   = flag.Int("size", 1<<16, "workload size (elements / table words / nodes / matrix dim; spmv rows)")
		iters  = flag.Int("iters", 20, "instrumented iterations")
		period = flag.Uint64("period", 500, "PEBS sampling period")
		muxNs  = flag.Uint64("mux-ns", 0, "load/store multiplexing quantum in ns (0 = both always)")
		out    = flag.String("o", "trace", "output prefix: <prefix>.prv and <prefix>.pcf")
	)
	flag.Parse()

	var w workloads.Workload
	switch *name {
	case "stream":
		w = workloads.NewStream(*size)
	case "gups":
		w = workloads.NewRandomAccess(*size, *size/4+1, 1)
	case "chase":
		w = workloads.NewPointerChase(*size, 1)
	case "matmul":
		w = workloads.NewMatMul(*size)
	case "spmv":
		// -size keeps its "elements" meaning: the stencil grid is the cube
		// root, giving ~size matrix rows.
		d := int(math.Cbrt(float64(*size)))
		if d < 2 {
			d = 2
		}
		w = workloads.NewSpMV(d, d, d)
	default:
		fatal(fmt.Errorf("unknown workload %q", *name))
	}

	cfg := core.DefaultConfig()
	cfg.Monitor.PEBS.Period = *period
	cfg.Monitor.MuxQuantumNs = *muxNs
	if *muxNs == 0 {
		cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	}
	res, err := core.RunWorkload(cfg, w, *iters)
	if err != nil {
		fatal(err)
	}
	s := res.Session
	fmt.Printf("%s: %d iterations, %d trace records, %d samples recorded, %.2f%% resolved\n",
		w.Name(), *iters, len(s.Mon.Records()),
		s.Mon.Engine().Stats().Recorded, 100*s.Mon.Registry().ResolutionRate())

	// PRV and PCF are one artifact: write the pair atomically (temp files +
	// rename) so a crash or full disk never leaves a trace without its
	// labels — or truncated halves of either.
	if err := atomicio.WriteFiles(
		[]string{*out + ".prv", *out + ".pcf"},
		func(ws []io.Writer) error { return s.WriteTrace(ws[0], ws[1]) },
	); err != nil {
		fatal(err)
	}
	fmt.Printf("trace written to %s.prv / %s.pcf (region id %d = %q)\n",
		*out, *out, w.Region(), w.Name())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "extraerun:", err)
	os.Exit(1)
}
