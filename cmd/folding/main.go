// Command folding runs the Folding analysis on a trace file produced by
// extraerun (or hpcgrepro -out): it extracts the instances of a region,
// folds them and prints the folded rate curves, the detected phases and
// summary statistics — the offline half of the paper's workflow.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/paraver"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		in      = flag.String("i", "trace.prv", "input trace (.prv)")
		region  = flag.Int64("region", 0, "region id to fold (0 = largest total time)")
		task    = flag.Int("task", 1, "task id to fold (multi-thread traces carry one stream per (task, thread))")
		thread  = flag.Int("thread", 1, "thread id to fold")
		grid    = flag.Int("grid", 200, "folded grid resolution")
		bw      = flag.Float64("bandwidth", 0.02, "kernel regression bandwidth")
		csvOut  = flag.String("csv", "", "write folded counter series to this CSV file")
		profile = flag.Bool("profile", false, "print the region profile and exit")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	records, err := trace.ReadAll(tr)
	if err != nil && !errors.Is(err, io.EOF) {
		fatal(err)
	}
	fmt.Printf("%s: %d records, %d task(s) x %d thread(s); analyzing thread %d.%d\n",
		*in, len(records), tr.Tasks(), tr.Threads(), *task, *thread)

	spans, err := paraver.Timeline(records, *task, *thread)
	if err != nil {
		fatal(err)
	}
	prof := paraver.Profile(spans)
	if *profile || *region == 0 {
		fmt.Println("\nregion profile (by total time):")
		fmt.Printf("%8s %10s %14s %14s\n", "region", "instances", "total ms", "mean ms")
		for _, row := range prof {
			fmt.Printf("%8d %10d %14.3f %14.3f\n",
				row.Region, row.Instances, float64(row.TotalNs)/1e6, row.MeanNs/1e6)
		}
		if *profile {
			return
		}
	}
	target := *region
	if target == 0 {
		if len(prof) == 0 {
			fatal(fmt.Errorf("no instrumented regions in trace"))
		}
		target = prof[0].Region
		fmt.Printf("\nfolding region %d (largest total time)\n", target)
	}

	instances, err := folding.ExtractThread(records, target, *task, *thread)
	if err != nil {
		fatal(err)
	}
	cfg := folding.DefaultConfig()
	cfg.GridPoints = *grid
	cfg.Bandwidth = *bw
	folded, err := folding.Fold(instances, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("folded %d/%d instances, mean duration %.3f ms, mean IPC %.3f\n",
		folded.InstancesUsed, folded.InstancesTotal, folded.MeanDurationNs/1e6, folded.MeanIPC())

	fmt.Printf("\nphases:\n%8s %8s %10s %10s %14s\n", "from", "to", "dir", "MIPS", "span MB/s")
	for _, p := range folded.Phases {
		fmt.Printf("%8.3f %8.3f %10s %10.0f %14.0f\n",
			p.Lo, p.Hi, p.Direction, p.MIPSMean, p.SpanBandwidth/1e6)
	}

	mips := folded.MIPS()
	var peak float64
	for _, v := range mips {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("\npeak folded MIPS: %.0f; samples folded: %d\n", peak, len(folded.Mem))
	l1 := folded.PerInstruction(cpu.CtrL1DMiss)
	var meanL1 float64
	for _, v := range l1 {
		meanL1 += v
	}
	fmt.Printf("mean L1D misses/instruction: %.4f\n", meanL1/float64(len(l1)))

	if *csvOut != "" {
		if err := atomicio.WriteFile(*csvOut, func(w io.Writer) error {
			return report.WriteCountersCSV(w, folded)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("folded counter series written to %s\n", *csvOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "folding:", err)
	os.Exit(1)
}
