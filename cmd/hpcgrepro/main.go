// Command hpcgrepro is the one-shot reproduction of the paper's evaluation
// (Section III): it generates the HPCG problem, runs the CG solve under the
// monitoring stack (PEBS memory sampling + allocation instrumentation),
// folds the CG iteration region and prints the three panels of Figure 1,
// the detected phase table with the in-text bandwidth comparison, and the
// data-object accounting. CSV series for external plotting are written to
// an output directory when requested.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/hpcg"
	"repro/internal/machspec"
	"repro/internal/numa"
	"repro/internal/pebs"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	var (
		nx         = flag.Int("nx", 32, "local box dimension (nx=ny=nz; paper used 104)")
		levels     = flag.Int("mg-levels", 4, "multigrid levels")
		iters      = flag.Int("iters", 8, "CG iterations to fold over")
		threads    = flag.Int("threads", 1, "simulated hardware threads (OpenMP-style row partitioning, shared L3, one trace stream and folded analysis per thread)")
		sockets    = flag.Int("sockets", 0, "simulated sockets: >0 builds a NUMA machine (threads grouped into socket blocks, one shared L3 and memory node per socket, remote fills charged the interconnect penalty); 0 keeps the flat single-L3 machine")
		placement  = flag.String("placement", "", "NUMA page placement policy: first-touch (default) or interleave (requires a NUMA topology from -sockets or -machine)")
		remoteLat  = flag.Uint64("remote-latency", 0, "remote-socket DRAM fill latency in cycles (0 = default 370; requires >= 2 sockets)")
		machine    = flag.String("machine", "", "machine spec: a named hierarchy or a spec .json file; replaces the default cache hierarchy and NUMA topology (-sockets/-placement/-remote-latency still apply on top)")
		period     = flag.Uint64("period", 1000, "PEBS sampling period (memory ops per sample)")
		muxNs      = flag.Uint64("mux-ns", 1_000_000, "load/store multiplexing quantum in ns (0 = sample both always)")
		outDir     = flag.String("out", "", "directory for CSV series and trace files (optional)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = no limit); an aborted run exits non-zero")
		noGroups   = flag.Bool("no-grouping", false, "disable allocation grouping (reproduces the paper's failed preliminary analysis)")
		paper      = flag.Bool("paper", false, "paper-scale mode: 104^3 box, 4 MG levels (overrides -nx and -mg-levels; long run)")
		refPath    = flag.Bool("reference", false, "use the per-op reference simulation path instead of the fast path (validation/debug)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (perf work: profile real scenario runs, not just microbenchmarks)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *paper {
		*nx = 104
		*levels = 4
	}
	stopProfiles, err := profiling.Start("hpcgrepro", *cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	cfg, err := machineConfig(*machine, *sockets, *placement, *remoteLat)
	if err != nil {
		fatal(err)
	}
	cfg.Reference = *refPath
	cfg.Monitor.PEBS.Period = *period
	cfg.Monitor.MuxQuantumNs = *muxNs
	if *muxNs == 0 {
		cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	}
	if *noGroups {
		// An absurdly high threshold distinguishes "tracked" from "grouped":
		// with grouping disabled, the per-row allocations stay below the
		// threshold and are simply lost, as in the preliminary analysis.
		cfg.Monitor.MinTrackSize = 1 << 20
	}
	params := hpcg.Params{NX: *nx, NY: *nx, NZ: *nx, MGLevels: *levels, MaxIters: *iters}
	if *noGroups {
		fmt.Println("note: running with allocation grouping effectively disabled")
	}
	fmt.Printf("HPCG %d^3, %d MG levels, %d iterations, %d threads, PEBS period %d, mux %d ns\n",
		*nx, *levels, *iters, *threads, *period, *muxNs)
	if cfg.NUMA.Sockets > 0 {
		fmt.Printf("NUMA: %d sockets, %s placement\n", cfg.NUMA.Sockets, cfg.NUMA.Policy)
	}

	// The -timeout clock starts here, at run dispatch: profile setup,
	// machine-spec loading and config validation must not eat the solve's
	// budget.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *threads > 1 || cfg.NUMA.Sockets > 0 {
		// NUMA runs always go through the Machine (the Session has no
		// placement layer); with one thread the parallel solve is the
		// sequential solve on worker 0.
		runParallel(ctx, cfg, params, *threads, *outDir)
		return
	}

	run, err := core.RunHPCGCheckpointed(ctx, cfg, params, nil)
	if err != nil {
		fatalRun(err, *outDir)
	}

	fmt.Printf("\nCG finished: %d iterations, final residual %.3e, |x - xexact| = %.3e\n",
		run.CG.Iterations, run.CG.Residuals[len(run.CG.Residuals)-1], run.CG.FinalError)

	fig := run.Figure1()
	if err := fig.Render(os.Stdout); err != nil {
		fatal(err)
	}

	fmt.Printf("\n== Paper comparison (in-text numbers) ==\n")
	fmt.Printf("%-6s %-10s %14s    %s\n", "phase", "direction", "measured MB/s", "paper (104^3, Jureca)")
	paperBW := map[string]string{"a1": "4197", "a2": "4315", "B": "6427"}
	for _, row := range run.BandwidthTable() {
		ref := paperBW[row.Label]
		if ref == "" {
			ref = "-"
		}
		fmt.Printf("%-6s %-10s %14.0f    %s\n", row.Label, row.Direction, row.MBps, ref)
	}
	fmt.Printf("mean IPC: %.2f (paper: ~0.6 at nominal frequency)\n", run.Folded.MeanIPC())
	reg := run.Session.Mon.Registry()
	fmt.Printf("sample resolution rate: %.1f%% (grouping %s)\n",
		100*reg.ResolutionRate(), map[bool]string{true: "disabled", false: "enabled"}[*noGroups])
	if m, g := run.MatrixGroup(), run.MapGroup(); m != nil && g != nil {
		fmt.Printf("object groups: %s and %s (size ratio %.2f; paper 617/89 = 6.93)\n",
			m.Label(), g.Label(), float64(m.Bytes)/float64(g.Bytes))
	}

	if *outDir != "" {
		if err := writeOutputs(*outDir, run, fig); err != nil {
			failOutputs(*outDir, err)
		}
		fmt.Printf("\nCSV series and trace written to %s\n", *outDir)
	}
}

// machineConfig assembles the simulated machine: the -machine spec (when
// given) replaces the default cache hierarchy and NUMA topology, and the
// explicit -sockets/-placement/-remote-latency flags apply on top of it.
// Topology validation goes through machspec.ValidateTopology — the single
// shared place simrun, sweep and hpcgrepro reject impossible combinations,
// with one message per mistake instead of a per-command variant.
func machineConfig(machineRef string, sockets int, placement string, remoteLat uint64) (core.Config, error) {
	cfg := core.DefaultConfig()
	if machineRef != "" {
		spec, err := machspec.Resolve(machineRef)
		if err != nil {
			return cfg, err
		}
		cfg.Cache = spec.Memhier()
		cfg.NUMA = spec.NUMA()
	}
	if sockets < 0 {
		return cfg, fmt.Errorf("-sockets must be >= 0")
	}
	if sockets > 0 {
		cfg.NUMA.Sockets = sockets
	}
	if placement != "" {
		policy, err := numa.ParsePolicy(placement)
		if err != nil {
			return cfg, err
		}
		cfg.NUMA.Policy = policy
	}
	if remoteLat != 0 {
		cfg.NUMA.RemoteDRAMLatency = remoteLat
	}
	// Validate the merged topology, not the individual flags: a spec can
	// supply the sockets a -placement needs, and a -sockets 1 override can
	// invalidate a spec's remote latency.
	if err := machspec.ValidateTopology(cfg.NUMA.Sockets, placement, cfg.NUMA.RemoteDRAMLatency); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// runParallel is the multi-threaded reproduction: one simulated core per
// thread with private L1/L2, a shared L3, static row partitioning of
// every kernel, and a separate folded analysis per thread.
func runParallel(ctx context.Context, cfg core.Config, params hpcg.Params, threads int, outDir string) {
	run, err := core.RunHPCGParallel(ctx, cfg, params, threads)
	if err != nil {
		fatalRun(err, outDir)
	}
	fmt.Printf("\nCG finished: %d iterations, final residual %.3e, |x - xexact| = %.3e\n",
		run.CG.Iterations, run.CG.Residuals[len(run.CG.Residuals)-1], run.CG.FinalError)

	fig := run.Figure()
	if err := fig.Render(os.Stdout); err != nil {
		fatal(err)
	}
	reg := run.Machine.Primary().Mon.Registry()
	fmt.Printf("\nsample resolution rate: %.1f%% (shared object registry)\n", 100*reg.ResolutionRate())

	if outDir != "" {
		if err := writeParallelOutputs(outDir, run); err != nil {
			failOutputs(outDir, err)
		}
		fmt.Printf("\nPer-thread CSV series and merged trace written to %s\n", outDir)
	}
}

func writeParallelOutputs(dir string, run *core.MachineHPCGRun) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, tr := range run.Threads {
		tr := tr
		name := fmt.Sprintf("phases_t%d.csv", tr.Thread)
		if err := atomicio.WriteFile(filepath.Join(dir, name), func(w io.Writer) error {
			return report.WritePhasesCSV(w, tr.Folded)
		}); err != nil {
			return err
		}
	}
	// The trace is a PRV/PCF pair: write both atomically so a fault cannot
	// leave a PRV whose labels are missing.
	return atomicio.WriteFiles(
		[]string{filepath.Join(dir, "hpcg.prv"), filepath.Join(dir, "hpcg.pcf")},
		func(ws []io.Writer) error { return run.Machine.WriteTrace(ws[0], ws[1]) })
}

func writeOutputs(dir string, run *core.HPCGRun, fig *report.Figure1) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]func(io.Writer) error{
		"fig1a_lines.csv": func(w io.Writer) error { return report.WriteLinesCSV(w, fig) },
		"fig1b_mem.csv": func(w io.Writer) error {
			reg := run.Session.Mon.Registry()
			return report.WriteMemCSV(w, fig, func(addr uint64) string {
				if o, ok := reg.Resolve(addr); ok {
					return o.Name
				}
				return ""
			})
		},
		"fig1c_counters.csv": func(w io.Writer) error { return report.WriteCountersCSV(w, fig.Folded) },
		"phases.csv":         func(w io.Writer) error { return report.WritePhasesCSV(w, fig.Folded) },
	}
	for name, write := range files {
		if err := atomicio.WriteFile(filepath.Join(dir, name), write); err != nil {
			return err
		}
	}
	return atomicio.WriteFiles(
		[]string{filepath.Join(dir, "hpcg.prv"), filepath.Join(dir, "hpcg.pcf")},
		func(ws []io.Writer) error { return run.Session.WriteTrace(ws[0], ws[1]) })
}

// fatalRun reports a failed or aborted solve. A clean instance-boundary
// stop (timeout, signal) is distinguished from a hard failure, and a
// pre-existing output directory is suffixed .partial so downstream tooling
// never mistakes it for a complete artifact set.
func fatalRun(err error, outDir string) {
	var rerr *core.RunError
	if errors.As(err, &rerr) {
		fmt.Fprintf(os.Stderr, "hpcgrepro: run aborted: %v\n", rerr)
	} else {
		fmt.Fprintln(os.Stderr, "hpcgrepro:", err)
	}
	markPartialDir(outDir)
	os.Exit(1)
}

// failOutputs handles a mid-write failure of the output directory.
func failOutputs(dir string, err error) {
	fmt.Fprintln(os.Stderr, "hpcgrepro:", err)
	markPartialDir(dir)
	os.Exit(1)
}

func markPartialDir(dir string) {
	if dir == "" {
		return
	}
	if _, err := os.Stat(dir); err != nil {
		return
	}
	if err := os.Rename(dir, dir+".partial"); err == nil {
		fmt.Fprintf(os.Stderr, "hpcgrepro: incomplete outputs moved to %s.partial\n", dir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpcgrepro:", err)
	os.Exit(1)
}
