package main

import (
	"strings"
	"testing"

	"repro/internal/numa"
)

// TestMachineConfigRejections pins the unified topology validation: every
// impossible flag combination fails through machspec.ValidateTopology with
// the same message simrun and the sweep engine produce.
func TestMachineConfigRejections(t *testing.T) {
	cases := []struct {
		name      string
		machine   string
		sockets   int
		placement string
		remoteLat uint64
		want      string
	}{
		{name: "negative sockets", sockets: -1, want: "-sockets must be >= 0"},
		{name: "placement on flat", placement: "interleave",
			want: `machspec: placement "interleave" requires a NUMA topology (sockets >= 1)`},
		{name: "unknown placement", placement: "bogus", sockets: 2,
			want: `unknown placement policy "bogus"`},
		{name: "remote latency on flat", remoteLat: 400,
			want: "machspec: remote DRAM latency requires >= 2 sockets (got 0)"},
		{name: "remote latency on one socket", sockets: 1, remoteLat: 400,
			want: "machspec: remote DRAM latency requires >= 2 sockets (got 1)"},
		{name: "unknown machine", machine: "jureca", want: "machspec:"},
		{name: "sockets override invalidates spec remote latency",
			machine: "../../examples/sweeps/haswell_2s.json", sockets: 1,
			want: "machspec: remote DRAM latency requires >= 2 sockets (got 1)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := machineConfig(tc.machine, tc.sockets, tc.placement, tc.remoteLat)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("machineConfig error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestMachineConfigMerge pins the spec + flag-override semantics.
func TestMachineConfigMerge(t *testing.T) {
	// Flags only: the historical behavior.
	cfg, err := machineConfig("", 2, "interleave", 400)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NUMA.Sockets != 2 || cfg.NUMA.Policy != numa.Interleave || cfg.NUMA.RemoteDRAMLatency != 400 {
		t.Fatalf("flag-only config: %+v", cfg.NUMA)
	}

	// Spec only: topology comes from the file.
	cfg, err = machineConfig("../../examples/sweeps/haswell_2s.json", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NUMA.Sockets != 2 || cfg.NUMA.Policy != numa.Interleave || cfg.NUMA.RemoteDRAMLatency != 370 || cfg.NUMA.PageSize != 4096 {
		t.Fatalf("spec config: %+v", cfg.NUMA)
	}
	if len(cfg.Cache.Levels) != 3 || cfg.Cache.DRAMLatency != 230 {
		t.Fatalf("spec cache not applied: %+v", cfg.Cache)
	}

	// Flags override the spec where set; unset flags keep the spec's values.
	cfg, err = machineConfig("../../examples/sweeps/haswell_2s.json", 4, "first-touch", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NUMA.Sockets != 4 || cfg.NUMA.Policy != numa.FirstTouch || cfg.NUMA.RemoteDRAMLatency != 370 {
		t.Fatalf("override merge: %+v", cfg.NUMA)
	}

	// A named spec without sockets stays flat.
	cfg, err = machineConfig("small", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NUMA.Sockets != 0 || cfg.Cache.Levels[0].Size != 8<<10 {
		t.Fatalf("named flat spec: NUMA=%+v L1=%d", cfg.NUMA, cfg.Cache.Levels[0].Size)
	}
}
