// Command memview renders the memory perspective of a trace: the folded
// address-vs-time panel (Figure 1 middle) for a chosen region, plus
// per-data-source and latency statistics of the PEBS samples. It works
// directly from a .prv trace without needing the synthetic binary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/memhier"
	"repro/internal/paraver"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		in     = flag.String("i", "trace.prv", "input trace (.prv)")
		region = flag.Int64("region", 0, "region id to fold (0 = largest total time)")
		task   = flag.Int("task", 1, "task id to fold (multi-thread traces carry one stream per (task, thread))")
		thread = flag.Int("thread", 1, "thread id to fold")
		width  = flag.Int("width", 100, "panel width")
		height = flag.Int("height", 24, "panel height")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	records, err := trace.ReadAll(tr)
	if err != nil && !errors.Is(err, io.EOF) {
		fatal(err)
	}
	target := *region
	if target == 0 {
		spans, err := paraver.Timeline(records, *task, *thread)
		if err != nil {
			fatal(err)
		}
		prof := paraver.Profile(spans)
		if len(prof) == 0 {
			fatal(fmt.Errorf("no instrumented regions in trace"))
		}
		target = prof[0].Region
	}
	instances, err := folding.ExtractThread(records, target, *task, *thread)
	if err != nil {
		fatal(err)
	}
	folded, err := folding.Fold(instances, folding.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if len(folded.Mem) == 0 {
		fatal(fmt.Errorf("region %d carries no memory samples", target))
	}

	// Address panel.
	c := report.NewCanvas(*width, *height)
	lo, hi := folded.Mem[0].Addr, folded.Mem[0].Addr
	for _, mp := range folded.Mem {
		if mp.Addr < lo {
			lo = mp.Addr
		}
		if mp.Addr > hi {
			hi = mp.Addr
		}
	}
	for _, mp := range folded.Mem {
		ch := byte('.')
		if mp.Store {
			ch = '#'
		}
		c.Plot(c.XForSigma(mp.Sigma), c.YForValue(float64(mp.Addr), float64(lo), float64(hi)), ch)
	}
	fmt.Printf("region %d: addresses referenced vs folded time (%d samples over %d instances)\n",
		target, len(folded.Mem), folded.InstancesUsed)
	if err := c.WriteTo(os.Stdout, func(row int) string {
		v := float64(hi) - (float64(hi)-float64(lo))*float64(row)/float64(*height)
		return fmt.Sprintf("%#x", uint64(v))
	}); err != nil {
		fatal(err)
	}
	fmt.Println("legend: '.' load, '#' store")

	// Sample statistics: data-source mix and latency distribution, the two
	// PEBS fields the paper's Extrae extension captures.
	var bySource [memhier.NumSources]int
	var lats []float64
	var loads, storesN int
	for _, mp := range folded.Mem {
		bySource[mp.Source]++
		if mp.Store {
			storesN++
		} else {
			loads++
			lats = append(lats, float64(mp.Latency))
		}
	}
	// Capability-keyed remote row: NUMA-routed stacks stamp the
	// REMOTE_DRAM counter pair on their snapshot records (value 0
	// included), so its presence — not remote sample occurrence — decides
	// whether the RemoteDRAM row belongs in the table. A first-touch NUMA
	// trace with zero remote samples still shows the row (that zero is
	// the policy's headline result); flat traces never do.
	numaTrace := false
	for _, r := range records {
		if _, ok := r.Get(trace.TypeCounterBase + uint32(cpu.CtrRemoteDRAM)); ok {
			numaTrace = true
			break
		}
	}
	// Column width widens only when the 10-char RemoteDRAM row is shown,
	// keeping flat traces' output byte-identical to the pre-NUMA format.
	labelWidth := 5
	if numaTrace {
		labelWidth = 10
	}
	fmt.Printf("\nsamples: %d loads, %d stores\ndata sources:\n", loads, storesN)
	for s := memhier.DataSource(0); s < memhier.NumSources; s++ {
		if s == memhier.SrcDRAMRemote && !numaTrace {
			continue
		}
		pct := 100 * float64(bySource[s]) / float64(len(folded.Mem))
		fmt.Printf("  %-*s %7d (%5.1f%%)\n", labelWidth, s.String(), bySource[s], pct)
	}
	if len(lats) > 0 {
		fmt.Printf("load latency cycles: p50 %.0f, p90 %.0f, p99 %.0f, mean %.1f\n",
			stats.Quantile(lats, 0.5), stats.Quantile(lats, 0.9),
			stats.Quantile(lats, 0.99), stats.Mean(lats))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memview:", err)
	os.Exit(1)
}
