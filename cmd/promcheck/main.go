// Command promcheck validates a Prometheus text exposition (format v0.0.4)
// read from stdin against the same strict parser that pins the simulator's
// own /metrics output. CI's metrics-smoke step pipes a live scrape through
// it to prove the endpoint is format-valid and that the counters it cares
// about exist and have advanced.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promcheck \
//	    -require simd_jobs_total \
//	    -min 'simd_jobs_total{outcome="done"}=1' \
//	    -min simd_jobs_accepted_total=1
//
// Exit status is 0 when the exposition parses and every -require family is
// present and every -min sample exists at or above its floor; 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("promcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var requires, mins multiFlag
	fs.Var(&requires, "require", "metric family that must be present (repeatable)")
	fs.Var(&mins, "min", `sample floor 'name{labels}=value'; the sample must exist and be >= value (repeatable)`)
	if err := fs.Parse(argv); err != nil {
		return 1
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "promcheck: unexpected arguments %q (exposition comes from stdin)\n", fs.Args())
		return 1
	}

	fams, err := telemetry.ParseText(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "promcheck: invalid exposition: %v\n", err)
		return 1
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(stderr, "promcheck: "+format+"\n", args...)
		failed = true
	}

	byName := map[string]telemetry.Family{}
	samples := 0
	for _, f := range fams {
		byName[f.Name] = f
		samples += len(f.Samples)
	}
	for _, name := range requires {
		if _, ok := byName[name]; !ok {
			fail("required family %s absent", name)
		}
	}
	for _, spec := range mins {
		name, labels, floor, err := parseMin(spec)
		if err != nil {
			fail("%v", err)
			continue
		}
		got, ok := findSample(fams, name, labels)
		if !ok {
			fail("-min %s: sample %s{%s} absent", spec, name, labels)
			continue
		}
		if got < floor {
			fail("-min %s: %s{%s} = %g, below floor %g", spec, name, labels, got, floor)
		}
	}
	if failed {
		return 1
	}
	fmt.Fprintf(stdout, "promcheck: ok (%d families, %d samples)\n", len(fams), samples)
	return 0
}

// parseMin splits a -min spec into sample name, label block (inner text,
// "" for unlabelled) and the floor value. The '=' separating the floor is
// the one after the label block, so label values may contain '='.
func parseMin(spec string) (name, labels string, floor float64, err error) {
	rest := spec
	if brace := strings.IndexByte(spec, '{'); brace >= 0 {
		end := strings.Index(spec, "}=")
		if end < 0 {
			return "", "", 0, fmt.Errorf("-min %s: want name{labels}=value", spec)
		}
		name = spec[:brace]
		labels = spec[brace+1 : end]
		rest = spec[end+2:]
	} else {
		var ok bool
		name, rest, ok = strings.Cut(spec, "=")
		if !ok {
			return "", "", 0, fmt.Errorf("-min %s: want name=value", spec)
		}
	}
	floor, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("-min %s: bad floor %q", spec, rest)
	}
	return name, labels, floor, nil
}

// findSample looks a sample up by exact name and label block across every
// family (histogram _bucket/_sum/_count samples live under their base
// family, so the search cannot go by family name alone).
func findSample(fams []telemetry.Family, name, labels string) (float64, bool) {
	for _, f := range fams {
		if s, ok := f.Sample(name, labels); ok {
			return s.Value, true
		}
	}
	return 0, false
}
