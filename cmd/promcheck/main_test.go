package main

import (
	"bytes"
	"strings"
	"testing"
)

const exposition = `# HELP simd_jobs_total Terminal job outcomes.
# TYPE simd_jobs_total counter
simd_jobs_total{outcome="done"} 3
simd_jobs_total{outcome="failed"} 0
# HELP simd_run_seconds Wall time of one simulation attempt.
# TYPE simd_run_seconds histogram
simd_run_seconds_bucket{le="0.1"} 2
simd_run_seconds_bucket{le="+Inf"} 3
simd_run_seconds_sum 0.42
simd_run_seconds_count 3
`

// check runs promcheck over the canned exposition and returns (exit code,
// stderr text).
func check(t *testing.T, argv ...string) (int, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(argv, strings.NewReader(exposition), &stdout, &stderr)
	return code, stderr.String()
}

func TestPromcheckPassing(t *testing.T) {
	code, errs := check(t,
		"-require", "simd_jobs_total",
		"-require", "simd_run_seconds",
		"-min", `simd_jobs_total{outcome="done"}=3`,
		"-min", "simd_run_seconds_count=1",
		"-min", `simd_jobs_total{outcome="failed"}=0`,
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errs)
	}
}

func TestPromcheckFailures(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string // substring of stderr
	}{
		{"absent family", []string{"-require", "no_such_family"}, "required family no_such_family absent"},
		{"absent sample", []string{"-min", `simd_jobs_total{outcome="parked"}=1`}, "absent"},
		{"below floor", []string{"-min", `simd_jobs_total{outcome="done"}=4`}, "below floor"},
		{"malformed spec", []string{"-min", "simd_jobs_total"}, "want name=value"},
		{"malformed labelled spec", []string{"-min", `simd_jobs_total{outcome="done"}`}, "want name{labels}=value"},
		{"bad floor", []string{"-min", "simd_run_seconds_count=abc"}, "bad floor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, errs := check(t, tc.argv...)
			if code == 0 {
				t.Fatal("exit 0, want failure")
			}
			if !strings.Contains(errs, tc.want) {
				t.Errorf("stderr %q missing %q", errs, tc.want)
			}
		})
	}
}

func TestPromcheckRejectsInvalidExposition(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, strings.NewReader("simd_jobs_total 3\n"), &stdout, &stderr)
	if code == 0 {
		t.Fatal("exit 0 on exposition with no TYPE")
	}
	if !strings.Contains(stderr.String(), "invalid exposition") {
		t.Errorf("stderr: %q", stderr.String())
	}
}
