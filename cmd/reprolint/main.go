// Command reprolint statically enforces the simulator's load-bearing
// invariants with custom go/analysis analyzers:
//
//   - noalloc: `//repro:noalloc` functions (the per-memory-op hot path)
//     contain no allocating constructs, transitively through
//     same-package callees.
//   - detrand: the golden-artifact packages never read the wall clock
//     or the global rand stream, and never leak map iteration order.
//   - goldenkey: json fields added to the scenario metric structs
//     beyond the frozen baseline carry omitempty, so old goldens never
//     churn.
//   - workersafe: worker goroutines in the engine packages reach a
//     deferred recover, and instance loops poll their context.
//
// Usage:
//
//	reprolint ./...                      # convenience: re-execs go vet
//	go vet -vettool=$(which reprolint) ./...
//
// The binary implements the go vet -vettool protocol (unitchecker):
// invoked with a *.cfg argument or flags it acts as the vet backend;
// invoked with package patterns it re-execs `go vet -vettool=<self>`
// so `reprolint ./...` works directly and exits non-zero on any
// diagnostic.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && (strings.HasPrefix(args[0], "-") || strings.HasSuffix(args[0], ".cfg")) {
		// go vet backend mode (also handles -V=full, -flags, -help).
		unitchecker.Main(analysis.Suite...) // never returns
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	vet := append([]string{"vet", "-vettool=" + self}, args...)
	cmd := exec.Command("go", vet...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		os.Exit(2)
	}
}
