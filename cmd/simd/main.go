// Command simd runs the simulation server: an HTTP/JSON service that
// accepts simulation jobs (named machine or inline spec × scenario ×
// placement × sampling), coalesces duplicates, caches results by content
// hash, sheds load beyond its configured capacity with 429 + Retry-After,
// and drains gracefully on SIGTERM — in-flight runs get up to
// -drain-timeout to finish, runs that cannot finish are checkpointed into
// -state and resume when the server restarts over the same directory.
//
//	simd -addr :8080 -cache .sweepcache -state .simd-state \
//	     -max-concurrent 4 -max-queued 32 -drain-timeout 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/simd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "simd: %v\n", err)
		os.Exit(1)
	}
}

// run is main with its environment injected: stdout for the listening line
// and the summary, and an optional signal channel standing in for the
// process signals (tests drive a drain without sending themselves a real
// SIGTERM).
func run(argv []string, stdout io.Writer, signals <-chan os.Signal) error {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	cacheDir := fs.String("cache", "", "shared metrics cache directory (empty: no cache)")
	stateDir := fs.String("state", "", "drain checkpoint/park directory (empty: drain cancels instead of checkpointing)")
	maxConcurrent := fs.Int("max-concurrent", 2, "concurrent simulations")
	maxQueued := fs.Int("max-queued", 8, "queued jobs before load is shed with 429")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace for in-flight runs on SIGTERM before checkpoint/cancel")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-job deadline when the request has none (0: none)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on per-job deadlines (0: no cap)")
	maxInstances := fs.Int("max-instances", 0, "per-job instance budget; larger jobs are rejected with 413 (0: unlimited)")
	retryAfter := fs.Duration("retry-after", time.Second, "back-off hint attached to shed responses")
	logMode := fs.String("log", "text", "job lifecycle logging to stderr: text, json or off")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints on the handler")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	logger, err := buildLogger(*logMode)
	if err != nil {
		return err
	}
	cfg := simd.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxQueued:       *maxQueued,
		CacheDir:        *cacheDir,
		StateDir:        *stateDir,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		MaxJobInstances: *maxInstances,
		RetryAfter:      *retryAfter,
		Logger:          logger,
		EnablePprof:     *pprofOn,
	}
	srv, err := simd.New(cfg)
	if err != nil {
		return err
	}
	// Jobs parked by the previous process's drain restart here, before any
	// new traffic is admitted.
	if n, err := srv.Resume(); err != nil {
		return err
	} else if n > 0 {
		fmt.Fprintf(stdout, "simd: resumed %d checkpointed job(s) from %s\n", n, *stateDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "simd: listening on http://%s\n", ln.Addr())

	if signals == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
		defer signal.Stop(ch)
		signals = ch
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	//repro:spawn-ok http.Serve owns this goroutine; the handler stack has the server's per-job recover
	go func() {
		serveErr <- hs.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		return err
	case sig := <-signals:
		fmt.Fprintf(stdout, "simd: %v: draining (grace %s)\n", sig, *drainTimeout)
	}

	// Drain order: stop admitting and settle every job first (finish,
	// checkpoint or cancel), then close the HTTP side so late clients got
	// their 503s rather than connection resets.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return err
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "simd: drained: %d simulated, %d cache hits, %d coalesced, %d parked, %d shed\n",
		st.Simulated, st.CacheHits, st.Coalesced, st.Parked, st.Shed)
	return nil
}

// buildLogger maps the -log flag onto a slog handler writing to stderr.
func buildLogger(mode string) (*slog.Logger, error) {
	switch mode {
	case "off":
		return nil, nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log %q: want text, json or off", mode)
	}
}
