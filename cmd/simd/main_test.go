package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/simd"
)

// syncWriter serializes the server's stdout so the test can poll it while
// run() is still writing.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var addrPattern = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startServer launches run() on a free port and returns its base URL, the
// fake signal channel and the exit channel.
func startServer(t *testing.T, args []string) (string, chan os.Signal, chan error, *syncWriter) {
	t.Helper()
	out := &syncWriter{}
	signals := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, signals)
	}()
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := addrPattern.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("server never printed its address:\n%s", out.String())
	}
	return base, signals, done, out
}

func TestServeSubmitAndSigtermDrain(t *testing.T) {
	cacheDir := t.TempDir()
	base, signals, done, out := startServer(t, []string{"-cache", cacheDir})

	c := &simd.Client{BaseURL: base}
	res, err := c.Run(context.Background(), simd.Request{Scenario: "stream_triad_1t"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := scenario.RunByName("stream_triad_1t", scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Metrics, want) {
		t.Fatal("served metrics differ from the local run")
	}

	// Second submit: a cache hit, no second simulation.
	res2, err := c.Run(context.Background(), simd.Request{Scenario: "stream_triad_1t"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != simd.SourceCache {
		t.Errorf("second submit source = %q, want %q", res2.Source, simd.SourceCache)
	}

	signals <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "drained:") {
		t.Errorf("drain not reported:\n%s", s)
	}
}

func TestSigtermCheckpointsAndRestartResumes(t *testing.T) {
	cacheDir, stateDir := t.TempDir(), t.TempDir()
	args := []string{"-cache", cacheDir, "-state", stateDir, "-drain-timeout", "10s"}
	base, signals, done, _ := startServer(t, args)

	// A long job: every builtin workload scenario checkpoints, and matmul_2t
	// is the slowest in the registry — enough schedule left that the drain
	// lands mid-run.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"scenario": "matmul_2t"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	// Give the run a moment to pass its first instance boundary, then
	// SIGTERM mid-run.
	time.Sleep(50 * time.Millisecond)
	signals <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	finished := false
	if jobs, _ := filepath.Glob(filepath.Join(stateDir, "*.job")); len(jobs) == 0 {
		// The run beat the signal; the result must then already be cached —
		// either way no work is lost.
		finished = true
	}

	// Restart over the same directories: the parked job resumes and its
	// result matches an uninterrupted local run byte for byte.
	base2, signals2, done2, out2 := startServer(t, args)
	if !finished {
		if !strings.Contains(out2.String(), "resumed 1") {
			t.Fatalf("restart did not resume the parked job:\n%s", out2.String())
		}
	}
	c := &simd.Client{BaseURL: base2}
	res, err := c.Run(context.Background(), simd.Request{Scenario: "matmul_2t"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := scenario.RunByName("matmul_2t", scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Metrics, want) {
		t.Fatal("resumed metrics differ from an uninterrupted run")
	}

	signals2 <- syscall.SIGTERM
	select {
	case <-done2:
	case <-time.After(10 * time.Second):
		t.Fatal("second server did not exit")
	}
}
