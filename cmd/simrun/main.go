// Command simrun drives the deterministic scenario matrix: list the
// registered scenarios, run one (or all) to its canonical Metrics JSON, and
// refresh the golden regression files. Runs are bit-reproducible — the same
// scenario always produces byte-identical JSON, on both the fast and the
// reference simulation paths — which is what makes the goldens diffable
// regression artifacts.
//
// Usage:
//
//	simrun -list
//	simrun -run stream_triad_4t [-json]
//	simrun -run spmv_csr_1t -threads 4
//	simrun -run all -reference
//	simrun -run stream_triad_4t -machine examples/sweeps/haswell_2s.json
//	simrun -run stream_triad_4t -checkpoint-every 4 -checkpoint ck.bin
//	simrun -run stream_triad_4t -resume ck.bin
//	simrun -update-golden [-golden internal/scenario/testdata/golden]
//
// Golden diffs produced by -update-golden must be justified in the PR that
// carries them: a changed golden is a changed simulation result.
//
// Fault tolerance: -timeout (or SIGINT/SIGTERM) stops the run at the next
// instance boundary with partial, clearly-marked metrics and a non-zero
// exit. -checkpoint-every N atomically rewrites the snapshot file every N
// instances; -resume continues a killed run from it, reproducing the
// uninterrupted result bit for bit on the deterministic paths.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/machspec"
	"repro/internal/numa"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the registered scenarios and exit")
		run        = flag.String("run", "", "scenario to run (a registered name, or 'all')")
		threads    = flag.Int("threads", 0, "override the scenario's thread count (0 = scenario default)")
		sockets    = flag.Int("sockets", 0, "override the scenario's socket count: route the run through a NUMA machine (0 = scenario default)")
		placement  = flag.String("placement", "", "override the NUMA page placement policy (first-touch or interleave; the scenario or -sockets must provide a NUMA topology)")
		machine    = flag.String("machine", "", "machine spec: a named hierarchy or a spec .json file; replaces the scenario's hierarchy and NUMA topology (-sockets/-placement still apply on top)")
		reference  = flag.Bool("reference", false, "use the per-op reference simulation path (must produce identical metrics)")
		jsonOut    = flag.Bool("json", false, "print the full canonical Metrics JSON instead of the summary line")
		progress   = flag.Bool("progress", false, "live progress line on stderr (sampled at instance boundaries; never changes the metrics)")
		update     = flag.Bool("update-golden", false, "rewrite the golden metrics files for every scenario")
		golden     = flag.String("golden", filepath.Join("internal", "scenario", "testdata", "golden"), "golden directory used by -update-golden")
		timeout    = flag.Duration("timeout", 0, "abort the run at the next instance boundary after this duration (0 = no limit); partial metrics are marked and the exit status is non-zero")
		ckEvery    = flag.Int("checkpoint-every", 0, "snapshot the full simulation state every N completed instances (requires -checkpoint; deterministic single-scenario runs only)")
		ckPath     = flag.String("checkpoint", "", "checkpoint file, atomically rewritten at every snapshot (latest wins)")
		resumePath = flag.String("resume", "", "resume from this checkpoint file instead of starting from instance 0")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (perf work: profile real scenario runs, not just microbenchmarks)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	stopProfiles, err := profiling.Start("simrun", *cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	switch {
	case *list:
		listScenarios()
	case *update:
		// Goldens are canonical: always the fast path at the scenarios' own
		// thread counts, and always amd64 (FMA fusion elsewhere perturbs the
		// float64 reductions, and amd64 CI would reject the files).
		if err := goldenOverrideError(*reference, *threads, *sockets, *placement, *machine); err != nil {
			fatal(err)
		}
		if runtime.GOARCH != "amd64" {
			fatal(fmt.Errorf("refusing to regenerate goldens on %s: they must be amd64-generated", runtime.GOARCH))
		}
		if err := updateGoldens(*golden); err != nil {
			fatal(err)
		}
	case *run != "":
		if *threads < 0 || *sockets < 0 {
			fatal(fmt.Errorf("-threads/-sockets must be >= 0"))
		}
		opts := scenario.Options{
			Reference: *reference,
			Threads:   *threads,
			Sockets:   *sockets,
			Placement: *placement,
		}
		if *machine != "" {
			spec, err := machspec.Resolve(*machine)
			if err != nil {
				fatal(err)
			}
			opts.Machine = spec
		}
		if err := setupCheckpointing(&opts, *run, *ckEvery, *ckPath, *resumePath); err != nil {
			fatal(err)
		}
		// The -timeout clock starts here, at run dispatch: machine-spec
		// loading and the checkpoint-resume read above must not eat the
		// simulation's budget (a slow resume read would otherwise consume
		// the whole allowance before the first instance runs).
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		opts.Context = ctx
		if err := runScenarios(*run, opts, *jsonOut, *progress); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// goldenOverrideError rejects -update-golden combined with any flag that
// would change the simulated runs away from the canonical golden identity.
func goldenOverrideError(reference bool, threads, sockets int, placement, machine string) error {
	if reference || threads != 0 || sockets != 0 || placement != "" || machine != "" {
		return fmt.Errorf("-update-golden ignores -reference/-threads/-sockets/-placement/-machine; drop them (goldens pin the fast path at scenario topology)")
	}
	return nil
}

// setupCheckpointing validates the checkpoint/resume flag combinations and
// wires the snapshot sink (atomic rewrite of the checkpoint file) and the
// resume source into the scenario options.
func setupCheckpointing(opts *scenario.Options, run string, every int, ckPath, resumePath string) error {
	if every < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0")
	}
	if every > 0 && ckPath == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint <file>")
	}
	if ckPath != "" && every == 0 {
		return fmt.Errorf("-checkpoint requires -checkpoint-every N")
	}
	if (every > 0 || resumePath != "") && run == "all" {
		return fmt.Errorf("checkpoint/resume applies to a single scenario, not -run all")
	}
	if every > 0 {
		opts.CheckpointEvery = every
		opts.CheckpointSink = func(snap *checkpoint.Snapshot) error {
			return atomicio.WriteFile(ckPath, func(w io.Writer) error {
				return checkpoint.Write(w, snap)
			})
		}
	}
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			return err
		}
		defer f.Close()
		snap, err := checkpoint.Read(f)
		if err != nil {
			return fmt.Errorf("%s: %w", resumePath, err)
		}
		opts.Resume = snap
	}
	return nil
}

func listScenarios() {
	all := scenario.All()
	fmt.Printf("%d registered scenarios:\n", len(all))
	for _, sc := range all {
		kind := "workload"
		if sc.HPCG != nil {
			kind = "hpcg"
		}
		topo := fmt.Sprintf("threads=%d", sc.Threads)
		if sc.Sockets > 0 {
			// Render the effective policy (Register validated the string;
			// the empty spelling defaults to first-touch).
			policy, _ := numa.ParsePolicy(sc.Placement)
			topo = fmt.Sprintf("threads=%d sockets=%d/%s", sc.Threads, sc.Sockets, policy)
		}
		fmt.Printf("  %-28s %-8s %-32s hierarchy=%-10s %s\n",
			sc.Name, kind, topo, sc.Hierarchy, sc.Description)
	}
}

func runScenarios(name string, opts scenario.Options, jsonOut, progress bool) error {
	var scs []scenario.Scenario
	if name == "all" {
		scs = scenario.All()
	} else {
		sc, ok := scenario.Get(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", name)
		}
		scs = []scenario.Scenario{sc}
	}
	for _, sc := range scs {
		if name == "all" {
			// An override that cannot apply to one scenario (placement on a
			// flat machine, threads on HPCG) skips that scenario with a
			// notice rather than aborting the rest of the matrix.
			if reason := scenario.SkipReason(sc, opts); reason != "" {
				fmt.Printf("%-28s skipped (%s)\n", sc.Name, reason)
				continue
			}
		}
		stopProgress := func() {}
		if progress {
			var p telemetry.Progress
			opts.Progress = &p
			stopProgress = startProgress(sc.Name, &p)
		}
		m, err := scenario.Run(sc, opts)
		stopProgress()
		if err != nil {
			if m != nil && m.Partial {
				// A clean instance-boundary stop (timeout, signal, injected
				// fault): emit the clearly-marked partial metrics, then fail
				// so callers never mistake the run for a complete one.
				emit(m, jsonOut)
				return fmt.Errorf("%s: partial run (stopped at %s): %w", sc.Name, m.FaultCursor, err)
			}
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		if err := emit(m, jsonOut); err != nil {
			return err
		}
	}
	return nil
}

// startProgress follows a run's telemetry mailbox with a ticker, repainting
// one stderr line in place. The mailbox is pull-based: the simulation
// publishes at instance boundaries and this goroutine samples it — the run
// itself never blocks on, or even notices, the display. On a non-terminal
// stderr the intermediate repaints are skipped and only the final line is
// printed.
func startProgress(name string, p *telemetry.Progress) (stop func()) {
	tty := false
	if fi, err := os.Stderr.Stat(); err == nil {
		tty = fi.Mode()&os.ModeCharDevice != 0
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	//repro:spawn-ok display ticker; stop() joins it before the run returns
	go func() {
		defer close(finished)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if tty {
					fmt.Fprint(os.Stderr, "\r"+progressLine(name, p.Snapshot()))
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		if tty {
			fmt.Fprint(os.Stderr, "\r")
		}
		fmt.Fprintln(os.Stderr, progressLine(name, p.Snapshot()))
	}
}

// progressLine renders one progress sample.
func progressLine(name string, s telemetry.ProgressSnapshot) string {
	pct := ""
	if v := s.Percent(); v >= 0 {
		pct = fmt.Sprintf(" (%3.0f%%)", v)
	}
	return fmt.Sprintf("%s: %d/%d instances%s, %d cycles, %d instructions",
		name, s.InstancesDone, s.InstancesTotal, pct, s.Cycles, s.Instructions)
}

func emit(m *scenario.Metrics, jsonOut bool) error {
	if jsonOut {
		b, err := m.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		return nil
	}
	printSummary(m)
	return nil
}

func printSummary(m *scenario.Metrics) {
	if m.Partial {
		fmt.Printf("%-28s PARTIAL (stopped at %s: %s)\n", m.Scenario, m.FaultCursor, m.Fault)
		if len(m.PerThread) == 0 {
			return
		}
	}
	t0 := m.PerThread[0]
	fmt.Printf("%-28s %-12s threads=%d instr=%d cycles=%d dram=%d samples=%d phases=%d\n",
		m.Scenario, m.Workload, m.Threads,
		t0.Instructions, t0.Cycles, t0.DRAMFills, t0.FoldedSamples, len(t0.Phases))
	for _, tm := range m.PerThread {
		llc := tm.Levels[len(tm.Levels)-1]
		numaCol := ""
		if tm.RemoteDRAMFills != nil {
			numaCol = fmt.Sprintf(" remote=%d", *tm.RemoteDRAMFills)
		}
		fmt.Printf("  t%-2d instances=%d/%d ipc=%.3f mips[0]=%.0f L1=%.3f LLC=%.3f dram=%d%s samples=%d\n",
			tm.Thread, tm.InstancesUsed, tm.InstancesTotal, tm.MeanIPC,
			firstMIPS(tm), tm.Levels[0].MissRatio, llc.MissRatio, tm.DRAMFills, numaCol, tm.FoldedSamples)
	}
	if m.NUMA != nil {
		for _, n := range m.NUMA.Nodes {
			fmt.Printf("  node%-2d fills local=%d remote=%d writebacks=%d pages=%d\n",
				n.Node, n.FillsLocal, n.FillsRemote, n.Writebacks, n.Pages)
		}
	}
	if m.CG != nil {
		fmt.Printf("  cg iterations=%d final_residual=%.3e final_error=%.3e\n",
			m.CG.Iterations, m.CG.FinalResidual, m.CG.FinalError)
	}
}

func firstMIPS(tm scenario.ThreadMetrics) float64 {
	if len(tm.Phases) == 0 {
		return 0
	}
	return tm.Phases[0].MIPSMean
}

func updateGoldens(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range scenario.All() {
		m, err := scenario.Run(sc, scenario.Options{})
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		b, err := m.JSON()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, sc.Name+".json")
		if err := atomicio.WriteFile(path, func(w io.Writer) error {
			_, err := w.Write(b)
			return err
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(b))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
