package main

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestRunAllWithOverridesNeverAborts is the matrix-abort regression: a
// global override that cannot apply to some scenarios (sockets on HPCG is
// fine, placement on a flat machine is not) must skip those scenarios with
// a notice and run the rest — never abort the matrix midway.
func TestRunAllWithOverridesNeverAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scenario matrix twice")
	}
	for _, opts := range []scenario.Options{
		{Sockets: 2},
		{Placement: "interleave"},
	} {
		if err := runScenarios("all", opts, false, false); err != nil {
			t.Errorf("simrun -run all under %+v aborted: %v", opts, err)
		}
	}
}

// TestSingleRunRejectionMessages pins the unified validation path: a
// single-scenario run with an impossible override fails with machspec's
// message — the same one hpcgrepro and the sweep engine produce.
func TestSingleRunRejectionMessages(t *testing.T) {
	err := runScenarios("stream_triad_1t", scenario.Options{Placement: "interleave"}, false, false)
	if err == nil || !strings.Contains(err.Error(), `machspec: placement "interleave" requires a NUMA topology (sockets >= 1)`) {
		t.Errorf("placement-on-flat error = %v", err)
	}
	err = runScenarios("stream_triad_1t", scenario.Options{Placement: "bogus", Sockets: 2}, false, false)
	if err == nil || !strings.Contains(err.Error(), `unknown placement policy "bogus"`) {
		t.Errorf("unknown-placement error = %v", err)
	}
	err = runScenarios("nope", scenario.Options{}, false, false)
	if err == nil || !strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Errorf("unknown-scenario error = %v", err)
	}
}

// TestGoldenOverrideError pins -update-golden's refusal of any flag that
// changes the simulated runs away from the canonical golden identity.
func TestGoldenOverrideError(t *testing.T) {
	if err := goldenOverrideError(false, 0, 0, "", ""); err != nil {
		t.Errorf("clean -update-golden rejected: %v", err)
	}
	const want = "-update-golden ignores -reference/-threads/-sockets/-placement/-machine"
	for name, err := range map[string]error{
		"reference": goldenOverrideError(true, 0, 0, "", ""),
		"threads":   goldenOverrideError(false, 4, 0, "", ""),
		"sockets":   goldenOverrideError(false, 0, 2, "", ""),
		"placement": goldenOverrideError(false, 0, 0, "interleave", ""),
		"machine":   goldenOverrideError(false, 0, 0, "", "small"),
	} {
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s override: error = %v, want %q", name, err, want)
		}
	}
}

func TestCheckpointFlagValidation(t *testing.T) {
	cases := []struct {
		name                     string
		run                      string
		every                    int
		ckPath, resumePath, want string
	}{
		{name: "negative every", run: "stream_triad_1t", every: -1, want: "-checkpoint-every must be >= 0"},
		{name: "every without file", run: "stream_triad_1t", every: 3, want: "-checkpoint-every requires -checkpoint"},
		{name: "file without every", run: "stream_triad_1t", ckPath: "ck.bin", want: "-checkpoint requires -checkpoint-every"},
		{name: "checkpoint with all", run: "all", every: 3, ckPath: "ck.bin", want: "not -run all"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts scenario.Options
			err := setupCheckpointing(&opts, tc.run, tc.every, tc.ckPath, tc.resumePath)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
