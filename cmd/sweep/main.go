// Command sweep expands a machine × scenario × placement × sampling sweep
// file into simulation jobs, runs them on a bounded worker pool, and prints
// a summary table. Results are cached by content hash: re-running an
// unchanged sweep performs zero simulation. With -server the points are
// executed by a running simd server (shared cache, coalescing and admission
// control included) instead of in-process.
//
// SIGINT/SIGTERM stops the sweep cleanly: in-flight points cancel at their
// next instance boundary, completed points keep their results and cache
// entries, and the exit is non-zero with a finished/cancelled summary.
//
//	sweep -spec examples/sweeps/paper.json -jobs 4 -cache .sweepcache -out results.csv
//	sweep -spec examples/sweeps/paper.json -server http://127.0.0.1:8080
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/atomicio"
	"repro/internal/scenario"
	"repro/internal/simd"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep file (required)")
	jobs := fs.Int("jobs", 1, "concurrent simulations")
	cacheDir := fs.String("cache", "", "metrics cache directory (empty: no cache)")
	server := fs.String("server", "", "simd server URL; points run remotely instead of in-process")
	outPath := fs.String("out", "", "write results to a .csv or .json file")
	metricsOut := fs.String("metrics-out", "", "write a per-point run report (.json): key, source, wall time, simulated totals")
	progress := fs.Bool("progress", false, "live done/total progress line on stderr")
	verbose := fs.Bool("v", false, "log each point as it completes")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}

	points, err := loadAndExpand(*specPath)
	if err != nil {
		return err
	}

	runner := &sweep.Runner{Jobs: *jobs, Context: ctx}
	if *cacheDir != "" {
		c, err := sweep.OpenCache(*cacheDir)
		if err != nil {
			return err
		}
		runner.Cache = c
	}
	if *server != "" {
		runner.Execute = remoteExecute(&simd.Client{BaseURL: *server})
	}
	if *verbose {
		runner.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *progress {
		// \r keeps the line in place on a terminal; piped stderr gets one
		// line per settled point, which is still bounded by the point count.
		runner.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d points (%d%%)", done, total, 100*done/total)
		}
	}

	results, summary, err := runner.Run(points)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}

	printTable(stdout, results)
	fmt.Fprintf(stdout, "sweep: %s\n", summary)

	if *outPath != "" {
		if err := writeResults(*outPath, results); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := writeMetricsOut(*metricsOut, results, summary); err != nil {
			return err
		}
	}
	if summary.Cancelled > 0 {
		// The interrupted matrix is not an error in any single point, but
		// the sweep as a whole did not complete: exit non-zero so callers
		// (CI, scripts) do not mistake a partial table for a full one. The
		// finished points kept their results and cache entries.
		return fmt.Errorf("interrupted: %d point(s) finished, %d cancelled", summary.Finished(), summary.Cancelled)
	}
	if summary.Errors > 0 {
		return fmt.Errorf("%d point(s) failed", summary.Errors)
	}
	return nil
}

// remoteExecute adapts a simd client to the runner's Execute hook: each
// cache-miss point becomes one blocking server job. The point's identity
// fields map one-to-one onto the request, so the server derives the same
// content-hash key and its cache interoperates with the local -cache.
func remoteExecute(client *simd.Client) func(context.Context, sweep.Point) ([]byte, bool, error) {
	return func(ctx context.Context, p sweep.Point) ([]byte, bool, error) {
		req := simd.Request{
			Scenario:  p.Scenario.Name,
			Placement: p.Placement,
			Sampling:  p.Sampling,
			Reference: p.Reference,
		}
		if p.Spec != nil {
			// Send the resolved spec inline: the server must not need our
			// filesystem, and the canonical spec JSON hashes identically on
			// both sides.
			b, err := p.Spec.JSON()
			if err != nil {
				return nil, false, err
			}
			req.Spec = b
		}
		res, err := client.Run(ctx, req)
		if err != nil {
			return nil, false, err
		}
		return res.Metrics, res.Source == simd.SourceCache, nil
	}
}

// loadAndExpand reads a sweep file and expands its cross-product, resolving
// machine paths relative to the file's directory.
func loadAndExpand(path string) ([]sweep.Point, error) {
	f, err := sweep.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return f.Expand(filepath.Dir(path))
}

// row flattens one result for the table and the CSV writer.
type row struct {
	machine, scenarioName, placement, sampling, reference, source string
	cycles, instructions, l3Misses, dramFills, samples            uint64
	note                                                          string
}

func resultRow(res sweep.Result) row {
	p := res.Point
	r := row{
		machine:      p.Machine,
		scenarioName: p.Scenario.Name,
		placement:    p.Placement,
		reference:    strconv.FormatBool(p.Reference),
		source:       string(res.Source),
	}
	if r.machine == "" {
		r.machine = "default"
	} else if p.Spec != nil {
		r.machine = p.Spec.Name
	}
	if r.placement == "" {
		r.placement = "-"
	}
	if p.Sampling != nil {
		r.sampling = p.Sampling.String()
	} else {
		r.sampling = "-"
	}
	switch {
	case p.Skip != "":
		r.note = p.Skip
	case res.Err != nil:
		r.note = res.Err.Error()
	}
	if m := res.Parsed; m != nil {
		for _, t := range m.PerThread {
			r.cycles += t.Cycles
			r.instructions += t.Instructions
			r.l3Misses += t.L3Misses
			r.dramFills += t.DRAMFills
			r.samples += t.SamplesRecorded
		}
	}
	return r
}

func printTable(w io.Writer, results []sweep.Result) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "MACHINE\tSCENARIO\tPLACEMENT\tSAMPLING\tSOURCE\tCYCLES\tINSTRUCTIONS\tL3_MISSES\tDRAM_FILLS\tSAMPLES\tNOTE")
	for _, res := range results {
		r := resultRow(res)
		note := r.note
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.machine, r.scenarioName, r.placement, r.sampling, r.source,
			r.cycles, r.instructions, r.l3Misses, r.dramFills, r.samples, note)
	}
	tw.Flush()
}

func writeResults(path string, results []sweep.Result) error {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return atomicio.WriteFile(path, func(w io.Writer) error {
			return writeCSV(w, results)
		})
	case ".json":
		return atomicio.WriteFile(path, func(w io.Writer) error {
			return writeJSON(w, results)
		})
	default:
		return fmt.Errorf("-out %q: unsupported extension (want .csv or .json)", path)
	}
}

func writeCSV(w io.Writer, results []sweep.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"machine", "scenario", "placement", "sampling", "reference", "source",
		"key", "cycles", "instructions", "l3_misses", "dram_fills", "samples_recorded", "note",
	}); err != nil {
		return err
	}
	for _, res := range results {
		r := resultRow(res)
		if err := cw.Write([]string{
			r.machine, r.scenarioName, r.placement, r.sampling, r.reference, r.source,
			res.Point.Key,
			strconv.FormatUint(r.cycles, 10),
			strconv.FormatUint(r.instructions, 10),
			strconv.FormatUint(r.l3Misses, 10),
			strconv.FormatUint(r.dramFills, 10),
			strconv.FormatUint(r.samples, 10),
			r.note,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonResult is the machine-readable result record: identity, provenance
// and the full canonical metrics document.
type jsonResult struct {
	Machine   string            `json:"machine"`
	Scenario  string            `json:"scenario"`
	Placement string            `json:"placement,omitempty"`
	Sampling  any               `json:"sampling,omitempty"`
	Reference bool              `json:"reference,omitempty"`
	Source    string            `json:"source"`
	Key       string            `json:"key"`
	Skip      string            `json:"skip,omitempty"`
	Error     string            `json:"error,omitempty"`
	Metrics   *scenario.Metrics `json:"metrics,omitempty"`
}

// runReport is the -metrics-out document: a lightweight per-point record —
// identity, provenance, wall time and headline simulated totals — plus the
// run summary. Unlike -out it never embeds full metrics, so it stays small
// enough to attach to CI runs and dashboards.
type runReport struct {
	Points  []pointReport `json:"points"`
	Summary reportSummary `json:"summary"`
}

type pointReport struct {
	Label        string  `json:"label"`
	Key          string  `json:"key"`
	Source       string  `json:"source"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	Error        string  `json:"error,omitempty"`
}

type reportSummary struct {
	Points    int     `json:"points"`
	Simulated int     `json:"simulated"`
	Remote    int     `json:"remote,omitempty"`
	CacheHits int     `json:"cache_hits"`
	Deduped   int     `json:"deduped"`
	Skipped   int     `json:"skipped"`
	Cancelled int     `json:"cancelled,omitempty"`
	Errors    int     `json:"errors"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func writeMetricsOut(path string, results []sweep.Result, summary sweep.Summary) error {
	rep := runReport{
		Points: make([]pointReport, 0, len(results)),
		Summary: reportSummary{
			Points:    summary.Points,
			Simulated: summary.Simulated,
			Remote:    summary.Remote,
			CacheHits: summary.CacheHits,
			Deduped:   summary.Deduped,
			Skipped:   summary.Skipped,
			Cancelled: summary.Cancelled,
			Errors:    summary.Errors,
		},
	}
	for _, res := range results {
		pr := pointReport{
			Label:     res.Point.Label(),
			Key:       res.Point.Key,
			Source:    string(res.Source),
			ElapsedMs: float64(res.Elapsed) / float64(time.Millisecond),
		}
		rep.Summary.ElapsedMs += pr.ElapsedMs
		if m := res.Parsed; m != nil {
			for _, t := range m.PerThread {
				pr.Cycles += t.Cycles
				pr.Instructions += t.Instructions
			}
		}
		if res.Err != nil {
			pr.Error = res.Err.Error()
		}
		rep.Points = append(rep.Points, pr)
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
}

func writeJSON(w io.Writer, results []sweep.Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, res := range results {
		jr := jsonResult{
			Machine:   res.Point.Machine,
			Scenario:  res.Point.Scenario.Name,
			Placement: res.Point.Placement,
			Reference: res.Point.Reference,
			Source:    string(res.Source),
			Key:       res.Point.Key,
			Skip:      res.Point.Skip,
			Metrics:   res.Parsed,
		}
		if jr.Machine == "" {
			jr.Machine = "default"
		}
		if res.Point.Sampling != nil {
			jr.Sampling = res.Point.Sampling
		}
		if res.Err != nil {
			jr.Error = res.Err.Error()
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
