package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simd"
)

// TestSweepEndToEnd drives the CLI over the checked-in smoke sweep: the
// first run simulates every point, the re-run against the same cache
// simulates nothing, and both -out formats round-trip.
func TestSweepEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	outCSV := filepath.Join(dir, "results.csv")
	outJSON := filepath.Join(dir, "results.json")

	var buf bytes.Buffer
	args := []string{"-spec", "../../examples/sweeps/smoke.json", "-jobs", "2", "-cache", cacheDir, "-out", outCSV}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("first run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "sweep: 4 points, 4 simulated, 0 cached") {
		t.Fatalf("first-run summary missing:\n%s", buf.String())
	}

	buf.Reset()
	args = []string{"-spec", "../../examples/sweeps/smoke.json", "-jobs", "2", "-cache", cacheDir, "-out", outJSON}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("cached re-run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "sweep: 4 points, 0 simulated, 4 cached") {
		t.Fatalf("cached-run summary missing:\n%s", buf.String())
	}

	f, err := os.Open(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + 4 points
		t.Fatalf("CSV has %d rows, want 5", len(rows))
	}
	if rows[0][0] != "machine" || rows[1][5] != "simulated" {
		t.Fatalf("unexpected CSV shape: %v / %v", rows[0], rows[1])
	}

	jb, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []jsonResult
	if err := json.Unmarshal(jb, &parsed); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(parsed) != 4 {
		t.Fatalf("JSON output has %d records, want 4", len(parsed))
	}
	for _, rec := range parsed {
		if rec.Source != "cached" || rec.Metrics == nil || rec.Key == "" {
			t.Fatalf("unexpected JSON record: %+v", rec)
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{}, &buf); err == nil || !strings.Contains(err.Error(), "-spec is required") {
		t.Errorf("missing -spec error = %v", err)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1, "scenarios": ["nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", bad}, &buf); err == nil || !strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Errorf("unknown scenario error = %v", err)
	}
	if err := run(context.Background(), []string{"-spec", bad, "-out", filepath.Join(dir, "x.xml")}, &buf); err == nil {
		t.Error("bad -out extension accepted")
	}
}

// TestPaperSweepExpands keeps the checked-in example sweeps valid: both
// expand without error and the paper sweep is the >= 8-point cross-product
// the experiment doc describes.
func TestPaperSweepExpands(t *testing.T) {
	for _, tc := range []struct {
		file   string
		points int
	}{
		{"../../examples/sweeps/smoke.json", 4},
		{"../../examples/sweeps/paper.json", 8},
	} {
		f, err := loadAndExpand(tc.file)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if len(f) != tc.points {
			t.Errorf("%s expands to %d points, want %d", tc.file, len(f), tc.points)
		}
		for _, p := range f {
			if p.Skip != "" {
				t.Errorf("%s: point %s unexpectedly skipped: %s", tc.file, p.Label(), p.Skip)
			}
		}
	}
}

// TestSweepRemoteMode drives the sweep through a simd server: every
// cache-miss point executes remotely, the local cache still fills, and a
// re-run is all local cache hits.
func TestSweepRemoteMode(t *testing.T) {
	srv, err := simd.New(simd.Config{MaxConcurrent: 2, MaxQueued: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	var buf bytes.Buffer
	args := []string{"-spec", "../../examples/sweeps/smoke.json", "-jobs", "2",
		"-cache", cacheDir, "-server", ts.URL}
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("remote run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "4 remote") {
		t.Fatalf("remote summary missing:\n%s", buf.String())
	}
	if st := srv.Stats(); st.Simulated != 4 {
		t.Errorf("server simulated %d points, want 4", st.Simulated)
	}

	// Re-run: the local cache answers everything; the server sees nothing.
	buf.Reset()
	if err := run(context.Background(), args, &buf); err != nil {
		t.Fatalf("cached re-run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "4 cached") {
		t.Fatalf("cached summary missing:\n%s", buf.String())
	}
	if st := srv.Stats(); st.Simulated != 4 {
		t.Errorf("re-run reached the server: %d simulated", st.Simulated)
	}
}

// TestSweepInterrupted pins the signal contract: a cancelled run exits
// non-zero with a finished/cancelled summary, and the completed points keep
// their cache entries.
func TestSweepInterrupted(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal arrives before the first point
	var buf bytes.Buffer
	args := []string{"-spec", "../../examples/sweeps/smoke.json", "-cache", cacheDir}
	err := run(ctx, args, &buf)
	if err == nil {
		t.Fatal("interrupted sweep exited zero")
	}
	if !strings.Contains(err.Error(), "interrupted") || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("interruption not summarized: %v", err)
	}
	if !strings.Contains(buf.String(), "cancelled") {
		t.Errorf("summary line does not report cancellations:\n%s", buf.String())
	}
}
