// HPCG analysis: the paper's full Section III evaluation as a runnable
// example. Generates the HPCG problem (with the paper's two allocation
// groups), solves it with multigrid-preconditioned CG under PEBS
// monitoring, folds the CG iteration and prints Figure 1 and the in-text
// findings:
//
//   - each iteration is SYMGS (A: forward a1 + backward a2), SpMV (B),
//     the multigrid coarse work (C), SYMGS again (D) and SpMV again (E);
//   - the lower address region (the matrix) is read-only in the execution
//     phase — all stores land in the vector region above it;
//   - SpMV achieves higher traversal bandwidth than the SYMGS sweeps.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/folding"
	"repro/internal/hpcg"
)

func main() {
	cfg := core.DefaultConfig()
	params := hpcg.Params{NX: 24, NY: 24, NZ: 24, MGLevels: 3, MaxIters: 6}

	fmt.Printf("running HPCG %dx%dx%d, %d MG levels, %d CG iterations...\n",
		params.NX, params.NY, params.NZ, params.MGLevels, params.MaxIters)
	run, err := core.RunHPCG(cfg, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solver: %d iterations, residual %.3e -> %.3e\n\n",
		run.CG.Iterations, run.CG.Residuals[0],
		run.CG.Residuals[len(run.CG.Residuals)-1])

	// Figure 1, all three panels plus the tables.
	if err := run.Figure1().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The paper's phase narrative.
	fmt.Println("\n== Paper phase structure ==")
	for _, pp := range run.Paper {
		fn := run.Session.FuncOf(pp.Phase.DominantIP)
		fmt.Printf("  %-3s %-24s [%.2f..%.2f] %s\n",
			pp.Label, fn, pp.Phase.Lo, pp.Phase.Hi, pp.Phase.Direction)
	}

	// Finding 1: forward then backward sweeps in SYMGS.
	a1, ok1 := run.PhaseByLabel("a1")
	a2, ok2 := run.PhaseByLabel("a2")
	if ok1 && ok2 && a1.Direction == folding.SweepForward && a2.Direction == folding.SweepBackward {
		fmt.Println("\n[ok] SYMGS traverses the address space forward (a1) then backward (a2)")
	} else {
		fmt.Println("\n[??] SYMGS sweep structure not detected as fwd+bwd")
	}

	// Finding 2: no stores in the matrix region during execution.
	if m := run.MatrixGroup(); m != nil && m.Stores == 0 && m.Loads > 0 {
		fmt.Printf("[ok] matrix region (%s) is load-only during execution (%d loads, 0 stores)\n",
			m.Label(), m.Loads)
		fmt.Println("     -> as the paper notes, this region would benefit from memory where loads are faster than stores")
	}

	// Finding 3: SpMV bandwidth exceeds the SYMGS sweeps.
	if b, ok := run.PhaseByLabel("B"); ok && ok1 {
		fmt.Printf("[ok] traversal bandwidth: SYMGS fwd %.0f MB/s, SpMV %.0f MB/s (ratio %.2f; paper 4197 vs 6427 = 1.53)\n",
			a1.SpanBandwidth/1e6, b.SpanBandwidth/1e6, b.SpanBandwidth/a1.SpanBandwidth)
	}
}
