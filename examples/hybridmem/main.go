// Hybrid memory & cache what-if: the follow-on analyses the paper's
// introduction motivates. From one monitored HPCG run this example
// computes (a) the reuse-distance profile of the sampled access stream and
// the implied hit-ratio curve across cache sizes ("tuning cache
// organization"), and (b) hybrid-memory placement advice per data object —
// operationalizing the paper's closing observation that the read-only
// matrix region "might benefit from memory technologies where loads are
// faster than stores".
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hpcg"
	"repro/internal/reuse"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Monitor.PEBS.Period = 300 // denser samples give a finer reuse profile
	params := hpcg.Params{NX: 16, NY: 16, NZ: 16, MGLevels: 2, MaxIters: 4}
	run, err := core.RunHPCG(cfg, params)
	if err != nil {
		log.Fatal(err)
	}

	// (a) Reuse distances over the folded sample stream.
	an, err := reuse.FromFolded(run.Folded, 64)
	if err != nil {
		log.Fatal(err)
	}
	h := an.Histogram()
	fmt.Printf("reuse-distance profile over %d sampled accesses (%d distinct lines):\n",
		an.Accesses(), an.Lines())
	fmt.Printf("  cold (first touch): %5.1f%%\n", 100*float64(h.Cold)/float64(h.Total))
	for b, c := range h.Buckets {
		if c == 0 {
			continue
		}
		// Bucket 0 holds exactly distance 0; bucket b >= 1 holds
		// [2^(b-1), 2^b) (the bits.Len64 bucketing).
		lo := 0
		if b >= 1 {
			lo = 1 << (b - 1)
		}
		fmt.Printf("  distance [%6d, %6d): %5.1f%%\n", lo, 1<<b,
			100*float64(c)/float64(h.Total))
	}

	fmt.Println("\ncache what-if (hit ratio of an LRU cache by capacity):")
	for _, kb := range []int{16, 32, 64, 256, 1024, 4096} {
		lines := kb * 1024 / 64
		fmt.Printf("  %5d KiB: %5.1f%%\n", kb, 100*h.HitRatio(lines))
	}

	// (b) Hybrid-memory placement advice from the object accounting.
	fmt.Println("\nhybrid-memory placement advice:")
	placements := reuse.Advise(run.Session.Mon.Registry().Objects(), reuse.AdvisorConfig{})
	for i, p := range placements {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(placements)-i)
			break
		}
		fmt.Printf("  %-44s -> %-14s (%s)\n", p.Object.Label(), p.Tier, p.Reason)
	}
}
