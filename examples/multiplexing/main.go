// Multiplexing: demonstrates why the paper multiplexes load and store PEBS
// events inside a single run. The alternative — one run sampling loads,
// another sampling stores — cannot be overlaid, because address-space
// layout randomization (ASLR) shifts the heap between runs and the two
// address axes no longer line up (the paper's footnote 1).
//
// The example runs STREAM three ways and compares the store band's
// position:
//
//  1. run A sampling loads only (one ASLR draw),
//  2. run B sampling stores only (a different ASLR draw),
//  3. run C multiplexing both in one run.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pebs"
	"repro/internal/workloads"
)

// addrSpan returns the [min, max] sampled address of the run's folded
// region, filtered by access kind.
func addrSpan(res *core.RunWorkloadResult, stores bool) (lo, hi uint64, n int) {
	for _, mp := range res.Folded.Mem {
		if mp.Store != stores {
			continue
		}
		if n == 0 || mp.Addr < lo {
			lo = mp.Addr
		}
		if mp.Addr > hi {
			hi = mp.Addr
		}
		n++
	}
	return lo, hi, n
}

func runStream(aslrSeed int64, events pebs.EventMask, muxNs uint64) *core.RunWorkloadResult {
	cfg := core.DefaultConfig()
	cfg.ASLRSeed = aslrSeed
	cfg.Monitor.MuxQuantumNs = muxNs
	if muxNs == 0 {
		cfg.Monitor.PEBS.Events = events
	}
	cfg.Monitor.PEBS.Period = 300
	res, err := core.RunWorkload(cfg, workloads.NewStream(1<<16), 12)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Two independent runs, as one would do without multiplexing. Each
	// process gets its own ASLR draw.
	runLoads := runStream(1001, pebs.SampleLoads, 0)
	runStores := runStream(2002, pebs.SampleStores, 0)

	lLo, lHi, ln := addrSpan(runLoads, false)
	sLo, sHi, sn := addrSpan(runStores, true)
	fmt.Println("two-run approach (ASLR randomizes each run):")
	fmt.Printf("  run A loads:  %d samples in [%#x, %#x]\n", ln, lLo, lHi)
	fmt.Printf("  run B stores: %d samples in [%#x, %#x]\n", sn, sLo, sHi)
	shift := int64(sLo) - int64(lLo)
	fmt.Printf("  heap shift between runs: %d MiB — the two address axes cannot be overlaid\n\n",
		shift/(1<<20))

	// One multiplexed run: loads and stores alternate on a 50 µs quantum,
	// sharing a single address space.
	muxRun := runStream(3003, pebs.SampleLoads, 50_000)
	mlLo, mlHi, mln := addrSpan(muxRun, false)
	msLo, msHi, msn := addrSpan(muxRun, true)
	fmt.Println("multiplexed single run (the paper's approach):")
	fmt.Printf("  loads:  %d samples in [%#x, %#x]\n", mln, mlLo, mlHi)
	fmt.Printf("  stores: %d samples in [%#x, %#x]\n", msn, msLo, msHi)
	if msn == 0 || mln == 0 {
		log.Fatal("multiplexing failed to capture both classes")
	}
	// In STREAM, the store band (array a) sits below the load bands (b, c)
	// in one coherent address space: the store span must overlap or adjoin
	// the load span's array layout.
	fmt.Printf("  store band offset from load band: %d KiB within one address space\n",
		(int64(mlLo)-int64(msLo))/(1<<10))
	fmt.Println("\nconclusion: one multiplexed run yields load AND store samples on a")
	fmt.Println("single consistent address axis; two runs do not, because of ASLR.")
}
