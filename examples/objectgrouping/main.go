// Object grouping: reproduces the paper's preliminary-analysis failure and
// its fix. HPCG allocates its matrix through many consecutive allocations
// of a few hundred bytes — below Extrae's tracking threshold — so "most of
// the PEBS references were not associated to a memory object". Wrapping
// the first and last addresses of each allocation run into a group (the
// paper's manual instrumentation) makes the references resolvable.
//
// The example runs the same HPCG twice, with grouping off then on, and
// compares the sample resolution rates.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hpcg"
)

func main() {
	params := hpcg.Params{NX: 16, NY: 16, NZ: 16, MGLevels: 2, MaxIters: 3}
	cfg := core.DefaultConfig()
	// HPCG's row storage is 540 bytes plus an 80-byte map node per row;
	// a 1 KiB tracking threshold models the paper's situation where both
	// populations sit below the individual-tracking cutoff.
	cfg.Monitor.MinTrackSize = 1024

	// Run 1 — the preliminary analysis: no grouping instrumentation.
	ungroupedParams := params
	ungroupedParams.DisableGrouping = true
	ungrouped, err := core.RunHPCG(cfg, ungroupedParams)
	if err != nil {
		log.Fatal(err)
	}

	// Run 2 — the paper's fix: the two allocation groups.
	grouped, err := core.RunHPCG(cfg, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HPCG 16^3, 3 iterations, identical sampling; only object handling differs")
	fmt.Println()
	fmt.Printf("%-34s %20s %20s\n", "", "ungrouped (prelim.)", "grouped (paper fix)")
	ur := ungrouped.Session.Mon.Registry()
	gr := grouped.Session.Mon.Registry()
	fmt.Printf("%-34s %19.1f%% %19.1f%%\n", "PEBS sample resolution rate",
		100*ur.ResolutionRate(), 100*gr.ResolutionRate())
	fmt.Printf("%-34s %20d %20d\n", "objects in registry",
		len(ur.Objects()), len(gr.Objects()))
	us, gs := ur.Stats(), gr.Stats()
	fmt.Printf("%-34s %20d %20d\n", "allocations below threshold",
		us.AllocsBelowThreshold, gs.AllocsBelowThreshold)
	fmt.Printf("%-34s %20d %20d\n", "allocations grouped",
		us.AllocsGrouped, gs.AllocsGrouped)

	if m := grouped.MatrixGroup(); m != nil {
		fmt.Printf("\ngrouped run's matrix object: %s (%d members, %d sampled refs)\n",
			m.Label(), m.Members, m.Refs)
	}
	fmt.Println("\nconclusion: without grouping the dominant data structure is invisible")
	fmt.Println("to the memory profile; with the paper's wrapping instrumentation the")
	fmt.Println("references resolve to two named objects, as in Figure 1.")
}
