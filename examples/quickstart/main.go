// Quickstart: monitor a STREAM triad with PEBS memory sampling, fold the
// per-iteration region and print the folded instruction rate and the
// memory-access summary — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/workloads"
)

func main() {
	// 1. Configure the stack. DefaultConfig gives a Haswell-like core and
	//    cache hierarchy, PEBS sampling with load/store multiplexing, and
	//    the default folding parameters.
	cfg := core.DefaultConfig()
	cfg.Monitor.PEBS.Period = 400 // denser sampling for a short demo

	// 2. Pick a workload: 256 Ki doubles per array (6 MiB total: larger
	//    than L3, so the triad streams from DRAM).
	w := workloads.NewStream(1 << 18)

	// 3. Run it under monitoring and fold the iteration region.
	res, err := core.RunWorkload(cfg, w, 20)
	if err != nil {
		log.Fatal(err)
	}
	f := res.Folded

	fmt.Printf("folded %d instances of %q (mean duration %.3f ms)\n",
		f.InstancesUsed, w.Name(), f.MeanDurationNs/1e6)
	fmt.Printf("mean IPC %.2f\n", f.MeanIPC())

	// 4. The folded curves: instruction rate and L1D miss ratio across
	//    normalized time.
	mips := f.MIPS()
	l1 := f.PerInstruction(cpu.CtrL1DMiss)
	fmt.Println("\nsigma    MIPS    L1Dmiss/instr")
	for i := 0; i < len(f.Grid); i += len(f.Grid) / 10 {
		fmt.Printf("%5.2f %7.0f %10.4f\n", f.Grid[i], mips[i], l1[i])
	}

	// 5. The memory perspective: sampled addresses and where the data came
	//    from.
	var srcCount [memhier.NumSources]int
	for _, mp := range f.Mem {
		srcCount[mp.Source]++
	}
	fmt.Printf("\n%d folded memory samples; data sources:\n", len(f.Mem))
	for s := memhier.DataSource(0); s < memhier.NumSources; s++ {
		if s == memhier.SrcDRAMRemote && srcCount[s] == 0 {
			// Remote DRAM only exists on NUMA-routed machines; the flat
			// quickstart session can never produce it.
			continue
		}
		fmt.Printf("  %-5s %6.1f%%\n", s, 100*float64(srcCount[s])/float64(len(f.Mem)))
	}

	// 6. Sanity: the triad math ran for real.
	if w.Value(100) != w.Expected(100) {
		log.Fatalf("triad result wrong: %g != %g", w.Value(100), w.Expected(100))
	}
	fmt.Println("\ntriad verified: a[i] = b[i] + 3*c[i]")
}
