// Package annot implements the comment conventions shared by the
// reprolint analyzers: `//repro:<name>` annotations that opt a function
// into a checked invariant, and `//repro:<name> <reason>` waivers that
// suppress one diagnostic with a recorded justification.
//
// An annotation marks a declaration (it lives in the doc comment of the
// function it annotates). A waiver marks a site: it suppresses a
// diagnostic reported on the same line, or on the line directly below
// it, and it must carry a non-empty reason — an unexplained waiver is
// itself a diagnostic, so every escape hatch leaves a paper trail.
package annot

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// prefix is the comment namespace of every reprolint marker.
const prefix = "//repro:"

// Has reports whether the comment group carries the `//repro:<name>`
// annotation (alone on its line; trailing text is allowed and ignored).
func Has(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if marker, _, ok := split(c.Text); ok && marker == name {
			return true
		}
	}
	return false
}

// split parses one comment line into a reprolint marker and its trailing
// reason text.
func split(text string) (marker, reason string, ok bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i:]), true
	}
	return rest, "", true
}

// Waivers indexes the `//repro:<name>` waiver comments of one pass.
type Waivers struct {
	pass *analysis.Pass
	name string
	// byLine maps file:line of the waiver comment to its reason.
	byLine map[key]string
}

type key struct {
	file string
	line int
}

// NewWaivers collects every `//repro:<name>` waiver in the pass's files.
// A waiver with no reason is reported immediately: the comment is the
// audit trail, so it must say why the invariant does not apply.
func NewWaivers(pass *analysis.Pass, name string) *Waivers {
	w := &Waivers{pass: pass, name: name, byLine: make(map[key]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				marker, reason, ok := split(c.Text)
				if !ok || marker != name {
					continue
				}
				if reason == "" {
					pass.Reportf(c.Pos(), "//repro:%s waiver without a justification", name)
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				w.byLine[key{pos.Filename, pos.Line}] = reason
			}
		}
	}
	return w
}

// Waived reports whether a diagnostic at pos is suppressed by a waiver
// on the same line or on the line directly above.
func (w *Waivers) Waived(pos token.Pos) bool {
	p := w.pass.Fset.Position(pos)
	if _, ok := w.byLine[key{p.Filename, p.Line}]; ok {
		return true
	}
	_, ok := w.byLine[key{p.Filename, p.Line - 1}]
	return ok
}

// PackageMatch reports whether the package path is on the comma-separated
// surface list: an element matches the path's last segment or is a full
// suffix of the path (so both "trace" and "internal/trace" select
// repro/internal/trace).
func PackageMatch(path, list string) bool {
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	for _, el := range strings.Split(list, ",") {
		el = strings.TrimSpace(el)
		if el == "" {
			continue
		}
		if el == base || el == path || strings.HasSuffix(path, "/"+el) {
			return true
		}
	}
	return false
}

// TestFile reports whether the node's file is a _test.go file. The
// analyzers that police whole packages skip test files: tests are free
// to iterate maps and spawn goroutines; the invariants bind the shipped
// simulator.
func TestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
