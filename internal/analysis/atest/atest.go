// Package atest is a self-contained analysistest harness for the
// reprolint analyzers. The upstream analysistest depends on
// go/packages (and through it on a module-aware loader); this repo
// vendors only the analysis framework the Go toolchain itself ships,
// so atest loads fixture packages directly: it parses every .go file
// in a testdata/src/<pkg> directory, type-checks against the standard
// library via the source importer (no export data, no network), runs
// the analyzer's required passes, and matches reported diagnostics
// against `// want "regexp"` comments exactly like analysistest does.
//
// Semantics kept from analysistest: each `// want` comment expects one
// or more diagnostics on its own line, each matching the quoted
// regular expression; unmatched diagnostics and unsatisfied
// expectations both fail the test.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// SetFlags sets analyzer flags for the duration of a test and restores
// the previous values on cleanup (analyzer flag state is global).
func SetFlags(t *testing.T, a *analysis.Analyzer, kv map[string]string) {
	t.Helper()
	for name, value := range kv {
		f := a.Flags.Lookup(name)
		if f == nil {
			t.Fatalf("analyzer %s has no flag -%s", a.Name, name)
		}
		old := f.Value.String()
		if err := f.Value.Set(value); err != nil {
			t.Fatalf("setting -%s=%s: %v", name, value, err)
		}
		t.Cleanup(func() {
			if err := f.Value.Set(old); err != nil {
				t.Errorf("restoring -%s=%s: %v", name, old, err)
			}
		})
	}
}

// Run loads the fixture package in dir (e.g. "testdata/src/a"), runs
// the analyzer over it, and checks diagnostics against the fixture's
// `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pass, diags := analyze(t, a, dir)
	checkWants(t, pass.Fset, pass.Files, diags)
}

// Diagnostics loads and runs like Run but returns the raw diagnostics
// instead of matching expectations (for tests asserting counts or
// cross-cutting properties).
func Diagnostics(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	_, diags := analyze(t, a, dir)
	return diags
}

func analyze(t *testing.T, a *analysis.Analyzer, dir string) (*analysis.Pass, []analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		// The source importer type-checks stdlib dependencies from
		// GOROOT/src: slower than export data, but hermetic.
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkgName := files[0].Name.Name
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var runAll func(a *analysis.Analyzer) error
	runAll = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done {
			return nil
		}
		for _, req := range a.Requires {
			if err := runAll(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: conf.Sizes,
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
		return nil
	}
	// Run prerequisites silently (their diagnostics are not under test),
	// then the target analyzer collecting diagnostics.
	for _, req := range a.Requires {
		if err := runAll(req); err != nil {
			t.Fatal(err)
		}
	}
	diags = nil
	if err := runAll(a); err != nil {
		t.Fatal(err)
	}

	pass := &analysis.Pass{Fset: fset, Files: files}
	return pass, diags
}

// want arguments are regular expressions, double-quoted or backquoted
// (as in analysistest).
var wantRE = regexp.MustCompile("// want((?: +(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					text := arg[1]
					if arg[2] != "" {
						text = arg[2]
					}
					pat, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
