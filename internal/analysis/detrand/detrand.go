// Package detrand defines an analyzer enforcing the determinism
// invariant of the packages that feed golden artifacts: everything that
// reaches a scenario Metrics JSON, a PRV/PCF trace or a rendered report
// must be a pure function of the simulated run, so two executions
// produce byte-identical output.
//
// Two sources of silent nondeterminism are policed. Wall-clock and
// ambient randomness: calls to time.Now/Since/Until and to the global
// (package-level) math/rand and math/rand/v2 functions are flagged —
// seeded *rand.Rand instances are fine, the shared stream is not. And
// map iteration order: a `range` over a map is flagged unless the
// enclosing function visibly restores an order afterwards (a sort.* or
// slices.Sort* call after the loop starts — the collect-keys-then-sort
// idiom the codebase uses), or the loop carries a
// `//repro:unordered <reason>` waiver recording why order cannot reach
// an output (e.g. the results land in another map, or are reduced
// commutatively).
//
// Test files are exempt: the invariant binds the shipped pipeline.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/annot"
)

const doc = `check determinism-surface packages for nondeterminism sources

Packages on the golden-artifact surface must not read the wall clock
(time.Now/Since/Until) or the global math/rand stream, and must not let
map iteration order escape: a range over a map needs a later sort in the
same function or a //repro:unordered <reason> waiver.`

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  doc,
	Run:  run,
}

// DefaultSurface is the determinism surface: every package whose output
// is pinned byte-exact by a golden test or consumed by one. telemetry is
// on it because its instruments sit inside those packages' hot paths —
// an instrument that read the wall clock would smuggle nondeterminism
// into every instrumented run (scrape-time code is where clocks belong,
// and that lives in the server, off this surface).
const DefaultSurface = "scenario,checkpoint,trace,paraver,folding,report,telemetry"

var surface string

func init() {
	Analyzer.Flags.StringVar(&surface, "packages", DefaultSurface,
		"comma-separated packages (name or path suffix) on the determinism surface")
}

func run(pass *analysis.Pass) (any, error) {
	if !annot.PackageMatch(pass.Pkg.Path(), surface) {
		return nil, nil
	}
	waivers := annot.NewWaivers(pass, "unordered")
	for _, f := range pass.Files {
		if annot.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, waivers)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, waivers *annot.Waivers) {
	// Collect the positions of order-restoring calls once per function;
	// a map range is justified by any sort that starts after it does.
	var sortPositions []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok && isSortCall(fn) {
			sortPositions = append(sortPositions, call.Pos())
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					if !waivers.Waived(n.Pos()) {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock on the determinism surface", fn.Name())
					}
				}
			case "math/rand", "math/rand/v2":
				if isGlobalRand(fn) && !waivers.Waived(n.Pos()) {
					pass.Reportf(n.Pos(), "global %s.%s draws from the shared nondeterministic stream (use a seeded *rand.Rand)",
						fn.Pkg().Name(), fn.Name())
				}
			}
		case *ast.RangeStmt:
			if !isMapType(pass.TypesInfo.TypeOf(n.X)) {
				return true
			}
			if waivers.Waived(n.Pos()) {
				return true
			}
			for _, p := range sortPositions {
				if p > n.Pos() {
					return true // collect-then-sort idiom
				}
			}
			pass.Reportf(n.Pos(), "map iteration order can reach an output: sort the results or waive with //repro:unordered <reason>")
		}
		return true
	})
}

// isGlobalRand reports whether fn is a package-level math/rand function
// that draws from (or perturbs) the shared stream. Constructors of
// self-contained deterministic state are allowed.
func isGlobalRand(fn *types.Func) bool {
	if fn.Signature().Recv() != nil {
		return false // methods on a seeded *rand.Rand are deterministic
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

func isSortCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		// Every package-level entry point that establishes an order.
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc", "Sorted", "SortedFunc", "SortedStableFunc":
			return true
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
