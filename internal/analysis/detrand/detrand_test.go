package detrand_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	atest.Run(t, detrand.Analyzer, "testdata/src/trace")
}

func TestOffSurfacePackageIgnored(t *testing.T) {
	diags := atest.Diagnostics(t, detrand.Analyzer, "testdata/src/other")
	if len(diags) != 0 {
		t.Fatalf("off-surface package produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}

// TestTelemetrySurface pins that the observability layer joined the
// default determinism surface: an instrument that reads the wall clock
// or the shared rand stream inside a hot-path update is a diagnostic.
func TestTelemetrySurface(t *testing.T) {
	atest.Run(t, detrand.Analyzer, "testdata/src/telemetry")
}
