package detrand_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	atest.Run(t, detrand.Analyzer, "testdata/src/trace")
}

func TestOffSurfacePackageIgnored(t *testing.T) {
	diags := atest.Diagnostics(t, detrand.Analyzer, "testdata/src/other")
	if len(diags) != 0 {
		t.Fatalf("off-surface package produced %d diagnostics, want 0: %v", len(diags), diags)
	}
}
