// Package other is off the determinism surface: the same constructs
// must produce no diagnostics.
package other

import "time"

func WallClock() int64 {
	return time.Now().UnixNano()
}

func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
