// Package telemetry is the observability-surface fixture (its name puts
// it on the default determinism surface): instrument update paths run
// inside the simulation hot loop, so a wall-clock read or a global rand
// draw there is a diagnostic. The allowed shapes mirror the real
// package: callers pass durations in, instruments only store them.
package telemetry

import (
	"math/rand"
	"time"
)

type histogram struct {
	sum   float64
	count uint64
}

// observeSince is the forbidden shape: an instrument timing itself puts
// time.Now on every instrumented hot path.
func observeSince(h *histogram, start time.Time) {
	h.sum += time.Since(start).Seconds() // want `time.Since reads the wall clock`
	h.count++
}

// observe is the allowed shape: the caller measured, the instrument
// only stores.
func observe(h *histogram, seconds float64) {
	h.sum += seconds
	h.count++
}

// sampleJitter draws from the shared stream: flagged.
func sampleJitter(h *histogram) {
	observe(h, rand.Float64()) // want `global rand.Float64 draws from the shared nondeterministic stream`
}

// sampleSeeded uses self-contained deterministic state: fine.
func sampleSeeded(h *histogram, seed int64) {
	r := rand.New(rand.NewSource(seed))
	observe(h, r.Float64())
}
