// Package trace is the detrand fixture (its name puts it on the
// default determinism surface): wall-clock reads, global rand draws,
// and map iteration with and without order restoration.
package trace

import (
	"math/rand"
	"sort"
	"time"
)

func WallClock() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func GlobalDraw() int {
	return rand.Intn(10) // want `global rand.Intn draws from the shared nondeterministic stream`
}

// SeededDraw is fine: a self-contained deterministic stream.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// KeysUnsorted leaks map order into the returned slice.
func KeysUnsorted(m map[int]string) []string {
	var out []string
	for k := range m { // want `map iteration order can reach an output`
		out = append(out, m[k])
	}
	return out
}

// KeysSorted is the codebase's collect-then-sort idiom: the range is
// justified by the later sort.
func KeysSorted(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// SlicesSorted accepts the slices package's sorts too.
func SlicesSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	sort.SliceStable(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortStrings(s []string) { sort.Strings(s) }

// Waived: a commutative reduction cannot observe order.
func Waived(m map[int]int) int {
	s := 0
	//repro:unordered commutative sum; iteration order cannot reach the result
	for _, v := range m {
		s += v
	}
	return s
}

// NonMapRanges must not be flagged.
func NonMapRanges(xs []int, s string) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	for range s {
		n++
	}
	return n
}
