// Package goldenkey defines an analyzer enforcing the capability-keying
// rule for the scenario Metrics serialization: every json-tagged field
// added to the metric structs after the golden baseline was frozen must
// carry `omitempty`, so pre-existing golden files never churn when a new
// capability lands (the PR-5 NUMA fields and PR-6 fault fields both
// followed this rule; this analyzer makes it a compile-time property).
//
// The baseline — the fields that existed when the first goldens were
// pinned, serialized unconditionally ever since — is checked in next to
// the analyzer (baseline.txt, one Struct.Field per line). A field that
// is neither in the baseline nor omitempty is a diagnostic: either key
// it (`json:"name,omitempty"`, ideally behind a capability predicate so
// zero values disappear entirely), or consciously regenerate every
// golden and add the field to the baseline in the same commit.
package goldenkey

import (
	"bufio"
	_ "embed"
	"go/ast"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/annot"
)

const doc = `check metric structs for capability-keyed (omitempty) json fields

Fields of the golden-serialized metric structs added beyond the frozen
baseline must carry omitempty, so existing golden files stay
byte-identical when new capabilities land.`

// Analyzer is the goldenkey analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goldenkey",
	Doc:  doc,
	Run:  run,
}

//go:embed baseline.txt
var embeddedBaseline string

var (
	surface      string
	baselineFlag string
)

func init() {
	Analyzer.Flags.StringVar(&surface, "packages", "scenario",
		"comma-separated packages (name or path suffix) holding golden-serialized structs")
	Analyzer.Flags.StringVar(&baselineFlag, "baseline", "",
		"comma-separated Struct.Field baseline overriding the checked-in list (tests)")
}

func baseline() map[string]bool {
	m := make(map[string]bool)
	if baselineFlag != "" {
		for _, e := range strings.Split(baselineFlag, ",") {
			if e = strings.TrimSpace(e); e != "" {
				m[e] = true
			}
		}
		return m
	}
	sc := bufio.NewScanner(strings.NewReader(embeddedBaseline))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m[line] = true
	}
	return m
}

func run(pass *analysis.Pass) (any, error) {
	if !annot.PackageMatch(pass.Pkg.Path(), surface) {
		return nil, nil
	}
	base := baseline()
	for _, f := range pass.Files {
		if annot.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStruct(pass, ts.Name.Name, st, base)
			}
		}
	}
	return nil, nil
}

func checkStruct(pass *analysis.Pass, name string, st *ast.StructType, base map[string]bool) {
	for _, field := range st.Fields.List {
		if field.Tag == nil {
			continue
		}
		tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
		jsonTag, ok := tag.Lookup("json")
		if !ok || jsonTag == "-" {
			continue
		}
		parts := strings.Split(jsonTag, ",")
		keyed := false
		for _, opt := range parts[1:] {
			if opt == "omitempty" {
				keyed = true
			}
		}
		if keyed {
			continue
		}
		for _, id := range field.Names {
			key := name + "." + id.Name
			if base[key] {
				continue
			}
			pass.Reportf(field.Pos(),
				"json field %s (%q) is serialized unconditionally: new metric fields must be capability-keyed with omitempty, or the golden baseline must be regenerated and %s added to baseline.txt",
				key, parts[0], key)
		}
		// Embedded json-tagged field: same rule, keyed by type name.
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "embedded json-tagged field in %s: name it explicitly so the baseline can track it", name)
		}
	}
}
