package goldenkey_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/goldenkey"
)

func TestGoldenkey(t *testing.T) {
	atest.SetFlags(t, goldenkey.Analyzer, map[string]string{
		"baseline": "Metrics.Scenario,Metrics.Threads,PhaseMetrics.Name",
	})
	atest.Run(t, goldenkey.Analyzer, "testdata/src/scenario")
}

// TestDeletingOmitemptyIsADiagnostic pins the acceptance case: taking
// omitempty off a post-baseline field must produce a diagnostic. The
// fixture's NewUnkeyed field IS that case (a field with the tag
// stripped); this test asserts it fires even with an otherwise-complete
// baseline, so the analyzer cannot rot into tag-blindness.
func TestDeletingOmitemptyIsADiagnostic(t *testing.T) {
	atest.SetFlags(t, goldenkey.Analyzer, map[string]string{
		"baseline": "Metrics.Scenario,Metrics.Threads,Metrics.NewKeyed,PhaseMetrics.Name,PhaseMetrics.Extra",
	})
	diags := atest.Diagnostics(t, goldenkey.Analyzer, "testdata/src/scenario")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (NewUnkeyed)", len(diags))
	}
	if !strings.Contains(diags[0].Message, "Metrics.NewUnkeyed") {
		t.Fatalf("diagnostic = %q, want it to name Metrics.NewUnkeyed", diags[0].Message)
	}
}

// TestEmbeddedBaselineCoversRealMetrics guards the checked-in baseline
// list: the fields the PR-3 goldens serialize unconditionally must stay
// present, or the analyzer would start flagging the real metrics.go.
func TestEmbeddedBaselineCoversRealMetrics(t *testing.T) {
	atest.SetFlags(t, goldenkey.Analyzer, map[string]string{"baseline": ""})
	// The fixture reuses the real struct/field names: with the embedded
	// baseline loaded, Metrics.Scenario / Metrics.Threads /
	// PhaseMetrics.Name are suppressed and only the two post-baseline
	// fields fire. An empty or unparsed baseline would flag all five.
	diags := atest.Diagnostics(t, goldenkey.Analyzer, "testdata/src/scenario")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics with embedded baseline, want 2 (NewUnkeyed, Extra): %v", len(diags), diags)
	}
	got := map[string]bool{}
	for _, d := range diags {
		for _, f := range []string{"Metrics.NewUnkeyed", "PhaseMetrics.Extra"} {
			if strings.Contains(d.Message, f) {
				got[f] = true
			}
		}
	}
	if !got["Metrics.NewUnkeyed"] || !got["PhaseMetrics.Extra"] {
		t.Fatalf("embedded-baseline run missed the unkeyed fields: %v", diags)
	}
}
