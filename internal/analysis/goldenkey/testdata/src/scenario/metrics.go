// Package scenario is the goldenkey fixture: a golden-serialized
// metric struct with baseline fields, a properly capability-keyed new
// field, and an unkeyed new field (the diagnostic).
package scenario

// Metrics mirrors the shape of the real scenario.Metrics.
type Metrics struct {
	Scenario string `json:"scenario"`
	Threads  int    `json:"threads"`

	// NewUnkeyed postdates the baseline and serializes unconditionally:
	// every old golden would grow this key.
	NewUnkeyed int `json:"new_unkeyed"` // want `json field Metrics.NewUnkeyed .* must be capability-keyed`

	// NewKeyed is the correct pattern: omitempty, ideally behind a
	// capability predicate.
	NewKeyed *int `json:"new_keyed,omitempty"`

	// Ignored and untagged fields never reach the serialization.
	Ignored  int `json:"-"`
	internal int
}

// Nested structs are checked by the same rule.
type PhaseMetrics struct {
	Name  string  `json:"name"`
	Extra float64 `json:"extra"` // want `json field PhaseMetrics.Extra .* must be capability-keyed`
}

func use() { _ = Metrics{internal: 1} }
