// Package noalloc defines an analyzer enforcing the repository's
// zero-allocation invariant: a function annotated `//repro:noalloc`
// (the per-memory-op hot path — memhier.accessLine/AccessRun, the cpu
// issue and PMU accounting layer, the PEBS gate path) must not contain
// constructs that can allocate, directly or transitively through
// same-package callees.
//
// The flagged constructs are the ones the hot-path rewrites of PR 1 and
// PR 4 eliminated and that benchmem proved away: make/new, composite
// literals that escape through & and slice/map literals, string
// concatenation and string<->[]byte conversions, values boxed into
// interfaces, closure creation, calls into package fmt, variadic calls
// that materialize their argument slice, and go statements. Dynamic
// (interface-method and func-value) calls are the callee's
// responsibility and are not flagged; cross-package static calls are
// likewise trusted — the annotation lives where the body lives.
//
// Two escape hatches keep the check honest rather than silent:
// allocations that only happen on a path that ends in panic (error
// formatting for impossible states) are exempt, and a
// `//repro:alloc-ok <reason>` waiver on or directly above the flagged
// line suppresses one diagnostic while recording why the construct is
// provably allocation-free (e.g. an append into a buffer whose capacity
// is maintained elsewhere).
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/annot"
)

const doc = `check //repro:noalloc functions for allocating constructs

Functions whose doc comment carries //repro:noalloc must stay free of
make/new, escaping composite literals, string concatenation, interface
boxing, closures, fmt and variadic calls, and go statements —
transitively through same-package callees. Constructs on panic paths
are exempt; //repro:alloc-ok <reason> waives one finding.`

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	var annotated []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if annot.Has(fd.Doc, "noalloc") {
				annotated = append(annotated, fd)
			}
		}
	}
	if len(annotated) == 0 {
		return nil, nil
	}
	c := &checker{
		pass:     pass,
		decls:    decls,
		waivers:  annot.NewWaivers(pass, "alloc-ok"),
		reported: make(map[token.Pos]bool),
	}
	for _, fd := range annotated {
		c.root = fd
		c.visited = map[*ast.FuncDecl]bool{fd: true}
		c.check(fd)
	}
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	waivers  *annot.Waivers
	reported map[token.Pos]bool

	root    *ast.FuncDecl // the annotated function being enforced
	visited map[*ast.FuncDecl]bool
	cur     *ast.FuncDecl // the function whose body is being walked
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] || c.waivers.Waived(pos) {
		return
	}
	c.reported[pos] = true
	where := fmt.Sprintf("in //repro:noalloc function %s", c.root.Name.Name)
	if c.cur != c.root {
		where = fmt.Sprintf("in %s, reached from //repro:noalloc function %s",
			c.cur.Name.Name, c.root.Name.Name)
	}
	c.pass.Reportf(pos, "%s %s", fmt.Sprintf(format, args...), where)
}

func (c *checker) check(fd *ast.FuncDecl) {
	prev := c.cur
	c.cur = fd
	c.walk(fd.Body, false)
	c.cur = prev
}

// walk visits one statement/expression tree. inPanic marks nodes inside
// an argument of a call to the panic builtin: allocations there only
// happen on a path that dies, which the 0 allocs/op invariant (a
// steady-state property) does not cover.
func (c *checker) walk(n ast.Node, inPanic bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n, inPanic)
		return
	case *ast.FuncLit:
		if !inPanic {
			c.report(n.Pos(), "closure creation allocates")
		}
		// The literal itself is the finding; its body runs under the
		// same budget only if the closure is ever called on the hot
		// path, which the waiver reason must argue.
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok && !inPanic {
				c.report(n.Pos(), "composite literal escapes through &")
			}
		}
	case *ast.CompositeLit:
		if !inPanic {
			switch c.typeOf(n).(type) {
			case *types.Slice:
				c.report(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				c.report(n.Pos(), "map literal allocates")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && !inPanic {
			if tv, ok := c.pass.TypesInfo.Types[ast.Expr(n)]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(n.Pos(), "string concatenation allocates")
				}
			}
		}
	case *ast.GoStmt:
		if !inPanic {
			c.report(n.Pos(), "go statement allocates a goroutine")
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, rhs := range n.Rhs {
				c.boxing(rhs, c.typeOf(n.Lhs[i]), inPanic)
			}
		}
	case *ast.ReturnStmt:
		if c.cur != nil && c.cur.Type.Results != nil {
			results := c.resultTypes()
			if len(results) == len(n.Results) {
				for i, r := range n.Results {
					c.boxing(r, results[i], inPanic)
				}
			}
		}
	}
	for _, child := range children(n) {
		c.walk(child, inPanic)
	}
}

// call handles one call expression: builtin allocators, conversions,
// fmt/variadic calls, argument boxing, and transitive descent into
// same-package callees.
func (c *checker) call(call *ast.CallExpr, inPanic bool) {
	// Type conversion, not a call.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type, inPanic)
		for _, a := range call.Args {
			c.walk(a, inPanic)
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !inPanic {
					c.report(call.Pos(), "make allocates")
				}
			case "new":
				if !inPanic {
					c.report(call.Pos(), "new allocates")
				}
			case "panic":
				// Arguments only evaluate on a dying path.
				for _, a := range call.Args {
					c.walk(a, true)
				}
				return
			}
			for _, a := range call.Args {
				c.walk(a, inPanic)
			}
			return
		}
	}
	fn, _ := typeutil.Callee(c.pass.TypesInfo, call).(*types.Func)
	sig, _ := c.typeOf(call.Fun).(*types.Signature)

	if !inPanic {
		switch {
		case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt":
			c.report(call.Pos(), "call to fmt.%s allocates", fn.Name())
		case sig != nil && sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len():
			c.report(call.Pos(), "variadic call allocates its argument slice")
		default:
			// Per-argument interface boxing (only when the call itself
			// was not already flagged).
			if sig != nil {
				for i, arg := range call.Args {
					c.boxing(arg, paramType(sig, i), inPanic)
				}
			}
		}
	}

	// Transitive descent: static same-package callee with a body that is
	// not independently annotated (annotated callees are checked on
	// their own; trusting the annotation keeps diagnostics unique).
	if fn != nil && fn.Pkg() == c.pass.Pkg {
		if callee, ok := c.decls[fn]; ok && !annot.Has(callee.Doc, "noalloc") && !c.visited[callee] {
			c.visited[callee] = true
			c.check(callee)
		}
	}

	c.walk(call.Fun, inPanic)
	for _, a := range call.Args {
		c.walk(a, inPanic)
	}
}

// conversion flags allocating conversions: concrete values boxed into
// an interface type and the string<->[]byte/[]rune copies.
func (c *checker) conversion(call *ast.CallExpr, to types.Type, inPanic bool) {
	if inPanic || len(call.Args) != 1 {
		return
	}
	from := c.typeOf(call.Args[0])
	if from == nil {
		return
	}
	if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
		c.report(call.Pos(), "conversion boxes %s into interface", types.TypeString(from, types.RelativeTo(c.pass.Pkg)))
		return
	}
	if isString(to) && isByteOrRuneSlice(from) {
		c.report(call.Pos(), "[]byte-to-string conversion copies")
		return
	}
	if isByteOrRuneSlice(to) && isString(from) {
		c.report(call.Pos(), "string-to-slice conversion copies")
	}
}

// boxing flags a concrete value assigned/passed/returned where an
// interface is expected.
func (c *checker) boxing(expr ast.Expr, target types.Type, inPanic bool) {
	if inPanic || target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return
	}
	c.report(expr.Pos(), "%s boxed into interface", types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)))
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// resultTypes returns the flattened result types of the current function.
func (c *checker) resultTypes() []types.Type {
	var out []types.Type
	for _, f := range c.cur.Type.Results.List {
		t := c.typeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// children returns the direct AST children of n in source order, via
// ast.Inspect's first level. The checker drives its own recursion so it
// can carry the inPanic flag and intercept calls/closures.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}
