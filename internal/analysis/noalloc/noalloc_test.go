package noalloc_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	atest.Run(t, noalloc.Analyzer, "testdata/src/a")
}

func TestWaiverWithoutReason(t *testing.T) {
	diags := atest.Diagnostics(t, noalloc.Analyzer, "testdata/src/badwaiver")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the unexplained waiver)", len(diags))
	}
	if !strings.Contains(diags[0].Message, "waiver without a justification") {
		t.Fatalf("diagnostic = %q, want the missing-justification message", diags[0].Message)
	}
}

// TestInstrumentedHotPath pins the observability contract: instance-
// boundary instrument updates are //repro:noalloc, so an instrument
// that allocates — directly or through a same-package helper — is a
// diagnostic.
func TestInstrumentedHotPath(t *testing.T) {
	atest.Run(t, noalloc.Analyzer, "testdata/src/instrumented")
}
