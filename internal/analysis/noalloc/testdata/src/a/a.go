// Package a is the noalloc fixture: annotated functions exercising
// every flagged construct, the panic-path exemption, the waiver, and
// transitive same-package enforcement.
package a

import "fmt"

// Sink swallows values so fixtures type-check without unused errors.
var Sink any

// Total accumulates results.
var Total int

//repro:noalloc
func HotConstructs(xs []int, n int, s1, s2 string) {
	a := make([]int, n) // want `make allocates`
	_ = a
	p := new(int) // want `new allocates`
	_ = p
	lit := []int{1, 2, 3} // want `slice literal allocates`
	_ = lit
	m := map[int]int{} // want `map literal allocates`
	_ = m
	pt := &point{1, 2} // want `composite literal escapes through &`
	_ = pt
	cat := s1 + s2 // want `string concatenation allocates`
	_ = cat
	Sink = n                     // want `int boxed into interface`
	f := func() int { return 1 } // want `closure creation allocates`
	_ = f
	fmt.Println(n) // want `call to fmt.Println allocates`
	variadic(1, 2) // want `variadic call allocates its argument slice`
	go work()      // want `go statement allocates a goroutine`
}

//repro:noalloc
func HotConversions(b []byte, s string, n int) {
	str := string(b) // want `\[\]byte-to-string conversion copies`
	_ = str
	bs := []byte(s) // want `string-to-slice conversion copies`
	_ = bs
	Sink = any(n) // want `conversion boxes int into interface`
}

// HotClean is the negative case: value struct literals, same-package
// calls, spread variadics, arithmetic and constant concatenation are
// all allocation-free.
//
//repro:noalloc
func HotClean(xs []int, n int) int {
	const greeting = "a" + "b" // constant: folded at compile time
	pt := point{x: n, y: n}    // value composite literal: stack
	total := 0
	for _, x := range xs {
		total += x * pt.x
	}
	total += leafHelper(total)
	variadic(xs...) // spread: no argument slice materialized
	variadic()      // zero variadic args: nil slice
	return total + len(greeting)
}

// HotPanicPath: allocations that only happen on a dying path are
// exempt — the 0 allocs/op invariant is a steady-state property.
//
//repro:noalloc
func HotPanicPath(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("negative input %d", x))
	}
	return x * 2
}

// HotWaived: the escape hatch, with its reason recorded.
//
//repro:noalloc
func HotWaived(buf []int, n int) []int {
	buf = append(buf, make([]int, 0, n)...) //repro:alloc-ok fixture: capacity proven reserved by caller contract
	return buf
}

// HotTransitive reaches an allocation through an unannotated
// same-package helper: the diagnostic lands at the allocation site and
// names the annotated root.
//
//repro:noalloc
func HotTransitive(n int) int {
	return allocHelper(n) + leafHelper(n)
}

func allocHelper(n int) int {
	tmp := make([]int, n) // want `make allocates in allocHelper, reached from //repro:noalloc function HotTransitive`
	return len(tmp)
}

func leafHelper(n int) int { return n + 1 }

// ColdAllocates is unannotated: nothing here is checked.
func ColdAllocates(n int) []int {
	return make([]int, n)
}

type point struct{ x, y int }

func variadic(xs ...int) {
	for _, x := range xs {
		Total += x
	}
}

func work() { Total++ }
