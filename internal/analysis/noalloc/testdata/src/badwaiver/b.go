// Package badwaiver holds the waiver-without-reason case: an
// unexplained //repro:alloc-ok is itself a diagnostic (tested
// programmatically — a want comment cannot share a line with the bare
// waiver comment under test).
package badwaiver

//repro:noalloc
func Hot(n int) int {
	//repro:alloc-ok
	return n + 1
}
