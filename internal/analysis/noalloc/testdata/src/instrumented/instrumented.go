// Package instrumented is the observability fixture: the progress and
// metrics update paths that the simulator calls at instance boundaries
// carry //repro:noalloc, and an instrument that allocates (or is
// reached from one that does) is a diagnostic — observation must stay
// free when nobody is watching and when everybody is.
package instrumented

import "sync/atomic"

type progress struct {
	done   atomic.Uint64
	cycles atomic.Uint64
}

type counter struct{ v atomic.Uint64 }

func (c *counter) add(n uint64) { c.v.Add(n) }

// observeBoundary is the real shape: atomic stores only, checked
// transitively through publish.
//
//repro:noalloc
func observeBoundary(p *progress, done, cycles uint64) {
	publish(p, done, cycles)
}

func publish(p *progress, done, cycles uint64) {
	p.done.Store(done)
	p.cycles.Store(cycles)
}

// observeLabeled builds a label set per observation: every flagged
// construct here is one allocation per simulated instance.
//
//repro:noalloc
func observeLabeled(c *counter, outcome string) {
	labels := []string{"outcome", outcome} // want `slice literal allocates`
	_ = labels
	key := "simd_jobs_" + outcome // want `string concatenation allocates`
	_ = key
	c.add(1)
}

// observeTransitive reaches an allocating helper through a plain
// same-package call: the diagnostic names the root annotation.
//
//repro:noalloc
func observeTransitive(c *counter, n int) {
	record(c, n)
}

func record(c *counter, n int) {
	buf := make([]uint64, n) // want `make allocates in record, reached from //repro:noalloc function observeTransitive`
	_ = buf
	c.add(uint64(n))
}
