// Package analysis assembles the reprolint suite: the custom
// go/analysis analyzers that turn the repository's load-bearing
// invariants — 0 allocs/op hot paths, byte-exact deterministic golden
// surfaces, capability-keyed Metrics serialization, panic-safe and
// cancellable worker goroutines — into machine-checked properties of
// the source. cmd/reprolint drives the suite via go vet -vettool.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/detrand"
	"repro/internal/analysis/goldenkey"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/workersafe"
)

// Suite is the full reprolint analyzer set, in diagnostic-priority
// order: allocation regressions first (they silently cost performance),
// then determinism, serialization compatibility and worker safety
// (they silently cost correctness).
var Suite = []*analysis.Analyzer{
	noalloc.Analyzer,
	detrand.Analyzer,
	goldenkey.Analyzer,
	workersafe.Analyzer,
}
