// Package core is the workersafe fixture (its name puts it on the
// default worker surface): goroutine spawns with and without panic
// containment, and instance loops with and without cancellation polling.
package core

import "context"

// BareSpawn leaks panics out of the goroutine.
func BareSpawn(work func()) {
	go work() // want `goroutine without a reachable deferred recover`
}

// BareFuncLit has a body, but no recover anywhere in it.
func BareFuncLit(n int) {
	go func() { // want `goroutine without a reachable deferred recover`
		_ = n * n
	}()
}

// DirectRecover is the blessed inline pattern.
func DirectRecover(work func()) {
	go func() {
		defer func() {
			_ = recover()
		}()
		work()
	}()
}

// runOne is a same-package spawn helper whose body recovers; spawning
// through it is safe (mirrors hpcg.Team.runOne).
func runOne(work func()) {
	defer func() {
		if r := recover(); r != nil {
			_ = r
		}
	}()
	work()
}

func SpawnViaHelper(work func()) {
	go runOne(work)
}

// SpawnViaLitHelper routes the recover through one call hop inside the
// goroutine's function literal.
func SpawnViaLitHelper(work func()) {
	go func() {
		runOne(work)
	}()
}

// Waived: the body provably cannot panic.
func SpawnWaived(ch chan struct{}) {
	//repro:spawn-ok close on a dedicated channel cannot panic
	go close(ch)
}

type solver struct{}

func (s *solver) Step() error  { return nil }
func (s *solver) Solve() error { return nil }

// UnpolledLoop runs instances without ever observing ctx.
func UnpolledLoop(ctx context.Context, s *solver, n int) error {
	for i := 0; i < n; i++ { // want `without polling the function.s context`
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// PolledLoop checks ctx each instance boundary.
func PolledLoop(ctx context.Context, s *solver, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// NopollWaived delegates cancellation elsewhere.
func NopollWaived(ctx context.Context, s *solver, n int) error {
	//repro:nopoll cancellation is handled by the solver internally
	for i := 0; i < n; i++ {
		if err := s.Solve(); err != nil {
			return err
		}
	}
	return nil
}

// NoInstanceCalls: loops without Run*/Step/Solve calls are not
// instance boundaries.
func NoInstanceCalls(ctx context.Context, xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// NoContextParam: functions without a ctx parameter have nothing to poll.
func NoContextParam(s *solver, n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}
