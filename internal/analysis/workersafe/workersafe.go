// Package workersafe defines an analyzer enforcing the fault-tolerant
// worker discipline of the simulation engine (PR 6): in the packages
// that spawn simulated-thread goroutines, every `go` statement must
// lead to a recover — a panicking worker must post its barrier token
// and poison the team, never strand the other threads on a WaitGroup —
// and instance-executing loops in cancellable functions must poll their
// context, so cancellation is observed at instance boundaries instead
// of after the full run.
//
// The recover rule is structural, not nominal: the spawned function
// (or a same-package function it calls, up to a small depth) must
// contain a deferred recover. Routing spawns through hpcg.Team/
// core.Machine's recover-wrapped helpers satisfies it; a bare
// `go func() { work() }()` does not. A `//repro:spawn-ok <reason>`
// waiver documents the rare goroutine that genuinely cannot panic.
//
// The polling rule fires on loops, inside functions that take a
// context.Context, whose body issues instances (a call to a Run*,
// Step or Solve method) without referencing the context: such a loop
// runs to completion regardless of cancellation. `//repro:nopoll
// <reason>` waives loops whose cancellation is delegated (e.g. the CG
// solve loop, which polls through Team.Run's installed context).
package workersafe

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/annot"
)

const doc = `check worker goroutines for recover wrapping and ctx polling

In the engine packages, go statements must reach a deferred recover
(use the Team/Machine spawn helpers), and loops that execute instances
inside a context-taking function must poll that context.`

// Analyzer is the workersafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "workersafe",
	Doc:  doc,
	Run:  run,
}

var surface string

func init() {
	Analyzer.Flags.StringVar(&surface, "packages", "core,hpcg,simd",
		"comma-separated packages (name or path suffix) holding the worker engine")
}

// maxDepth bounds the same-package call chase when looking for a
// deferred recover below a go statement.
const maxDepth = 4

func run(pass *analysis.Pass) (any, error) {
	if !annot.PackageMatch(pass.Pkg.Path(), surface) {
		return nil, nil
	}
	spawnWaivers := annot.NewWaivers(pass, "spawn-ok")
	pollWaivers := annot.NewWaivers(pass, "nopoll")

	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if annot.TestFile(pass, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpawns(pass, fd, decls, spawnWaivers)
			checkPolling(pass, fd, pollWaivers)
		}
	}
	return nil, nil
}

// checkSpawns flags go statements that cannot reach a deferred recover.
func checkSpawns(pass *analysis.Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, waivers *annot.Waivers) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if waivers.Waived(gs.Pos()) {
			return true
		}
		if !spawnRecovers(pass, gs.Call, decls, make(map[*ast.FuncDecl]bool), maxDepth) {
			pass.Reportf(gs.Pos(), "goroutine without a reachable deferred recover: a worker panic strands its team (route spawns through the recover-wrapped helpers)")
		}
		return true
	})
}

// spawnRecovers reports whether the spawned call leads to a deferred
// recover: directly in a go'd function literal, or in a same-package
// function the spawned body (transitively) calls.
func spawnRecovers(pass *analysis.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl, seen map[*ast.FuncDecl]bool, depth int) bool {
	if depth == 0 {
		return false
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyRecovers(pass, lit.Body, decls, seen, depth)
	}
	if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok {
		if fd, ok := decls[fn]; ok && !seen[fd] {
			seen[fd] = true
			return bodyRecovers(pass, fd.Body, decls, seen, depth-1)
		}
	}
	return false
}

// bodyRecovers reports whether body contains a deferred recover, or a
// call to a same-package function that does.
func bodyRecovers(pass *analysis.Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, seen map[*ast.FuncDecl]bool, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if deferredRecovers(pass, n, decls) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func); ok {
				if fd, ok := decls[fn]; ok && !seen[fd] && depth > 0 {
					seen[fd] = true
					if bodyRecovers(pass, fd.Body, decls, seen, depth-1) {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// deferredRecovers reports whether the deferred call contains (or is) a
// recover.
func deferredRecovers(pass *analysis.Pass, ds *ast.DeferStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	if isRecover(pass, ds.Call) {
		return true
	}
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn, ok := typeutil.Callee(pass.TypesInfo, ds.Call).(*types.Func); ok {
		if fd, ok := decls[fn]; ok {
			body = fd.Body
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isRecover(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

func isRecover(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}

// checkPolling flags instance-executing loops that ignore the
// function's context parameter.
func checkPolling(pass *analysis.Pass, fd *ast.FuncDecl, waivers *annot.Waivers) {
	ctxVars := contextParams(pass, fd)
	if len(ctxVars) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		if waivers.Waived(n.Pos()) {
			return true
		}
		issue := instanceCall(pass, body)
		if issue == "" {
			return true
		}
		if referencesAny(pass, body, ctxVars) {
			return true
		}
		pass.Reportf(n.Pos(), "loop issues instances (%s) without polling the function's context: cancellation would only be observed after the loop", issue)
		return true
	})
}

// contextParams returns the function's context.Context parameter objects.
func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContext(t) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// instanceCall returns the name of the first instance-executing call in
// body ("" if none): a method or function whose name starts with Run or
// is Step/Solve — the entry points that advance simulated instances.
func instanceCall(pass *analysis.Pass, body *ast.BlockStmt) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if strings.HasPrefix(id.Name, "Run") || id.Name == "Step" || id.Name == "Solve" {
			name = id.Name
		}
		return true
	})
	return name
}

// referencesAny reports whether body mentions any of the given objects.
func referencesAny(pass *analysis.Pass, body *ast.BlockStmt, vars []*types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		for _, v := range vars {
			if obj == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
