package workersafe_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/workersafe"
)

func TestWorkersafe(t *testing.T) {
	atest.Run(t, workersafe.Analyzer, "testdata/src/core")
}
