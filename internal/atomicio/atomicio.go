// Package atomicio writes artifacts atomically: content is streamed into a
// temp file in the destination directory and renamed over the target only
// after a successful flush and close. A crash — or an injected ENOSPC —
// mid-write can therefore never leave a truncated .prv/.pcf/.json/.csv in
// place of a complete one; the target either keeps its old content or gains
// the fully-written new one.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// WriteFile atomically replaces path with the bytes write produces. On any
// error (including a failed Close, which is where deferred ENOSPC surfaces
// on real filesystems) the temp file is removed and path is untouched.
func WriteFile(path string, write func(io.Writer) error) error {
	return WriteFiles([]string{path}, func(ws []io.Writer) error { return write(ws[0]) })
}

// WriteFiles atomically replaces a set of paths together: every temp file
// must write and close cleanly before the first rename happens, so a
// multi-file artifact (a .prv and its .pcf) is never left half-replaced by
// a failure during writing. Renames themselves are sequential; a rename
// failure aborts with the remaining targets untouched.
func WriteFiles(paths []string, write func(ws []io.Writer) error) (err error) {
	tmps := make([]*os.File, 0, len(paths))
	defer func() {
		for _, f := range tmps {
			if f != nil {
				f.Close()
				os.Remove(f.Name())
			}
		}
	}()
	ws := make([]io.Writer, 0, len(paths))
	for _, path := range paths {
		f, terr := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
		if terr != nil {
			return fmt.Errorf("atomicio: %w", terr)
		}
		tmps = append(tmps, f)
		// CreateTemp's 0600 would otherwise become the artifact's mode.
		if cerr := f.Chmod(0o644); cerr != nil {
			return fmt.Errorf("atomicio: %w", cerr)
		}
		ws = append(ws, faultinject.Writer(f, faultinject.PointWrite))
	}
	if err := write(ws); err != nil {
		return err
	}
	for i, f := range tmps {
		if err := faultinject.Hit(faultinject.PointClose); err != nil {
			return err
		}
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("atomicio: closing temp for %s: %w", paths[i], cerr)
		}
		if err := faultinject.Hit(faultinject.PointRename); err != nil {
			return err
		}
		if rerr := os.Rename(f.Name(), paths[i]); rerr != nil {
			return fmt.Errorf("atomicio: %w", rerr)
		}
		tmps[i] = nil // renamed into place; nothing left to clean up
	}
	return nil
}
