package atomicio_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/faultinject"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(b)
}

// tempLitter returns leftover temp files in dir (an atomic writer must
// clean up after itself on every failure path).
func tempLitter(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var litter []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			litter = append(litter, e.Name())
		}
	}
	return litter
}

func TestWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	for _, content := range []string{"v1\n", "v2 longer content\n"} {
		if err := atomicio.WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got := readFile(t, path); got != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
	if litter := tempLitter(t, dir); len(litter) > 0 {
		t.Errorf("temp files left behind: %v", litter)
	}
}

func TestWriteErrorKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(path, []byte("old\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("producer failed")
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-written garbage")
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want producer error", err)
	}
	if got := readFile(t, path); got != "old\n" {
		t.Errorf("target clobbered: %q", got)
	}
	if litter := tempLitter(t, dir); len(litter) > 0 {
		t.Errorf("temp files left behind: %v", litter)
	}
}

// TestInjectedFaults drives the three fault points of the writer: a torn
// short write (ENOSPC mid-stream), a failed close (deferred ENOSPC) and a
// failed rename. Each must surface the injected error, keep the old target
// bytes and leave no temp litter.
func TestInjectedFaults(t *testing.T) {
	for _, point := range []string{
		faultinject.PointWrite,
		faultinject.PointClose,
		faultinject.PointRename,
	} {
		t.Run(point, func(t *testing.T) {
			defer faultinject.Reset()
			dir := t.TempDir()
			path := filepath.Join(dir, "trace.prv")
			if err := os.WriteFile(path, []byte("old\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			faultinject.Enable(point, 1, nil)
			err := atomicio.WriteFile(path, func(w io.Writer) error {
				_, err := io.WriteString(w, "new content that must never land\n")
				return err
			})
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want injected fault", err)
			}
			if got := readFile(t, path); got != "old\n" {
				t.Errorf("target corrupted after %s fault: %q", point, got)
			}
			if litter := tempLitter(t, dir); len(litter) > 0 {
				t.Errorf("temp files left behind: %v", litter)
			}
		})
	}
}

// TestWriteFilesPairAtomic checks the multi-file contract: a failure while
// producing the pair leaves neither target replaced (a PRV must never
// appear without its PCF labels).
func TestWriteFilesPairAtomic(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	prv := filepath.Join(dir, "trace.prv")
	pcf := filepath.Join(dir, "trace.pcf")
	for _, p := range []string{prv, pcf} {
		if err := os.WriteFile(p, []byte("old\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the second stream's write: the first file was already produced
	// in full, but must still not be renamed into place.
	faultinject.Enable(faultinject.PointWrite, 2, nil)
	err := atomicio.WriteFiles([]string{prv, pcf}, func(ws []io.Writer) error {
		if _, err := io.WriteString(ws[0], "new prv\n"); err != nil {
			return err
		}
		_, err := io.WriteString(ws[1], "new pcf\n")
		return err
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	for _, p := range []string{prv, pcf} {
		if got := readFile(t, p); got != "old\n" {
			t.Errorf("%s replaced despite pair failure: %q", filepath.Base(p), got)
		}
	}
	if litter := tempLitter(t, dir); len(litter) > 0 {
		t.Errorf("temp files left behind: %v", litter)
	}
}

func TestWriteFilesSuccess(t *testing.T) {
	dir := t.TempDir()
	prv := filepath.Join(dir, "trace.prv")
	pcf := filepath.Join(dir, "trace.pcf")
	err := atomicio.WriteFiles([]string{prv, pcf}, func(ws []io.Writer) error {
		io.WriteString(ws[0], "prv\n")
		io.WriteString(ws[1], "pcf\n")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if readFile(t, prv) != "prv\n" || readFile(t, pcf) != "pcf\n" {
		t.Error("pair content wrong")
	}
}
