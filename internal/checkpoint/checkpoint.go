// Package checkpoint serializes the full mutable state of a simulation at
// an instance boundary, so a killed run can resume and produce byte-exact
// metrics and traces. A snapshot is only taken between instances, after the
// monitors have flushed their PEBS buffers: at that point the state closes
// over the record logs, the cache slabs, the counter files, the sampling
// countdowns, the NUMA page table, the object registry accounting and the
// workload/CG cursor — everything else is reconstructed deterministically
// by replaying setup from the config.
package checkpoint

import (
	"fmt"

	"repro/internal/extrae"
	"repro/internal/hpcg"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/objects"
)

// Version is the snapshot format version written by this package.
const Version = 1

// Cursor locates the next instance to execute when resuming. For workload
// runs the schedule is thread-major: all iterations of thread 1, then
// thread 2, and so on; Cursor{Thread: t, Iter: i} means thread t's
// iteration i (0-based) has not run yet. For HPCG runs Thread is 0 and
// Iter is the 0-based count of completed CG iterations.
type Cursor struct {
	Thread int
	Iter   int
}

// ThreadState is one simulated hardware thread's mutable state: its
// monitor (records, stacks, engine, core) and its private cache levels.
type ThreadState struct {
	Mon  extrae.MonitorState
	Hier memhier.HierarchyState
}

// Snapshot is the complete serializable state of a run at an instance
// boundary.
type Snapshot struct {
	// Tag fingerprints the producing configuration (scenario name, thread
	// count, reference/fast path). Resume refuses a mismatched tag.
	Tag    string
	Cursor Cursor

	Threads []ThreadState
	// L3s holds the shared last-level caches of a Machine run (one per
	// socket); empty for Session runs whose L3 lives inside the hierarchy.
	L3s []memhier.SharedCacheState
	// Placement is the NUMA page table, nil for flat runs.
	Placement *numa.PlacementState
	Registry  objects.RegistryState
	// CG is the solver state of an HPCG run, nil for workload runs.
	CG *hpcg.CGRunState
}

// Validate performs structural sanity checks that do not need the rebuilt
// simulation: restore performs the deep validation against the actual
// geometry.
func (s *Snapshot) Validate() error {
	if len(s.Threads) == 0 {
		return fmt.Errorf("checkpoint: snapshot has no threads")
	}
	if s.Cursor.Thread < 0 || s.Cursor.Iter < 0 {
		return fmt.Errorf("checkpoint: negative cursor (%d, %d)", s.Cursor.Thread, s.Cursor.Iter)
	}
	if s.Cursor.Thread > len(s.Threads) {
		return fmt.Errorf("checkpoint: cursor thread %d beyond %d threads", s.Cursor.Thread, len(s.Threads))
	}
	return nil
}
