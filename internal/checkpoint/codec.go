package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/hpcg"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/objects"
	"repro/internal/pebs"
	"repro/internal/trace"
)

// Binary encoding: a varint stream in the same style as the trace codec
// (internal/trace/binary.go). Layout:
//
//	magic "BSCK" | version uvarint | tag string | cursor | nThreads uvarint |
//	thread* | nL3s uvarint | l3* | placement? | registry | cg?
//
// Strings are length-prefixed; optional sections carry a presence byte.
// Floats are fixed 8-byte little-endian IEEE bit patterns (varints would
// waste space on mantissas and round-trips must be bit-exact). All length
// prefixes are decoded with capped preallocation: a hostile header can
// claim 2^60 elements in a few bytes, so allocation follows the data
// actually present, never the claim.
const snapMagic = "BSCK"

// ErrBadMagic reports a stream that is not a checkpoint snapshot.
var ErrBadMagic = errors.New("checkpoint: bad snapshot magic")

const (
	maxPrealloc = 1 << 16
	maxString   = 1 << 12
)

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) write(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *encoder) u64(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.write(e.buf[:n])
}

func (e *encoder) i64(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.write(e.buf[:n])
}

func (e *encoder) int(v int)    { e.i64(int64(v)) }
func (e *encoder) u32(v uint32) { e.u64(uint64(v)) }
func (e *encoder) u8(v uint8)   { e.u64(uint64(v)) }
func (e *encoder) boolean(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.write([]byte{b})
}

func (e *encoder) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.write(b[:])
}

func (e *encoder) str(s string) {
	e.u64(uint64(len(s)))
	e.write([]byte(s))
}

func (e *encoder) u64s(v []uint64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

func (e *encoder) bytes(v []byte) {
	e.u64(uint64(len(v)))
	e.write(v)
}

func (e *encoder) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) int() int    { return int(d.i64()) }
func (d *decoder) u32() uint32 { return uint32(d.u64()) }
func (d *decoder) u8() uint8   { return uint8(d.u64()) }

func (d *decoder) boolean() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = err
		return false
	}
	if b > 1 {
		d.fail("corrupt bool byte %#x", b)
		return false
	}
	return b == 1
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.err = err
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxString {
		d.fail("string length %d exceeds %d", n, maxString)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

func prealloc(n uint64) uint64 {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

func (d *decoder) u64s() []uint64 {
	n := d.u64()
	out := make([]uint64, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.u64())
	}
	return out
}

func (d *decoder) bytes() []byte {
	n := d.u64()
	out := make([]byte, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		b, err := d.r.ReadByte()
		if err != nil {
			d.err = err
			break
		}
		out = append(out, b)
	}
	return out
}

func (d *decoder) f64s() []float64 {
	n := d.u64()
	out := make([]float64, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.f64())
	}
	return out
}

// Write encodes the snapshot to w.
func Write(w io.Writer, s *Snapshot) error {
	if err := s.Validate(); err != nil {
		return err
	}
	e := &encoder{w: bufio.NewWriter(w)}
	e.write([]byte(snapMagic))
	e.u64(Version)
	e.str(s.Tag)
	e.int(s.Cursor.Thread)
	e.int(s.Cursor.Iter)
	e.u64(uint64(len(s.Threads)))
	for i := range s.Threads {
		encodeMonitor(e, &s.Threads[i].Mon)
		encodeHierarchy(e, &s.Threads[i].Hier)
	}
	e.u64(uint64(len(s.L3s)))
	for i := range s.L3s {
		encodeShared(e, &s.L3s[i])
	}
	e.boolean(s.Placement != nil)
	if s.Placement != nil {
		encodePlacement(e, s.Placement)
	}
	encodeRegistry(e, &s.Registry)
	e.boolean(s.CG != nil)
	if s.CG != nil {
		encodeCG(e, s.CG)
	}
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Read decodes a snapshot, validating the magic and version. Truncated or
// corrupt input yields an error, never a panic or an unbounded allocation.
func Read(r io.Reader) (*Snapshot, error) {
	d := &decoder{r: bufio.NewReader(r)}
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, err
	}
	if string(magic) != snapMagic {
		return nil, ErrBadMagic
	}
	if v := d.u64(); d.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot version %d", v)
	}
	s := &Snapshot{}
	s.Tag = d.str()
	s.Cursor.Thread = d.int()
	s.Cursor.Iter = d.int()
	nThreads := d.u64()
	if nThreads > maxPrealloc {
		d.fail("thread count %d implausible", nThreads)
	}
	for i := uint64(0); i < nThreads && d.err == nil; i++ {
		var ts ThreadState
		decodeMonitor(d, &ts.Mon)
		decodeHierarchy(d, &ts.Hier)
		s.Threads = append(s.Threads, ts)
	}
	nL3 := d.u64()
	if nL3 > maxPrealloc {
		d.fail("L3 count %d implausible", nL3)
	}
	for i := uint64(0); i < nL3 && d.err == nil; i++ {
		var sc memhier.SharedCacheState
		decodeShared(d, &sc)
		s.L3s = append(s.L3s, sc)
	}
	if d.boolean() {
		var ps numa.PlacementState
		decodePlacement(d, &ps)
		s.Placement = &ps
	}
	decodeRegistry(d, &s.Registry)
	if d.boolean() {
		var cg hpcg.CGRunState
		decodeCG(d, &cg)
		s.CG = &cg
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func encodeRecords(e *encoder, records []trace.Record) {
	e.u64(uint64(len(records)))
	for _, r := range records {
		e.u64(r.TimeNs)
		e.int(r.Task)
		e.int(r.Thread)
		e.u64(uint64(len(r.Pairs)))
		for _, p := range r.Pairs {
			e.u32(p.Type)
			e.i64(p.Value)
		}
	}
}

func decodeRecords(d *decoder) []trace.Record {
	n := d.u64()
	out := make([]trace.Record, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		r := trace.Record{TimeNs: d.u64(), Task: d.int(), Thread: d.int()}
		nPairs := d.u64()
		pairCap := nPairs
		if pairCap > 64 {
			pairCap = 64
		}
		r.Pairs = make([]trace.TypeValue, 0, pairCap)
		for j := uint64(0); j < nPairs && d.err == nil; j++ {
			r.Pairs = append(r.Pairs, trace.TypeValue{Type: d.u32(), Value: d.i64()})
		}
		out = append(out, r)
	}
	return out
}

func encodeMonitor(e *encoder, m *extrae.MonitorState) {
	encodeRecords(e, m.Records)
	e.u64(uint64(len(m.Stacks)))
	for _, st := range m.Stacks {
		e.u64s(st)
	}
	e.int(m.RegionNames)
	e.u64(uint64(len(m.RegionStack)))
	for _, r := range m.RegionStack {
		e.int(int(r))
	}
	e.u64s(m.CallStack)
	e.u32(m.CurStackID)
	e.boolean(m.StackDirty)
	e.u64(m.MuxNext)
	e.u64(m.LoadRem)
	e.u64(m.StoreRem)
	e.u64(m.LastLoads)
	e.u64(m.LastStores)
	encodeEngine(e, &m.Engine)
	encodeCore(e, &m.Core)
}

func decodeMonitor(d *decoder, m *extrae.MonitorState) {
	m.Records = decodeRecords(d)
	nStacks := d.u64()
	m.Stacks = make([][]uint64, 0, prealloc(nStacks))
	for i := uint64(0); i < nStacks && d.err == nil; i++ {
		m.Stacks = append(m.Stacks, d.u64s())
	}
	m.RegionNames = d.int()
	nRegions := d.u64()
	m.RegionStack = make([]extrae.Region, 0, prealloc(nRegions))
	for i := uint64(0); i < nRegions && d.err == nil; i++ {
		m.RegionStack = append(m.RegionStack, extrae.Region(d.int()))
	}
	m.CallStack = d.u64s()
	m.CurStackID = d.u32()
	m.StackDirty = d.boolean()
	m.MuxNext = d.u64()
	m.LoadRem = d.u64()
	m.StoreRem = d.u64()
	m.LastLoads = d.u64()
	m.LastStores = d.u64()
	decodeEngine(d, &m.Engine)
	decodeCore(d, &m.Core)
}

func encodeEngine(e *encoder, s *pebs.EngineState) {
	e.u64(s.NextLoad)
	e.u64(s.NextStore)
	e.u64(s.Stats.Eligible)
	e.u64(s.Stats.Fired)
	e.u64(s.Stats.BelowThreshold)
	e.u64(s.Stats.Recorded)
	e.u64(s.Stats.Drains)
	e.u8(uint8(s.Events))
	e.u64(s.Draws)
}

func decodeEngine(d *decoder, s *pebs.EngineState) {
	s.NextLoad = d.u64()
	s.NextStore = d.u64()
	s.Stats.Eligible = d.u64()
	s.Stats.Fired = d.u64()
	s.Stats.BelowThreshold = d.u64()
	s.Stats.Recorded = d.u64()
	s.Stats.Drains = d.u64()
	s.Events = pebs.EventMask(d.u8())
	s.Draws = d.u64()
}

func encodeCore(e *encoder, c *cpu.CoreState) {
	e.u64(c.Cycles)
	e.f64(c.FracCycles)
	e.u64(c.LoadGate)
	e.u64(c.StoreGate)
	e.u64(c.HookCycle)
	e.u64(uint64(cpu.NumCounters))
	for i := 0; i < int(cpu.NumCounters); i++ {
		e.u64(c.PMU.Raw[i])
		e.u64(c.PMU.Visible[i])
		e.u64(c.PMU.Active[i])
	}
	e.u64(c.PMU.Total)
	e.int(c.PMU.Slot)
	e.u64(c.PMU.SlotAge)
}

func decodeCore(d *decoder, c *cpu.CoreState) {
	c.Cycles = d.u64()
	c.FracCycles = d.f64()
	c.LoadGate = d.u64()
	c.StoreGate = d.u64()
	c.HookCycle = d.u64()
	if n := d.u64(); d.err == nil && n != uint64(cpu.NumCounters) {
		d.fail("snapshot has %d PMU counters, build has %d", n, cpu.NumCounters)
	}
	for i := 0; i < int(cpu.NumCounters) && d.err == nil; i++ {
		c.PMU.Raw[i] = d.u64()
		c.PMU.Visible[i] = d.u64()
		c.PMU.Active[i] = d.u64()
	}
	c.PMU.Total = d.u64()
	c.PMU.Slot = d.int()
	c.PMU.SlotAge = d.u64()
}

func encodeCache(e *encoder, c *memhier.CacheState) {
	e.u64s(c.Slab)
	e.bytes(c.Occ)
	e.bytes(c.Sigs)
	e.u64s(c.Mats)
	e.u64s(c.Ticks)
	e.u32(c.Tick)
	encodeLevelStats(e, &c.Stats)
	e.int(c.MRUIdx)
	e.int(c.MRUSet)
	e.int(c.MRUWay)
	e.u64(c.MRULine)
	e.boolean(c.MRUValid)
}

func decodeCache(d *decoder, c *memhier.CacheState) {
	c.Slab = d.u64s()
	c.Occ = d.bytes()
	c.Sigs = d.bytes()
	c.Mats = d.u64s()
	c.Ticks = d.u64s()
	c.Tick = d.u32()
	decodeLevelStats(d, &c.Stats)
	c.MRUIdx = d.int()
	c.MRUSet = d.int()
	c.MRUWay = d.int()
	c.MRULine = d.u64()
	c.MRUValid = d.boolean()
}

func encodeLevelStats(e *encoder, s *memhier.LevelStats) {
	e.u64(s.Accesses)
	e.u64(s.Hits)
	e.u64(s.Misses)
	e.u64(s.Writebacks)
	e.u64(s.Prefetches)
	e.u64(s.PrefHits)
}

func decodeLevelStats(d *decoder, s *memhier.LevelStats) {
	s.Accesses = d.u64()
	s.Hits = d.u64()
	s.Misses = d.u64()
	s.Writebacks = d.u64()
	s.Prefetches = d.u64()
	s.PrefHits = d.u64()
}

func encodeHierarchy(e *encoder, h *memhier.HierarchyState) {
	e.u64(uint64(len(h.Levels)))
	for i := range h.Levels {
		encodeCache(e, &h.Levels[i])
	}
	e.u64(h.DRAM)
	e.u64(h.DRAMRemote)
	e.u64(h.MRUHits)
	e.u64(h.ProbeOps)
}

func decodeHierarchy(d *decoder, h *memhier.HierarchyState) {
	n := d.u64()
	if n > 16 {
		d.fail("hierarchy claims %d cache levels", n)
	}
	h.Levels = make([]memhier.CacheState, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		var c memhier.CacheState
		decodeCache(d, &c)
		h.Levels = append(h.Levels, c)
	}
	h.DRAM = d.u64()
	h.DRAMRemote = d.u64()
	h.MRUHits = d.u64()
	h.ProbeOps = d.u64()
}

func encodeShared(e *encoder, s *memhier.SharedCacheState) {
	e.u64(uint64(len(s.Shards)))
	for i := range s.Shards {
		encodeCache(e, &s.Shards[i])
	}
}

func decodeShared(d *decoder, s *memhier.SharedCacheState) {
	n := d.u64()
	if n > maxPrealloc {
		d.fail("shared cache claims %d shards", n)
	}
	s.Shards = make([]memhier.CacheState, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		var c memhier.CacheState
		decodeCache(d, &c)
		s.Shards = append(s.Shards, c)
	}
}

func encodePlacement(e *encoder, p *numa.PlacementState) {
	e.u64(uint64(len(p.Pages)))
	for _, ph := range p.Pages {
		e.u64(ph.Page)
		e.u8(ph.Node)
	}
	e.u64(uint64(len(p.Binds)))
	for _, b := range p.Binds {
		e.u64(b.Lo)
		e.u64(b.Hi)
		e.u8(b.Node)
	}
	e.u64(uint64(len(p.Stats)))
	for _, s := range p.Stats {
		e.u64(s.FillsLocal)
		e.u64(s.FillsRemote)
		e.u64(s.Writebacks)
		e.u64(s.Pages)
	}
}

func decodePlacement(d *decoder, p *numa.PlacementState) {
	nPages := d.u64()
	p.Pages = make([]numa.PageHome, 0, prealloc(nPages))
	for i := uint64(0); i < nPages && d.err == nil; i++ {
		p.Pages = append(p.Pages, numa.PageHome{Page: d.u64(), Node: d.u8()})
	}
	nBinds := d.u64()
	p.Binds = make([]numa.BindState, 0, prealloc(nBinds))
	for i := uint64(0); i < nBinds && d.err == nil; i++ {
		p.Binds = append(p.Binds, numa.BindState{Lo: d.u64(), Hi: d.u64(), Node: d.u8()})
	}
	nStats := d.u64()
	if nStats > 256 {
		d.fail("placement claims %d nodes", nStats)
	}
	p.Stats = make([]numa.NodeStats, 0, prealloc(nStats))
	for i := uint64(0); i < nStats && d.err == nil; i++ {
		p.Stats = append(p.Stats, numa.NodeStats{
			FillsLocal:  d.u64(),
			FillsRemote: d.u64(),
			Writebacks:  d.u64(),
			Pages:       d.u64(),
		})
	}
}

func encodeRegistry(e *encoder, r *objects.RegistryState) {
	e.u64(uint64(len(r.Counts)))
	for i := range r.Counts {
		c := &r.Counts[i]
		e.u64(c.Refs)
		e.u64(c.Loads)
		e.u64(c.Stores)
		e.u64(c.LatencySum)
		for _, s := range c.Sources {
			e.u64(s)
		}
	}
	e.u64(r.Stats.AllocsSeen)
	e.u64(r.Stats.AllocsTracked)
	e.u64(r.Stats.AllocsGrouped)
	e.u64(r.Stats.AllocsBelowThreshold)
	e.u64(r.Stats.Resolved)
	e.u64(r.Stats.Unresolved)
}

func decodeRegistry(d *decoder, r *objects.RegistryState) {
	n := d.u64()
	r.Counts = make([]objects.ObjectCounts, 0, prealloc(n))
	for i := uint64(0); i < n && d.err == nil; i++ {
		var c objects.ObjectCounts
		c.Refs = d.u64()
		c.Loads = d.u64()
		c.Stores = d.u64()
		c.LatencySum = d.u64()
		for j := 0; j < memhier.NumSources && d.err == nil; j++ {
			c.Sources[j] = d.u64()
		}
		r.Counts = append(r.Counts, c)
	}
	r.Stats.AllocsSeen = d.u64()
	r.Stats.AllocsTracked = d.u64()
	r.Stats.AllocsGrouped = d.u64()
	r.Stats.AllocsBelowThreshold = d.u64()
	r.Stats.Resolved = d.u64()
	r.Stats.Unresolved = d.u64()
}

func encodeCG(e *encoder, c *hpcg.CGRunState) {
	e.int(c.Next)
	e.boolean(c.Done)
	e.f64(c.RtzOld)
	e.f64(c.NormR0)
	e.int(c.Iterations)
	e.boolean(c.Converged)
	e.f64(c.FinalError)
	e.f64s(c.Residuals)
	e.f64s(c.R)
	e.f64s(c.Z)
	e.f64s(c.P)
	e.f64s(c.AP)
	e.f64s(c.X)
}

func decodeCG(d *decoder, c *hpcg.CGRunState) {
	c.Next = d.int()
	c.Done = d.boolean()
	c.RtzOld = d.f64()
	c.NormR0 = d.f64()
	c.Iterations = d.int()
	c.Converged = d.boolean()
	c.FinalError = d.f64()
	c.Residuals = d.f64s()
	c.R = d.f64s()
	c.Z = d.f64s()
	c.P = d.f64s()
	c.AP = d.f64s()
	c.X = d.f64s()
}
