package checkpoint_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/pebs"
	"repro/internal/workloads"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Monitor.MuxQuantumNs = 0
	cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.Monitor.PEBS.Period = 200
	cfg.Monitor.PEBS.Randomize = false
	cfg.Monitor.PEBS.LatencyThreshold = 0
	return cfg
}

// captureSnapshot produces a real mid-run snapshot (monitor records, PEBS
// engine state, cache contents, registry) rather than a synthetic one, so
// the codec tests cover every populated field.
func captureSnapshot(t testing.TB) *checkpoint.Snapshot {
	t.Helper()
	cfg := testConfig()
	var last *checkpoint.Snapshot
	ck := &core.Checkpointer{
		Every: 2,
		Tag:   core.CheckpointTag("codec", 1, cfg),
		Sink:  func(s *checkpoint.Snapshot) error { last = s; return nil },
	}
	if _, err := core.RunWorkloadCheckpointed(nil, cfg, workloads.NewRandomAccess(1<<12, 1<<10, 3), 6, ck); err != nil {
		t.Fatalf("run: %v", err)
	}
	if last == nil {
		t.Fatal("no snapshot emitted")
	}
	return last
}

func encode(t testing.TB, snap *checkpoint.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, snap); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestCodecRoundTrip(t *testing.T) {
	snap := captureSnapshot(t)
	first := encode(t, snap)
	got, err := checkpoint.Read(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Re-encoding the decoded snapshot must reproduce the bytes exactly:
	// the codec is deterministic and loses nothing.
	second := encode(t, got)
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encoded snapshot differs: %d vs %d bytes", len(second), len(first))
	}
	if got.Tag != snap.Tag || got.Cursor != snap.Cursor {
		t.Errorf("header mismatch: got (%q, %+v), want (%q, %+v)", got.Tag, got.Cursor, snap.Tag, snap.Cursor)
	}
	if len(got.Threads) != len(snap.Threads) {
		t.Fatalf("thread count mismatch: %d vs %d", len(got.Threads), len(snap.Threads))
	}
	if n, m := len(got.Threads[0].Mon.Records), len(snap.Threads[0].Mon.Records); n != m {
		t.Errorf("record count mismatch: %d vs %d", n, m)
	}
}

func TestReadHostileInputs(t *testing.T) {
	valid := encode(t, captureSnapshot(t))
	cases := map[string][]byte{
		"empty":          {},
		"short magic":    []byte("BS"),
		"bad magic":      []byte("XXXXrest-of-garbage"),
		"magic only":     []byte("BSCK"),
		"version only":   append([]byte("BSCK"), 0xff, 0xff, 0xff, 0xff, 0x0f),
		"truncated 1/4":  valid[:len(valid)/4],
		"truncated 1/2":  valid[:len(valid)/2],
		"truncated tail": valid[:len(valid)-1],
	}
	for name, data := range cases {
		if _, err := checkpoint.Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
	}
}

func TestReadBadVersion(t *testing.T) {
	valid := encode(t, captureSnapshot(t))
	// The version varint follows the 4-byte magic; 99 fits one varint byte,
	// same width as version 1, so the rest of the stream still lines up —
	// the decoder must reject on the version alone.
	bad := bytes.Clone(valid)
	bad[4] = 99
	if _, err := checkpoint.Read(bytes.NewReader(bad)); err == nil {
		t.Error("future snapshot version accepted")
	}
}

// TestReadFlippedBytes walks a corruption over the encoded snapshot: every
// mutation must either decode (the field happened to stay plausible) or
// error cleanly — never panic or hang.
func TestReadFlippedBytes(t *testing.T) {
	valid := encode(t, captureSnapshot(t))
	step := len(valid)/97 + 1
	for off := 0; off < len(valid); off += step {
		mut := bytes.Clone(valid)
		mut[off] ^= 0x41
		snap, err := checkpoint.Read(bytes.NewReader(mut))
		if err == nil && snap.Validate() != nil {
			t.Errorf("offset %d: decode succeeded but snapshot invalid", off)
		}
	}
}

func FuzzCheckpointDecode(f *testing.F) {
	valid := encode(f, captureSnapshot(f))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("BSCK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := checkpoint.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must validate and re-encode: hostile
		// bytes may not produce a snapshot the rest of the stack chokes on.
		if err := snap.Validate(); err != nil {
			t.Fatalf("decoded snapshot fails validation: %v", err)
		}
		if err := checkpoint.Write(io.Discard, snap); err != nil {
			t.Fatalf("decoded snapshot fails re-encoding: %v", err)
		}
	})
}
