package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/hpcg"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// ErrCheckpointDemanded is the RunError cause of a run stopped by a
// Checkpointer.Demand trigger: the snapshot was taken and emitted at the
// cursor the RunError carries, so the run can be resumed byte-exactly.
var ErrCheckpointDemanded = errors.New("core: checkpoint demanded, run stopped at instance boundary")

// Checkpointer configures periodic state snapshots of a deterministic run.
// Snapshots happen only at instance boundaries (after an ExitRegion has
// flushed the sampling engine), so restoring one and continuing reproduces
// the uninterrupted run byte for byte.
type Checkpointer struct {
	// Every takes a snapshot after every N completed instances (no final
	// snapshot: a finished run has nothing to resume). Zero disables
	// periodic snapshots (useful with only Resume set).
	Every int
	// Tag fingerprints the producing configuration; it is stamped into
	// every snapshot and validated against Resume. Build it with
	// CheckpointTag.
	Tag string
	// Sink receives each snapshot; an error aborts the run.
	Sink func(*checkpoint.Snapshot) error
	// Resume, when set, restores this snapshot after setup and continues
	// from its cursor instead of starting at the beginning.
	Resume *checkpoint.Snapshot
	// Demand, when non-nil, is polled at every instance boundary (the same
	// quiescent points as the cancellation poll). When it returns true the
	// run snapshots at that boundary, emits the snapshot, and stops with a
	// *RunError wrapping ErrCheckpointDemanded — the mechanism a draining
	// server uses to park an in-flight run it cannot let finish. The poll
	// must be cheap (an atomic load); it runs once per instance.
	Demand func() bool
	// Progress, when non-nil, receives instance/cycle/cache-level counters
	// at every instance boundary (atomic stores, no allocation — see
	// ObserveProgress). Unlike the fields above it does not constrain the
	// run: a progress-only Checkpointer works with any workload and is
	// silently dropped on paths without instance boundaries.
	Progress *telemetry.Progress
}

// CheckpointTag fingerprints a run configuration for snapshot validation:
// resuming under a different scenario, thread count or simulation path
// would silently diverge, so the tag makes the mismatch loud.
func CheckpointTag(name string, threads int, cfg Config) string {
	path := "fast"
	if cfg.Reference {
		path = "reference"
	}
	return fmt.Sprintf("%s|t%d|%s", name, threads, path)
}

// demanded reports whether a demand trigger is armed and has fired; safe on
// a nil receiver so the run loops can poll unconditionally.
func (ck *Checkpointer) demanded() bool {
	return ck != nil && ck.Demand != nil && ck.Demand()
}

func (ck *Checkpointer) emit(snap *checkpoint.Snapshot) error {
	if err := faultinject.Hit(faultinject.PointCheckpoint); err != nil {
		return fmt.Errorf("core: checkpoint at (thread %d, iter %d): %w", snap.Cursor.Thread, snap.Cursor.Iter, err)
	}
	if ck.Sink == nil {
		return nil
	}
	if err := ck.Sink(snap); err != nil {
		return fmt.Errorf("core: checkpoint sink at (thread %d, iter %d): %w", snap.Cursor.Thread, snap.Cursor.Iter, err)
	}
	return nil
}

// Snapshot captures the session's full mutable state at an instance
// boundary.
func (s *Session) Snapshot(cur checkpoint.Cursor, tag string) (*checkpoint.Snapshot, error) {
	ms, err := s.Mon.State()
	if err != nil {
		return nil, err
	}
	return &checkpoint.Snapshot{
		Tag:      tag,
		Cursor:   cur,
		Threads:  []checkpoint.ThreadState{{Mon: ms, Hier: s.Hier.State()}},
		Registry: s.Mon.Registry().State(),
	}, nil
}

// RestoreSnapshot overwrites the mutable state of a session that has been
// rebuilt by an identical setup (same config, same workload Setup replay).
func (s *Session) RestoreSnapshot(snap *checkpoint.Snapshot, tag string) error {
	if snap.Tag != tag {
		return fmt.Errorf("core: snapshot tag %q does not match run %q", snap.Tag, tag)
	}
	if len(snap.Threads) != 1 || len(snap.L3s) != 0 || snap.Placement != nil {
		return fmt.Errorf("core: snapshot describes a machine run, not a session")
	}
	if err := s.Mon.RestoreState(snap.Threads[0].Mon); err != nil {
		return err
	}
	if err := s.Hier.RestoreState(snap.Threads[0].Hier); err != nil {
		return err
	}
	if err := s.Mon.Registry().RestoreState(snap.Registry); err != nil {
		return err
	}
	s.sortedLog, s.sortedLen = nil, 0
	return nil
}

// Snapshot captures the machine's full mutable state at an instance
// boundary of the sequential schedule.
func (m *Machine) Snapshot(cur checkpoint.Cursor, tag string) (*checkpoint.Snapshot, error) {
	snap := &checkpoint.Snapshot{Tag: tag, Cursor: cur}
	for _, th := range m.Threads {
		ms, err := th.Mon.State()
		if err != nil {
			return nil, err
		}
		snap.Threads = append(snap.Threads, checkpoint.ThreadState{Mon: ms, Hier: th.Hier.State()})
	}
	for _, l3 := range m.L3s {
		snap.L3s = append(snap.L3s, l3.State())
	}
	if m.Placement != nil {
		ps := m.Placement.State()
		snap.Placement = &ps
	}
	snap.Registry = m.Primary().Mon.Registry().State()
	return snap, nil
}

// RestoreSnapshot overwrites the mutable state of a machine that has been
// rebuilt by an identical setup.
func (m *Machine) RestoreSnapshot(snap *checkpoint.Snapshot, tag string) error {
	if snap.Tag != tag {
		return fmt.Errorf("core: snapshot tag %q does not match run %q", snap.Tag, tag)
	}
	if len(snap.Threads) != len(m.Threads) {
		return fmt.Errorf("core: snapshot has %d threads, machine has %d", len(snap.Threads), len(m.Threads))
	}
	if len(snap.L3s) != len(m.L3s) {
		return fmt.Errorf("core: snapshot has %d shared caches, machine has %d", len(snap.L3s), len(m.L3s))
	}
	if (snap.Placement != nil) != (m.Placement != nil) {
		return fmt.Errorf("core: snapshot and machine disagree on NUMA placement")
	}
	for t, th := range m.Threads {
		if err := th.Mon.RestoreState(snap.Threads[t].Mon); err != nil {
			return fmt.Errorf("core: thread %d: %w", t+1, err)
		}
		if err := th.Hier.RestoreState(snap.Threads[t].Hier); err != nil {
			return fmt.Errorf("core: thread %d: %w", t+1, err)
		}
	}
	for i, l3 := range m.L3s {
		if err := l3.RestoreState(snap.L3s[i]); err != nil {
			return fmt.Errorf("core: socket %d L3: %w", i, err)
		}
	}
	if m.Placement != nil {
		if err := m.Placement.RestoreState(*snap.Placement); err != nil {
			return err
		}
	}
	if err := m.Primary().Mon.Registry().RestoreState(snap.Registry); err != nil {
		return err
	}
	m.sortedLog, m.sortedLen = nil, 0
	for i := range m.threadLogs {
		m.threadLogs[i] = threadLog{}
	}
	return nil
}

// RunWorkloadCheckpointed is RunWorkload driven one instance at a time on a
// Session, with cancellation polls, the instance fault-injection point and
// optional periodic snapshots between instances. With a nil context and
// checkpointer the executed instruction stream is identical to RunWorkload.
// On cancellation it returns the partial result alongside a *RunError.
func RunWorkloadCheckpointed(ctx context.Context, cfg Config, w workloads.Workload, iters int, ck *Checkpointer) (*RunWorkloadResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rw, resumable := w.(workloads.ResumableWorkload)
	if ck.checkpoints() && !resumable {
		return nil, fmt.Errorf("core: workload %q does not support checkpointing (no RunPartitionRange)", w.Name())
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	wctx := s.Ctx()
	if err := w.Setup(wctx); err != nil {
		return nil, err
	}
	s.Mon.Start()

	start := 0
	if ck != nil && ck.Resume != nil {
		if ck.Resume.Cursor.Thread != 0 {
			return nil, fmt.Errorf("core: snapshot cursor thread %d on a single-thread session", ck.Resume.Cursor.Thread)
		}
		if err := s.RestoreSnapshot(ck.Resume, ck.Tag); err != nil {
			return nil, err
		}
		start = ck.Resume.Cursor.Iter
	}

	var runErr *RunError
	if resumable {
		n := rw.Elements()
		ck.observeSession(s, start)
		for it := start; it < iters; it++ {
			cur := checkpoint.Cursor{Thread: 0, Iter: it}
			if err := ctx.Err(); err != nil {
				runErr = &RunError{Thread: 1, Cursor: cur, Cause: err}
				break
			}
			if err := faultinject.Hit(faultinject.PointInstance); err != nil {
				runErr = &RunError{Thread: 1, Cursor: cur, Cause: err}
				break
			}
			if ck.demanded() {
				snap, err := s.Snapshot(cur, ck.Tag)
				if err != nil {
					return nil, err
				}
				if err := ck.emit(snap); err != nil {
					return nil, err
				}
				runErr = &RunError{Thread: 1, Cursor: cur, Cause: ErrCheckpointDemanded}
				break
			}
			if err := rw.RunPartitionRange(wctx, it, it+1, 0, n); err != nil {
				return nil, err
			}
			done := it + 1
			ck.observeSession(s, done)
			if ck != nil && ck.Every > 0 && done%ck.Every == 0 && done < iters {
				snap, err := s.Snapshot(checkpoint.Cursor{Iter: done}, ck.Tag)
				if err != nil {
					return nil, err
				}
				if err := ck.emit(snap); err != nil {
					return nil, err
				}
			}
		}
	} else {
		if err := ctx.Err(); err != nil {
			runErr = &RunError{Thread: 1, Cause: err}
		} else if err := w.Run(wctx, iters); err != nil {
			return nil, err
		} else {
			// No instance boundaries inside a non-resumable Run: progress
			// jumps from zero to done.
			ck.observeSession(s, iters)
		}
	}
	s.Mon.Stop()
	if runErr != nil {
		res := &RunWorkloadResult{Session: s, Partial: true}
		if folded, err := s.Fold(w.Region()); err == nil {
			res.Folded = folded
		}
		return res, runErr
	}
	folded, err := s.Fold(w.Region())
	if err != nil {
		return nil, err
	}
	return &RunWorkloadResult{Session: s, Folded: folded}, nil
}

// RunHPCGCheckpointed is RunHPCG driven one CG iteration at a time, with
// cancellation polls, the instance fault-injection point and optional
// periodic snapshots between iterations. With a nil context and
// checkpointer the executed instruction stream is identical to RunHPCG.
// On cancellation it returns the partial result alongside a *RunError.
func RunHPCGCheckpointed(ctx context.Context, cfg Config, params hpcg.Params, ck *Checkpointer) (*HPCGRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if err := hpcg.SetupBinary(s.Bin); err != nil {
		return nil, err
	}
	problem, err := hpcg.Generate(params, s.Core, s.Mon, s.Bin)
	if err != nil {
		return nil, err
	}
	s.Mon.Start()
	cgr, err := problem.NewCGRun()
	if err != nil {
		return nil, err
	}
	if ck != nil && ck.Resume != nil {
		if ck.Resume.CG == nil {
			return nil, fmt.Errorf("core: snapshot carries no CG solver state")
		}
		if err := s.RestoreSnapshot(ck.Resume, ck.Tag); err != nil {
			return nil, err
		}
		if err := cgr.RestoreState(*ck.Resume.CG); err != nil {
			return nil, err
		}
	}

	var runErr *RunError
	ck.observeSession(s, cgr.Result().Iterations)
	for {
		cur := checkpoint.Cursor{Iter: cgr.Result().Iterations}
		if err := ctx.Err(); err != nil {
			runErr = &RunError{Thread: 1, Cursor: cur, Cause: err}
			break
		}
		if err := faultinject.Hit(faultinject.PointInstance); err != nil {
			runErr = &RunError{Thread: 1, Cursor: cur, Cause: err}
			break
		}
		if ck.demanded() {
			snap, err := s.Snapshot(cur, ck.Tag)
			if err != nil {
				return nil, err
			}
			cgs := cgr.State()
			snap.CG = &cgs
			if err := ck.emit(snap); err != nil {
				return nil, err
			}
			runErr = &RunError{Thread: 1, Cursor: cur, Cause: ErrCheckpointDemanded}
			break
		}
		done, err := cgr.Step()
		if err != nil {
			return nil, err
		}
		ck.observeSession(s, cgr.Result().Iterations)
		if done {
			break
		}
		if k := cgr.Result().Iterations; ck != nil && ck.Every > 0 && k%ck.Every == 0 {
			snap, err := s.Snapshot(checkpoint.Cursor{Iter: k}, ck.Tag)
			if err != nil {
				return nil, err
			}
			cgs := cgr.State()
			snap.CG = &cgs
			if err := ck.emit(snap); err != nil {
				return nil, err
			}
		}
	}
	s.Mon.Stop()
	if runErr != nil {
		run := &HPCGRun{Session: s, Problem: problem, CG: cgr.Result(), Partial: true}
		if folded, err := s.Fold(problem.RegionIteration); err == nil {
			run.Folded = folded
			run.Paper = LabelPaperPhases(folded, s.FuncOf)
		}
		return run, runErr
	}
	folded, err := s.Fold(problem.RegionIteration)
	if err != nil {
		return nil, err
	}
	run := &HPCGRun{Session: s, Problem: problem, CG: cgr.Result(), Folded: folded}
	run.Paper = LabelPaperPhases(folded, s.FuncOf)
	return run, nil
}

// RunWorkloadSequentialCheckpointed is RunWorkloadSequential with periodic
// snapshots between instances of the deterministic thread-major schedule
// (thread 1 runs all its iterations, then thread 2, and so on). Resuming a
// snapshot reproduces the uninterrupted run's metrics and trace exactly.
func RunWorkloadSequentialCheckpointed(ctx context.Context, cfg Config, w workloads.PartitionedWorkload, iters, threads int, ck *Checkpointer) (*MachineWorkloadResult, error) {
	return runWorkloadPartitioned(ctx, cfg, w, iters, threads, false, ck)
}
