package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/folding"
	"repro/internal/hpcg"
	"repro/internal/pebs"
	"repro/internal/workloads"
)

// testConfig returns a fast, deterministic configuration for integration
// tests: no PEBS randomization, short period, no multiplexing.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Monitor.MuxQuantumNs = 0
	cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.Monitor.PEBS.Period = 200
	cfg.Monitor.PEBS.Randomize = false
	cfg.Monitor.PEBS.LatencyThreshold = 0
	return cfg
}

func testHPCGParams() hpcg.Params {
	return hpcg.Params{NX: 16, NY: 16, NZ: 16, MGLevels: 2, MaxIters: 4}
}

func TestNewSessionValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Cache.DRAMLatency = 0
	if _, err := NewSession(bad); err == nil {
		t.Error("bad cache config accepted")
	}
	bad2 := DefaultConfig()
	bad2.CPU.FreqHz = 0
	if _, err := NewSession(bad2); err == nil {
		t.Error("bad cpu config accepted")
	}
	bad3 := DefaultConfig()
	bad3.Monitor.PEBS.Period = 0
	if _, err := NewSession(bad3); err == nil {
		t.Error("bad monitor config accepted")
	}
}

func TestASLRChangesBase(t *testing.T) {
	cfg := testConfig()
	s1, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.ASLRSeed = 42
	s2, err := NewSession(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	cfg3 := cfg
	cfg3.ASLRSeed = 43
	s3, err := NewSession(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if s1.AS.Base() == s2.AS.Base() {
		t.Error("ASLR seed did not move the heap base")
	}
	if s2.AS.Base() == s3.AS.Base() {
		t.Error("different ASLR seeds produced the same base")
	}
	// Same seed reproduces the same base (determinism).
	s2b, _ := NewSession(cfg2)
	if s2.AS.Base() != s2b.AS.Base() {
		t.Error("same ASLR seed produced different bases")
	}
}

func TestRunWorkloadStream(t *testing.T) {
	w := workloads.NewStream(1 << 15)
	res, err := RunWorkload(testConfig(), w, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Math is right.
	for i := 0; i < w.N; i += 1000 {
		if w.Value(i) != w.Expected(i) {
			t.Fatalf("triad wrong at %d: %g != %g", i, w.Value(i), w.Expected(i))
		}
	}
	f := res.Folded
	if f.InstancesUsed < 25 {
		t.Errorf("folded instances = %d", f.InstancesUsed)
	}
	// STREAM sweeps linearly: single forward phase expected.
	if len(f.Phases) == 0 {
		t.Fatal("no phases detected")
	}
	if f.Phases[0].Direction != folding.SweepForward {
		t.Errorf("stream phase direction = %v", f.Phases[0].Direction)
	}
	// Loads outnumber stores roughly 2:1 in the samples.
	var loads, stores int
	for _, mp := range f.Mem {
		if mp.Store {
			stores++
		} else {
			loads++
		}
	}
	if loads < stores {
		t.Errorf("loads %d < stores %d, triad is 2:1", loads, stores)
	}
}

func TestRunHPCGEndToEnd(t *testing.T) {
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	if run.CG.Iterations != 4 {
		t.Errorf("iterations = %d", run.CG.Iterations)
	}
	// Residuals decrease (the solver works under full monitoring).
	rs := run.CG.Residuals
	if rs[len(rs)-1] >= rs[0] {
		t.Errorf("residuals not decreasing: %v", rs)
	}
	f := run.Folded
	if f.InstancesUsed == 0 {
		t.Fatal("no folded instances")
	}
	// IPC well below 1: memory bound, as the paper reports (~0.6).
	ipc := f.MeanIPC()
	if ipc <= 0.1 || ipc >= 1.2 {
		t.Errorf("mean IPC = %.3f, want memory-bound (~0.3-1)", ipc)
	}

	// The paper's phase structure: SYMGS appears twice (A, D), SpMV twice
	// (B, E), MG once (C) per iteration.
	counts := map[string]int{}
	for _, pp := range run.Paper {
		counts[strings.ToUpper(pp.Label[:1])]++
	}
	for _, letter := range []string{"A", "B", "D", "E"} {
		if counts[letter] == 0 {
			t.Errorf("paper phase %s not detected (labels: %v)", letter, labels(run))
		}
	}
	// SYMGS sweeps split into forward + backward.
	a1, okA1 := run.PhaseByLabel("a1")
	a2, okA2 := run.PhaseByLabel("a2")
	if okA1 && okA2 {
		if a1.Direction != folding.SweepForward {
			t.Errorf("a1 direction = %v", a1.Direction)
		}
		if a2.Direction != folding.SweepBackward {
			t.Errorf("a2 direction = %v", a2.Direction)
		}
	} else {
		t.Errorf("SYMGS sweeps not split: labels %v", labels(run))
	}
}

func labels(run *HPCGRun) []string {
	out := make([]string, len(run.Paper))
	for i, pp := range run.Paper {
		out[i] = pp.Label
	}
	return out
}

func TestHPCGBandwidthShape(t *testing.T) {
	// The paper's in-text numbers: SpMV (B) bandwidth exceeds the SYMGS
	// sweeps (a1, a2): 6427 vs 4197/4315 MB/s, a ratio of ~1.5.
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	a1, ok1 := run.PhaseByLabel("a1")
	b, ok2 := run.PhaseByLabel("B")
	if !ok1 || !ok2 {
		t.Fatalf("phases missing: %v", labels(run))
	}
	if b.SpanBandwidth <= a1.SpanBandwidth {
		t.Errorf("SpMV bandwidth %.0f MB/s not above SYMGS %.0f MB/s",
			b.SpanBandwidth/1e6, a1.SpanBandwidth/1e6)
	}
	ratio := b.SpanBandwidth / a1.SpanBandwidth
	if ratio < 1.1 || ratio > 3.5 {
		t.Errorf("B/a1 bandwidth ratio = %.2f, paper shape ~1.5", ratio)
	}
	rows := run.BandwidthTable()
	if len(rows) < 3 {
		t.Errorf("bandwidth table rows = %d", len(rows))
	}
}

func TestHPCGObjectAccounting(t *testing.T) {
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	matrix := run.MatrixGroup()
	maps := run.MapGroup()
	if matrix == nil || maps == nil {
		t.Fatal("allocation groups missing")
	}
	// Size ratio ~7:1 like the paper's 617:89 MB.
	ratio := float64(matrix.Bytes) / float64(maps.Bytes)
	if ratio < 5.5 || ratio > 9 {
		t.Errorf("size ratio = %.2f", ratio)
	}
	// The matrix dominates sampled references; the map region is not
	// touched during execution.
	if matrix.Refs == 0 {
		t.Error("matrix group unreferenced")
	}
	if maps.Refs != 0 {
		t.Errorf("map group referenced %d times during execution, want 0", maps.Refs)
	}
	// No stores into the matrix region (written only during setup).
	if matrix.Stores != 0 {
		t.Errorf("matrix group stores = %d, want 0", matrix.Stores)
	}
	// Resolution rate is high thanks to grouping.
	if rate := run.Session.Mon.Registry().ResolutionRate(); rate < 0.95 {
		t.Errorf("resolution rate = %.3f", rate)
	}
}

func TestHPCGFigure1Renders(t *testing.T) {
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	fig := run.Figure1()
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1 (top)", "Figure 1 (middle)", "Figure 1 (bottom)",
		"124_GenerateProblem_ref.cpp", "Detected phases", "mean IPC",
		"MIPS", "legend: '.' load, '#' store",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
	// Stores must appear in the middle panel ('#') but only in the upper
	// (vector) part — spot-check that both markers exist.
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Error("middle panel missing load/store marks")
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	w := workloads.NewStream(1 << 12)
	res, err := RunWorkload(testConfig(), w, 5)
	if err != nil {
		t.Fatal(err)
	}
	var prv, pcf bytes.Buffer
	if err := res.Session.WriteTrace(&prv, &pcf); err != nil {
		t.Fatal(err)
	}
	if prv.Len() == 0 || pcf.Len() == 0 {
		t.Error("empty trace outputs")
	}
	if !strings.Contains(prv.String(), "#Paraver") {
		t.Error("prv header missing")
	}
	if !strings.Contains(pcf.String(), "stream_triad") {
		t.Error("pcf missing region label")
	}
}

// TestWriteTraceHPCGOrdering reproduces the late-drain scenario: with a
// buffered PEBS engine, sample records are logged after region records
// carrying later timestamps, so the raw monitor log is not time-sorted.
// WriteTrace must still produce a valid (per-thread monotonic) PRV trace.
func TestWriteTraceHPCGOrdering(t *testing.T) {
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	var prv, pcf bytes.Buffer
	if err := run.Session.WriteTrace(&prv, &pcf); err != nil {
		t.Fatalf("WriteTrace on HPCG session: %v", err)
	}
	if prv.Len() == 0 {
		t.Error("empty prv output")
	}
}

func TestFoldUnknownRegion(t *testing.T) {
	s, err := NewSession(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fold(99); err == nil {
		t.Error("folding an absent region should fail")
	}
}
