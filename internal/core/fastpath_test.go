package core

import (
	"reflect"
	"testing"

	"repro/internal/hpcg"
	"repro/internal/pebs"
	"repro/internal/workloads"
)

// These tests pin the fast simulation path (countdown-gated sampling +
// batched stream issue + packed cache model) to the straightforward
// reference path (per-op observation, per-op issue): a seeded run must
// produce byte-identical traces — samples, phase labels, MIPS curve —
// and identical PMU totals, per-level cache statistics and PEBS engine
// statistics either way.

func comparableConfigs() (fast, ref Config) {
	fast = DefaultConfig()
	fast.Monitor.PEBS.Period = 150
	fast.Monitor.PEBS.Randomize = true
	fast.Monitor.PEBS.Seed = 7
	fast.Monitor.PEBS.LatencyThreshold = 3
	fast.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	fast.Monitor.MuxQuantumNs = 25_000 // rotate many times per run
	ref = fast
	ref.Reference = true
	return fast, ref
}

func assertRunsIdentical(t *testing.T, fastS, refS *Session) {
	t.Helper()
	fastRecs, refRecs := fastS.Mon.Records(), refS.Mon.Records()
	if len(fastRecs) != len(refRecs) {
		t.Fatalf("record count: fast %d, reference %d", len(fastRecs), len(refRecs))
	}
	for i := range fastRecs {
		if !reflect.DeepEqual(fastRecs[i], refRecs[i]) {
			t.Fatalf("record %d differs:\nfast: %+v\nref:  %+v", i, fastRecs[i], refRecs[i])
		}
	}
	if f, r := fastS.Core.Cycles(), refS.Core.Cycles(); f != r {
		t.Errorf("cycles: fast %d, reference %d", f, r)
	}
	if f, r := fastS.Core.PMU().TrueSnapshot(), refS.Core.PMU().TrueSnapshot(); f != r {
		t.Errorf("PMU totals: fast %v, reference %v", f, r)
	}
	for i := 0; i < fastS.Hier.Levels(); i++ {
		if f, r := fastS.Hier.LevelStats(i), refS.Hier.LevelStats(i); f != r {
			t.Errorf("level %d stats: fast %+v, reference %+v", i, f, r)
		}
	}
	if f, r := fastS.Hier.DRAMAccesses(), refS.Hier.DRAMAccesses(); f != r {
		t.Errorf("DRAM accesses: fast %d, reference %d", f, r)
	}
	if f, r := fastS.Mon.Engine().Stats(), refS.Mon.Engine().Stats(); f != r {
		t.Errorf("PEBS stats: fast %+v, reference %+v", f, r)
	}
}

func TestFastPathEquivalenceHPCG(t *testing.T) {
	fastCfg, refCfg := comparableConfigs()
	params := hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3}

	fast, err := RunHPCG(fastCfg, params)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunHPCG(refCfg, params)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)

	// Folded output: identical samples, phase labels and MIPS curve.
	if len(fast.Folded.Mem) == 0 {
		t.Fatal("no folded samples: equivalence test is vacuous")
	}
	if f, r := len(fast.Folded.Mem), len(ref.Folded.Mem); f != r {
		t.Fatalf("folded samples: fast %d, reference %d", f, r)
	}
	for i := range fast.Folded.Mem {
		if fast.Folded.Mem[i] != ref.Folded.Mem[i] {
			t.Fatalf("folded sample %d differs: %+v vs %+v",
				i, fast.Folded.Mem[i], ref.Folded.Mem[i])
		}
	}
	if !reflect.DeepEqual(fast.Folded.Phases, ref.Folded.Phases) {
		t.Errorf("phases differ: %+v vs %+v", fast.Folded.Phases, ref.Folded.Phases)
	}
	if !reflect.DeepEqual(fast.Folded.MIPS(), ref.Folded.MIPS()) {
		t.Error("MIPS curves differ")
	}
	fl, rl := labels(fast), labels(ref)
	if !reflect.DeepEqual(fl, rl) {
		t.Errorf("paper labels differ: %v vs %v", fl, rl)
	}
}

func TestFastPathEquivalenceHPCGDeterministic(t *testing.T) {
	// Same comparison with randomization off, no threshold, no mux: the
	// configuration the figure benches use.
	fastCfg := testConfig()
	refCfg := fastCfg
	refCfg.Reference = true
	params := hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 2}
	fast, err := RunHPCG(fastCfg, params)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunHPCG(refCfg, params)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)
}

func TestFastPathEquivalenceStream(t *testing.T) {
	fastCfg, refCfg := comparableConfigs()
	fast, err := RunWorkload(fastCfg, workloads.NewStream(1<<13), 12)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunWorkload(refCfg, workloads.NewStream(1<<13), 12)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)
	if len(fast.Folded.Mem) == 0 {
		t.Fatal("no folded samples: equivalence test is vacuous")
	}
	var loads, stores int
	for _, mp := range fast.Folded.Mem {
		if mp.Store {
			stores++
		} else {
			loads++
		}
	}
	if loads == 0 || stores == 0 {
		t.Errorf("multiplexed run should sample both classes: loads=%d stores=%d", loads, stores)
	}
}

func TestFastPathEquivalenceRandomAccess(t *testing.T) {
	// Random access defeats the bulk path (every access its own line) but
	// still exercises the gated monitor against the per-op reference.
	fastCfg, refCfg := comparableConfigs()
	fast, err := RunWorkload(fastCfg, workloads.NewRandomAccess(1<<14, 4000, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunWorkload(refCfg, workloads.NewRandomAccess(1<<14, 4000, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)
}

func TestFastPathEquivalencePointerChase(t *testing.T) {
	// Dependency-chained loads: every access stalls for its full latency,
	// so the gated path must agree on every countdown boundary.
	fastCfg, refCfg := comparableConfigs()
	fast, err := RunWorkload(fastCfg, workloads.NewPointerChase(1<<12, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunWorkload(refCfg, workloads.NewPointerChase(1<<12, 5), 8)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)
}

func TestFastPathEquivalenceMatMul(t *testing.T) {
	// Mixed pattern: cache-resident A rows, strided B columns, per-element
	// loads with interleaved compute.
	fastCfg, refCfg := comparableConfigs()
	fast, err := RunWorkload(fastCfg, workloads.NewMatMul(24), 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunWorkload(refCfg, workloads.NewMatMul(24), 3)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)
}

func TestFastPathEquivalenceSpMV(t *testing.T) {
	// CSR SpMV mixes the batched stream issue (values, column indices)
	// with an indexed x gather — the access shape of HPCG's SpMV phase.
	fastCfg, refCfg := comparableConfigs()
	fast, err := RunWorkload(fastCfg, workloads.NewSpMV(12, 12, 12), 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunWorkload(refCfg, workloads.NewSpMV(12, 12, 12), 4)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsIdentical(t, fast.Session, ref.Session)
	if len(fast.Folded.Mem) == 0 {
		t.Fatal("no folded samples: equivalence test is vacuous")
	}
}
