package core

import (
	"fmt"

	"repro/internal/checkpoint"
)

// RunError reports a run stopped at an instance boundary without completing:
// cancellation, an injected fault, or a contained worker panic. The cursor
// pins the first instance that did not execute, which is exactly where a
// checkpointed run resumes.
type RunError struct {
	// Thread is the 1-based thread whose schedule was interrupted, 0 when
	// the fault is global (e.g. a parallel solve aborting at a barrier).
	Thread int
	// Cursor locates the next instance that did not run.
	Cursor checkpoint.Cursor
	// Cause is the underlying fault: context.Canceled,
	// context.DeadlineExceeded, a faultinject error or a recovered panic.
	Cause error
}

func (e *RunError) Error() string {
	if e.Thread > 0 {
		return fmt.Sprintf("core: run stopped on thread %d before instance (thread %d, iter %d): %v",
			e.Thread, e.Cursor.Thread, e.Cursor.Iter, e.Cause)
	}
	return fmt.Sprintf("core: run stopped after %d completed iterations: %v", e.Cursor.Iter, e.Cause)
}

func (e *RunError) Unwrap() error { return e.Cause }
