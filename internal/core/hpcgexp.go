package core

import (
	"fmt"
	"strings"

	"repro/internal/folding"
	"repro/internal/hpcg"
	"repro/internal/objects"
	"repro/internal/report"
)

// PaperPhase is a detected phase mapped onto the paper's Figure 1 labels:
// A (a1, a2), B, C, D (d1, d2), E.
type PaperPhase struct {
	// Label is the paper's letter ("a1", "B", …); auxiliary phases that
	// the paper does not letter (dot products, vector updates) get "-".
	Label string
	Phase folding.Phase
}

// HPCGRun bundles the full HPCG reproduction.
type HPCGRun struct {
	Session *Session
	Problem *hpcg.Problem
	CG      *hpcg.CGResult
	// Folded is the folded CG_iteration region.
	Folded *folding.Folded
	// Paper maps the detected phases onto the paper's labels.
	Paper []PaperPhase
	// Partial marks a run stopped before completion; Folded may be nil if
	// no iteration finished.
	Partial bool
}

// RunHPCG executes the paper's evaluation end to end: generate the problem
// (setup phase, unmonitored but with allocation tracking), run CG under
// monitoring, fold the iteration region and label the phases.
func RunHPCG(cfg Config, params hpcg.Params) (*HPCGRun, error) {
	return RunHPCGCheckpointed(nil, cfg, params, nil)
}

// LabelPaperPhases walks the detected phases of a folded HPCG iteration and
// assigns the paper's letters. Consecutive phases sharing a function form
// one occurrence; the first SYMGS occurrence is A (its forward/backward
// sweeps a1/a2), then the first SpMV is B, the MG coarse region is C, the
// second SYMGS is D (d1/d2) and the second SpMV is E.
func LabelPaperPhases(f *folding.Folded, funcOf func(ip uint64) string) []PaperPhase {
	out := make([]PaperPhase, 0, len(f.Phases))
	type group struct {
		fn         string
		start, end int // phase index range [start, end)
	}
	var groups []group
	for i, p := range f.Phases {
		fn := funcOf(p.DominantIP)
		if len(groups) > 0 && groups[len(groups)-1].fn == fn {
			groups[len(groups)-1].end = i + 1
			continue
		}
		groups = append(groups, group{fn: fn, start: i, end: i + 1})
	}
	symgsSeen, spmvSeen := 0, 0
	for _, g := range groups {
		var letter string
		switch {
		case strings.Contains(g.fn, "SYMGS"):
			symgsSeen++
			if symgsSeen == 1 {
				letter = "A"
			} else {
				letter = "D"
			}
		case strings.Contains(g.fn, "SPMV"):
			spmvSeen++
			if spmvSeen == 1 {
				letter = "B"
			} else {
				letter = "E"
			}
		case strings.Contains(g.fn, "MG"):
			letter = "C"
		default:
			letter = "-"
		}
		n := g.end - g.start
		for k := 0; k < n; k++ {
			label := letter
			if letter != "-" && n > 1 {
				label = fmt.Sprintf("%s%d", strings.ToLower(letter), k+1)
			}
			out = append(out, PaperPhase{Label: label, Phase: f.Phases[g.start+k]})
		}
	}
	return out
}

// PhaseByLabel returns the first phase with the given paper label.
func (r *HPCGRun) PhaseByLabel(label string) (folding.Phase, bool) {
	for _, pp := range r.Paper {
		if pp.Label == label {
			return pp.Phase, true
		}
	}
	return folding.Phase{}, false
}

// Figure1 assembles the report inputs for the run.
func (r *HPCGRun) Figure1() *report.Figure1 {
	return &report.Figure1{
		Folded:  r.Folded,
		Binary:  r.Session.Bin,
		Objects: r.Session.Mon.Registry().Objects(),
	}
}

// BandwidthRow is one line of the paper's in-text bandwidth comparison.
type BandwidthRow struct {
	Label     string
	Direction folding.SweepDir
	// MBps is the traversal-bandwidth approximation in MB/s.
	MBps float64
}

// BandwidthTable extracts the paper's bandwidth comparison (regions a1, a2
// and B) from the labeled phases.
func (r *HPCGRun) BandwidthTable() []BandwidthRow {
	var rows []BandwidthRow
	for _, want := range []string{"a1", "a2", "A", "B", "d1", "d2", "D", "E"} {
		if p, ok := r.PhaseByLabel(want); ok {
			rows = append(rows, BandwidthRow{
				Label:     want,
				Direction: p.Direction,
				MBps:      p.SpanBandwidth / 1e6,
			})
		}
	}
	return rows
}

// MatrixGroup returns the "124_GenerateProblem_ref.cpp" object (the wrapped
// matrix allocations), or nil if missing.
func (r *HPCGRun) MatrixGroup() *objects.Object {
	return r.objectByName("124_GenerateProblem_ref.cpp")
}

// MapGroup returns the "205_GenerateProblem_ref.cpp" object.
func (r *HPCGRun) MapGroup() *objects.Object {
	return r.objectByName("205_GenerateProblem_ref.cpp")
}

func (r *HPCGRun) objectByName(name string) *objects.Object {
	for _, o := range r.Session.Mon.Registry().Objects() {
		if o.Name == name {
			return o
		}
	}
	return nil
}
