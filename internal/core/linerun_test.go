package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/workloads"
)

// runWorkload is a synthetic workload that emits a seeded random sequence
// of LineRun batches — strides from sub-element to multi-line, mixed
// loads/stores/dependent runs, interleaved compute — so the end-to-end
// fast-vs-reference equivalence covers the whole line-run pipeline under
// the real monitor: randomized PEBS countdowns, the latency threshold and
// load/store multiplexing quanta all split runs at arbitrary phases.
type runWorkload struct {
	Seed  int64
	N     int // runs per iteration
	Words int // buffer size in 8-byte words

	region extrae.Region
	base   uint64
	ip     uint64
}

func (w *runWorkload) Name() string          { return "line_run_property" }
func (w *runWorkload) Region() extrae.Region { return w.region }
func (w *runWorkload) Setup(ctx *workloads.Ctx) error {
	fn, err := ctx.Bin.AddFunction("line_run_property", "runs.c", 90, 4)
	if err != nil {
		return err
	}
	if w.ip, err = fn.IPForLine(92); err != nil {
		return err
	}
	w.region = ctx.Mon.RegisterRegion("line_run_property")
	if w.base, err = ctx.Mon.Alloc(uint64(w.Words) * 8); err != nil {
		return err
	}
	return nil
}

func (w *runWorkload) Run(ctx *workloads.Ctx, iters int) error {
	core := ctx.Core
	rng := rand.New(rand.NewSource(w.Seed))
	strides := []int{1, 3, 4, 8, 12, 16, 56, 64, 72, 128}
	var runs [4]cpu.LineRun
	for it := 0; it < iters; it++ {
		ctx.Mon.EnterRegion(w.region)
		for r := 0; r < w.N; r++ {
			nb := 1 + rng.Intn(len(runs))
			for b := 0; b < nb; b++ {
				stride := strides[rng.Intn(len(strides))]
				count := 1 + rng.Intn(60)
				maxBase := w.Words*8 - stride*count - 8
				runs[b] = cpu.LineRun{
					IP:     w.ip + uint64(b)*4,
					Base:   w.base + uint64(rng.Intn(maxBase)),
					Stride: stride,
					Size:   8,
					Count:  count,
					Store:  rng.Intn(3) == 0,
					Dep:    rng.Intn(4) == 0,
				}
			}
			core.IssueRuns(runs[:nb])
			if rng.Intn(2) == 0 {
				core.Compute(uint64(1 + rng.Intn(20)))
			}
		}
		ctx.Mon.ExitRegion(w.region)
	}
	return nil
}

// TestLineRunPropertyFastVsReference is the end-to-end property test for
// the run splitter: randomized line runs under randomized sampling must
// produce byte-identical traces on the batched and per-op paths.
func TestLineRunPropertyFastVsReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fastCfg, refCfg := comparableConfigs()
			// Vary the gate phases across seeds: period and mux quantum
			// drift so countdown and quantum boundaries land at different
			// offsets inside runs, including exactly on run boundaries.
			fastCfg.Monitor.PEBS.Period = 40 + uint64(seed*13)
			fastCfg.Monitor.PEBS.Seed = seed
			fastCfg.Monitor.MuxQuantumNs = 3_000 + uint64(seed)*501
			refCfg = fastCfg
			refCfg.Reference = true

			mk := func() *runWorkload { return &runWorkload{Seed: seed * 31, N: 120, Words: 1 << 16} }
			fast, err := RunWorkload(fastCfg, mk(), 3)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := RunWorkload(refCfg, mk(), 3)
			if err != nil {
				t.Fatal(err)
			}
			assertRunsIdentical(t, fast.Session, ref.Session)
			if len(fast.Folded.Mem) == 0 {
				t.Fatal("no folded samples: equivalence test is vacuous")
			}
		})
	}
}
