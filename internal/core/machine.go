package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/faultinject"
	"repro/internal/folding"
	"repro/internal/hpcg"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// MachineThread is one simulated core's private stack: its own cache
// levels (L1/L2), core, PMU, PEBS engine and Extrae monitor — exactly what
// the paper's per-hardware-thread monitoring attaches to each OpenMP
// thread. The hierarchy's last level is the Machine's shared L3.
type MachineThread struct {
	Hier *memhier.Hierarchy
	Core *cpu.Core
	Mon  *extrae.Monitor
}

// Machine is an N-core simulated shared-memory node: N MachineThreads
// running concurrently (one goroutine each during parallel sections),
// sharing one address space, one synthetic binary and one data-object
// registry. Cores are grouped into S sockets (S = 1 unless Config.NUMA
// asks for more), each socket with its own thread-safe shared L3; on a
// NUMA machine every DRAM fill additionally resolves through the page
// placement to its home memory node. A 1-thread Machine is
// observationally identical to a Session, and a 1-socket NUMA-routed
// Machine to the flat Machine — the fastpath and partition equivalence
// suites pin both.
type Machine struct {
	Cfg     Config
	Threads []*MachineThread
	// L3 is socket 0's shared last-level cache (the only one on a
	// single-socket machine).
	L3 *memhier.SharedCache
	// L3s holds every socket's shared L3, indexed by socket.
	L3s []*memhier.SharedCache
	// Sockets is the socket count (1 for the flat machine).
	Sockets int
	// SocketOf maps 0-based thread index to socket index.
	SocketOf []int
	// Placement is the NUMA page placement (nil on the flat machine).
	Placement *numa.Placement
	Bin       *prog.Binary
	AS        *prog.AddressSpace

	// sortedLog memoizes MergedRecords and threadLogs the per-thread
	// sorted streams (the per-monitor logs are append-only, so an
	// unchanged length means an unchanged log).
	sortedLog  []trace.Record
	sortedLen  int
	threadLogs []threadLog
}

type threadLog struct {
	recs []trace.Record
	n    int
}

// NewMachine builds an n-thread machine from the session configuration:
// the last configured cache level becomes the per-socket shared L3, the
// remaining levels are replicated privately per thread. With
// cfg.NUMA.Sockets >= 1 the machine is NUMA-routed: threads are grouped
// into contiguous socket blocks (thread t on socket t*S/n; sockets beyond
// the thread count hold memory only), and every socket's caches route
// DRAM traffic through one shared page placement.
func NewMachine(cfg Config, n int) (*Machine, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: machine needs at least one thread, got %d", n)
	}
	cfg = applyReference(cfg)
	levels := cfg.Cache.Levels
	if len(levels) < 2 {
		return nil, fmt.Errorf("core: machine needs >= 2 cache levels (private + shared LLC), got %d", len(levels))
	}
	privCfg := memhier.Config{
		Levels:           levels[:len(levels)-1],
		DRAMLatency:      cfg.Cache.DRAMLatency,
		NextLinePrefetch: cfg.Cache.NextLinePrefetch,
	}
	sockets := 1
	var placement *numa.Placement
	if cfg.NUMA.Sockets > 0 {
		var err error
		placement, err = numa.New(cfg.NUMA)
		if err != nil {
			return nil, err
		}
		sockets = placement.Nodes()
		if sockets == 1 && cfg.NUMA.RemoteDRAMLatency != 0 {
			// A 1-node machine has no remote fills to charge; silently
			// ignoring the override would make the config look inert
			// (the CLI layer rejects the same combination).
			return nil, fmt.Errorf("core: NUMA.RemoteDRAMLatency set on a single-socket machine (no remote node to charge)")
		}
		if sockets > 1 {
			// The remote fill cost only exists when a remote node does.
			// The default is clamped to the configured local latency: a
			// slow-DRAM hierarchy must not fail validation (remote >=
			// local) on a value this code chose itself.
			privCfg.RemoteDRAMLatency = cfg.NUMA.RemoteDRAMLatency
			if privCfg.RemoteDRAMLatency == 0 {
				privCfg.RemoteDRAMLatency = max(numa.DefaultRemoteDRAMLatency, privCfg.DRAMLatency)
			}
		}
	}
	m := &Machine{
		Cfg:        cfg,
		Sockets:    sockets,
		Placement:  placement,
		Bin:        prog.NewBinary(),
		AS:         prog.NewAddressSpace(heapBase(cfg)),
		threadLogs: make([]threadLog, n),
	}
	for s := 0; s < sockets; s++ {
		llc, err := memhier.NewSharedCache(levels[len(levels)-1], 0)
		if err != nil {
			return nil, err
		}
		if placement != nil {
			router, err := placement.Router(s)
			if err != nil {
				return nil, err
			}
			llc.SetDRAMRouter(router)
		}
		m.L3s = append(m.L3s, llc)
	}
	m.L3 = m.L3s[0]
	for t := 0; t < n; t++ {
		socket := t * sockets / n
		hier, err := memhier.NewWithSharedLLC(privCfg, m.L3s[socket])
		if err != nil {
			return nil, err
		}
		if placement != nil {
			router, err := placement.Router(socket)
			if err != nil {
				return nil, err
			}
			hier.SetDRAMRouter(router)
		}
		c, err := cpu.New(cfg.CPU, hier)
		if err != nil {
			return nil, err
		}
		mcfg := cfg.Monitor
		mcfg.Thread = t + 1
		if t > 0 {
			// Secondary threads resolve samples against the primary's
			// registry and leave the allocator hooks to the primary
			// (setup is single-threaded on thread 1).
			mcfg.Registry = m.Threads[0].Mon.Registry()
			mcfg.DisableAllocHooks = true
		}
		mon, err := extrae.New(mcfg, c, m.Bin, m.AS)
		if err != nil {
			return nil, err
		}
		m.SocketOf = append(m.SocketOf, socket)
		m.Threads = append(m.Threads, &MachineThread{Hier: hier, Core: c, Mon: mon})
	}
	return m, nil
}

// NThreads returns the number of simulated hardware threads.
func (m *Machine) NThreads() int { return len(m.Threads) }

// Primary returns thread 1's stack (setup, allocation instrumentation and
// scalar bookkeeping run there).
func (m *Machine) Primary() *MachineThread { return m.Threads[0] }

// StartAll enables monitoring on every thread.
func (m *Machine) StartAll() {
	for _, th := range m.Threads {
		th.Mon.Start()
	}
}

// StopAll disables monitoring and flushes pending samples on every thread.
func (m *Machine) StopAll() {
	for _, th := range m.Threads {
		th.Mon.Stop()
	}
}

// Team builds the hpcg worker team over the machine's threads (worker
// index = thread id - 1). Close it when done.
func (m *Machine) Team() (*hpcg.Team, error) {
	workers := make([]*hpcg.Worker, len(m.Threads))
	for i, th := range m.Threads {
		workers[i] = &hpcg.Worker{Core: th.Core, Mon: th.Mon}
	}
	return hpcg.NewTeam(workers)
}

// FuncOf resolves an instruction pointer to its function name ("" when
// unknown); used to label folded phases.
func (m *Machine) FuncOf(ip uint64) string {
	if loc, ok := m.Bin.Lookup(ip); ok {
		return loc.Function
	}
	return ""
}

// MergedRecords returns all threads' trace records merged into one
// chronological stream (the trace.Merge of the per-thread streams, which
// also time-sorts each thread's buffered-PEBS reorderings). The result is
// memoized; callers must not mutate it.
func (m *Machine) MergedRecords() []trace.Record {
	var total int
	for _, th := range m.Threads {
		total += len(th.Mon.Records())
	}
	if m.sortedLog != nil && m.sortedLen == total {
		return m.sortedLog
	}
	streams := make([][]trace.Record, len(m.Threads))
	for i, th := range m.Threads {
		streams[i] = th.Mon.Records()
	}
	m.sortedLog, m.sortedLen = trace.Merge(streams...), total
	return m.sortedLog
}

// threadRecords returns thread i's (0-based) own trace stream, time-sorted
// (buffered PEBS drains log sample records out of order) and memoized —
// per-thread folding never needs the full merged trace.
func (m *Machine) threadRecords(i int) []trace.Record {
	log := m.Threads[i].Mon.Records()
	tl := &m.threadLogs[i]
	if tl.recs != nil && tl.n == len(log) {
		return tl.recs
	}
	tl.recs, tl.n = trace.Merge(log), len(log)
	return tl.recs
}

// Fold extracts and folds the named region for one thread (1-based) from
// that thread's own stream (equivalent to ExtractThread over the merged
// trace, without re-scanning every other thread's records).
func (m *Machine) Fold(region extrae.Region, thread int) (*folding.Folded, error) {
	if thread < 1 || thread > len(m.Threads) {
		return nil, fmt.Errorf("core: thread %d out of range 1..%d", thread, len(m.Threads))
	}
	th := m.Threads[thread-1]
	instances, err := folding.ExtractThread(m.threadRecords(thread-1), int64(region), th.Mon.Task(), th.Mon.Thread())
	if err != nil {
		return nil, err
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: no instances of region %q on thread %d", th.Mon.RegionName(region), thread)
	}
	// Stack ids are monitor-local, so the outermost-frame attribution must
	// resolve against this thread's own monitor.
	return foldInstances(instances, m.Cfg.Folding, region, m.FuncOf, th.Mon)
}

// WriteTrace serializes the merged multi-thread trace and labels to the
// writers (PRV-style text and PCF). All monitors carry identical labels;
// the primary's are written.
func (m *Machine) WriteTrace(prv, pcf interface {
	Write(p []byte) (int, error)
}) error {
	recs := m.MergedRecords()
	var dur uint64
	if len(recs) > 0 {
		dur = recs[len(recs)-1].TimeNs
	}
	w, err := trace.NewWriter(prv, 1, len(m.Threads), dur)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return m.Primary().Mon.Labels().WritePCF(pcf)
}

// RunWorkloadParallel runs a partitionable synthetic workload across an
// n-thread Machine: setup on the primary thread, then one goroutine per
// thread free-running its static element block (the triad-style workloads
// have no cross-block dependencies, so no barriers are needed), then one
// folded analysis per thread. With one thread the run is identical to
// RunWorkload. Workers poll ctx at instance boundaries and recover panics;
// either fault surfaces as a *RunError alongside the partial result.
func RunWorkloadParallel(ctx context.Context, cfg Config, w workloads.PartitionedWorkload, iters, threads int) (*MachineWorkloadResult, error) {
	return runWorkloadPartitioned(ctx, cfg, w, iters, threads, true, nil)
}

// RunWorkloadSequential is RunWorkloadParallel under a deterministic
// schedule: the same Machine, partitioning, per-thread monitors and shared
// L3, but thread t's whole block runs to completion before thread t+1
// starts. The free-running partitioned workloads have no cross-block
// dependencies, so the sequential schedule is a legal interleaving; unlike
// the goroutine schedule it fixes the order of shared-L3 fills, making the
// run bit-reproducible — the scenario golden-metrics harness depends on
// this. With one thread both entry points are identical.
func RunWorkloadSequential(ctx context.Context, cfg Config, w workloads.PartitionedWorkload, iters, threads int) (*MachineWorkloadResult, error) {
	return runWorkloadPartitioned(ctx, cfg, w, iters, threads, false, nil)
}

func runWorkloadPartitioned(ctx context.Context, cfg Config, w workloads.PartitionedWorkload, iters, threads int, concurrent bool, ck *Checkpointer) (*MachineWorkloadResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rw, resumable := w.(workloads.ResumableWorkload)
	if ck.checkpoints() && !resumable {
		return nil, fmt.Errorf("core: workload %q does not support checkpointing (no RunPartitionRange)", w.Name())
	}
	if ck.checkpoints() && concurrent {
		return nil, fmt.Errorf("core: checkpointing requires the deterministic sequential schedule")
	}
	m, err := NewMachine(cfg, threads)
	if err != nil {
		return nil, err
	}
	primary := m.Primary()
	if err := w.Setup(&workloads.Ctx{Core: primary.Core, Mon: primary.Mon, Bin: m.Bin}); err != nil {
		return nil, err
	}
	for _, th := range m.Threads[1:] {
		// Setup registered the region on the primary; secondaries must
		// assign the same id for the merged streams to agree.
		if got := th.Mon.RegisterRegion(w.Name()); got != w.Region() {
			return nil, fmt.Errorf("core: region %q registered as %d on thread %d, primary has %d",
				w.Name(), got, th.Mon.Thread(), w.Region())
		}
	}
	m.StartAll()
	n := w.Elements()
	var runErr *RunError
	if concurrent {
		runErr = m.runConcurrent(ctx, w, rw, iters, n)
	} else {
		runErr, err = m.runSequential(ctx, w, rw, iters, n, ck)
		if err != nil {
			return nil, err
		}
	}
	m.StopAll()
	if runErr != nil {
		// Partial result: fold whatever threads completed instances. The
		// caller gets both the data and the structured error.
		res := &MachineWorkloadResult{Machine: m, Partial: true}
		for t := 1; t <= len(m.Threads); t++ {
			folded, err := m.Fold(w.Region(), t)
			if err != nil {
				continue
			}
			res.Threads = append(res.Threads, MachineThreadRun{Thread: t, Folded: folded})
		}
		return res, runErr
	}
	res := &MachineWorkloadResult{Machine: m}
	for t := 1; t <= len(m.Threads); t++ {
		folded, err := m.Fold(w.Region(), t)
		if err != nil {
			return nil, err
		}
		res.Threads = append(res.Threads, MachineThreadRun{Thread: t, Folded: folded})
	}
	return res, nil
}

// runConcurrent free-runs every thread's block in its own goroutine. Each
// goroutine polls ctx between instances and recovers panics, so one dying
// worker can never hang the WaitGroup; the first fault (lowest thread id)
// becomes the run's error.
func (m *Machine) runConcurrent(ctx context.Context, w workloads.PartitionedWorkload, rw workloads.ResumableWorkload, iters, n int) *RunError {
	errs := make([]*RunError, len(m.Threads))
	cursors := make([]int, len(m.Threads))
	var wg sync.WaitGroup
	for t, th := range m.Threads {
		wg.Add(1)
		go func(t int, th *MachineThread) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[t] = &RunError{Thread: t + 1,
						Cursor: checkpoint.Cursor{Thread: t, Iter: cursors[t]},
						Cause:  fmt.Errorf("panic: %v", r)}
				}
			}()
			lo, hi := t*n/len(m.Threads), (t+1)*n/len(m.Threads)
			wctx := &workloads.Ctx{Core: th.Core, Mon: th.Mon, Bin: m.Bin}
			if rw == nil {
				// Non-resumable workloads run their block in one call;
				// cancellation is only observed before the block starts.
				if err := ctx.Err(); err != nil {
					errs[t] = &RunError{Thread: t + 1, Cursor: checkpoint.Cursor{Thread: t}, Cause: err}
					return
				}
				if err := w.RunPartition(wctx, iters, lo, hi); err != nil {
					errs[t] = &RunError{Thread: t + 1, Cursor: checkpoint.Cursor{Thread: t}, Cause: err}
				}
				return
			}
			for it := 0; it < iters; it++ {
				cursors[t] = it
				if err := ctx.Err(); err != nil {
					errs[t] = &RunError{Thread: t + 1, Cursor: checkpoint.Cursor{Thread: t, Iter: it}, Cause: err}
					return
				}
				if err := rw.RunPartitionRange(wctx, it, it+1, lo, hi); err != nil {
					errs[t] = &RunError{Thread: t + 1, Cursor: checkpoint.Cursor{Thread: t, Iter: it}, Cause: err}
					return
				}
			}
		}(t, th)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// runSequential drives the deterministic thread-major schedule one instance
// at a time: cancellation polls and the instance fault-injection point sit
// between instances, and the optional checkpointer snapshots there too —
// the only program points where the monitors' sampling state is quiescent.
// The returned *RunError is a clean stop (resume-able); the plain error is
// a hard failure.
func (m *Machine) runSequential(ctx context.Context, w workloads.PartitionedWorkload, rw workloads.ResumableWorkload, iters, n int, ck *Checkpointer) (*RunError, error) {
	if rw == nil {
		for t, th := range m.Threads {
			if err := ctx.Err(); err != nil {
				return &RunError{Thread: t + 1, Cursor: checkpoint.Cursor{Thread: t}, Cause: err}, nil
			}
			lo, hi := t*n/len(m.Threads), (t+1)*n/len(m.Threads)
			if err := w.RunPartition(&workloads.Ctx{Core: th.Core, Mon: th.Mon, Bin: m.Bin}, iters, lo, hi); err != nil {
				return nil, fmt.Errorf("core: thread %d: %w", t+1, err)
			}
			// Whole-partition runs only reach quiescence between threads;
			// progress advances a thread's worth of instances at a time.
			ck.observeMachine(m, (t+1)*iters)
		}
		return nil, nil
	}
	start := checkpoint.Cursor{}
	if ck != nil && ck.Resume != nil {
		if err := m.RestoreSnapshot(ck.Resume, ck.Tag); err != nil {
			return nil, err
		}
		start = ck.Resume.Cursor
	}
	done := 0
	ck.observeMachine(m, start.Thread*iters+start.Iter)
	for t := start.Thread; t < len(m.Threads); t++ {
		th := m.Threads[t]
		lo, hi := t*n/len(m.Threads), (t+1)*n/len(m.Threads)
		wctx := &workloads.Ctx{Core: th.Core, Mon: th.Mon, Bin: m.Bin}
		it0 := 0
		if t == start.Thread {
			it0 = start.Iter
		}
		for it := it0; it < iters; it++ {
			cur := checkpoint.Cursor{Thread: t, Iter: it}
			if err := ctx.Err(); err != nil {
				return &RunError{Thread: t + 1, Cursor: cur, Cause: err}, nil
			}
			if err := faultinject.Hit(faultinject.PointInstance); err != nil {
				return &RunError{Thread: t + 1, Cursor: cur, Cause: err}, nil
			}
			if ck.demanded() {
				snap, err := m.Snapshot(cur, ck.Tag)
				if err != nil {
					return nil, err
				}
				if err := ck.emit(snap); err != nil {
					return nil, err
				}
				return &RunError{Thread: t + 1, Cursor: cur, Cause: ErrCheckpointDemanded}, nil
			}
			if err := rw.RunPartitionRange(wctx, it, it+1, lo, hi); err != nil {
				return nil, fmt.Errorf("core: thread %d: %w", t+1, err)
			}
			done++
			ck.observeMachine(m, t*iters+it+1)
			next := checkpoint.Cursor{Thread: t, Iter: it + 1}
			if next.Iter == iters {
				next = checkpoint.Cursor{Thread: t + 1}
			}
			atEnd := next.Thread == len(m.Threads)
			if ck != nil && ck.Every > 0 && done%ck.Every == 0 && !atEnd {
				snap, err := m.Snapshot(next, ck.Tag)
				if err != nil {
					return nil, err
				}
				if err := ck.emit(snap); err != nil {
					return nil, err
				}
			}
		}
	}
	return nil, nil
}

// MachineWorkloadResult bundles a multi-threaded synthetic-workload run
// with its per-thread foldings.
type MachineWorkloadResult struct {
	Machine *Machine
	Threads []MachineThreadRun
	// Partial marks a run stopped before completion (cancellation, injected
	// fault or contained panic): Threads holds only what folded cleanly.
	Partial bool
}

// MachineThreadRun is one thread's folded view of a machine HPCG run.
type MachineThreadRun struct {
	// Thread is the 1-based thread id.
	Thread int
	// Folded is the thread's folded CG_iteration region.
	Folded *folding.Folded
	// Paper maps the thread's detected phases onto the paper's letters.
	Paper []PaperPhase
}

// MachineHPCGRun bundles the multi-threaded HPCG reproduction: the shared
// solve plus one folded analysis per thread.
type MachineHPCGRun struct {
	Machine *Machine
	Problem *hpcg.Problem
	CG      *hpcg.CGResult
	Threads []MachineThreadRun
	// Partial marks a solve aborted at an instance boundary (cancellation
	// or a contained worker panic): Threads holds only what folded cleanly.
	Partial bool
}

// RunHPCGParallel executes the paper's evaluation on an n-thread Machine:
// generate the problem once (setup on thread 1), run the OpenMP-style
// domain-partitioned CG across all threads under monitoring, merge the
// per-thread trace streams and fold each thread separately. The team polls
// ctx at every parallel-section fork and contains worker panics; an
// aborted solve returns the partial result alongside a *RunError.
func RunHPCGParallel(ctx context.Context, cfg Config, params hpcg.Params, threads int) (*MachineHPCGRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m, err := NewMachine(cfg, threads)
	if err != nil {
		return nil, err
	}
	if err := hpcg.SetupBinary(m.Bin); err != nil {
		return nil, err
	}
	primary := m.Primary()
	problem, err := hpcg.Generate(params, primary.Core, primary.Mon, m.Bin)
	if err != nil {
		return nil, err
	}
	for _, th := range m.Threads[1:] {
		if err := problem.RegisterRegions(th.Mon); err != nil {
			return nil, err
		}
	}
	team, err := m.Team()
	if err != nil {
		return nil, err
	}
	defer team.Close()
	team.SetContext(ctx)
	m.StartAll()
	cg, err := problem.RunCGParallel(team)
	if err != nil {
		var abort *hpcg.AbortError
		if !errors.As(err, &abort) {
			return nil, err
		}
		m.StopAll()
		run := &MachineHPCGRun{Machine: m, Problem: problem, Partial: true}
		for t := 1; t <= len(m.Threads); t++ {
			folded, ferr := m.Fold(problem.RegionIteration, t)
			if ferr != nil {
				continue
			}
			run.Threads = append(run.Threads, MachineThreadRun{
				Thread: t,
				Folded: folded,
				Paper:  LabelPaperPhases(folded, m.FuncOf),
			})
		}
		return run, &RunError{Cursor: checkpoint.Cursor{Iter: abort.Iteration}, Cause: abort.Err}
	}
	m.StopAll()
	run := &MachineHPCGRun{Machine: m, Problem: problem, CG: cg}
	for t := 1; t <= len(m.Threads); t++ {
		folded, err := m.Fold(problem.RegionIteration, t)
		if err != nil {
			return nil, err
		}
		run.Threads = append(run.Threads, MachineThreadRun{
			Thread: t,
			Folded: folded,
			Paper:  LabelPaperPhases(folded, m.FuncOf),
		})
	}
	return run, nil
}

// NUMAReport assembles the per-socket traffic section of a NUMA-routed
// machine (nil on the flat machine).
func (m *Machine) NUMAReport() *report.NUMASection {
	if m.Placement == nil {
		return nil
	}
	sec := &report.NUMASection{
		Policy:   m.Placement.Policy().String(),
		PageSize: m.Placement.PageSize(),
	}
	for s := 0; s < m.Sockets; s++ {
		row := report.NUMASocketRow{Socket: s}
		for t, th := range m.Threads {
			if m.SocketOf[t] != s {
				continue
			}
			row.Threads = append(row.Threads, th.Mon.Thread())
			row.L3Misses += th.Hier.DRAMAccesses()
			row.RemoteFills += th.Hier.RemoteDRAMAccesses()
		}
		row.L3Writebacks = m.L3s[s].Stats().Writebacks
		sec.Sockets = append(sec.Sockets, row)
	}
	for n, st := range m.Placement.Stats() {
		sec.Nodes = append(sec.Nodes, report.NUMANodeRow{
			Node:        n,
			FillsLocal:  st.FillsLocal,
			FillsRemote: st.FillsRemote,
			Writebacks:  st.Writebacks,
			Pages:       st.Pages,
		})
	}
	return sec
}

// Figure assembles the cross-thread report: per-thread folded curves and
// phase tables plus the shared-L3 miss attribution (and, when NUMA-routed,
// the per-socket traffic section).
func (r *MachineHPCGRun) Figure() *report.MachineFigure {
	fig := &report.MachineFigure{}
	for _, tr := range r.Threads {
		labels := make([]string, len(tr.Paper))
		for i, pp := range tr.Paper {
			labels[i] = pp.Label
		}
		fig.Threads = append(fig.Threads, report.ThreadFigure{
			Thread:      tr.Thread,
			Folded:      tr.Folded,
			PaperLabels: labels,
		})
	}
	llcLevel := r.Machine.Primary().Hier.Levels() - 1
	for _, mt := range r.Machine.Threads {
		st := mt.Hier.LevelStats(llcLevel)
		fig.L3.PerThread = append(fig.L3.PerThread, report.L3ThreadRow{
			Thread:   mt.Mon.Thread(),
			Accesses: st.Accesses,
			Misses:   st.Misses,
		})
	}
	// Cache-wide counters sum over every socket's L3 (one L3 on the flat
	// machine, so the historical single-socket numbers are unchanged).
	for _, l3 := range r.Machine.L3s {
		llc := l3.Stats()
		fig.L3.Writebacks += llc.Writebacks
		fig.L3.Prefetches += llc.Prefetches
		fig.L3.PrefHits += llc.PrefHits
	}
	fig.NUMA = r.Machine.NUMAReport()
	return fig
}

// PhaseByLabel returns thread t's (1-based) first phase with the given
// paper label.
func (r *MachineHPCGRun) PhaseByLabel(thread int, label string) (folding.Phase, bool) {
	for _, pp := range r.Threads[thread-1].Paper {
		if pp.Label == label {
			return pp.Phase, true
		}
	}
	return folding.Phase{}, false
}
