package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hpcg"
	"repro/internal/workloads"
)

// TestMachineSingleThreadIdenticalToSession pins the tentpole equivalence:
// a 1-thread Machine (private L1/L2, shared-L3 code path, team-dispatched
// parallel CG) must be byte-identical to the existing single-Session run —
// same trace records, cycles, PMU totals, cache statistics, PEBS stats,
// folded samples and paper labels.
func TestMachineSingleThreadIdenticalToSession(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  func() Config
	}{
		{"randomized-mux", func() Config { cfg, _ := comparableConfigs(); return cfg }},
		{"deterministic", testConfig},
	} {
		t.Run(mode.name, func(t *testing.T) {
			params := hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3}
			sess, err := RunHPCG(mode.cfg(), params)
			if err != nil {
				t.Fatal(err)
			}
			mach, err := RunHPCGParallel(nil, mode.cfg(), params, 1)
			if err != nil {
				t.Fatal(err)
			}
			mt := mach.Machine.Primary()

			sRecs, mRecs := sess.Session.Mon.Records(), mt.Mon.Records()
			if len(sRecs) != len(mRecs) {
				t.Fatalf("record count: session %d, machine %d", len(sRecs), len(mRecs))
			}
			for i := range sRecs {
				if !reflect.DeepEqual(sRecs[i], mRecs[i]) {
					t.Fatalf("record %d differs:\nsession: %+v\nmachine: %+v", i, sRecs[i], mRecs[i])
				}
			}
			if a, b := sess.Session.Core.Cycles(), mt.Core.Cycles(); a != b {
				t.Errorf("cycles: session %d, machine %d", a, b)
			}
			if a, b := sess.Session.Core.PMU().TrueSnapshot(), mt.Core.PMU().TrueSnapshot(); a != b {
				t.Errorf("PMU totals: session %v, machine %v", a, b)
			}
			if a, b := sess.Session.Hier.Levels(), mt.Hier.Levels(); a != b {
				t.Fatalf("levels: session %d, machine %d", a, b)
			}
			for i := 0; i < mt.Hier.Levels(); i++ {
				if a, b := sess.Session.Hier.LevelStats(i), mt.Hier.LevelStats(i); a != b {
					t.Errorf("level %d stats: session %+v, machine %+v", i, a, b)
				}
			}
			if a, b := sess.Session.Hier.DRAMAccesses(), mt.Hier.DRAMAccesses(); a != b {
				t.Errorf("DRAM accesses: session %d, machine %d", a, b)
			}
			if a, b := sess.Session.Mon.Engine().Stats(), mt.Mon.Engine().Stats(); a != b {
				t.Errorf("PEBS stats: session %+v, machine %+v", a, b)
			}

			// Folded output and paper labels agree.
			sf, mf := sess.Folded, mach.Threads[0].Folded
			if len(sf.Mem) == 0 || len(sf.Mem) != len(mf.Mem) {
				t.Fatalf("folded samples: session %d, machine %d", len(sf.Mem), len(mf.Mem))
			}
			for i := range sf.Mem {
				if sf.Mem[i] != mf.Mem[i] {
					t.Fatalf("folded sample %d differs: %+v vs %+v", i, sf.Mem[i], mf.Mem[i])
				}
			}
			if !reflect.DeepEqual(sf.Phases, mf.Phases) {
				t.Errorf("phases differ: %+v vs %+v", sf.Phases, mf.Phases)
			}
			if !reflect.DeepEqual(sf.MIPS(), mf.MIPS()) {
				t.Error("MIPS curves differ")
			}
			sl := labels(sess)
			ml := make([]string, len(mach.Threads[0].Paper))
			for i, pp := range mach.Threads[0].Paper {
				ml[i] = pp.Label
			}
			if !reflect.DeepEqual(sl, ml) {
				t.Errorf("paper labels differ: %v vs %v", sl, ml)
			}

			// CG numerics are bit-identical with one worker.
			if !reflect.DeepEqual(sess.CG.Residuals, mach.CG.Residuals) {
				t.Errorf("residuals differ: %v vs %v", sess.CG.Residuals, mach.CG.Residuals)
			}
			if sess.CG.FinalError != mach.CG.FinalError {
				t.Errorf("final error differs: %g vs %g", sess.CG.FinalError, mach.CG.FinalError)
			}
		})
	}
}

// machineTestParams is the 4-thread integration scale: large enough that
// every thread's block shows the full per-iteration phase structure.
func machineTestParams() hpcg.Params {
	return hpcg.Params{NX: 16, NY: 16, NZ: 16, MGLevels: 2, MaxIters: 4}
}

func machineTestConfig() Config {
	cfg := testConfig()
	// Per-thread sample density: each thread sees ~1/4 of the traffic.
	cfg.Monitor.PEBS.Period = 60
	return cfg
}

// TestMachineHPCGFourThreads runs the OpenMP-style 4-thread reproduction
// and checks the acceptance shape: the solver converges, every thread
// folds its own CG_iteration instances, and every thread reproduces the
// paper's phase structure (a1, a2, B, C, d1, d2, E — 7 phases) from its
// own trace stream.
func TestMachineHPCGFourThreads(t *testing.T) {
	const threads = 4
	run, err := RunHPCGParallel(nil, machineTestConfig(), machineTestParams(), threads)
	if err != nil {
		t.Fatal(err)
	}
	if run.CG.Iterations != 4 {
		t.Errorf("iterations = %d", run.CG.Iterations)
	}
	rs := run.CG.Residuals
	if rs[len(rs)-1] >= rs[0] {
		t.Errorf("residuals not decreasing under block-parallel SYMGS: %v", rs)
	}
	if got := len(run.Threads); got != threads {
		t.Fatalf("folded threads = %d", got)
	}
	for _, tr := range run.Threads {
		if tr.Folded.InstancesUsed == 0 {
			t.Fatalf("thread %d: no folded instances", tr.Thread)
		}
		var pl []string
		for _, pp := range tr.Paper {
			pl = append(pl, pp.Label)
		}
		if len(tr.Paper) < 7 {
			t.Errorf("thread %d: %d phases (%v), want the paper's 7", tr.Thread, len(tr.Paper), pl)
		}
		for _, want := range []string{"a1", "a2", "B", "C", "d1", "d2", "E"} {
			if _, ok := run.PhaseByLabel(tr.Thread, want); !ok {
				t.Errorf("thread %d: paper phase %s missing (labels %v)", tr.Thread, want, pl)
			}
		}
	}
	// Threads partition the fine rows: each thread's sampled addresses
	// should concentrate on its own block, so the per-thread a1 spans
	// must be (roughly) disjoint and ascending with the thread id.
	var prevLo uint64
	for th := 1; th <= threads; th++ {
		p, ok := run.PhaseByLabel(th, "a1")
		if !ok {
			continue
		}
		if th > 1 && p.AddrLo <= prevLo {
			t.Errorf("thread %d a1 block starts at %#x, not above thread %d's %#x",
				th, p.AddrLo, th-1, prevLo)
		}
		prevLo = p.AddrLo
	}
	// The shared L3 saw traffic from every thread, and per-thread L3 miss
	// attribution sums to the cache-wide DRAM fills.
	var dram uint64
	for _, mt := range run.Machine.Threads {
		st := mt.Hier.LevelStats(2)
		dram += st.Misses
		if st.Accesses == 0 {
			t.Error("a thread never reached the shared L3")
		}
	}
	if llcMisses := run.Machine.L3.Stats().Misses; llcMisses != dram {
		t.Errorf("shared L3 misses %d != summed per-thread DRAM fills %d", llcMisses, dram)
	}
	// The merged trace round-trips through the PRV writer with 4 threads.
	var prv, pcf bytes.Buffer
	if err := run.Machine.WriteTrace(&prv, &pcf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prv.String(), "#Paraver") {
		t.Error("prv header missing")
	}
	header := strings.SplitN(prv.String(), "\n", 2)[0]
	if !strings.HasSuffix(header, ":1:4") {
		t.Errorf("header %q does not declare 4 threads", header)
	}
}

// TestMachineStreamSingleThreadIdentical pins the workload path of the
// Machine to RunWorkload: a 1-thread partitioned STREAM run produces the
// identical trace and simulation state.
func TestMachineStreamSingleThreadIdentical(t *testing.T) {
	cfg, _ := comparableConfigs()
	sess, err := RunWorkload(cfg, workloads.NewStream(1<<13), 12)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := RunWorkloadParallel(nil, cfg, workloads.NewStream(1<<13), 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	mt := mach.Machine.Primary()
	sRecs, mRecs := sess.Session.Mon.Records(), mt.Mon.Records()
	if len(sRecs) != len(mRecs) {
		t.Fatalf("record count: session %d, machine %d", len(sRecs), len(mRecs))
	}
	for i := range sRecs {
		if !reflect.DeepEqual(sRecs[i], mRecs[i]) {
			t.Fatalf("record %d differs:\nsession: %+v\nmachine: %+v", i, sRecs[i], mRecs[i])
		}
	}
	if a, b := sess.Session.Core.PMU().TrueSnapshot(), mt.Core.PMU().TrueSnapshot(); a != b {
		t.Errorf("PMU totals: session %v, machine %v", a, b)
	}
	if a, b := len(sess.Folded.Mem), len(mach.Threads[0].Folded.Mem); a != b {
		t.Errorf("folded samples: session %d, machine %d", a, b)
	}
}

// TestMachineStreamFourThreads free-runs the triad across 4 cores: every
// thread folds instances over its own disjoint block of the arrays (the
// per-thread blocks ascend in address), and the triad arithmetic is
// correct despite the concurrency.
func TestMachineStreamFourThreads(t *testing.T) {
	const threads = 4
	cfg := testConfig()
	cfg.Monitor.PEBS.Period = 60
	w := workloads.NewStream(1 << 14)
	res, err := RunWorkloadParallel(nil, cfg, w, 20, threads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.N; i += 500 {
		if w.Value(i) != w.Expected(i) {
			t.Fatalf("triad wrong at %d: %g != %g", i, w.Value(i), w.Expected(i))
		}
	}
	if len(res.Threads) != threads {
		t.Fatalf("folded threads = %d", len(res.Threads))
	}
	var prevLo uint64
	for _, tr := range res.Threads {
		if tr.Folded.InstancesUsed < 15 {
			t.Errorf("thread %d: %d instances", tr.Thread, tr.Folded.InstancesUsed)
		}
		if len(tr.Folded.Phases) == 0 {
			t.Fatalf("thread %d: no phases", tr.Thread)
		}
		// (Sweep-direction classification needs the full-array span and is
		// pinned by the single-thread STREAM test; per-thread blocks over
		// three interleaved arrays only guarantee the address ordering.)
		p := tr.Folded.Phases[0]
		if tr.Thread > 1 && p.AddrLo <= prevLo {
			t.Errorf("thread %d block %#x not above thread %d's %#x",
				tr.Thread, p.AddrLo, tr.Thread-1, prevLo)
		}
		prevLo = p.AddrLo
	}
}

// TestMachineValidation covers constructor errors.
func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(testConfig(), 0); err == nil {
		t.Error("0 threads accepted")
	}
	bad := testConfig()
	bad.Cache.Levels = bad.Cache.Levels[:1]
	if _, err := NewMachine(bad, 2); err == nil {
		t.Error("single-level cache accepted for a machine")
	}
}
