package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/workloads"
)

// ctxFor builds a thread's workload context on machine m.
func ctxFor(th *MachineThread, m *Machine) *workloads.Ctx {
	return &workloads.Ctx{Core: th.Core, Mon: th.Mon, Bin: m.Bin}
}

// numaConfig returns the deterministic test configuration routed through a
// NUMA placement.
func numaConfig(sockets int, policy numa.Policy) Config {
	cfg := testConfig()
	cfg.NUMA = numa.Config{Sockets: sockets, Policy: policy}
	return cfg
}

// TestNUMASingleSocketIdenticalToMachine is the NUMA equivalence gate: a
// 1-socket NUMA-routed Machine — every DRAM fill resolved through the page
// placement, pages first-touched or interleaved onto the only node — must
// be byte-identical to the flat (unrouted) Machine for every partitioned
// workload, including the serialized PRV/PCF trace (which also pins the
// label and counter set: a single-node stack must not grow the remote
// source value or the REMOTE_DRAM counter).
func TestNUMASingleSocketIdenticalToMachine(t *testing.T) {
	const iters, threads = 4, 2
	for name, mk := range partitionedWorkloads() {
		t.Run(name, func(t *testing.T) {
			for _, policy := range []numa.Policy{numa.FirstTouch, numa.Interleave} {
				t.Run(policy.String(), func(t *testing.T) {
					flat, err := RunWorkloadSequential(nil, testConfig(), mk(), iters, threads)
					if err != nil {
						t.Fatal(err)
					}
					routed, err := RunWorkloadSequential(nil, numaConfig(1, policy), mk(), iters, threads)
					if err != nil {
						t.Fatal(err)
					}
					for th := 0; th < threads; th++ {
						a := flat.Machine.Threads[th]
						b := routed.Machine.Threads[th]
						if x, y := a.Core.PMU().TrueSnapshot(), b.Core.PMU().TrueSnapshot(); x != y {
							t.Errorf("thread %d PMU: flat %v, routed %v", th+1, x, y)
						}
						if x, y := a.Core.Cycles(), b.Core.Cycles(); x != y {
							t.Errorf("thread %d cycles: flat %d, routed %d", th+1, x, y)
						}
						for lvl := 0; lvl < a.Hier.Levels(); lvl++ {
							if x, y := a.Hier.LevelStats(lvl), b.Hier.LevelStats(lvl); x != y {
								t.Errorf("thread %d level %d: flat %+v, routed %+v", th+1, lvl, x, y)
							}
						}
						if b.Hier.RemoteDRAMAccesses() != 0 {
							t.Errorf("thread %d: 1-socket machine recorded remote fills", th+1)
						}
						ra, rb := a.Mon.Records(), b.Mon.Records()
						if !reflect.DeepEqual(ra, rb) {
							t.Fatalf("thread %d trace records differ (%d vs %d)", th+1, len(ra), len(rb))
						}
					}
					var prvA, pcfA, prvB, pcfB bytes.Buffer
					if err := flat.Machine.WriteTrace(&prvA, &pcfA); err != nil {
						t.Fatal(err)
					}
					if err := routed.Machine.WriteTrace(&prvB, &pcfB); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(prvA.Bytes(), prvB.Bytes()) {
						t.Error("PRV trace bytes differ")
					}
					if !bytes.Equal(pcfA.Bytes(), pcfB.Bytes()) {
						t.Errorf("PCF label bytes differ:\nflat:\n%s\nrouted:\n%s", pcfA.Bytes(), pcfB.Bytes())
					}
				})
			}
		})
	}
}

// TestNUMATwoSocketInterleaveRemoteFills pins the policy axis end to end
// on a 2-socket STREAM run: under interleave every thread sees remote
// fills; under first-touch (disjoint blocks, sequential schedule) remote
// fills only occur on the handful of partition-straddling pages. The PMU's
// REMOTE_DRAM counter must agree with the hierarchy's remote fill count,
// and the node controllers must conserve the fills the sockets issued.
func TestNUMATwoSocketInterleaveRemoteFills(t *testing.T) {
	const iters, threads = 4, 4
	run := func(policy numa.Policy) (*MachineWorkloadResult, uint64, uint64) {
		res, err := RunWorkloadSequential(nil, numaConfig(2, policy), partitionedWorkloads()["stream"](), iters, threads)
		if err != nil {
			t.Fatal(err)
		}
		var total, remote uint64
		for _, th := range res.Machine.Threads {
			total += th.Hier.DRAMAccesses()
			remote += th.Hier.RemoteDRAMAccesses()
			if got := th.Core.PMU().True(cpu.CtrRemoteDRAM); got != th.Hier.RemoteDRAMAccesses() {
				// The PMU counts remote loads/stores; every remote fill is
				// exactly one line-resolving op, so the two must agree.
				t.Errorf("%s: thread %d REMOTE_DRAM=%d, hier remote=%d",
					policy, th.Mon.Thread(), got, th.Hier.RemoteDRAMAccesses())
			}
		}
		return res, total, remote
	}

	il, ilTotal, ilRemote := run(numa.Interleave)
	if ilRemote == 0 {
		t.Fatal("interleave produced no remote fills")
	}
	// Node controllers conserve the traffic the sockets issued.
	var served, servedRemote uint64
	for _, st := range il.Machine.Placement.Stats() {
		served += st.FillsLocal + st.FillsRemote
		servedRemote += st.FillsRemote
	}
	if served != ilTotal || servedRemote != ilRemote {
		t.Errorf("node fills served %d/%d remote, sockets issued %d/%d",
			served, servedRemote, ilTotal, ilRemote)
	}

	_, ftTotal, ftRemote := run(numa.FirstTouch)
	if ftTotal == 0 {
		t.Fatal("first-touch run issued no DRAM fills")
	}
	if ftRemote*4 >= ilRemote {
		t.Errorf("first-touch remote fills (%d) not well below interleave (%d)", ftRemote, ilRemote)
	}

	// The remote source must be labelled in the 2-socket PCF.
	var prv, pcf bytes.Buffer
	if err := il.Machine.WriteTrace(&prv, &pcf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pcf.Bytes(), []byte("RemoteDRAM")) {
		t.Error("2-socket PCF missing the RemoteDRAM source label")
	}
	if !bytes.Contains(pcf.Bytes(), []byte("REMOTE_DRAM")) {
		t.Error("2-socket PCF missing the REMOTE_DRAM counter label")
	}
}

// TestNUMAConcurrentPlacement free-runs 4 goroutine-scheduled threads
// against the 2-socket placement (concurrent first-touch assignment,
// concurrent per-node accounting, LLC writeback routing under the shard
// locks): the -race coverage for the NUMA layer. Totals must still
// conserve regardless of the schedule.
func TestNUMAConcurrentPlacement(t *testing.T) {
	for _, policy := range []numa.Policy{numa.FirstTouch, numa.Interleave} {
		t.Run(policy.String(), func(t *testing.T) {
			res, err := RunWorkloadParallel(nil, numaConfig(2, policy), partitionedWorkloads()["random_access"](), 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			var total, remote uint64
			for _, th := range res.Machine.Threads {
				total += th.Hier.DRAMAccesses()
				remote += th.Hier.RemoteDRAMAccesses()
			}
			var served, servedRemote uint64
			for _, st := range res.Machine.Placement.Stats() {
				served += st.FillsLocal + st.FillsRemote
				servedRemote += st.FillsRemote
			}
			if served != total || servedRemote != remote {
				t.Errorf("%s: nodes served %d/%d, sockets issued %d/%d",
					policy, served, servedRemote, total, remote)
			}
		})
	}
}

// TestNUMABindOverridesPolicy exercises the explicit per-object bind: the
// STREAM arrays bound to node 1 before the run produce node-1 fills even
// under a first-touch policy with all threads on socket 0.
func TestNUMABindOverridesPolicy(t *testing.T) {
	cfg := numaConfig(2, numa.FirstTouch)
	m, err := NewMachine(cfg, 1) // one thread on socket 0; socket 1 is memory-only
	if err != nil {
		t.Fatal(err)
	}
	w := partitionedWorkloads()["stream"]()
	primary := m.Primary()
	if err := w.Setup(ctxFor(primary, m)); err != nil {
		t.Fatal(err)
	}
	// Bind the whole heap onto node 1: every fill is now remote.
	if err := m.Placement.Bind(0x2adf00000000, 0x2ae000000000, 1); err != nil {
		t.Fatal(err)
	}
	m.StartAll()
	if err := w.RunPartition(ctxFor(primary, m), 2, 0, w.Elements()); err != nil {
		t.Fatal(err)
	}
	m.StopAll()
	hier := primary.Hier
	if hier.DRAMAccesses() == 0 {
		t.Fatal("no DRAM fills")
	}
	if hier.RemoteDRAMAccesses() != hier.DRAMAccesses() {
		t.Errorf("bound-remote run: %d of %d fills remote",
			hier.RemoteDRAMAccesses(), hier.DRAMAccesses())
	}
	st := m.Placement.Stats()
	if st[1].FillsRemote != hier.DRAMAccesses() || st[0].FillsLocal != 0 {
		t.Errorf("node stats: %+v", st)
	}
}

// TestNUMASlowDRAMDefaultRemoteLatency pins the default clamp: a valid
// flat config whose local DRAM latency exceeds the 370-cycle default must
// still build a NUMA machine (the defaulted remote latency clamps up to
// the local cost instead of failing the remote >= local validation).
func TestNUMASlowDRAMDefaultRemoteLatency(t *testing.T) {
	cfg := numaConfig(2, numa.Interleave)
	cfg.Cache.DRAMLatency = 400
	m, err := NewMachine(cfg, 2)
	if err != nil {
		t.Fatalf("slow-DRAM NUMA machine rejected: %v", err)
	}
	if got := m.Primary().Hier.SourceLatency(memhier.SrcDRAMRemote); got != 400 {
		t.Errorf("defaulted remote latency = %d, want clamped 400", got)
	}
	// An explicit below-local override still fails loudly.
	cfg.NUMA.RemoteDRAMLatency = 300
	if _, err := NewMachine(cfg, 2); err == nil {
		t.Error("explicit remote latency below local accepted")
	}
	// A remote latency on a single-socket machine is inert and rejected.
	single := numaConfig(1, numa.FirstTouch)
	single.NUMA.RemoteDRAMLatency = 500
	if _, err := NewMachine(single, 2); err == nil {
		t.Error("remote latency on a 1-socket machine accepted")
	}
}

// TestNUMARemoteLatencyCharged pins the cost model: the remote fill stall
// uses the remote latency (the default 370 > 230 local), visible as a
// higher SourceLatency and in remote samples' PEBS weight.
func TestNUMARemoteLatencyCharged(t *testing.T) {
	m, err := NewMachine(numaConfig(2, numa.Interleave), 2)
	if err != nil {
		t.Fatal(err)
	}
	hier := m.Primary().Hier
	if got := hier.SourceLatency(memhier.SrcDRAMRemote); got != numa.DefaultRemoteDRAMLatency {
		t.Errorf("remote latency = %d, want %d", got, numa.DefaultRemoteDRAMLatency)
	}
	if got := hier.SourceLatency(memhier.SrcDRAM); got != m.Cfg.Cache.DRAMLatency {
		t.Errorf("local latency = %d, want %d", got, m.Cfg.Cache.DRAMLatency)
	}
}
