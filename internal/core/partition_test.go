package core

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// Partition-equivalence suite for the promoted workloads: a 1-thread
// Machine run (RunPartition over the full element range, shared-L3 code
// path) must be byte-identical to the plain Session run, and the N-thread
// runs must stay -race clean while folding every thread. This extends
// TestMachineSingleThreadIdenticalToSession/TestMachineStreamSingleThreadIdentical
// to every PartitionedWorkload.

// partitionedWorkloads builds a fresh instance of every synthetic
// partitioned workload at regression scale.
func partitionedWorkloads() map[string]func() workloads.PartitionedWorkload {
	return map[string]func() workloads.PartitionedWorkload{
		"stream":        func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 13) },
		"random_access": func() workloads.PartitionedWorkload { return workloads.NewRandomAccess(1<<14, 3000, 11) },
		"pointer_chase": func() workloads.PartitionedWorkload { return workloads.NewPointerChase(1<<12, 5) },
		"matmul":        func() workloads.PartitionedWorkload { return workloads.NewMatMul(24) },
		"spmv_csr":      func() workloads.PartitionedWorkload { return workloads.NewSpMV(12, 12, 12) },
	}
}

func assertSessionMachineIdentical(t *testing.T, sess *RunWorkloadResult, mach *MachineWorkloadResult) {
	t.Helper()
	mt := mach.Machine.Primary()
	sRecs, mRecs := sess.Session.Mon.Records(), mt.Mon.Records()
	if len(sRecs) != len(mRecs) {
		t.Fatalf("record count: session %d, machine %d", len(sRecs), len(mRecs))
	}
	for i := range sRecs {
		if !reflect.DeepEqual(sRecs[i], mRecs[i]) {
			t.Fatalf("record %d differs:\nsession: %+v\nmachine: %+v", i, sRecs[i], mRecs[i])
		}
	}
	if a, b := sess.Session.Core.Cycles(), mt.Core.Cycles(); a != b {
		t.Errorf("cycles: session %d, machine %d", a, b)
	}
	if a, b := sess.Session.Core.PMU().TrueSnapshot(), mt.Core.PMU().TrueSnapshot(); a != b {
		t.Errorf("PMU totals: session %v, machine %v", a, b)
	}
	for i := 0; i < mt.Hier.Levels(); i++ {
		if a, b := sess.Session.Hier.LevelStats(i), mt.Hier.LevelStats(i); a != b {
			t.Errorf("level %d stats: session %+v, machine %+v", i, a, b)
		}
	}
	if a, b := sess.Session.Hier.DRAMAccesses(), mt.Hier.DRAMAccesses(); a != b {
		t.Errorf("DRAM accesses: session %d, machine %d", a, b)
	}
	if a, b := sess.Session.Mon.Engine().Stats(), mt.Mon.Engine().Stats(); a != b {
		t.Errorf("PEBS stats: session %+v, machine %+v", a, b)
	}
	sf, mf := sess.Folded, mach.Threads[0].Folded
	if len(sf.Mem) == 0 || len(sf.Mem) != len(mf.Mem) {
		t.Fatalf("folded samples: session %d, machine %d", len(sf.Mem), len(mf.Mem))
	}
	for i := range sf.Mem {
		if sf.Mem[i] != mf.Mem[i] {
			t.Fatalf("folded sample %d differs: %+v vs %+v", i, sf.Mem[i], mf.Mem[i])
		}
	}
	if !reflect.DeepEqual(sf.Phases, mf.Phases) {
		t.Errorf("phases differ: %+v vs %+v", sf.Phases, mf.Phases)
	}
}

// TestPartitionSingleThreadIdenticalToSession pins Run == RunPartition(0,
// Elements()) through the full stack for every partitioned workload, on
// both the randomized-mux and deterministic configurations.
func TestPartitionSingleThreadIdenticalToSession(t *testing.T) {
	const iters = 6
	for name, mk := range partitionedWorkloads() {
		t.Run(name, func(t *testing.T) {
			for _, mode := range []struct {
				name string
				cfg  func() Config
			}{
				{"randomized-mux", func() Config { cfg, _ := comparableConfigs(); return cfg }},
				{"deterministic", testConfig},
			} {
				t.Run(mode.name, func(t *testing.T) {
					sess, err := RunWorkload(mode.cfg(), mk(), iters)
					if err != nil {
						t.Fatal(err)
					}
					mach, err := RunWorkloadParallel(nil, mode.cfg(), mk(), iters, 1)
					if err != nil {
						t.Fatal(err)
					}
					assertSessionMachineIdentical(t, sess, mach)
				})
			}
		})
	}
}

// TestPartitionSequentialMatchesParallelSingleThread pins the deterministic
// sequential schedule to the goroutine schedule where they must coincide
// exactly: one thread.
func TestPartitionSequentialMatchesParallelSingleThread(t *testing.T) {
	cfg := testConfig()
	mk := func() workloads.PartitionedWorkload { return workloads.NewSpMV(8, 8, 8) }
	par, err := RunWorkloadParallel(nil, cfg, mk(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunWorkloadSequential(nil, cfg, mk(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := par.Machine.Primary().Mon.Records(), seq.Machine.Primary().Mon.Records()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sequential and parallel 1-thread runs differ: %d vs %d records", len(a), len(b))
	}
}

// TestPartitionFourThreads free-runs every partitioned workload across 4
// concurrent cores: this is the -race coverage for the promoted
// RunPartition implementations (disjoint writes, shared read-only state,
// sharded L3). Every thread must fold instances of its own block.
func TestPartitionFourThreads(t *testing.T) {
	const threads = 4
	cfg := testConfig()
	cfg.Monitor.PEBS.Period = 60
	for name, mk := range partitionedWorkloads() {
		t.Run(name, func(t *testing.T) {
			res, err := RunWorkloadParallel(nil, cfg, mk(), 4, threads)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Threads) != threads {
				t.Fatalf("folded threads = %d", len(res.Threads))
			}
			for _, tr := range res.Threads {
				if tr.Folded.InstancesUsed == 0 {
					t.Errorf("thread %d: no folded instances", tr.Thread)
				}
			}
		})
	}
}

// TestPartitionResultsCorrect checks the numerical results survive
// concurrent partitioning: the triad and SpMV outputs match their closed
// forms after a 4-thread run.
func TestPartitionResultsCorrect(t *testing.T) {
	cfg := testConfig()
	st := workloads.NewStream(1 << 13)
	if _, err := RunWorkloadParallel(nil, cfg, st, 3, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.N; i += 97 {
		if st.Value(i) != st.Expected(i) {
			t.Fatalf("triad wrong at %d: %g != %g", i, st.Value(i), st.Expected(i))
		}
	}
	sp := workloads.NewSpMV(12, 12, 12)
	if _, err := RunWorkloadParallel(nil, cfg, sp, 2, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sp.Rows(); i += 53 {
		if sp.Value(i) != sp.Expected(i) {
			t.Fatalf("spmv wrong at row %d: %g != %g", i, sp.Value(i), sp.Expected(i))
		}
	}
}
