package core

import (
	"repro/internal/cpu"
	"repro/internal/telemetry"
)

// Progress observation publishes a run's instantaneous counters into a
// telemetry.Progress mailbox. It happens only at the existing instance
// boundaries — the same quiescent points as the cancellation poll, after the
// sampling engine has flushed — so observed and unobserved runs execute the
// identical instruction stream. The readers below are plain accessor calls
// and atomic stores: no allocation, no wall clock.

// ObserveProgress publishes the session's cycle, instruction and per-level
// cache totals plus the completed-instance count.
//
//repro:noalloc
func (s *Session) ObserveProgress(p *telemetry.Progress, done uint64) {
	p.SetInstances(done)
	p.SetCPU(s.Core.Cycles(), s.Core.PMU().True(cpu.CtrInstructions))
	n := s.Hier.Levels()
	if n > telemetry.ProgressLevels {
		n = telemetry.ProgressLevels
	}
	p.SetLevelCount(n)
	for i := 0; i < n; i++ {
		st := s.Hier.LevelStats(i)
		p.SetLevel(i, st.Hits, st.Misses)
	}
}

// ObserveProgress publishes machine-wide totals: cycles and instructions
// summed over threads, and per-level hit/fill counts summed over each
// thread's view of its hierarchy (the shared-L3 level reports each thread's
// own accesses, so the sum is the machine total).
//
//repro:noalloc
func (m *Machine) ObserveProgress(p *telemetry.Progress, done uint64) {
	p.SetInstances(done)
	var cycles, instr uint64
	for _, th := range m.Threads {
		cycles += th.Core.Cycles()
		instr += th.Core.PMU().True(cpu.CtrInstructions)
	}
	p.SetCPU(cycles, instr)
	n := m.Primary().Hier.Levels()
	if n > telemetry.ProgressLevels {
		n = telemetry.ProgressLevels
	}
	p.SetLevelCount(n)
	for i := 0; i < n; i++ {
		var hits, fills uint64
		for _, th := range m.Threads {
			if i >= th.Hier.Levels() {
				continue
			}
			st := th.Hier.LevelStats(i)
			hits += st.Hits
			fills += st.Misses
		}
		p.SetLevel(i, hits, fills)
	}
}

// checkpoints reports whether the checkpointer actually snapshots or
// resumes, as opposed to carrying only a Progress mailbox. Checkpointing
// constrains the run (resumable workloads, sequential schedule); progress
// observation does not, so the run entry points gate their capability
// checks on this rather than on ck != nil. Safe on a nil receiver.
func (ck *Checkpointer) checkpoints() bool {
	return ck != nil && (ck.Every > 0 || ck.Sink != nil || ck.Resume != nil || ck.Demand != nil)
}

// observeSession publishes session progress when a mailbox is attached;
// safe on a nil receiver so run loops call it unconditionally.
//
//repro:noalloc
func (ck *Checkpointer) observeSession(s *Session, done int) {
	if ck != nil && ck.Progress != nil {
		s.ObserveProgress(ck.Progress, uint64(done))
	}
}

// observeMachine is observeSession for machine runs.
//
//repro:noalloc
func (ck *Checkpointer) observeMachine(m *Machine, done int) {
	if ck != nil && ck.Progress != nil {
		m.ObserveProgress(ck.Progress, uint64(done))
	}
}
