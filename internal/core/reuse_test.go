package core

import (
	"testing"

	"repro/internal/reuse"
)

// TestReusePipelineOnHPCG exercises the paper-motivated follow-on analyses
// end to end: reuse distances and hybrid-memory advice computed from a
// monitored HPCG run.
func TestReusePipelineOnHPCG(t *testing.T) {
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	an, err := reuse.FromFolded(run.Folded, 64)
	if err != nil {
		t.Fatal(err)
	}
	if an.Accesses() != len(run.Folded.Mem) {
		t.Errorf("analyzer saw %d accesses, folded has %d", an.Accesses(), len(run.Folded.Mem))
	}
	h := an.Histogram()
	if h.Total == 0 {
		t.Fatal("empty reuse histogram")
	}
	// The hit-ratio curve must be monotone and reach at least the non-cold
	// share at huge capacities.
	caps := []int{16, 256, 4096, 1 << 20}
	curve := h.HitRatioCurve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("hit-ratio curve not monotone: %v", curve)
		}
	}
	nonCold := 1 - float64(h.Cold)/float64(h.Total)
	if curve[len(curve)-1] < nonCold-0.05 {
		t.Errorf("infinite-cache hit ratio %.3f below non-cold share %.3f",
			curve[len(curve)-1], nonCold)
	}

	// The advisor must recommend load-optimized memory for the read-only
	// matrix group — the paper's concluding suggestion.
	placements := reuse.Advise(run.Session.Mon.Registry().Objects(), reuse.AdvisorConfig{})
	var matrixTier reuse.Tier
	found := false
	for _, p := range placements {
		if p.Object.Name == "124_GenerateProblem_ref.cpp" {
			matrixTier = p.Tier
			found = true
		}
	}
	if !found {
		t.Fatal("matrix group missing from advice")
	}
	if matrixTier != reuse.TierLoadOptimized {
		t.Errorf("matrix tier = %v, want load-optimized", matrixTier)
	}
}

// TestPhaseIPUsesInstrumentedFrame verifies that samples taken under a
// pushed call frame are phase-attributed to the frame, not the leaf IP —
// the mechanism that separates the multigrid coarse work (region C) from
// the fine smoother sharing its code.
func TestPhaseIPUsesInstrumentedFrame(t *testing.T) {
	run, err := RunHPCG(testConfig(), testHPCGParams())
	if err != nil {
		t.Fatal(err)
	}
	s := run.Session
	mgFn, ok := s.Bin.Function("ComputeMG_ref")
	if !ok {
		t.Fatal("ComputeMG_ref not in binary")
	}
	var inFrame, attributed int
	for _, mp := range run.Folded.Mem {
		if mp.StackID == 0 {
			continue
		}
		frames := s.Mon.Stacks().Frames(mp.StackID)
		if len(frames) == 0 {
			continue
		}
		top := frames[len(frames)-1]
		if top >= mgFn.LowIP && top < mgFn.HighIP() {
			inFrame++
			if mp.PhaseIP == top {
				attributed++
			}
		}
	}
	if inFrame == 0 {
		t.Fatal("no samples taken under the MG frame")
	}
	if attributed != inFrame {
		t.Errorf("%d of %d MG-frame samples attributed to the frame", attributed, inFrame)
	}
	// And the C phase exists because of it.
	if _, ok := run.PhaseByLabel("C"); !ok {
		t.Log("C phase merged at this scale (coarse level tiny); acceptable")
	}
}
