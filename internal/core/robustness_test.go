package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/hpcg"
	"repro/internal/workloads"
)

// traceBytes serializes a session's trace pair; byte equality of the PRV is
// the strongest "same run" oracle the stack has.
func traceBytes(t *testing.T, wt interface {
	WriteTrace(prv, pcf interface {
		Write(p []byte) (int, error)
	}) error
}) (prv, pcf []byte) {
	t.Helper()
	var pb, cb bytes.Buffer
	if err := wt.WriteTrace(&pb, &cb); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return pb.Bytes(), cb.Bytes()
}

// reencode pushes a snapshot through the binary codec, proving resume works
// from the serialized form and not just the in-memory object graph.
func reencode(t *testing.T, snap *checkpoint.Snapshot) *checkpoint.Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := checkpoint.Write(&buf, snap); err != nil {
		t.Fatalf("checkpoint.Write: %v", err)
	}
	got, err := checkpoint.Read(&buf)
	if err != nil {
		t.Fatalf("checkpoint.Read: %v", err)
	}
	return got
}

func asRunError(t *testing.T, err error) *RunError {
	t.Helper()
	var rerr *RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("expected *RunError, got %T: %v", err, err)
	}
	return rerr
}

func TestSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunWorkloadCheckpointed(ctx, testConfig(), workloads.NewStream(1<<10), 4, nil)
	rerr := asRunError(t, err)
	if !errors.Is(rerr.Cause, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", rerr.Cause)
	}
	if rerr.Cursor != (checkpoint.Cursor{}) {
		t.Errorf("cursor = %+v, want zero (nothing ran)", rerr.Cursor)
	}
	if res == nil || !res.Partial {
		t.Errorf("partial result missing or unmarked: %+v", res)
	}
}

func TestInjectedInstanceFault(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Enable(faultinject.PointInstance, 3, nil)
	res, err := RunWorkloadCheckpointed(nil, testConfig(), workloads.NewStream(1<<10), 6, nil)
	rerr := asRunError(t, err)
	if !errors.Is(rerr.Cause, faultinject.ErrInjected) {
		t.Errorf("cause = %v, want ErrInjected", rerr.Cause)
	}
	if want := (checkpoint.Cursor{Thread: 0, Iter: 2}); rerr.Cursor != want {
		t.Errorf("cursor = %+v, want %+v (two instances completed)", rerr.Cursor, want)
	}
	if res == nil || !res.Partial {
		t.Fatalf("partial result missing or unmarked")
	}
	if res.Folded == nil {
		t.Errorf("two completed instances should still fold")
	}
}

func TestCheckpointSinkFault(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Enable(faultinject.PointCheckpoint, 1, nil)
	cfg := testConfig()
	ck := &Checkpointer{Every: 2, Tag: CheckpointTag("stream_triad", 1, cfg)}
	_, err := RunWorkloadCheckpointed(nil, cfg, workloads.NewStream(1<<10), 6, ck)
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected checkpoint failure", err)
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("error should name the checkpoint stage: %v", err)
	}
}

func TestResumeTagMismatch(t *testing.T) {
	cfg := testConfig()
	var last *checkpoint.Snapshot
	ck := &Checkpointer{
		Every: 2,
		Tag:   CheckpointTag("stream_triad", 1, cfg),
		Sink:  func(s *checkpoint.Snapshot) error { last = s; return nil },
	}
	if _, err := RunWorkloadCheckpointed(nil, cfg, workloads.NewStream(1<<10), 4, ck); err != nil {
		t.Fatalf("run: %v", err)
	}
	if last == nil {
		t.Fatal("no snapshot emitted")
	}
	bad := &Checkpointer{Tag: CheckpointTag("other", 1, cfg), Resume: last}
	if _, err := RunWorkloadCheckpointed(nil, cfg, workloads.NewStream(1<<10), 4, bad); err == nil {
		t.Fatal("tag mismatch accepted")
	}
}

// killAndResume runs golden (uninterrupted), then kills the same run at the
// fault-injection instance point, resumes from the last snapshot (routed
// through the binary codec) and returns golden and resumed trace bytes.
func killAndResume(t *testing.T, tag string, killAt uint64,
	run func(ck *Checkpointer) (interface {
		WriteTrace(prv, pcf interface {
			Write(p []byte) (int, error)
		}) error
	}, error),
) (goldenPRV, goldenPCF, resumedPRV, resumedPCF []byte) {
	t.Helper()
	golden, err := run(nil)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	goldenPRV, goldenPCF = traceBytes(t, golden)

	var lastEnc []byte
	ck := &Checkpointer{
		Every: 2,
		Tag:   tag,
		Sink: func(s *checkpoint.Snapshot) error {
			var buf bytes.Buffer
			if err := checkpoint.Write(&buf, s); err != nil {
				return err
			}
			lastEnc = buf.Bytes()
			return nil
		},
	}
	faultinject.Enable(faultinject.PointInstance, killAt, nil)
	_, err = run(ck)
	faultinject.Reset()
	asRunError(t, err)
	if lastEnc == nil {
		t.Fatal("no snapshot emitted before the kill")
	}
	snap, err := checkpoint.Read(bytes.NewReader(lastEnc))
	if err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	resumed, err := run(&Checkpointer{Tag: tag, Resume: snap})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	resumedPRV, resumedPCF = traceBytes(t, resumed)
	return
}

func checkByteExact(t *testing.T, goldenPRV, goldenPCF, resumedPRV, resumedPCF []byte) {
	t.Helper()
	if !bytes.Equal(goldenPRV, resumedPRV) {
		t.Errorf("resumed PRV differs from uninterrupted run (%d vs %d bytes)", len(resumedPRV), len(goldenPRV))
	}
	if !bytes.Equal(goldenPCF, resumedPCF) {
		t.Errorf("resumed PCF differs from uninterrupted run")
	}
}

func TestKillResumeSessionByteExact(t *testing.T) {
	cfg := testConfig()
	tag := CheckpointTag("stream_triad", 1, cfg)
	g1, g2, r1, r2 := killAndResume(t, tag, 5, func(ck *Checkpointer) (interface {
		WriteTrace(prv, pcf interface {
			Write(p []byte) (int, error)
		}) error
	}, error) {
		res, err := RunWorkloadCheckpointed(nil, cfg, workloads.NewStream(1<<12), 6, ck)
		if err != nil {
			return nil, err
		}
		return res.Session, nil
	})
	checkByteExact(t, g1, g2, r1, r2)
}

// The RNG-driven workload is the hardest resume case: the access stream
// position must be reconstructed exactly, not just the array contents.
func TestKillResumeMachineByteExact(t *testing.T) {
	cfg := testConfig()
	tag := CheckpointTag("random_access", 2, cfg)
	g1, g2, r1, r2 := killAndResume(t, tag, 7, func(ck *Checkpointer) (interface {
		WriteTrace(prv, pcf interface {
			Write(p []byte) (int, error)
		}) error
	}, error) {
		w := workloads.NewRandomAccess(1<<12, 1<<10, 7)
		res, err := RunWorkloadSequentialCheckpointed(nil, cfg, w, 4, 2, ck)
		if err != nil {
			return nil, err
		}
		return res.Machine, nil
	})
	checkByteExact(t, g1, g2, r1, r2)
}

func TestKillResumeHPCGByteExact(t *testing.T) {
	cfg := testConfig()
	params := testHPCGParams()
	params.MaxIters = 8
	tag := CheckpointTag("hpcg", 1, cfg)
	var histories []string
	g1, g2, r1, r2 := killAndResume(t, tag, 6, func(ck *Checkpointer) (interface {
		WriteTrace(prv, pcf interface {
			Write(p []byte) (int, error)
		}) error
	}, error) {
		run, err := RunHPCGCheckpointed(nil, cfg, params, ck)
		if err != nil {
			return nil, err
		}
		// %x renders the exact float64 bits: the solver state restore must
		// be bit-exact, not merely close.
		histories = append(histories, fmt.Sprintf("%x %x", run.CG.Residuals, run.CG.FinalError))
		return run.Session, nil
	})
	checkByteExact(t, g1, g2, r1, r2)
	// histories[0] is the golden run, the last entry the resumed run (the
	// killed run errors before appending).
	if got, want := histories[len(histories)-1], histories[0]; got != want {
		t.Errorf("resumed CG residual history differs:\ngolden  %s\nresumed %s", want, got)
	}
}

// panickyWorkload panics on the first non-primary partition: the concurrent
// driver must contain the panic, convert it to a RunError and exit all
// goroutines instead of deadlocking the remaining threads.
type panickyWorkload struct {
	*workloads.Stream
}

func (p *panickyWorkload) RunPartitionRange(ctx *workloads.Ctx, startIter, endIter, lo, hi int) error {
	if lo != 0 {
		panic("injected kernel panic")
	}
	return p.Stream.RunPartitionRange(ctx, startIter, endIter, lo, hi)
}

func TestConcurrentPanicContainment(t *testing.T) {
	type outcome struct {
		res *MachineWorkloadResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunWorkloadParallel(nil, testConfig(), &panickyWorkload{workloads.NewStream(1 << 12)}, 3, 4)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		rerr := asRunError(t, out.err)
		if rerr.Thread < 2 {
			t.Errorf("panic attributed to thread %d, want a secondary thread", rerr.Thread)
		}
		if !strings.Contains(rerr.Cause.Error(), "panic") {
			t.Errorf("cause should identify the panic: %v", rerr.Cause)
		}
		if out.res == nil || !out.res.Partial {
			t.Errorf("partial result missing or unmarked")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("parallel run deadlocked after worker panic")
	}
}

func TestTeamPanicReleasesBarrier(t *testing.T) {
	m, err := NewMachine(testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	team, err := m.Team()
	if err != nil {
		t.Fatal(err)
	}
	defer team.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		team.Run(func(tid int, _ *hpcg.Worker) {
			if tid == 2 {
				panic("injected worker panic")
			}
		})
		// A poisoned team must refuse further sections without blocking.
		team.Run(func(tid int, _ *hpcg.Worker) {
			t.Error("poisoned team ran another parallel section")
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("team barrier never released after worker panic")
	}
	if err := team.Err(); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("team.Err() = %v, want recorded panic", err)
	}
}

func TestHPCGParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, err := RunHPCGParallel(ctx, testConfig(), testHPCGParams(), 2)
	rerr := asRunError(t, err)
	if !errors.Is(rerr.Cause, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", rerr.Cause)
	}
	if run == nil || !run.Partial {
		t.Errorf("partial run missing or unmarked")
	}
}

// demandAfter returns a Demand poll that fires from its n-th call on — the
// poll-counting pattern a draining server uses (every instance boundary
// polls once).
func demandAfter(n int) func() bool {
	polls := 0
	return func() bool {
		polls++
		return polls >= n
	}
}

// TestDemandCheckpointResumeByteExact pins the drain primitive: a run
// stopped by Checkpointer.Demand emits a snapshot at the stop cursor, the
// RunError carries ErrCheckpointDemanded, and resuming the snapshot
// reproduces the uninterrupted trace byte for byte.
func TestDemandCheckpointResumeByteExact(t *testing.T) {
	cfg := testConfig()
	tag := CheckpointTag("stream_triad", 1, cfg)
	run := func(ck *Checkpointer) (*RunWorkloadResult, error) {
		return RunWorkloadCheckpointed(nil, cfg, workloads.NewStream(1<<12), 6, ck)
	}
	golden, err := run(nil)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	goldenPRV, goldenPCF := traceBytes(t, golden.Session)

	var snap *checkpoint.Snapshot
	ck := &Checkpointer{
		Tag:    tag,
		Demand: demandAfter(4),
		Sink:   func(s *checkpoint.Snapshot) error { snap = s; return nil },
	}
	res, err := run(ck)
	rerr := asRunError(t, err)
	if !errors.Is(rerr.Cause, ErrCheckpointDemanded) {
		t.Fatalf("cause = %v, want ErrCheckpointDemanded", rerr.Cause)
	}
	if res == nil || !res.Partial {
		t.Fatal("demand stop should return a partial-marked result")
	}
	if snap == nil {
		t.Fatal("no snapshot emitted")
	}
	if snap.Cursor != rerr.Cursor {
		t.Fatalf("snapshot cursor %+v != RunError cursor %+v", snap.Cursor, rerr.Cursor)
	}
	if want := (checkpoint.Cursor{Thread: 0, Iter: 3}); snap.Cursor != want {
		t.Errorf("cursor = %+v, want %+v (three instances completed before the 4th poll)", snap.Cursor, want)
	}
	resumed, err := run(&Checkpointer{Tag: tag, Resume: reencode(t, snap)})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	resumedPRV, resumedPCF := traceBytes(t, resumed.Session)
	checkByteExact(t, goldenPRV, goldenPCF, resumedPRV, resumedPCF)
}

// TestDemandCheckpointMachineAndHPCG covers the demand poll on the other two
// deterministic schedules: the thread-major machine run and the CG solve.
func TestDemandCheckpointMachineAndHPCG(t *testing.T) {
	cfg := testConfig()
	{
		tag := CheckpointTag("random_access", 2, cfg)
		run := func(ck *Checkpointer) (*MachineWorkloadResult, error) {
			w := workloads.NewRandomAccess(1<<12, 1<<10, 7)
			return RunWorkloadSequentialCheckpointed(nil, cfg, w, 4, 2, ck)
		}
		golden, err := run(nil)
		if err != nil {
			t.Fatalf("golden machine run: %v", err)
		}
		goldenPRV, goldenPCF := traceBytes(t, golden.Machine)
		var snap *checkpoint.Snapshot
		ck := &Checkpointer{Tag: tag, Demand: demandAfter(6),
			Sink: func(s *checkpoint.Snapshot) error { snap = s; return nil }}
		_, err = run(ck)
		rerr := asRunError(t, err)
		if !errors.Is(rerr.Cause, ErrCheckpointDemanded) || snap == nil {
			t.Fatalf("machine demand stop: cause=%v snapshot=%v", rerr.Cause, snap != nil)
		}
		resumed, err := run(&Checkpointer{Tag: tag, Resume: reencode(t, snap)})
		if err != nil {
			t.Fatalf("resumed machine run: %v", err)
		}
		rPRV, rPCF := traceBytes(t, resumed.Machine)
		checkByteExact(t, goldenPRV, goldenPCF, rPRV, rPCF)
	}
	{
		params := testHPCGParams()
		params.MaxIters = 8
		tag := CheckpointTag("hpcg", 1, cfg)
		run := func(ck *Checkpointer) (*HPCGRun, error) {
			return RunHPCGCheckpointed(nil, cfg, params, ck)
		}
		golden, err := run(nil)
		if err != nil {
			t.Fatalf("golden hpcg run: %v", err)
		}
		goldenPRV, goldenPCF := traceBytes(t, golden.Session)
		var snap *checkpoint.Snapshot
		ck := &Checkpointer{Tag: tag, Demand: demandAfter(5),
			Sink: func(s *checkpoint.Snapshot) error { snap = s; return nil }}
		_, err = run(ck)
		rerr := asRunError(t, err)
		if !errors.Is(rerr.Cause, ErrCheckpointDemanded) || snap == nil || snap.CG == nil {
			t.Fatalf("hpcg demand stop: cause=%v snapshot=%v cg=%v", rerr.Cause, snap != nil, snap != nil && snap.CG != nil)
		}
		resumed, err := run(&Checkpointer{Tag: tag, Resume: reencode(t, snap)})
		if err != nil {
			t.Fatalf("resumed hpcg run: %v", err)
		}
		if fmt.Sprintf("%x", resumed.CG.Residuals) != fmt.Sprintf("%x", golden.CG.Residuals) {
			t.Errorf("resumed CG residual history differs from golden")
		}
		rPRV, rPCF := traceBytes(t, resumed.Session)
		checkByteExact(t, goldenPRV, goldenPCF, rPRV, rPCF)
	}
}
