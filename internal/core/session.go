// Package core is the top-level facade of the library: it assembles the
// simulated machine (cache hierarchy, core, address space, synthetic
// binary), the monitoring runtime (Extrae-like tracing with PEBS memory
// sampling) and the Folding analysis into ready-to-run experiment
// pipelines. The cmd/ tools, the examples and the benchmark harness all
// drive the reproduction through this package.
package core

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/folding"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// defaultHeapBase mirrors the 0x2adf… heap addresses visible in the
// paper's Figure 1.
const defaultHeapBase = 0x2adf00000000

// Config assembles the full stack's configuration.
type Config struct {
	// Cache configures the memory hierarchy.
	Cache memhier.Config
	// CPU configures the core model.
	CPU cpu.Config
	// Monitor configures the Extrae-like runtime (PEBS, multiplexing,
	// tracking threshold, drain overhead).
	Monitor extrae.Config
	// Folding configures the analysis.
	Folding folding.Config
	// NUMA configures the multi-socket topology of a Machine. Sockets == 0
	// (the default) builds the flat single-L3 machine with no placement
	// layer — the historical configuration, byte-identical to every
	// pre-NUMA run. Sockets >= 1 routes all DRAM fills through a
	// page-granular placement: cores are grouped into contiguous socket
	// blocks, each socket gets its own shared L3 and memory node, and
	// fills whose home node is another socket are charged the remote
	// latency and labelled SrcDRAMRemote. A 1-socket routed Machine is
	// byte-identical to the flat Machine (pinned by the partition suite).
	// Sessions ignore this field: NUMA runs go through a Machine.
	NUMA numa.Config
	// HeapBase is the simulated heap base address.
	HeapBase uint64
	// ASLRSeed, when nonzero, randomizes the heap base per session —
	// simulating address-space layout randomization across runs, the
	// reason the paper multiplexes loads and stores in a single run
	// instead of running twice.
	ASLRSeed int64
	// Reference selects the straightforward per-operation simulation path
	// (per-op monitor observation and per-op stream issue) instead of the
	// fast path (countdown-gated sampling and batched stream issue). The
	// two paths must produce identical results; the fast-path equivalence
	// tests run every experiment both ways and compare byte for byte.
	Reference bool
}

// DefaultConfig returns the paper-like stack configuration.
func DefaultConfig() Config {
	return Config{
		Cache:    memhier.DefaultConfig(),
		CPU:      cpu.DefaultConfig(),
		Monitor:  extrae.DefaultConfig(),
		Folding:  folding.DefaultConfig(),
		HeapBase: defaultHeapBase,
	}
}

// Session is an assembled simulated machine with monitoring attached.
type Session struct {
	Cfg  Config
	Hier *memhier.Hierarchy
	Core *cpu.Core
	Bin  *prog.Binary
	AS   *prog.AddressSpace
	Mon  *extrae.Monitor

	// sortedLog memoizes sortedRecords (the monitor log is append-only, so
	// an unchanged length means an unchanged log).
	sortedLog []trace.Record
	sortedLen int
}

// applyReference expands the Reference shorthand into the concrete
// per-operation knobs of the sub-configurations (shared by Session and
// Machine so the two assemble identical reference stacks).
func applyReference(cfg Config) Config {
	if cfg.Reference {
		cfg.CPU.PerOpStreams = true
		cfg.Monitor.PerOpObserve = true
	}
	return cfg
}

// NewSession builds the stack.
func NewSession(cfg Config) (*Session, error) {
	cfg = applyReference(cfg)
	hier, err := memhier.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cfg.CPU, hier)
	if err != nil {
		return nil, err
	}
	bin := prog.NewBinary()
	as := prog.NewAddressSpace(heapBase(cfg))
	mon, err := extrae.New(cfg.Monitor, c, bin, as)
	if err != nil {
		return nil, err
	}
	return &Session{Cfg: cfg, Hier: hier, Core: c, Bin: bin, AS: as, Mon: mon}, nil
}

// heapBase resolves the configured heap base, randomizing it by up to
// 1 TiB in page steps when an ASLR seed is set — like Linux ASLR does for
// the heap of a PIE binary.
func heapBase(cfg Config) uint64 {
	base := cfg.HeapBase
	if base == 0 {
		base = defaultHeapBase
	}
	if cfg.ASLRSeed != 0 {
		rng := rand.New(rand.NewSource(cfg.ASLRSeed))
		base += uint64(rng.Int63n(1<<40)) &^ 0xfff
	}
	return base
}

// Ctx returns the workload-facing view of the session.
func (s *Session) Ctx() *workloads.Ctx {
	return &workloads.Ctx{Core: s.Core, Mon: s.Mon, Bin: s.Bin}
}

// FuncOf resolves an instruction pointer to its function name ("" when
// unknown); used to label folded phases.
func (s *Session) FuncOf(ip uint64) string {
	if loc, ok := s.Bin.Lookup(ip); ok {
		return loc.Function
	}
	return ""
}

// sortedRecords returns the monitor's trace log stably sorted by time.
// The log is append-ordered: buffered PEBS samples drain after later
// region/snapshot records, so sample records can carry earlier timestamps
// than records already logged — and both folding.Extract and the PRV
// writer require a chronological stream. Same-time records keep their
// logged order. The sorted copy is memoized and its backing buffer reused
// when the log has grown, so steady-state re-folding does not reallocate;
// a snapshot returned before the log grew is invalidated by the next call.
func (s *Session) sortedRecords() []trace.Record {
	log := s.Mon.Records()
	if s.sortedLog != nil && s.sortedLen == len(log) {
		return s.sortedLog
	}
	recs := append(s.sortedLog[:0], log...)
	slices.SortStableFunc(recs, func(a, b trace.Record) int {
		switch {
		case a.TimeNs < b.TimeNs:
			return -1
		case a.TimeNs > b.TimeNs:
			return 1
		}
		return 0
	})
	s.sortedLog, s.sortedLen = recs, len(log)
	return recs
}

// foldInstances is the shared folding tail of Session.Fold and
// Machine.Fold: bind the config defaults — FuncOf resolves through the
// binary, PhaseIP attributes samples taken under an instrumented call
// frame to the outermost frame of the emitting monitor's stack table
// (e.g. the multigrid coarse-level smoother runs the same code as the
// fine smoother, but belongs to ComputeMG_ref) — then fold and label.
func foldInstances(instances []folding.Instance, cfg folding.Config, region extrae.Region,
	funcOf func(ip uint64) string, mon *extrae.Monitor) (*folding.Folded, error) {
	if cfg.FuncOf == nil {
		cfg.FuncOf = funcOf
	}
	if cfg.PhaseIP == nil {
		cfg.PhaseIP = func(smp folding.Sample) uint64 {
			if frames := mon.Stacks().Frames(smp.StackID); len(frames) > 0 {
				return frames[len(frames)-1]
			}
			return smp.IP
		}
	}
	folded, err := folding.Fold(instances, cfg)
	if err != nil {
		return nil, err
	}
	folded.Region = int64(region)
	folded.LabelPhases(funcOf)
	return folded, nil
}

// Fold extracts and folds the named region from the monitor's trace.
func (s *Session) Fold(region extrae.Region) (*folding.Folded, error) {
	instances, err := folding.Extract(s.sortedRecords(), int64(region))
	if err != nil {
		return nil, err
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("core: no instances of region %q in trace", s.Mon.RegionName(region))
	}
	return foldInstances(instances, s.Cfg.Folding, region, s.FuncOf, s.Mon)
}

// RunWorkloadResult bundles a monitored workload run with its folding.
type RunWorkloadResult struct {
	Session *Session
	Folded  *folding.Folded
	// Partial marks a run stopped before completion; Folded may be nil if
	// no instance finished.
	Partial bool
}

// RunWorkload sets up, monitors and folds a synthetic workload: the
// quickstart pipeline.
func RunWorkload(cfg Config, w workloads.Workload, iters int) (*RunWorkloadResult, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	ctx := s.Ctx()
	if err := w.Setup(ctx); err != nil {
		return nil, err
	}
	s.Mon.Start()
	if err := w.Run(ctx, iters); err != nil {
		return nil, err
	}
	s.Mon.Stop()
	folded, err := s.Fold(w.Region())
	if err != nil {
		return nil, err
	}
	return &RunWorkloadResult{Session: s, Folded: folded}, nil
}

// WriteTrace serializes the session's trace and labels to the writers
// (PRV-style text and PCF).
func (s *Session) WriteTrace(prv, pcf interface {
	Write(p []byte) (int, error)
}) error {
	recs := s.sortedRecords()
	var dur uint64
	if len(recs) > 0 {
		dur = recs[len(recs)-1].TimeNs
	}
	w, err := trace.NewWriter(prv, 1, 1, dur)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return s.Mon.Labels().WritePCF(pcf)
}
