// Package cpu models a simple in-order core executing a stream of typed
// operations (compute, branch, load, store) against a memhier.Hierarchy. It
// provides the two hardware facilities the paper's monitoring extensions
// rely on: a PMU with fixed and multiplexed programmable counters, and a
// per-memory-instruction hook through which the PEBS engine observes every
// memory operation with its address, latency and data source.
//
// The timing model is deliberately simple — compute operations retire at a
// fixed IPC and memory stalls are partially overlapped by a configurable
// factor — because the paper's analysis consumes counter *rates* and their
// relative changes across phases, not cycle-accurate timings.
package cpu

import (
	"fmt"

	"repro/internal/memhier"
)

// CounterID identifies one hardware event counter.
type CounterID int

// The modelled PMU events. Instructions and Cycles are fixed counters (always
// counting); the rest are programmable and subject to multiplexing.
const (
	CtrInstructions CounterID = iota
	CtrCycles
	CtrBranches
	CtrLoads
	CtrStores
	CtrL1DMiss
	CtrL2Miss
	CtrL3Miss
	NumCounters
)

// String returns the PAPI-style event name used in traces and reports.
func (c CounterID) String() string {
	switch c {
	case CtrInstructions:
		return "PAPI_TOT_INS"
	case CtrCycles:
		return "PAPI_TOT_CYC"
	case CtrBranches:
		return "PAPI_BR_INS"
	case CtrLoads:
		return "PAPI_LD_INS"
	case CtrStores:
		return "PAPI_SR_INS"
	case CtrL1DMiss:
		return "PAPI_L1_DCM"
	case CtrL2Miss:
		return "PAPI_L2_DCM"
	case CtrL3Miss:
		return "PAPI_L3_TCM"
	}
	return fmt.Sprintf("CounterID(%d)", int(c))
}

// fixed reports whether the counter is a fixed (always-on) counter.
func (c CounterID) fixed() bool { return c == CtrInstructions || c == CtrCycles }

// MemOp describes one executed memory instruction, as observed by the PEBS
// hook: the sampled fields of a PEBS record.
type MemOp struct {
	// IP is the instruction pointer of the memory instruction.
	IP uint64
	// Addr is the referenced virtual address.
	Addr uint64
	// Size is the access width in bytes.
	Size int
	// Store is true for stores, false for loads.
	Store bool
	// Latency is the access cost in cycles (PEBS "weight").
	Latency uint64
	// Source is the hierarchy level that served the data.
	Source memhier.DataSource
	// Cycle is the core cycle at which the op retired.
	Cycle uint64
}

// MemOpHook observes every retired memory operation.
type MemOpHook func(op MemOp)

// Config parameterizes a Core.
type Config struct {
	// FreqHz is the nominal clock used to convert cycles to wall time.
	// The paper's IPC arithmetic (1500 MIPS ≈ 0.6 IPC) assumes the nominal
	// frequency, so the default matches Jureca's 2.5 GHz Haswell parts.
	FreqHz float64
	// ComputeIPC is the retirement rate of non-memory instructions.
	ComputeIPC float64
	// MemOverlap in [0,1) is the fraction of a memory access latency hidden
	// by out-of-order overlap and MLP; 0 serializes every access.
	MemOverlap float64
}

// DefaultConfig returns the Haswell-like defaults (2.5 GHz, IPC 2 for
// compute, 60% of memory latency hidden).
func DefaultConfig() Config {
	return Config{FreqHz: 2.5e9, ComputeIPC: 2, MemOverlap: 0.6}
}

// Core is a simulated hardware thread. Not safe for concurrent use; each
// simulated thread owns a Core.
type Core struct {
	cfg     Config
	hier    *memhier.Hierarchy
	pmu     *PMU
	cycles  uint64
	memHook MemOpHook
	// fracCycles accumulates sub-cycle compute time so that short compute
	// bursts at IPC > 1 do not round to zero.
	fracCycles float64
}

// New creates a core bound to a memory hierarchy.
func New(cfg Config, hier *memhier.Hierarchy) (*Core, error) {
	if cfg.FreqHz <= 0 {
		return nil, fmt.Errorf("cpu: FreqHz must be positive")
	}
	if cfg.ComputeIPC <= 0 {
		return nil, fmt.Errorf("cpu: ComputeIPC must be positive")
	}
	if cfg.MemOverlap < 0 || cfg.MemOverlap >= 1 {
		return nil, fmt.Errorf("cpu: MemOverlap must be in [0,1)")
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil memory hierarchy")
	}
	return &Core{cfg: cfg, hier: hier, pmu: NewPMU()}, nil
}

// PMU returns the core's performance monitoring unit.
func (c *Core) PMU() *PMU { return c.pmu }

// Hierarchy returns the attached memory hierarchy.
func (c *Core) Hierarchy() *memhier.Hierarchy { return c.hier }

// SetMemHook installs the per-memory-op observer (the PEBS tap).
func (c *Core) SetMemHook(h MemOpHook) { c.memHook = h }

// Cycles returns the elapsed core cycles.
func (c *Core) Cycles() uint64 { return c.cycles }

// NowNs returns the simulated wall-clock time in nanoseconds.
func (c *Core) NowNs() uint64 {
	return uint64(float64(c.cycles) / c.cfg.FreqHz * 1e9)
}

// FreqHz returns the nominal frequency.
func (c *Core) FreqHz() float64 { return c.cfg.FreqHz }

// advance moves the clock and informs the PMU.
func (c *Core) advance(cycles uint64) {
	c.cycles += cycles
	c.pmu.tick(cycles)
}

// Compute retires n non-memory, non-branch instructions.
func (c *Core) Compute(n uint64) {
	if n == 0 {
		return
	}
	c.pmu.count(CtrInstructions, n)
	c.fracCycles += float64(n) / c.cfg.ComputeIPC
	whole := uint64(c.fracCycles)
	if whole > 0 {
		c.fracCycles -= float64(whole)
		c.pmu.count(CtrCycles, whole)
		c.advance(whole)
	}
}

// Branch retires one branch instruction.
func (c *Core) Branch() {
	c.pmu.count(CtrInstructions, 1)
	c.pmu.count(CtrBranches, 1)
	c.fracCycles += 1 / c.cfg.ComputeIPC
	whole := uint64(c.fracCycles)
	if whole > 0 {
		c.fracCycles -= float64(whole)
		c.pmu.count(CtrCycles, whole)
		c.advance(whole)
	}
}

// memAccess implements Load, LoadDep and Store. dependent marks an access
// whose address or value feeds the next operation (a loop-carried
// dependency), which cannot be overlapped and stalls for the full latency.
func (c *Core) memAccess(ip, addr uint64, size int, store, dependent bool) memhier.AccessResult {
	res := c.hier.Access(addr, size, store)
	c.pmu.count(CtrInstructions, 1)
	if store {
		c.pmu.count(CtrStores, 1)
	} else {
		c.pmu.count(CtrLoads, 1)
	}
	switch res.Source {
	case memhier.SrcL2:
		c.pmu.count(CtrL1DMiss, 1)
	case memhier.SrcL3:
		c.pmu.count(CtrL1DMiss, 1)
		c.pmu.count(CtrL2Miss, 1)
	case memhier.SrcDRAM:
		c.pmu.count(CtrL1DMiss, 1)
		c.pmu.count(CtrL2Miss, 1)
		c.pmu.count(CtrL3Miss, 1)
	}
	// Effective stall: L1 hits cost their full (pipelined-small) latency;
	// deeper sources are partially overlapped — unless the access is part
	// of a dependency chain, which serializes it.
	stall := float64(res.Latency)
	if res.Source != memhier.SrcL1 && !dependent {
		stall *= 1 - c.cfg.MemOverlap
	}
	cyc := uint64(stall)
	if cyc == 0 {
		cyc = 1
	}
	c.pmu.count(CtrCycles, cyc)
	c.advance(cyc)
	if c.memHook != nil {
		c.memHook(MemOp{
			IP: ip, Addr: addr, Size: size, Store: store,
			Latency: res.Latency, Source: res.Source, Cycle: c.cycles,
		})
	}
	return res
}

// Load retires one load instruction at ip referencing addr.
func (c *Core) Load(ip, addr uint64, size int) memhier.AccessResult {
	return c.memAccess(ip, addr, size, false, false)
}

// LoadDep retires a load on a loop-carried dependency chain: its full
// latency stalls the pipeline (no overlap), modelling the serialized
// neighbour reads of a Gauss–Seidel sweep versus the independent gathers of
// SpMV — the reason the paper measures lower bandwidth in SYMGS than SpMV.
func (c *Core) LoadDep(ip, addr uint64, size int) memhier.AccessResult {
	return c.memAccess(ip, addr, size, false, true)
}

// Store retires one store instruction at ip referencing addr.
func (c *Core) Store(ip, addr uint64, size int) memhier.AccessResult {
	return c.memAccess(ip, addr, size, true, false)
}

// Stall advances the clock by the given cycles without retiring
// instructions. The monitoring layer uses it to charge sampling overhead
// (PEBS buffer drains) to the simulated application, making the paper's
// low-overhead claim measurable.
func (c *Core) Stall(cycles uint64) {
	if cycles == 0 {
		return
	}
	c.pmu.count(CtrCycles, cycles)
	c.advance(cycles)
}

// IPC returns retired instructions per cycle so far (0 when idle).
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.pmu.True(CtrInstructions)) / float64(c.cycles)
}
