// Package cpu models a simple in-order core executing a stream of typed
// operations (compute, branch, load, store) against a memhier.Hierarchy. It
// provides the two hardware facilities the paper's monitoring extensions
// rely on: a PMU with fixed and multiplexed programmable counters, and a
// per-memory-instruction hook through which the PEBS engine observes every
// memory operation with its address, latency and data source.
//
// The timing model is deliberately simple — compute operations retire at a
// fixed IPC and memory stalls are partially overlapped by a configurable
// factor — because the paper's analysis consumes counter *rates* and their
// relative changes across phases, not cycle-accurate timings.
package cpu

import (
	"fmt"

	"repro/internal/memhier"
)

// CounterID identifies one hardware event counter.
type CounterID int

// The modelled PMU events. Instructions and Cycles are fixed counters (always
// counting); the rest are programmable and subject to multiplexing.
const (
	CtrInstructions CounterID = iota
	CtrCycles
	CtrBranches
	CtrLoads
	CtrStores
	CtrL1DMiss
	CtrL2Miss
	CtrL3Miss
	// CtrRemoteDRAM counts loads and stores whose line fill was served by a
	// remote socket's memory node (the OFFCORE_RESPONSE remote-DRAM events
	// of the modelled Haswell parts). It is programmed only on cores whose
	// hierarchy is routed through a multi-node NUMA placement, so non-NUMA
	// stacks keep their historical counter set — and their exact trace
	// bytes.
	CtrRemoteDRAM
	NumCounters
)

// String returns the PAPI-style event name used in traces and reports.
func (c CounterID) String() string {
	switch c {
	case CtrInstructions:
		return "PAPI_TOT_INS"
	case CtrCycles:
		return "PAPI_TOT_CYC"
	case CtrBranches:
		return "PAPI_BR_INS"
	case CtrLoads:
		return "PAPI_LD_INS"
	case CtrStores:
		return "PAPI_SR_INS"
	case CtrL1DMiss:
		return "PAPI_L1_DCM"
	case CtrL2Miss:
		return "PAPI_L2_DCM"
	case CtrL3Miss:
		return "PAPI_L3_TCM"
	case CtrRemoteDRAM:
		return "REMOTE_DRAM"
	}
	return fmt.Sprintf("CounterID(%d)", int(c))
}

// fixed reports whether the counter is a fixed (always-on) counter.
func (c CounterID) fixed() bool { return c == CtrInstructions || c == CtrCycles }

// MemOp describes one executed memory instruction, as observed by the PEBS
// hook: the sampled fields of a PEBS record.
type MemOp struct {
	// IP is the instruction pointer of the memory instruction.
	IP uint64
	// Addr is the referenced virtual address.
	Addr uint64
	// Size is the access width in bytes.
	Size int
	// Store is true for stores, false for loads.
	Store bool
	// Latency is the access cost in cycles (PEBS "weight").
	Latency uint64
	// Source is the hierarchy level that served the data.
	Source memhier.DataSource
	// Cycle is the core cycle at which the op retired.
	Cycle uint64
}

// MemOpHook observes every retired memory operation.
type MemOpHook func(op MemOp)

// GatedMemOpHook observes only gated memory operations: those whose class
// countdown (see SetSampleGate) reached zero and those retiring at or past
// the hook cycle (a monitoring quantum boundary). The hook reads
// SampleGates to learn which gate (if any) fired before re-arming them.
// Between invocations the core runs memory operations without calling out,
// which is what makes the non-sampled path cheap.
type GatedMemOpHook func(op MemOp)

// GateNever is a sample-gate countdown that never fires in any realistic
// simulation (2^62 operations).
const GateNever = uint64(1) << 62

// Config parameterizes a Core.
type Config struct {
	// FreqHz is the nominal clock used to convert cycles to wall time.
	// The paper's IPC arithmetic (1500 MIPS ≈ 0.6 IPC) assumes the nominal
	// frequency, so the default matches Jureca's 2.5 GHz Haswell parts.
	FreqHz float64
	// ComputeIPC is the retirement rate of non-memory instructions.
	ComputeIPC float64
	// MemOverlap in [0,1) is the fraction of a memory access latency hidden
	// by out-of-order overlap and MLP; 0 serializes every access.
	MemOverlap float64
	// PerOpStreams degrades the batched stream-issue APIs (LoadStream,
	// LoadDepStream, StoreStream) to plain per-operation issue. This is the
	// reference path: equivalence tests run workloads both ways and require
	// identical traces, counters and cache statistics.
	PerOpStreams bool
}

// DefaultConfig returns the Haswell-like defaults (2.5 GHz, IPC 2 for
// compute, 60% of memory latency hidden).
func DefaultConfig() Config {
	return Config{FreqHz: 2.5e9, ComputeIPC: 2, MemOverlap: 0.6}
}

// Core is a simulated hardware thread. Not safe for concurrent use; each
// simulated thread owns a Core.
type Core struct {
	cfg     Config
	hier    *memhier.Hierarchy
	pmu     *PMU
	cycles  uint64
	memHook MemOpHook
	// fracCycles accumulates sub-cycle compute time so that short compute
	// bursts at IPC > 1 do not round to zero.
	fracCycles float64

	// Countdown-gated monitoring. The monitor arms loadGate/storeGate with
	// the operations remaining until the next sample of each class and
	// hookCycle with the next quantum boundary; the core decrements the
	// gates inline and invokes gatedHook only when one fires. With no
	// monitor (or a disabled one) the gates sit at GateNever and the whole
	// mechanism is two decrements and two compares per op.
	gatedHook GatedMemOpHook
	loadGate  uint64
	storeGate uint64
	hookCycle uint64

	// memCyc and memCycDep are the per-data-source stall cycles charged to
	// an independent (overlapped) and a dependency-chained access,
	// precomputed from the hierarchy latencies and MemOverlap so the per-op
	// path performs no floating-point work. maxCyc/maxCycDep are the
	// per-table maxima — the worst case is NOT always DRAM: overlap scales
	// every source but L1 down, so at high MemOverlap the unoverlapped L1
	// cost can exceed the overlapped DRAM cost. The batch splitter's
	// hook-cycle bound relies on these being true per-op maxima.
	memCyc    [memhier.NumSources]uint64
	memCycDep [memhier.NumSources]uint64
	maxCyc    uint64
	maxCycDep uint64
}

// New creates a core bound to a memory hierarchy.
func New(cfg Config, hier *memhier.Hierarchy) (*Core, error) {
	if cfg.FreqHz <= 0 {
		return nil, fmt.Errorf("cpu: FreqHz must be positive")
	}
	if cfg.ComputeIPC <= 0 {
		return nil, fmt.Errorf("cpu: ComputeIPC must be positive")
	}
	if cfg.MemOverlap < 0 || cfg.MemOverlap >= 1 {
		return nil, fmt.Errorf("cpu: MemOverlap must be in [0,1)")
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil memory hierarchy")
	}
	c := &Core{
		cfg:       cfg,
		hier:      hier,
		pmu:       NewPMU(),
		loadGate:  GateNever,
		storeGate: GateNever,
		hookCycle: ^uint64(0),
	}
	if hier.RemoteDRAMPossible() {
		// The hierarchy can serve remote-socket fills: program the
		// remote-DRAM event so the local/remote split reaches the PMU,
		// the trace and the folded counters.
		if err := c.pmu.EnableRemoteDRAM(); err != nil {
			return nil, err
		}
	}
	for s := memhier.DataSource(0); s < memhier.NumSources; s++ {
		lat := hier.SourceLatency(s)
		// Dependent accesses (and L1 hits) stall for the full latency;
		// deeper independent accesses are partially hidden by overlap.
		full := lat
		if full == 0 {
			full = 1
		}
		c.memCycDep[s] = full
		ov := lat
		if s != memhier.SrcL1 {
			ov = uint64(float64(lat) * (1 - cfg.MemOverlap))
		}
		if ov == 0 {
			ov = 1
		}
		c.memCyc[s] = ov
	}
	for s := range c.memCyc {
		c.maxCyc = max(c.maxCyc, c.memCyc[s])
		c.maxCycDep = max(c.maxCycDep, c.memCycDep[s])
	}
	return c, nil
}

// PMU returns the core's performance monitoring unit.
func (c *Core) PMU() *PMU { return c.pmu }

// Hierarchy returns the attached memory hierarchy.
func (c *Core) Hierarchy() *memhier.Hierarchy { return c.hier }

// SetMemHook installs the per-memory-op observer (the PEBS tap). When set
// it is invoked for every retired memory operation and the sample gates are
// ignored; this is the straightforward reference path.
func (c *Core) SetMemHook(h MemOpHook) { c.memHook = h }

// SetGatedMemHook installs the countdown-gated observer. The hook only runs
// when a sample gate fires or the hook cycle passes (see SetSampleGate);
// the monitor re-arms the gates from inside the hook.
func (c *Core) SetGatedMemHook(h GatedMemOpHook) { c.gatedHook = h }

// SetSampleGate arms the gating state: loadOps (storeOps) is the number of
// retired loads (stores) until the gated hook fires with selected=true —
// pass GateNever for classes that are not sampled — and hookCycle forces a
// hook (selected=false unless a gate fires on the same op) at the first
// memory operation retiring at or after that cycle.
func (c *Core) SetSampleGate(loadOps, storeOps, hookCycle uint64) {
	c.loadGate = loadOps
	c.storeGate = storeOps
	c.hookCycle = hookCycle
}

// SampleGates returns the live countdown state (ops remaining per class and
// the armed hook cycle).
func (c *Core) SampleGates() (loadOps, storeOps, hookCycle uint64) {
	return c.loadGate, c.storeGate, c.hookCycle
}

// Cycles returns the elapsed core cycles.
func (c *Core) Cycles() uint64 { return c.cycles }

// NowNs returns the simulated wall-clock time in nanoseconds. It is only
// evaluated at monitoring events (samples, region boundaries, quantum
// hooks), never on the per-op path.
func (c *Core) NowNs() uint64 {
	return c.nsAt(c.cycles)
}

func (c *Core) nsAt(cycles uint64) uint64 {
	return uint64(float64(cycles) / c.cfg.FreqHz * 1e9)
}

// CycleForNs returns the smallest cycle count whose NowNs reaches ns. The
// monitor uses it to translate a quantum boundary into the integer cycle
// compare the per-op gate performs.
func (c *Core) CycleForNs(ns uint64) uint64 {
	est := uint64(float64(ns) / 1e9 * c.cfg.FreqHz)
	for est > 0 && c.nsAt(est-1) >= ns {
		est--
	}
	for c.nsAt(est) < ns {
		est++
	}
	return est
}

// FreqHz returns the nominal frequency.
func (c *Core) FreqHz() float64 { return c.cfg.FreqHz }

// advance moves the clock and informs the PMU.
func (c *Core) advance(cycles uint64) {
	c.cycles += cycles
	c.pmu.tick(cycles)
}

// Compute retires n non-memory, non-branch instructions.
func (c *Core) Compute(n uint64) {
	if n == 0 {
		return
	}
	c.pmu.count(CtrInstructions, n)
	c.fracCycles += float64(n) / c.cfg.ComputeIPC
	whole := uint64(c.fracCycles)
	if whole > 0 {
		c.fracCycles -= float64(whole)
		c.pmu.count(CtrCycles, whole)
		c.advance(whole)
	}
}

// Branch retires one branch instruction.
func (c *Core) Branch() {
	c.pmu.count(CtrInstructions, 1)
	c.pmu.count(CtrBranches, 1)
	c.fracCycles += 1 / c.cfg.ComputeIPC
	whole := uint64(c.fracCycles)
	if whole > 0 {
		c.fracCycles -= float64(whole)
		c.pmu.count(CtrCycles, whole)
		c.advance(whole)
	}
}

// memAccess implements Load, LoadDep and Store. dependent marks an access
// whose address or value feeds the next operation (a loop-carried
// dependency), which cannot be overlapped and stalls for the full latency.
// The per-op cost is one hierarchy access, one fused PMU update and two
// gate decrements; the monitor hook runs only when a gate fires.
//
//repro:noalloc
func (c *Core) memAccess(ip, addr uint64, size int, store, dependent bool) memhier.AccessResult {
	res := c.hier.Access(addr, size, store)
	// Effective stall, precomputed per source: L1 hits cost their full
	// (pipelined-small) latency; deeper sources are partially overlapped —
	// unless the access is part of a dependency chain, which serializes it.
	var cyc uint64
	if dependent {
		cyc = c.memCycDep[res.Source]
	} else {
		cyc = c.memCyc[res.Source]
	}
	c.pmu.countMem(store, res.Source, cyc)
	c.cycles += cyc
	c.pmu.tick(cyc)
	if c.memHook != nil {
		c.memHook(MemOp{
			IP: ip, Addr: addr, Size: size, Store: store,
			Latency: res.Latency, Source: res.Source, Cycle: c.cycles,
		})
		return res
	}
	var fire bool
	if store {
		c.storeGate--
		fire = c.storeGate == 0
	} else {
		c.loadGate--
		fire = c.loadGate == 0
	}
	if fire || c.cycles >= c.hookCycle {
		c.gateFired(ip, addr, size, store, res, fire)
	}
	return res
}

// gateFired dispatches a gated hook invocation (kept out of memAccess so
// the common path stays small enough to stay fast).
func (c *Core) gateFired(ip, addr uint64, size int, store bool, res memhier.AccessResult, fire bool) {
	if c.gatedHook == nil {
		// Nothing armed the gates on purpose: disarm so an (astronomically
		// unlikely) wrap cannot fire again soon.
		if fire {
			if store {
				c.storeGate = GateNever
			} else {
				c.loadGate = GateNever
			}
		}
		return
	}
	c.gatedHook(MemOp{
		IP: ip, Addr: addr, Size: size, Store: store,
		Latency: res.Latency, Source: res.Source, Cycle: c.cycles,
	})
}

// Load retires one load instruction at ip referencing addr.
func (c *Core) Load(ip, addr uint64, size int) memhier.AccessResult {
	return c.memAccess(ip, addr, size, false, false)
}

// LoadDep retires a load on a loop-carried dependency chain: its full
// latency stalls the pipeline (no overlap), modelling the serialized
// neighbour reads of a Gauss–Seidel sweep versus the independent gathers of
// SpMV — the reason the paper measures lower bandwidth in SYMGS than SpMV.
func (c *Core) LoadDep(ip, addr uint64, size int) memhier.AccessResult {
	return c.memAccess(ip, addr, size, false, true)
}

// Store retires one store instruction at ip referencing addr.
func (c *Core) Store(ip, addr uint64, size int) memhier.AccessResult {
	return c.memAccess(ip, addr, size, true, false)
}

// LineRun describes one batch of memory instructions at a single IP
// sweeping base, base+stride, ..., base+(count-1)*stride — the issue
// granularity of the streaming kernels (the STREAM triad arrays, SpMV
// value/column rows, the dense vector updates). Workloads emit LineRun
// batches; the core resolves each distinct cache line once through the
// hierarchy's run-probe API and charges the remaining same-line accesses
// in bulk, splitting a run wherever a sample gate or monitoring quantum
// must observe an operation precisely.
type LineRun struct {
	// IP is the instruction pointer shared by every access of the run.
	IP uint64
	// Base is the first accessed address.
	Base uint64
	// Stride is the address increment between accesses, in bytes.
	Stride int
	// Size is the access width in bytes.
	Size int
	// Count is the number of accesses.
	Count int
	// Store selects store semantics (write-back, write-allocate).
	Store bool
	// Dep marks a dependency-chained run: every access stalls for its full
	// latency (LoadDep semantics).
	Dep bool
}

// IssueRun retires one line run. It is semantically identical to Count
// individual Load/LoadDep/Store calls — same counters, cache state, stall
// cycles and samples.
func (c *Core) IssueRun(r LineRun) {
	c.stream(r.IP, r.Base, r.Stride, r.Size, r.Count, r.Store, r.Dep)
}

// IssueRuns retires a batch of line runs in order. Workloads use it to
// hand a whole inner-loop body (e.g. the triad's two load sweeps and one
// store sweep over a line) to the simulator in one call.
func (c *Core) IssueRuns(runs []LineRun) {
	for _, r := range runs {
		c.IssueRun(r)
	}
}

// LoadStream retires n loads at ip sweeping addresses base, base+stride,
// ..., base+(n-1)*stride. It is semantically identical to n Load calls —
// same counters, cache state, stall cycles and samples — but resolves each
// distinct cache line only once: the whole run is handed to the
// hierarchy's batched run-probe, splitting only where a sample gate or
// quantum hook must fire mid-run.
func (c *Core) LoadStream(ip, base uint64, stride, size, n int) {
	c.stream(ip, base, stride, size, n, false, false)
}

// LoadDepStream is LoadStream with LoadDep semantics: each element load is
// part of a dependency chain and stalls for its full latency.
func (c *Core) LoadDepStream(ip, base uint64, stride, size, n int) {
	c.stream(ip, base, stride, size, n, false, true)
}

// StoreStream is LoadStream for stores.
func (c *Core) StoreStream(ip, base uint64, stride, size, n int) {
	c.stream(ip, base, stride, size, n, true, false)
}

// stream is the line-run issue layer. The batched path bounds, up front,
// how many operations can retire without a monitoring event, issues that
// many through one memhier.AccessRun call (one line-resolving probe per
// distinct line, bulk L1 charges for the rest), and accounts the whole
// batch with a single fused PMU delta and a single clock advance. Any
// operation that may fire a sample gate or cross the hook cycle takes the
// precise per-op path, so sampling decisions, PEBS gap draws and monitor
// hooks happen on exactly the operations per-op issue would pick.
//
//repro:noalloc
func (c *Core) stream(ip, base uint64, stride, size, n int, store, dependent bool) {
	if n <= 0 {
		return
	}
	// The batched path requires: batched issue enabled, no per-op observer,
	// a PMU whose bulk accounting is exact, and a forward stride (the
	// kernels' element sweeps are all ascending).
	if c.cfg.PerOpStreams || c.memHook != nil || !c.pmu.bulkOK() || stride <= 0 {
		addr := base
		for i := 0; i < n; i++ {
			c.memAccess(ip, addr, size, store, dependent)
			addr += uint64(stride)
		}
		return
	}
	cycTab := &c.memCyc
	maxCyc := c.maxCyc
	if dependent {
		cycTab = &c.memCycDep
		maxCyc = c.maxCycDep
	}
	addr := base
	rem := uint64(n)
	for rem > 0 {
		// Batch size: every op before the next class-gate firing (the op on
		// which the countdown reaches zero must take the per-op path) ...
		k := rem
		gate := c.loadGate
		if store {
			gate = c.storeGate
		}
		if g := gate - 1; g < k {
			// gate == 0 wraps to 2^64-1 and imposes no bound, exactly like
			// the per-op path where decrementing a zero gate never fires.
			k = g
		}
		// ... and every op that cannot reach the hook cycle even at
		// worst-case cost. The bound re-tightens each iteration as the
		// clock advances, converging on per-op issue at the boundary.
		if c.hookCycle != ^uint64(0) {
			if c.cycles >= c.hookCycle {
				k = 0
			} else if safe := (c.hookCycle - c.cycles - 1) / maxCyc; safe < k {
				k = safe
			}
		}
		if k == 0 {
			// The next op may fire a gate or cross the hook cycle: precise
			// per-op path (the monitor hook re-arms the gates inside it).
			c.memAccess(ip, addr, size, store, dependent)
			addr += uint64(stride)
			rem--
			continue
		}
		var rr memhier.RunResult
		c.hier.AccessRun(addr, uint64(stride), k, store, &rr)
		cyc := rr.Bulk * cycTab[memhier.SrcL1]
		for s, lines := range rr.Lines {
			cyc += lines * cycTab[s]
		}
		c.pmu.countMemRun(store, k, &rr, cyc)
		c.cycles += cyc
		if store {
			c.storeGate -= k
		} else {
			c.loadGate -= k
		}
		addr += k * uint64(stride)
		rem -= k
	}
}

// Stall advances the clock by the given cycles without retiring
// instructions. The monitoring layer uses it to charge sampling overhead
// (PEBS buffer drains) to the simulated application, making the paper's
// low-overhead claim measurable.
func (c *Core) Stall(cycles uint64) {
	if cycles == 0 {
		return
	}
	c.pmu.count(CtrCycles, cycles)
	c.advance(cycles)
}

// IPC returns retired instructions per cycle so far (0 when idle).
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.pmu.True(CtrInstructions)) / float64(c.cycles)
}
