package cpu

import (
	"math"
	"testing"

	"repro/internal/memhier"
)

func newCore(t *testing.T) *Core {
	t.Helper()
	h, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	h, _ := memhier.New(memhier.DefaultConfig())
	bad := []Config{
		{FreqHz: 0, ComputeIPC: 1},
		{FreqHz: 1e9, ComputeIPC: 0},
		{FreqHz: 1e9, ComputeIPC: 1, MemOverlap: 1},
		{FreqHz: 1e9, ComputeIPC: 1, MemOverlap: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, h); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil hierarchy accepted")
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := CounterID(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || seen[n] {
			t.Errorf("counter %d name %q empty or duplicated", c, n)
		}
		seen[n] = true
	}
	if CounterID(99).String() != "CounterID(99)" {
		t.Error("unknown counter name")
	}
}

func TestComputeAccounting(t *testing.T) {
	c := newCore(t)
	c.Compute(1000)
	if got := c.PMU().True(CtrInstructions); got != 1000 {
		t.Errorf("instructions = %d, want 1000", got)
	}
	// IPC 2: 1000 instructions take 500 cycles.
	if c.Cycles() != 500 {
		t.Errorf("cycles = %d, want 500", c.Cycles())
	}
	if ipc := c.IPC(); math.Abs(ipc-2) > 1e-9 {
		t.Errorf("IPC = %g, want 2", ipc)
	}
}

func TestComputeFractionalAccumulation(t *testing.T) {
	c := newCore(t)
	// Single instructions at IPC 2 are half a cycle each; two of them must
	// advance the clock by exactly one cycle, not zero.
	c.Compute(1)
	c.Compute(1)
	if c.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1 (fractional accumulation)", c.Cycles())
	}
}

func TestBranchCountsAsInstruction(t *testing.T) {
	c := newCore(t)
	c.Branch()
	if c.PMU().True(CtrBranches) != 1 || c.PMU().True(CtrInstructions) != 1 {
		t.Error("branch must count as branch and instruction")
	}
}

func TestLoadStoreCounters(t *testing.T) {
	c := newCore(t)
	c.Load(0x400000, 0x1000, 8)  // cold: DRAM
	c.Load(0x400000, 0x1000, 8)  // L1 hit
	c.Store(0x400010, 0x1000, 8) // L1 hit
	p := c.PMU()
	if p.True(CtrLoads) != 2 || p.True(CtrStores) != 1 {
		t.Errorf("loads/stores = %d/%d", p.True(CtrLoads), p.True(CtrStores))
	}
	// The cold DRAM access misses all three levels.
	if p.True(CtrL1DMiss) != 1 || p.True(CtrL2Miss) != 1 || p.True(CtrL3Miss) != 1 {
		t.Errorf("miss counters = %d/%d/%d, want 1/1/1",
			p.True(CtrL1DMiss), p.True(CtrL2Miss), p.True(CtrL3Miss))
	}
	if p.True(CtrInstructions) != 3 {
		t.Errorf("instructions = %d, want 3", p.True(CtrInstructions))
	}
}

func TestMemOverlapReducesStall(t *testing.T) {
	h1, _ := memhier.New(memhier.DefaultConfig())
	h2, _ := memhier.New(memhier.DefaultConfig())
	serial, _ := New(Config{FreqHz: 2.5e9, ComputeIPC: 2, MemOverlap: 0}, h1)
	overlap, _ := New(Config{FreqHz: 2.5e9, ComputeIPC: 2, MemOverlap: 0.8}, h2)
	for i := uint64(0); i < 10000; i++ {
		serial.Load(0x400000, i*64, 8) // always new line: DRAM-heavy
		overlap.Load(0x400000, i*64, 8)
	}
	if overlap.Cycles() >= serial.Cycles() {
		t.Errorf("overlap %d cycles not below serial %d", overlap.Cycles(), serial.Cycles())
	}
}

func TestMemHookObservesOps(t *testing.T) {
	c := newCore(t)
	var ops []MemOp
	c.SetMemHook(func(op MemOp) { ops = append(ops, op) })
	c.Load(0x401000, 0xabc0, 8)
	c.Store(0x401010, 0xabc8, 8)
	if len(ops) != 2 {
		t.Fatalf("hook saw %d ops, want 2", len(ops))
	}
	if ops[0].Store || !ops[1].Store {
		t.Error("store flag wrong")
	}
	if ops[0].Addr != 0xabc0 || ops[0].IP != 0x401000 {
		t.Errorf("op fields = %+v", ops[0])
	}
	if ops[0].Source != memhier.SrcDRAM {
		t.Errorf("cold load source = %v", ops[0].Source)
	}
	if ops[1].Source != memhier.SrcL1 {
		t.Errorf("same-line store source = %v (expected L1 after fill)", ops[1].Source)
	}
	if ops[0].Latency == 0 || ops[1].Cycle <= ops[0].Cycle {
		t.Error("latency/cycle fields not populated")
	}
}

func TestNowNs(t *testing.T) {
	c := newCore(t)
	c.Compute(5_000_000) // 2.5M cycles at 2.5GHz = 1ms
	if got := c.NowNs(); got != 1_000_000 {
		t.Errorf("NowNs = %d, want 1000000", got)
	}
	if c.FreqHz() != 2.5e9 {
		t.Errorf("FreqHz = %g", c.FreqHz())
	}
}

func TestPMUProgramValidation(t *testing.T) {
	p := NewPMU()
	if err := p.Program(nil, 0); err == nil {
		t.Error("empty groups accepted")
	}
	if err := p.Program([][]CounterID{{CtrLoads}, {CtrStores}}, 0); err == nil {
		t.Error("multiplexing without quantum accepted")
	}
	if err := p.Program([][]CounterID{{CtrInstructions}}, 0); err == nil {
		t.Error("fixed counter in group accepted")
	}
	if err := p.Program([][]CounterID{{CtrLoads}, {CtrLoads}}, 100); err == nil {
		t.Error("duplicate counter accepted")
	}
	if err := p.Program([][]CounterID{{CounterID(77)}}, 0); err == nil {
		t.Error("invalid counter accepted")
	}
	if err := p.Program([][]CounterID{{CtrLoads, CtrStores}}, 0); err != nil {
		t.Errorf("valid single group rejected: %v", err)
	}
	if len(p.Groups()) != 1 {
		t.Error("Groups() wrong")
	}
}

// TestPMUProgramPreservesCounts pins two Program behaviours: switching from
// the never-multiplexed fast path to a multiplexed config must fold the
// fast path's skipped bookkeeping forward (pre-mux counts stay readable),
// and a failed Program must leave the old programming fully readable.
func TestPMUProgramPreservesCounts(t *testing.T) {
	p := NewPMU()
	p.count(CtrLoads, 100)
	p.tick(50)
	if err := p.Program([][]CounterID{{CtrLoads}, {CtrStores}}, 10); err != nil {
		t.Fatal(err)
	}
	if got := p.Read(CtrLoads); got != 100 {
		t.Errorf("pre-mux loads lost across Program: Read = %d, want 100", got)
	}

	p2 := NewPMU()
	p2.count(CtrStores, 5)
	if err := p2.Program([][]CounterID{{CounterID(77)}}, 0); err == nil {
		t.Fatal("invalid counter accepted")
	}
	if got := p2.Read(CtrStores); got != 5 {
		t.Errorf("failed Program corrupted state: Read(stores) = %d, want 5", got)
	}
}

func TestPMUNoMultiplexingExact(t *testing.T) {
	c := newCore(t)
	for i := uint64(0); i < 1000; i++ {
		c.Load(0x400000, i*8, 8)
	}
	p := c.PMU()
	for ctr := CounterID(0); ctr < NumCounters; ctr++ {
		if p.Read(ctr) != p.True(ctr) {
			t.Errorf("%v: Read %d != True %d without multiplexing",
				ctr, p.Read(ctr), p.True(ctr))
		}
	}
}

func TestPMUMultiplexedEstimate(t *testing.T) {
	c := newCore(t)
	// Two groups: loads vs stores, rotating every 1000 cycles.
	err := c.PMU().Program([][]CounterID{{CtrLoads}, {CtrStores}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// A homogeneous alternating stream: estimates should land close to truth.
	for i := uint64(0); i < 200000; i++ {
		if i%2 == 0 {
			c.Load(0x400000, (i%4096)*8, 8)
		} else {
			c.Store(0x400000, (i%4096)*8, 8)
		}
	}
	p := c.PMU()
	for _, ctr := range []CounterID{CtrLoads, CtrStores} {
		truth := float64(p.True(ctr))
		est := float64(p.Read(ctr))
		if math.Abs(est-truth)/truth > 0.1 {
			t.Errorf("%v: estimate %g vs truth %g (>10%% error on homogeneous stream)",
				ctr, est, truth)
		}
	}
	// Unprogrammed counter reads zero.
	if p.Read(CtrBranches) != 0 {
		t.Error("unprogrammed counter must read 0")
	}
	// Fixed counters are unaffected by multiplexing.
	if p.Read(CtrInstructions) != p.True(CtrInstructions) {
		t.Error("fixed counter must read exact under multiplexing")
	}
}

func TestPMUSlotRotation(t *testing.T) {
	p := NewPMU()
	if err := p.Program([][]CounterID{{CtrLoads}, {CtrStores}}, 100); err != nil {
		t.Fatal(err)
	}
	if p.ActiveGroup() != 0 {
		t.Error("initial slot not 0")
	}
	p.tick(100)
	if p.ActiveGroup() != 1 {
		t.Errorf("after one quantum slot = %d, want 1", p.ActiveGroup())
	}
	p.tick(250) // wraps 2.5 quanta: 1 -> 0 -> 1, half quantum into slot 1...
	// 250 cycles = 2 full quanta (to slot 0 then 1) + 50 residue.
	if p.ActiveGroup() != 1 {
		t.Errorf("slot = %d after 350 total cycles, want 1", p.ActiveGroup())
	}
	// Counting attribution: only active-slot events become visible.
	p.count(CtrStores, 5) // stores group is active
	p.count(CtrLoads, 3)  // loads group inactive
	if p.visible[CtrStores] != 5 || p.visible[CtrLoads] != 0 {
		t.Errorf("visible = loads %d stores %d", p.visible[CtrLoads], p.visible[CtrStores])
	}
	if p.True(CtrLoads) != 3 {
		t.Error("raw count lost")
	}
}

func TestPMUSnapshots(t *testing.T) {
	c := newCore(t)
	c.Compute(100)
	c.Load(0x400000, 0, 8)
	s := c.PMU().Snapshot()
	ts := c.PMU().TrueSnapshot()
	if s[CtrInstructions] != 101 || ts[CtrInstructions] != 101 {
		t.Errorf("snapshot instructions = %d/%d", s[CtrInstructions], ts[CtrInstructions])
	}
	if s[CtrLoads] != 1 {
		t.Errorf("snapshot loads = %d", s[CtrLoads])
	}
}
