package cpu

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/memhier"
)

// These tests pin the line-run issue layer's monitoring split: batched
// issue must fire the gated hook on exactly the operations per-op issue
// picks — same op, same cycle, same re-armed countdowns — across
// randomized strides, run lengths and gate phases, including countdowns
// and quantum boundaries landing exactly on a run's first, interior or
// last operation.

// runScript replays a seeded sequence of line runs against a fresh core.
// The gated hook records every firing and re-arms the gates from its own
// seeded stream, so the scripted gate phases advance identically on both
// issue paths exactly when the firing sequences match — which is the
// property under test.
func runScript(t *testing.T, perOp bool, runs []LineRun, initLoad, initStore, quantum uint64, seed int64) ([]MemOp, *Core) {
	t.Helper()
	hier, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PerOpStreams = perOp
	c, err := New(cfg, hier)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var fired []MemOp
	c.SetGatedMemHook(func(op MemOp) {
		fired = append(fired, op)
		hc := ^uint64(0)
		if quantum > 0 {
			hc = op.Cycle + quantum
		}
		c.SetSampleGate(1+uint64(rng.Intn(40)), 1+uint64(rng.Intn(40)), hc)
	})
	hc := ^uint64(0)
	if quantum > 0 {
		hc = quantum
	}
	c.SetSampleGate(initLoad, initStore, hc)
	for _, r := range runs {
		c.IssueRun(r)
	}
	return fired, c
}

func assertCoresIdentical(t *testing.T, fast, ref *Core) {
	t.Helper()
	if f, r := fast.Cycles(), ref.Cycles(); f != r {
		t.Errorf("cycles: batched %d, per-op %d", f, r)
	}
	if f, r := fast.PMU().TrueSnapshot(), ref.PMU().TrueSnapshot(); f != r {
		t.Errorf("PMU totals: batched %v, per-op %v", f, r)
	}
	fl, fs, fh := fast.SampleGates()
	rl, rs, rh := ref.SampleGates()
	if fl != rl || fs != rs || fh != rh {
		t.Errorf("gates: batched (%d,%d,%d), per-op (%d,%d,%d)", fl, fs, fh, rl, rs, rh)
	}
	for i := 0; i < fast.Hierarchy().Levels(); i++ {
		if f, r := fast.Hierarchy().LevelStats(i), ref.Hierarchy().LevelStats(i); f != r {
			t.Errorf("level %d stats: batched %+v, per-op %+v", i, f, r)
		}
	}
	if f, r := fast.Hierarchy().DRAMAccesses(), ref.Hierarchy().DRAMAccesses(); f != r {
		t.Errorf("DRAM: batched %d, per-op %d", f, r)
	}
}

// randomRuns builds a seeded mix of load/store/dependent runs with strides
// from sub-element to multi-line.
func randomRuns(rng *rand.Rand, n int) []LineRun {
	strides := []int{1, 3, 4, 8, 12, 16, 56, 64, 72, 128}
	runs := make([]LineRun, n)
	for i := range runs {
		runs[i] = LineRun{
			IP:     0x400000 + uint64(rng.Intn(8))*16,
			Base:   uint64(rng.Intn(1 << 22)),
			Stride: strides[rng.Intn(len(strides))],
			Size:   8,
			Count:  1 + rng.Intn(50),
			Store:  rng.Intn(3) == 0,
			Dep:    rng.Intn(4) == 0,
		}
	}
	return runs
}

func TestLineRunSplitPropertyRandomGates(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		runs := randomRuns(rng, 60)
		initL := 1 + uint64(rng.Intn(30))
		initS := 1 + uint64(rng.Intn(30))
		quantum := uint64(0)
		if seed%2 == 0 {
			// Half the seeds also exercise the hook-cycle (mux quantum)
			// boundary, with quanta small enough to land inside runs.
			quantum = 50 + uint64(rng.Intn(2000))
		}
		fastFired, fastCore := runScript(t, false, runs, initL, initS, quantum, seed*977)
		refFired, refCore := runScript(t, true, runs, initL, initS, quantum, seed*977)
		if !reflect.DeepEqual(fastFired, refFired) {
			t.Fatalf("seed %d: fired ops diverge: batched %d ops, per-op %d ops\nbatched: %+v\nper-op:  %+v",
				seed, len(fastFired), len(refFired), trunc(fastFired), trunc(refFired))
		}
		assertCoresIdentical(t, fastCore, refCore)
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

func trunc(ops []MemOp) []MemOp {
	if len(ops) > 6 {
		return ops[:6]
	}
	return ops
}

// TestLineRunSplitExactBoundaries crafts gates that fire exactly on a
// run's line-crossing, first and last operations, and a hook cycle equal
// to the precise retirement cycle of a mid-run op — the boundary cases the
// batched splitter must not bulk past.
func TestLineRunSplitExactBoundaries(t *testing.T) {
	runs := []LineRun{
		{IP: 0x400000, Base: 0x10004, Stride: 4, Size: 4, Count: 37},            // misaligned head, crosses lines
		{IP: 0x400010, Base: 0x20000, Stride: 8, Size: 8, Count: 24},            // three exact lines
		{IP: 0x400020, Base: 0x30000, Stride: 8, Size: 8, Count: 16, Dep: true}, // dependent
		{IP: 0x400030, Base: 0x20000, Stride: 8, Size: 8, Count: 8, Store: true},
	}
	// Reference pass with a per-op observer to learn every op's cycle and
	// line-crossing positions (the observer path issues per-op and ignores
	// the gates, so it perturbs nothing).
	hier, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), hier)
	if err != nil {
		t.Fatal(err)
	}
	var cycles []uint64
	var crossings []int // op index of each line-resolving access
	lastLine := ^uint64(0)
	i := 0
	c.SetMemHook(func(op MemOp) {
		cycles = append(cycles, op.Cycle)
		if line := op.Addr &^ 63; line != lastLine {
			crossings = append(crossings, i)
			lastLine = line
		}
		i++
	})
	for _, r := range runs {
		c.IssueRun(r)
	}
	if len(crossings) < 4 {
		t.Fatalf("script too small: %d crossings", len(crossings))
	}

	// Gate phases that land exactly on interesting ops: the first op, a
	// line-crossing op, the op before and after a crossing, the last op.
	targets := []uint64{
		1,
		uint64(crossings[2] + 1),
		uint64(crossings[2]),
		uint64(crossings[2] + 2),
		uint64(len(cycles)),
	}
	for _, g := range targets {
		fastFired, fastCore := runScript(t, false, runs, g, g, 0, 7)
		refFired, refCore := runScript(t, true, runs, g, g, 0, 7)
		if !reflect.DeepEqual(fastFired, refFired) {
			t.Fatalf("gate=%d: fired ops diverge (batched %d, per-op %d)", g, len(fastFired), len(refFired))
		}
		assertCoresIdentical(t, fastCore, refCore)
	}
	// Hook cycles equal to exact retirement cycles around a crossing: the
	// first op at or past the boundary must take the per-op path.
	for _, idx := range []int{crossings[1], crossings[1] - 1, crossings[1] + 1, len(cycles) - 1} {
		hc := cycles[idx]
		fastFired, fastCore := runScriptWithHook(t, false, runs, hc)
		refFired, refCore := runScriptWithHook(t, true, runs, hc)
		if !reflect.DeepEqual(fastFired, refFired) {
			t.Fatalf("hookCycle=%d: fired ops diverge (batched %d, per-op %d)", hc, len(fastFired), len(refFired))
		}
		assertCoresIdentical(t, fastCore, refCore)
	}
}

// runScriptWithHook arms only the hook cycle (no countdown sampling); each
// firing re-arms the hook one full-latency DRAM access later, so several
// boundary ops are exercised per script.
func runScriptWithHook(t *testing.T, perOp bool, runs []LineRun, hookCycle uint64) ([]MemOp, *Core) {
	return runScriptWithHookOverlap(t, perOp, runs, hookCycle, DefaultConfig().MemOverlap)
}

func runScriptWithHookOverlap(t *testing.T, perOp bool, runs []LineRun, hookCycle uint64, overlap float64) ([]MemOp, *Core) {
	t.Helper()
	hier, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PerOpStreams = perOp
	cfg.MemOverlap = overlap
	c, err := New(cfg, hier)
	if err != nil {
		t.Fatal(err)
	}
	var fired []MemOp
	c.SetGatedMemHook(func(op MemOp) {
		fired = append(fired, op)
		c.SetSampleGate(GateNever, GateNever, op.Cycle+230)
	})
	c.SetSampleGate(GateNever, GateNever, hookCycle)
	for _, r := range runs {
		c.IssueRun(r)
	}
	return fired, c
}

// TestLineRunHookBoundHighOverlap pins the splitter's worst-case per-op
// cost: at high MemOverlap the overlapped DRAM stall drops below the
// unoverlapped L1 hit cost, so bounding a batch by the DRAM cost would let
// an L1-resident run bulk straight past the armed hook cycle and fire the
// quantum hook on a later op than the per-op reference path (a real bug
// this test caught: maxCyc must be the table maximum, not cycTab[DRAM]).
func TestLineRunHookBoundHighOverlap(t *testing.T) {
	runs := []LineRun{
		{IP: 0x400000, Base: 0x1000, Stride: 8, Size: 8, Count: 64},
		{IP: 0x400000, Base: 0x1000, Stride: 8, Size: 8, Count: 64}, // re-sweep: all L1 hits
		{IP: 0x400000, Base: 0x1000, Stride: 8, Size: 8, Count: 64},
	}
	for _, hc := range []uint64{40, 100, 277, 500} {
		for _, overlap := range []float64{0.9, 0.99} {
			fastFired, fastCore := runScriptWithHookOverlap(t, false, runs, hc, overlap)
			refFired, refCore := runScriptWithHookOverlap(t, true, runs, hc, overlap)
			if !reflect.DeepEqual(fastFired, refFired) {
				t.Fatalf("overlap=%v hookCycle=%d: fired ops diverge (batched %d, per-op %d)",
					overlap, hc, len(fastFired), len(refFired))
			}
			assertCoresIdentical(t, fastCore, refCore)
		}
	}
}
