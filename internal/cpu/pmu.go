package cpu

import (
	"fmt"

	"repro/internal/memhier"
)

// PMU models a performance monitoring unit with two fixed counters
// (instructions, cycles) and a limited set of programmable counter slots.
// When more programmable events are requested than slots exist, the PMU
// time-multiplexes event *groups* on a cycle quantum, and Read returns
// linearly scaled estimates — the same mechanism (and the same estimation
// error) Extrae inherits from PAPI multiplexing. The True method exposes
// ground-truth counts so tests and ablations can quantify multiplexing
// error, something impossible on real hardware.
type PMU struct {
	raw     [NumCounters]uint64 // ground-truth event counts
	visible [NumCounters]uint64 // counts while the event's group was active
	active  [NumCounters]uint64 // cycles during which the event was counting
	total   uint64              // total cycles observed by the PMU

	groups  [][]CounterID
	slot    int              // index of the active group
	quantum uint64           // cycles per multiplexing slot (0 = no multiplexing)
	slotAge uint64           // cycles consumed in the current slot
	inGroup [NumCounters]int // group index per counter, -1 if unprogrammed

	// everMux is set once a multiplexed configuration has been programmed.
	// While false (the default single-group setup), every programmed
	// counter is always counting, so the per-op hot path can skip the
	// visible/active bookkeeping entirely: Read returns raw, tick is a
	// single addition, and countMem/countMemRun touch only raw counters.
	// Program folds the skipped bookkeeping forward before multiplexing
	// starts, so a later mux phase observes the same state as if the slow
	// path had run from the beginning.
	everMux bool
}

// NewPMU creates a PMU with all programmable events in one always-on group
// (no multiplexing) — the configuration used when hardware has enough
// slots. CtrRemoteDRAM is left unprogrammed: it only exists on NUMA-routed
// cores, which enable it via EnableRemoteDRAM, and the monitoring layer
// emits only programmed counters, so the historical counter set (and trace
// byte stream) is preserved everywhere else.
func NewPMU() *PMU {
	p := &PMU{}
	// Ignore the error: the default single-group config is always valid.
	if err := p.Program([][]CounterID{defaultGroup(false)}, 0); err != nil {
		panic(err)
	}
	return p
}

// defaultGroup returns the always-on programmable counter set, with or
// without the NUMA remote-DRAM event.
func defaultGroup(remote bool) []CounterID {
	all := make([]CounterID, 0, NumCounters)
	for c := CounterID(0); c < NumCounters; c++ {
		if c.fixed() || (c == CtrRemoteDRAM && !remote) {
			continue
		}
		all = append(all, c)
	}
	return all
}

// EnableRemoteDRAM reprograms the default single always-on group with
// CtrRemoteDRAM included. Cores attached to a NUMA-routed hierarchy call
// it at construction, before any multiplexed programming.
func (p *PMU) EnableRemoteDRAM() error {
	return p.Program([][]CounterID{defaultGroup(true)}, 0)
}

// Programmed reports whether counter c is currently programmed (fixed
// counters always are). The monitoring layer emits trace pairs and labels
// only for programmed counters.
func (p *PMU) Programmed(c CounterID) bool {
	if c < 0 || c >= NumCounters {
		return false
	}
	return c.fixed() || p.inGroup[c] != -1
}

// Program installs multiplexing groups. quantum is the number of cycles each
// group counts before rotating; it must be positive when more than one group
// is given. Fixed counters may not appear in groups (they always count).
func (p *PMU) Program(groups [][]CounterID, quantum uint64) error {
	if len(groups) == 0 {
		return fmt.Errorf("cpu: PMU needs at least one counter group")
	}
	if len(groups) > 1 && quantum == 0 {
		return fmt.Errorf("cpu: multiplexing %d groups needs a positive quantum", len(groups))
	}
	// Validate into a fresh map first: on error the old programming must
	// survive untouched (p.inGroup is not modified until validation passes —
	// the fast-path catch-up below also still needs the old assignments).
	var inGroup [NumCounters]int
	for i := range inGroup {
		inGroup[i] = -1
	}
	for gi, g := range groups {
		for _, c := range g {
			if c < 0 || c >= NumCounters {
				return fmt.Errorf("cpu: invalid counter %d in group %d", c, gi)
			}
			if c.fixed() {
				return fmt.Errorf("cpu: fixed counter %v cannot be multiplexed", c)
			}
			if inGroup[c] != -1 {
				return fmt.Errorf("cpu: counter %v in multiple groups", c)
			}
			inGroup[c] = gi
		}
	}
	if !p.everMux {
		// Catch up the bookkeeping the fast path skipped: under the
		// single-group regime every programmed counter was counting the
		// whole time.
		for c := CounterID(0); c < NumCounters; c++ {
			if !c.fixed() && p.inGroup[c] != -1 {
				p.visible[c] = p.raw[c]
				p.active[c] = p.total
			}
		}
	}
	p.inGroup = inGroup
	p.groups = groups
	p.quantum = quantum
	p.slot = 0
	p.slotAge = 0
	if len(groups) > 1 && quantum > 0 {
		p.everMux = true
	}
	return nil
}

// Groups returns the programmed groups (for inspection).
func (p *PMU) Groups() [][]CounterID { return p.groups }

// ActiveGroup returns the index of the currently counting group.
func (p *PMU) ActiveGroup() int { return p.slot }

// counting reports whether counter c is currently accumulating.
func (p *PMU) counting(c CounterID) bool {
	if c.fixed() {
		return true
	}
	g := p.inGroup[c]
	return g == p.slot
}

// count records n occurrences of event c.
func (p *PMU) count(c CounterID, n uint64) {
	p.raw[c] += n
	if p.counting(c) {
		p.visible[c] += n
	}
}

// countMem records all counter updates of one retired memory operation in a
// single call: the instruction, the load/store event, the miss events
// implied by the data source, and the cycle cost. On the (default)
// never-multiplexed configuration this is a handful of plain additions.
//
//repro:noalloc
func (p *PMU) countMem(store bool, src memhier.DataSource, cycles uint64) {
	if !p.everMux {
		p.raw[CtrInstructions]++
		p.raw[CtrCycles] += cycles
		if store {
			p.raw[CtrStores]++
		} else {
			p.raw[CtrLoads]++
		}
		switch src {
		case memhier.SrcL2:
			p.raw[CtrL1DMiss]++
		case memhier.SrcL3:
			p.raw[CtrL1DMiss]++
			p.raw[CtrL2Miss]++
		case memhier.SrcDRAM:
			p.raw[CtrL1DMiss]++
			p.raw[CtrL2Miss]++
			p.raw[CtrL3Miss]++
		case memhier.SrcDRAMRemote:
			p.raw[CtrL1DMiss]++
			p.raw[CtrL2Miss]++
			p.raw[CtrL3Miss]++
			p.raw[CtrRemoteDRAM]++
		}
		return
	}
	p.count(CtrInstructions, 1)
	p.count(CtrCycles, cycles)
	if store {
		p.count(CtrStores, 1)
	} else {
		p.count(CtrLoads, 1)
	}
	switch src {
	case memhier.SrcL2:
		p.count(CtrL1DMiss, 1)
	case memhier.SrcL3:
		p.count(CtrL1DMiss, 1)
		p.count(CtrL2Miss, 1)
	case memhier.SrcDRAM:
		p.count(CtrL1DMiss, 1)
		p.count(CtrL2Miss, 1)
		p.count(CtrL3Miss, 1)
	case memhier.SrcDRAMRemote:
		p.count(CtrL1DMiss, 1)
		p.count(CtrL2Miss, 1)
		p.count(CtrL3Miss, 1)
		p.count(CtrRemoteDRAM, 1)
	}
}

// countMemRun records one batched line run: n same-class memory operations
// of which rr.Lines were line-resolving probes (each carrying the miss
// events its data source implies) and rr.Bulk were same-line L1 hits,
// costing cycles in total. It bypasses the visible/active bookkeeping, so
// it is only exact while no multiplexing has ever been programmed
// (bulkOK); Core.stream degrades to per-op issue otherwise.
//
//repro:noalloc
func (p *PMU) countMemRun(store bool, n uint64, rr *memhier.RunResult, cycles uint64) {
	p.raw[CtrInstructions] += n
	p.raw[CtrCycles] += cycles
	if store {
		p.raw[CtrStores] += n
	} else {
		p.raw[CtrLoads] += n
	}
	l2 := rr.Lines[memhier.SrcL2]
	l3 := rr.Lines[memhier.SrcL3]
	dr := rr.Lines[memhier.SrcDRAM]
	rem := rr.Lines[memhier.SrcDRAMRemote]
	p.raw[CtrL1DMiss] += l2 + l3 + dr + rem
	p.raw[CtrL2Miss] += l3 + dr + rem
	p.raw[CtrL3Miss] += dr + rem
	p.raw[CtrRemoteDRAM] += rem
	p.total += cycles
}

// bulkOK reports whether bulk (non-per-op) accounting is exact: true until
// a multiplexed configuration is programmed.
func (p *PMU) bulkOK() bool { return !p.everMux }

// tick advances the PMU clock by the given cycles, rotating multiplexing
// slots as quanta expire and charging active time to counting events.
func (p *PMU) tick(cycles uint64) {
	if !p.everMux {
		p.total += cycles
		return
	}
	for cycles > 0 {
		step := cycles
		if p.quantum > 0 && len(p.groups) > 1 {
			remain := p.quantum - p.slotAge
			if step > remain {
				step = remain
			}
		}
		p.total += step
		for c := CounterID(0); c < NumCounters; c++ {
			if p.counting(c) {
				p.active[c] += step
			}
		}
		cycles -= step
		if p.quantum > 0 && len(p.groups) > 1 {
			p.slotAge += step
			if p.slotAge >= p.quantum {
				p.slotAge = 0
				p.slot = (p.slot + 1) % len(p.groups)
			}
		}
	}
}

// True returns the ground-truth count of event c (unavailable on real
// hardware under multiplexing; exposed for validation).
func (p *PMU) True(c CounterID) uint64 { return p.raw[c] }

// Read returns the PMU's estimate of event c: the visible count scaled by
// total/active time, which is exact without multiplexing and a linear
// extrapolation with it.
func (p *PMU) Read(c CounterID) uint64 {
	if c.fixed() {
		return p.raw[c]
	}
	if p.inGroup[c] == -1 {
		return 0 // unprogrammed event
	}
	if !p.everMux {
		// Never multiplexed: every programmed counter counted all along.
		return p.raw[c]
	}
	if p.active[c] == 0 {
		return 0
	}
	if p.active[c] == p.total {
		return p.visible[c]
	}
	return uint64(float64(p.visible[c]) * float64(p.total) / float64(p.active[c]))
}

// Snapshot reads all counters at once (estimates under multiplexing).
func (p *PMU) Snapshot() [NumCounters]uint64 {
	var s [NumCounters]uint64
	for c := CounterID(0); c < NumCounters; c++ {
		s[c] = p.Read(c)
	}
	return s
}

// TrueSnapshot reads ground-truth values of all counters.
func (p *PMU) TrueSnapshot() [NumCounters]uint64 { return p.raw }
