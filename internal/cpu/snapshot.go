package cpu

import "fmt"

// Checkpoint support. A restore target is always rebuilt from the same
// configuration first (which reinstates the counter programming — groups,
// quantum, inGroup, everMux — via NewPMU / EnableRemoteDRAM / Program), so
// the snapshot carries only the mutable counting state and the multiplexing
// clock, and restore validates the snapshot against the rebuilt programming.

// PMUState is the serializable mutable state of one PMU.
type PMUState struct {
	Raw     [NumCounters]uint64
	Visible [NumCounters]uint64
	Active  [NumCounters]uint64
	Total   uint64
	Slot    int
	SlotAge uint64
}

// State copies the PMU's mutable counting state.
func (p *PMU) State() PMUState {
	return PMUState{
		Raw:     p.raw,
		Visible: p.visible,
		Active:  p.active,
		Total:   p.total,
		Slot:    p.slot,
		SlotAge: p.slotAge,
	}
}

// RestoreState overwrites the mutable counting state of a PMU that has been
// reprogrammed identically to the snapshotted one.
func (p *PMU) RestoreState(st PMUState) error {
	if st.Slot < 0 || st.Slot >= len(p.groups) {
		return fmt.Errorf("cpu: snapshot slot %d out of range for %d groups", st.Slot, len(p.groups))
	}
	if p.quantum > 0 && st.SlotAge >= p.quantum {
		return fmt.Errorf("cpu: snapshot slot age %d exceeds quantum %d", st.SlotAge, p.quantum)
	}
	p.raw = st.Raw
	p.visible = st.Visible
	p.active = st.Active
	p.total = st.Total
	p.slot = st.Slot
	p.slotAge = st.SlotAge
	return nil
}

// CoreState is the serializable mutable state of one core: its clock and
// the PEBS sampling gates. The latency tables are config-derived.
type CoreState struct {
	Cycles     uint64
	FracCycles float64
	LoadGate   uint64
	StoreGate  uint64
	HookCycle  uint64
	PMU        PMUState
}

// State copies the core's mutable state (clock, sampling gates, PMU).
func (c *Core) State() CoreState {
	return CoreState{
		Cycles:     c.cycles,
		FracCycles: c.fracCycles,
		LoadGate:   c.loadGate,
		StoreGate:  c.storeGate,
		HookCycle:  c.hookCycle,
		PMU:        c.pmu.State(),
	}
}

// RestoreState overwrites the core's mutable state from a snapshot taken on
// an identically configured core.
func (c *Core) RestoreState(st CoreState) error {
	if err := c.pmu.RestoreState(st.PMU); err != nil {
		return err
	}
	c.cycles = st.Cycles
	c.fracCycles = st.FracCycles
	c.loadGate = st.LoadGate
	c.storeGate = st.StoreGate
	c.hookCycle = st.HookCycle
	return nil
}
