// Package extrae implements the monitoring runtime: the simulated
// counterpart of BSC's Extrae tracing library with the paper's memory
// extensions. A Monitor wires together
//
//   - the simulated core's per-memory-op hook → the PEBS engine,
//   - the PEBS drain → data-object resolution and trace emission,
//   - allocator hooks → the data-object registry plus allocation events,
//   - region (user-function) instrumentation with hardware-counter
//     snapshots at every boundary and at every sample,
//   - PEBS event multiplexing: alternating load and store sampling on a
//     time quantum so one run captures both (avoiding the two-run/ASLR
//     problem the paper calls out), and
//   - the allocation-grouping instrumentation API used to wrap HPCG's many
//     small allocations into two logical objects.
package extrae

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/objects"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/trace"
)

// Config parameterizes a Monitor.
type Config struct {
	// PEBS configures the sampling engine.
	PEBS pebs.Config
	// MuxQuantumNs alternates the PEBS engine between load-only and
	// store-only sampling every quantum (0 disables multiplexing and the
	// engine samples whatever PEBS.Events selects throughout).
	MuxQuantumNs uint64
	// MinTrackSize is the object registry's individual-allocation tracking
	// threshold.
	MinTrackSize uint64
	// DrainOverheadCycles charges the core for each PEBS buffer drain,
	// modelling the sampling interrupt cost.
	DrainOverheadCycles uint64
	// PerOpObserve selects the straightforward reference path: the monitor
	// hooks every retired memory operation and runs the engine's per-op
	// countdown, exactly like real PEBS observed through a per-op tap. The
	// default (false) inverts the control flow: the countdowns are exported
	// to the core's sample gates and the monitor only runs when a sample
	// fires or a multiplexing quantum expires. Both paths must produce
	// identical traces; equivalence tests run them against each other.
	PerOpObserve bool
	// Task and Thread identify the emitting Paraver object in trace records
	// (1-based; 0 defaults to 1). A Machine assigns one thread id per
	// simulated core so the merged trace keeps per-thread streams apart.
	Task, Thread int
	// Registry, when non-nil, is a shared data-object registry used instead
	// of a monitor-private one — the Machine's monitors all resolve samples
	// against the same object table. The binary scan is skipped (the
	// registry's creator performed it); the registry must be safe for
	// concurrent Record calls.
	Registry *objects.Registry
	// DisableAllocHooks leaves the address space's allocation hooks alone.
	// In a Machine only the primary monitor instruments the allocator
	// (setup is single-threaded); secondary monitors set this so the last
	// monitor constructed does not steal the hooks.
	DisableAllocHooks bool
}

// DefaultConfig returns the paper-like monitoring setup: default PEBS
// configuration with load/store multiplexing at 1 ms quanta, a 512-byte
// tracking threshold (HPCG's row allocations fall below it), and a small
// drain cost.
func DefaultConfig() Config {
	return Config{
		PEBS:                pebs.DefaultConfig(),
		MuxQuantumNs:        1_000_000,
		MinTrackSize:        512,
		DrainOverheadCycles: 2000,
	}
}

// Region identifies an instrumented code region (user function).
type Region int

// Monitor is the per-thread monitoring runtime. One Monitor is driven by
// one simulated hardware thread at a time (the paper's analysis is
// likewise per-thread); a Machine builds one Monitor per core, each
// emitting its own trace stream under its own thread id, optionally
// sharing one object registry.
type Monitor struct {
	cfg    Config
	core   *cpu.Core
	bin    *prog.Binary
	as     *prog.AddressSpace
	stacks *prog.StackTable
	engine *pebs.Engine
	reg    *objects.Registry

	task, thread int

	records []trace.Record
	labels  *trace.Labels

	regionNames []string
	regionStack []Region

	callStack    prog.CallStack
	curStackID   uint32
	stackDirty   bool
	pendingSnaps [][cpu.NumCounters]uint64

	muxNext  uint64
	enabled  bool
	started  bool
	finished bool

	// Countdown-gated state (when !cfg.PerOpObserve). loadRem/storeRem are
	// the authoritative per-class countdowns: armed into the core's sample
	// gates while the class is in the event mask, frozen here while it is
	// masked out. lastLoads/lastStores checkpoint the core's true
	// load/store counters so Eligible accrues arithmetically per
	// constant-mask span instead of per op.
	gated      bool
	loadRem    uint64
	storeRem   uint64
	lastLoads  uint64
	lastStores uint64
}

// New builds a monitor around a core, binary image and address space. The
// monitor installs itself as the core's memory hook and as the address
// space's allocation hooks.
func New(cfg Config, core *cpu.Core, bin *prog.Binary, as *prog.AddressSpace) (*Monitor, error) {
	if core == nil || bin == nil || as == nil {
		return nil, fmt.Errorf("extrae: core, binary and address space are required")
	}
	m := &Monitor{
		cfg:    cfg,
		core:   core,
		bin:    bin,
		as:     as,
		stacks: prog.NewStackTable(),
		labels: trace.NewLabels(),
		task:   cfg.Task,
		thread: cfg.Thread,
	}
	if m.task <= 0 {
		m.task = 1
	}
	if m.thread <= 0 {
		m.thread = 1
	}
	if cfg.Registry != nil {
		m.reg = cfg.Registry
	} else {
		m.reg = objects.NewRegistry(objects.Config{
			MinTrackSize: cfg.MinTrackSize,
			Namer:        func(id uint32) string { return m.stacks.SiteName(id, bin) },
		})
		if err := m.reg.ScanBinary(bin); err != nil {
			return nil, err
		}
	}
	eng, err := pebs.New(cfg.PEBS, m.onDrain)
	if err != nil {
		return nil, err
	}
	m.engine = eng
	if cfg.MuxQuantumNs > 0 {
		// Multiplexing starts with loads; the engine mask rotates on quanta.
		m.engine.SetEvents(pebs.SampleLoads)
		m.muxNext = core.NowNs() + cfg.MuxQuantumNs
	}
	if cfg.PerOpObserve {
		core.SetMemHook(m.onMemOp)
	} else {
		m.gated = true
		m.loadRem, m.storeRem = m.engine.Countdowns()
		core.SetGatedMemHook(m.onGatedMemOp)
		// Gates stay disarmed (never firing) until Start.
	}
	if !cfg.DisableAllocHooks {
		as.SetHooks(prog.Hooks{OnAlloc: m.onAlloc, OnFree: m.onFree})
	}
	m.initLabels()
	return m, nil
}

func (m *Monitor) initLabels() {
	m.labels.SetType(trace.TypeRegion, "User function")
	m.labels.SetValue(trace.TypeRegion, 0, "End")
	m.labels.SetType(trace.TypeSampleAddr, "Sampled address")
	m.labels.SetType(trace.TypeSampleLatency, "Sample latency (cycles)")
	m.labels.SetType(trace.TypeSampleSource, "Sample data source")
	for s := memhier.DataSource(0); s < memhier.NumSources; s++ {
		if s == memhier.SrcDRAMRemote && !m.core.Hierarchy().RemoteDRAMPossible() {
			// Single-node stacks can never emit the remote source; keep
			// their PCF value table byte-identical to the pre-NUMA format.
			continue
		}
		m.labels.SetValue(trace.TypeSampleSource, int64(s), s.String())
	}
	m.labels.SetType(trace.TypeSampleStore, "Sample is store")
	m.labels.SetValue(trace.TypeSampleStore, 0, "load")
	m.labels.SetValue(trace.TypeSampleStore, 1, "store")
	m.labels.SetType(trace.TypeSampleIP, "Sample instruction pointer")
	m.labels.SetType(trace.TypeSampleStack, "Sample callstack id")
	m.labels.SetType(trace.TypeSampleSize, "Sample access size")
	m.labels.SetType(trace.TypeAllocAddr, "Allocation address")
	m.labels.SetType(trace.TypeAllocSize, "Allocation size")
	m.labels.SetType(trace.TypeAllocStack, "Allocation callstack id")
	m.labels.SetType(trace.TypeFreeAddr, "Free address")
	for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
		// Only programmed counters are emitted (and hence labelled): the
		// remote-DRAM event exists only on NUMA-routed cores.
		if !m.core.PMU().Programmed(c) {
			continue
		}
		m.labels.SetType(trace.TypeCounterBase+uint32(c), c.String())
	}
}

// Registry exposes the data-object registry.
func (m *Monitor) Registry() *objects.Registry { return m.reg }

// Stacks exposes the call-stack table.
func (m *Monitor) Stacks() *prog.StackTable { return m.stacks }

// Labels exposes the PCF labels accumulated so far.
func (m *Monitor) Labels() *trace.Labels { return m.labels }

// Engine exposes the PEBS engine (for stats and ablations).
func (m *Monitor) Engine() *pebs.Engine { return m.engine }

// Core returns the monitored core.
func (m *Monitor) Core() *cpu.Core { return m.core }

// Start enables sampling and trace emission. Allocation tracking is active
// from construction (objects allocated during setup must be known), but no
// events are recorded until Start — this models the paper's focus on the
// execution phase, "ignoring the initialization and finalization".
func (m *Monitor) Start() {
	m.enabled = true
	m.started = true
	if m.cfg.MuxQuantumNs > 0 {
		m.muxNext = m.core.NowNs() + m.cfg.MuxQuantumNs
	}
	if m.gated {
		p := m.core.PMU()
		m.lastLoads = p.True(cpu.CtrLoads)
		m.lastStores = p.True(cpu.CtrStores)
		m.armGates()
	}
}

// Stop disables sampling and flushes pending samples.
func (m *Monitor) Stop() {
	if m.gated && m.enabled {
		ev := m.engine.Events()
		m.accrueEligible(ev)
		// Preserve countdown progress: ops retired since the last hook
		// decremented the core's live gates, not loadRem/storeRem. Pull
		// that state back before disarming so a later Start re-arms
		// exactly where the per-op reference path would be.
		lg, sg, _ := m.core.SampleGates()
		if ev.Has(pebs.SampleLoads) {
			m.loadRem = lg
		}
		if ev.Has(pebs.SampleStores) {
			m.storeRem = sg
		}
		m.core.SetSampleGate(cpu.GateNever, cpu.GateNever, ^uint64(0))
	}
	m.engine.Flush()
	m.enabled = false
	m.finished = true
}

// armGates programs the core's sample gates from the monitor's countdown
// state: classes in the event mask count down, others never fire, and the
// hook cycle is the next multiplexing boundary (if any).
func (m *Monitor) armGates() {
	lg, sg := cpu.GateNever, cpu.GateNever
	ev := m.engine.Events()
	if ev.Has(pebs.SampleLoads) {
		lg = m.loadRem
	}
	if ev.Has(pebs.SampleStores) {
		sg = m.storeRem
	}
	hc := ^uint64(0)
	if m.cfg.MuxQuantumNs > 0 {
		hc = m.core.CycleForNs(m.muxNext)
	}
	m.core.SetSampleGate(lg, sg, hc)
}

// accrueEligible credits the engine's Eligible statistic with every
// mask-matching operation retired since the last checkpoint, and advances
// the checkpoint. Valid only while the event mask has been constant over
// the span, which the hook protocol guarantees.
func (m *Monitor) accrueEligible(ev pebs.EventMask) {
	p := m.core.PMU()
	m.accrueEligibleAt(ev, p.True(cpu.CtrLoads), p.True(cpu.CtrStores))
}

// accrueEligibleAt is the shared tail of the eligibility accountants: it
// credits the span ending at the given load/store totals and advances the
// checkpoint to them.
func (m *Monitor) accrueEligibleAt(ev pebs.EventMask, curL, curS uint64) {
	var n uint64
	if ev.Has(pebs.SampleLoads) {
		n += curL - m.lastLoads
	}
	if ev.Has(pebs.SampleStores) {
		n += curS - m.lastStores
	}
	if n > 0 {
		m.engine.AddEligible(n)
	}
	m.lastLoads, m.lastStores = curL, curS
}

// Enabled reports whether the monitor is currently recording.
func (m *Monitor) Enabled() bool { return m.enabled }

// RegisterRegion assigns an id to a named code region and labels it.
func (m *Monitor) RegisterRegion(name string) Region {
	m.regionNames = append(m.regionNames, name)
	id := Region(len(m.regionNames)) // 1-based; 0 means "end"
	m.labels.SetValue(trace.TypeRegion, int64(id), name)
	return id
}

// RegionName returns the name of a registered region.
func (m *Monitor) RegionName(r Region) string {
	if r < 1 || int(r) > len(m.regionNames) {
		return fmt.Sprintf("region_%d", r)
	}
	return m.regionNames[r-1]
}

// counterPairs renders a PMU snapshot as trace pairs. Only programmed
// counters are emitted: the records of a non-NUMA core carry exactly the
// historical pair set, and a NUMA-routed core appends the remote-DRAM
// event.
func (m *Monitor) counterPairs(snap [cpu.NumCounters]uint64) []trace.TypeValue {
	pmu := m.core.PMU()
	pairs := make([]trace.TypeValue, 0, cpu.NumCounters)
	for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
		if !pmu.Programmed(c) {
			continue
		}
		pairs = append(pairs, trace.TypeValue{
			Type:  trace.TypeCounterBase + uint32(c),
			Value: int64(snap[c]),
		})
	}
	return pairs
}

// emit appends a record to the in-memory trace.
func (m *Monitor) emit(pairs []trace.TypeValue) {
	m.records = append(m.records, trace.Record{
		TimeNs: m.core.NowNs(),
		Task:   m.task,
		Thread: m.thread,
		Pairs:  pairs,
	})
}

// Thread returns the 1-based thread id stamped on this monitor's records.
func (m *Monitor) Thread() int { return m.thread }

// Task returns the 1-based task id stamped on this monitor's records.
func (m *Monitor) Task() int { return m.task }

// EnterRegion records entry into an instrumented region, with a counter
// snapshot (folding needs counters at instance boundaries).
func (m *Monitor) EnterRegion(r Region) {
	m.regionStack = append(m.regionStack, r)
	if !m.enabled {
		return
	}
	pairs := append([]trace.TypeValue{{Type: trace.TypeRegion, Value: int64(r)}},
		m.counterPairs(m.core.PMU().Snapshot())...)
	m.emit(pairs)
}

// ExitRegion records exit from the innermost region, which must be r.
func (m *Monitor) ExitRegion(r Region) {
	if len(m.regionStack) == 0 || m.regionStack[len(m.regionStack)-1] != r {
		panic(fmt.Sprintf("extrae: unbalanced ExitRegion(%d)", r))
	}
	m.regionStack = m.regionStack[:len(m.regionStack)-1]
	if !m.enabled {
		return
	}
	// Flush buffered samples so they precede the region-end record; drains
	// are charged to the core, slightly inflating the region like a real
	// PEBS interrupt would.
	m.engine.Flush()
	pairs := append([]trace.TypeValue{{Type: trace.TypeRegion, Value: 0}},
		m.counterPairs(m.core.PMU().Snapshot())...)
	m.emit(pairs)
}

// PushFrame enters a call frame (for allocation/sample call stacks).
func (m *Monitor) PushFrame(ip uint64) {
	m.callStack.Push(ip)
	m.stackDirty = true
}

// PopFrame leaves the innermost call frame.
func (m *Monitor) PopFrame() {
	m.callStack.Pop()
	m.stackDirty = true
}

// stackID interns the current call stack lazily.
func (m *Monitor) stackID() uint32 {
	if m.stackDirty {
		m.curStackID = m.stacks.Intern(m.callStack.Snapshot())
		m.stackDirty = false
	}
	return m.curStackID
}

// Alloc performs an instrumented allocation attributed to the current call
// stack, like Extrae's malloc wrapper.
func (m *Monitor) Alloc(size uint64) (uint64, error) {
	return m.as.Alloc(size, m.stackID())
}

// Realloc performs an instrumented reallocation.
func (m *Monitor) Realloc(addr, size uint64) (uint64, error) {
	return m.as.Realloc(addr, size, m.stackID())
}

// Free performs an instrumented free.
func (m *Monitor) Free(addr uint64) error { return m.as.Free(addr) }

// BeginAllocGroup opens a manual allocation group (the paper's wrapping
// instrumentation around runs of small allocations).
func (m *Monitor) BeginAllocGroup(name string) error { return m.reg.BeginGroup(name) }

// EndAllocGroup closes the open group.
func (m *Monitor) EndAllocGroup() (*objects.Object, error) { return m.reg.EndGroup() }

// onAlloc is the address-space allocation hook.
func (m *Monitor) onAlloc(info prog.AllocInfo) {
	m.reg.OnAlloc(info)
	if !m.enabled {
		return
	}
	m.emit([]trace.TypeValue{
		{Type: trace.TypeAllocAddr, Value: int64(info.Addr)},
		{Type: trace.TypeAllocSize, Value: int64(info.Size)},
		{Type: trace.TypeAllocStack, Value: int64(info.StackID)},
	})
}

// onFree is the address-space free hook.
func (m *Monitor) onFree(info prog.AllocInfo) {
	m.reg.OnFree(info)
	if !m.enabled {
		return
	}
	m.emit([]trace.TypeValue{{Type: trace.TypeFreeAddr, Value: int64(info.Addr)}})
}

// onMemOp is the per-op reference hook: multiplex rotation, then PEBS.
func (m *Monitor) onMemOp(op cpu.MemOp) {
	if !m.enabled {
		return
	}
	now := m.core.NowNs()
	if m.cfg.MuxQuantumNs > 0 && now >= m.muxNext {
		for now >= m.muxNext {
			m.muxNext += m.cfg.MuxQuantumNs
		}
		if m.engine.Events().Has(pebs.SampleLoads) {
			m.engine.SetEvents(pebs.SampleStores)
		} else {
			m.engine.SetEvents(pebs.SampleLoads)
		}
	}
	if m.engine.Observe(op, now, m.stackID()) {
		// The op became a sample: capture the PMU at sample time so the
		// counters line up with the PEBS record when the buffer drains.
		m.recordSnapshotAndMaybeDrain()
	}
}

// recordSnapshotAndMaybeDrain attaches the sample-time PMU snapshot and
// drains the PEBS buffer as soon as it is full. Draining here — identically
// in the per-op and gated paths — keeps the drain stall at the same point
// of the instruction stream in both, which the equivalence tests require.
func (m *Monitor) recordSnapshotAndMaybeDrain() {
	m.pendingSnaps = append(m.pendingSnaps, m.core.PMU().Snapshot())
	if m.engine.Pending() >= m.engine.BufferSize() {
		m.engine.Flush()
	}
}

// onGatedMemOp is the countdown-gated hook: it runs only for operations
// whose class countdown fired (selected) or that crossed a multiplexing
// quantum boundary, and re-arms the core's gates before returning. The
// protocol reproduces the per-op path exactly: rotation is applied before
// the operation is evaluated, the boundary operation counts against the
// post-rotation mask, and the engine's inter-sample gaps are drawn in the
// same order.
func (m *Monitor) onGatedMemOp(op cpu.MemOp) {
	if !m.enabled {
		// Stop disarms the gates; a stray hook just stays disarmed.
		m.core.SetSampleGate(cpu.GateNever, cpu.GateNever, ^uint64(0))
		return
	}
	ev := m.engine.Events()
	// Sync the live countdowns the core decremented for masked-in classes.
	lg, sg, _ := m.core.SampleGates()
	if ev.Has(pebs.SampleLoads) {
		m.loadRem = lg
	}
	if ev.Has(pebs.SampleStores) {
		m.storeRem = sg
	}
	now := m.core.NowNs()
	rotated := false
	if m.cfg.MuxQuantumNs > 0 && now >= m.muxNext {
		// Ops strictly before this one were eligible under the old mask;
		// the boundary op itself is evaluated under the rotated mask, as
		// in the per-op path where rotation precedes the observation.
		m.accrueEligibleExcluding(ev, op)
		for now >= m.muxNext {
			m.muxNext += m.cfg.MuxQuantumNs
		}
		// Undo the core's decrement for the boundary op: under the per-op
		// path a class rotated out of the mask is not decremented.
		if op.Store {
			if ev.Has(pebs.SampleStores) {
				m.storeRem++
			}
		} else if ev.Has(pebs.SampleLoads) {
			m.loadRem++
		}
		if ev.Has(pebs.SampleLoads) {
			ev = pebs.SampleStores
		} else {
			ev = pebs.SampleLoads
		}
		m.engine.SetEvents(ev)
		rotated = true
	}
	// Decide whether this op samples under the (possibly rotated) mask.
	sampled := false
	if op.Store {
		if ev.Has(pebs.SampleStores) {
			if rotated {
				m.storeRem-- // boundary op counts under the new mask
			}
			sampled = m.storeRem == 0
		}
	} else if ev.Has(pebs.SampleLoads) {
		if rotated {
			m.loadRem--
		}
		sampled = m.loadRem == 0
	}
	if sampled {
		recorded, gap := m.engine.ObserveSampled(op, now, m.stackID())
		if op.Store {
			m.storeRem = gap
		} else {
			m.loadRem = gap
		}
		if recorded {
			m.recordSnapshotAndMaybeDrain()
		}
	}
	m.armGates()
}

// accrueEligibleExcluding is accrueEligible with the in-flight operation op
// excluded from the span (it belongs to the next, post-rotation span).
func (m *Monitor) accrueEligibleExcluding(ev pebs.EventMask, op cpu.MemOp) {
	p := m.core.PMU()
	curL, curS := p.True(cpu.CtrLoads), p.True(cpu.CtrStores)
	if op.Store {
		curS--
	} else {
		curL--
	}
	m.accrueEligibleAt(ev, curL, curS)
}

// onDrain receives the PEBS buffer: resolve objects, emit trace records.
func (m *Monitor) onDrain(samples []pebs.Sample) {
	if len(samples) != len(m.pendingSnaps) {
		panic(fmt.Sprintf("extrae: %d samples vs %d snapshots", len(samples), len(m.pendingSnaps)))
	}
	for i, s := range samples {
		m.reg.Record(s.Addr, s.Latency, s.Store, s.Source)
		store := int64(0)
		if s.Store {
			store = 1
		}
		pairs := []trace.TypeValue{
			{Type: trace.TypeSampleAddr, Value: int64(s.Addr)},
			{Type: trace.TypeSampleLatency, Value: int64(s.Latency)},
			{Type: trace.TypeSampleSource, Value: int64(s.Source)},
			{Type: trace.TypeSampleStore, Value: store},
			{Type: trace.TypeSampleIP, Value: int64(s.IP)},
			{Type: trace.TypeSampleStack, Value: int64(s.StackID)},
			{Type: trace.TypeSampleSize, Value: int64(s.Size)},
		}
		pairs = append(pairs, m.counterPairs(m.pendingSnaps[i])...)
		m.records = append(m.records, trace.Record{
			TimeNs: s.TimeNs, Task: m.task, Thread: m.thread, Pairs: pairs,
		})
	}
	m.pendingSnaps = m.pendingSnaps[:0]
	if m.cfg.DrainOverheadCycles > 0 {
		m.core.Stall(m.cfg.DrainOverheadCycles)
	}
}

// Records returns the trace accumulated so far (chronological: all records
// are emitted at the single simulated thread's clock).
func (m *Monitor) Records() []trace.Record { return m.records }
