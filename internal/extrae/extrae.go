// Package extrae implements the monitoring runtime: the simulated
// counterpart of BSC's Extrae tracing library with the paper's memory
// extensions. A Monitor wires together
//
//   - the simulated core's per-memory-op hook → the PEBS engine,
//   - the PEBS drain → data-object resolution and trace emission,
//   - allocator hooks → the data-object registry plus allocation events,
//   - region (user-function) instrumentation with hardware-counter
//     snapshots at every boundary and at every sample,
//   - PEBS event multiplexing: alternating load and store sampling on a
//     time quantum so one run captures both (avoiding the two-run/ASLR
//     problem the paper calls out), and
//   - the allocation-grouping instrumentation API used to wrap HPCG's many
//     small allocations into two logical objects.
package extrae

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/objects"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/trace"
)

// Config parameterizes a Monitor.
type Config struct {
	// PEBS configures the sampling engine.
	PEBS pebs.Config
	// MuxQuantumNs alternates the PEBS engine between load-only and
	// store-only sampling every quantum (0 disables multiplexing and the
	// engine samples whatever PEBS.Events selects throughout).
	MuxQuantumNs uint64
	// MinTrackSize is the object registry's individual-allocation tracking
	// threshold.
	MinTrackSize uint64
	// DrainOverheadCycles charges the core for each PEBS buffer drain,
	// modelling the sampling interrupt cost.
	DrainOverheadCycles uint64
}

// DefaultConfig returns the paper-like monitoring setup: default PEBS
// configuration with load/store multiplexing at 1 ms quanta, a 512-byte
// tracking threshold (HPCG's row allocations fall below it), and a small
// drain cost.
func DefaultConfig() Config {
	return Config{
		PEBS:                pebs.DefaultConfig(),
		MuxQuantumNs:        1_000_000,
		MinTrackSize:        512,
		DrainOverheadCycles: 2000,
	}
}

// Region identifies an instrumented code region (user function).
type Region int

// Monitor is the per-thread monitoring runtime. Not safe for concurrent
// use; the simulated workloads are single software threads (the paper's
// analysis is likewise per-thread).
type Monitor struct {
	cfg    Config
	core   *cpu.Core
	bin    *prog.Binary
	as     *prog.AddressSpace
	stacks *prog.StackTable
	engine *pebs.Engine
	reg    *objects.Registry

	records []trace.Record
	labels  *trace.Labels

	regionNames []string
	regionStack []Region

	callStack    prog.CallStack
	curStackID   uint32
	stackDirty   bool
	pendingSnaps [][cpu.NumCounters]uint64

	muxNext  uint64
	enabled  bool
	started  bool
	finished bool
}

// New builds a monitor around a core, binary image and address space. The
// monitor installs itself as the core's memory hook and as the address
// space's allocation hooks.
func New(cfg Config, core *cpu.Core, bin *prog.Binary, as *prog.AddressSpace) (*Monitor, error) {
	if core == nil || bin == nil || as == nil {
		return nil, fmt.Errorf("extrae: core, binary and address space are required")
	}
	m := &Monitor{
		cfg:    cfg,
		core:   core,
		bin:    bin,
		as:     as,
		stacks: prog.NewStackTable(),
		labels: trace.NewLabels(),
	}
	m.reg = objects.NewRegistry(objects.Config{
		MinTrackSize: cfg.MinTrackSize,
		Namer:        func(id uint32) string { return m.stacks.SiteName(id, bin) },
	})
	eng, err := pebs.New(cfg.PEBS, m.onDrain)
	if err != nil {
		return nil, err
	}
	m.engine = eng
	if cfg.MuxQuantumNs > 0 {
		// Multiplexing starts with loads; the engine mask rotates on quanta.
		m.engine.SetEvents(pebs.SampleLoads)
		m.muxNext = core.NowNs() + cfg.MuxQuantumNs
	}
	if err := m.reg.ScanBinary(bin); err != nil {
		return nil, err
	}
	core.SetMemHook(m.onMemOp)
	as.SetHooks(prog.Hooks{OnAlloc: m.onAlloc, OnFree: m.onFree})
	m.initLabels()
	return m, nil
}

func (m *Monitor) initLabels() {
	m.labels.SetType(trace.TypeRegion, "User function")
	m.labels.SetValue(trace.TypeRegion, 0, "End")
	m.labels.SetType(trace.TypeSampleAddr, "Sampled address")
	m.labels.SetType(trace.TypeSampleLatency, "Sample latency (cycles)")
	m.labels.SetType(trace.TypeSampleSource, "Sample data source")
	for s := memhier.DataSource(0); s < memhier.NumSources; s++ {
		m.labels.SetValue(trace.TypeSampleSource, int64(s), s.String())
	}
	m.labels.SetType(trace.TypeSampleStore, "Sample is store")
	m.labels.SetValue(trace.TypeSampleStore, 0, "load")
	m.labels.SetValue(trace.TypeSampleStore, 1, "store")
	m.labels.SetType(trace.TypeSampleIP, "Sample instruction pointer")
	m.labels.SetType(trace.TypeSampleStack, "Sample callstack id")
	m.labels.SetType(trace.TypeSampleSize, "Sample access size")
	m.labels.SetType(trace.TypeAllocAddr, "Allocation address")
	m.labels.SetType(trace.TypeAllocSize, "Allocation size")
	m.labels.SetType(trace.TypeAllocStack, "Allocation callstack id")
	m.labels.SetType(trace.TypeFreeAddr, "Free address")
	for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
		m.labels.SetType(trace.TypeCounterBase+uint32(c), c.String())
	}
}

// Registry exposes the data-object registry.
func (m *Monitor) Registry() *objects.Registry { return m.reg }

// Stacks exposes the call-stack table.
func (m *Monitor) Stacks() *prog.StackTable { return m.stacks }

// Labels exposes the PCF labels accumulated so far.
func (m *Monitor) Labels() *trace.Labels { return m.labels }

// Engine exposes the PEBS engine (for stats and ablations).
func (m *Monitor) Engine() *pebs.Engine { return m.engine }

// Core returns the monitored core.
func (m *Monitor) Core() *cpu.Core { return m.core }

// Start enables sampling and trace emission. Allocation tracking is active
// from construction (objects allocated during setup must be known), but no
// events are recorded until Start — this models the paper's focus on the
// execution phase, "ignoring the initialization and finalization".
func (m *Monitor) Start() {
	m.enabled = true
	m.started = true
	if m.cfg.MuxQuantumNs > 0 {
		m.muxNext = m.core.NowNs() + m.cfg.MuxQuantumNs
	}
}

// Stop disables sampling and flushes pending samples.
func (m *Monitor) Stop() {
	m.engine.Flush()
	m.enabled = false
	m.finished = true
}

// Enabled reports whether the monitor is currently recording.
func (m *Monitor) Enabled() bool { return m.enabled }

// RegisterRegion assigns an id to a named code region and labels it.
func (m *Monitor) RegisterRegion(name string) Region {
	m.regionNames = append(m.regionNames, name)
	id := Region(len(m.regionNames)) // 1-based; 0 means "end"
	m.labels.SetValue(trace.TypeRegion, int64(id), name)
	return id
}

// RegionName returns the name of a registered region.
func (m *Monitor) RegionName(r Region) string {
	if r < 1 || int(r) > len(m.regionNames) {
		return fmt.Sprintf("region_%d", r)
	}
	return m.regionNames[r-1]
}

// counterPairs renders the current PMU estimates as trace pairs.
func counterPairs(snap [cpu.NumCounters]uint64) []trace.TypeValue {
	pairs := make([]trace.TypeValue, 0, cpu.NumCounters)
	for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
		pairs = append(pairs, trace.TypeValue{
			Type:  trace.TypeCounterBase + uint32(c),
			Value: int64(snap[c]),
		})
	}
	return pairs
}

// emit appends a record to the in-memory trace.
func (m *Monitor) emit(pairs []trace.TypeValue) {
	m.records = append(m.records, trace.Record{
		TimeNs: m.core.NowNs(),
		Task:   1,
		Thread: 1,
		Pairs:  pairs,
	})
}

// EnterRegion records entry into an instrumented region, with a counter
// snapshot (folding needs counters at instance boundaries).
func (m *Monitor) EnterRegion(r Region) {
	m.regionStack = append(m.regionStack, r)
	if !m.enabled {
		return
	}
	pairs := append([]trace.TypeValue{{Type: trace.TypeRegion, Value: int64(r)}},
		counterPairs(m.core.PMU().Snapshot())...)
	m.emit(pairs)
}

// ExitRegion records exit from the innermost region, which must be r.
func (m *Monitor) ExitRegion(r Region) {
	if len(m.regionStack) == 0 || m.regionStack[len(m.regionStack)-1] != r {
		panic(fmt.Sprintf("extrae: unbalanced ExitRegion(%d)", r))
	}
	m.regionStack = m.regionStack[:len(m.regionStack)-1]
	if !m.enabled {
		return
	}
	// Flush buffered samples so they precede the region-end record; drains
	// are charged to the core, slightly inflating the region like a real
	// PEBS interrupt would.
	m.engine.Flush()
	pairs := append([]trace.TypeValue{{Type: trace.TypeRegion, Value: 0}},
		counterPairs(m.core.PMU().Snapshot())...)
	m.emit(pairs)
}

// PushFrame enters a call frame (for allocation/sample call stacks).
func (m *Monitor) PushFrame(ip uint64) {
	m.callStack.Push(ip)
	m.stackDirty = true
}

// PopFrame leaves the innermost call frame.
func (m *Monitor) PopFrame() {
	m.callStack.Pop()
	m.stackDirty = true
}

// stackID interns the current call stack lazily.
func (m *Monitor) stackID() uint32 {
	if m.stackDirty {
		m.curStackID = m.stacks.Intern(m.callStack.Snapshot())
		m.stackDirty = false
	}
	return m.curStackID
}

// Alloc performs an instrumented allocation attributed to the current call
// stack, like Extrae's malloc wrapper.
func (m *Monitor) Alloc(size uint64) (uint64, error) {
	return m.as.Alloc(size, m.stackID())
}

// Realloc performs an instrumented reallocation.
func (m *Monitor) Realloc(addr, size uint64) (uint64, error) {
	return m.as.Realloc(addr, size, m.stackID())
}

// Free performs an instrumented free.
func (m *Monitor) Free(addr uint64) error { return m.as.Free(addr) }

// BeginAllocGroup opens a manual allocation group (the paper's wrapping
// instrumentation around runs of small allocations).
func (m *Monitor) BeginAllocGroup(name string) error { return m.reg.BeginGroup(name) }

// EndAllocGroup closes the open group.
func (m *Monitor) EndAllocGroup() (*objects.Object, error) { return m.reg.EndGroup() }

// onAlloc is the address-space allocation hook.
func (m *Monitor) onAlloc(info prog.AllocInfo) {
	m.reg.OnAlloc(info)
	if !m.enabled {
		return
	}
	m.emit([]trace.TypeValue{
		{Type: trace.TypeAllocAddr, Value: int64(info.Addr)},
		{Type: trace.TypeAllocSize, Value: int64(info.Size)},
		{Type: trace.TypeAllocStack, Value: int64(info.StackID)},
	})
}

// onFree is the address-space free hook.
func (m *Monitor) onFree(info prog.AllocInfo) {
	m.reg.OnFree(info)
	if !m.enabled {
		return
	}
	m.emit([]trace.TypeValue{{Type: trace.TypeFreeAddr, Value: int64(info.Addr)}})
}

// onMemOp is the core's memory hook: multiplex rotation, then PEBS.
func (m *Monitor) onMemOp(op cpu.MemOp) {
	if !m.enabled {
		return
	}
	now := m.core.NowNs()
	if m.cfg.MuxQuantumNs > 0 && now >= m.muxNext {
		for now >= m.muxNext {
			m.muxNext += m.cfg.MuxQuantumNs
		}
		if m.engine.Events().Has(pebs.SampleLoads) {
			m.engine.SetEvents(pebs.SampleStores)
		} else {
			m.engine.SetEvents(pebs.SampleLoads)
		}
	}
	if m.engine.Observe(op, now, m.stackID()) {
		// The op became a sample: capture the PMU at sample time so the
		// counters line up with the PEBS record when the buffer drains.
		m.pendingSnaps = append(m.pendingSnaps, m.core.PMU().Snapshot())
	}
}

// onDrain receives the PEBS buffer: resolve objects, emit trace records.
func (m *Monitor) onDrain(samples []pebs.Sample) {
	if len(samples) != len(m.pendingSnaps) {
		panic(fmt.Sprintf("extrae: %d samples vs %d snapshots", len(samples), len(m.pendingSnaps)))
	}
	for i, s := range samples {
		m.reg.Record(s.Addr, s.Latency, s.Store, s.Source)
		store := int64(0)
		if s.Store {
			store = 1
		}
		pairs := []trace.TypeValue{
			{Type: trace.TypeSampleAddr, Value: int64(s.Addr)},
			{Type: trace.TypeSampleLatency, Value: int64(s.Latency)},
			{Type: trace.TypeSampleSource, Value: int64(s.Source)},
			{Type: trace.TypeSampleStore, Value: store},
			{Type: trace.TypeSampleIP, Value: int64(s.IP)},
			{Type: trace.TypeSampleStack, Value: int64(s.StackID)},
			{Type: trace.TypeSampleSize, Value: int64(s.Size)},
		}
		pairs = append(pairs, counterPairs(m.pendingSnaps[i])...)
		m.records = append(m.records, trace.Record{
			TimeNs: s.TimeNs, Task: 1, Thread: 1, Pairs: pairs,
		})
	}
	m.pendingSnaps = m.pendingSnaps[:0]
	if m.cfg.DrainOverheadCycles > 0 {
		m.core.Stall(m.cfg.DrainOverheadCycles)
	}
}

// Records returns the trace accumulated so far (chronological: all records
// are emitted at the single simulated thread's clock).
func (m *Monitor) Records() []trace.Record { return m.records }
