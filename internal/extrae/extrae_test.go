package extrae

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/trace"
)

// rig bundles a monitored synthetic program for tests.
type rig struct {
	core *cpu.Core
	bin  *prog.Binary
	as   *prog.AddressSpace
	mon  *Monitor
	fn   *prog.Function
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	h, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := cpu.New(cpu.DefaultConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.NewBinary()
	fn, err := bin.AddFunction("kernel", "kernel.c", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.NewAddressSpace(0x2adf00000000)
	mon, err := New(cfg, core, bin, as)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{core: core, bin: bin, as: as, mon: mon, fn: fn}
}

// sweep runs a simple load sweep over [base, base+bytes) at the given ip.
func (r *rig) sweep(ip, base, bytes uint64, store bool) {
	for a := base; a < base+bytes; a += 8 {
		if store {
			r.core.Store(ip, a, 8)
		} else {
			r.core.Load(ip, a, 8)
		}
	}
}

func noMux(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MuxQuantumNs = 0
	cfg.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.PEBS.Randomize = false
	cfg.PEBS.Period = 100
	cfg.PEBS.LatencyThreshold = 0
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
	cfg := DefaultConfig()
	cfg.PEBS.Period = 0
	h, _ := memhier.New(memhier.DefaultConfig())
	core, _ := cpu.New(cpu.DefaultConfig(), h)
	if _, err := New(cfg, core, prog.NewBinary(), prog.NewAddressSpace(0)); err == nil {
		t.Error("bad PEBS config accepted")
	}
}

func TestDisabledUntilStart(t *testing.T) {
	r := newRig(t, noMux(t))
	ip, _ := r.fn.IPForLine(10)
	r.sweep(ip, 0x1000, 64*1024, false)
	if len(r.mon.Records()) != 0 {
		t.Errorf("%d records before Start", len(r.mon.Records()))
	}
	if r.mon.Enabled() {
		t.Error("enabled before Start")
	}
	r.mon.Start()
	r.sweep(ip, 0x1000, 64*1024, false)
	r.mon.Stop()
	if len(r.mon.Records()) == 0 {
		t.Error("no records after Start")
	}
}

// TestStopStartPreservesCountdowns pins Stop/Start behaviour of the gated
// path against the per-op reference path: ops retired between the last
// hook and Stop have decremented the core's live gates, and that progress
// must survive a Stop/Start cycle (ops while stopped advance neither
// path). The two paths must emit identical traces across the restart.
func TestStopStartPreservesCountdowns(t *testing.T) {
	run := func(perOp bool) []trace.Record {
		cfg := noMux(t)
		cfg.PerOpObserve = perOp
		r := newRig(t, cfg)
		ip, _ := r.fn.IPForLine(10)
		reg := r.mon.RegisterRegion("k")
		r.mon.Start()
		r.mon.EnterRegion(reg)
		// 72 loads: partway into the 100-op period, so countdown progress
		// exists at Stop.
		r.sweep(ip, 0x1000, 72*8, false)
		r.mon.ExitRegion(reg)
		r.mon.Stop()
		// Unmonitored ops: must advance neither path's countdown.
		r.sweep(ip, 0x40000, 64*8, false)
		r.mon.Start()
		r.mon.EnterRegion(reg)
		r.sweep(ip, 0x80000, 512*8, false)
		r.mon.ExitRegion(reg)
		r.mon.Stop()
		return r.mon.Records()
	}
	ref, fast := run(true), run(false)
	if len(ref) != len(fast) {
		t.Fatalf("record counts diverge across restart: reference %d, gated %d", len(ref), len(fast))
	}
	for i := range ref {
		a, b := ref[i], fast[i]
		if a.TimeNs != b.TimeNs || a.Task != b.Task || a.Thread != b.Thread || len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("record %d diverges: ref %+v, gated %+v", i, a, b)
		}
		for j := range a.Pairs {
			if a.Pairs[j] != b.Pairs[j] {
				t.Fatalf("record %d pair %d diverges: ref %+v, gated %+v", i, j, a.Pairs[j], b.Pairs[j])
			}
		}
	}
}

func TestAllocationTrackedBeforeStart(t *testing.T) {
	// Objects allocated during setup (before Start) must be resolvable
	// during the execution phase — the paper's HPCG data is allocated in
	// GenerateProblem, long before the analyzed phase.
	r := newRig(t, noMux(t))
	ipAlloc, _ := r.fn.IPForLine(12)
	r.mon.PushFrame(ipAlloc)
	addr, err := r.mon.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	r.mon.PopFrame()
	r.mon.Start()
	ip, _ := r.fn.IPForLine(15)
	r.sweep(ip, addr, 1<<20, false)
	r.mon.Stop()
	if rate := r.mon.Registry().ResolutionRate(); rate < 0.99 {
		t.Errorf("resolution rate = %g, want ~1 (object known from setup)", rate)
	}
	obj, ok := r.mon.Registry().Resolve(addr)
	if !ok {
		t.Fatal("object not resolvable")
	}
	if obj.Name != "12_kernel.c" {
		t.Errorf("object name = %q, want 12_kernel.c (allocation site)", obj.Name)
	}
}

func TestRegionEventsCarryCounters(t *testing.T) {
	r := newRig(t, noMux(t))
	reg := r.mon.RegisterRegion("ComputeSPMV_ref")
	r.mon.Start()
	ip, _ := r.fn.IPForLine(11)
	r.mon.EnterRegion(reg)
	r.sweep(ip, 0x1000, 32*1024, false)
	r.mon.ExitRegion(reg)
	r.mon.Stop()

	var enter, exit *trace.Record
	for i := range r.mon.Records() {
		rec := &r.mon.Records()[i]
		if v, ok := rec.Get(trace.TypeRegion); ok {
			if v == int64(reg) {
				enter = rec
			} else if v == 0 {
				exit = rec
			}
		}
	}
	if enter == nil || exit == nil {
		t.Fatal("missing region enter/exit records")
	}
	instT := trace.TypeCounterBase + uint32(cpu.CtrInstructions)
	i0, ok0 := enter.Get(instT)
	i1, ok1 := exit.Get(instT)
	if !ok0 || !ok1 {
		t.Fatal("region records missing instruction counter")
	}
	if i1-i0 != 32*1024/8 {
		t.Errorf("instructions in region = %d, want %d", i1-i0, 32*1024/8)
	}
	if r.mon.RegionName(reg) != "ComputeSPMV_ref" {
		t.Errorf("RegionName = %q", r.mon.RegionName(reg))
	}
	if r.mon.RegionName(Region(99)) != "region_99" {
		t.Error("unknown region name fallback")
	}
}

func TestUnbalancedExitPanics(t *testing.T) {
	r := newRig(t, noMux(t))
	reg := r.mon.RegisterRegion("a")
	defer func() {
		if recover() == nil {
			t.Error("unbalanced ExitRegion did not panic")
		}
	}()
	r.mon.ExitRegion(reg)
}

func TestSamplesResolveAndCarrySnapshots(t *testing.T) {
	r := newRig(t, noMux(t))
	ipAlloc, _ := r.fn.IPForLine(12)
	r.mon.PushFrame(ipAlloc)
	addr, _ := r.mon.Alloc(1 << 20)
	r.mon.PopFrame()
	r.mon.Start()
	ip, _ := r.fn.IPForLine(15)
	r.mon.PushFrame(ip)
	r.sweep(ip, addr, 1<<20, false)
	r.mon.PopFrame()
	r.mon.Stop()

	var nSamples int
	var lastInstr int64
	for _, rec := range r.mon.Records() {
		a, ok := rec.Get(trace.TypeSampleAddr)
		if !ok {
			continue
		}
		nSamples++
		if uint64(a) < addr || uint64(a) >= addr+1<<20 {
			t.Fatalf("sample address %#x outside object", a)
		}
		instr, ok := rec.Get(trace.TypeCounterBase + uint32(cpu.CtrInstructions))
		if !ok {
			t.Fatal("sample missing counter snapshot")
		}
		if instr < lastInstr {
			t.Fatal("counter snapshots not monotone across samples")
		}
		lastInstr = instr
		if ipGot, _ := rec.Get(trace.TypeSampleIP); uint64(ipGot) != ip {
			t.Fatalf("sample IP = %#x, want %#x", ipGot, ip)
		}
		if st, _ := rec.Get(trace.TypeSampleStack); st == 0 {
			t.Fatal("sample stack id is 0 despite pushed frame")
		}
	}
	// 1 MiB / 8 B = 131072 loads at period 100 → ~1310 samples.
	if nSamples < 1000 || nSamples > 1700 {
		t.Errorf("samples = %d, want ~1310", nSamples)
	}
}

func TestMultiplexingAlternates(t *testing.T) {
	cfg := noMux(t)
	cfg.MuxQuantumNs = 10_000 // 10 µs quanta
	r := newRig(t, cfg)
	addr, _ := r.mon.Alloc(4 << 20)
	r.mon.Start()
	ip, _ := r.fn.IPForLine(10)
	// Alternate load and store sweeps long enough to cross many quanta.
	for pass := 0; pass < 4; pass++ {
		r.sweep(ip, addr, 2<<20, pass%2 == 1)
	}
	r.mon.Stop()
	var loads, stores int
	for _, rec := range r.mon.Records() {
		if v, ok := rec.Get(trace.TypeSampleStore); ok {
			if v == 1 {
				stores++
			} else {
				loads++
			}
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("multiplexing captured loads=%d stores=%d; want both > 0 in one run",
			loads, stores)
	}
}

func TestAllocationEventsEmittedWhenEnabled(t *testing.T) {
	r := newRig(t, noMux(t))
	r.mon.Start()
	addr, _ := r.mon.Alloc(2048)
	r.mon.Free(addr)
	r.mon.Stop()
	var sawAlloc, sawFree bool
	for _, rec := range r.mon.Records() {
		if v, ok := rec.Get(trace.TypeAllocAddr); ok && uint64(v) == addr {
			sawAlloc = true
			if sz, _ := rec.Get(trace.TypeAllocSize); sz != 2048 {
				t.Errorf("alloc size event = %d", sz)
			}
		}
		if v, ok := rec.Get(trace.TypeFreeAddr); ok && uint64(v) == addr {
			sawFree = true
		}
	}
	if !sawAlloc || !sawFree {
		t.Errorf("alloc/free events = %v/%v", sawAlloc, sawFree)
	}
}

func TestAllocGrouping(t *testing.T) {
	r := newRig(t, DefaultConfig()) // MinTrackSize 512: 216-byte rows invisible
	ip, _ := r.fn.IPForLine(12)
	r.mon.PushFrame(ip)
	if err := r.mon.BeginAllocGroup("124_rows"); err != nil {
		t.Fatal(err)
	}
	var first uint64
	for i := 0; i < 200; i++ {
		a, _ := r.mon.Alloc(216)
		if i == 0 {
			first = a
		}
	}
	g, err := r.mon.EndAllocGroup()
	if err != nil {
		t.Fatal(err)
	}
	r.mon.PopFrame()
	if g.Members != 200 {
		t.Errorf("group members = %d", g.Members)
	}
	o, ok := r.mon.Registry().Resolve(first + 1000)
	if !ok || o != g {
		t.Error("grouped allocation not resolving to group")
	}
}

func TestReallocKeepsResolution(t *testing.T) {
	r := newRig(t, noMux(t))
	a, _ := r.mon.Alloc(4096)
	b, err := r.mon.Realloc(a, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.mon.Registry().Resolve(b + 500); !ok {
		t.Error("realloc'd object unresolvable")
	}
}

func TestDrainOverheadCharged(t *testing.T) {
	cfg := noMux(t)
	cfg.DrainOverheadCycles = 0
	r0 := newRig(t, cfg)
	cfg.DrainOverheadCycles = 100000
	r1 := newRig(t, cfg)
	for _, r := range []*rig{r0, r1} {
		addr, _ := r.mon.Alloc(1 << 20)
		r.mon.Start()
		ip, _ := r.fn.IPForLine(10)
		r.sweep(ip, addr, 1<<20, false)
		r.mon.Stop()
	}
	if r1.core.Cycles() <= r0.core.Cycles() {
		t.Errorf("drain overhead not charged: %d vs %d cycles",
			r1.core.Cycles(), r0.core.Cycles())
	}
}

func TestTraceRoundTripThroughWriter(t *testing.T) {
	r := newRig(t, noMux(t))
	addr, _ := r.mon.Alloc(64 << 10)
	reg := r.mon.RegisterRegion("k")
	r.mon.Start()
	ip, _ := r.fn.IPForLine(10)
	r.mon.EnterRegion(reg)
	r.sweep(ip, addr, 64<<10, false)
	r.mon.ExitRegion(reg)
	r.mon.Stop()

	recs := r.mon.Records()
	labels := r.mon.Labels()
	if labels.ValueName(trace.TypeRegion, int64(reg)) != "k" {
		t.Error("region label missing")
	}
	// All record times must be non-decreasing (single thread).
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeNs < recs[i-1].TimeNs {
			t.Fatalf("record %d time regressed", i)
		}
	}
}
