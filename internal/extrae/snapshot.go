package extrae

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/trace"
)

// Checkpoint support. A monitor is snapshotted only between instances,
// right after an ExitRegion has flushed the PEBS buffer: the pending
// snapshot list is empty and every buffered sample has been resolved into
// the record log, so the state reduces to the log itself, the interned
// stack table, the multiplexing clock, the countdown bookkeeping and the
// engine. The restore target is a monitor freshly rebuilt by replaying the
// deterministic setup (same config, same region registrations).

// MonitorState is the serializable mutable state of one monitor.
type MonitorState struct {
	Records []trace.Record
	Stacks  [][]uint64

	RegionNames int // registered regions, validated against the rebuild
	RegionStack []Region
	CallStack   []uint64
	CurStackID  uint32
	StackDirty  bool

	MuxNext    uint64
	LoadRem    uint64
	StoreRem   uint64
	LastLoads  uint64
	LastStores uint64

	Engine pebs.EngineState
	Core   cpu.CoreState
}

// State deep-copies the monitor's mutable state. It refuses to run with
// samples pending resolution (checkpoints only happen post-flush).
func (m *Monitor) State() (MonitorState, error) {
	if len(m.pendingSnaps) != 0 {
		return MonitorState{}, fmt.Errorf("extrae: cannot snapshot with %d pending sample snapshots", len(m.pendingSnaps))
	}
	eng, err := m.engine.State()
	if err != nil {
		return MonitorState{}, err
	}
	st := MonitorState{
		Records:     append([]trace.Record(nil), m.records...),
		Stacks:      m.stacks.Stacks(),
		RegionNames: len(m.regionNames),
		RegionStack: append([]Region(nil), m.regionStack...),
		CallStack:   m.callStack.Snapshot(),
		CurStackID:  m.curStackID,
		StackDirty:  m.stackDirty,
		MuxNext:     m.muxNext,
		LoadRem:     m.loadRem,
		StoreRem:    m.storeRem,
		LastLoads:   m.lastLoads,
		LastStores:  m.lastStores,
		Engine:      eng,
		Core:        m.core.State(),
	}
	if m.gated && m.started {
		// While recording, the live countdowns are in the core's gate
		// registers, not loadRem/storeRem (same recovery Stop performs);
		// RestoreState re-arms the gates from these fields.
		lg, sg, _ := m.core.SampleGates()
		ev := m.engine.Events()
		if ev.Has(pebs.SampleLoads) {
			st.LoadRem = lg
		}
		if ev.Has(pebs.SampleStores) {
			st.StoreRem = sg
		}
	}
	for i, r := range st.Records {
		st.Records[i].Pairs = append([]trace.TypeValue(nil), r.Pairs...)
	}
	return st, nil
}

// RestoreState overwrites the mutable state of a monitor rebuilt by an
// identical setup, leaving it started and recording, with the core's sample
// gates re-armed where the snapshot left them. The caller restores the
// core's memory hierarchy and the shared registry separately.
func (m *Monitor) RestoreState(st MonitorState) error {
	if st.RegionNames != len(m.regionNames) {
		return fmt.Errorf("extrae: snapshot has %d registered regions, rebuilt monitor has %d", st.RegionNames, len(m.regionNames))
	}
	for _, r := range st.RegionStack {
		if r < 1 || int(r) > len(m.regionNames) {
			return fmt.Errorf("extrae: snapshot region stack holds unregistered region %d", r)
		}
	}
	if err := m.stacks.RestoreStacks(st.Stacks); err != nil {
		return err
	}
	if int(st.CurStackID) >= m.stacks.Len() {
		return fmt.Errorf("extrae: snapshot stack id %d outside table of %d", st.CurStackID, m.stacks.Len())
	}
	if err := m.engine.RestoreState(st.Engine); err != nil {
		return err
	}
	if err := m.core.RestoreState(st.Core); err != nil {
		return err
	}
	m.records = append(m.records[:0], st.Records...)
	m.regionStack = append(m.regionStack[:0], st.RegionStack...)
	m.callStack = prog.CallStack{}
	for _, ip := range st.CallStack {
		m.callStack.Push(ip)
	}
	m.curStackID = st.CurStackID
	m.stackDirty = st.StackDirty
	m.muxNext = st.MuxNext
	m.loadRem = st.LoadRem
	m.storeRem = st.StoreRem
	m.lastLoads = st.LastLoads
	m.lastStores = st.LastStores
	m.pendingSnaps = m.pendingSnaps[:0]
	m.enabled = true
	m.started = true
	m.finished = false
	if m.gated {
		m.armGates()
	}
	return nil
}
