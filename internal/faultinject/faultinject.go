// Package faultinject is the error-point registry of the robustness test
// harness: named points in the production code consult the registry (a
// single atomic load when nothing is armed) and return an injected error on
// the configured hit, letting the test suite prove that an ENOSPC mid-trace,
// a partial write, or a kill at operation N surfaces as a clean structured
// error — never a corrupt artifact or a hang.
//
// Points are compile-time strings owned by the package that hits them
// ("core.instance", "atomicio.write", "atomicio.close", "atomicio.rename").
// The registry is global and mutex-protected; production fast paths pay one
// atomic load while the registry is empty, which is the armed-by-tests-only
// contract.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// ErrInjected is the default injected failure, recognizable with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Point names hit by production code. Centralizing the spellings keeps the
// arm sites and the hit sites from drifting apart.
const (
	// PointInstance fires at instance boundaries of the deterministic core
	// run loop (the "kill at op N" point).
	PointInstance = "core.instance"
	// PointWrite, PointClose and PointRename fire inside the atomic artifact
	// writer (ENOSPC / partial write / failed replace).
	PointWrite  = "atomicio.write"
	PointClose  = "atomicio.close"
	PointRename = "atomicio.rename"
	// PointCheckpoint fires before a checkpoint snapshot is written.
	PointCheckpoint = "checkpoint.write"
	// The simd server's error points: request admission, queue insertion,
	// job execution, the shared-cache write after a simulated run, and the
	// drain-time checkpoint/park path. Arming them proves a fault at any
	// server stage surfaces as a structured, retryable error — never a
	// lost job, a torn cache entry or a wedged queue.
	PointServerAccept     = "simd.accept"
	PointServerEnqueue    = "simd.enqueue"
	PointServerRun        = "simd.run"
	PointServerCacheWrite = "simd.cachewrite"
	PointServerDrain      = "simd.drain.checkpoint"
)

type point struct {
	after uint64 // fire on the after-th hit (1-based)
	hits  uint64
	err   error
}

var (
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enable arms name to fail on its after-th Hit (1-based; 1 fails the next
// hit) and on every hit past it, with err (nil selects ErrInjected).
func Enable(name string, after uint64, err error) {
	if after == 0 {
		after = 1
	}
	if err == nil {
		err = ErrInjected
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{after: after, err: err}
}

// Disable disarms one point.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point (deferred by every test that arms one).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for name := range points {
		delete(points, name)
	}
	armed.Store(0)
}

// Hit reports one pass over the named point: nil while the point is unarmed
// or its trigger count not yet reached, the injected error afterwards. The
// unarmed fast path is one atomic load.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return nil
	}
	p.hits++
	if p.hits >= p.after {
		return fmt.Errorf("%s: %w", name, p.err)
	}
	return nil
}

// Hits returns the recorded hit count of an armed point (0 if unarmed).
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Writer wraps w so every Write consults the named point first; when the
// point fires, half the buffer is written through before the injected error
// returns — the torn, short write a real ENOSPC produces.
func Writer(w io.Writer, name string) io.Writer {
	return &faultWriter{w: w, name: name}
}

type faultWriter struct {
	w    io.Writer
	name string
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if err := Hit(fw.name); err != nil {
		n, _ := fw.w.Write(p[:len(p)/2])
		return n, err
	}
	return fw.w.Write(p)
}
