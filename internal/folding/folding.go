// Package folding implements the BSC Folding mechanism extended with the
// memory perspective, the analysis half of the paper. Folding exploits the
// repetitive structure of HPC codes: an instrumented region (say, one CG
// iteration) executes hundreds of times, each instance carrying only a
// handful of coarse-grained samples; projecting every sample onto the
// normalized time axis of a single synthetic instance produces a dense
// picture of the region's internal evolution without high-frequency
// sampling — the paper's low-overhead claim.
//
// Three folded views are produced, matching the three panels of Figure 1:
//
//   - performance: cumulative hardware-counter fractions regressed into
//     smooth curves (Kriging in the original tool, kernel regression here)
//     and differentiated into instantaneous rates (MIPS, misses/instr);
//   - memory: the sampled addresses scattered over normalized time, with
//     load/store, latency, data source and data-object identity;
//   - source code: the sampled instruction pointers over normalized time,
//     resolved to functions and lines.
package folding

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Sample is one monitoring sample inside a region instance, before folding.
type Sample struct {
	TimeNs   uint64
	Counters [cpu.NumCounters]uint64
	Addr     uint64
	Latency  uint64
	Source   memhier.DataSource
	Store    bool
	IP       uint64
	StackID  uint32
	Size     int
}

// Instance is one dynamic execution of the folded region.
type Instance struct {
	T0, T1  uint64 // entry and exit times (ns)
	C0, C1  [cpu.NumCounters]uint64
	Samples []Sample
}

// DurationNs returns the instance duration.
func (in *Instance) DurationNs() uint64 { return in.T1 - in.T0 }

// Extract collects the instances of the given region id from a chronological
// trace record stream, attaching the samples that fall inside each instance.
// Regions nest (an HPCG iteration contains SYMGS/SPMV/MG sub-regions); the
// nesting depth of sub-regions opened inside the instance is tracked so
// only the matching end event closes an instance. End events are anonymous
// (value 0), so matching is LIFO, as in any well-nested stream: a depth-0
// end inside an instance closes it — extracting a nested region from
// inside an enclosing one (SYMGS inside CG_iteration) depends on this.
// Ends seen outside any instance (an enclosing region's end, or an
// unmatched end whose entry predates the trace) are ignored. Nested
// occurrences of the *same* region id are rejected.
//
// Extract assumes a single-thread stream: every record must come from one
// (task, thread). For a merged multi-thread trace use ExtractThread, which
// filters by emitter — scanning a merged trace thread-blind interleaves
// region events from different threads (a foreign end event lands inside
// an open instance and truncates it at the wrong timestamp) and corrupts
// every folded curve.
func Extract(records []trace.Record, region int64) ([]Instance, error) {
	return extract(records, region, 0, 0)
}

// ExtractThread is Extract over the records emitted by one (task, thread)
// of a merged multi-thread trace (ids are 1-based, as in Paraver). Records
// from other emitters are ignored, so each simulated thread of a Machine
// run folds independently.
func ExtractThread(records []trace.Record, region int64, task, thread int) ([]Instance, error) {
	if task <= 0 || thread <= 0 {
		return nil, fmt.Errorf("folding: task/thread must be 1-based, got %d/%d", task, thread)
	}
	return extract(records, region, task, thread)
}

// extract implements Extract and ExtractThread; task == 0 disables the
// emitter filter.
func extract(records []trace.Record, region int64, task, thread int) ([]Instance, error) {
	var out []Instance
	var cur *Instance
	depth := 0 // nested sub-regions opened inside the current instance
	for i := range records {
		rec := &records[i]
		if task != 0 && (rec.Task != task || rec.Thread != thread) {
			continue
		}
		if v, ok := rec.Get(trace.TypeRegion); ok {
			switch {
			case v == region:
				if cur != nil {
					return nil, fmt.Errorf("folding: nested instance of region %d at %d ns", region, rec.TimeNs)
				}
				cur = &Instance{T0: rec.TimeNs, C0: countersOf(rec)}
				depth = 0
			case v > 0 && cur != nil:
				depth++
			case v == 0 && cur != nil:
				if depth > 0 {
					depth--
					continue
				}
				// LIFO: the innermost open region is the instance itself,
				// so a depth-0 end closes it. (Ends carry no region id; a
				// trace whose enclosing region ends mid-instance is not
				// well-nested and indistinguishable from this case.)
				cur.T1 = rec.TimeNs
				cur.C1 = countersOf(rec)
				out = append(out, *cur)
				cur = nil
			}
			// Region events outside any instance — enclosing opens, their
			// ends, and unmatched ends whose opens predate the trace — do
			// not affect extraction.
			continue
		}
		if cur == nil {
			continue
		}
		if addr, ok := rec.Get(trace.TypeSampleAddr); ok {
			s := Sample{TimeNs: rec.TimeNs, Addr: uint64(addr), Counters: countersOf(rec)}
			if v, ok := rec.Get(trace.TypeSampleLatency); ok {
				s.Latency = uint64(v)
			}
			if v, ok := rec.Get(trace.TypeSampleSource); ok {
				s.Source = memhier.DataSource(v)
			}
			if v, ok := rec.Get(trace.TypeSampleStore); ok {
				s.Store = v == 1
			}
			if v, ok := rec.Get(trace.TypeSampleIP); ok {
				s.IP = uint64(v)
			}
			if v, ok := rec.Get(trace.TypeSampleStack); ok {
				s.StackID = uint32(v)
			}
			if v, ok := rec.Get(trace.TypeSampleSize); ok {
				s.Size = int(v)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	return out, nil
}

func countersOf(rec *trace.Record) [cpu.NumCounters]uint64 {
	var c [cpu.NumCounters]uint64
	for i := cpu.CounterID(0); i < cpu.NumCounters; i++ {
		if v, ok := rec.Get(trace.TypeCounterBase + uint32(i)); ok {
			c[i] = uint64(v)
		}
	}
	return c
}

// Config parameterizes the folding computation.
type Config struct {
	// GridPoints is the resolution of the folded time axis (default 200).
	GridPoints int
	// Bandwidth is the kernel-regression bandwidth in normalized time
	// units (default 0.02; the ablation bench sweeps it).
	Bandwidth float64
	// Kernel selects the regression kernel (default Gaussian).
	Kernel stats.Kernel
	// OutlierFactor drops instances whose duration deviates from the
	// median by more than this factor (default 2; 0 keeps everything).
	// The original Folding similarly filters perturbed instances.
	OutlierFactor float64
	// PhaseTol is the relative tolerance of the phase detector applied to
	// the folded source-line signal (default 0.04).
	PhaseTol float64
	// MinPhaseWidth is the minimum phase width in normalized time; narrower
	// detections are merged (default 0.02).
	MinPhaseWidth float64
	// PhaseIP maps a sample to the instruction pointer used for phase
	// attribution. The default (nil) uses the sample's leaf IP; the session
	// layer substitutes the outermost instrumented call frame when one is
	// active, which is how the original tools attribute the multigrid
	// coarse-level work to ComputeMG_ref rather than to the smoother code
	// it shares with the fine level.
	PhaseIP func(Sample) uint64
	// FuncOf resolves an instruction pointer to a function name. When set,
	// the phase-sliver merging uses exact function identity; otherwise it
	// falls back to an IP-distance heuristic.
	FuncOf func(ip uint64) string
}

// DefaultConfig returns the defaults documented on Config.
func DefaultConfig() Config {
	return Config{
		GridPoints:    200,
		Bandwidth:     0.02,
		Kernel:        stats.Gaussian,
		OutlierFactor: 2,
		PhaseTol:      0.04,
		MinPhaseWidth: 0.02,
	}
}

// MemPoint is one folded memory sample: a point of the Figure 1 middle
// panel.
type MemPoint struct {
	// Sigma is the normalized time within the synthetic instance, in [0,1).
	Sigma float64
	// Addr is the referenced address.
	Addr uint64
	// Store distinguishes the black (store) points from the others.
	Store   bool
	Latency uint64
	Source  memhier.DataSource
	// IP is the sampled instruction pointer; PhaseIP is the pointer used
	// for phase attribution (equal to IP unless Config.PhaseIP remaps it).
	IP      uint64
	PhaseIP uint64
	StackID uint32
	Size    int
}

// LinePoint is one folded source-code sample: a point of the top panel.
type LinePoint struct {
	Sigma float64
	IP    uint64
}

// Folded is the result of folding one region.
type Folded struct {
	// Region is the folded region id as found in the trace.
	Region int64
	// InstancesUsed and InstancesTotal count kept vs observed instances.
	InstancesUsed, InstancesTotal int
	// MeanDurationNs is the mean duration of the kept instances.
	MeanDurationNs float64
	// MeanTotals holds the mean per-instance counter increments.
	MeanTotals [cpu.NumCounters]float64
	// Grid is the normalized time axis shared by all curves.
	Grid []float64
	// Cumulative maps each counter to its folded cumulative-fraction curve
	// over Grid (0 at sigma=0 rising to 1 at sigma=1).
	Cumulative map[cpu.CounterID][]float64
	// Rates maps each counter to its instantaneous rate in events/second.
	Rates map[cpu.CounterID][]float64
	// Mem holds every folded memory sample, sorted by Sigma.
	Mem []MemPoint
	// Lines holds every folded source-code sample, sorted by Sigma.
	Lines []LinePoint
	// Phases is the detected phase structure (see mem.go).
	Phases []Phase
	cfg    Config
}

// MIPS returns the folded instruction rate in millions of instructions per
// second, the headline curve of Figure 1's bottom panel.
func (f *Folded) MIPS() []float64 {
	r := f.Rates[cpu.CtrInstructions]
	out := make([]float64, len(r))
	for i, v := range r {
		out[i] = v / 1e6
	}
	return out
}

// PerInstruction returns the folded ratio of counter c per instruction
// (e.g. L1D misses per instruction), the other curves of the bottom panel.
func (f *Folded) PerInstruction(c cpu.CounterID) []float64 {
	num := f.Rates[c]
	den := f.Rates[cpu.CtrInstructions]
	out := make([]float64, len(num))
	for i := range num {
		if den[i] <= 0 {
			out[i] = 0
			continue
		}
		out[i] = num[i] / den[i]
	}
	return out
}

// MeanIPC returns mean instructions per cycle over the kept instances.
func (f *Folded) MeanIPC() float64 {
	if f.MeanTotals[cpu.CtrCycles] == 0 {
		return 0
	}
	return f.MeanTotals[cpu.CtrInstructions] / f.MeanTotals[cpu.CtrCycles]
}

// Fold runs the folding computation over the extracted instances.
func Fold(instances []Instance, cfg Config) (*Folded, error) {
	if cfg.GridPoints == 0 {
		cfg.GridPoints = 200
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = 0.02
	}
	if cfg.PhaseTol == 0 {
		cfg.PhaseTol = 0.04
	}
	if cfg.MinPhaseWidth == 0 {
		cfg.MinPhaseWidth = 0.02
	}
	if len(instances) == 0 {
		return nil, fmt.Errorf("folding: no instances to fold")
	}
	kept := filterOutliers(instances, cfg.OutlierFactor)
	if len(kept) == 0 {
		return nil, fmt.Errorf("folding: all %d instances filtered as outliers", len(instances))
	}
	f := &Folded{
		Region:         0,
		InstancesUsed:  len(kept),
		InstancesTotal: len(instances),
		Grid:           stats.UniformGrid(0, 1, cfg.GridPoints),
		Cumulative:     make(map[cpu.CounterID][]float64),
		Rates:          make(map[cpu.CounterID][]float64),
		cfg:            cfg,
	}
	var durSum float64
	for i := range kept {
		durSum += float64(kept[i].DurationNs())
		for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
			f.MeanTotals[c] += float64(kept[i].C1[c] - kept[i].C0[c])
		}
	}
	f.MeanDurationNs = durSum / float64(len(kept))
	for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
		f.MeanTotals[c] /= float64(len(kept))
	}

	// Fold the counters: gather (sigma, cumulative fraction) points. The
	// gather buffers are shared across counters (each iteration truncates
	// and refills them), cutting the per-Fold allocation count: the fitted
	// curves copy what they need, nothing retains xs/ys.
	sm := stats.Smoother{Kernel: cfg.Kernel, Bandwidth: cfg.Bandwidth, Lo: 0, Hi: 1}
	var xs, ys []float64
	for c := cpu.CounterID(0); c < cpu.NumCounters; c++ {
		xs, ys = foldCounter(kept, c, xs[:0], ys[:0])
		if len(xs) == 0 {
			// The counter never increments (e.g. stores in a read-only
			// region): flat zero curves keep all per-counter slices aligned
			// with the grid.
			f.Cumulative[c] = make([]float64, len(f.Grid))
			f.Rates[c] = make([]float64, len(f.Grid))
			continue
		}
		fit, err := sm.Fit(xs, ys, f.Grid)
		if err != nil {
			return nil, fmt.Errorf("folding: regressing %v: %w", c, err)
		}
		// Cumulative fractions are physically monotone in [0,1]; pin the
		// endpoints before differentiating.
		fit = stats.Isotonic(fit)
		stats.Clamp(fit, 0, 1)
		fit[0] = 0
		fit[len(fit)-1] = 1
		f.Cumulative[c] = fit
		d, err := stats.Derivative(f.Grid, fit)
		if err != nil {
			return nil, err
		}
		// dFraction/dSigma × total / duration = events per second.
		scale := f.MeanTotals[c] / (f.MeanDurationNs / 1e9)
		rate := make([]float64, len(d))
		for i, v := range d {
			if v < 0 {
				v = 0
			}
			rate[i] = v * scale
		}
		f.Rates[c] = rate
	}

	// Fold the memory and source-code samples (pre-sized: every kept sample
	// yields at most one point of each cloud).
	var nSamples int
	for i := range kept {
		nSamples += len(kept[i].Samples)
	}
	f.Mem = make([]MemPoint, 0, nSamples)
	f.Lines = make([]LinePoint, 0, nSamples)
	for i := range kept {
		in := &kept[i]
		dur := float64(in.DurationNs())
		if dur == 0 {
			continue
		}
		for _, s := range in.Samples {
			sigma := float64(s.TimeNs-in.T0) / dur
			if sigma < 0 || sigma >= 1 {
				continue
			}
			pip := s.IP
			if cfg.PhaseIP != nil {
				pip = cfg.PhaseIP(s)
			}
			f.Mem = append(f.Mem, MemPoint{
				Sigma: sigma, Addr: s.Addr, Store: s.Store, Latency: s.Latency,
				Source: s.Source, IP: s.IP, PhaseIP: pip, StackID: s.StackID, Size: s.Size,
			})
			f.Lines = append(f.Lines, LinePoint{Sigma: sigma, IP: pip})
		}
	}
	slices.SortFunc(f.Mem, func(a, b MemPoint) int {
		switch {
		case a.Sigma < b.Sigma:
			return -1
		case a.Sigma > b.Sigma:
			return 1
		}
		return 0
	})
	slices.SortFunc(f.Lines, func(a, b LinePoint) int {
		switch {
		case a.Sigma < b.Sigma:
			return -1
		case a.Sigma > b.Sigma:
			return 1
		}
		return 0
	})

	f.Phases = detectPhases(f, cfg)
	return f, nil
}

// filterOutliers keeps instances whose duration lies within factor of the
// median duration.
func filterOutliers(instances []Instance, factor float64) []Instance {
	if factor <= 0 || len(instances) < 3 {
		return instances
	}
	durs := make([]float64, len(instances))
	for i := range instances {
		durs[i] = float64(instances[i].DurationNs())
	}
	med := stats.Quantile(durs, 0.5)
	if med == 0 || math.IsNaN(med) {
		return instances
	}
	out := make([]Instance, 0, len(instances))
	for i := range instances {
		d := durs[i]
		if d >= med/factor && d <= med*factor {
			out = append(out, instances[i])
		}
	}
	return out
}

// foldCounter produces the folded (sigma, cumulative fraction) cloud for
// counter c across instances, including the (0,0) and (1,1) anchors of each
// instance, appending into the caller's reusable buffers.
func foldCounter(instances []Instance, c cpu.CounterID, xs, ys []float64) ([]float64, []float64) {
	for i := range instances {
		in := &instances[i]
		total := float64(in.C1[c] - in.C0[c])
		dur := float64(in.DurationNs())
		if total <= 0 || dur <= 0 {
			continue
		}
		xs = append(xs, 0, 1)
		ys = append(ys, 0, 1)
		for _, s := range in.Samples {
			sigma := float64(s.TimeNs-in.T0) / dur
			if sigma < 0 || sigma > 1 {
				continue
			}
			frac := (float64(s.Counters[c]) - float64(in.C0[c])) / total
			if frac < 0 || frac > 1 || math.IsNaN(frac) {
				continue
			}
			xs = append(xs, sigma)
			ys = append(ys, frac)
		}
	}
	return xs, ys
}
