package folding

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/memhier"
	"repro/internal/trace"
)

// synthInstance builds one instance of duration durNs starting at t0 with
// nSamples samples. The instance has two halves: first half executes at
// ipA sweeping addresses forward over [addrBase, addrBase+span), second
// half at ipB sweeping backward over the same range. Instructions
// accumulate linearly; every 4th sample is a store.
func synthInstance(t0, durNs uint64, nSamples int, ipA, ipB, addrBase, span uint64) Instance {
	const totalInstr = 1_000_000
	in := Instance{T0: t0, T1: t0 + durNs}
	in.C1[cpu.CtrInstructions] = in.C0[cpu.CtrInstructions] + totalInstr
	in.C0[cpu.CtrCycles] = 0
	in.C1[cpu.CtrCycles] = 2 * totalInstr // IPC 0.5
	in.C0[cpu.CtrBranches] = 0
	in.C1[cpu.CtrBranches] = totalInstr / 10
	in.C0[cpu.CtrL1DMiss] = 0
	in.C1[cpu.CtrL1DMiss] = totalInstr / 20
	for i := 0; i < nSamples; i++ {
		sigma := (float64(i) + 0.5) / float64(nSamples)
		s := Sample{
			TimeNs:  t0 + uint64(sigma*float64(durNs)),
			Store:   i%4 == 0,
			Size:    8,
			Source:  memhier.SrcL2,
			Latency: 12,
		}
		s.Counters[cpu.CtrInstructions] = uint64(sigma * totalInstr)
		s.Counters[cpu.CtrCycles] = uint64(sigma * 2 * totalInstr)
		s.Counters[cpu.CtrBranches] = uint64(sigma * totalInstr / 10)
		s.Counters[cpu.CtrL1DMiss] = uint64(sigma * totalInstr / 20)
		if sigma < 0.5 {
			s.IP = ipA
			s.Addr = addrBase + uint64(2*sigma*float64(span))
		} else {
			s.IP = ipB
			s.Addr = addrBase + span - uint64(2*(sigma-0.5)*float64(span))
		}
		in.Samples = append(in.Samples, s)
	}
	return in
}

func synthInstances(n int) []Instance {
	const dur = 1_000_000 // 1 ms
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		// Jitter the per-instance sample phase by varying the count.
		out = append(out, synthInstance(uint64(i)*2*dur, dur, 40+i%7,
			0x401000, 0x402000, 0x10000000, 1<<26))
	}
	return out
}

func TestFoldErrors(t *testing.T) {
	if _, err := Fold(nil, DefaultConfig()); err == nil {
		t.Error("empty instances accepted")
	}
}

func TestFoldBasics(t *testing.T) {
	f, err := Fold(synthInstances(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.InstancesUsed != 20 || f.InstancesTotal != 20 {
		t.Errorf("instances = %d/%d", f.InstancesUsed, f.InstancesTotal)
	}
	if math.Abs(f.MeanDurationNs-1e6) > 1 {
		t.Errorf("mean duration = %g", f.MeanDurationNs)
	}
	if math.Abs(f.MeanTotals[cpu.CtrInstructions]-1e6) > 1 {
		t.Errorf("mean instructions = %g", f.MeanTotals[cpu.CtrInstructions])
	}
	if ipc := f.MeanIPC(); math.Abs(ipc-0.5) > 1e-9 {
		t.Errorf("MeanIPC = %g, want 0.5", ipc)
	}
}

func TestFoldedCumulativeMonotone(t *testing.T) {
	f, err := Fold(synthInstances(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c, curve := range f.Cumulative {
		if f.MeanTotals[c] == 0 {
			continue // counter never increments: flat zero curve
		}
		if curve[0] != 0 || curve[len(curve)-1] != 1 {
			t.Errorf("%v: endpoints %g, %g", c, curve[0], curve[len(curve)-1])
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1] {
				t.Fatalf("%v: cumulative curve not monotone at %d", c, i)
			}
		}
	}
}

func TestFoldedRateMatchesLinearAccumulation(t *testing.T) {
	// Instructions accumulate linearly: the folded rate must be flat at
	// total/duration = 1e6 instr / 1e-3 s = 1e9/s → 1000 MIPS.
	f, err := Fold(synthInstances(30), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mips := f.MIPS()
	for i, g := range f.Grid {
		if g < 0.1 || g > 0.9 {
			continue // edges have derivative bias
		}
		if math.Abs(mips[i]-1000)/1000 > 0.15 {
			t.Errorf("MIPS(%.2f) = %g, want ~1000", g, mips[i])
		}
	}
}

func TestPerInstruction(t *testing.T) {
	f, err := Fold(synthInstances(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	br := f.PerInstruction(cpu.CtrBranches)
	for i, g := range f.Grid {
		if g < 0.1 || g > 0.9 {
			continue
		}
		if math.Abs(br[i]-0.1) > 0.03 {
			t.Errorf("branches/instr at %.2f = %g, want ~0.1", g, br[i])
		}
	}
}

func TestOutlierFiltering(t *testing.T) {
	ins := synthInstances(10)
	// One instance 10x longer (e.g. perturbed by OS noise).
	long := synthInstance(100_000_000, 10_000_000, 40, 0x401000, 0x402000, 0x10000000, 1<<26)
	ins = append(ins, long)
	f, err := Fold(ins, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.InstancesUsed != 10 || f.InstancesTotal != 11 {
		t.Errorf("outlier not filtered: used %d of %d", f.InstancesUsed, f.InstancesTotal)
	}
	// Factor 0 disables filtering.
	cfg := DefaultConfig()
	cfg.OutlierFactor = 0
	f2, _ := Fold(ins, cfg)
	if f2.InstancesUsed != 11 {
		t.Errorf("filtering not disabled: %d", f2.InstancesUsed)
	}
}

func TestMemSamplesFoldedSorted(t *testing.T) {
	f, err := Fold(synthInstances(15), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Mem) == 0 || len(f.Lines) != len(f.Mem) {
		t.Fatalf("mem/lines = %d/%d", len(f.Mem), len(f.Lines))
	}
	for i := 1; i < len(f.Mem); i++ {
		if f.Mem[i].Sigma < f.Mem[i-1].Sigma {
			t.Fatal("Mem not sorted by sigma")
		}
	}
	for _, mp := range f.Mem {
		if mp.Sigma < 0 || mp.Sigma >= 1 {
			t.Fatalf("sigma %g out of range", mp.Sigma)
		}
	}
	var stores int
	for _, mp := range f.Mem {
		if mp.Store {
			stores++
		}
	}
	if stores == 0 || stores == len(f.Mem) {
		t.Error("store flags not preserved")
	}
}

func TestPhaseDetectionSplitsFunctionsAndSweeps(t *testing.T) {
	f, err := Fold(synthInstances(30), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Phases) < 2 {
		t.Fatalf("detected %d phases, want >= 2 (two IP regions)", len(f.Phases))
	}
	// Phases tile [0,1].
	if f.Phases[0].Lo != 0 || f.Phases[len(f.Phases)-1].Hi != 1 {
		t.Errorf("phases do not span [0,1]: %+v", f.Phases)
	}
	for i := 1; i < len(f.Phases); i++ {
		if f.Phases[i].Lo != f.Phases[i-1].Hi {
			t.Errorf("gap between phases %d and %d", i-1, i)
		}
	}
	// First phase sweeps forward, last sweeps backward.
	first, last := f.Phases[0], f.Phases[len(f.Phases)-1]
	if first.Direction != SweepForward {
		t.Errorf("first phase direction = %v, want forward", first.Direction)
	}
	if last.Direction != SweepBackward {
		t.Errorf("last phase direction = %v, want backward", last.Direction)
	}
	if first.DominantIP != 0x401000 || last.DominantIP != 0x402000 {
		t.Errorf("dominant IPs = %#x, %#x", first.DominantIP, last.DominantIP)
	}
}

func TestPhaseBandwidthApproximation(t *testing.T) {
	// Forward sweep covers 64 MiB in ~0.5 ms → ~128 GiB/s span bandwidth.
	f, err := Fold(synthInstances(30), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := f.Phases[0]
	want := float64(1<<26) / (0.5e6 / 1e9)
	if p.SpanBandwidth < want/3 || p.SpanBandwidth > want*3 {
		t.Errorf("span bandwidth = %g, want within 3x of %g", p.SpanBandwidth, want)
	}
	if p.MIPSMean < 500 || p.MIPSMean > 1500 {
		t.Errorf("phase MIPS = %g, want ~1000", p.MIPSMean)
	}
	if p.Loads == 0 || p.Stores == 0 {
		t.Error("phase sample counts empty")
	}
	if p.PerInstr[cpu.CtrBranches] == 0 {
		t.Error("phase per-instruction ratios empty")
	}
}

func TestLabelPhases(t *testing.T) {
	f, err := Fold(synthInstances(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.LabelPhases(func(ip uint64) string {
		if ip < 0x402000 {
			return "funcA"
		}
		return "funcB"
	})
	if f.Phases[0].Name != "funcA[forward]" {
		t.Errorf("phase 0 name = %q", f.Phases[0].Name)
	}
	last := f.Phases[len(f.Phases)-1]
	if last.Name != "funcB[backward]" {
		t.Errorf("last phase name = %q", last.Name)
	}
	// Nil resolver is a no-op.
	f.Phases[0].Name = "keep"
	f.LabelPhases(nil)
	if f.Phases[0].Name != "keep" {
		t.Error("nil resolver modified names")
	}
}

func TestPhaseAt(t *testing.T) {
	f, err := Fold(synthInstances(20), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := f.PhaseAt(0.1)
	if !ok || p.Lo > 0.1 || p.Hi <= 0.1 {
		t.Errorf("PhaseAt(0.1) = %+v, %v", p, ok)
	}
	if _, ok := f.PhaseAt(1.5); ok {
		t.Error("PhaseAt(1.5) matched")
	}
}

func TestSweepDirString(t *testing.T) {
	if SweepFlat.String() != "flat" || SweepForward.String() != "forward" ||
		SweepBackward.String() != "backward" {
		t.Error("SweepDir names")
	}
	if SweepDir(7).String() != "SweepDir(7)" {
		t.Error("unknown SweepDir")
	}
}

func TestExtractInstances(t *testing.T) {
	ctr := func(instr uint64) []trace.TypeValue {
		return []trace.TypeValue{
			{Type: trace.TypeCounterBase + uint32(cpu.CtrInstructions), Value: int64(instr)},
		}
	}
	recs := []trace.Record{
		{TimeNs: 100, Task: 1, Thread: 1,
			Pairs: append([]trace.TypeValue{{Type: trace.TypeRegion, Value: 7}}, ctr(10)...)},
		{TimeNs: 150, Task: 1, Thread: 1, Pairs: append([]trace.TypeValue{
			{Type: trace.TypeSampleAddr, Value: 0x1000},
			{Type: trace.TypeSampleLatency, Value: 36},
			{Type: trace.TypeSampleSource, Value: int64(memhier.SrcL3)},
			{Type: trace.TypeSampleStore, Value: 1},
			{Type: trace.TypeSampleIP, Value: 0x400100},
			{Type: trace.TypeSampleStack, Value: 3},
			{Type: trace.TypeSampleSize, Value: 8},
		}, ctr(50)...)},
		{TimeNs: 200, Task: 1, Thread: 1,
			Pairs: append([]trace.TypeValue{{Type: trace.TypeRegion, Value: 0}}, ctr(110)...)},
		// A sample outside any instance is ignored.
		{TimeNs: 250, Task: 1, Thread: 1, Pairs: []trace.TypeValue{
			{Type: trace.TypeSampleAddr, Value: 0x9999}}},
		// Second instance, no samples.
		{TimeNs: 300, Task: 1, Thread: 1,
			Pairs: append([]trace.TypeValue{{Type: trace.TypeRegion, Value: 7}}, ctr(200)...)},
		{TimeNs: 400, Task: 1, Thread: 1,
			Pairs: append([]trace.TypeValue{{Type: trace.TypeRegion, Value: 0}}, ctr(300)...)},
	}
	ins, err := Extract(recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("extracted %d instances", len(ins))
	}
	in := ins[0]
	if in.T0 != 100 || in.T1 != 200 || in.DurationNs() != 100 {
		t.Errorf("instance bounds = %d..%d", in.T0, in.T1)
	}
	if in.C0[cpu.CtrInstructions] != 10 || in.C1[cpu.CtrInstructions] != 110 {
		t.Errorf("instance counters = %v..%v", in.C0, in.C1)
	}
	if len(in.Samples) != 1 {
		t.Fatalf("instance samples = %d", len(in.Samples))
	}
	s := in.Samples[0]
	if s.Addr != 0x1000 || s.Latency != 36 || s.Source != memhier.SrcL3 ||
		!s.Store || s.IP != 0x400100 || s.StackID != 3 || s.Size != 8 ||
		s.Counters[cpu.CtrInstructions] != 50 {
		t.Errorf("sample = %+v", s)
	}
	if len(ins[1].Samples) != 0 {
		t.Error("second instance should have no samples")
	}
}

func TestExtractNestedRejected(t *testing.T) {
	recs := []trace.Record{
		{TimeNs: 1, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 7}}},
		{TimeNs: 2, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 7}}},
	}
	if _, err := Extract(recs, 7); err == nil {
		t.Error("nested instance accepted")
	}
}

func TestExtractIgnoresOtherRegions(t *testing.T) {
	recs := []trace.Record{
		{TimeNs: 1, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 5}}},
		{TimeNs: 2, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 0}}},
	}
	ins, err := Extract(recs, 7)
	if err != nil || len(ins) != 0 {
		t.Errorf("ins = %v, err = %v", ins, err)
	}
}

// regionRec builds a one-pair region record for the given emitter.
func regionRec(tns uint64, task, thread int, value int64, instr uint64) trace.Record {
	return trace.Record{TimeNs: tns, Task: task, Thread: thread, Pairs: []trace.TypeValue{
		{Type: trace.TypeRegion, Value: value},
		{Type: trace.TypeCounterBase + uint32(cpu.CtrInstructions), Value: int64(instr)},
	}}
}

// sampleRec builds a one-address sample record for the given emitter.
func sampleRec(tns uint64, task, thread int, addr uint64) trace.Record {
	return trace.Record{TimeNs: tns, Task: task, Thread: thread, Pairs: []trace.TypeValue{
		{Type: trace.TypeSampleAddr, Value: int64(addr)},
	}}
}

// TestExtractThreadInterleaved is the regression test for thread-blind
// extraction: a merged two-thread trace interleaves region events and
// samples, and a per-thread extraction must see only its own thread's
// instances and samples, at its own timestamps.
func TestExtractThreadInterleaved(t *testing.T) {
	// Thread 1: instance [100, 300] with a sample at 200.
	// Thread 2: instance [150, 420] with samples at 180 and 350 — its
	// region events land inside thread 1's instance in the merged order.
	merged := trace.Merge([]trace.Record{
		regionRec(100, 1, 1, 7, 10),
		sampleRec(200, 1, 1, 0x1000),
		regionRec(300, 1, 1, 0, 110),
	}, []trace.Record{
		regionRec(150, 1, 2, 7, 1000),
		sampleRec(180, 1, 2, 0x2000),
		sampleRec(350, 1, 2, 0x3000),
		regionRec(420, 1, 2, 0, 1500),
	})
	for _, tc := range []struct {
		thread  int
		t0, t1  uint64
		samples []uint64
		c0, c1  uint64
	}{
		{thread: 1, t0: 100, t1: 300, samples: []uint64{0x1000}, c0: 10, c1: 110},
		{thread: 2, t0: 150, t1: 420, samples: []uint64{0x2000, 0x3000}, c0: 1000, c1: 1500},
	} {
		ins, err := ExtractThread(merged, 7, 1, tc.thread)
		if err != nil {
			t.Fatalf("thread %d: %v", tc.thread, err)
		}
		if len(ins) != 1 {
			t.Fatalf("thread %d: %d instances, want 1", tc.thread, len(ins))
		}
		in := ins[0]
		if in.T0 != tc.t0 || in.T1 != tc.t1 {
			t.Errorf("thread %d: bounds %d..%d, want %d..%d", tc.thread, in.T0, in.T1, tc.t0, tc.t1)
		}
		if in.C0[cpu.CtrInstructions] != tc.c0 || in.C1[cpu.CtrInstructions] != tc.c1 {
			t.Errorf("thread %d: counters %d..%d, want %d..%d", tc.thread,
				in.C0[cpu.CtrInstructions], in.C1[cpu.CtrInstructions], tc.c0, tc.c1)
		}
		if len(in.Samples) != len(tc.samples) {
			t.Fatalf("thread %d: %d samples, want %d", tc.thread, len(in.Samples), len(tc.samples))
		}
		for i, want := range tc.samples {
			if in.Samples[i].Addr != want {
				t.Errorf("thread %d sample %d: addr %#x, want %#x", tc.thread, i, in.Samples[i].Addr, want)
			}
		}
	}
	if _, err := ExtractThread(merged, 7, 0, 1); err == nil {
		t.Error("0-based task accepted")
	}
	// The thread-blind Extract cannot parse this stream (thread 2's entry
	// nests inside thread 1's open instance of the same region id).
	if _, err := Extract(merged, 7); err == nil {
		t.Error("thread-blind Extract accepted an interleaved merged trace")
	}
}

// TestExtractNestedRegionInsideEnclosure pins the nesting semantics for
// the common well-nested case: extracting a nested region (SYMGS inside a
// CG iteration) must close each instance at its own LIFO-matched end, not
// at the enclosing region's end — region events of the enclosure (its
// open before the instance, its end after) must not perturb the instance
// bounds.
func TestExtractNestedRegionInsideEnclosure(t *testing.T) {
	recs := []trace.Record{
		regionRec(0, 1, 1, 5, 0),    // enclosing iteration opens
		regionRec(10, 1, 1, 7, 100), // nested target instance opens
		sampleRec(20, 1, 1, 0x1000),
		regionRec(50, 1, 1, 0, 400), // the instance's own end (LIFO)
		sampleRec(60, 1, 1, 0x2000), // outside the instance: dropped
		regionRec(90, 1, 1, 0, 900), // the enclosure's end: ignored
		// Second iteration with a second instance.
		regionRec(100, 1, 1, 5, 1000),
		regionRec(110, 1, 1, 7, 1100),
		regionRec(150, 1, 1, 0, 1400),
		regionRec(190, 1, 1, 0, 1900),
	}
	ins, err := Extract(recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("%d instances, want 2", len(ins))
	}
	if in := ins[0]; in.T0 != 10 || in.T1 != 50 || in.C1[cpu.CtrInstructions] != 400 {
		t.Errorf("instance 0 = %d..%d (exit ctr %d), want 10..50 (400)",
			in.T0, in.T1, in.C1[cpu.CtrInstructions])
	}
	if len(ins[0].Samples) != 1 || ins[0].Samples[0].Addr != 0x1000 {
		t.Errorf("instance 0 samples = %+v, want the single in-instance sample", ins[0].Samples)
	}
	if in := ins[1]; in.T0 != 110 || in.T1 != 150 {
		t.Errorf("instance 1 = %d..%d, want 110..150", in.T0, in.T1)
	}
}

// TestExtractIgnoresUnmatchedEnds covers ends whose opens are not in the
// records (regions entered before monitoring started): between instances
// they must not disturb extraction.
func TestExtractIgnoresUnmatchedEnds(t *testing.T) {
	recs := []trace.Record{
		regionRec(5, 1, 1, 0, 0), // end of a region opened before the trace
		regionRec(10, 1, 1, 7, 100),
		regionRec(100, 1, 1, 0, 900),
		regionRec(150, 1, 1, 0, 950), // another stray end between instances
		regionRec(200, 1, 1, 7, 1000),
		regionRec(300, 1, 1, 0, 1900),
	}
	ins, err := Extract(recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("%d instances, want 2", len(ins))
	}
	if ins[0].T0 != 10 || ins[0].T1 != 100 || ins[1].T0 != 200 || ins[1].T1 != 300 {
		t.Errorf("instances mishandled around stray ends: %+v", ins)
	}
}
