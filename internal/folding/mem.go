package folding

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cpu"
	"repro/internal/stats"
)

// SweepDir classifies the address-space traversal direction of a phase.
type SweepDir int

const (
	// SweepFlat means no clear linear trend in the referenced addresses.
	SweepFlat SweepDir = iota
	// SweepForward means addresses grow over the phase (the paper's
	// "forward sweep", lower to upper addresses).
	SweepForward
	// SweepBackward means addresses shrink over the phase ("backward
	// sweep").
	SweepBackward
)

func (d SweepDir) String() string {
	switch d {
	case SweepFlat:
		return "flat"
	case SweepForward:
		return "forward"
	case SweepBackward:
		return "backward"
	}
	return fmt.Sprintf("SweepDir(%d)", int(d))
}

// Phase is one detected computation phase of the folded region: a segment
// of normalized time dominated by one code location, optionally split into
// sweep sub-phases (the paper's a1/a2 forward/backward halves of SYMGS).
type Phase struct {
	// Name is assigned by LabelPhases ("" until then).
	Name string
	// Lo and Hi delimit the phase on the normalized time axis.
	Lo, Hi float64
	// DominantIP is the median sampled instruction pointer of the phase.
	DominantIP uint64
	// Direction is the address sweep direction.
	Direction SweepDir
	// AddrLo and AddrHi are the 5th and 95th percentiles of the sampled
	// addresses (a robust traversal span).
	AddrLo, AddrHi uint64
	// Loads and Stores count the folded samples in the phase.
	Loads, Stores int
	// DurationNs is the phase share of the mean instance duration.
	DurationNs float64
	// MIPSMean is the mean folded instruction rate over the phase, in
	// millions of instructions per second.
	MIPSMean float64
	// PerInstr holds mean per-instruction ratios over the phase for the
	// miss and branch counters.
	PerInstr map[cpu.CounterID]float64
	// SpanBandwidth estimates the traversal bandwidth in bytes/second as
	// address span / phase duration — the paper's "approximation for the
	// memory bandwidth while traversing the structure".
	SpanBandwidth float64
}

// samplesIn returns the folded memory samples with Sigma in [lo, hi).
func samplesIn(mem []MemPoint, lo, hi float64) []MemPoint {
	i := sort.Search(len(mem), func(i int) bool { return mem[i].Sigma >= lo })
	j := sort.Search(len(mem), func(i int) bool { return mem[i].Sigma >= hi })
	return mem[i:j]
}

// detectPhases segments the folded region. The primary signal is the
// sampled instruction pointer over normalized time (distinct code regions
// occupy distinct IP ranges); phases are then split at address-sweep
// reversals, which separates the forward and backward halves of symmetric
// Gauss–Seidel even though both halves execute the same code.
func detectPhases(f *Folded, cfg Config) []Phase {
	if len(f.Lines) == 0 {
		return nil
	}
	// Median IP per grid cell.
	n := cfg.GridPoints
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		cell := linesIn(f.Lines, lo, hi)
		if len(cell) == 0 {
			continue
		}
		ips := make([]float64, len(cell))
		for k, lp := range cell {
			ips[k] = float64(lp.IP)
		}
		xs = append(xs, (lo+hi)/2)
		ys = append(ys, stats.Quantile(ips, 0.5))
	}
	if len(xs) == 0 {
		return nil
	}
	segs := stats.SegmentByThreshold(xs, ys, cfg.PhaseTol)
	segs = stats.MergeShortSegments(segs, cfg.MinPhaseWidth)
	// Extend the first and last segments to the domain edges.
	segs[0].Lo = 0
	segs[len(segs)-1].Hi = 1

	var phases []Phase
	for _, seg := range segs {
		phases = append(phases, f.splitSweeps(seg.Lo, seg.Hi, cfg)...)
	}
	for i := range phases {
		f.finishPhase(&phases[i])
	}
	return f.mergeSliverPhases(phases, cfg)
}

// mergeSliverPhases absorbs narrow transition slivers into an adjacent
// phase of the same code region (dominant IPs within one function's
// range). Phase boundaries land a little off the true transition when the
// segmenter's cells straddle it; the slivers this produces would otherwise
// surface as spurious paper phases with nonsense bandwidths.
func (f *Folded) mergeSliverPhases(phases []Phase, cfg Config) []Phase {
	const sameFuncIPRange = 16 * 16 // fallback: IPs within 16 source lines
	narrow := func(p *Phase) bool { return p.Hi-p.Lo < 2*cfg.MinPhaseWidth }
	sameFunc := func(a, b *Phase) bool {
		if cfg.FuncOf != nil {
			fa, fb := cfg.FuncOf(a.DominantIP), cfg.FuncOf(b.DominantIP)
			return fa != "" && fa == fb
		}
		d := int64(a.DominantIP) - int64(b.DominantIP)
		if d < 0 {
			d = -d
		}
		return d < sameFuncIPRange
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(phases); i++ {
			p := &phases[i]
			if !narrow(p) {
				continue
			}
			var into int
			switch {
			case i > 0 && sameFunc(p, &phases[i-1]) && !narrow(&phases[i-1]):
				into = i - 1
			case i+1 < len(phases) && sameFunc(p, &phases[i+1]) && !narrow(&phases[i+1]):
				into = i + 1
			default:
				continue
			}
			merged := Phase{Lo: minf(p.Lo, phases[into].Lo), Hi: maxf(p.Hi, phases[into].Hi)}
			f.finishPhase(&merged)
			phases[into] = merged
			phases = append(phases[:i], phases[i+1:]...)
			changed = true
			break
		}
	}
	return phases
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func linesIn(lines []LinePoint, lo, hi float64) []LinePoint {
	i := sort.Search(len(lines), func(i int) bool { return lines[i].Sigma >= lo })
	j := sort.Search(len(lines), func(i int) bool { return lines[i].Sigma >= hi })
	return lines[i:j]
}

// splitSweeps splits [lo, hi) at a persistent address-trend reversal,
// producing one or two phases. At most one split is attempted, which
// matches the fwd+bwd structure of symmetric sweeps.
func (f *Folded) splitSweeps(lo, hi float64, cfg Config) []Phase {
	mem := samplesIn(f.Mem, lo, hi)
	if len(mem) < 8 {
		return []Phase{{Lo: lo, Hi: hi}}
	}
	// Median address per sub-cell.
	const cells = 24
	medians := make([]float64, 0, cells)
	centers := make([]float64, 0, cells)
	for i := 0; i < cells; i++ {
		clo := lo + (hi-lo)*float64(i)/cells
		chi := lo + (hi-lo)*float64(i+1)/cells
		cell := samplesIn(mem, clo, chi)
		if len(cell) == 0 {
			continue
		}
		addrs := make([]float64, len(cell))
		for k, mp := range cell {
			addrs[k] = float64(mp.Addr)
		}
		medians = append(medians, stats.Quantile(addrs, 0.5))
		centers = append(centers, (clo+chi)/2)
	}
	if len(medians) < 6 {
		return []Phase{{Lo: lo, Hi: hi}}
	}
	// Locate the extremum of the median-address path; a genuine sweep
	// reversal puts it strictly inside with opposite trends on both sides.
	// The reversal of a symmetric sweep sits near the middle, so restrict
	// the candidate window to the central 70% — this rejects the spurious
	// splits that boundary noise would otherwise produce.
	n := len(medians)
	best := n / 2
	for i := n * 15 / 100; i < n*85/100; i++ {
		if math.Abs(medians[i]-medians[0]) > math.Abs(medians[best]-medians[0]) {
			best = i
		}
	}
	if best < 2 || best > n-3 {
		return []Phase{{Lo: lo, Hi: hi}}
	}
	s1, _, err1 := stats.LinearFit(centers[:best+1], medians[:best+1])
	s2, _, err2 := stats.LinearFit(centers[best:], medians[best:])
	if err1 != nil || err2 != nil || s1*s2 >= 0 {
		return []Phase{{Lo: lo, Hi: hi}}
	}
	// Require both trends to be substantial relative to the address spread,
	// so noise in a flat phase does not fabricate a reversal.
	spread := stats.Quantile(medians, 0.95) - stats.Quantile(medians, 0.05)
	span := hi - lo
	if spread <= 0 || math.Abs(s1)*span/2 < spread/4 || math.Abs(s2)*span/2 < spread/4 {
		return []Phase{{Lo: lo, Hi: hi}}
	}
	mid := centers[best]
	return []Phase{{Lo: lo, Hi: mid}, {Lo: mid, Hi: hi}}
}

// finishPhase fills the phase's measured fields.
func (f *Folded) finishPhase(p *Phase) {
	p.DurationNs = (p.Hi - p.Lo) * f.MeanDurationNs
	mem := samplesIn(f.Mem, p.Lo, p.Hi)
	if len(mem) > 0 {
		addrs := make([]float64, len(mem))
		sigmas := make([]float64, len(mem))
		ips := make([]float64, len(mem))
		for i, mp := range mem {
			addrs[i] = float64(mp.Addr)
			sigmas[i] = mp.Sigma
			ips[i] = float64(mp.PhaseIP)
			if mp.Store {
				p.Stores++
			} else {
				p.Loads++
			}
		}
		p.DominantIP = uint64(stats.Quantile(ips, 0.5))
		lo5 := stats.Quantile(addrs, 0.05)
		hi95 := stats.Quantile(addrs, 0.95)
		p.AddrLo, p.AddrHi = uint64(lo5), uint64(hi95)
		p.Direction = classifySweep(sigmas, addrs)
		if p.DurationNs > 0 {
			span := hi95 - lo5
			// Scale the 5–95 span back to the full traversal extent.
			p.SpanBandwidth = span / 0.9 / (p.DurationNs / 1e9)
		}
	}
	// Mean rates over the grid cells inside the phase.
	p.PerInstr = make(map[cpu.CounterID]float64)
	mips := f.MIPS()
	var sum float64
	var cnt int
	for i, g := range f.Grid {
		if g < p.Lo || g >= p.Hi {
			continue
		}
		sum += mips[i]
		cnt++
	}
	if cnt > 0 {
		p.MIPSMean = sum / float64(cnt)
	}
	// CtrRemoteDRAM folds to all-zero on non-NUMA stacks (their records
	// never carry the counter); consumers key its presence on capability.
	for _, c := range []cpu.CounterID{cpu.CtrBranches, cpu.CtrL1DMiss, cpu.CtrL2Miss, cpu.CtrL3Miss, cpu.CtrRemoteDRAM} {
		ratio := f.PerInstruction(c)
		var s float64
		var n int
		for i, g := range f.Grid {
			if g < p.Lo || g >= p.Hi {
				continue
			}
			s += ratio[i]
			n++
		}
		if n > 0 {
			p.PerInstr[c] = s / float64(n)
		}
	}
}

// classifySweep decides the traversal direction from a linear fit of
// address on sigma: the trend must explain at least a quarter of the
// address spread to count as a sweep.
func classifySweep(sigmas, addrs []float64) SweepDir {
	if len(sigmas) < 4 {
		return SweepFlat
	}
	slope, _, err := stats.LinearFit(sigmas, addrs)
	if err != nil {
		return SweepFlat
	}
	spread := stats.Quantile(addrs, 0.95) - stats.Quantile(addrs, 0.05)
	width := sigmas[len(sigmas)-1] - sigmas[0]
	if spread <= 0 || width <= 0 {
		return SweepFlat
	}
	trend := math.Abs(slope) * width
	if trend < spread/4 {
		return SweepFlat
	}
	if slope > 0 {
		return SweepForward
	}
	return SweepBackward
}

// LabelPhases assigns names to the detected phases using a code resolver
// (IP → function name), appending the sweep direction when a function
// appears in consecutive sweep phases, e.g. "ComputeSYMGS_ref[forward]".
func (f *Folded) LabelPhases(funcOf func(ip uint64) string) {
	if funcOf == nil {
		return
	}
	for i := range f.Phases {
		p := &f.Phases[i]
		name := funcOf(p.DominantIP)
		if name == "" {
			name = fmt.Sprintf("ip_%#x", p.DominantIP)
		}
		if p.Direction != SweepFlat {
			name = fmt.Sprintf("%s[%s]", name, p.Direction)
		}
		p.Name = name
	}
}

// PhaseAt returns the phase containing sigma, if any.
func (f *Folded) PhaseAt(sigma float64) (Phase, bool) {
	for _, p := range f.Phases {
		if sigma >= p.Lo && sigma < p.Hi {
			return p, true
		}
	}
	return Phase{}, false
}
