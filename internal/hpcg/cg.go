package hpcg

import (
	"fmt"
	"math"
)

// CGResult summarizes a conjugate-gradient run.
type CGResult struct {
	// Iterations actually executed.
	Iterations int
	// Residuals holds the residual norm after each iteration.
	Residuals []float64
	// Converged reports whether the tolerance was reached.
	Converged bool
	// FinalError is ||x - xexact||_inf (the generated problem has a known
	// exact solution of all ones).
	FinalError float64
}

// RunCG executes the preconditioned conjugate gradient solve, instrumenting
// each iteration as the foldable "CG_iteration" region. The loop structure
// matches the HPCG 3.0 reference CG (z = MG(r); beta; p; alpha; updates).
func (p *Problem) RunCG() (*CGResult, error) {
	n := p.Fine.NRows
	r, err := p.newVector("cg_r", n)
	if err != nil {
		return nil, err
	}
	z, err := p.newVector("cg_z", n)
	if err != nil {
		return nil, err
	}
	pv, err := p.newVector("cg_p", n)
	if err != nil {
		return nil, err
	}
	ap, err := p.newVector("cg_Ap", n)
	if err != nil {
		return nil, err
	}

	p.X.Fill(0)
	// r = b - A*x = b (x starts at zero); p = r handled in first iteration.
	copy(r.Data, p.B.Data)
	p.moveVector(p.B, r)

	res := &CGResult{}
	var rtzOld float64
	normR0 := math.Sqrt(p.Dot(r, r))
	if normR0 == 0 {
		return nil, fmt.Errorf("hpcg: zero right-hand side")
	}
	for k := 1; k <= p.Params.MaxIters; k++ {
		p.mon.EnterRegion(p.RegionIteration)

		p.MG(r, z) // preconditioner: phases A..D

		rtz := p.Dot(r, z)
		if k == 1 {
			copy(pv.Data, z.Data)
			p.moveVector(z, pv)
		} else {
			beta := rtz / rtzOld
			p.WAXPBY(1, z, beta, pv, pv)
		}
		rtzOld = rtz

		p.SpMV(p.Fine, pv, ap) // phase E
		pap := p.Dot(pv, ap)
		if pap == 0 {
			p.mon.ExitRegion(p.RegionIteration)
			return nil, fmt.Errorf("hpcg: CG breakdown (p·Ap = 0) at iteration %d", k)
		}
		alpha := rtz / pap
		p.WAXPBY(1, p.X, alpha, pv, p.X)
		p.WAXPBY(1, r, -alpha, ap, r)

		normR := math.Sqrt(p.Dot(r, r))
		res.Residuals = append(res.Residuals, normR)
		res.Iterations = k

		p.mon.ExitRegion(p.RegionIteration)

		if p.Params.Tolerance > 0 && normR/normR0 < p.Params.Tolerance {
			res.Converged = true
			break
		}
	}
	var maxErr float64
	for i := range p.X.Data {
		if e := math.Abs(p.X.Data[i] - p.Xexact.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	res.FinalError = maxErr
	return res, nil
}
