package hpcg

import (
	"fmt"
	"math"
)

// CGResult summarizes a conjugate-gradient run.
type CGResult struct {
	// Iterations actually executed.
	Iterations int
	// Residuals holds the residual norm after each iteration.
	Residuals []float64
	// Converged reports whether the tolerance was reached.
	Converged bool
	// FinalError is ||x - xexact||_inf (the generated problem has a known
	// exact solution of all ones).
	FinalError float64
}

// AbortError reports a CG solve cut short at an instance boundary —
// cancellation or a contained worker panic. Iteration is the last iteration
// whose instance completed cleanly (0 if none did).
type AbortError struct {
	Iteration int
	Err       error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("hpcg: CG solve aborted after iteration %d: %v", e.Iteration, e.Err)
}

func (e *AbortError) Unwrap() error { return e.Err }

// CGRun is an in-progress sequential CG solve, advanced one instrumented
// "CG_iteration" instance at a time. Splitting the solve into NewCGRun
// (allocation and the pre-loop traffic) and Step (one iteration) is what
// makes checkpointing possible: between Steps the solver's whole cross-
// iteration state is the five vectors plus a handful of scalars, and a run
// resumed there is instruction-for-instruction identical to one that never
// stopped.
type CGRun struct {
	p            *Problem
	r, z, pv, ap *Vector
	res          *CGResult
	rtzOld       float64
	normR0       float64
	next         int // 1-based iteration Step will run
	done         bool
}

// NewCGRun allocates the solver vectors and issues the pre-loop traffic
// (move b into r, the initial residual norm). The returned run is positioned
// before iteration 1.
func (p *Problem) NewCGRun() (*CGRun, error) {
	n := p.Fine.NRows
	r, err := p.newVector("cg_r", n)
	if err != nil {
		return nil, err
	}
	z, err := p.newVector("cg_z", n)
	if err != nil {
		return nil, err
	}
	pv, err := p.newVector("cg_p", n)
	if err != nil {
		return nil, err
	}
	ap, err := p.newVector("cg_Ap", n)
	if err != nil {
		return nil, err
	}

	p.X.Fill(0)
	// r = b - A*x = b (x starts at zero); p = r handled in first iteration.
	copy(r.Data, p.B.Data)
	p.moveVector(p.B, r)

	c := &CGRun{p: p, r: r, z: z, pv: pv, ap: ap, res: &CGResult{}, next: 1}
	c.normR0 = math.Sqrt(p.Dot(r, r))
	if c.normR0 == 0 {
		return nil, fmt.Errorf("hpcg: zero right-hand side")
	}
	return c, nil
}

// Step executes the next CG iteration as one instrumented instance and
// reports whether the solve has finished (converged or iteration budget
// exhausted).
func (c *CGRun) Step() (bool, error) {
	if c.done {
		return true, nil
	}
	p := c.p
	k := c.next
	p.mon.EnterRegion(p.RegionIteration)

	p.MG(c.r, c.z) // preconditioner: phases A..D

	rtz := p.Dot(c.r, c.z)
	if k == 1 {
		copy(c.pv.Data, c.z.Data)
		p.moveVector(c.z, c.pv)
	} else {
		beta := rtz / c.rtzOld
		p.WAXPBY(1, c.z, beta, c.pv, c.pv)
	}
	c.rtzOld = rtz

	p.SpMV(p.Fine, c.pv, c.ap) // phase E
	pap := p.Dot(c.pv, c.ap)
	if pap == 0 {
		p.mon.ExitRegion(p.RegionIteration)
		return false, fmt.Errorf("hpcg: CG breakdown (p·Ap = 0) at iteration %d", k)
	}
	alpha := rtz / pap
	p.WAXPBY(1, p.X, alpha, c.pv, p.X)
	p.WAXPBY(1, c.r, -alpha, c.ap, c.r)

	normR := math.Sqrt(p.Dot(c.r, c.r))
	c.res.Residuals = append(c.res.Residuals, normR)
	c.res.Iterations = k

	p.mon.ExitRegion(p.RegionIteration)

	c.next = k + 1
	if p.Params.Tolerance > 0 && normR/c.normR0 < p.Params.Tolerance {
		c.res.Converged = true
		c.finish()
	} else if k >= p.Params.MaxIters {
		c.finish()
	}
	return c.done, nil
}

func (c *CGRun) finish() {
	p := c.p
	var maxErr float64
	for i := range p.X.Data {
		if e := math.Abs(p.X.Data[i] - p.Xexact.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	c.res.FinalError = maxErr
	c.done = true
}

// Result returns the solve summary; FinalError is only meaningful once Step
// has reported done.
func (c *CGRun) Result() *CGResult { return c.res }

// NextIteration returns the 1-based iteration the next Step will run.
func (c *CGRun) NextIteration() int { return c.next }

// CGRunState is the serializable cross-iteration state of a CGRun. The MG
// level vectors are deliberately absent: every MG call overwrites them
// before reading, so at an iteration boundary they carry no live data.
type CGRunState struct {
	Next       int
	Done       bool
	RtzOld     float64
	NormR0     float64
	Iterations int
	Converged  bool
	FinalError float64
	Residuals  []float64
	R, Z, P    []float64
	AP, X      []float64
}

// State deep-copies the run's cross-iteration state.
func (c *CGRun) State() CGRunState {
	return CGRunState{
		Next:       c.next,
		Done:       c.done,
		RtzOld:     c.rtzOld,
		NormR0:     c.normR0,
		Iterations: c.res.Iterations,
		Converged:  c.res.Converged,
		FinalError: c.res.FinalError,
		Residuals:  append([]float64(nil), c.res.Residuals...),
		R:          append([]float64(nil), c.r.Data...),
		Z:          append([]float64(nil), c.z.Data...),
		P:          append([]float64(nil), c.pv.Data...),
		AP:         append([]float64(nil), c.ap.Data...),
		X:          append([]float64(nil), c.p.X.Data...),
	}
}

// RestoreState overwrites a freshly constructed run (same problem geometry)
// with snapshotted state. The NewCGRun that built the receiver replayed the
// pre-loop traffic; its host-value effects are overwritten here.
func (c *CGRun) RestoreState(st CGRunState) error {
	n := len(c.r.Data)
	for _, v := range [][]float64{st.R, st.Z, st.P, st.AP, st.X} {
		if len(v) != n {
			return fmt.Errorf("hpcg: snapshot vector length %d, problem has %d rows", len(v), n)
		}
	}
	if st.Next < 1 {
		return fmt.Errorf("hpcg: snapshot next iteration %d invalid", st.Next)
	}
	copy(c.r.Data, st.R)
	copy(c.z.Data, st.Z)
	copy(c.pv.Data, st.P)
	copy(c.ap.Data, st.AP)
	copy(c.p.X.Data, st.X)
	c.next = st.Next
	c.done = st.Done
	c.rtzOld = st.RtzOld
	c.normR0 = st.NormR0
	c.res.Iterations = st.Iterations
	c.res.Converged = st.Converged
	c.res.FinalError = st.FinalError
	c.res.Residuals = append(c.res.Residuals[:0], st.Residuals...)
	return nil
}

// RunCG executes the preconditioned conjugate gradient solve, instrumenting
// each iteration as the foldable "CG_iteration" region. The loop structure
// matches the HPCG 3.0 reference CG (z = MG(r); beta; p; alpha; updates).
func (p *Problem) RunCG() (*CGResult, error) {
	c, err := p.NewCGRun()
	if err != nil {
		return nil, err
	}
	for {
		done, err := c.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return c.Result(), nil
		}
	}
}
