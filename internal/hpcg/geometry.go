// Package hpcg implements the High Performance Conjugate Gradient benchmark
// (Dongarra, Heroux, Luszczek) as the paper's evaluation workload: a
// 27-point stencil sparse linear system solved by a conjugate-gradient
// method preconditioned with a multigrid V-cycle whose smoother is a
// symmetric Gauss–Seidel (forward sweep then backward sweep).
//
// The implementation performs the real floating-point computation on real
// Go slices while *simultaneously* issuing every element access as a
// simulated memory instruction on a cpu.Core, so the monitoring stack
// observes exactly the access pattern the algorithm produces: the forward
// and backward address sweeps, the read-only matrix region and the
// written vector region of the paper's Figure 1.
//
// Problem generation follows the structure the paper calls out: the matrix
// row storage is created through many consecutive small allocations
// (hundreds of bytes each, below Extrae's tracking threshold) plus one
// map-node allocation per row — the two allocation populations the paper
// had to wrap into groups "124_GenerateProblem_ref.cpp" (617 MB at 104³)
// and "205_GenerateProblem_ref.cpp" (89 MB).
package hpcg

import "fmt"

// Geometry describes the local problem box.
type Geometry struct {
	NX, NY, NZ int
}

// Rows returns the number of matrix rows (grid points).
func (g Geometry) Rows() int { return g.NX * g.NY * g.NZ }

// Validate checks the box dimensions.
func (g Geometry) Validate() error {
	if g.NX <= 0 || g.NY <= 0 || g.NZ <= 0 {
		return fmt.Errorf("hpcg: dimensions must be positive, got %dx%dx%d", g.NX, g.NY, g.NZ)
	}
	return nil
}

// Coarsen halves each dimension (HPCG requires divisibility by 2).
func (g Geometry) Coarsen() (Geometry, error) {
	if g.NX%2 != 0 || g.NY%2 != 0 || g.NZ%2 != 0 {
		return Geometry{}, fmt.Errorf("hpcg: geometry %dx%dx%d not divisible by 2", g.NX, g.NY, g.NZ)
	}
	return Geometry{NX: g.NX / 2, NY: g.NY / 2, NZ: g.NZ / 2}, nil
}

// Index converts grid coordinates to a row index.
func (g Geometry) Index(ix, iy, iz int) int {
	return iz*g.NY*g.NX + iy*g.NX + ix
}

// Coords converts a row index back to grid coordinates.
func (g Geometry) Coords(row int) (ix, iy, iz int) {
	iz = row / (g.NX * g.NY)
	rem := row % (g.NX * g.NY)
	iy = rem / g.NX
	ix = rem % g.NX
	return
}

// MaxNonzerosPerRow is the 27-point stencil width.
const MaxNonzerosPerRow = 27

// forEachNeighbor visits the stencil neighbours of (ix, iy, iz) inside the
// box, including the point itself, in the canonical z-y-x order HPCG uses
// (which yields ascending column indices).
func (g Geometry) forEachNeighbor(ix, iy, iz int, fn func(col int)) {
	for dz := -1; dz <= 1; dz++ {
		z := iz + dz
		if z < 0 || z >= g.NZ {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			y := iy + dy
			if y < 0 || y >= g.NY {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				x := ix + dx
				if x < 0 || x >= g.NX {
					continue
				}
				fn(g.Index(x, y, z))
			}
		}
	}
}
