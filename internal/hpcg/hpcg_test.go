package hpcg

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/memhier"
	"repro/internal/objects"
	"repro/internal/pebs"
	"repro/internal/prog"
	"repro/internal/trace"
)

type rig struct {
	core *cpu.Core
	bin  *prog.Binary
	as   *prog.AddressSpace
	mon  *extrae.Monitor
}

func newRig(t *testing.T) *rig {
	t.Helper()
	h, err := memhier.New(memhier.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := cpu.New(cpu.DefaultConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	bin := prog.NewBinary()
	if err := SetupBinary(bin); err != nil {
		t.Fatal(err)
	}
	as := prog.NewAddressSpace(0x2adf00000000)
	cfg := extrae.DefaultConfig()
	cfg.MuxQuantumNs = 0
	cfg.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.PEBS.Period = 500
	cfg.PEBS.LatencyThreshold = 0
	mon, err := extrae.New(cfg, core, bin, as)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{core: core, bin: bin, as: as, mon: mon}
}

func smallParams() Params {
	return Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3}
}

func TestGeometry(t *testing.T) {
	g := Geometry{NX: 4, NY: 5, NZ: 6}
	if g.Rows() != 120 {
		t.Errorf("Rows = %d", g.Rows())
	}
	for row := 0; row < g.Rows(); row += 7 {
		ix, iy, iz := g.Coords(row)
		if g.Index(ix, iy, iz) != row {
			t.Fatalf("Index/Coords mismatch at %d", row)
		}
	}
	if err := (Geometry{NX: 0, NY: 1, NZ: 1}).Validate(); err == nil {
		t.Error("zero dimension accepted")
	}
	c, err := (Geometry{NX: 8, NY: 8, NZ: 8}).Coarsen()
	if err != nil || c.NX != 4 {
		t.Errorf("Coarsen = %+v, %v", c, err)
	}
	if _, err := (Geometry{NX: 7, NY: 8, NZ: 8}).Coarsen(); err == nil {
		t.Error("odd coarsening accepted")
	}
}

func TestNeighborCounts(t *testing.T) {
	g := Geometry{NX: 4, NY: 4, NZ: 4}
	count := func(ix, iy, iz int) int {
		n := 0
		g.forEachNeighbor(ix, iy, iz, func(int) { n++ })
		return n
	}
	if got := count(1, 1, 1); got != 27 {
		t.Errorf("interior neighbors = %d, want 27", got)
	}
	if got := count(0, 0, 0); got != 8 {
		t.Errorf("corner neighbors = %d, want 8", got)
	}
	if got := count(0, 1, 1); got != 18 {
		t.Errorf("face neighbors = %d, want 18", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := smallParams().Validate(); err != nil {
		t.Errorf("small params rejected: %v", err)
	}
	bad := []Params{
		{NX: 0, NY: 8, NZ: 8, MGLevels: 1, MaxIters: 1},
		{NX: 8, NY: 8, NZ: 8, MGLevels: 0, MaxIters: 1},
		{NX: 8, NY: 8, NZ: 8, MGLevels: 5, MaxIters: 1}, // 8/16 not integral
		{NX: 8, NY: 8, NZ: 8, MGLevels: 1, MaxIters: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestGenerateAllocationLayout(t *testing.T) {
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	reg := r.mon.Registry()
	var matrixGroup, mapGroup *objects.Object
	for _, o := range reg.Objects() {
		switch o.Name {
		case "124_GenerateProblem_ref.cpp":
			matrixGroup = o
		case "205_GenerateProblem_ref.cpp":
			mapGroup = o
		}
	}
	if matrixGroup == nil || mapGroup == nil {
		t.Fatal("allocation groups missing")
	}
	// Size ratio ~7:1 (540 B rows vs 80 B map nodes, coarse levels add a
	// little to the matrix side).
	ratio := float64(matrixGroup.Bytes) / float64(mapGroup.Bytes)
	if ratio < 5.5 || ratio > 9 {
		t.Errorf("group size ratio = %.2f, want ~6.75-7.7", ratio)
	}
	// The matrix group occupies lower addresses than the vectors.
	if matrixGroup.Range.Lo >= p.B.Addr {
		t.Error("matrix group not below vectors in address space")
	}
	// Fine level has 512 rows; both groups absorbed one member per fine row
	// (matrix group additionally holds the coarse level).
	if mapGroup.Members != 512 {
		t.Errorf("map group members = %d, want 512", mapGroup.Members)
	}
	if matrixGroup.Members != 512+64 {
		t.Errorf("matrix group members = %d, want 576", matrixGroup.Members)
	}
}

func TestSpMVMatchesDirectComputation(t *testing.T) {
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	lv := p.Fine
	x, _ := p.newVector("tx", lv.NRows)
	y, _ := p.newVector("ty", lv.NRows)
	for i := range x.Data {
		x.Data[i] = float64(i%10) * 0.25
	}
	p.SpMV(lv, x, y)
	for i := 0; i < lv.NRows; i++ {
		var want float64
		for j := 0; j < int(lv.NonzerosInRow[i]); j++ {
			want += lv.Vals[i][j] * x.Data[lv.Cols[i][j]]
		}
		if math.Abs(y.Data[i]-want) > 1e-12 {
			t.Fatalf("SpMV row %d = %g, want %g", i, y.Data[i], want)
		}
	}
	// A * ones: interior rows sum to 26 - 26 = 0 (diagonally balanced).
	x.Fill(1)
	p.SpMV(lv, x, y)
	interior := lv.Geom.Index(3, 3, 3)
	if math.Abs(y.Data[interior]) > 1e-12 {
		t.Errorf("interior row of A*1 = %g, want 0", y.Data[interior])
	}
	corner := lv.Geom.Index(0, 0, 0)
	if math.Abs(y.Data[corner]-19) > 1e-12 {
		t.Errorf("corner row of A*1 = %g, want 19 (26 - 7)", y.Data[corner])
	}
}

func TestSYMGSReducesResidual(t *testing.T) {
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	lv := p.Fine
	x, _ := p.newVector("sx", lv.NRows)
	ax, _ := p.newVector("sax", lv.NRows)
	resNorm := func() float64 {
		p.SpMV(lv, x, ax)
		var s float64
		for i := range ax.Data {
			d := p.B.Data[i] - ax.Data[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	x.Fill(0)
	before := resNorm()
	p.SYMGS(lv, p.B, x)
	after := resNorm()
	if after >= before {
		t.Errorf("SYMGS did not reduce residual: %g -> %g", before, after)
	}
	p.SYMGS(lv, p.B, x)
	after2 := resNorm()
	if after2 >= after {
		t.Errorf("second SYMGS did not reduce residual: %g -> %g", after, after2)
	}
}

func TestDotAndWAXPBY(t *testing.T) {
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	n := p.Fine.NRows
	a, _ := p.newVector("da", n)
	b, _ := p.newVector("db", n)
	w, _ := p.newVector("dw", n)
	for i := 0; i < n; i++ {
		a.Data[i] = 2
		b.Data[i] = 3
	}
	if got := p.Dot(a, b); math.Abs(got-float64(6*n)) > 1e-9 {
		t.Errorf("Dot = %g, want %d", got, 6*n)
	}
	p.WAXPBY(2, a, -1, b, w)
	for i := 0; i < n; i++ {
		if w.Data[i] != 1 {
			t.Fatalf("WAXPBY[%d] = %g, want 1", i, w.Data[i])
		}
	}
}

func TestCGConverges(t *testing.T) {
	r := newRig(t)
	params := Params{NX: 16, NY: 16, NZ: 16, MGLevels: 3, MaxIters: 15, Tolerance: 1e-8}
	p, err := Generate(params, r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCG()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("CG did not converge in %d iterations (residuals %v)",
			res.Iterations, res.Residuals)
	}
	// Residuals strictly decreasing for this SPD system with MG.
	for i := 1; i < len(res.Residuals); i++ {
		if res.Residuals[i] >= res.Residuals[i-1] {
			t.Errorf("residual increased at iter %d: %g -> %g",
				i, res.Residuals[i-1], res.Residuals[i])
		}
	}
	if res.FinalError > 1e-6 {
		t.Errorf("final error vs exact solution = %g", res.FinalError)
	}
}

func TestNoStoresInMatrixRegion(t *testing.T) {
	// The paper's observation: no stores in the lower (matrix) part of the
	// address space during the execution phase — the matrix is written only
	// during setup.
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	r.mon.Start()
	if _, err := p.RunCG(); err != nil {
		t.Fatal(err)
	}
	r.mon.Stop()
	reg := r.mon.Registry()
	for _, o := range reg.Objects() {
		if o.Name == "124_GenerateProblem_ref.cpp" {
			if o.Stores != 0 {
				t.Errorf("matrix group sampled %d stores, want 0", o.Stores)
			}
			if o.Loads == 0 {
				t.Error("matrix group sampled no loads")
			}
		}
		if o.Name == "cg_p" && o.Refs > 0 && o.Stores == 0 {
			t.Error("vector cg_p should see stores")
		}
	}
}

func TestIterationRegionsEmitted(t *testing.T) {
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	r.mon.Start()
	res, err := p.RunCG()
	if err != nil {
		t.Fatal(err)
	}
	r.mon.Stop()
	var enters, exits int
	for _, rec := range r.mon.Records() {
		if v, ok := rec.Get(trace.TypeRegion); ok {
			if v == int64(p.RegionIteration) {
				enters++
			}
		}
	}
	_ = exits
	if enters != res.Iterations {
		t.Errorf("iteration region enters = %d, want %d", enters, res.Iterations)
	}
	// Samples resolve overwhelmingly to known objects (grouping works).
	if rate := r.mon.Registry().ResolutionRate(); rate < 0.95 {
		t.Errorf("resolution rate = %.3f, want > 0.95 with grouping", rate)
	}
}

func TestSweepAddressOrder(t *testing.T) {
	// Within one SYMGS, the forward sweep's store addresses ascend and the
	// backward sweep's descend.
	r := newRig(t)
	p, err := Generate(smallParams(), r.core, r.mon, r.bin)
	if err != nil {
		t.Fatal(err)
	}
	var fwd, bwd []uint64
	fwdIP := p.ips.symgsFwdStore
	bwdIP := p.ips.symgsBwdStore
	r.core.SetMemHook(func(op cpu.MemOp) {
		if !op.Store {
			return
		}
		switch op.IP {
		case fwdIP:
			fwd = append(fwd, op.Addr)
		case bwdIP:
			bwd = append(bwd, op.Addr)
		}
	})
	x, _ := p.newVector("swx", p.Fine.NRows)
	p.SYMGS(p.Fine, p.B, x)
	if len(fwd) != p.Fine.NRows || len(bwd) != p.Fine.NRows {
		t.Fatalf("sweep stores = %d/%d, want %d each", len(fwd), len(bwd), p.Fine.NRows)
	}
	for i := 1; i < len(fwd); i++ {
		if fwd[i] <= fwd[i-1] {
			t.Fatal("forward sweep addresses not ascending")
		}
		if bwd[i] >= bwd[i-1] {
			t.Fatal("backward sweep addresses not descending")
		}
	}
}
