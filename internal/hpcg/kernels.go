package hpcg

import "repro/internal/cpu"

// This file contains the instrumented computational kernels. Every kernel
// performs the real arithmetic on the Go slices and, for each element it
// touches, issues the corresponding simulated memory instruction so that
// the monitoring stack observes the true access pattern:
//
//   - matrix coefficients and column indices live in the low (matrix-group)
//     address region and are only ever *loaded* during the solve;
//   - vectors live in the higher region and are loaded and stored;
//   - SYMGS traverses rows 0..n-1 (forward sweep: ascending addresses)
//     then n-1..0 (backward sweep: descending addresses);
//   - SpMV traverses rows 0..n-1 once.
//
// Each kernel body operates on a row range [lo, hi) against an explicit
// core, which is how the OpenMP-style static domain partitioning works:
// the sequential methods run the full range on the problem's own core,
// while the parallel driver (parallel.go) hands each simulated thread its
// own contiguous block, mirroring `#pragma omp parallel for schedule(static)`
// over the row loops.

// SpMV computes y = A*x on the given level. The per-row coefficient and
// column-index traffic is sequential, so it is issued as two streams (one
// hierarchy probe per line crossing); the x gathers stay per-op because
// their addresses are data-dependent.
func (p *Problem) SpMV(lv *Level, x, y *Vector) {
	p.mon.EnterRegion(p.RegionSPMV)
	p.spmvRows(p.core, lv, x, y, 0, lv.NRows)
	p.mon.ExitRegion(p.RegionSPMV)
}

// spmvRows applies the SpMV row loop over [lo, hi). Each row's coefficient
// and column-index traffic is emitted as one two-run LineRun batch.
func (p *Problem) spmvRows(core *cpu.Core, lv *Level, x, y *Vector, lo, hi int) {
	ips := &p.ips
	for i := lo; i < hi; i++ {
		var sum float64
		nnz := int(lv.NonzerosInRow[i])
		vals := lv.Vals[i]
		cols := lv.Cols[i]
		runs := [2]cpu.LineRun{
			{IP: ips.spmvVal, Base: lv.ValsAddr[i], Stride: 8, Size: 8, Count: nnz},
			{IP: ips.spmvCol, Base: lv.ColsAddr[i], Stride: 4, Size: 4, Count: nnz},
		}
		core.IssueRuns(runs[:])
		for j := 0; j < nnz; j++ {
			col := int(cols[j])
			core.Load(ips.spmvX, x.ElemAddr(col), 8)
			sum += vals[j] * x.Data[col]
			core.Compute(2) // multiply-add
		}
		y.Data[i] = sum
		core.Store(ips.spmvStore, y.ElemAddr(i), 8)
		core.Branch()
	}
}

// SYMGS performs one symmetric Gauss–Seidel smoothing step on the level:
// a forward sweep followed by a backward sweep, updating x in place toward
// the solution of A*x = r.
func (p *Problem) SYMGS(lv *Level, r, x *Vector) {
	p.mon.EnterRegion(p.RegionSYMGS)
	// Forward sweep: rows in ascending order (the paper's a1/d1 phases).
	p.symgsSweep(p.core, lv, r, x, 0, lv.NRows, true, nil)
	// Backward sweep: rows in descending order (a2/d2).
	p.symgsSweep(p.core, lv, r, x, 0, lv.NRows, false, nil)
	p.mon.ExitRegion(p.RegionSYMGS)
}

// symgsSweep relaxes the rows of [lo, hi) in ascending (forward) or
// descending order. xOld, when non-nil, is a frozen snapshot of x taken at
// the sweep barrier: values outside [lo, hi) are read from it, which is
// the block-Jacobi coupling that keeps concurrent sweeps of disjoint
// blocks race-free (each thread writes only its own block and reads other
// blocks' pre-sweep values). The simulated traffic is unchanged — the
// loads still target x's addresses, exactly like the OpenMP code whose
// neighbouring blocks race on x.
func (p *Problem) symgsSweep(core *cpu.Core, lv *Level, r, x *Vector, lo, hi int, forward bool, xOld []float64) {
	ips := &p.ips
	if forward {
		for i := lo; i < hi; i++ {
			p.symgsRow(core, lv, r, x, i, lo, hi, xOld,
				ips.symgsFwdVal, ips.symgsFwdCol, ips.symgsFwdX, ips.symgsFwdStore)
		}
		return
	}
	for i := hi - 1; i >= lo; i-- {
		p.symgsRow(core, lv, r, x, i, lo, hi, xOld,
			ips.symgsBwdVal, ips.symgsBwdCol, ips.symgsBwdX, ips.symgsBwdStore)
	}
}

// symgsRow relaxes one row: x[i] = (r[i] - sum_{j!=i} a_ij x_j) / a_ii.
func (p *Problem) symgsRow(core *cpu.Core, lv *Level, r, x *Vector, i, lo, hi int, xOld []float64,
	ipVal, ipCol, ipX, ipStore uint64) {
	nnz := int(lv.NonzerosInRow[i])
	vals := lv.Vals[i]
	cols := lv.Cols[i]
	core.Load(ipX, r.ElemAddr(i), 8)
	sum := r.Data[i]
	var diag float64
	// Gauss–Seidel rows are sequentially dependent (row i consumes the
	// x values row i-1 just produced), so the out-of-order window cannot
	// overlap value traffic across rows the way SpMV's independent rows
	// allow: value loads stall for their full latency (Dep semantics).
	// Index loads still run ahead (address generation only).
	runs := [2]cpu.LineRun{
		{IP: ipVal, Base: lv.ValsAddr[i], Stride: 8, Size: 8, Count: nnz, Dep: true},
		{IP: ipCol, Base: lv.ColsAddr[i], Stride: 4, Size: 4, Count: nnz},
	}
	core.IssueRuns(runs[:])
	for j := 0; j < nnz; j++ {
		col := int(cols[j])
		if col == i {
			diag = vals[j]
			continue
		}
		// Gauss–Seidel reads neighbours updated moments ago: a serialized
		// dependency chain (LoadDep), unlike SpMV's independent gathers.
		core.LoadDep(ipX, x.ElemAddr(col), 8)
		var xv float64
		if xOld != nil && (col < lo || col >= hi) {
			// Cross-block coupling reads the barrier snapshot, never the
			// live vector another thread is concurrently writing.
			xv = xOld[col]
		} else {
			xv = x.Data[col]
		}
		sum -= vals[j] * xv
		core.Compute(2)
	}
	// sum now holds r[i] - Σ_{j≠i} a_ij x_j (the diagonal was skipped in
	// the loop, equivalent to HPCG's subtract-then-add-back formulation).
	x.Data[i] = sum / diag
	core.Compute(1)
	core.Store(ipStore, x.ElemAddr(i), 8)
	core.Branch()
}

// vecChunk is the element batch used by the dense vector kernels: one
// 64-byte cache line of float64s, so each stream call inside a chunk is a
// single hierarchy probe and the arrays still interleave at line
// granularity (preserving the cache behaviour of elementwise traversal).
const vecChunk = 8

// Dot computes the dot product of a and b.
func (p *Problem) Dot(a, b *Vector) float64 {
	p.mon.EnterRegion(p.RegionDot)
	sum := p.dotRange(p.core, a, b, 0, len(a.Data))
	p.mon.ExitRegion(p.RegionDot)
	return sum
}

// dotRange accumulates a·b over elements [lo, hi).
func (p *Problem) dotRange(core *cpu.Core, a, b *Vector, lo, hi int) float64 {
	ips := &p.ips
	var sum float64
	for i := lo; i < hi; i += vecChunk {
		k := min(vecChunk, hi-i)
		runs := [2]cpu.LineRun{
			{IP: ips.dotA, Base: a.ElemAddr(i), Stride: 8, Size: 8, Count: k},
			{IP: ips.dotB, Base: b.ElemAddr(i), Stride: 8, Size: 8, Count: k},
		}
		core.IssueRuns(runs[:])
		for e := i; e < i+k; e++ {
			sum += a.Data[e] * b.Data[e]
		}
		core.Compute(uint64(2 * k))
	}
	return sum
}

// WAXPBY computes w = alpha*x + beta*y.
func (p *Problem) WAXPBY(alpha float64, x *Vector, beta float64, y, w *Vector) {
	p.mon.EnterRegion(p.RegionWAXPBY)
	p.waxpbyRange(p.core, alpha, x, beta, y, w, 0, len(w.Data))
	p.mon.ExitRegion(p.RegionWAXPBY)
}

// waxpbyRange applies the update over elements [lo, hi).
func (p *Problem) waxpbyRange(core *cpu.Core, alpha float64, x *Vector, beta float64, y, w *Vector, lo, hi int) {
	ips := &p.ips
	for i := lo; i < hi; i += vecChunk {
		k := min(vecChunk, hi-i)
		for e := i; e < i+k; e++ {
			w.Data[e] = alpha*x.Data[e] + beta*y.Data[e]
		}
		runs := [3]cpu.LineRun{
			{IP: ips.waxpbyX, Base: x.ElemAddr(i), Stride: 8, Size: 8, Count: k},
			{IP: ips.waxpbyY, Base: y.ElemAddr(i), Stride: 8, Size: 8, Count: k},
			{IP: ips.waxpbyW, Base: w.ElemAddr(i), Stride: 8, Size: 8, Count: k, Store: true},
		}
		core.IssueRuns(runs[:])
		core.Compute(uint64(3 * k))
	}
}

// Restrict computes the coarse residual rc = (rf - Axf) at injected points.
func (p *Problem) Restrict(lv *Level) {
	p.restrictRows(p.core, lv, 0, lv.Coarse.NRows)
}

// restrictRows restricts the coarse rows [lo, hi).
func (p *Problem) restrictRows(core *cpu.Core, lv *Level, lo, hi int) {
	ips := &p.ips
	coarse := lv.Coarse
	for i := lo; i < hi; i++ {
		core.Load(ips.restrictF2C, lv.F2CAddr+uint64(i)*4, 4)
		f := int(lv.F2C[i])
		core.Load(ips.restrictRf, lv.R.ElemAddr(f), 8)
		core.Load(ips.restrictAxf, lv.Axf.ElemAddr(f), 8)
		coarse.R.Data[i] = lv.R.Data[f] - lv.Axf.Data[f]
		core.Store(ips.restrictStore, coarse.R.ElemAddr(i), 8)
		core.Compute(1)
	}
}

// Prolong interpolates the coarse correction back: xf[f2c[i]] += xc[i].
func (p *Problem) Prolong(lv *Level) {
	p.prolongRows(p.core, lv, 0, lv.Coarse.NRows)
}

// prolongRows prolongates the coarse rows [lo, hi). The injection map is
// injective, so disjoint coarse ranges write disjoint fine rows.
func (p *Problem) prolongRows(core *cpu.Core, lv *Level, lo, hi int) {
	ips := &p.ips
	coarse := lv.Coarse
	for i := lo; i < hi; i++ {
		core.Load(ips.prolongF2C, lv.F2CAddr+uint64(i)*4, 4)
		f := int(lv.F2C[i])
		core.Load(ips.prolongXc, coarse.X.ElemAddr(i), 8)
		core.Load(ips.prolongXf, lv.X.ElemAddr(f), 8)
		lv.X.Data[f] += coarse.X.Data[i]
		core.Store(ips.prolongStore, lv.X.ElemAddr(f), 8)
		core.Compute(1)
	}
}

// mgRecurse runs the V-cycle below the finest level (no region
// instrumentation per level: the whole coarse part is the paper's "C"
// region, instrumented by the caller).
func (p *Problem) mgRecurse(lv *Level) {
	if lv.Coarse == nil {
		p.SYMGS(lv, lv.R, lv.X)
		return
	}
	lv.X.Fill(0)
	p.SYMGS(lv, lv.R, lv.X)  // presmooth
	p.SpMV(lv, lv.X, lv.Axf) // residual matvec
	p.Restrict(lv)           // move to coarse grid
	lv.Coarse.X.Fill(0)
	p.mgRecurse(lv.Coarse)  // solve coarse
	p.Prolong(lv)           // correction back
	p.SYMGS(lv, lv.R, lv.X) // postsmooth
}

// MG applies the multigrid preconditioner z = M⁻¹ r on the fine level. The
// structure produces the paper's phase sequence for one CG iteration:
//
//	A: fine presmooth (SYMGS, forward + backward sweeps a1/a2)
//	B: fine residual SpMV
//	C: the coarse-grid work (restriction, coarse V-cycle, prolongation),
//	   wrapped in the ComputeMG_ref region
//	D: fine postsmooth (SYMGS, d1/d2)
func (p *Problem) MG(r, z *Vector) {
	fine := p.Fine
	copy(fine.R.Data, r.Data)
	// The copy is part of CG bookkeeping; model it as a vector move.
	p.moveVector(r, fine.R)
	fine.X.Fill(0)

	p.SYMGS(fine, fine.R, fine.X) // A
	if fine.Coarse != nil {
		p.SpMV(fine, fine.X, fine.Axf) // B
		p.mon.EnterRegion(p.RegionMG)  // C covers the coarse-grid work
		// The coarse-grid smoothers run the same code as the fine-level
		// SYMGS; pushing the ComputeMG_ref frame makes their samples
		// attributable to the MG recursion (as call-stack sampling does).
		p.mon.PushFrame(p.ips.mgFrame)
		p.Restrict(fine)
		fine.Coarse.X.Fill(0)
		p.mgRecurse(fine.Coarse)
		p.Prolong(fine)
		p.mon.PopFrame()
		p.mon.ExitRegion(p.RegionMG)
		p.SYMGS(fine, fine.R, fine.X) // D
	}
	copy(z.Data, fine.X.Data)
	p.moveVector(fine.X, z)
}

// moveVector issues the load/store traffic of copying src into dst.
func (p *Problem) moveVector(src, dst *Vector) {
	p.moveRange(p.core, src, dst, 0, len(src.Data))
}

// moveRange issues the move traffic for elements [lo, hi).
func (p *Problem) moveRange(core *cpu.Core, src, dst *Vector, lo, hi int) {
	ips := &p.ips
	for i := lo; i < hi; i += vecChunk {
		k := min(vecChunk, hi-i)
		runs := [2]cpu.LineRun{
			{IP: ips.waxpbyX, Base: src.ElemAddr(i), Stride: 8, Size: 8, Count: k},
			{IP: ips.waxpbyW, Base: dst.ElemAddr(i), Stride: 8, Size: 8, Count: k, Store: true},
		}
		core.IssueRuns(runs[:])
	}
}
