package hpcg

// OpenMP-style execution of the CG solve: a Team of simulated hardware
// threads (one goroutine each, each with its own core, monitor and private
// cache levels, sharing the Machine's L3) executes every kernel's row loop
// under static domain partitioning — thread t owns the contiguous row
// block t of every level, exactly like
// `#pragma omp parallel for schedule(static)` over the HPCG reference
// loops. The scalar CG logic (reductions, alpha/beta, convergence) runs on
// the orchestrating goroutine between parallel sections, and every
// fork-join barrier synchronizes the simulated clocks: lagging cores spin
// (Stall) up to the slowest core, which is how real barrier wait time
// shows up inside the folded kernels of an imbalanced run.
//
// SYMGS is the one kernel whose reference loop is not trivially parallel
// (row i consumes x values row i-1 just produced). The Team runs it as a
// block-Jacobi Gauss–Seidel: each thread sweeps its own block in order,
// coupling to other blocks through a snapshot of x taken at the preceding
// barrier. That is the standard OpenMP treatment of HPCG's smoother; it
// changes the numerics slightly (CG still converges) and keeps the
// simulated access pattern identical to the racy shared-x original.

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/cpu"
	"repro/internal/extrae"
)

// Worker is one simulated hardware thread's execution context.
type Worker struct {
	Core *cpu.Core
	Mon  *extrae.Monitor
}

// Team is a fixed pool of workers driven in fork-join parallel sections.
// A worker panic or a context cancellation poisons the team: the fault is
// recorded (Err), the in-flight section's barrier still releases — a
// panicking worker must never strand the others — and every subsequent Run
// becomes a no-op, so the orchestrating solve observes the fault at its
// next instance boundary instead of deadlocking.
type Team struct {
	workers []*Worker
	work    []chan func()
	done    chan struct{}
	ctx     context.Context

	mu  sync.Mutex
	err error
}

// NewTeam launches one goroutine per worker. Close must be called to
// release them.
func NewTeam(workers []*Worker) (*Team, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("hpcg: team needs at least one worker")
	}
	t := &Team{workers: workers, done: make(chan struct{}, len(workers)), ctx: context.Background()}
	for i := range workers {
		ch := make(chan func())
		t.work = append(t.work, ch)
		go func(tid int, ch chan func()) {
			for f := range ch {
				t.runOne(tid, f)
			}
		}(i, ch)
	}
	return t, nil
}

// runOne executes one dispatched closure, converting a panic into the
// team's error. The barrier token is sent unconditionally: the join in Run
// must complete even when the worker died mid-kernel.
func (t *Team) runOne(tid int, f func()) {
	defer func() {
		if r := recover(); r != nil {
			t.fail(fmt.Errorf("hpcg: worker %d panicked: %v", tid+1, r))
		}
		t.done <- struct{}{}
	}()
	f()
}

// SetContext installs the cancellation source polled at every parallel
// section fork. Must be set before the solve starts; nil is ignored.
func (t *Team) SetContext(ctx context.Context) {
	if ctx != nil {
		t.ctx = ctx
	}
}

func (t *Team) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// Err returns the fault that poisoned the team: the first worker panic or
// the context cancellation, nil while healthy. Orchestrating loops poll it
// at instance boundaries.
func (t *Team) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Size returns the number of workers.
func (t *Team) Size() int { return len(t.workers) }

// Workers returns the team's workers (index = thread id - 1).
func (t *Team) Workers() []*Worker { return t.workers }

// Close terminates the worker goroutines. The team is unusable afterwards.
func (t *Team) Close() {
	for _, ch := range t.work {
		close(ch)
	}
}

// Run executes f(tid, worker) on every worker concurrently and waits for
// all of them (a fork-join parallel section). On the join it models the
// barrier: every core that finished early spins until the slowest core's
// clock, so the team leaves each barrier with synchronized simulated time.
// Once the team is poisoned (worker panic, cancelled context) Run is a
// no-op, letting the orchestrating solve unwind without touching the
// simulated state further.
func (t *Team) Run(f func(tid int, w *Worker)) {
	if t.Err() != nil {
		return
	}
	if err := t.ctx.Err(); err != nil {
		t.fail(err)
		return
	}
	for i, ch := range t.work {
		i := i
		ch <- func() { f(i, t.workers[i]) }
	}
	for range t.work {
		<-t.done
	}
	if t.Err() != nil {
		// A worker died mid-section; the surviving clocks are whatever they
		// are. Skip the sync — the run is being abandoned.
		return
	}
	var max uint64
	for _, w := range t.workers {
		if c := w.Core.Cycles(); c > max {
			max = c
		}
	}
	for _, w := range t.workers {
		if d := max - w.Core.Cycles(); d > 0 {
			w.Core.Stall(d)
		}
	}
}

// Partition returns thread tid's static block [lo, hi) of n rows.
func (t *Team) Partition(n, tid int) (lo, hi int) {
	nt := len(t.workers)
	return tid * n / nt, (tid + 1) * n / nt
}

// RegisterRegions registers the problem's instrumented regions on mon in
// the order Generate used, so a Machine's secondary monitors assign the
// same region ids as the primary (region events must agree across the
// merged per-thread streams).
func (p *Problem) RegisterRegions(mon *extrae.Monitor) error {
	for _, rr := range []struct {
		name string
		want extrae.Region
	}{
		{"CG_iteration", p.RegionIteration},
		{"ComputeSYMGS_ref", p.RegionSYMGS},
		{"ComputeSPMV_ref", p.RegionSPMV},
		{"ComputeMG_ref", p.RegionMG},
		{"ComputeDotProduct_ref", p.RegionDot},
		{"ComputeWAXPBY_ref", p.RegionWAXPBY},
	} {
		if got := mon.RegisterRegion(rr.name); got != rr.want {
			return fmt.Errorf("hpcg: region %q registered as %d on secondary monitor, primary has %d",
				rr.name, got, rr.want)
		}
	}
	return nil
}

// snapshotX freezes x into the level's snapshot buffer for the next sweep's
// cross-block reads. With one worker there is no cross-block coupling and
// the snapshot is skipped (the sweep never consults it).
func (p *Problem) snapshotX(team *Team, lv *Level, x *Vector) []float64 {
	if team.Size() == 1 {
		return nil
	}
	if len(lv.xOld) < len(x.Data) {
		lv.xOld = make([]float64, len(x.Data))
	}
	copy(lv.xOld, x.Data)
	return lv.xOld
}

// parallelSYMGS runs the symmetric Gauss–Seidel smoother block-parallel:
// each worker sweeps its own row block forward then backward, with a
// barrier (and a fresh x snapshot) between the sweeps.
func (p *Problem) parallelSYMGS(team *Team, lv *Level, r, x *Vector) {
	xOld := p.snapshotX(team, lv, x)
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(lv.NRows, tid)
		w.Mon.EnterRegion(p.RegionSYMGS)
		p.symgsSweep(w.Core, lv, r, x, lo, hi, true, xOld)
	})
	xOld = p.snapshotX(team, lv, x)
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(lv.NRows, tid)
		p.symgsSweep(w.Core, lv, r, x, lo, hi, false, xOld)
		w.Mon.ExitRegion(p.RegionSYMGS)
	})
}

// parallelSpMV runs y = A*x with rows statically partitioned. x is frozen
// during the section (the caller's barriers guarantee it), so cross-block
// gathers are race-free.
func (p *Problem) parallelSpMV(team *Team, lv *Level, x, y *Vector) {
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(lv.NRows, tid)
		w.Mon.EnterRegion(p.RegionSPMV)
		p.spmvRows(w.Core, lv, x, y, lo, hi)
		w.Mon.ExitRegion(p.RegionSPMV)
	})
}

// parallelDot computes a·b, each worker reducing its own block; the
// partials combine in worker order, keeping the result deterministic for a
// fixed thread count.
func (p *Problem) parallelDot(team *Team, a, b *Vector) float64 {
	n := len(a.Data)
	partial := make([]float64, team.Size())
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(n, tid)
		w.Mon.EnterRegion(p.RegionDot)
		partial[tid] = p.dotRange(w.Core, a, b, lo, hi)
		w.Mon.ExitRegion(p.RegionDot)
	})
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// parallelWAXPBY computes w = alpha*x + beta*y over static blocks.
func (p *Problem) parallelWAXPBY(team *Team, alpha float64, x *Vector, beta float64, y, w *Vector) {
	n := len(w.Data)
	team.Run(func(tid int, wk *Worker) {
		lo, hi := team.Partition(n, tid)
		wk.Mon.EnterRegion(p.RegionWAXPBY)
		p.waxpbyRange(wk.Core, alpha, x, beta, y, w, lo, hi)
		wk.Mon.ExitRegion(p.RegionWAXPBY)
	})
}

// parallelMove copies src into dst (host) and issues the per-block move
// traffic.
func (p *Problem) parallelMove(team *Team, src, dst *Vector) {
	copy(dst.Data, src.Data)
	n := len(src.Data)
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(n, tid)
		p.moveRange(w.Core, src, dst, lo, hi)
	})
}

// parallelRestrict partitions the coarse rows of lv's restriction.
func (p *Problem) parallelRestrict(team *Team, lv *Level) {
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(lv.Coarse.NRows, tid)
		p.restrictRows(w.Core, lv, lo, hi)
	})
}

// parallelProlong partitions the coarse rows of lv's prolongation; the
// injection map sends disjoint coarse blocks to disjoint fine rows.
func (p *Problem) parallelProlong(team *Team, lv *Level) {
	team.Run(func(tid int, w *Worker) {
		lo, hi := team.Partition(lv.Coarse.NRows, tid)
		p.prolongRows(w.Core, lv, lo, hi)
	})
}

// parallelMGRecurse mirrors mgRecurse with parallel kernels.
func (p *Problem) parallelMGRecurse(team *Team, lv *Level) {
	if lv.Coarse == nil {
		p.parallelSYMGS(team, lv, lv.R, lv.X)
		return
	}
	lv.X.Fill(0)
	p.parallelSYMGS(team, lv, lv.R, lv.X)  // presmooth
	p.parallelSpMV(team, lv, lv.X, lv.Axf) // residual matvec
	p.parallelRestrict(team, lv)           // move to coarse grid
	lv.Coarse.X.Fill(0)
	p.parallelMGRecurse(team, lv.Coarse)  // solve coarse
	p.parallelProlong(team, lv)           // correction back
	p.parallelSYMGS(team, lv, lv.R, lv.X) // postsmooth
}

// parallelMG mirrors MG: every worker opens the ComputeMG_ref region and
// pushes the recursion frame on its own monitor, so each thread's samples
// attribute the coarse-grid work exactly as the sequential path does.
func (p *Problem) parallelMG(team *Team, r, z *Vector) {
	fine := p.Fine
	p.parallelMove(team, r, fine.R)
	fine.X.Fill(0)

	p.parallelSYMGS(team, fine, fine.R, fine.X) // A
	if fine.Coarse != nil {
		p.parallelSpMV(team, fine, fine.X, fine.Axf) // B
		team.Run(func(_ int, w *Worker) {
			w.Mon.EnterRegion(p.RegionMG) // C covers the coarse-grid work
			w.Mon.PushFrame(p.ips.mgFrame)
		})
		p.parallelRestrict(team, fine)
		fine.Coarse.X.Fill(0)
		p.parallelMGRecurse(team, fine.Coarse)
		p.parallelProlong(team, fine)
		team.Run(func(_ int, w *Worker) {
			w.Mon.PopFrame()
			w.Mon.ExitRegion(p.RegionMG)
		})
		p.parallelSYMGS(team, fine, fine.R, fine.X) // D
	}
	p.parallelMove(team, fine.X, z)
}

// RunCGParallel executes the preconditioned conjugate gradient solve on
// the team, one instrumented "CG_iteration" region instance per iteration
// per thread. Worker 0 must be the problem's own core/monitor (the primary
// thread owns setup allocations and the scalar bookkeeping traffic). With
// a single worker the executed instruction stream is identical to RunCG.
func (p *Problem) RunCGParallel(team *Team) (*CGResult, error) {
	if team.workers[0].Core != p.core || team.workers[0].Mon != p.mon {
		return nil, fmt.Errorf("hpcg: team worker 0 must be the problem's primary core/monitor")
	}
	n := p.Fine.NRows
	r, err := p.newVector("cg_r", n)
	if err != nil {
		return nil, err
	}
	z, err := p.newVector("cg_z", n)
	if err != nil {
		return nil, err
	}
	pv, err := p.newVector("cg_p", n)
	if err != nil {
		return nil, err
	}
	ap, err := p.newVector("cg_Ap", n)
	if err != nil {
		return nil, err
	}

	p.X.Fill(0)
	// r = b - A*x = b (x starts at zero); p = r handled in first iteration.
	p.parallelMove(team, p.B, r)

	res := &CGResult{}
	var rtzOld float64
	normR0 := math.Sqrt(p.parallelDot(team, r, r))
	if err := team.Err(); err != nil {
		return nil, &AbortError{Iteration: 0, Err: err}
	}
	if normR0 == 0 {
		return nil, fmt.Errorf("hpcg: zero right-hand side")
	}
	for k := 1; k <= p.Params.MaxIters; k++ {
		if err := team.Err(); err != nil {
			return nil, &AbortError{Iteration: k - 1, Err: err}
		}
		team.Run(func(_ int, w *Worker) { w.Mon.EnterRegion(p.RegionIteration) })

		p.parallelMG(team, r, z) // preconditioner: phases A..D

		rtz := p.parallelDot(team, r, z)
		if k == 1 {
			p.parallelMove(team, z, pv)
		} else {
			beta := rtz / rtzOld
			p.parallelWAXPBY(team, 1, z, beta, pv, pv)
		}
		rtzOld = rtz

		p.parallelSpMV(team, p.Fine, pv, ap) // phase E
		pap := p.parallelDot(team, pv, ap)
		if err := team.Err(); err != nil {
			// Check before the breakdown test: a poisoned team produces
			// zero partials, which must not masquerade as p·Ap = 0.
			return nil, &AbortError{Iteration: k, Err: err}
		}
		if pap == 0 {
			team.Run(func(_ int, w *Worker) { w.Mon.ExitRegion(p.RegionIteration) })
			return nil, fmt.Errorf("hpcg: CG breakdown (p·Ap = 0) at iteration %d", k)
		}
		alpha := rtz / pap
		p.parallelWAXPBY(team, 1, p.X, alpha, pv, p.X)
		p.parallelWAXPBY(team, 1, r, -alpha, ap, r)

		normR := math.Sqrt(p.parallelDot(team, r, r))
		res.Residuals = append(res.Residuals, normR)
		res.Iterations = k

		team.Run(func(_ int, w *Worker) { w.Mon.ExitRegion(p.RegionIteration) })

		if p.Params.Tolerance > 0 && normR/normR0 < p.Params.Tolerance {
			res.Converged = true
			break
		}
	}
	if err := team.Err(); err != nil {
		return nil, &AbortError{Iteration: res.Iterations, Err: err}
	}
	var maxErr float64
	for i := range p.X.Data {
		if e := math.Abs(p.X.Data[i] - p.Xexact.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	res.FinalError = maxErr
	return res, nil
}
