package hpcg

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/extrae"
	"repro/internal/prog"
)

// Vector is a dense vector with a simulated base address: element i of the
// real data lives at Addr + 8*i in the simulated address space.
type Vector struct {
	Name string
	Data []float64
	Addr uint64
}

// ElemAddr returns the simulated address of element i.
func (v *Vector) ElemAddr(i int) uint64 { return v.Addr + uint64(i)*8 }

// Fill sets every element to x.
func (v *Vector) Fill(x float64) {
	for i := range v.Data {
		v.Data[i] = x
	}
}

// Level is one multigrid level: the sparse matrix in HPCG's row-wise
// storage plus the level's work vectors and the fine-to-coarse mapping.
type Level struct {
	Geom  Geometry
	NRows int

	// NonzerosInRow mirrors HPCG's per-row nonzero counts.
	NonzerosInRow []uint8
	// Cols and Vals are the per-row column indices and coefficients. Each
	// row was allocated separately (the paper's small allocations); the
	// simulated base addresses are in ColsAddr and ValsAddr.
	Cols     [][]int32
	Vals     [][]float64
	ColsAddr []uint64
	ValsAddr []uint64

	// F2C maps coarse rows to fine rows (nil on the coarsest level).
	F2C     []int32
	F2CAddr uint64

	// Work vectors used by the V-cycle on this level.
	R, X, Axf *Vector

	// Coarse points to the next (coarser) level, nil at the bottom.
	Coarse *Level

	// xOld is the host-side snapshot buffer the parallel block-Jacobi
	// SYMGS reads cross-block values from (no simulated address: the
	// snapshot is an artifact of race-free simulation, not of the
	// modelled program).
	xOld []float64
}

// codeIPs holds the pre-resolved instruction pointers for every simulated
// source line the kernels reference.
type codeIPs struct {
	symgsFwdVal, symgsFwdCol, symgsFwdX, symgsFwdStore  uint64
	symgsBwdVal, symgsBwdCol, symgsBwdX, symgsBwdStore  uint64
	spmvVal, spmvCol, spmvX, spmvStore                  uint64
	dotA, dotB                                          uint64
	waxpbyX, waxpbyY, waxpbyW                           uint64
	restrictF2C, restrictRf, restrictAxf, restrictStore uint64
	prolongF2C, prolongXc, prolongXf, prolongStore      uint64
	genRows, genMap, genVectors                         uint64
	mgFrame                                             uint64
}

// Problem is a generated HPCG instance bound to a monitored core.
type Problem struct {
	Params Params
	Fine   *Level
	B      *Vector // right-hand side
	X      *Vector // solution vector
	Xexact *Vector

	core *cpu.Core
	mon  *extrae.Monitor
	ips  codeIPs

	// Regions registered with the monitor.
	RegionIteration extrae.Region
	RegionSYMGS     extrae.Region
	RegionSPMV      extrae.Region
	RegionMG        extrae.Region
	RegionDot       extrae.Region
	RegionWAXPBY    extrae.Region
}

// Params configures problem generation and the CG run.
type Params struct {
	// NX, NY, NZ are the local box dimensions (the paper uses 104³; tests
	// use 16³ and experiments default to 32–64³ for simulator speed).
	NX, NY, NZ int
	// MGLevels is the number of multigrid levels including the finest
	// (HPCG uses 4). Dimensions must be divisible by 2^(MGLevels-1).
	MGLevels int
	// MaxIters bounds the CG iterations.
	MaxIters int
	// Tolerance stops CG when the relative residual drops below it
	// (0 runs exactly MaxIters iterations, like the benchmark's timed runs).
	Tolerance float64
	// DisableGrouping skips the allocation-group instrumentation,
	// reproducing the paper's preliminary analysis in which most PEBS
	// references could not be associated with a memory object because the
	// per-row allocations fell below the tracking threshold.
	DisableGrouping bool
}

// DefaultParams returns a simulator-friendly scaled-down configuration.
func DefaultParams() Params {
	return Params{NX: 32, NY: 32, NZ: 32, MGLevels: 4, MaxIters: 10}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	g := Geometry{NX: p.NX, NY: p.NY, NZ: p.NZ}
	if err := g.Validate(); err != nil {
		return err
	}
	if p.MGLevels < 1 {
		return fmt.Errorf("hpcg: need at least one MG level")
	}
	for l := 1; l < p.MGLevels; l++ {
		var err error
		if g, err = g.Coarsen(); err != nil {
			return fmt.Errorf("hpcg: level %d: %w", l, err)
		}
	}
	if p.MaxIters < 1 {
		return fmt.Errorf("hpcg: MaxIters must be positive")
	}
	return nil
}

// SetupBinary registers the HPCG source structure (functions, files, line
// numbers) in the synthetic binary, mirroring the HPCG 3.0 reference code
// layout the paper refers to.
func SetupBinary(bin *prog.Binary) error {
	fns := []struct {
		name, file       string
		startLine, lines int
	}{
		{"main", "main.cpp", 1, 100},
		{"GenerateProblem_ref", "GenerateProblem_ref.cpp", 60, 160},
		{"ComputeSYMGS_ref", "ComputeSYMGS_ref.cpp", 38, 50},
		{"ComputeSPMV_ref", "ComputeSPMV_ref.cpp", 40, 30},
		{"ComputeMG_ref", "ComputeMG_ref.cpp", 30, 40},
		{"ComputeDotProduct_ref", "ComputeDotProduct_ref.cpp", 30, 20},
		{"ComputeWAXPBY_ref", "ComputeWAXPBY_ref.cpp", 30, 20},
		{"ComputeRestriction_ref", "ComputeRestriction_ref.cpp", 30, 20},
		{"ComputeProlongation_ref", "ComputeProlongation_ref.cpp", 30, 20},
	}
	for _, f := range fns {
		if _, err := bin.AddFunction(f.name, f.file, f.startLine, f.lines); err != nil {
			return err
		}
	}
	return nil
}

// resolveIPs fills the per-line IP table from the binary.
func resolveIPs(bin *prog.Binary) (codeIPs, error) {
	var ips codeIPs
	get := func(fn string, line int) (uint64, error) {
		f, ok := bin.Function(fn)
		if !ok {
			return 0, fmt.Errorf("hpcg: function %s not registered", fn)
		}
		return f.IPForLine(line)
	}
	var err error
	set := func(dst *uint64, fn string, line int) {
		if err != nil {
			return
		}
		*dst, err = get(fn, line)
	}
	// ComputeSYMGS_ref.cpp: forward sweep body ~lines 45-48, backward ~60-63.
	set(&ips.symgsFwdVal, "ComputeSYMGS_ref", 45)
	set(&ips.symgsFwdCol, "ComputeSYMGS_ref", 46)
	set(&ips.symgsFwdX, "ComputeSYMGS_ref", 47)
	set(&ips.symgsFwdStore, "ComputeSYMGS_ref", 48)
	set(&ips.symgsBwdVal, "ComputeSYMGS_ref", 60)
	set(&ips.symgsBwdCol, "ComputeSYMGS_ref", 61)
	set(&ips.symgsBwdX, "ComputeSYMGS_ref", 62)
	set(&ips.symgsBwdStore, "ComputeSYMGS_ref", 63)
	// ComputeSPMV_ref.cpp: loop body ~lines 55-58.
	set(&ips.spmvVal, "ComputeSPMV_ref", 55)
	set(&ips.spmvCol, "ComputeSPMV_ref", 56)
	set(&ips.spmvX, "ComputeSPMV_ref", 57)
	set(&ips.spmvStore, "ComputeSPMV_ref", 58)
	set(&ips.dotA, "ComputeDotProduct_ref", 38)
	set(&ips.dotB, "ComputeDotProduct_ref", 39)
	set(&ips.waxpbyX, "ComputeWAXPBY_ref", 38)
	set(&ips.waxpbyY, "ComputeWAXPBY_ref", 39)
	set(&ips.waxpbyW, "ComputeWAXPBY_ref", 40)
	set(&ips.restrictF2C, "ComputeRestriction_ref", 37)
	set(&ips.restrictRf, "ComputeRestriction_ref", 38)
	set(&ips.restrictAxf, "ComputeRestriction_ref", 39)
	set(&ips.restrictStore, "ComputeRestriction_ref", 40)
	set(&ips.prolongF2C, "ComputeProlongation_ref", 37)
	set(&ips.prolongXc, "ComputeProlongation_ref", 38)
	set(&ips.prolongXf, "ComputeProlongation_ref", 39)
	set(&ips.prolongStore, "ComputeProlongation_ref", 40)
	// GenerateProblem_ref.cpp: row allocations at lines 108-110, the map
	// insertions at line 143, vector allocations at line 70.
	// ComputeMG_ref.cpp line 35: the coarse-grid recursion frame.
	set(&ips.mgFrame, "ComputeMG_ref", 35)
	set(&ips.genRows, "GenerateProblem_ref", 108)
	set(&ips.genMap, "GenerateProblem_ref", 143)
	set(&ips.genVectors, "GenerateProblem_ref", 70)
	return ips, err
}

// mapNodeBytes models a C++ std::map node for the globalToLocal map: key,
// value and red-black tree overhead. With 540 bytes of row storage per row
// (27 values × 8 B + 27 global indices × 8 B + 27 local indices × 4 B) the
// 80-byte node keeps the two allocation groups near the paper's 617:89 MB
// (≈ 7:1) ratio.
const mapNodeBytes = 80

// rowStorageBytes is the per-row matrix footprint (vals + global + local
// indices), matching HPCG's GenerateProblem allocations.
const rowStorageBytes = MaxNonzerosPerRow*8 + MaxNonzerosPerRow*8 + MaxNonzerosPerRow*4

// Generate builds the full problem: matrix hierarchy, vectors, and the
// allocation-group instrumentation. It must run before monitoring starts
// (the paper analyses only the execution phase, but the allocations made
// here must be known to the object registry).
func Generate(params Params, core *cpu.Core, mon *extrae.Monitor, bin *prog.Binary) (*Problem, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ips, err := resolveIPs(bin)
	if err != nil {
		return nil, err
	}
	p := &Problem{Params: params, core: core, mon: mon, ips: ips}
	p.RegionIteration = mon.RegisterRegion("CG_iteration")
	p.RegionSYMGS = mon.RegisterRegion("ComputeSYMGS_ref")
	p.RegionSPMV = mon.RegisterRegion("ComputeSPMV_ref")
	p.RegionMG = mon.RegisterRegion("ComputeMG_ref")
	p.RegionDot = mon.RegisterRegion("ComputeDotProduct_ref")
	p.RegionWAXPBY = mon.RegisterRegion("ComputeWAXPBY_ref")

	// Level hierarchy. The matrix rows of every level are allocated inside
	// the first group; the per-row map nodes inside the second. This is the
	// paper's manual wrapping: first-to-last address of each population.
	geom := Geometry{NX: params.NX, NY: params.NY, NZ: params.NZ}

	// Group 1: matrix row storage (the "124_GenerateProblem_ref.cpp" object).
	// With grouping disabled, the rows are ordinary small allocations that
	// fall below the tracking threshold — the paper's preliminary analysis.
	mon.PushFrame(ips.genRows)
	if !params.DisableGrouping {
		if err := mon.BeginAllocGroup("124_GenerateProblem_ref.cpp"); err != nil {
			return nil, err
		}
	}
	levels := make([]*Level, params.MGLevels)
	g := geom
	for l := 0; l < params.MGLevels; l++ {
		lv, err := p.generateMatrix(g)
		if err != nil {
			return nil, err
		}
		levels[l] = lv
		if l+1 < params.MGLevels {
			if g, err = g.Coarsen(); err != nil {
				return nil, err
			}
		}
	}
	if !params.DisableGrouping {
		if _, err := mon.EndAllocGroup(); err != nil {
			return nil, err
		}
	}
	mon.PopFrame()

	// Group 2: the globalToLocal map nodes (the "205_..." object). One node
	// per fine row, inserted through the []-operator as the paper notes.
	mon.PushFrame(ips.genMap)
	if !params.DisableGrouping {
		if err := mon.BeginAllocGroup("205_GenerateProblem_ref.cpp"); err != nil {
			return nil, err
		}
	}
	for i := 0; i < levels[0].NRows; i++ {
		if _, err := mon.Alloc(mapNodeBytes); err != nil {
			return nil, err
		}
	}
	if !params.DisableGrouping {
		if _, err := mon.EndAllocGroup(); err != nil {
			return nil, err
		}
	}
	mon.PopFrame()

	// Link levels, allocate work vectors and fine-to-coarse maps.
	for l := 0; l < params.MGLevels; l++ {
		lv := levels[l]
		if l+1 < params.MGLevels {
			lv.Coarse = levels[l+1]
			if err := p.buildF2C(lv); err != nil {
				return nil, err
			}
		}
		if lv.R, err = p.newVector(fmt.Sprintf("mg%d_r", l), lv.NRows); err != nil {
			return nil, err
		}
		if lv.X, err = p.newVector(fmt.Sprintf("mg%d_x", l), lv.NRows); err != nil {
			return nil, err
		}
		if lv.Axf, err = p.newVector(fmt.Sprintf("mg%d_Axf", l), lv.NRows); err != nil {
			return nil, err
		}
	}
	p.Fine = levels[0]

	// Problem vectors, allocated individually (large, above threshold).
	n := p.Fine.NRows
	if p.B, err = p.newVector("b", n); err != nil {
		return nil, err
	}
	if p.X, err = p.newVector("x", n); err != nil {
		return nil, err
	}
	if p.Xexact, err = p.newVector("xexact", n); err != nil {
		return nil, err
	}
	// HPCG: xexact = 1, b = A * xexact computed directly (setup phase does
	// the arithmetic natively; only execution-phase accesses are simulated).
	p.Xexact.Fill(1)
	fine := p.Fine
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < int(fine.NonzerosInRow[i]); j++ {
			sum += fine.Vals[i][j] * p.Xexact.Data[fine.Cols[i][j]]
		}
		p.B.Data[i] = sum
	}
	return p, nil
}

// generateMatrix builds one level's matrix with per-row small allocations.
func (p *Problem) generateMatrix(g Geometry) (*Level, error) {
	n := g.Rows()
	lv := &Level{
		Geom:          g,
		NRows:         n,
		NonzerosInRow: make([]uint8, n),
		Cols:          make([][]int32, n),
		Vals:          make([][]float64, n),
		ColsAddr:      make([]uint64, n),
		ValsAddr:      make([]uint64, n),
	}
	for iz := 0; iz < g.NZ; iz++ {
		for iy := 0; iy < g.NY; iy++ {
			for ix := 0; ix < g.NX; ix++ {
				row := g.Index(ix, iy, iz)
				// One simulated allocation covering the row's values and
				// indices (HPCG performs three news per row at lines
				// 108-110; we coalesce them into one region of the same
				// total size to keep the address space identical).
				addr, err := p.mon.Alloc(rowStorageBytes)
				if err != nil {
					return nil, err
				}
				lv.ValsAddr[row] = addr
				lv.ColsAddr[row] = addr + MaxNonzerosPerRow*16 // after vals+global inds
				vals := make([]float64, 0, MaxNonzerosPerRow)
				cols := make([]int32, 0, MaxNonzerosPerRow)
				g.forEachNeighbor(ix, iy, iz, func(col int) {
					if col == row {
						vals = append(vals, 26)
					} else {
						vals = append(vals, -1)
					}
					cols = append(cols, int32(col))
				})
				lv.Vals[row] = vals
				lv.Cols[row] = cols
				lv.NonzerosInRow[row] = uint8(len(cols))
			}
		}
	}
	return lv, nil
}

// buildF2C computes the injection operator from lv to lv.Coarse.
func (p *Problem) buildF2C(lv *Level) error {
	cg := lv.Coarse.Geom
	f2c := make([]int32, cg.Rows())
	for iz := 0; iz < cg.NZ; iz++ {
		for iy := 0; iy < cg.NY; iy++ {
			for ix := 0; ix < cg.NX; ix++ {
				f2c[cg.Index(ix, iy, iz)] = int32(lv.Geom.Index(ix*2, iy*2, iz*2))
			}
		}
	}
	lv.F2C = f2c
	addr, err := p.mon.Alloc(uint64(len(f2c)) * 4)
	if err != nil {
		return err
	}
	lv.F2CAddr = addr
	return nil
}

// newVector allocates a named vector at the GenerateProblem vector site.
func (p *Problem) newVector(name string, n int) (*Vector, error) {
	p.mon.PushFrame(p.ips.genVectors)
	addr, err := p.mon.Alloc(uint64(n) * 8)
	p.mon.PopFrame()
	if err != nil {
		return nil, err
	}
	return &Vector{Name: name, Data: make([]float64, n), Addr: addr}, nil
}
