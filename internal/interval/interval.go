// Package interval provides an augmented balanced interval tree keyed on
// half-open uint64 address ranges [Lo, Hi). It is the lookup structure used
// by the data-object registry to resolve sampled memory addresses into the
// data object that owns them, mirroring how Extrae resolves PEBS addresses
// against the table of known allocations and static symbols.
package interval

import (
	"errors"
	"fmt"
)

// Interval is a half-open address range [Lo, Hi). Hi must be > Lo.
type Interval struct {
	Lo, Hi uint64
}

// Contains reports whether addr lies within the interval.
func (iv Interval) Contains(addr uint64) bool { return addr >= iv.Lo && addr < iv.Hi }

// Overlaps reports whether the two half-open intervals intersect.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

// Len returns the number of addresses covered by the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo }

func (iv Interval) String() string { return fmt.Sprintf("[%#x,%#x)", iv.Lo, iv.Hi) }

// ErrEmpty is returned when inserting an interval with Hi <= Lo.
var ErrEmpty = errors.New("interval: empty or inverted interval")

// ErrNotFound is returned by Delete when no node matches the interval.
var ErrNotFound = errors.New("interval: interval not found")

// Tree is an AVL-balanced interval tree with max-endpoint augmentation.
// Intervals are ordered by (Lo, Hi); duplicate (Lo, Hi) pairs are rejected.
// The zero value is an empty tree ready for use.
type Tree[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	iv          Interval
	val         V
	left, right *node[V]
	height      int
	maxHi       uint64 // max Hi over this subtree
}

// Len returns the number of intervals stored.
func (t *Tree[V]) Len() int { return t.size }

// Insert adds the interval with its value. Inserting an interval with an
// identical (Lo, Hi) key replaces the stored value.
func (t *Tree[V]) Insert(iv Interval, v V) error {
	if iv.Hi <= iv.Lo {
		return ErrEmpty
	}
	var grew bool
	t.root, grew = insert(t.root, iv, v)
	if grew {
		t.size++
	}
	return nil
}

// Delete removes the interval with exactly the given (Lo, Hi) key.
func (t *Tree[V]) Delete(iv Interval) error {
	var deleted bool
	t.root, deleted = remove(t.root, iv)
	if !deleted {
		return ErrNotFound
	}
	t.size--
	return nil
}

// Stab returns the value of an interval containing addr. When several
// intervals contain the address, the one with the greatest Lo (the most
// specific / innermost allocation) is returned. ok is false if no interval
// contains the address.
func (t *Tree[V]) Stab(addr uint64) (iv Interval, v V, ok bool) {
	best := stabBest(t.root, addr)
	if best == nil {
		return Interval{}, v, false
	}
	return best.iv, best.val, true
}

// StabAll calls fn for every interval containing addr, in ascending (Lo, Hi)
// order. Iteration stops early if fn returns false.
func (t *Tree[V]) StabAll(addr uint64, fn func(Interval, V) bool) {
	stabAll(t.root, addr, fn)
}

// Overlapping calls fn for every stored interval overlapping the query, in
// ascending (Lo, Hi) order. Iteration stops early if fn returns false.
func (t *Tree[V]) Overlapping(q Interval, fn func(Interval, V) bool) {
	overlapping(t.root, q, fn)
}

// Walk visits all intervals in ascending (Lo, Hi) order.
func (t *Tree[V]) Walk(fn func(Interval, V) bool) {
	walk(t.root, fn)
}

// Height returns the height of the tree (0 for empty); exposed for testing
// balance invariants.
func (t *Tree[V]) Height() int { return height(t.root) }

func height[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func maxHi[V any](n *node[V]) uint64 {
	if n == nil {
		return 0
	}
	return n.maxHi
}

func (n *node[V]) update() {
	h := height(n.left)
	if hr := height(n.right); hr > h {
		h = hr
	}
	n.height = h + 1
	n.maxHi = n.iv.Hi
	if m := maxHi(n.left); m > n.maxHi {
		n.maxHi = m
	}
	if m := maxHi(n.right); m > n.maxHi {
		n.maxHi = m
	}
}

func balanceFactor[V any](n *node[V]) int { return height(n.left) - height(n.right) }

func rotateRight[V any](n *node[V]) *node[V] {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft[V any](n *node[V]) *node[V] {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

func rebalance[V any](n *node[V]) *node[V] {
	n.update()
	switch bf := balanceFactor(n); {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// less orders intervals by (Lo, Hi).
func less(a, b Interval) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return a.Hi < b.Hi
}

func insert[V any](n *node[V], iv Interval, v V) (*node[V], bool) {
	if n == nil {
		nn := &node[V]{iv: iv, val: v}
		nn.update()
		return nn, true
	}
	var grew bool
	switch {
	case less(iv, n.iv):
		n.left, grew = insert(n.left, iv, v)
	case less(n.iv, iv):
		n.right, grew = insert(n.right, iv, v)
	default:
		n.val = v
		return n, false
	}
	return rebalance(n), grew
}

func minNode[V any](n *node[V]) *node[V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func remove[V any](n *node[V], iv Interval) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case less(iv, n.iv):
		n.left, deleted = remove(n.left, iv)
	case less(n.iv, iv):
		n.right, deleted = remove(n.right, iv)
	default:
		deleted = true
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			succ := minNode(n.right)
			n.iv, n.val = succ.iv, succ.val
			n.right, _ = remove(n.right, succ.iv)
		}
	}
	return rebalance(n), deleted
}

// stabBest returns the containing node with the greatest Lo (ties broken by
// the smaller Hi, i.e. the tightest match). The recursion is pruned by the
// subtree maxHi augmentation and by interval ordering.
func stabBest[V any](n *node[V], addr uint64) *node[V] {
	if n == nil || maxHi(n) <= addr {
		return nil
	}
	var best *node[V]
	if n.iv.Contains(addr) {
		best = n
	}
	// Right subtree holds larger Lo values: it can only contain addr when the
	// current Lo is <= addr (ordering guarantees right Lo >= n.iv.Lo).
	if n.iv.Lo <= addr {
		if cand := stabBest(n.right, addr); cand != nil && better(cand, best) {
			best = cand
		}
	}
	if cand := stabBest(n.left, addr); cand != nil && better(cand, best) {
		best = cand
	}
	return best
}

// better reports whether candidate cand is a more specific stab match than
// the current best (nil best always loses).
func better[V any](cand, best *node[V]) bool {
	if best == nil {
		return true
	}
	if cand.iv.Lo != best.iv.Lo {
		return cand.iv.Lo > best.iv.Lo
	}
	return cand.iv.Hi < best.iv.Hi
}

func stabAll[V any](n *node[V], addr uint64, fn func(Interval, V) bool) bool {
	if n == nil || maxHi(n) <= addr {
		return true
	}
	if !stabAll(n.left, addr, fn) {
		return false
	}
	if n.iv.Contains(addr) {
		if !fn(n.iv, n.val) {
			return false
		}
	}
	if n.iv.Lo <= addr {
		return stabAll(n.right, addr, fn)
	}
	return true
}

func overlapping[V any](n *node[V], q Interval, fn func(Interval, V) bool) bool {
	if n == nil || maxHi(n) <= q.Lo {
		return true
	}
	if !overlapping(n.left, q, fn) {
		return false
	}
	if n.iv.Overlaps(q) {
		if !fn(n.iv, n.val) {
			return false
		}
	}
	if n.iv.Lo < q.Hi {
		return overlapping(n.right, q, fn)
	}
	return true
}

func walk[V any](n *node[V], fn func(Interval, V) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.iv, n.val) {
		return false
	}
	return walk(n.right, fn)
}
