package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 0x1000, Hi: 0x2000}
	if !iv.Contains(0x1000) {
		t.Error("Lo must be contained")
	}
	if iv.Contains(0x2000) {
		t.Error("Hi must be excluded (half-open)")
	}
	if !iv.Contains(0x1fff) {
		t.Error("Hi-1 must be contained")
	}
	if iv.Len() != 0x1000 {
		t.Errorf("Len = %d, want %d", iv.Len(), 0x1000)
	}
	if got := iv.String(); got != "[0x1000,0x2000)" {
		t.Errorf("String = %q", got)
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{10, 20}
	cases := []struct {
		b    Interval
		want bool
	}{
		{Interval{0, 10}, false},  // touching below
		{Interval{20, 30}, false}, // touching above
		{Interval{0, 11}, true},
		{Interval{19, 30}, true},
		{Interval{12, 15}, true}, // nested
		{Interval{0, 40}, true},  // covering
		{Interval{10, 20}, true}, // equal
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", a, c.b)
		}
	}
}

func TestInsertRejectsEmpty(t *testing.T) {
	var tr Tree[int]
	if err := tr.Insert(Interval{5, 5}, 0); err != ErrEmpty {
		t.Errorf("empty interval: err = %v, want ErrEmpty", err)
	}
	if err := tr.Insert(Interval{6, 5}, 0); err != ErrEmpty {
		t.Errorf("inverted interval: err = %v, want ErrEmpty", err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after rejected inserts", tr.Len())
	}
}

func TestInsertReplaceValue(t *testing.T) {
	var tr Tree[string]
	if err := tr.Insert(Interval{1, 2}, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(Interval{1, 2}, "b"); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace)", tr.Len())
	}
	_, v, ok := tr.Stab(1)
	if !ok || v != "b" {
		t.Errorf("Stab = %q, %v; want \"b\", true", v, ok)
	}
}

func TestStabPicksInnermost(t *testing.T) {
	var tr Tree[string]
	must(t, tr.Insert(Interval{0, 100}, "outer"))
	must(t, tr.Insert(Interval{10, 50}, "mid"))
	must(t, tr.Insert(Interval{20, 30}, "inner"))
	cases := []struct {
		addr uint64
		want string
	}{
		{5, "outer"}, {15, "mid"}, {25, "inner"}, {40, "mid"}, {60, "outer"},
	}
	for _, c := range cases {
		_, v, ok := tr.Stab(c.addr)
		if !ok || v != c.want {
			t.Errorf("Stab(%d) = %q, %v; want %q", c.addr, v, ok, c.want)
		}
	}
	if _, _, ok := tr.Stab(100); ok {
		t.Error("Stab(100) matched; 100 is outside all intervals")
	}
}

func TestDelete(t *testing.T) {
	var tr Tree[int]
	ivs := []Interval{{0, 10}, {10, 20}, {20, 30}, {5, 25}}
	for i, iv := range ivs {
		must(t, tr.Insert(iv, i))
	}
	if err := tr.Delete(Interval{10, 20}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	_, v, ok := tr.Stab(12)
	if !ok || v != 3 {
		t.Errorf("Stab(12) = %v, %v; want value 3 ({5,25})", v, ok)
	}
	if err := tr.Delete(Interval{10, 20}); err != ErrNotFound {
		t.Errorf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestWalkOrdered(t *testing.T) {
	var tr Tree[int]
	ivs := []Interval{{30, 40}, {10, 20}, {10, 15}, {0, 100}, {20, 25}}
	for i, iv := range ivs {
		must(t, tr.Insert(iv, i))
	}
	var got []Interval
	tr.Walk(func(iv Interval, _ int) bool {
		got = append(got, iv)
		return true
	})
	for i := 1; i < len(got); i++ {
		if !less(got[i-1], got[i]) {
			t.Fatalf("Walk not ordered: %v before %v", got[i-1], got[i])
		}
	}
	if len(got) != len(ivs) {
		t.Fatalf("Walk visited %d, want %d", len(got), len(ivs))
	}
}

func TestWalkEarlyStop(t *testing.T) {
	var tr Tree[int]
	for i := uint64(0); i < 10; i++ {
		must(t, tr.Insert(Interval{i * 10, i*10 + 5}, int(i)))
	}
	n := 0
	tr.Walk(func(Interval, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestOverlapping(t *testing.T) {
	var tr Tree[int]
	for i := uint64(0); i < 10; i++ {
		must(t, tr.Insert(Interval{i * 10, i*10 + 8}, int(i)))
	}
	var vals []int
	tr.Overlapping(Interval{15, 35}, func(_ Interval, v int) bool {
		vals = append(vals, v)
		return true
	})
	// [10,18) [20,28) [30,38) overlap [15,35).
	want := []int{1, 2, 3}
	if len(vals) != len(want) {
		t.Fatalf("Overlapping = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Overlapping = %v, want %v", vals, want)
		}
	}
}

func TestStabAll(t *testing.T) {
	var tr Tree[string]
	must(t, tr.Insert(Interval{0, 100}, "a"))
	must(t, tr.Insert(Interval{10, 50}, "b"))
	must(t, tr.Insert(Interval{60, 70}, "c"))
	var hits []string
	tr.StabAll(20, func(_ Interval, v string) bool {
		hits = append(hits, v)
		return true
	})
	if len(hits) != 2 || hits[0] != "a" || hits[1] != "b" {
		t.Errorf("StabAll(20) = %v, want [a b]", hits)
	}
}

// brute is a reference implementation used by the property tests.
type brute struct {
	ivs  []Interval
	vals []int
}

func (b *brute) insert(iv Interval, v int) {
	for i := range b.ivs {
		if b.ivs[i] == iv {
			b.vals[i] = v
			return
		}
	}
	b.ivs = append(b.ivs, iv)
	b.vals = append(b.vals, v)
}

func (b *brute) stab(addr uint64) (Interval, int, bool) {
	var (
		bi    Interval
		bv    int
		found bool
	)
	for i, iv := range b.ivs {
		if !iv.Contains(addr) {
			continue
		}
		if !found || iv.Lo > bi.Lo || (iv.Lo == bi.Lo && iv.Hi < bi.Hi) {
			bi, bv, found = iv, b.vals[i], true
		}
	}
	return bi, bv, found
}

func TestPropertyStabMatchesBrute(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree[int]
		var br brute
		for i := 0; i < int(n)+1; i++ {
			lo := uint64(rng.Intn(1000))
			hi := lo + 1 + uint64(rng.Intn(100))
			iv := Interval{lo, hi}
			if err := tr.Insert(iv, i); err != nil {
				return false
			}
			br.insert(iv, i)
		}
		if tr.Len() != len(br.ivs) {
			return false
		}
		for a := uint64(0); a < 1100; a += 7 {
			wi, wv, wok := br.stab(a)
			gi, gv, gok := tr.Stab(a)
			if wok != gok || (wok && (wi != gi || wv != gv)) {
				t.Logf("addr %d: got %v,%d,%v want %v,%d,%v", a, gi, gv, gok, wi, wv, wok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBalanced(t *testing.T) {
	// AVL height must stay within 1.45*log2(n+2).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree[int]
		n := 500
		for i := 0; i < n; i++ {
			lo := uint64(rng.Intn(1 << 20))
			if err := tr.Insert(Interval{lo, lo + 1 + uint64(rng.Intn(64))}, i); err != nil {
				return false
			}
		}
		// log2(502) ~ 9; bound 1.45*9+2 ~ 15.
		return tr.Height() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeleteAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree[int]
		var ivs []Interval
		for i := 0; i < 200; i++ {
			lo := uint64(rng.Intn(1 << 16))
			iv := Interval{lo, lo + 1 + uint64(rng.Intn(256))}
			if err := tr.Insert(iv, i); err != nil {
				return false
			}
		}
		tr.Walk(func(iv Interval, _ int) bool { ivs = append(ivs, iv); return true })
		rng.Shuffle(len(ivs), func(i, j int) { ivs[i], ivs[j] = ivs[j], ivs[i] })
		for _, iv := range ivs {
			if err := tr.Delete(iv); err != nil {
				return false
			}
		}
		return tr.Len() == 0 && tr.Height() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
