package machspec

import (
	"bytes"
	"testing"
)

// FuzzMachSpecDecode drives the strict decoder with arbitrary documents.
// Invariants, following the checkpoint/trace codec fuzz pattern:
//
//   - Decode never panics and never accepts a document whose resolution
//     would violate the mirrored memhier/numa limits (hostile counts are
//     capped before anything allocates from them — asserted here by
//     bounding the accepted values).
//   - Decode∘Encode is a fixed point: an accepted document's canonical
//     JSON re-decodes to a spec whose canonical JSON is byte-identical.
func FuzzMachSpecDecode(f *testing.F) {
	for _, name := range Names() {
		s, err := Named(name)
		if err != nil {
			f.Fatal(err)
		}
		b, err := s.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version": 1, "sockets": 2, "placement": "interleave", "page_size": 8192,
		"cache": {"levels": [{"name": "L1D", "size": 4096, "line_size": 64, "assoc": 4, "hit_latency": 4}]},
		"dram": {"latency": 100, "remote_latency": 250},
		"sampling": {"period": 100, "mux_quantum_ns": 25000, "randomize": true, "seed": 7, "latency_threshold": 3}}`))
	f.Add([]byte(`{"version": 99}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted documents obey the caps the validator mirrors.
		if s.Version != Version {
			t.Fatalf("accepted version %d", s.Version)
		}
		if n := len(s.Cache.Levels); n < 1 || n > 3 {
			t.Fatalf("accepted %d cache levels", n)
		}
		for _, lv := range s.Cache.Levels {
			if lv.Size <= 0 || lv.Size > MaxLevelSize || lv.Assoc < 1 || lv.Assoc > 127 {
				t.Fatalf("accepted hostile level %+v", lv)
			}
		}
		if s.Sockets < 0 || s.Sockets > MaxSockets {
			t.Fatalf("accepted %d sockets", s.Sockets)
		}

		// Decode∘Encode fixed point over the canonical serialization.
		b1, err := s.JSON()
		if err != nil {
			t.Fatalf("canonical encode of accepted spec failed: %v", err)
		}
		s2, err := Decode(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("canonical JSON does not re-decode: %v\n%s", err, b1)
		}
		b2, err := s2.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("decode∘encode not a fixed point:\n%s\nvs\n%s", b1, b2)
		}
	})
}
