// Package machspec is the declarative machine description of the simulator:
// a versioned JSON document naming everything that defines the simulated
// hardware — sockets, cache levels (size/associativity/line/latency and the
// prefetcher), DRAM nodes with local and remote fill latencies, page
// placement, and the PEBS + multiplexing sampling configuration — decoded
// strictly (unknown fields rejected, semantic validation mirroring the
// memhier/numa construction limits) and resolved to the existing
// memhier.Config / numa.Config pair that the core stack consumes.
//
// The three named hierarchies of the scenario matrix (haswell, small,
// noprefetch) are checked-in spec files embedded in this package;
// scenario.HierarchyConfig resolves them through the same path as a
// user-supplied -machine file, so a spec-driven run and a named-hierarchy
// run cannot drift apart. Specs have a canonical JSON serialization
// (Spec.JSON) and a content fingerprint (Spec.Fingerprint) — the sweep
// engine's cache key — so byte-identical machine descriptions are
// recognized as the same machine regardless of where they were loaded from.
package machspec

import (
	"bytes"
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/memhier"
	"repro/internal/numa"
)

// Version is the spec format version this package reads and writes.
const Version = 1

// Construction caps beyond the structural memhier/numa limits: they bound
// what a hostile spec can make the resolver allocate (the checkpoint codec's
// capped-preallocation discipline, applied to configuration).
const (
	// MaxLevelSize bounds one cache level's capacity (1 GiB — an order of
	// magnitude above any modelled LLC slice).
	MaxLevelSize = 1 << 30
	// MaxLineSize bounds the cache line size (the page-size end of sector
	// granularities).
	MaxLineSize = 4096
	// MaxSockets bounds the socket count (numa supports 255 nodes; 64 is
	// already far past the modelled testbeds).
	MaxSockets = 64
	// MaxPageSize bounds the placement granularity (1 GiB hugepages).
	MaxPageSize = 1 << 30
)

// Spec is one machine description.
type Spec struct {
	// Version is the spec format version; must equal Version.
	Version int `json:"version"`
	// Name labels the machine in reports and sweep tables. Load defaults it
	// to the file's base name when the document leaves it empty.
	Name string `json:"name,omitempty"`
	// Sockets is the NUMA socket count (= memory nodes). 0 describes the
	// flat single-L3 stack with no placement layer.
	Sockets int `json:"sockets,omitempty"`
	// Placement names the page placement policy of a NUMA machine
	// ("first-touch" or "interleave"; "" defaults to first-touch).
	Placement string `json:"placement,omitempty"`
	// PageSize is the placement granularity in bytes (power of two;
	// 0 selects the 4 KiB default).
	PageSize uint64 `json:"page_size,omitempty"`
	// Cache describes the cache hierarchy.
	Cache Cache `json:"cache"`
	// DRAM describes the memory nodes.
	DRAM DRAM `json:"dram"`
	// Sampling, when present, overrides the run's PEBS + multiplexing
	// configuration (nil inherits the scenario's or the cmd's defaults).
	Sampling *Sampling `json:"sampling,omitempty"`
}

// Cache describes the cache hierarchy of a Spec.
type Cache struct {
	// Levels lists the cache levels from closest (L1) to farthest (LLC).
	Levels []Level `json:"levels"`
	// NextLinePrefetch enables the next-line prefetcher.
	NextLinePrefetch bool `json:"next_line_prefetch"`
}

// Level describes one cache level.
type Level struct {
	// Name labels the level in reports ("L1D", "L2", ...).
	Name string `json:"name"`
	// Size is the total capacity in bytes.
	Size int `json:"size"`
	// LineSize is the cache-line size in bytes (power of two; every level
	// must use the L1 line size).
	LineSize int `json:"line_size"`
	// Assoc is the set associativity (1..127).
	Assoc int `json:"assoc"`
	// HitLatency is the access cost in cycles when this level serves data.
	HitLatency uint64 `json:"hit_latency"`
}

// DRAM describes the memory nodes of a Spec.
type DRAM struct {
	// Latency is the local-node fill cost in cycles.
	Latency uint64 `json:"latency"`
	// RemoteLatency is the cross-socket fill cost in cycles (0 selects the
	// numa default on multi-socket machines; requires >= 2 sockets when
	// set, and must not be below Latency).
	RemoteLatency uint64 `json:"remote_latency,omitempty"`
}

// Sampling is the optional PEBS + multiplexing section. Every field is a
// pointer: nil inherits the surrounding default (the scenario's sampling
// identity, or the cmd flags), a set field overrides it — which is what
// makes a sweep's sampling axis composable with the scenario matrix.
type Sampling struct {
	// Period samples every Period-th eligible operation per event class.
	Period *uint64 `json:"period,omitempty"`
	// MuxQuantumNs alternates load/store sampling every quantum
	// (0 disables multiplexing: both classes sampled throughout).
	MuxQuantumNs *uint64 `json:"mux_quantum_ns,omitempty"`
	// Randomize perturbs the inter-sample gaps (deterministically, from
	// Seed).
	Randomize *bool `json:"randomize,omitempty"`
	// Seed drives the randomized gaps.
	Seed *int64 `json:"seed,omitempty"`
	// LatencyThreshold drops load samples below the threshold.
	LatencyThreshold *uint64 `json:"latency_threshold,omitempty"`
}

// String renders the set fields compactly ("p50,mux25000") for sweep tables
// and labels; an all-nil override prints as "sampling-default".
func (s *Sampling) String() string {
	var parts []string
	if s.Period != nil {
		parts = append(parts, fmt.Sprintf("p%d", *s.Period))
	}
	if s.MuxQuantumNs != nil {
		parts = append(parts, fmt.Sprintf("mux%d", *s.MuxQuantumNs))
	}
	if s.Randomize != nil {
		parts = append(parts, fmt.Sprintf("rand=%t", *s.Randomize))
	}
	if s.Seed != nil {
		parts = append(parts, fmt.Sprintf("seed%d", *s.Seed))
	}
	if s.LatencyThreshold != nil {
		parts = append(parts, fmt.Sprintf("thr%d", *s.LatencyThreshold))
	}
	if len(parts) == 0 {
		return "sampling-default"
	}
	return strings.Join(parts, ",")
}

//go:embed specs/*.json
var specFS embed.FS

// Decode reads one spec document strictly: unknown fields are rejected (a
// typoed knob must fail loudly, not silently run the default machine),
// trailing garbage is rejected, and the result is validated.
func Decode(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("machspec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("machspec: trailing data after the spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file. An empty Name defaults to the
// file's base name (sans .json), so sweep tables always have a label.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return s, nil
}

// Names lists the embedded named machine specs (sorted).
func Names() []string {
	ents, err := specFS.ReadDir("specs")
	if err != nil {
		panic(err) // embedded FS: cannot fail
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		out = append(out, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(out)
	return out
}

// Named resolves an embedded named machine spec.
func Named(name string) (*Spec, error) {
	b, err := specFS.ReadFile("specs/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("machspec: unknown machine spec %q (have %v)", name, Names())
	}
	s, err := Decode(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("machspec: embedded spec %q: %w", name, err)
	}
	if s.Name == "" {
		s.Name = name
	}
	return s, nil
}

// Resolve turns a machine reference into a spec: a path (anything
// containing a separator or ending in .json) is loaded from disk, anything
// else names an embedded spec.
func Resolve(ref string) (*Spec, error) {
	if strings.ContainsRune(ref, os.PathSeparator) || strings.HasSuffix(ref, ".json") {
		return Load(ref)
	}
	return Named(ref)
}

// Validate checks the spec against the format version and the semantic
// limits of the memhier/numa constructors it resolves into — mirrored here
// (rather than constructing a throwaway hierarchy) so hostile documents are
// rejected before anything is allocated from their counts.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("machspec: unsupported spec version %d (want %d)", s.Version, Version)
	}
	if err := ValidateTopology(s.Sockets, s.Placement, s.DRAM.RemoteLatency); err != nil {
		return err
	}
	if s.Sockets > MaxSockets {
		return fmt.Errorf("machspec: %d sockets exceed the supported %d", s.Sockets, MaxSockets)
	}
	if s.PageSize != 0 {
		if s.Sockets == 0 {
			return fmt.Errorf("machspec: page_size %d without a NUMA topology (set sockets >= 1)", s.PageSize)
		}
		if bits.OnesCount64(s.PageSize) != 1 || s.PageSize < 64 || s.PageSize > MaxPageSize {
			return fmt.Errorf("machspec: page_size %d not a power of two in 64..%d", s.PageSize, MaxPageSize)
		}
	}
	if n := len(s.Cache.Levels); n == 0 {
		return fmt.Errorf("machspec: no cache levels configured")
	} else if n > memhier.MaxCacheLevels {
		return fmt.Errorf("machspec: %d cache levels exceed the modelled %d (L1..L3 + DRAM)", n, memhier.MaxCacheLevels)
	}
	var prevLat uint64
	for i, lv := range s.Cache.Levels {
		if lv.Name == "" {
			return fmt.Errorf("machspec: cache level %d has no name", i)
		}
		if lv.LineSize <= 0 || lv.LineSize > MaxLineSize || bits.OnesCount(uint(lv.LineSize)) != 1 {
			return fmt.Errorf("machspec: level %s line_size %d not a power of two in 1..%d", lv.Name, lv.LineSize, MaxLineSize)
		}
		if lv.LineSize != s.Cache.Levels[0].LineSize {
			return fmt.Errorf("machspec: level %s line_size %d differs from L1 %d", lv.Name, lv.LineSize, s.Cache.Levels[0].LineSize)
		}
		if lv.Assoc < 1 || lv.Assoc > 127 {
			return fmt.Errorf("machspec: level %s assoc %d invalid (1..127)", lv.Name, lv.Assoc)
		}
		if lv.Size <= 0 || lv.Size > MaxLevelSize {
			return fmt.Errorf("machspec: level %s size %d out of range 1..%d", lv.Name, lv.Size, MaxLevelSize)
		}
		if lv.Size%(lv.LineSize*lv.Assoc) != 0 {
			return fmt.Errorf("machspec: level %s size %d not divisible by line_size*assoc", lv.Name, lv.Size)
		}
		if nsets := lv.Size / (lv.LineSize * lv.Assoc); bits.OnesCount(uint(nsets)) != 1 {
			return fmt.Errorf("machspec: level %s set count %d not a power of two", lv.Name, nsets)
		}
		if lv.HitLatency == 0 {
			return fmt.Errorf("machspec: level %s hit_latency must be > 0", lv.Name)
		}
		if lv.HitLatency <= prevLat {
			return fmt.Errorf("machspec: level %s hit_latency %d not greater than the previous level", lv.Name, lv.HitLatency)
		}
		prevLat = lv.HitLatency
	}
	if s.DRAM.Latency == 0 {
		return fmt.Errorf("machspec: dram latency must be > 0")
	}
	if s.DRAM.Latency <= prevLat {
		return fmt.Errorf("machspec: dram latency %d not greater than the last cache level", s.DRAM.Latency)
	}
	if s.DRAM.RemoteLatency != 0 && s.DRAM.RemoteLatency < s.DRAM.Latency {
		return fmt.Errorf("machspec: remote dram latency %d below local %d", s.DRAM.RemoteLatency, s.DRAM.Latency)
	}
	if sp := s.Sampling; sp != nil {
		if sp.Period != nil && *sp.Period == 0 {
			return fmt.Errorf("machspec: sampling period must be > 0 when set")
		}
	}
	return nil
}

// ValidateTopology checks a socket/placement/remote-latency selection —
// whether it came from a spec document or from per-cmd override flags. It
// is the one shared validation path of simrun, hpcgrepro and the scenario
// runner, so every surface rejects an inert or contradictory topology with
// the same message.
func ValidateTopology(sockets int, placement string, remoteLatency uint64) error {
	if sockets < 0 {
		return fmt.Errorf("machspec: socket count must be >= 0 (got %d)", sockets)
	}
	if placement != "" {
		if _, err := numa.ParsePolicy(placement); err != nil {
			return err
		}
		if sockets == 0 {
			// A placement with no NUMA topology is inert (one node: every
			// policy places identically, remote fills are impossible);
			// reject rather than silently run it.
			return fmt.Errorf("machspec: placement %q requires a NUMA topology (sockets >= 1)", placement)
		}
	}
	if remoteLatency != 0 && sockets < 2 {
		// A <2-socket machine has no remote fills to charge; silently
		// accepting the latency would make the knob look inert.
		return fmt.Errorf("machspec: remote DRAM latency requires >= 2 sockets (got %d)", sockets)
	}
	return nil
}

// Memhier resolves the cache + DRAM section to the hierarchy configuration.
// The remote latency is deliberately left out: it flows through the NUMA
// configuration (core.NewMachine stamps it into every socket's hierarchy),
// so a flat resolution stays bit-identical to the historical configs.
func (s *Spec) Memhier() memhier.Config {
	cfg := memhier.Config{
		DRAMLatency:      s.DRAM.Latency,
		NextLinePrefetch: s.Cache.NextLinePrefetch,
	}
	for _, lv := range s.Cache.Levels {
		cfg.Levels = append(cfg.Levels, memhier.LevelConfig{
			Name:       lv.Name,
			Size:       lv.Size,
			LineSize:   lv.LineSize,
			Assoc:      lv.Assoc,
			HitLatency: lv.HitLatency,
		})
	}
	return cfg
}

// NUMA resolves the topology section (the zero Config for flat machines).
func (s *Spec) NUMA() numa.Config {
	if s.Sockets == 0 {
		return numa.Config{}
	}
	policy, err := numa.ParsePolicy(s.Placement)
	if err != nil {
		// Validate accepted the spec; an unparseable policy cannot reach
		// here.
		panic(err)
	}
	return numa.Config{
		Sockets:           s.Sockets,
		PageSize:          s.PageSize,
		Policy:            policy,
		RemoteDRAMLatency: s.DRAM.RemoteLatency,
	}
}

// JSON returns the canonical serialization: two-space indented, fixed field
// order, trailing newline — the byte form the fingerprint (and therefore
// the sweep cache key) is computed over.
func (s *Spec) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Fingerprint returns the hex SHA-256 of the canonical serialization: two
// specs with identical content have identical fingerprints regardless of
// source formatting.
func (s *Spec) Fingerprint() (string, error) {
	b, err := s.JSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
