package machspec

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/memhier"
	"repro/internal/numa"
)

// valid returns a well-formed spec document for the rejection tables to
// perturb.
func valid() string {
	return `{
  "version": 1,
  "name": "test",
  "cache": {
    "levels": [
      {"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4},
      {"name": "L2", "size": 262144, "line_size": 64, "assoc": 8, "hit_latency": 12}
    ],
    "next_line_prefetch": true
  },
  "dram": {"latency": 230}
}`
}

func TestDecodeValid(t *testing.T) {
	s, err := Decode(strings.NewReader(valid()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test" || len(s.Cache.Levels) != 2 || s.DRAM.Latency != 230 {
		t.Fatalf("decoded spec mangled: %+v", s)
	}
	// The resolution must be accepted by the real constructor: machspec's
	// mirrored validation may be stricter than memhier's, never looser.
	if _, err := memhier.New(s.Memhier()); err != nil {
		t.Fatalf("validated spec rejected by memhier.New: %v", err)
	}
}

// TestDecodeRejects is the table of hostile/contradictory documents:
// unknown fields, version mismatches, and every mirrored memhier/numa
// limit.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"unknown top-level field", `{"version": 1, "frequency_ghz": 2.5, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "unknown field"},
		{"unknown level field", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4, "mshr": 10}]}, "dram": {"latency": 230}}`, "unknown field"},
		{"unknown sampling field", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}, "sampling": {"periodicity": 100}}`, "unknown field"},
		{"version 0", `{"version": 0, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "unsupported spec version 0"},
		{"version 2", `{"version": 2, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "unsupported spec version 2"},
		{"trailing garbage", valid() + `{"version": 1}`, "trailing data"},
		{"no levels", `{"version": 1, "cache": {"levels": []}, "dram": {"latency": 230}}`, "no cache levels"},
		{"four levels", `{"version": 1, "cache": {"levels": [
			{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4},
			{"name": "L2", "size": 65536, "line_size": 64, "assoc": 8, "hit_latency": 12},
			{"name": "L3", "size": 131072, "line_size": 64, "assoc": 8, "hit_latency": 36},
			{"name": "L4", "size": 262144, "line_size": 64, "assoc": 8, "hit_latency": 80}]},
			"dram": {"latency": 230}}`, "4 cache levels exceed the modelled 3"},
		{"assoc zero", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 0, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "assoc 0 invalid"},
		{"assoc 128", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 1048576, "line_size": 64, "assoc": 128, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "assoc 128 invalid"},
		{"line size not pow2", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32760, "line_size": 63, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "line_size 63"},
		{"line size mismatch", `{"version": 1, "cache": {"levels": [
			{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4},
			{"name": "L2", "size": 262144, "line_size": 128, "assoc": 8, "hit_latency": 12}]},
			"dram": {"latency": 230}}`, "line_size 128 differs from L1 64"},
		{"size not divisible", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32769, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "not divisible"},
		{"set count not pow2", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 36864, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "set count 72 not a power of two"},
		{"hostile size", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 1099511627776, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "out of range"},
		{"latency not monotonic", `{"version": 1, "cache": {"levels": [
			{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 12},
			{"name": "L2", "size": 262144, "line_size": 64, "assoc": 8, "hit_latency": 12}]},
			"dram": {"latency": 230}}`, "not greater than the previous level"},
		{"dram latency zero", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 0}}`, "dram latency must be > 0"},
		{"dram below cache", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 40}]}, "dram": {"latency": 36}}`, "dram latency 36 not greater"},
		{"remote below local", `{"version": 1, "sockets": 2, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230, "remote_latency": 100}}`, "remote dram latency 100 below local 230"},
		{"remote on flat machine", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230, "remote_latency": 370}}`, "remote DRAM latency requires >= 2 sockets"},
		{"negative sockets", `{"version": 1, "sockets": -1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "socket count must be >= 0"},
		{"too many sockets", `{"version": 1, "sockets": 65, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "65 sockets exceed"},
		{"placement on flat machine", `{"version": 1, "placement": "interleave", "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "requires a NUMA topology"},
		{"unknown placement", `{"version": 1, "sockets": 2, "placement": "striped", "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "unknown placement policy"},
		{"page size on flat machine", `{"version": 1, "page_size": 4096, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "page_size 4096 without a NUMA topology"},
		{"page size not pow2", `{"version": 1, "sockets": 2, "page_size": 5000, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "page_size 5000 not a power of two"},
		{"sampling period zero", `{"version": 1, "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}, "sampling": {"period": 0}}`, "sampling period must be > 0"},
		{"unnamed level", `{"version": 1, "cache": {"levels": [{"size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}]}, "dram": {"latency": 230}}`, "level 0 has no name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("hostile document accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNamedSpecs pins the embedded registry: the three named hierarchies
// decode, validate, resolve through memhier.New, and carry their own names.
func TestNamedSpecs(t *testing.T) {
	want := []string{"haswell", "noprefetch", "small"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		s, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("spec %q carries name %q", name, s.Name)
		}
		if _, err := memhier.New(s.Memhier()); err != nil {
			t.Errorf("spec %q rejected by memhier.New: %v", name, err)
		}
	}
	if _, err := Named("jureca"); err == nil || !strings.Contains(err.Error(), `unknown machine spec "jureca"`) {
		t.Fatalf("unknown name error = %v", err)
	}
}

// TestValidateTopology pins the shared override-validation messages that
// simrun, hpcgrepro and the scenario runner all surface.
func TestValidateTopology(t *testing.T) {
	cases := []struct {
		sockets   int
		placement string
		remote    uint64
		want      string // "" = accepted
	}{
		{0, "", 0, ""},
		{2, "interleave", 370, ""},
		{2, "", 0, ""},
		{-1, "", 0, "machspec: socket count must be >= 0 (got -1)"},
		{0, "interleave", 0, `machspec: placement "interleave" requires a NUMA topology (sockets >= 1)`},
		{0, "striped", 0, `numa: unknown placement policy "striped" (have [first-touch interleave])`},
		{0, "", 370, "machspec: remote DRAM latency requires >= 2 sockets (got 0)"},
		{1, "", 370, "machspec: remote DRAM latency requires >= 2 sockets (got 1)"},
	}
	for _, tc := range cases {
		err := ValidateTopology(tc.sockets, tc.placement, tc.remote)
		if tc.want == "" {
			if err != nil {
				t.Errorf("ValidateTopology(%d, %q, %d) = %v, want nil", tc.sockets, tc.placement, tc.remote, err)
			}
			continue
		}
		if err == nil || err.Error() != tc.want {
			t.Errorf("ValidateTopology(%d, %q, %d) = %v, want %q", tc.sockets, tc.placement, tc.remote, err, tc.want)
		}
	}
}

// TestCanonicalFixedPoint: Decode∘Encode is a fixed point — re-decoding a
// spec's canonical JSON and re-encoding it reproduces the bytes.
func TestCanonicalFixedPoint(t *testing.T) {
	for _, name := range Names() {
		s, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Decode(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("canonical JSON of %q does not re-decode: %v", name, err)
		}
		s2.Name = s.Name // Decode (unlike Load/Named) cannot default the name
		b2, err := s2.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("spec %q: decode∘encode not a fixed point", name)
		}
		f1, _ := s.Fingerprint()
		f2, _ := s2.Fingerprint()
		if f1 != f2 || f1 == "" {
			t.Errorf("spec %q: fingerprint not stable (%q vs %q)", name, f1, f2)
		}
	}
}

// TestResolve covers the path-vs-name split.
func TestResolve(t *testing.T) {
	s, err := Resolve("haswell")
	if err != nil || s.Name != "haswell" {
		t.Fatalf("Resolve(haswell) = %+v, %v", s, err)
	}
	dir := t.TempDir()
	path := dir + "/custom.json"
	if err := os.WriteFile(path, []byte(valid()), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test" {
		t.Fatalf("file spec name = %q, want the document's own", s.Name)
	}
	if _, err := Resolve("no-such-machine"); err == nil {
		t.Fatal("unknown reference accepted")
	}
}

// TestSpecNUMAConfig pins the numa resolution, including that the remote
// latency flows through the NUMA config (not the flat cache config).
func TestSpecNUMAConfig(t *testing.T) {
	doc := `{
  "version": 1, "sockets": 2, "placement": "interleave", "page_size": 8192,
  "cache": {"levels": [{"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4}], "next_line_prefetch": true},
  "dram": {"latency": 230, "remote_latency": 370}
}`
	s, err := Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	nc := s.NUMA()
	want := numa.Config{Sockets: 2, PageSize: 8192, Policy: numa.Interleave, RemoteDRAMLatency: 370}
	if nc != want {
		t.Fatalf("NUMA() = %+v, want %+v", nc, want)
	}
	if _, err := numa.New(nc); err != nil {
		t.Fatalf("resolved numa config rejected: %v", err)
	}
	if mc := s.Memhier(); mc.RemoteDRAMLatency != 0 {
		t.Fatalf("Memhier() carries RemoteDRAMLatency %d; it must flow via the NUMA config", mc.RemoteDRAMLatency)
	}
	if flat := (&Spec{}).NUMA(); flat != (numa.Config{}) {
		t.Fatalf("flat spec NUMA() = %+v, want zero", flat)
	}
}
