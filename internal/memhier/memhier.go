// Package memhier simulates a multi-level write-back cache hierarchy plus
// DRAM. It is the substitute for the Intel Xeon memory system of the paper's
// Jureca testbed: every simulated memory instruction is routed through the
// hierarchy, which reports the *data source* (the level that served the
// line) and the *access cost* (latency in cycles) — exactly the two fields
// the PEBS hardware records for a sampled memory operation.
//
// The model is a set-associative, LRU, write-back/write-allocate hierarchy
// with inclusive fills and an optional next-line prefetcher. It is a
// functional (not timing-accurate) model: latencies are fixed per level,
// which is sufficient because the paper's analysis consumes the *relative*
// distribution of sources and costs, not absolute machine timings.
package memhier

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// DataSource identifies the memory-hierarchy level that served an access.
// It mirrors the PEBS "data source" encoding at the granularity the paper
// uses (L1, L2, L3, local DRAM, remote-socket DRAM).
type DataSource int

const (
	// SrcL1 means the access hit in the first-level data cache.
	SrcL1 DataSource = iota
	// SrcL2 means the line was served by the second-level cache.
	SrcL2
	// SrcL3 means the line was served by the last-level cache.
	SrcL3
	// SrcDRAM means the line came from the socket's own (local) memory
	// controller — or from the flat DRAM of a non-NUMA hierarchy.
	SrcDRAM
	// SrcDRAMRemote means the line crossed the socket interconnect: its
	// home memory node belongs to another socket. Only hierarchies routed
	// through a multi-node DRAMRouter produce it; everywhere else the
	// encoding is exactly the historical 4-value one.
	SrcDRAMRemote
)

// String returns the conventional level name.
func (s DataSource) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcDRAM:
		return "DRAM"
	case SrcDRAMRemote:
		return "RemoteDRAM"
	}
	return fmt.Sprintf("DataSource(%d)", int(s))
}

// NumSources is the number of distinct DataSource values.
const NumSources = 5

// MaxCacheLevels is the deepest supported hierarchy: DataSource (and the
// PMU's per-source miss counters) encode exactly L1..L3 plus the two DRAM
// classes; a deeper hierarchy would have no meaningful source labels.
const MaxCacheLevels = 3

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Name is a label used in reports ("L1D", "L2", ...).
	Name string
	// Size is the total capacity in bytes; must be a power of two multiple
	// of LineSize*Assoc.
	Size int
	// LineSize is the cache-line size in bytes (power of two).
	LineSize int
	// Assoc is the set associativity (ways per set).
	Assoc int
	// HitLatency is the access cost in cycles when this level serves data.
	HitLatency uint64
}

// Config describes the whole hierarchy.
type Config struct {
	// Levels lists the cache levels from closest (L1) to farthest (LLC).
	Levels []LevelConfig
	// DRAMLatency is the access cost in cycles when no level holds the line
	// (the local-socket fill cost under NUMA routing).
	DRAMLatency uint64
	// RemoteDRAMLatency is the fill cost when a multi-node DRAMRouter
	// resolves the line to another socket's memory node. 0 falls back to
	// DRAMLatency (no interconnect penalty); nonzero values must not be
	// below DRAMLatency.
	RemoteDRAMLatency uint64
	// NextLinePrefetch enables a simple next-line prefetcher: on an L1 miss
	// the successor line is installed into L2 (and below), modelling the
	// hardware streamer that makes linear sweeps cheap.
	NextLinePrefetch bool
}

// DefaultConfig returns a Haswell-like single-core slice: 32 KiB 8-way L1D,
// 256 KiB 8-way L2, 2.5 MiB 20-way L3 slice, 64-byte lines; latencies
// 4/12/36/230 cycles. These mirror the Xeon E5-2680 v3 nodes of Jureca at
// per-core L3 granularity.
func DefaultConfig() Config {
	return Config{
		Levels: []LevelConfig{
			{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 4},
			{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8, HitLatency: 12},
			{Name: "L3", Size: 2560 << 10, LineSize: 64, Assoc: 20, HitLatency: 36},
		},
		DRAMLatency:      230,
		NextLinePrefetch: true,
	}
}

// LevelStats aggregates per-level counters.
type LevelStats struct {
	Accesses   uint64 // lookups that reached this level
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions out of this level
	Prefetches uint64 // lines installed by the prefetcher
	PrefHits   uint64 // demand hits on prefetched lines
}

// MissRatio returns Misses/Accesses (0 when idle).
func (s LevelStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one memory access.
type AccessResult struct {
	// Source is the level that served the data.
	Source DataSource
	// Latency is the access cost in cycles.
	Latency uint64
	// LineAddr is the address of the cache line containing the access.
	LineAddr uint64
	// Prefetched reports whether the hit landed on a prefetched line.
	Prefetched bool
}

// Packed line encoding. Each way is ONE 8-byte word in a flat per-level
// slab, so a whole set is a short streak of loads over one or two host
// cache lines; lookups additionally go through a one-byte-per-way
// partial-tag signature filter (see cache.sigs) so most probes verify at
// most one slab word. Valid ways form a prefix of the set (lines are never
// invalidated outside Reset), tracked by a per-set occupancy count, so
// free-way discovery is the occupancy itself.
//
//	bits 0..2   flags (valid, dirty, prefetched)
//	bits 3..22  reserved (zero; the LRU state lives outside the slab)
//	bits 23..63 set-relative tag (41 bits)
//
// LRU recency is tracked by one of two equivalent policies, chosen per
// level at construction:
//
//   - assoc ≤ 8: a per-set 8×8 bit matrix packed in a uint64 (bit 8i+j set
//     ⇒ way i touched more recently than way j). A touch sets row i and
//     clears column i (~4 ALU ops); the LRU victim is the unique all-zero
//     row among the valid ways, found with a zero-byte scan — O(1), no
//     second pass over the set.
//   - assoc > 8: a 20-bit tick per way, stamped on every touch; the victim
//     is the branchless min of tick<<7|way over the set, computed only
//     when an eviction is actually needed. The ticks live in a dedicated
//     packed side array (three 21-bit fields per word, one cache-line-ish
//     56-byte strip per 20-way set) rather than in the slab words: the
//     victim scan then reads ~1 host cache line instead of the set's
//     160-byte slab strip, recency restamps on hits stop dirtying slab
//     lines, and a miss probe (signature scan, then victim pick) touches
//     no slab words at all. The tick wraps roughly every million touches;
//     tickNext renormalizes all ticks to their per-set recency ranks
//     before that happens.
//
// Both policies order ways by last touch, i.e. both are exact LRU; they
// pick identical victims.
const (
	entValid = 1 << 0
	entDirty = 1 << 1
	entPref  = 1 << 2 // installed by prefetcher, not yet demand-hit

	lruShift = 3
	lruBits  = 20
	lruMax   = 1<<lruBits - 1

	tagShift = lruShift + lruBits
	tagBits  = 64 - tagShift

	// Packed tick layout: three 21-bit fields per uint64 of the ticks array.
	tickFieldBits = 21
	tickFieldMask = 1<<tickFieldBits - 1
	ticksPerWord  = 3

	// matchMask strips the reserved bits and the mutable flags, keeping
	// tag|valid — the fields a resident line must match.
	matchMask = ^uint64(uint64(lruMax)<<lruShift | entDirty | entPref)

	// victimShift packs an LRU tick with a way index (assoc is validated to
	// fit in 7 bits) so tick-policy victim selection is a branchless min.
	victimShift = 7

	// matMaxAssoc is the widest set the matrix-LRU policy covers (8 rows of
	// a uint64).
	matMaxAssoc = 8

	oneBytes  = 0x0101010101010101
	highBytes = 0x8080808080808080
)

type cache struct {
	cfg  LevelConfig
	slab []uint64 // nsets*assoc packed tag|lru|flags words
	occ  []uint8  // per-set count of valid ways (valid ways form a prefix)
	// sigs holds one partial-tag byte per way (tag's low 8 bits), sets
	// padded to whole 8-byte words. A probe compares a whole set's
	// signatures against the wanted tag byte in one or three XOR+zero-byte
	// steps and verifies only candidate ways in the slab — an L1/L2 miss
	// usually touches no slab words at all, a hit exactly one. False
	// positives (1/256 per way) cost one extra verify; the slab compare
	// stays authoritative.
	sigs      []byte
	sigStride int      // bytes of sigs per set (assoc rounded up to 8)
	mats      []uint64 // per-set recency matrices (assoc <= 8); nil selects the tick policy
	matRow    uint64   // low-assoc column bits a touch sets in its row
	matPad    uint64   // bytes >= assoc forced non-zero in the victim search
	// ticks holds the tick policy's packed per-way LRU stamps (three 21-bit
	// fields per word, tickStride words per set); nil on matrix levels.
	ticks      []uint64
	tickStride int
	setMask    uint64
	lineShift  uint
	setBits    uint // log2(nsets), tag = line >> setBits
	assoc      int
	tick       uint32
	stats      LevelStats

	// MRU shortcut: the slab index / set / way and line address of the most
	// recently demand-touched line. MRU lines never carry entPref (demand
	// contact clears it), so a hit here needs no prefetch bookkeeping.
	mruIdx   int
	mruSet   int
	mruWay   int
	mruLine  uint64
	mruValid bool
}

// touch marks way w of set setIdx as the most recently used (matrix policy).
func (c *cache) touch(setIdx, w int) {
	m := c.mats[setIdx]
	m |= c.matRow << (8 * uint(w)) // w beats every way
	m &^= uint64(oneBytes) << w    // every way loses to w (incl. the diagonal)
	c.mats[setIdx] = m
}

// matVictim returns the LRU way of a full set under the matrix policy: the
// unique way whose row is zero (it beats nobody), via a zero-byte scan.
func (c *cache) matVictim(setIdx int) int {
	x := c.mats[setIdx] | c.matPad
	return bits.TrailingZeros64((x-oneBytes)&^x&highBytes) >> 3
}

// tickNext advances the tick policy's LRU clock. When the 20-bit clock is
// about to wrap it renormalizes every way's tick to its per-set recency
// rank — victim selection only compares ticks within one set, so rank
// compression is behaviour-preserving — and restarts the clock above the
// ranks.
func (c *cache) tickNext() uint32 {
	c.tick++
	if c.tick == lruMax {
		c.renorm()
	}
	return c.tick
}

// tickOf reads way w's packed LRU tick.
func (c *cache) tickOf(setIdx, w int) uint32 {
	word := c.ticks[setIdx*c.tickStride+w/ticksPerWord]
	return uint32(word>>(tickFieldBits*uint(w%ticksPerWord))) & tickFieldMask
}

// tickStamp writes way w's packed LRU tick (the tick policy's touch).
func (c *cache) tickStamp(setIdx, w int, t uint32) {
	idx := setIdx*c.tickStride + w/ticksPerWord
	sh := tickFieldBits * uint(w%ticksPerWord)
	c.ticks[idx] = c.ticks[idx]&^(uint64(tickFieldMask)<<sh) | uint64(t)<<sh
}

// renorm rank-compresses the LRU ticks of every set's valid ways. Ticks
// are unique while live (every touch draws a fresh tick), so ranks are
// unambiguous and victim selection is unchanged.
func (c *cache) renorm() {
	var lrus [128]uint32
	nsets := int(c.setMask) + 1
	for s := 0; s < nsets; s++ {
		occ := int(c.occ[s])
		for i := 0; i < occ; i++ {
			lrus[i] = c.tickOf(s, i)
		}
		for i := 0; i < occ; i++ {
			r := uint32(1)
			for j := 0; j < occ; j++ {
				if lrus[j] < lrus[i] {
					r++
				}
			}
			c.tickStamp(s, i, r)
		}
	}
	c.tick = uint32(c.assoc) + 1
}

// setMRU records a demand-touched line as the level's MRU shortcut.
func (c *cache) setMRU(setIdx, way int, lineAddr uint64) {
	c.mruIdx = setIdx*c.assoc + way
	c.mruSet = setIdx
	c.mruWay = way
	c.mruLine = lineAddr
	c.mruValid = true
}

// dropMRUAt invalidates the shortcut when slab slot idx is repurposed.
func (c *cache) dropMRUAt(idx int) {
	if c.mruValid && c.mruIdx == idx {
		c.mruValid = false
	}
}

// DRAMRouter attributes DRAM traffic to memory nodes: the NUMA layer's
// port into the hierarchy. Each socket's caches hold their own router (a
// socket-specific view of one shared page placement); implementations must
// be safe for concurrent use by all hierarchies of a Machine.
type DRAMRouter interface {
	// RouteFill resolves a demand line fill's home memory node, records
	// the fill at that node's controller, and reports whether the fill is
	// remote to the router's socket.
	RouteFill(lineAddr uint64) (remote bool)
	// RouteWriteback attributes a dirty last-level-cache eviction absorbed
	// by DRAM to the evicted line's home controller.
	RouteWriteback(lineAddr uint64)
	// RemotePossible reports whether RouteFill can ever return true
	// (false for a single-node topology).
	RemotePossible() bool
}

// Hierarchy is one core's view of the memory system: private cache levels
// plus, optionally, a shared last-level cache. The private state is not
// safe for concurrent use — each simulated core owns its own Hierarchy —
// while the attached SharedCache (if any) is internally locked, which is
// what lets a Machine's cores run concurrently against one L3.
type Hierarchy struct {
	cfg      Config
	levels   []*cache     // private levels (L1 [, L2])
	shared   *SharedCache // optional shared last-level cache
	l1       *cache       // levels[0], kept flat for the Access fast path
	lineMask uint64       // LineSize-1
	maxLine  uint64       // first line address the packed tags cannot represent
	dram     uint64       // DRAM access count (local + remote fills)
	// router, when set, resolves every DRAM fill to a home memory node;
	// fills remote to the owning socket are charged remoteLat and labelled
	// SrcDRAMRemote. dramRemote counts them.
	router     DRAMRouter
	remoteLat  uint64
	dramRemote uint64
	// mruHits counts L1 accesses served by the MRU fast path and probeOps
	// those that took the probe loop; LevelStats folds them lazily.
	mruHits  uint64
	probeOps uint64
	warmSink uint64 // keeps the set-warming loads live; never read
	// hints is the per-level probe→fill scratch for the current access
	// (persistent to avoid re-zeroing per op; Hierarchy is single-threaded).
	hints [8]probeHint
}

// newCache validates one level's configuration and builds its packed cache.
func newCache(lc LevelConfig) (*cache, error) {
	if lc.LineSize <= 0 || bits.OnesCount(uint(lc.LineSize)) != 1 {
		return nil, fmt.Errorf("memhier: level %s line size %d not a power of two", lc.Name, lc.LineSize)
	}
	if lc.Assoc <= 0 || lc.Assoc > 127 {
		return nil, fmt.Errorf("memhier: level %s associativity %d invalid (1..127)", lc.Name, lc.Assoc)
	}
	if lc.Size <= 0 || lc.Size%(lc.LineSize*lc.Assoc) != 0 {
		return nil, fmt.Errorf("memhier: level %s size %d not divisible by line*assoc", lc.Name, lc.Size)
	}
	nsets := lc.Size / (lc.LineSize * lc.Assoc)
	if bits.OnesCount(uint(nsets)) != 1 {
		return nil, fmt.Errorf("memhier: level %s set count %d not a power of two", lc.Name, nsets)
	}
	if lc.HitLatency == 0 {
		return nil, fmt.Errorf("memhier: level %s hit latency must be > 0", lc.Name)
	}
	c := &cache{
		cfg:       lc,
		slab:      make([]uint64, nsets*lc.Assoc),
		occ:       make([]uint8, nsets),
		setMask:   uint64(nsets - 1),
		lineShift: uint(bits.TrailingZeros(uint(lc.LineSize))),
		setBits:   uint(bits.TrailingZeros(uint(nsets))),
		assoc:     lc.Assoc,
	}
	c.sigStride = (lc.Assoc + 7) &^ 7
	c.sigs = make([]byte, nsets*c.sigStride)
	if lc.Assoc <= matMaxAssoc {
		c.mats = make([]uint64, nsets)
		c.matRow = uint64(1)<<lc.Assoc - 1
		if lc.Assoc < matMaxAssoc {
			c.matPad = ^uint64(0) << (8 * uint(lc.Assoc))
		}
	} else {
		c.tickStride = (lc.Assoc + ticksPerWord - 1) / ticksPerWord
		c.ticks = make([]uint64, nsets*c.tickStride)
		c.initTicks()
	}
	return c, nil
}

// maxLineOf returns the first line address the cache's packed set-relative
// tags cannot represent (capped at 2^64-1).
func (c *cache) maxLineOf() uint64 {
	if total := tagBits + c.setBits + c.lineShift; total < 64 {
		return uint64(1) << total
	}
	return ^uint64(0)
}

// New validates the configuration and builds the hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	return newHierarchy(cfg, nil)
}

// NewWithSharedLLC builds a hierarchy whose private levels are cfg.Levels
// and whose last level is the given shared cache (one L3 shared by all
// cores of a Machine). cfg.Levels must hold only the private levels.
func NewWithSharedLLC(cfg Config, llc *SharedCache) (*Hierarchy, error) {
	if llc == nil {
		return nil, fmt.Errorf("memhier: nil shared LLC")
	}
	return newHierarchy(cfg, llc)
}

func newHierarchy(cfg Config, llc *SharedCache) (*Hierarchy, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("memhier: no cache levels configured")
	}
	if cfg.DRAMLatency == 0 {
		return nil, fmt.Errorf("memhier: DRAMLatency must be > 0")
	}
	nCaches := len(cfg.Levels)
	if llc != nil {
		nCaches++
	}
	if nCaches > MaxCacheLevels {
		// DataSource (and the PMU's per-source miss counters) encode
		// exactly L1..L3 plus DRAM; a deeper hierarchy has no meaningful
		// source labels, so reject it instead of mislabelling levels.
		return nil, fmt.Errorf("memhier: %d cache levels exceed the modelled %d (L1..L3 + DRAM)",
			nCaches, MaxCacheLevels)
	}
	if cfg.RemoteDRAMLatency != 0 && cfg.RemoteDRAMLatency < cfg.DRAMLatency {
		return nil, fmt.Errorf("memhier: remote DRAM latency %d below local %d",
			cfg.RemoteDRAMLatency, cfg.DRAMLatency)
	}
	h := &Hierarchy{cfg: cfg, shared: llc, maxLine: ^uint64(0), remoteLat: cfg.RemoteDRAMLatency}
	if h.remoteLat == 0 {
		h.remoteLat = cfg.DRAMLatency
	}
	lineSize := cfg.Levels[0].LineSize
	for i, lc := range cfg.Levels {
		if lc.LineSize != lineSize {
			return nil, fmt.Errorf("memhier: level %s line size %d differs from L1 %d",
				lc.Name, lc.LineSize, lineSize)
		}
		if i > 0 && lc.HitLatency <= cfg.Levels[i-1].HitLatency {
			return nil, fmt.Errorf("memhier: level %s latency %d not greater than previous level",
				lc.Name, lc.HitLatency)
		}
		c, err := newCache(lc)
		if err != nil {
			return nil, err
		}
		// The packed tag is set-relative, so each level represents line
		// addresses below 2^(tagBits+setBits+lineShift) exactly; the
		// hierarchy supports the tightest level's range (53 bits of address
		// for the default 64-set L1 — far beyond the simulated 46-bit
		// address space, but guarded in Access all the same).
		if ml := c.maxLineOf(); ml < h.maxLine {
			h.maxLine = ml
		}
		h.levels = append(h.levels, c)
	}
	if llc != nil {
		if llc.cfg.LineSize != lineSize {
			return nil, fmt.Errorf("memhier: shared LLC line size %d differs from L1 %d",
				llc.cfg.LineSize, lineSize)
		}
		if last := cfg.Levels[len(cfg.Levels)-1]; llc.cfg.HitLatency <= last.HitLatency {
			return nil, fmt.Errorf("memhier: shared LLC latency %d not greater than level %s",
				llc.cfg.HitLatency, last.Name)
		}
		if llc.maxLine < h.maxLine {
			h.maxLine = llc.maxLine
		}
	}
	h.l1 = h.levels[0]
	h.lineMask = uint64(cfg.Levels[0].LineSize - 1)
	return h, nil
}

// LineSize returns the cache-line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.Levels[0].LineSize }

// Levels returns the number of cache levels, counting the shared LLC.
func (h *Hierarchy) Levels() int {
	n := len(h.levels)
	if h.shared != nil {
		n++
	}
	return n
}

// SharedLLC returns the attached shared last-level cache (nil when every
// level is private).
func (h *Hierarchy) SharedLLC() *SharedCache { return h.shared }

// SetDRAMRouter attaches the NUMA layer's per-socket router. It must be
// called before any access (the attached core precomputes per-source stall
// tables at construction, and switching routing mid-run would mislabel
// history).
func (h *Hierarchy) SetDRAMRouter(r DRAMRouter) { h.router = r }

// DRAMRouter returns the attached router (nil for flat DRAM).
func (h *Hierarchy) DRAMRouter() DRAMRouter { return h.router }

// RemoteDRAMPossible reports whether this hierarchy can ever serve a fill
// from a remote memory node — true only when a multi-node router is
// attached. The monitoring layer keys its trace-format extensions
// (RemoteDRAM source label, REMOTE_DRAM counter) off this, so single-node
// stacks keep emitting the exact pre-NUMA byte stream.
func (h *Hierarchy) RemoteDRAMPossible() bool {
	return h.router != nil && h.router.RemotePossible()
}

// LevelStats returns a copy of the counters for level i (0 = L1). The hot
// path only counts misses; accesses and hits are derived here — every
// demand access probes L1 (fast-path hits are in mruHits, slow probes in
// probeOps), each level's accesses are the previous level's misses, and
// hits are accesses minus misses. The folded numbers match a hierarchy
// that counted every probe eagerly.
//
// For a shared LLC, Accesses and Misses are this core's share (its L2
// misses and its DRAM fills), while Writebacks/Prefetches/PrefHits are the
// cache-wide totals — eviction work on a shared cache is not attributable
// to one core.
func (h *Hierarchy) LevelStats(i int) LevelStats {
	if h.shared != nil && i == len(h.levels) {
		s := h.shared.Stats()
		s.Accesses = h.levels[i-1].stats.Misses
		s.Misses = h.dram
		s.Hits = s.Accesses - s.Misses
		return s
	}
	s := h.levels[i].stats
	if i == 0 {
		s.Accesses = h.mruHits + h.probeOps
	} else {
		s.Accesses = h.levels[i-1].stats.Misses
	}
	s.Hits = s.Accesses - s.Misses
	return s
}

// SourceLatency returns the access cost charged when the given level serves
// the data (the core uses it to precompute per-source stall tables).
func (h *Hierarchy) SourceLatency(s DataSource) uint64 {
	if s == SrcDRAMRemote {
		return h.remoteLat
	}
	if int(s) < len(h.levels) {
		return h.levels[s].cfg.HitLatency
	}
	if h.shared != nil && int(s) == len(h.levels) {
		return h.shared.cfg.HitLatency
	}
	return h.cfg.DRAMLatency
}

// DRAMAccesses returns the number of line fills served by DRAM, local and
// remote together.
func (h *Hierarchy) DRAMAccesses() uint64 { return h.dram }

// RemoteDRAMAccesses returns the number of line fills served by a remote
// socket's memory node (0 without a multi-node router).
func (h *Hierarchy) RemoteDRAMAccesses() uint64 { return h.dramRemote }

// setBase returns the set index and slab base index of lineAddr's set plus
// the packed tag|valid word (tick field zero) a resident line would carry.
func (c *cache) setBase(lineAddr uint64) (setIdx, base int, want uint64) {
	line := lineAddr >> c.lineShift
	setIdx = int(line & c.setMask)
	return setIdx, setIdx * c.assoc, (line>>c.setBits)<<tagShift | entValid
}

// lineOf reconstructs the line address of the packed word e resident in
// the set holding lineAddr (tags are set-relative, so the set index comes
// from the co-resident line).
func (c *cache) lineOf(e, lineAddr uint64) uint64 {
	set := (lineAddr >> c.lineShift) & c.setMask
	return ((e>>tagShift)<<c.setBits | set) << c.lineShift
}

// probeHint carries a miss's fill destination from probe to fill, plus the
// set coordinates probe already computed so fill does not recompute them:
// hint >= 0 is a free way index; hint < 0 encodes the LRU victim way as
// ^victim. The hint stays valid until the set is next modified, which the
// access path guarantees happens only at fillAbove (the probe loop touches
// deeper levels, never this set, in between; dirty propagation installs
// into level i+1 only after level i+1's own fill consumed its hint).
type probeHint struct {
	hint   int
	setIdx int
	base   int
	want   uint64
}

// Recency refresh on a hit is policy-dependent and appears manually
// inlined at each hit site (the compiler does not inline a shared helper
// here, and these are the hottest instructions in the model): matrix
// levels touch the set's matrix, tick levels restamp the word's tick
// field.

// probe is the demand lookup of one level. On a hit it refreshes LRU state
// and (for writes) marks the line dirty. On a miss it fills ph with the
// fill destination. The match scan is deliberately minimal — valid ways
// form a prefix (lines are never invalidated outside Reset), so it walks
// occ packed words with one compare each; the victim is found only on a
// miss of a full set, O(1) from the recency matrix (assoc ≤ 8) or in a
// second pass over set data the match scan just pulled into host cache.
func (c *cache) probe(lineAddr uint64, write bool, ph *probeHint) (hit, wasPref bool) {
	if c.mruValid && c.mruLine == lineAddr {
		// MRU lines are demand-touched, so no prefetch bookkeeping applies.
		if c.mats != nil {
			c.touch(c.mruSet, c.mruWay)
		} else {
			c.tickStamp(c.mruSet, c.mruWay, c.tickNext())
		}
		if write {
			c.slab[c.mruIdx] |= entDirty
		}
		return true, false
	}
	return c.probeScan(lineAddr, write, ph)
}

// probeScan is probe below the MRU shortcut: the set scan. The L1 call
// sites that already failed the hierarchy-level MRU check enter here
// directly instead of re-testing it.
func (c *cache) probeScan(lineAddr uint64, write bool, ph *probeHint) (hit, wasPref bool) {
	setIdx, base, want := c.setBase(lineAddr)
	// Signature match: compare the wanted tag byte against the whole set's
	// signature bytes with the zero-byte trick, then verify candidates in
	// the slab. Most misses touch no slab words; hits verify exactly one
	// (plus 1/256-rate false positives). Empty ways' zero signatures can
	// only produce false candidates — the slab word 0 never matches want,
	// which carries the valid bit.
	bcast := (want >> tagShift & 0xFF) * oneBytes
	sb := setIdx * c.sigStride
	for k := 0; k < c.sigStride; k += 8 {
		x := binary.LittleEndian.Uint64(c.sigs[sb+k:]) ^ bcast
		for zeros := (x - oneBytes) & ^x & highBytes; zeros != 0; zeros &= zeros - 1 {
			i := k + bits.TrailingZeros64(zeros)>>3
			if i >= c.assoc {
				break // padding bytes of the last word
			}
			if e := c.slab[base+i]; e&matchMask == want {
				if c.mats != nil {
					c.touch(setIdx, i)
				} else {
					c.tickStamp(setIdx, i, c.tickNext())
				}
				wasPref = e&entPref != 0
				if write || wasPref {
					if write {
						e |= entDirty
					}
					if wasPref {
						e &^= entPref
						c.stats.PrefHits++
					}
					c.slab[base+i] = e
				}
				c.setMRU(setIdx, i, lineAddr)
				return true, wasPref
			}
		}
	}
	c.stats.Misses++
	ph.setIdx, ph.base, ph.want = setIdx, base, want
	switch {
	case int(c.occ[setIdx]) < c.assoc:
		ph.hint = int(c.occ[setIdx]) // first free way: the prefix invariant
	case c.mats != nil:
		ph.hint = ^c.matVictim(setIdx)
	default:
		ph.hint = ^c.tickVictim(setIdx)
	}
	return false, false
}

// tickVictim scans a full set's packed ticks for the way with the oldest
// stamp. Victim tracking is branchless: tick<<victimShift|way packs
// recency and the way index so a single min() both orders by last use and
// breaks ties toward the lowest way. Ticks are unique while live, so this
// matches a first-strictly-smaller linear scan; the three fields of each
// word feed three independent compare chains (CMOVs), so the serial
// latency is one min per *word* of the side array — about one host cache
// line of loads for the 20-way L3 set, where the old in-slab scan pulled
// the set's whole 160-byte slab strip. Padding fields beyond assoc carry
// the maximum stamp (see initTicks) and can never win.
func (c *cache) tickVictim(setIdx int) int {
	base := setIdx * c.tickStride
	m0, m1, m2 := ^uint64(0), ^uint64(0), ^uint64(0)
	w := uint64(0)
	for _, word := range c.ticks[base : base+c.tickStride] {
		v0 := (word&tickFieldMask)<<victimShift | w
		v1 := (word>>tickFieldBits&tickFieldMask)<<victimShift | (w + 1)
		v2 := (word>>(2*tickFieldBits)&tickFieldMask)<<victimShift | (w + 2)
		if v0 < m0 {
			m0 = v0
		}
		if v1 < m1 {
			m1 = v1
		}
		if v2 < m2 {
			m2 = v2
		}
		w += ticksPerWord
	}
	// Ticks are unique within a set, so the global min is unique and the
	// accumulator split cannot change which way wins.
	if m1 < m0 {
		m0 = m1
	}
	if m2 < m0 {
		m0 = m2
	}
	return int(m0 & (1<<victimShift - 1))
}

// initTicks resets the packed tick array: real fields to zero, the padding
// fields of the last word of each set to the maximum stamp so tickVictim
// never picks a way beyond assoc.
func (c *cache) initTicks() {
	if c.ticks == nil {
		return
	}
	clear(c.ticks)
	first := c.assoc % ticksPerWord
	if c.tickStride*ticksPerWord == c.assoc {
		return // no padding fields
	}
	var pad uint64
	for f := first; f < ticksPerWord; f++ {
		pad |= uint64(tickFieldMask) << (tickFieldBits * uint(f))
	}
	for s := 0; s <= int(c.setMask); s++ {
		c.ticks[s*c.tickStride+c.tickStride-1] |= pad
	}
}

// fill completes a miss using the hint computed by probe: it places
// lineAddr in the free way, or evicts the LRU victim. It returns whether a
// dirty line was evicted (writeback). The place/evict logic is flattened
// into the body — fills are demand fills (never prefetch-flagged), so the
// MRU shortcut always moves here and every helper left is inlinable.
func (c *cache) fill(lineAddr uint64, ph *probeHint, dirty bool) (evictedDirty bool, evictedAddr uint64) {
	w := ph.hint
	var ev uint64
	if w >= 0 {
		c.occ[ph.setIdx]++
	} else {
		w = ^w
		ev = c.slab[ph.base+w]
	}
	fresh := ph.want
	if c.mats != nil {
		c.touch(ph.setIdx, w)
	} else {
		c.tickStamp(ph.setIdx, w, c.tickNext())
	}
	if dirty {
		fresh |= entDirty
	}
	c.slab[ph.base+w] = fresh
	c.sigs[ph.setIdx*c.sigStride+w] = byte(ph.want >> tagShift)
	c.setMRU(ph.setIdx, w, lineAddr)
	if ev&entDirty != 0 {
		c.stats.Writebacks++
		return true, c.lineOf(ev, lineAddr)
	}
	return false, 0
}

// findWay locates the resident way holding the line described by (setIdx,
// base, want), or -1. It is the signature-filtered presence scan shared by
// install and prefetchInstall: like probe's match loop it compares the
// wanted tag byte against the whole set's signatures with the zero-byte
// trick and verifies only candidate ways in the slab, so a miss usually
// touches no slab words at all. No LRU or flag side effects.
//
//repro:noalloc
func (c *cache) findWay(setIdx, base int, want uint64) int {
	bcast := (want >> tagShift & 0xFF) * oneBytes
	sb := setIdx * c.sigStride
	for k := 0; k < c.sigStride; k += 8 {
		x := binary.LittleEndian.Uint64(c.sigs[sb+k:]) ^ bcast
		for zeros := (x - oneBytes) & ^x & highBytes; zeros != 0; zeros &= zeros - 1 {
			i := k + bits.TrailingZeros64(zeros)>>3
			if i >= c.assoc {
				break // padding bytes of the last word
			}
			if c.slab[base+i]&matchMask == want {
				return i
			}
		}
	}
	return -1
}

// install places a line into the level, evicting LRU if needed.
// It returns whether a dirty line was evicted (writeback).
func (c *cache) install(lineAddr uint64, dirty, pref bool) (evictedDirty bool, evictedAddr uint64) {
	setIdx, base, want := c.setBase(lineAddr)
	if i := c.findWay(setIdx, base, want); i >= 0 {
		// Already present (e.g. prefetch raced a demand fill): refresh.
		if c.mats != nil {
			c.touch(setIdx, i)
		} else {
			c.tickStamp(setIdx, i, c.tickNext())
		}
		if dirty {
			c.slab[base+i] |= entDirty
		}
		return false, 0
	}
	occ := int(c.occ[setIdx])
	switch {
	case occ < c.assoc:
		c.occ[setIdx]++
		return c.place(setIdx, base, occ, want, lineAddr, dirty, pref)
	case c.mats != nil:
		return c.evict(setIdx, base, c.matVictim(setIdx), want, lineAddr, dirty, pref)
	default:
		return c.evict(setIdx, base, c.tickVictim(setIdx), want, lineAddr, dirty, pref)
	}
}

// place writes the line into way i of set setIdx and stamps its recency.
func (c *cache) place(setIdx, base, i int, want, lineAddr uint64, dirty, pref bool) (bool, uint64) {
	fresh := want
	if c.mats != nil {
		c.touch(setIdx, i)
	} else {
		c.tickStamp(setIdx, i, c.tickNext())
	}
	if dirty {
		fresh |= entDirty
	}
	if pref {
		fresh |= entPref
	}
	c.slab[base+i] = fresh
	c.sigs[setIdx*c.sigStride+i] = byte(want >> tagShift)
	if pref {
		c.dropMRUAt(base + i)
	} else {
		c.setMRU(setIdx, i, lineAddr)
	}
	return false, 0
}

// evict replaces the victim way (chosen by the caller) with the line and
// reports a writeback when the victim was dirty. Like fill, the body is
// flattened so it makes no non-inlinable calls.
func (c *cache) evict(setIdx, base, victim int, want, lineAddr uint64, dirty, pref bool) (bool, uint64) {
	ev := c.slab[base+victim]
	fresh := want
	if c.mats != nil {
		c.touch(setIdx, victim)
	} else {
		c.tickStamp(setIdx, victim, c.tickNext())
	}
	if dirty {
		fresh |= entDirty
	}
	if pref {
		fresh |= entPref
		c.dropMRUAt(base + victim)
	} else {
		c.setMRU(setIdx, victim, lineAddr)
	}
	c.slab[base+victim] = fresh
	c.sigs[setIdx*c.sigStride+victim] = byte(want >> tagShift)
	if ev&entDirty != 0 {
		c.stats.Writebacks++
		return true, c.lineOf(ev, lineAddr)
	}
	return false, 0
}

// prefetchInstall is the prefetcher's contains-then-install pair fused into
// one scan: it reports present=true (with no side effects) when the line is
// already cached, and otherwise installs it with the prefetch flag.
func (c *cache) prefetchInstall(lineAddr uint64) (present, evictedDirty bool, evictedAddr uint64) {
	if c.mruValid && c.mruLine == lineAddr {
		return true, false, 0
	}
	setIdx, base, want := c.setBase(lineAddr)
	if c.findWay(setIdx, base, want) >= 0 {
		return true, false, 0
	}
	occ := int(c.occ[setIdx])
	var victim int
	switch {
	case occ < c.assoc:
		c.occ[setIdx]++
		evictedDirty, evictedAddr = c.place(setIdx, base, occ, want, lineAddr, false, true)
		return false, evictedDirty, evictedAddr
	case c.mats != nil:
		victim = c.matVictim(setIdx)
	default:
		victim = c.tickVictim(setIdx)
	}
	evictedDirty, evictedAddr = c.evict(setIdx, base, victim, want, lineAddr, false, true)
	return false, evictedDirty, evictedAddr
}

// contains reports (without LRU side effects) whether the line is cached.
func (c *cache) contains(lineAddr uint64) bool {
	if c.mruValid && c.mruLine == lineAddr {
		return true
	}
	_, base, want := c.setBase(lineAddr)
	for _, e := range c.slab[base : base+c.assoc] {
		if e&matchMask == want {
			return true
		}
	}
	return false
}

// Access simulates one memory access of the given size at addr. Accesses
// spanning a line boundary are charged to the first line only (the workloads
// issue naturally aligned 4/8-byte element accesses, so splits are rare and
// irrelevant to the sampled statistics). write selects store semantics
// (write-back, write-allocate).
//
// Addresses must lie below the packed-tag range reported at construction
// (2^53 for the default geometry — far beyond the simulated 46-bit address
// space); Access panics otherwise rather than alias tags silently.
//
//repro:noalloc
func (h *Hierarchy) Access(addr uint64, size int, write bool) AccessResult {
	lineAddr := addr &^ h.lineMask
	// L1 MRU fast path: a repeat touch of the most recently used line costs
	// one compare plus an LRU refresh — no way scan, no per-access stats
	// (folded from mruHits), no fill work. This is the common case for the
	// element-granular workloads (8 touches per 64-byte line).
	if l1 := h.l1; l1.mruValid && l1.mruLine == lineAddr {
		h.mruHits++
		if l1.mats != nil {
			l1.touch(l1.mruSet, l1.mruWay)
		} else {
			l1.tickStamp(l1.mruSet, l1.mruWay, l1.tickNext())
		}
		if write {
			l1.slab[l1.mruIdx] |= entDirty
		}
		return AccessResult{Source: SrcL1, Latency: l1.cfg.HitLatency, LineAddr: lineAddr}
	}
	return h.accessLine(addr, lineAddr, write)
}

// accessLine is Access below the L1 MRU fast path: the full probe/fill walk
// for one line-resolving access. It is shared by Access and AccessRun (the
// line-run batch path), which both guarantee the L1 MRU shortcut does not
// apply when it is called.
//
//repro:noalloc
func (h *Hierarchy) accessLine(addr, lineAddr uint64, write bool) AccessResult {
	if lineAddr >= h.maxLine {
		panic(fmt.Sprintf("memhier: address %#x beyond the %d-bit packed-tag range", addr, bits.Len64(h.maxLine-1)))
	}
	h.probeOps++
	// Warm the deeper levels' sets before the L1 scan: the probe loop walks
	// the levels serially, so without this each level's set loads start only
	// after the previous level missed. The early loads have no model side
	// effects; they just overlap the host-cache misses of all levels' sets
	// (the xor into warmSink keeps the compiler from dropping them).
	if len(h.levels) > 1 {
		line := lineAddr >> h.l1.lineShift
		warm := uint64(0)
		for _, c := range h.levels[1:] {
			setIdx := int(line & c.setMask)
			warm ^= uint64(c.sigs[setIdx*c.sigStride])
			if c.ticks != nil {
				// The tick strip is what a miss of this set will scan for
				// the LRU victim; pull its first host line now so the scan
				// overlaps the faster levels' probes.
				warm ^= c.ticks[setIdx*c.tickStride]
			}
		}
		h.warmSink = warm
	}
	// Probe levels top-down; each miss leaves its fill hint in h.hints so
	// the fills after a miss reuse the work of the miss scans instead of
	// rescanning. L1 enters below its MRU shortcut (both callers of
	// accessLine already tested it).
	for i, c := range h.levels {
		var hit, wasPref bool
		if i == 0 {
			hit, wasPref = c.probeScan(lineAddr, write, &h.hints[i])
		} else {
			hit, wasPref = c.probe(lineAddr, false, &h.hints[i])
		}
		if hit {
			// Fill the line into all faster levels (inclusive fills).
			h.fillAbove(i, lineAddr, write)
			return AccessResult{
				Source:     DataSource(i),
				Latency:    c.cfg.HitLatency,
				LineAddr:   lineAddr,
				Prefetched: wasPref,
			}
		}
	}
	if s := h.shared; s != nil {
		// The shared LLC probes and (on a miss) fills in one critical
		// section, so another core cannot invalidate a fill hint between
		// the two steps. The mutation order matches the private path: LLC
		// first, then the private fills (whose dirty evictions install
		// into the LLC afterwards).
		hit, wasPref := s.access(lineAddr)
		if hit {
			h.fillAbove(len(h.levels), lineAddr, write)
			return AccessResult{
				Source:     DataSource(len(h.levels)),
				Latency:    s.cfg.HitLatency,
				LineAddr:   lineAddr,
				Prefetched: wasPref,
			}
		}
		src, lat := h.dramFill(lineAddr)
		h.fillAbove(len(h.levels), lineAddr, write)
		if next := lineAddr + uint64(h.LineSize()); h.cfg.NextLinePrefetch && next < h.maxLine {
			h.prefetch(next)
		}
		return AccessResult{Source: src, Latency: lat, LineAddr: lineAddr}
	}
	// Miss everywhere: DRAM services the line.
	src, lat := h.dramFill(lineAddr)
	h.fillAbove(len(h.levels), lineAddr, write)
	// The next-line target can sit one line past the packed-tag range when
	// the demand access was the last representable line; the prefetcher
	// simply does not cross that boundary (no silent tag truncation).
	if next := lineAddr + uint64(h.LineSize()); h.cfg.NextLinePrefetch && next < h.maxLine {
		h.prefetch(next)
	}
	return AccessResult{Source: src, Latency: lat, LineAddr: lineAddr}
}

// dramFill accounts a line fill that fell through every cache level: flat
// DRAM without a router, or the line's home node — charged the local or
// the remote (interconnect-crossing) cost — with one.
func (h *Hierarchy) dramFill(lineAddr uint64) (DataSource, uint64) {
	h.dram++
	if h.router != nil && h.router.RouteFill(lineAddr) {
		h.dramRemote++
		return SrcDRAMRemote, h.remoteLat
	}
	return SrcDRAM, h.cfg.DRAMLatency
}

// fillAbove installs lineAddr into every level faster than hitLevel, using
// the fill hints the probe loop computed during the miss scans.
// Dirty state lands in L1 for writes (write-allocate); evicted dirty lines
// are pushed one level down, approximating write-back traffic.
func (h *Hierarchy) fillAbove(hitLevel int, lineAddr uint64, write bool) {
	if hitLevel > len(h.levels) {
		hitLevel = len(h.levels)
	}
	for i := hitLevel - 1; i >= 0; i-- {
		dirty := write && i == 0
		evDirty, evAddr := h.levels[i].fill(lineAddr, &h.hints[i], dirty)
		if evDirty {
			// Propagate the dirty line into the next level (it may already be
			// there under inclusion; install refreshes and merges dirtiness).
			switch {
			case i+1 < len(h.levels):
				h.levels[i+1].install(evAddr, true, false)
			case h.shared != nil:
				h.shared.installDirty(evAddr)
			}
		}
	}
}

// prefetch installs the line into L2 and slower levels (not L1, matching the
// L2 streamer behaviour of the modelled parts).
func (h *Hierarchy) prefetch(lineAddr uint64) {
	for i := 1; i < len(h.levels); i++ {
		c := h.levels[i]
		present, evDirty, evAddr := c.prefetchInstall(lineAddr)
		if present {
			continue
		}
		c.stats.Prefetches++
		if evDirty {
			switch {
			case i+1 < len(h.levels):
				h.levels[i+1].install(evAddr, true, false)
			case h.shared != nil:
				h.shared.installDirty(evAddr)
			}
		}
	}
	if h.shared != nil {
		h.shared.prefetchInstall(lineAddr)
	}
}

// RunResult aggregates the outcome of one batched line run issued through
// AccessRun. The counts are deltas (AccessRun adds into an existing value),
// so a caller can accumulate several runs into one result.
type RunResult struct {
	// Lines counts the line-resolving probes by serving source: each
	// distinct cache line of the run is resolved exactly once and lands in
	// the bucket of the level that served it.
	Lines [NumSources]uint64
	// Bulk counts the remaining same-line accesses, charged as L1 MRU hits
	// without re-probing.
	Bulk uint64
}

// Ops returns the total operations the result accounts for.
func (rr *RunResult) Ops() uint64 {
	var n uint64
	for _, lines := range rr.Lines {
		n += lines
	}
	return n + rr.Bulk
}

// AccessRun simulates n accesses sweeping addr, addr+stride, ...,
// addr+(n-1)*stride (stride > 0) in one call: the line-run batch path. It
// is byte-identical in cache-state mutation and statistics to n Access
// calls — each distinct line runs the full probe/fill walk once, and the
// remaining same-line accesses are folded into a single bulk L1 MRU charge
// (LRU victim selection consumes only the order of touches, so one recency
// refresh stands in for a run of touches on one line). The caller is
// responsible for splitting runs at monitoring boundaries: any access that
// must be observed per-op (a sample-gate firing, a multiplexing quantum
// boundary) has to be issued through Access instead.
//
//repro:noalloc
func (h *Hierarchy) AccessRun(addr, stride, n uint64, write bool, rr *RunResult) {
	lineSize := uint64(h.cfg.Levels[0].LineSize)
	l1 := h.l1
	// The same-line count divides by the stride; the kernels' strides are
	// the power-of-two element sizes (4, 8), where a shift replaces the
	// ~25-cycle divide on the per-line path.
	strideShift := -1
	if stride&(stride-1) == 0 {
		strideShift = bits.TrailingZeros64(stride)
	}
	for i := uint64(0); i < n; {
		lineAddr := addr &^ h.lineMask
		if !(l1.mruValid && l1.mruLine == lineAddr) {
			// Line crossing: the full probe/fill walk, once per line.
			res := h.accessLine(addr, lineAddr, write)
			rr.Lines[res.Source]++
			i++
			addr += stride
			if i >= n || stride >= lineSize {
				continue
			}
			// accessLine left the line as the L1 MRU, so the same-line tail
			// falls through to the bulk charge below.
			if addr&^h.lineMask != lineAddr {
				continue
			}
		}
		// Every remaining op on the MRU line is an L1 hit charged in bulk;
		// a single recency refresh stands in for k touches of one line.
		k := uint64(1)
		if stride < lineSize {
			span := lineAddr + lineSize - addr + stride - 1
			if strideShift >= 0 {
				k = span >> strideShift
			} else {
				k = span / stride
			}
			if rem := n - i; k > rem {
				k = rem
			}
		}
		h.mruHits += k
		if l1.mats != nil {
			l1.touch(l1.mruSet, l1.mruWay)
		} else {
			l1.tickStamp(l1.mruSet, l1.mruWay, l1.tickNext())
		}
		if write {
			l1.slab[l1.mruIdx] |= entDirty
		}
		rr.Bulk += k
		i += k
		addr += k * stride
	}
}

// Contains reports whether the line holding addr is present at level i,
// without disturbing replacement state. Intended for tests.
func (h *Hierarchy) Contains(i int, addr uint64) bool {
	lineAddr := addr &^ h.lineMask
	if h.shared != nil && i == len(h.levels) {
		return h.shared.contains(lineAddr)
	}
	return h.levels[i].contains(lineAddr)
}

// Reset clears all private cached state and counters. An attached shared
// LLC is deliberately left alone (other cores may be using it); reset it
// via SharedCache.Reset.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		clear(c.slab)
		clear(c.occ)
		clear(c.sigs)
		clear(c.mats)
		c.initTicks()
		c.stats = LevelStats{}
		c.tick = 0
		c.mruValid = false
	}
	h.dram = 0
	h.dramRemote = 0
	h.mruHits = 0
	h.probeOps = 0
}

// MissLatencyName maps a DataSource to the PMU counter name used by the
// monitoring layer for miss accounting ("" for L1 hits, which miss nothing).
func MissLatencyName(s DataSource) string {
	switch s {
	case SrcL2:
		return "L1D_MISS"
	case SrcL3:
		return "L2_MISS"
	case SrcDRAM, SrcDRAMRemote:
		// A remote fill is still an L3 miss; the local/remote split has its
		// own dedicated counter on the NUMA-routed stacks.
		return "L3_MISS"
	}
	return ""
}
