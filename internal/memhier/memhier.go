// Package memhier simulates a multi-level write-back cache hierarchy plus
// DRAM. It is the substitute for the Intel Xeon memory system of the paper's
// Jureca testbed: every simulated memory instruction is routed through the
// hierarchy, which reports the *data source* (the level that served the
// line) and the *access cost* (latency in cycles) — exactly the two fields
// the PEBS hardware records for a sampled memory operation.
//
// The model is a set-associative, LRU, write-back/write-allocate hierarchy
// with inclusive fills and an optional next-line prefetcher. It is a
// functional (not timing-accurate) model: latencies are fixed per level,
// which is sufficient because the paper's analysis consumes the *relative*
// distribution of sources and costs, not absolute machine timings.
package memhier

import (
	"fmt"
	"math/bits"
)

// DataSource identifies the memory-hierarchy level that served an access.
// It mirrors the PEBS "data source" encoding at the granularity the paper
// uses (L1, L2, L3, local DRAM).
type DataSource int

const (
	// SrcL1 means the access hit in the first-level data cache.
	SrcL1 DataSource = iota
	// SrcL2 means the line was served by the second-level cache.
	SrcL2
	// SrcL3 means the line was served by the last-level cache.
	SrcL3
	// SrcDRAM means the line came from main memory.
	SrcDRAM
)

// String returns the conventional level name.
func (s DataSource) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("DataSource(%d)", int(s))
}

// NumSources is the number of distinct DataSource values.
const NumSources = 4

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Name is a label used in reports ("L1D", "L2", ...).
	Name string
	// Size is the total capacity in bytes; must be a power of two multiple
	// of LineSize*Assoc.
	Size int
	// LineSize is the cache-line size in bytes (power of two).
	LineSize int
	// Assoc is the set associativity (ways per set).
	Assoc int
	// HitLatency is the access cost in cycles when this level serves data.
	HitLatency uint64
}

// Config describes the whole hierarchy.
type Config struct {
	// Levels lists the cache levels from closest (L1) to farthest (LLC).
	Levels []LevelConfig
	// DRAMLatency is the access cost in cycles when no level holds the line.
	DRAMLatency uint64
	// NextLinePrefetch enables a simple next-line prefetcher: on an L1 miss
	// the successor line is installed into L2 (and below), modelling the
	// hardware streamer that makes linear sweeps cheap.
	NextLinePrefetch bool
}

// DefaultConfig returns a Haswell-like single-core slice: 32 KiB 8-way L1D,
// 256 KiB 8-way L2, 2.5 MiB 20-way L3 slice, 64-byte lines; latencies
// 4/12/36/230 cycles. These mirror the Xeon E5-2680 v3 nodes of Jureca at
// per-core L3 granularity.
func DefaultConfig() Config {
	return Config{
		Levels: []LevelConfig{
			{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 4},
			{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8, HitLatency: 12},
			{Name: "L3", Size: 2560 << 10, LineSize: 64, Assoc: 20, HitLatency: 36},
		},
		DRAMLatency:      230,
		NextLinePrefetch: true,
	}
}

// LevelStats aggregates per-level counters.
type LevelStats struct {
	Accesses   uint64 // lookups that reached this level
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions out of this level
	Prefetches uint64 // lines installed by the prefetcher
	PrefHits   uint64 // demand hits on prefetched lines
}

// MissRatio returns Misses/Accesses (0 when idle).
func (s LevelStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one memory access.
type AccessResult struct {
	// Source is the level that served the data.
	Source DataSource
	// Latency is the access cost in cycles.
	Latency uint64
	// LineAddr is the address of the cache line containing the access.
	LineAddr uint64
	// Prefetched reports whether the hit landed on a prefetched line.
	Prefetched bool
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	pref    bool // installed by prefetcher, not yet demand-hit
	lastUse uint64
}

type cache struct {
	cfg       LevelConfig
	sets      [][]line
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     LevelStats
}

// Hierarchy is a simulated cache hierarchy. It is not safe for concurrent
// use; each simulated core owns its own Hierarchy (the L3 slice model keeps
// per-core simulations independent, matching the paper's per-thread traces).
type Hierarchy struct {
	cfg    Config
	levels []*cache
	dram   uint64 // DRAM access count
}

// New validates the configuration and builds the hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("memhier: no cache levels configured")
	}
	if cfg.DRAMLatency == 0 {
		return nil, fmt.Errorf("memhier: DRAMLatency must be > 0")
	}
	h := &Hierarchy{cfg: cfg}
	lineSize := cfg.Levels[0].LineSize
	for i, lc := range cfg.Levels {
		if lc.LineSize != lineSize {
			return nil, fmt.Errorf("memhier: level %s line size %d differs from L1 %d",
				lc.Name, lc.LineSize, lineSize)
		}
		if lc.LineSize <= 0 || bits.OnesCount(uint(lc.LineSize)) != 1 {
			return nil, fmt.Errorf("memhier: level %s line size %d not a power of two", lc.Name, lc.LineSize)
		}
		if lc.Assoc <= 0 {
			return nil, fmt.Errorf("memhier: level %s associativity %d invalid", lc.Name, lc.Assoc)
		}
		if lc.Size <= 0 || lc.Size%(lc.LineSize*lc.Assoc) != 0 {
			return nil, fmt.Errorf("memhier: level %s size %d not divisible by line*assoc", lc.Name, lc.Size)
		}
		nsets := lc.Size / (lc.LineSize * lc.Assoc)
		if bits.OnesCount(uint(nsets)) != 1 {
			return nil, fmt.Errorf("memhier: level %s set count %d not a power of two", lc.Name, nsets)
		}
		if lc.HitLatency == 0 {
			return nil, fmt.Errorf("memhier: level %s hit latency must be > 0", lc.Name)
		}
		if i > 0 && lc.HitLatency <= cfg.Levels[i-1].HitLatency {
			return nil, fmt.Errorf("memhier: level %s latency %d not greater than previous level",
				lc.Name, lc.HitLatency)
		}
		c := &cache{
			cfg:       lc,
			sets:      make([][]line, nsets),
			setMask:   uint64(nsets - 1),
			lineShift: uint(bits.TrailingZeros(uint(lc.LineSize))),
		}
		for s := range c.sets {
			c.sets[s] = make([]line, lc.Assoc)
		}
		h.levels = append(h.levels, c)
	}
	return h, nil
}

// LineSize returns the cache-line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.Levels[0].LineSize }

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// LevelStats returns a copy of the counters for level i (0 = L1).
func (h *Hierarchy) LevelStats(i int) LevelStats { return h.levels[i].stats }

// DRAMAccesses returns the number of line fills served by DRAM.
func (h *Hierarchy) DRAMAccesses() uint64 { return h.dram }

// lookup probes a single level. On hit it refreshes LRU state and (for
// writes) marks the line dirty.
func (c *cache) lookup(lineAddr uint64, write bool) (hit, wasPref bool) {
	set := (lineAddr >> c.lineShift) & c.setMask
	tag := lineAddr >> c.lineShift
	c.tick++
	c.stats.Accesses++
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			ways[i].lastUse = c.tick
			if write {
				ways[i].dirty = true
			}
			wasPref = ways[i].pref
			if wasPref {
				ways[i].pref = false
				c.stats.PrefHits++
			}
			return true, wasPref
		}
	}
	c.stats.Misses++
	return false, false
}

// install places a line into the level, evicting LRU if needed.
// It returns whether a dirty line was evicted (writeback).
func (c *cache) install(lineAddr uint64, dirty, pref bool) (evictedDirty bool, evictedAddr uint64) {
	set := (lineAddr >> c.lineShift) & c.setMask
	tag := lineAddr >> c.lineShift
	c.tick++
	ways := c.sets[set]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			// Already present (e.g. prefetch raced a demand fill): refresh.
			ways[i].lastUse = c.tick
			ways[i].dirty = ways[i].dirty || dirty
			return false, 0
		}
		if !ways[i].valid {
			victim = i
			ways[i] = line{tag: tag, valid: true, dirty: dirty, pref: pref, lastUse: c.tick}
			return false, 0
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	ev := ways[victim]
	ways[victim] = line{tag: tag, valid: true, dirty: dirty, pref: pref, lastUse: c.tick}
	if ev.dirty {
		c.stats.Writebacks++
		return true, (ev.tag << c.lineShift)
	}
	return false, 0
}

// contains reports (without LRU side effects) whether the line is cached.
func (c *cache) contains(lineAddr uint64) bool {
	set := (lineAddr >> c.lineShift) & c.setMask
	tag := lineAddr >> c.lineShift
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Access simulates one memory access of the given size at addr. Accesses
// spanning a line boundary are charged to the first line only (the workloads
// issue naturally aligned 4/8-byte element accesses, so splits are rare and
// irrelevant to the sampled statistics). write selects store semantics
// (write-back, write-allocate).
func (h *Hierarchy) Access(addr uint64, size int, write bool) AccessResult {
	lineAddr := addr &^ uint64(h.LineSize()-1)
	// Probe levels top-down.
	for i, c := range h.levels {
		hit, wasPref := c.lookup(lineAddr, write && i == 0)
		if hit {
			// Fill the line into all faster levels (inclusive fills).
			h.fillAbove(i, lineAddr, write)
			return AccessResult{
				Source:     DataSource(i),
				Latency:    c.cfg.HitLatency,
				LineAddr:   lineAddr,
				Prefetched: wasPref,
			}
		}
	}
	// Miss everywhere: DRAM services the line.
	h.dram++
	h.fillAbove(len(h.levels), lineAddr, write)
	if h.cfg.NextLinePrefetch {
		h.prefetch(lineAddr + uint64(h.LineSize()))
	}
	return AccessResult{Source: SrcDRAM, Latency: h.cfg.DRAMLatency, LineAddr: lineAddr}
}

// fillAbove installs lineAddr into every level faster than hitLevel.
// Dirty state lands in L1 for writes (write-allocate); evicted dirty lines
// are pushed one level down, approximating write-back traffic.
func (h *Hierarchy) fillAbove(hitLevel int, lineAddr uint64, write bool) {
	for i := hitLevel - 1; i >= 0; i-- {
		dirty := write && i == 0
		evDirty, evAddr := h.levels[i].install(lineAddr, dirty, false)
		if evDirty && i+1 < len(h.levels) {
			// Propagate the dirty line into the next level (it may already be
			// there under inclusion; install refreshes and merges dirtiness).
			h.levels[i+1].install(evAddr, true, false)
		}
	}
}

// prefetch installs the line into L2 and slower levels (not L1, matching the
// L2 streamer behaviour of the modelled parts).
func (h *Hierarchy) prefetch(lineAddr uint64) {
	for i := 1; i < len(h.levels); i++ {
		c := h.levels[i]
		if c.contains(lineAddr) {
			continue
		}
		c.stats.Prefetches++
		evDirty, evAddr := c.install(lineAddr, false, true)
		if evDirty && i+1 < len(h.levels) {
			h.levels[i+1].install(evAddr, true, false)
		}
	}
}

// Contains reports whether the line holding addr is present at level i,
// without disturbing replacement state. Intended for tests.
func (h *Hierarchy) Contains(i int, addr uint64) bool {
	lineAddr := addr &^ uint64(h.LineSize()-1)
	return h.levels[i].contains(lineAddr)
}

// Reset clears all cached state and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		for s := range c.sets {
			for w := range c.sets[s] {
				c.sets[s][w] = line{}
			}
		}
		c.stats = LevelStats{}
		c.tick = 0
	}
	h.dram = 0
}

// MissLatencyName maps a DataSource to the PMU counter name used by the
// monitoring layer for miss accounting ("" for L1 hits, which miss nothing).
func MissLatencyName(s DataSource) string {
	switch s {
	case SrcL2:
		return "L1D_MISS"
	case SrcL3:
		return "L2_MISS"
	case SrcDRAM:
		return "L3_MISS"
	}
	return ""
}
