package memhier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a small two-level hierarchy convenient for eviction tests:
// L1 = 4 sets x 2 ways x 64B = 512B, L2 = 8 sets x 2 ways x 64B = 1KiB.
func tiny(t *testing.T, prefetch bool) *Hierarchy {
	t.Helper()
	h, err := New(Config{
		Levels: []LevelConfig{
			{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 4},
			{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 12},
		},
		DRAMLatency:      100,
		NextLinePrefetch: prefetch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDataSourceString(t *testing.T) {
	want := map[DataSource]string{SrcL1: "L1", SrcL2: "L2", SrcL3: "L3", SrcDRAM: "DRAM"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if DataSource(9).String() != "DataSource(9)" {
		t.Errorf("unknown source string = %q", DataSource(9).String())
	}
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	if _, err := New(base); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{},                    // no levels
		{Levels: base.Levels}, // DRAMLatency 0
		func() Config {
			c := base
			// 4 cache levels: DataSource/PMU encode only L1..L3 + DRAM.
			c.Levels = []LevelConfig{
				{Name: "a", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 1},
				{Name: "b", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 2},
				{Name: "c", Size: 2048, LineSize: 64, Assoc: 2, HitLatency: 3},
				{Name: "d", Size: 4096, LineSize: 64, Assoc: 2, HitLatency: 4},
			}
			return c
		}(), // too many levels
		func() Config {
			c := base
			c.Levels = []LevelConfig{{Name: "x", Size: 100, LineSize: 64, Assoc: 2, HitLatency: 1}}
			return c
		}(), // size not divisible
		func() Config {
			c := base
			c.Levels = []LevelConfig{{Name: "x", Size: 512, LineSize: 48, Assoc: 2, HitLatency: 1}}
			return c
		}(), // line not pow2
		func() Config {
			c := base
			c.Levels = []LevelConfig{
				{Name: "a", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 10},
				{Name: "b", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 5}, // not increasing
			}
			return c
		}(),
		func() Config {
			c := base
			c.Levels = []LevelConfig{
				{Name: "a", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 4},
				{Name: "b", Size: 1024, LineSize: 128, Assoc: 2, HitLatency: 12}, // line mismatch
			}
			return c
		}(),
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny(t, false)
	r1 := h.Access(0x1000, 8, false)
	if r1.Source != SrcDRAM || r1.Latency != 100 {
		t.Errorf("cold access = %+v, want DRAM/100", r1)
	}
	r2 := h.Access(0x1000, 8, false)
	if r2.Source != SrcL1 || r2.Latency != 4 {
		t.Errorf("second access = %+v, want L1/4", r2)
	}
	// Same line, different offset: still L1.
	r3 := h.Access(0x1038, 8, false)
	if r3.Source != SrcL1 {
		t.Errorf("same-line access = %+v, want L1", r3)
	}
	if h.DRAMAccesses() != 1 {
		t.Errorf("DRAM accesses = %d, want 1", h.DRAMAccesses())
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := tiny(t, false)
	// L1 has 4 sets; addresses 64*4*k map to set 0. Fill set 0 beyond assoc.
	const stride = 64 * 4
	h.Access(0*stride, 8, false)
	h.Access(1*stride, 8, false)
	h.Access(2*stride, 8, false) // evicts line 0 from L1 (2-way)
	if h.Contains(0, 0) {
		t.Fatal("line 0 should be evicted from L1")
	}
	// L2 has 8 sets: lines 0,4,8 map to L2 sets 0,4,0 → lines 0 and 2*stride
	// share L2 set 0 but it is 2-way, so line 0 should still be in L2.
	r := h.Access(0, 8, false)
	if r.Source != SrcL2 {
		t.Errorf("re-access = %v, want L2", r.Source)
	}
	// And it must be refilled into L1 (inclusive fill).
	if !h.Contains(0, 0) {
		t.Error("L2 hit did not refill L1")
	}
}

func TestLRUOrder(t *testing.T) {
	h := tiny(t, false)
	const stride = 64 * 4 // same L1 set
	h.Access(0*stride, 8, false)
	h.Access(1*stride, 8, false)
	h.Access(0*stride, 8, false) // refresh line 0; line 1 is now LRU
	h.Access(2*stride, 8, false) // must evict line 1
	if !h.Contains(0, 0*stride) {
		t.Error("MRU line evicted instead of LRU")
	}
	if h.Contains(0, 1*stride) {
		t.Error("LRU line not evicted")
	}
}

func TestWritebackCounting(t *testing.T) {
	h := tiny(t, false)
	const stride = 64 * 4
	h.Access(0*stride, 8, true) // dirty line in L1
	h.Access(1*stride, 8, false)
	h.Access(2*stride, 8, false) // evicts dirty line 0
	if wb := h.LevelStats(0).Writebacks; wb != 1 {
		t.Errorf("L1 writebacks = %d, want 1", wb)
	}
	// A clean eviction must not count.
	h2 := tiny(t, false)
	h2.Access(0*stride, 8, false)
	h2.Access(1*stride, 8, false)
	h2.Access(2*stride, 8, false)
	if wb := h2.LevelStats(0).Writebacks; wb != 0 {
		t.Errorf("clean eviction counted as writeback: %d", wb)
	}
}

func TestPrefetchNextLine(t *testing.T) {
	h := tiny(t, true)
	h.Access(0x0, 8, false) // DRAM miss; prefetches line 0x40 into L2
	if h.LevelStats(1).Prefetches == 0 {
		t.Fatal("no prefetch issued on DRAM miss")
	}
	r := h.Access(0x40, 8, false)
	if r.Source != SrcL2 {
		t.Errorf("prefetched line served from %v, want L2", r.Source)
	}
	if !r.Prefetched {
		t.Error("result did not flag prefetched line")
	}
	if h.LevelStats(1).PrefHits != 1 {
		t.Errorf("PrefHits = %d, want 1", h.LevelStats(1).PrefHits)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	h := tiny(t, false)
	h.Access(0x0, 8, false)
	r := h.Access(0x40, 8, false)
	if r.Source != SrcDRAM {
		t.Errorf("with prefetch off, next line = %v, want DRAM", r.Source)
	}
}

func TestMissRatioSequentialVsRandom(t *testing.T) {
	// Sequential sweeps must show far lower L1 miss ratios than random access
	// over a working set much larger than the caches. This is the property
	// the paper's bandwidth observations depend on.
	seq, _ := New(DefaultConfig())
	rnd, _ := New(DefaultConfig())
	const n = 1 << 20 // 8 MiB of doubles, larger than L3 slice
	for i := 0; i < n; i++ {
		seq.Access(uint64(i*8), 8, false)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		rnd.Access(uint64(rng.Intn(n))*8, 8, false)
	}
	seqMiss := seq.LevelStats(0).MissRatio()
	rndMiss := rnd.LevelStats(0).MissRatio()
	if seqMiss >= rndMiss {
		t.Errorf("sequential miss ratio %.3f not below random %.3f", seqMiss, rndMiss)
	}
	// Sequential 8-byte strides touch each 64B line 8 times: miss ratio ~1/8.
	if seqMiss > 0.15 {
		t.Errorf("sequential L1 miss ratio %.3f, want ~0.125", seqMiss)
	}
}

func TestStatsConsistency(t *testing.T) {
	h, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		h.Access(uint64(rng.Intn(1<<22)), 8, rng.Intn(4) == 0)
	}
	for i := 0; i < h.Levels(); i++ {
		s := h.LevelStats(i)
		if s.Hits+s.Misses != s.Accesses {
			t.Errorf("level %d: hits %d + misses %d != accesses %d", i, s.Hits, s.Misses, s.Accesses)
		}
	}
	// Every L1 miss probes L2.
	if h.LevelStats(0).Misses != h.LevelStats(1).Accesses {
		t.Errorf("L1 misses %d != L2 accesses %d",
			h.LevelStats(0).Misses, h.LevelStats(1).Accesses)
	}
	// Every L3 miss goes to DRAM.
	last := h.Levels() - 1
	if h.LevelStats(last).Misses != h.DRAMAccesses() {
		t.Errorf("LLC misses %d != DRAM accesses %d", h.LevelStats(last).Misses, h.DRAMAccesses())
	}
}

func TestReset(t *testing.T) {
	h := tiny(t, true)
	h.Access(0, 8, true)
	h.Access(64, 8, false)
	h.Reset()
	if h.DRAMAccesses() != 0 {
		t.Error("Reset did not clear DRAM counter")
	}
	for i := 0; i < h.Levels(); i++ {
		if h.LevelStats(i) != (LevelStats{}) {
			t.Errorf("Reset left stats at level %d: %+v", i, h.LevelStats(i))
		}
	}
	if r := h.Access(0, 8, false); r.Source != SrcDRAM {
		t.Errorf("after Reset, access = %v, want DRAM (cold)", r.Source)
	}
}

func TestWorkingSetFitsInLevel(t *testing.T) {
	// A working set that fits L2 but not L1 must eventually be served
	// entirely from L1/L2 with no DRAM traffic after warmup.
	h, _ := New(DefaultConfig())
	const ws = 128 << 10 // 128 KiB: fits 256 KiB L2, not 32 KiB L1
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < ws; a += 64 {
			h.Access(a, 8, false)
		}
	}
	before := h.DRAMAccesses()
	for a := uint64(0); a < ws; a += 64 {
		r := h.Access(a, 8, false)
		if r.Source == SrcDRAM {
			t.Fatalf("warm working set went to DRAM at %#x", a)
		}
	}
	if h.DRAMAccesses() != before {
		t.Error("DRAM counter moved on warm passes")
	}
}

func TestMissLatencyName(t *testing.T) {
	cases := map[DataSource]string{
		SrcL1: "", SrcL2: "L1D_MISS", SrcL3: "L2_MISS", SrcDRAM: "L3_MISS",
	}
	for s, w := range cases {
		if got := MissLatencyName(s); got != w {
			t.Errorf("MissLatencyName(%v) = %q, want %q", s, got, w)
		}
	}
}

func TestPropertyHitAfterAccess(t *testing.T) {
	// Immediately re-accessing any address must hit L1 with the L1 latency.
	f := func(addrs []uint64) bool {
		h := tiny(nil2t(), false)
		for _, a := range addrs {
			a %= 1 << 30
			h.Access(a, 8, false)
			r := h.Access(a, 8, false)
			if r.Source != SrcL1 || r.Latency != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// nil2t builds the tiny hierarchy without a testing.T (for quick.Check fns).
func nil2t() *testing.T { return &testing.T{} }

func TestPropertyLatencyMatchesSource(t *testing.T) {
	h, _ := New(DefaultConfig())
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		r := h.Access(uint64(rng.Intn(1<<24)), 8, rng.Intn(3) == 0)
		var want uint64
		switch r.Source {
		case SrcL1:
			want = cfg.Levels[0].HitLatency
		case SrcL2:
			want = cfg.Levels[1].HitLatency
		case SrcL3:
			want = cfg.Levels[2].HitLatency
		case SrcDRAM:
			want = cfg.DRAMLatency
		}
		if r.Latency != want {
			t.Fatalf("source %v latency %d, want %d", r.Source, r.Latency, want)
		}
	}
}
