package memhier

import "testing"

// parityRouter is a stub DRAMRouter homing every even 4 KiB page locally
// and every odd page remotely, counting the routed traffic.
type parityRouter struct {
	fills, remoteFills, writebacks uint64
	multi                          bool
}

func (r *parityRouter) RouteFill(lineAddr uint64) bool {
	r.fills++
	if !r.multi {
		return false
	}
	if (lineAddr>>12)&1 == 1 {
		r.remoteFills++
		return true
	}
	return false
}

func (r *parityRouter) RouteWriteback(lineAddr uint64) { r.writebacks++ }
func (r *parityRouter) RemotePossible() bool           { return r.multi }

// TestRoutedDRAMFills pins the NUMA fill path: a routed hierarchy labels
// odd-page fills SrcDRAMRemote with the remote latency, counts them in
// both the total and the remote DRAM counters, and still resolves cache
// hits without consulting the router.
func TestRoutedDRAMFills(t *testing.T) {
	h, err := New(Config{
		Levels: []LevelConfig{
			{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 4},
			{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 12},
		},
		DRAMLatency:       100,
		RemoteDRAMLatency: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &parityRouter{multi: true}
	h.SetDRAMRouter(r)
	if !h.RemoteDRAMPossible() {
		t.Fatal("routed hierarchy does not report remote possible")
	}
	if got := h.SourceLatency(SrcDRAMRemote); got != 160 {
		t.Fatalf("SourceLatency(SrcDRAMRemote) = %d", got)
	}

	local := h.Access(0x0000, 8, false) // even page
	if local.Source != SrcDRAM || local.Latency != 100 {
		t.Fatalf("even-page fill: %+v", local)
	}
	remote := h.Access(0x1000, 8, false) // odd page
	if remote.Source != SrcDRAMRemote || remote.Latency != 160 {
		t.Fatalf("odd-page fill: %+v", remote)
	}
	if h.DRAMAccesses() != 2 || h.RemoteDRAMAccesses() != 1 {
		t.Fatalf("fills total=%d remote=%d", h.DRAMAccesses(), h.RemoteDRAMAccesses())
	}
	// A repeat access hits L1: the router must not be consulted again.
	before := r.fills
	if res := h.Access(0x1000, 8, false); res.Source != SrcL1 {
		t.Fatalf("repeat access: %+v", res)
	}
	if r.fills != before {
		t.Fatal("cache hit consulted the router")
	}

	h.Reset()
	if h.DRAMAccesses() != 0 || h.RemoteDRAMAccesses() != 0 {
		t.Fatal("Reset left DRAM counters")
	}
}

// TestRoutedAccessRun pins the batched path: AccessRun buckets remote
// fills into Lines[SrcDRAMRemote] and Ops accounts for them.
func TestRoutedAccessRun(t *testing.T) {
	h, err := New(Config{
		Levels: []LevelConfig{
			{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 4},
		},
		DRAMLatency:       100,
		RemoteDRAMLatency: 160,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SetDRAMRouter(&parityRouter{multi: true})
	var rr RunResult
	// Sweep two pages: 128 element accesses over 1024 doubles = 8 KiB.
	h.AccessRun(0, 8, 1024, false, &rr)
	if rr.Lines[SrcDRAM] != 64 || rr.Lines[SrcDRAMRemote] != 64 {
		t.Fatalf("run lines: %+v", rr.Lines)
	}
	if rr.Ops() != 1024 {
		t.Fatalf("Ops() = %d", rr.Ops())
	}
}

// TestSharedCacheWritebackRouting pins the LLC writeback attribution: a
// dirty line evicted out of a routed SharedCache reaches the router with
// its reconstructed global address (the stub counts it; the numa package's
// own tests check node attribution).
func TestSharedCacheWritebackRouting(t *testing.T) {
	// 2 sets x 1 way: two lines of cache, 2 shards -> 1 set per shard.
	llc, err := NewSharedCache(LevelConfig{Name: "L3", Size: 128, LineSize: 64, Assoc: 1, HitLatency: 36}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := &parityRouter{multi: true}
	llc.SetDRAMRouter(r)
	// Make line 0 dirty in the LLC via a private dirty eviction.
	llc.installDirty(0)
	// Conflict-miss the same shard: line 0 and line 2*64*2... shard = low
	// line bit, so lines 0 and 4 share shard 0 and its single set/way.
	llc.access(4 * 64)
	if r.writebacks != 1 {
		t.Fatalf("writebacks routed: %d", r.writebacks)
	}
}

// TestRemoteLatencyValidation pins the config check.
func TestRemoteLatencyValidation(t *testing.T) {
	_, err := New(Config{
		Levels:            []LevelConfig{{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 4}},
		DRAMLatency:       100,
		RemoteDRAMLatency: 50,
	})
	if err == nil {
		t.Fatal("remote latency below local accepted")
	}
}
