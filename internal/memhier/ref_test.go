package memhier

import (
	"math/rand"
	"testing"
)

// This file pins the packed-slab + MRU-fast-path hierarchy to a
// straightforward reference model: a direct port of the original
// [][]line implementation (pointer-chased per-set slices, no MRU
// shortcut, per-access stats). Every access must produce the identical
// AccessResult, and the aggregate stats must match exactly.

type refLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	pref    bool
	lastUse uint64
}

type refCache struct {
	cfg       LevelConfig
	sets      [][]refLine
	setMask   uint64
	lineShift uint
	tick      uint64
	stats     LevelStats
}

type refHier struct {
	cfg    Config
	levels []*refCache
	dram   uint64
}

func newRefHier(t *testing.T, cfg Config) *refHier {
	t.Helper()
	h := &refHier{cfg: cfg}
	for _, lc := range cfg.Levels {
		nsets := lc.Size / (lc.LineSize * lc.Assoc)
		c := &refCache{
			cfg:       lc,
			sets:      make([][]refLine, nsets),
			setMask:   uint64(nsets - 1),
			lineShift: uint(trailingZeros(lc.LineSize)),
		}
		for s := range c.sets {
			c.sets[s] = make([]refLine, lc.Assoc)
		}
		h.levels = append(h.levels, c)
	}
	return h
}

func trailingZeros(v int) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

func (c *refCache) lookup(lineAddr uint64, write bool) (hit, wasPref bool) {
	set := (lineAddr >> c.lineShift) & c.setMask
	tag := lineAddr >> c.lineShift
	c.tick++
	c.stats.Accesses++
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			ways[i].lastUse = c.tick
			if write {
				ways[i].dirty = true
			}
			wasPref = ways[i].pref
			if wasPref {
				ways[i].pref = false
				c.stats.PrefHits++
			}
			return true, wasPref
		}
	}
	c.stats.Misses++
	return false, false
}

func (c *refCache) install(lineAddr uint64, dirty, pref bool) (evictedDirty bool, evictedAddr uint64) {
	set := (lineAddr >> c.lineShift) & c.setMask
	tag := lineAddr >> c.lineShift
	c.tick++
	ways := c.sets[set]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.tick
			ways[i].dirty = ways[i].dirty || dirty
			return false, 0
		}
		if !ways[i].valid {
			ways[i] = refLine{tag: tag, valid: true, dirty: dirty, pref: pref, lastUse: c.tick}
			return false, 0
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	ev := ways[victim]
	ways[victim] = refLine{tag: tag, valid: true, dirty: dirty, pref: pref, lastUse: c.tick}
	if ev.dirty {
		c.stats.Writebacks++
		return true, (ev.tag << c.lineShift)
	}
	return false, 0
}

func (c *refCache) contains(lineAddr uint64) bool {
	set := (lineAddr >> c.lineShift) & c.setMask
	tag := lineAddr >> c.lineShift
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

func (h *refHier) Access(addr uint64, size int, write bool) AccessResult {
	lineAddr := addr &^ uint64(h.cfg.Levels[0].LineSize-1)
	for i, c := range h.levels {
		hit, wasPref := c.lookup(lineAddr, write && i == 0)
		if hit {
			h.fillAbove(i, lineAddr, write)
			return AccessResult{
				Source:     DataSource(i),
				Latency:    c.cfg.HitLatency,
				LineAddr:   lineAddr,
				Prefetched: wasPref,
			}
		}
	}
	h.dram++
	h.fillAbove(len(h.levels), lineAddr, write)
	if h.cfg.NextLinePrefetch {
		h.prefetch(lineAddr + uint64(h.cfg.Levels[0].LineSize))
	}
	return AccessResult{Source: SrcDRAM, Latency: h.cfg.DRAMLatency, LineAddr: lineAddr}
}

func (h *refHier) fillAbove(hitLevel int, lineAddr uint64, write bool) {
	for i := hitLevel - 1; i >= 0; i-- {
		dirty := write && i == 0
		evDirty, evAddr := h.levels[i].install(lineAddr, dirty, false)
		if evDirty && i+1 < len(h.levels) {
			h.levels[i+1].install(evAddr, true, false)
		}
	}
}

func (h *refHier) prefetch(lineAddr uint64) {
	for i := 1; i < len(h.levels); i++ {
		c := h.levels[i]
		if c.contains(lineAddr) {
			continue
		}
		c.stats.Prefetches++
		evDirty, evAddr := c.install(lineAddr, false, true)
		if evDirty && i+1 < len(h.levels) {
			h.levels[i+1].install(evAddr, true, false)
		}
	}
}

// drive runs the same access sequence through both models, failing on the
// first divergent result, and then compares aggregate stats.
func drive(t *testing.T, cfg Config, accesses func(emit func(addr uint64, write bool))) {
	t.Helper()
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefHier(t, cfg)
	n := 0
	accesses(func(addr uint64, write bool) {
		got := fast.Access(addr, 8, write)
		want := ref.Access(addr, 8, write)
		if got != want {
			t.Fatalf("access %d (addr %#x write %v): packed %+v, reference %+v",
				n, addr, write, got, want)
		}
		n++
	})
	for i := range cfg.Levels {
		if got, want := fast.LevelStats(i), ref.levels[i].stats; got != want {
			t.Errorf("level %d stats: packed %+v, reference %+v", i, got, want)
		}
	}
	if fast.DRAMAccesses() != ref.dram {
		t.Errorf("DRAM accesses: packed %d, reference %d", fast.DRAMAccesses(), ref.dram)
	}
}

func TestPackedMatchesReferenceRandom(t *testing.T) {
	for _, prefetch := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.NextLinePrefetch = prefetch
		drive(t, cfg, func(emit func(addr uint64, write bool)) {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 200000; i++ {
				emit(uint64(rng.Intn(1<<24)), rng.Intn(4) == 0)
			}
		})
	}
}

func TestPackedMatchesReferenceStreaming(t *testing.T) {
	// Sequential element sweeps: the pattern that exercises the MRU fast
	// path hardest (7 of 8 accesses repeat the current line).
	drive(t, DefaultConfig(), func(emit func(addr uint64, write bool)) {
		for pass := 0; pass < 3; pass++ {
			for a := uint64(0); a < 1<<21; a += 8 {
				emit(a, pass == 1)
			}
		}
	})
}

func TestPackedMatchesReferenceTinyEvictionHeavy(t *testing.T) {
	// A tiny hierarchy makes every set boil: evictions, writebacks and
	// prefetch collisions on nearly every access.
	cfg := Config{
		Levels: []LevelConfig{
			{Name: "L1D", Size: 512, LineSize: 64, Assoc: 2, HitLatency: 4},
			{Name: "L2", Size: 1024, LineSize: 64, Assoc: 2, HitLatency: 12},
		},
		DRAMLatency:      100,
		NextLinePrefetch: true,
	}
	drive(t, cfg, func(emit func(addr uint64, write bool)) {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 100000; i++ {
			// Small footprint: high hit rates with constant eviction churn.
			emit(uint64(rng.Intn(1<<12)), rng.Intn(3) == 0)
		}
	})
}

func TestAccessRunBulkMatchesReference(t *testing.T) {
	cfg := DefaultConfig()
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefHier(t, cfg)
	rng := rand.New(rand.NewSource(3))
	var rr RunResult
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 20))
		write := rng.Intn(4) == 0
		got := fast.Access(addr, 8, write)
		want := ref.Access(addr, 8, write)
		if got != want {
			t.Fatalf("probe access diverged: %+v vs %+v", got, want)
		}
		// A run of repeat touches of the just-accessed line goes through
		// AccessRun's bulk L1 MRU charge and must equal the same touches
		// issued individually against the reference implementation.
		n := uint64(rng.Intn(7) + 1)
		bw := rng.Intn(2) == 0
		before := rr.Bulk
		fast.AccessRun(got.LineAddr, 8, n, bw, &rr)
		if rr.Bulk != before+n {
			t.Fatalf("same-line run not charged in bulk: %d of %d ops", rr.Bulk-before, n)
		}
		for j := uint64(0); j < n; j++ {
			r := ref.Access(got.LineAddr, 8, bw)
			if r.Source != SrcL1 {
				t.Fatalf("reference repeat touch left L1: %+v", r)
			}
		}
	}
	for i := range cfg.Levels {
		if got, want := fast.LevelStats(i), ref.levels[i].stats; got != want {
			t.Errorf("level %d stats: packed %+v, reference %+v", i, got, want)
		}
	}
}
