package memhier

import (
	"math/rand"
	"testing"
)

// TestAccessRunMatchesPerOp drives two identical hierarchies with the same
// randomized access program — one through AccessRun line-run batches, one
// through per-op Access calls — and requires identical statistics and
// cache state. Strides cover sub-line power-of-two (the kernels' element
// sizes), non-power-of-two, line-sized and multi-line cases; run lengths
// cross line boundaries at every phase.
func TestAccessRunMatchesPerOp(t *testing.T) {
	strides := []uint64{1, 3, 4, 5, 8, 12, 16, 24, 63, 64, 65, 72, 128, 200}
	rng := rand.New(rand.NewSource(42))

	batch, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	perOp, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var rr RunResult
	var ops uint64
	var perOpSources [NumSources]uint64
	for trial := 0; trial < 3000; trial++ {
		base := uint64(rng.Intn(1 << 24))
		stride := strides[rng.Intn(len(strides))]
		n := uint64(1 + rng.Intn(40))
		write := rng.Intn(3) == 0

		batch.AccessRun(base, stride, n, write, &rr)
		addr := base
		for i := uint64(0); i < n; i++ {
			res := perOp.Access(addr, 8, write)
			perOpSources[res.Source]++
			addr += stride
		}
		ops += n
	}

	if got := rr.Ops(); got != ops {
		t.Fatalf("RunResult accounts for %d ops, issued %d", got, ops)
	}
	// The per-op path cannot distinguish a line-resolving L1 hit from a
	// same-line MRU hit, but the total per-source op counts must agree.
	if batchL1 := rr.Lines[SrcL1] + rr.Bulk; batchL1 != perOpSources[SrcL1] {
		t.Errorf("L1-served ops: batch %d (lines %d + bulk %d), per-op %d",
			batchL1, rr.Lines[SrcL1], rr.Bulk, perOpSources[SrcL1])
	}
	for s := SrcL2; s <= SrcDRAM; s++ {
		if rr.Lines[s] != perOpSources[s] {
			t.Errorf("%v-served ops: batch %d, per-op %d", s, rr.Lines[s], perOpSources[s])
		}
	}
	for i := 0; i < batch.Levels(); i++ {
		if b, p := batch.LevelStats(i), perOp.LevelStats(i); b != p {
			t.Errorf("level %d stats: batch %+v, per-op %+v", i, b, p)
		}
	}
	if b, p := batch.DRAMAccesses(), perOp.DRAMAccesses(); b != p {
		t.Errorf("DRAM accesses: batch %d, per-op %d", b, p)
	}
	// Replacement state must match exactly, not just counters: a sweep over
	// the whole address range served from the same level on both proves the
	// resident line sets are identical.
	for lv := 0; lv < batch.Levels(); lv++ {
		for line := uint64(0); line < 1<<24; line += 64 * 97 {
			if b, p := batch.Contains(lv, line), perOp.Contains(lv, line); b != p {
				t.Fatalf("level %d line %#x: batch contains=%v, per-op contains=%v", lv, line, b, p)
			}
		}
	}
}

// TestAccessRunHeadOnMRULine pins the run-head case: a run starting on the
// line the previous access left as L1 MRU must charge its same-line prefix
// as bulk hits, exactly like per-op issue would hit the MRU shortcut.
func TestAccessRunHeadOnMRULine(t *testing.T) {
	h, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0x1000, 8, false) // leaves line 0x1000 as the L1 MRU line

	var rr RunResult
	h.AccessRun(0x1008, 8, 7, false, &rr) // the remaining 7 words of the line
	if rr.Bulk != 7 || rr.Lines != ([NumSources]uint64{}) {
		t.Fatalf("same-line run head: got bulk=%d lines=%v, want bulk=7 lines={}", rr.Bulk, rr.Lines)
	}

	rr = RunResult{}
	h.AccessRun(0x1008, 8, 16, false, &rr) // 7 on the MRU line, 1 crossing, 8 bulk
	if rr.Bulk != 14 || rr.Ops() != 16 {
		t.Fatalf("crossing run: got bulk=%d ops=%d, want bulk=14 ops=16", rr.Bulk, rr.Ops())
	}
}
