package memhier

import (
	"fmt"
	"math/bits"
	"sync"
)

// SharedCache is a thread-safe last-level cache shared by several cores'
// Hierarchies — the Machine's L3, standing in for the paper's socket-wide
// LLC the way the private Hierarchy stands in for a per-core slice. Sets
// are distributed over independently locked shards (shard = low bits of
// the line number), so concurrent cores contend only when they touch the
// same shard, and the non-sampled fast path stays allocation-free: an
// access is one mutex acquisition plus the same packed-slab probe/fill the
// private levels use.
//
// Sharding is behaviour-preserving: every line maps to exactly one shard,
// replacement decisions only ever compare ways within one set, and each
// shard's LRU clock orders its own touches exactly as the global clock of
// an unsharded cache would. A single-core Machine therefore produces
// byte-identical results to a private L3 of the same geometry.
type SharedCache struct {
	cfg       LevelConfig
	shards    []l3shard
	shardBits uint
	shardMask uint64
	lineShift uint
	maxLine   uint64 // first line address the packed tags cannot represent
	// router, when set, receives every dirty eviction out of the cache
	// (DRAM absorbs last-level writebacks; the NUMA layer attributes them
	// to the evicted line's home memory node).
	router DRAMRouter
}

// l3shard is one independently locked slice of the shared cache: a full
// packed cache covering every set whose index has the shard's low bits.
type l3shard struct {
	mu sync.Mutex
	c  *cache
}

// defaultShards is the shard count target: enough that the handful of
// simulated cores rarely collide, small enough that per-shard sets stay
// numerous (the default 2048-set L3 gets 32 sets per shard).
const defaultShards = 64

// NewSharedCache builds a shared last-level cache of the given geometry.
// shardCount must be a power of two no larger than the set count; 0 picks
// a default.
func NewSharedCache(lc LevelConfig, shardCount int) (*SharedCache, error) {
	// Validate the full geometry once (also computes set count bounds).
	probe, err := newCache(lc)
	if err != nil {
		return nil, err
	}
	nsets := int(probe.setMask) + 1
	if shardCount == 0 {
		shardCount = defaultShards
		for shardCount > nsets {
			shardCount >>= 1
		}
	}
	if shardCount <= 0 || bits.OnesCount(uint(shardCount)) != 1 {
		return nil, fmt.Errorf("memhier: shard count %d not a power of two", shardCount)
	}
	if shardCount > nsets {
		return nil, fmt.Errorf("memhier: %d shards exceed %d sets", shardCount, nsets)
	}
	s := &SharedCache{
		cfg:       lc,
		shards:    make([]l3shard, shardCount),
		shardBits: uint(bits.TrailingZeros(uint(shardCount))),
		shardMask: uint64(shardCount - 1),
		lineShift: probe.lineShift,
		// The shard selector consumes shardBits of the line number before
		// the per-shard set/tag split, so the representable range matches
		// the unsharded cache exactly.
		maxLine: probe.maxLineOf(),
	}
	shardCfg := lc
	shardCfg.Size = lc.Size / shardCount
	for i := range s.shards {
		c, err := newCache(shardCfg)
		if err != nil {
			return nil, err
		}
		s.shards[i].c = c
	}
	return s, nil
}

// Config returns the cache geometry.
func (s *SharedCache) Config() LevelConfig { return s.cfg }

// SetDRAMRouter attaches the NUMA layer's router for writeback
// attribution. This is the socket's router — a per-socket SharedCache is
// the L3 of exactly one socket.
func (s *SharedCache) SetDRAMRouter(r DRAMRouter) { s.router = r }

// locate maps a line address to its shard, the shard index and the
// shard-local line address: the shard selector bits are dropped from the
// line number, which is a bijection within the shard, so the shard's
// ordinary set/tag split applies.
func (s *SharedCache) locate(lineAddr uint64) (*l3shard, uint64, uint64) {
	line := lineAddr >> s.lineShift
	idx := line & s.shardMask
	return &s.shards[idx], idx, (line >> s.shardBits) << s.lineShift
}

// globalAddr inverts locate for an evicted shard-local line address: the
// shard selector bits slot back under the shard-local line number.
func (s *SharedCache) globalAddr(localAddr, shardIdx uint64) uint64 {
	return ((localAddr>>s.lineShift)<<s.shardBits | shardIdx) << s.lineShift
}

// routeWriteback hands a dirty eviction to the router (outside the shard
// lock; the router has its own synchronization and the evicted address is
// a value, so no shard state is touched).
func (s *SharedCache) routeWriteback(localAddr, shardIdx uint64) {
	if s.router != nil {
		s.router.RouteWriteback(s.globalAddr(localAddr, shardIdx))
	}
}

// access is the demand path: probe, and on a miss immediately fill the
// line (clean — dirtiness lives in L1 under write-allocate), all under the
// shard lock so the fill hint cannot go stale. Dirty victims are counted
// as writebacks and dropped, as for any last level (DRAM absorbs them).
func (s *SharedCache) access(lineAddr uint64) (hit, wasPref bool) {
	sh, idx, local := s.locate(lineAddr)
	sh.mu.Lock()
	var ph probeHint
	hit, wasPref = sh.c.probe(local, false, &ph)
	var evDirty bool
	var evAddr uint64
	if !hit {
		evDirty, evAddr = sh.c.fill(local, &ph, false)
	}
	sh.mu.Unlock()
	if evDirty {
		s.routeWriteback(evAddr, idx)
	}
	return hit, wasPref
}

// installDirty merges a dirty line evicted from a faster private level
// (write-back traffic), refreshing it if present.
func (s *SharedCache) installDirty(lineAddr uint64) {
	sh, idx, local := s.locate(lineAddr)
	sh.mu.Lock()
	evDirty, evAddr := sh.c.install(local, true, false)
	sh.mu.Unlock()
	if evDirty {
		s.routeWriteback(evAddr, idx)
	}
}

// prefetchInstall installs the line with the prefetch flag unless present.
func (s *SharedCache) prefetchInstall(lineAddr uint64) {
	sh, idx, local := s.locate(lineAddr)
	sh.mu.Lock()
	present, evDirty, evAddr := sh.c.prefetchInstall(local)
	if !present {
		sh.c.stats.Prefetches++
	}
	sh.mu.Unlock()
	if evDirty {
		s.routeWriteback(evAddr, idx)
	}
}

// contains reports (without replacement side effects) whether the line is
// cached.
func (s *SharedCache) contains(lineAddr uint64) bool {
	sh, _, local := s.locate(lineAddr)
	sh.mu.Lock()
	ok := sh.c.contains(local)
	sh.mu.Unlock()
	return ok
}

// Stats sums the per-shard counters. Accesses and Hits are zero here: the
// shared cache does not know which core's L2 miss reached it; the per-core
// Hierarchy.LevelStats derives them from its own counters.
func (s *SharedCache) Stats() LevelStats {
	var out LevelStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.c.stats
		sh.mu.Unlock()
		out.Misses += st.Misses
		out.Writebacks += st.Writebacks
		out.Prefetches += st.Prefetches
		out.PrefHits += st.PrefHits
	}
	return out
}

// Reset clears all cached state and counters. Callers must ensure no core
// is concurrently accessing the cache through a Hierarchy.
func (s *SharedCache) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		c := sh.c
		clear(c.slab)
		clear(c.occ)
		clear(c.sigs)
		clear(c.mats)
		c.initTicks()
		c.stats = LevelStats{}
		c.tick = 0
		c.mruValid = false
		sh.mu.Unlock()
	}
}
