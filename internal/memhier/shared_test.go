package memhier

import (
	"math/rand"
	"sync"
	"testing"
)

// sharedTestConfig returns a small private-L1/L2 config plus the L3 level
// to share.
func sharedTestConfig() (priv Config, l3 LevelConfig) {
	full := DefaultConfig()
	full.Levels[0].Size = 4 << 10 // small caches: evictions and writebacks
	full.Levels[1].Size = 16 << 10
	full.Levels[2].Size = 80 << 10 // 20-way × 64 sets
	priv = Config{
		Levels:           full.Levels[:2],
		DRAMLatency:      full.DRAMLatency,
		NextLinePrefetch: full.NextLinePrefetch,
	}
	return priv, full.Levels[2]
}

// TestSharedLLCSingleCoreEquivalence drives an identical access sequence
// through a fully private hierarchy and through a private-L1/L2 hierarchy
// with a sharded shared L3 of the same geometry, and requires identical
// results and statistics: sharding must be behaviour-preserving.
func TestSharedLLCSingleCoreEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		priv, l3cfg := sharedTestConfig()
		fullCfg := Config{
			Levels:           append(append([]LevelConfig(nil), priv.Levels...), l3cfg),
			DRAMLatency:      priv.DRAMLatency,
			NextLinePrefetch: priv.NextLinePrefetch,
		}
		ref, err := New(fullCfg)
		if err != nil {
			t.Fatal(err)
		}
		llc, err := NewSharedCache(l3cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewWithSharedLLC(priv, llc)
		if err != nil {
			t.Fatal(err)
		}
		if h.Levels() != 3 {
			t.Fatalf("shards=%d: Levels() = %d, want 3", shards, h.Levels())
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		const base = 0x2adf00000000
		for i := 0; i < 200_000; i++ {
			var addr uint64
			switch rng.Intn(3) {
			case 0: // linear sweep region
				addr = base + uint64(i%4096)*8
			case 1: // random over a region larger than the L3
				addr = base + uint64(rng.Intn(1<<18))*8
			default: // hot set-conflict region
				addr = base + uint64(rng.Intn(64))*uint64(l3cfg.Size)
			}
			write := rng.Intn(4) == 0
			a := ref.Access(addr, 8, write)
			b := h.Access(addr, 8, write)
			if a != b {
				t.Fatalf("shards=%d: access %d (%#x write=%v) diverged: ref %+v shared %+v",
					shards, i, addr, write, a, b)
			}
		}
		for lvl := 0; lvl < 3; lvl++ {
			if a, b := ref.LevelStats(lvl), h.LevelStats(lvl); a != b {
				t.Errorf("shards=%d: level %d stats: ref %+v shared %+v", shards, lvl, a, b)
			}
		}
		if a, b := ref.DRAMAccesses(), h.DRAMAccesses(); a != b {
			t.Errorf("shards=%d: DRAM accesses: ref %d shared %d", shards, a, b)
		}
	}
}

// TestSharedLLCConcurrent hammers one shared L3 from several goroutine
// cores with overlapping working sets; it exists chiefly for the race
// detector, and sanity-checks that every access is accounted for.
func TestSharedLLCConcurrent(t *testing.T) {
	priv, l3cfg := sharedTestConfig()
	llc, err := NewSharedCache(l3cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		cores  = 4
		ops    = 100_000
		region = 1 << 18
	)
	hiers := make([]*Hierarchy, cores)
	for c := range hiers {
		if hiers[c], err = NewWithSharedLLC(priv, llc); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c + 1)))
			h := hiers[c]
			const base = 0x2adf00000000
			for i := 0; i < ops; i++ {
				// Half the traffic is shared across cores, half private.
				addr := base + uint64(rng.Intn(region))*8
				if i%2 == 1 {
					addr += uint64(c+1) * (region * 16)
				}
				res := h.Access(addr, 8, rng.Intn(4) == 0)
				if res.Source < SrcL1 || res.Source > SrcDRAM {
					t.Errorf("core %d: bad source %v", c, res.Source)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	var l2Misses, dram uint64
	for _, h := range hiers {
		l2Misses += h.LevelStats(1).Misses
		dram += h.DRAMAccesses()
	}
	st := llc.Stats()
	// Every core's DRAM fill was an LLC miss, and LLC misses are exactly
	// the DRAM fills (demand path), so the global counts must agree.
	if st.Misses != dram {
		t.Errorf("LLC misses %d != DRAM fills %d", st.Misses, dram)
	}
	if dram > l2Misses {
		t.Errorf("DRAM fills %d exceed L2 misses %d", dram, l2Misses)
	}
	if dram == 0 || l2Misses == 0 {
		t.Error("degenerate run: no misses reached the shared LLC")
	}
}
