package memhier

import "fmt"

// Checkpoint support: a CacheState is a deep copy of one packed cache's
// mutable state — slab words, occupancy, signatures, LRU matrices or tick
// arrays, the LRU clock, counters and the MRU shortcut. Geometry (set
// count, associativity, strides) is deliberately absent: a restore target
// is always rebuilt from the same Config first, and restore validates the
// array lengths against it, so a snapshot can never be grafted onto a
// different hierarchy shape.

// CacheState is the serializable mutable state of one cache level (or one
// shared-cache shard).
type CacheState struct {
	Slab  []uint64
	Occ   []uint8
	Sigs  []byte
	Mats  []uint64 // nil on tick-policy levels
	Ticks []uint64 // nil on matrix-policy levels
	Tick  uint32
	Stats LevelStats

	MRUIdx   int
	MRUSet   int
	MRUWay   int
	MRULine  uint64
	MRUValid bool
}

func (c *cache) state() CacheState {
	return CacheState{
		Slab:     append([]uint64(nil), c.slab...),
		Occ:      append([]uint8(nil), c.occ...),
		Sigs:     append([]byte(nil), c.sigs...),
		Mats:     append([]uint64(nil), c.mats...),
		Ticks:    append([]uint64(nil), c.ticks...),
		Tick:     c.tick,
		Stats:    c.stats,
		MRUIdx:   c.mruIdx,
		MRUSet:   c.mruSet,
		MRUWay:   c.mruWay,
		MRULine:  c.mruLine,
		MRUValid: c.mruValid,
	}
}

func (c *cache) restore(st CacheState) error {
	if len(st.Slab) != len(c.slab) || len(st.Occ) != len(c.occ) ||
		len(st.Sigs) != len(c.sigs) || len(st.Mats) != len(c.mats) ||
		len(st.Ticks) != len(c.ticks) {
		return fmt.Errorf("memhier: snapshot geometry mismatch for level %s (slab %d/%d occ %d/%d sigs %d/%d mats %d/%d ticks %d/%d)",
			c.cfg.Name, len(st.Slab), len(c.slab), len(st.Occ), len(c.occ),
			len(st.Sigs), len(c.sigs), len(st.Mats), len(c.mats), len(st.Ticks), len(c.ticks))
	}
	copy(c.slab, st.Slab)
	copy(c.occ, st.Occ)
	copy(c.sigs, st.Sigs)
	copy(c.mats, st.Mats)
	copy(c.ticks, st.Ticks)
	c.tick = st.Tick
	c.stats = st.Stats
	c.mruIdx = st.MRUIdx
	c.mruSet = st.MRUSet
	c.mruWay = st.MRUWay
	c.mruLine = st.MRULine
	c.mruValid = st.MRUValid
	return nil
}

// HierarchyState is the serializable state of one core's private levels
// plus its DRAM attribution counters. An attached SharedCache is captured
// separately (SharedCache.State) — it belongs to the Machine, not to any
// one hierarchy.
type HierarchyState struct {
	Levels     []CacheState
	DRAM       uint64
	DRAMRemote uint64
	MRUHits    uint64
	ProbeOps   uint64
}

// State deep-copies the hierarchy's private mutable state.
func (h *Hierarchy) State() HierarchyState {
	st := HierarchyState{
		DRAM:       h.dram,
		DRAMRemote: h.dramRemote,
		MRUHits:    h.mruHits,
		ProbeOps:   h.probeOps,
	}
	for _, c := range h.levels {
		st.Levels = append(st.Levels, c.state())
	}
	return st
}

// RestoreState overwrites the hierarchy's private state from a snapshot
// taken on an identically configured hierarchy.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if len(st.Levels) != len(h.levels) {
		return fmt.Errorf("memhier: snapshot has %d private levels, hierarchy has %d", len(st.Levels), len(h.levels))
	}
	for i, c := range h.levels {
		if err := c.restore(st.Levels[i]); err != nil {
			return err
		}
	}
	h.dram = st.DRAM
	h.dramRemote = st.DRAMRemote
	h.mruHits = st.MRUHits
	h.probeOps = st.ProbeOps
	return nil
}

// SharedCacheState is the serializable state of a shared LLC: one
// CacheState per shard, in shard order.
type SharedCacheState struct {
	Shards []CacheState
}

// State deep-copies every shard. Callers must ensure no core is accessing
// the cache concurrently (checkpoints happen at instance boundaries of the
// sequential schedule, where no simulated core is mid-access).
func (s *SharedCache) State() SharedCacheState {
	st := SharedCacheState{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Shards = append(st.Shards, sh.c.state())
		sh.mu.Unlock()
	}
	return st
}

// RestoreState overwrites every shard from a snapshot of an identically
// configured shared cache.
func (s *SharedCache) RestoreState(st SharedCacheState) error {
	if len(st.Shards) != len(s.shards) {
		return fmt.Errorf("memhier: snapshot has %d shards, shared cache has %d", len(st.Shards), len(s.shards))
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.c.restore(st.Shards[i])
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
