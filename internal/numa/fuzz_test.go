package numa

import (
	"testing"
)

// FuzzPageTranslate drives the VA→node translation and the policy state
// machine with an arbitrary operation tape: interleaved first-touch fills
// from varying sockets, explicit binds and writebacks. The properties
// fuzzed for, beyond "no panics":
//
//   - translation is total (every address yields a node in range),
//   - placement is stable (re-translating an address never moves it, no
//     matter which socket asks), and
//   - the per-node page counts always sum to the number of placed pages.
func FuzzPageTranslate(f *testing.F) {
	f.Add(uint8(2), uint8(12), uint8(0), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(uint8(4), uint8(6), uint8(1), []byte{0xff, 0x00, 0x80, 0x41, 0x41})
	f.Add(uint8(1), uint8(20), uint8(1), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, sockets, pageLog, policy uint8, tape []byte) {
		cfg := Config{
			Sockets:  int(sockets%8) + 1,
			PageSize: 1 << (6 + pageLog%15), // 64 B .. 1 MiB
			Policy:   Policy(policy % 2),
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatalf("validated config rejected: %v", err)
		}
		routers := make([]*Router, p.Nodes())
		for s := range routers {
			r, err := p.Router(s)
			if err != nil {
				t.Fatal(err)
			}
			routers[s] = r
		}
		seen := map[uint64]int{} // page number → node pinned at first placement
		// Decode the tape as a stream of 8-byte-ish operations; short tails
		// just terminate. Byte 0 selects the op and the acting socket, the
		// rest builds an address.
		for i := 0; i+5 <= len(tape); i += 5 {
			op := tape[i]
			socket := int(op>>2) % p.Nodes()
			addr := uint64(tape[i+1]) | uint64(tape[i+2])<<8 |
				uint64(tape[i+3])<<17 | uint64(tape[i+4])<<29
			pn := addr >> uint(6+pageLog%15)
			switch op % 4 {
			case 0:
				remote := routers[socket].RouteFill(addr)
				node, ok := p.Lookup(addr)
				if !ok {
					t.Fatalf("filled address %#x not assigned", addr)
				}
				if remote != (node != socket) {
					t.Fatalf("fill remote=%v but home %d vs socket %d", remote, node, socket)
				}
			case 1:
				routers[socket].RouteWriteback(addr)
			case 2:
				end := addr + 1 + uint64(op)*64
				if err := p.Bind(addr, end, socket); err != nil {
					t.Fatalf("in-range bind rejected: %v", err)
				}
				// A bind legitimately moves every covered page.
				for q := pn; q <= (end-1)>>uint(6+pageLog%15); q++ {
					seen[q] = socket
				}
			case 3:
				node := p.HomeNode(addr, socket)
				if node < 0 || node >= p.Nodes() {
					t.Fatalf("HomeNode(%#x) = %d out of range", addr, node)
				}
			}
			// Stability: once placed (and absent a later bind), the page
			// never moves, regardless of the asking socket.
			if node, ok := p.Lookup(addr); ok {
				if pinned, dup := seen[pn]; dup {
					if node != pinned {
						t.Fatalf("page %d moved from %d to %d", pn, pinned, node)
					}
				} else {
					seen[pn] = node
				}
				// Re-translation from every socket agrees.
				for s := 0; s < p.Nodes(); s++ {
					if again := p.HomeNode(addr, s); again != node {
						t.Fatalf("HomeNode(%#x) from socket %d = %d, placed %d", addr, s, again, node)
					}
				}
			}
		}
		// Conservation: per-node page counts sum to the policy-placed
		// pages plus the pages covered by (non-overlapping) bind ranges.
		var total, placed uint64
		for _, st := range p.Stats() {
			total += st.Pages
		}
		placed = uint64(len(p.pages))
		for _, b := range p.binds {
			placed += b.hi - b.lo
		}
		if total != placed {
			t.Fatalf("page counts sum to %d, table accounts for %d", total, placed)
		}
	})
}
