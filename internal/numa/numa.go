// Package numa models the multi-socket memory topology of the paper's
// testbed: the Xeon E5-2680 v3 nodes of Jureca are 2-socket parts, so half
// of a node's DRAM is remote to any given core. The package provides a
// page-granular placement layer — a virtual-address→home-node translation
// under a configurable placement policy (first-touch, interleave, or
// explicit per-range binds) — plus per-node DRAM controller accounting
// (fills served locally, fills served to remote sockets, absorbed LLC
// writebacks).
//
// The memory hierarchy consumes the layer through per-socket Routers
// (memhier.DRAMRouter): on a last-level-cache miss the owning socket's
// router resolves the line's home node, records the fill at that node's
// controller, and reports whether the fill crossed the socket interconnect
// — which the hierarchy translates into the SrcDRAMRemote data source and
// the remote fill latency. A single-node placement routes every fill
// locally and is observationally identical to the flat-DRAM model.
package numa

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Policy selects how unbound pages acquire a home node.
type Policy int

const (
	// FirstTouch assigns a page to the socket of the first core whose DRAM
	// fill touches it — the Linux default, and the reason serially
	// initialized data lands entirely on the initializing thread's socket.
	FirstTouch Policy = iota
	// Interleave assigns pages round-robin by page number across all
	// nodes, the `numactl --interleave=all` placement.
	Interleave
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case Interleave:
		return "interleave"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PolicyNames lists the parseable policy spellings.
func PolicyNames() []string { return []string{"first-touch", "interleave"} }

// ParsePolicy resolves a flag spelling ("" defaults to first-touch).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "first-touch":
		return FirstTouch, nil
	case "interleave":
		return Interleave, nil
	}
	return 0, fmt.Errorf("numa: unknown placement policy %q (have %v)", s, PolicyNames())
}

// DefaultPageSize is the placement granularity: the 4 KiB base page.
const DefaultPageSize = 4096

// DefaultRemoteDRAMLatency is the default remote-socket fill cost in
// cycles: ~1.6× the 230-cycle local DRAM latency of the modelled Haswell
// parts, matching the QPI hop penalty measured on 2-socket E5 v3 systems.
const DefaultRemoteDRAMLatency = 370

// Config parameterizes a Placement.
type Config struct {
	// Sockets is the number of sockets (= memory nodes; one controller per
	// socket). 0 leaves NUMA modelling off entirely; 1 builds a routed
	// single-node placement that must be observationally identical to the
	// flat-DRAM model.
	Sockets int
	// PageSize is the placement granularity in bytes (power of two;
	// 0 selects DefaultPageSize).
	PageSize uint64
	// Policy places pages that no explicit Bind covers.
	Policy Policy
	// RemoteDRAMLatency is the remote-socket fill cost in cycles
	// (0 selects DefaultRemoteDRAMLatency). Only meaningful with >1 socket.
	RemoteDRAMLatency uint64
}

// NodeStats is one memory node's DRAM controller accounting.
type NodeStats struct {
	// FillsLocal counts line fills served to cores of this node's socket.
	FillsLocal uint64
	// FillsRemote counts line fills served across the interconnect to
	// cores of other sockets.
	FillsRemote uint64
	// Writebacks counts dirty last-level-cache evictions absorbed by this
	// node's controller.
	Writebacks uint64
	// Pages counts pages currently homed on this node (bound or touched).
	Pages uint64
}

// Placement is the page table of the NUMA layer: the VA→home-node
// translation plus per-node controller statistics. One Placement is shared
// by all sockets of a Machine. Translation runs only on LLC misses and
// LLC writebacks, but a DRAM-bound kernel makes those the common case, so
// the steady state must not re-serialize what the sharded L3 locks
// parallelize: already-placed pages translate under a read lock and the
// controller counters are atomics; only the one-time page placements
// (first touch, binds) take the write lock.
type Placement struct {
	nodes     int
	pageShift uint
	policy    Policy

	mu    sync.RWMutex
	pages map[uint64]uint8 // policy-placed pages (never inside a bind)
	binds []bindRange      // explicit binds, kept non-overlapping
	stats []nodeCounters
}

// bindRange is one explicit bind over the page-number range [lo, hi).
// Binds are stored as ranges, not materialized per page — a paper-scale
// mbind of tens of GiB is O(existing binds + already-placed pages), not
// O(range/page-size).
type bindRange struct {
	lo, hi uint64
	node   uint8
}

// nodeCounters is one node's controller accounting, atomically updated
// outside the page-table locks.
type nodeCounters struct {
	fillsLocal  atomic.Uint64
	fillsRemote atomic.Uint64
	writebacks  atomic.Uint64
	pages       atomic.Uint64
}

// New validates the configuration and builds an empty placement.
func New(cfg Config) (*Placement, error) {
	nodes := cfg.Sockets
	if nodes == 0 {
		nodes = 1
	}
	if nodes < 1 || nodes > 255 {
		return nil, fmt.Errorf("numa: %d sockets out of range 1..255", cfg.Sockets)
	}
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if bits.OnesCount64(pageSize) != 1 || pageSize < 64 {
		return nil, fmt.Errorf("numa: page size %d not a power of two >= 64", pageSize)
	}
	if cfg.Policy != FirstTouch && cfg.Policy != Interleave {
		// Reject at construction like every other Config field — an
		// out-of-range value would silently place first-touch while
		// reports label it with the bogus name.
		return nil, fmt.Errorf("numa: unknown placement policy %v", cfg.Policy)
	}
	return &Placement{
		nodes:     nodes,
		pageShift: uint(bits.TrailingZeros64(pageSize)),
		policy:    cfg.Policy,
		pages:     make(map[uint64]uint8),
		stats:     make([]nodeCounters, nodes),
	}, nil
}

// Nodes returns the number of memory nodes.
func (p *Placement) Nodes() int { return p.nodes }

// PageSize returns the placement granularity in bytes.
func (p *Placement) PageSize() uint64 { return 1 << p.pageShift }

// Policy returns the default placement policy.
func (p *Placement) Policy() Policy { return p.policy }

// bindOf returns the bind covering page pn, if any. Callers hold p.mu
// (read or write). Binds are per-object and few, so a linear scan beats
// any index.
func (p *Placement) bindOf(pn uint64) (int, bool) {
	for _, b := range p.binds {
		if pn >= b.lo && pn < b.hi {
			return int(b.node), true
		}
	}
	return 0, false
}

// homeOf resolves (and, under first-touch, assigns) the home node of page
// pn for a fill issued by a core of node toucher. Callers hold p.mu for
// writing.
func (p *Placement) homeOf(pn uint64, toucher int) int {
	if n, ok := p.bindOf(pn); ok {
		return n
	}
	if n, ok := p.pages[pn]; ok {
		return int(n)
	}
	var node int
	switch p.policy {
	case Interleave:
		node = int(pn % uint64(p.nodes))
	default: // FirstTouch
		node = toucher
	}
	p.pages[pn] = uint8(node)
	p.stats[node].pages.Add(1)
	return node
}

// translate resolves page pn, placing it for toucher only when it is
// still unplaced: the hot read path takes the read lock, the one-time
// placement upgrades to the write lock (re-checking under it — another
// socket may have placed the page in between).
func (p *Placement) translate(pn uint64, toucher int) int {
	p.mu.RLock()
	n, bound := p.bindOf(pn)
	if !bound {
		var placed uint8
		var ok bool
		if placed, ok = p.pages[pn]; ok {
			n, bound = int(placed), true
		}
	}
	p.mu.RUnlock()
	if bound {
		return n
	}
	p.mu.Lock()
	node := p.homeOf(pn, toucher)
	p.mu.Unlock()
	return node
}

// HomeNode resolves the home node of addr for a fill issued by a core of
// node toucher, assigning the page under the placement policy if it is
// still unplaced. Translation is total: every address resolves to a node.
func (p *Placement) HomeNode(addr uint64, toucher int) int {
	if toucher < 0 || toucher >= p.nodes {
		toucher = 0
	}
	return p.translate(addr>>p.pageShift, toucher)
}

// Lookup returns addr's home node without placing the page: assigned is
// false when the page has not been bound or touched yet (under Interleave
// the would-be node is still returned).
func (p *Placement) Lookup(addr uint64) (node int, assigned bool) {
	pn := addr >> p.pageShift
	p.mu.RLock()
	defer p.mu.RUnlock()
	if n, ok := p.bindOf(pn); ok {
		return n, true
	}
	if n, ok := p.pages[pn]; ok {
		return int(n), true
	}
	if p.policy == Interleave {
		return int(pn % uint64(p.nodes)), false
	}
	return 0, false
}

// Bind explicitly homes every page overlapping [lo, hi) on the given node
// — the per-object bind policy (numa_alloc_onnode / mbind). Binding
// overrides earlier placements and pre-empts the default policy for the
// covered pages.
func (p *Placement) Bind(lo, hi uint64, node int) error {
	if node < 0 || node >= p.nodes {
		return fmt.Errorf("numa: bind to node %d outside 0..%d", node, p.nodes-1)
	}
	if hi <= lo {
		return fmt.Errorf("numa: empty bind range [%#x, %#x)", lo, hi)
	}
	first := lo >> p.pageShift
	lastExcl := (hi-1)>>p.pageShift + 1 // page-number range [first, lastExcl)
	p.mu.Lock()
	defer p.mu.Unlock()
	// Carve the new range out of existing binds (the newest bind wins):
	// overlapped portions leave their old node's page count, remnants
	// split into up to two ranges. A fresh slice — splitting can append
	// two remnants per consumed bind, so filtering in place would let the
	// write index overtake unvisited elements.
	kept := make([]bindRange, 0, len(p.binds)+2)
	for _, b := range p.binds {
		oLo, oHi := max(b.lo, first), min(b.hi, lastExcl)
		if oLo >= oHi {
			kept = append(kept, b)
			continue
		}
		p.stats[b.node].pages.Add(^uint64(oHi - oLo - 1)) // -= overlap
		if b.lo < first {
			kept = append(kept, bindRange{lo: b.lo, hi: first, node: b.node})
		}
		if b.hi > lastExcl {
			kept = append(kept, bindRange{lo: lastExcl, hi: b.hi, node: b.node})
		}
	}
	p.binds = kept
	// Policy-placed pages inside the range hand ownership to the bind.
	for pn, n := range p.pages {
		if pn >= first && pn < lastExcl {
			p.stats[n].pages.Add(^uint64(0)) // -1
			delete(p.pages, pn)
		}
	}
	p.binds = append(p.binds, bindRange{lo: first, hi: lastExcl, node: uint8(node)})
	p.stats[node].pages.Add(lastExcl - first)
	return nil
}

// Stats returns a copy of the per-node controller counters.
func (p *Placement) Stats() []NodeStats {
	out := make([]NodeStats, len(p.stats))
	for i := range p.stats {
		c := &p.stats[i]
		out[i] = NodeStats{
			FillsLocal:  c.fillsLocal.Load(),
			FillsRemote: c.fillsRemote.Load(),
			Writebacks:  c.writebacks.Load(),
			Pages:       c.pages.Load(),
		}
	}
	return out
}

// PagesIn counts, per node, the assigned pages overlapping [lo, hi) — the
// per-object placement breakdown reported for registered data objects.
// Unassigned (never-touched, unbound) pages are not counted. Cost scales
// with placed pages and binds, not with the queried range.
func (p *Placement) PagesIn(lo, hi uint64) []uint64 {
	out := make([]uint64, p.nodes)
	if hi <= lo {
		return out
	}
	first := lo >> p.pageShift
	lastExcl := (hi-1)>>p.pageShift + 1
	p.mu.RLock()
	defer p.mu.RUnlock()
	for pn, n := range p.pages {
		if pn >= first && pn < lastExcl {
			out[n]++
		}
	}
	for _, b := range p.binds {
		if oLo, oHi := max(b.lo, first), min(b.hi, lastExcl); oLo < oHi {
			out[b.node] += oHi - oLo
		}
	}
	return out
}

// Router returns the given socket's view of the placement: the
// memhier.DRAMRouter its hierarchies and shared LLC attach to.
func (p *Placement) Router(socket int) (*Router, error) {
	if socket < 0 || socket >= p.nodes {
		return nil, fmt.Errorf("numa: socket %d outside 0..%d", socket, p.nodes-1)
	}
	return &Router{p: p, socket: socket}, nil
}

// Router is one socket's port into the placement. It implements
// memhier.DRAMRouter: the socket's caches call RouteFill on every DRAM
// line fill and RouteWriteback on every dirty LLC eviction.
type Router struct {
	p      *Placement
	socket int
}

// Socket returns the owning socket index.
func (r *Router) Socket() int { return r.socket }

// RouteFill resolves the line's home node (placing the page on first
// touch), records the fill at that node's controller, and reports whether
// the fill is remote to the router's socket.
func (r *Router) RouteFill(lineAddr uint64) bool {
	p := r.p
	node := p.translate(lineAddr>>p.pageShift, r.socket)
	if node == r.socket {
		p.stats[node].fillsLocal.Add(1)
		return false
	}
	p.stats[node].fillsRemote.Add(1)
	return true
}

// RouteWriteback attributes a dirty LLC eviction to the evicted line's
// home controller. The evicted page is usually already placed (a demand
// fill preceded the line's caching), but not always: the next-line
// prefetcher installs lines without consulting the page table, and a
// store can dirty such a line before any demand fill touches its page —
// the translation therefore stays total, placing the page under the
// policy with the evicting socket as the toucher.
func (r *Router) RouteWriteback(lineAddr uint64) {
	p := r.p
	node := p.translate(lineAddr>>p.pageShift, r.socket)
	p.stats[node].writebacks.Add(1)
}

// RemotePossible reports whether RouteFill can ever return true — false
// for a single-node placement, which keeps single-socket stacks emitting
// the exact pre-NUMA trace format (no remote source label, no remote
// counter).
func (r *Router) RemotePossible() bool { return r.p.nodes > 1 }
