package numa

import (
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Placement {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Sockets: -1},
		{Sockets: 256},
		{Sockets: 2, PageSize: 48},
		{Sockets: 2, PageSize: 4096 + 4096/2},
		{Sockets: 2, PageSize: 32},
		{Sockets: 2, Policy: Policy(2)},
		{Sockets: 2, Policy: Policy(-1)},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
	p := mustNew(t, Config{})
	if p.Nodes() != 1 || p.PageSize() != DefaultPageSize {
		t.Errorf("defaults: nodes=%d pagesize=%d", p.Nodes(), p.PageSize())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		pol, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if pol.String() != name {
			t.Errorf("round trip: %q -> %v", name, pol)
		}
	}
	if pol, err := ParsePolicy(""); err != nil || pol != FirstTouch {
		t.Errorf("empty spelling: %v, %v", pol, err)
	}
	if _, err := ParsePolicy("striped"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestFirstTouch pins the defining property: the first toucher owns the
// page, and later touches from other sockets do not move it.
func TestFirstTouch(t *testing.T) {
	p := mustNew(t, Config{Sockets: 2, Policy: FirstTouch})
	const page = uint64(4096)
	if n := p.HomeNode(3*page+100, 1); n != 1 {
		t.Fatalf("first touch by socket 1 placed on %d", n)
	}
	if n := p.HomeNode(3*page+4000, 0); n != 1 {
		t.Fatalf("second touch moved the page to %d", n)
	}
	// A different page first-touched by socket 0 lands on 0.
	if n := p.HomeNode(9*page, 0); n != 0 {
		t.Fatalf("socket 0 first touch placed on %d", n)
	}
	if n, ok := p.Lookup(3 * page); !ok || n != 1 {
		t.Errorf("Lookup(placed page) = %d, %v", n, ok)
	}
	if _, ok := p.Lookup(99 * page); ok {
		t.Error("Lookup of untouched page reported assigned")
	}
}

// TestInterleave pins round-robin page striping independent of the toucher.
func TestInterleave(t *testing.T) {
	p := mustNew(t, Config{Sockets: 4, Policy: Interleave})
	ps := p.PageSize()
	for pn := uint64(0); pn < 16; pn++ {
		want := int(pn % 4)
		if n := p.HomeNode(pn*ps+7, 3); n != want {
			t.Fatalf("page %d placed on %d, want %d", pn, n, want)
		}
	}
	// Lookup of an untouched interleaved page still resolves the node.
	if n, ok := p.Lookup(101 * ps); ok || n != int(101%4) {
		t.Errorf("interleave Lookup = %d, assigned=%v", n, ok)
	}
}

func TestBind(t *testing.T) {
	p := mustNew(t, Config{Sockets: 2, Policy: Interleave})
	ps := p.PageSize()
	// Bind three pages (a partial first and last page) to node 1.
	if err := p.Bind(10*ps+8, 12*ps+16, 1); err != nil {
		t.Fatal(err)
	}
	for pn := uint64(10); pn <= 12; pn++ {
		if n := p.HomeNode(pn*ps, 0); n != 1 {
			t.Fatalf("bound page %d resolved to %d", pn, n)
		}
	}
	// Binding overrides an earlier placement and moves the page count.
	if err := p.Bind(10*ps, 11*ps, 0); err != nil {
		t.Fatal(err)
	}
	if n := p.HomeNode(10*ps, 1); n != 0 {
		t.Fatalf("re-bound page resolved to %d", n)
	}
	st := p.Stats()
	if st[0].Pages != 1 || st[1].Pages != 2 {
		t.Errorf("page counts after rebind: %+v", st)
	}
	if err := p.Bind(0, 0, 0); err == nil {
		t.Error("empty bind accepted")
	}
	if err := p.Bind(0, ps, 5); err == nil {
		t.Error("bind to nonexistent node accepted")
	}
}

func TestRouterFillAndWriteback(t *testing.T) {
	p := mustNew(t, Config{Sockets: 2, Policy: FirstTouch})
	r0, err := p.Router(0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Router(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Router(2); err == nil {
		t.Error("router for nonexistent socket accepted")
	}
	if !r0.RemotePossible() || !r1.RemotePossible() {
		t.Error("2-node placement must report remote possible")
	}
	ps := p.PageSize()
	// Socket 0 first-touches page 0: local fill.
	if remote := r0.RouteFill(0); remote {
		t.Error("first touch by owner reported remote")
	}
	// Socket 1 fills from the same page: remote.
	if remote := r1.RouteFill(64); !remote {
		t.Error("cross-socket fill reported local")
	}
	// Socket 1 first-touches page 1, then socket 0 writes it back.
	if remote := r1.RouteFill(ps); remote {
		t.Error("socket 1 first touch reported remote")
	}
	r0.RouteWriteback(ps + 128)
	st := p.Stats()
	if st[0].FillsLocal != 1 || st[0].FillsRemote != 1 {
		t.Errorf("node 0 fills: %+v", st[0])
	}
	if st[1].FillsLocal != 1 || st[1].Writebacks != 1 {
		t.Errorf("node 1 stats: %+v", st[1])
	}
	if st[0].Pages != 1 || st[1].Pages != 1 {
		t.Errorf("page counts: %+v", st)
	}
}

func TestSingleNodeNeverRemote(t *testing.T) {
	p := mustNew(t, Config{Sockets: 1, Policy: Interleave})
	r, err := p.Router(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.RemotePossible() {
		t.Error("1-node placement reports remote possible")
	}
	for addr := uint64(0); addr < 1<<20; addr += 4096 {
		if r.RouteFill(addr) {
			t.Fatalf("1-node fill of %#x reported remote", addr)
		}
	}
}

func TestPagesIn(t *testing.T) {
	p := mustNew(t, Config{Sockets: 2, Policy: Interleave})
	ps := p.PageSize()
	r0, _ := p.Router(0)
	// Touch pages 0..5 through fills.
	for pn := uint64(0); pn < 6; pn++ {
		r0.RouteFill(pn * ps)
	}
	got := p.PagesIn(0, 6*ps)
	if got[0] != 3 || got[1] != 3 {
		t.Errorf("PagesIn over 6 interleaved pages: %v", got)
	}
	// Half-open range [ps, 2*ps) covers exactly page 1.
	got = p.PagesIn(ps, 2*ps)
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("PagesIn over one page: %v", got)
	}
	// Untouched pages beyond the fills are not counted.
	got = p.PagesIn(100*ps, 104*ps)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("PagesIn over untouched pages: %v", got)
	}
	if got := p.PagesIn(8, 8); got[0] != 0 || got[1] != 0 {
		t.Errorf("empty range: %v", got)
	}
}
