package numa

import (
	"fmt"
	"sort"
)

// Checkpoint support. A Placement's geometry (nodes, page size, policy) is
// config-derived; what the run mutates is the page table (first-touch and
// interleave placements), the bind list, and the per-node controller
// counters. Pages are serialized sorted by page number so identical
// placements produce identical snapshots regardless of map iteration order.

// PageHome is one policy-placed page.
type PageHome struct {
	Page uint64
	Node uint8
}

// BindState is one explicit bind range (page numbers, [Lo, Hi)).
type BindState struct {
	Lo, Hi uint64
	Node   uint8
}

// PlacementState is the serializable mutable state of a Placement.
type PlacementState struct {
	Pages []PageHome
	Binds []BindState
	Stats []NodeStats
}

// State deep-copies the placement's mutable state. Callers must ensure no
// core is filling concurrently (checkpoints happen at instance boundaries
// of the sequential schedule).
func (p *Placement) State() PlacementState {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := PlacementState{
		Pages: make([]PageHome, 0, len(p.pages)),
		Binds: make([]BindState, 0, len(p.binds)),
		Stats: p.Stats(),
	}
	for pn, n := range p.pages {
		st.Pages = append(st.Pages, PageHome{Page: pn, Node: n})
	}
	sort.Slice(st.Pages, func(i, j int) bool { return st.Pages[i].Page < st.Pages[j].Page })
	for _, b := range p.binds {
		st.Binds = append(st.Binds, BindState{Lo: b.lo, Hi: b.hi, Node: b.node})
	}
	return st
}

// RestoreState overwrites the mutable state of a placement built from the
// same Config.
func (p *Placement) RestoreState(st PlacementState) error {
	if len(st.Stats) != p.nodes {
		return fmt.Errorf("numa: snapshot has %d nodes, placement has %d", len(st.Stats), p.nodes)
	}
	for _, ph := range st.Pages {
		if int(ph.Node) >= p.nodes {
			return fmt.Errorf("numa: snapshot places page %#x on node %d of %d", ph.Page, ph.Node, p.nodes)
		}
	}
	for _, b := range st.Binds {
		if b.Hi <= b.Lo || int(b.Node) >= p.nodes {
			return fmt.Errorf("numa: snapshot bind [%#x, %#x) node %d invalid", b.Lo, b.Hi, b.Node)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pages = make(map[uint64]uint8, len(st.Pages))
	for _, ph := range st.Pages {
		p.pages[ph.Page] = ph.Node
	}
	p.binds = p.binds[:0]
	for _, b := range st.Binds {
		p.binds = append(p.binds, bindRange{lo: b.Lo, hi: b.Hi, node: b.Node})
	}
	for i := range p.stats {
		c := &p.stats[i]
		c.fillsLocal.Store(st.Stats[i].FillsLocal)
		c.fillsRemote.Store(st.Stats[i].FillsRemote)
		c.writebacks.Store(st.Stats[i].Writebacks)
		c.pages.Store(st.Stats[i].Pages)
	}
	return nil
}
