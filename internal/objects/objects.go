// Package objects implements the data-object registry of the monitoring
// extensions: the table that matches sampled memory addresses to the data
// object owning them. Objects come from three sources, as in the paper:
//
//   - static data objects discovered by scanning the binary, identified by
//     their symbol name;
//   - dynamically allocated objects captured by instrumenting malloc and
//     friends, identified by their allocation call stack;
//   - allocation groups: manually delimited runs of many small consecutive
//     allocations wrapped into a single logical object spanning the first
//     to the last address — the workaround the paper applies to HPCG, whose
//     per-row allocations are hundreds of bytes each and would otherwise
//     fall below the tracking threshold and bloat the trace.
//
// The registry also performs per-object reference accounting (loads,
// stores, latency, data-source mix), which feeds the report's object table
// (the "124_GenerateProblem_ref.cpp|617 MB" annotations of Figure 1).
package objects

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/interval"
	"repro/internal/memhier"
	"repro/internal/prog"
)

// Kind classifies a data object.
type Kind int

const (
	// KindStatic is a named symbol from the binary's data segment.
	KindStatic Kind = iota
	// KindDynamic is a tracked individual heap allocation.
	KindDynamic
	// KindGroup is a manually wrapped group of small allocations.
	KindGroup
)

func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindDynamic:
		return "dynamic"
	case KindGroup:
		return "group"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Object is one resolvable data object with its reference accounting.
type Object struct {
	// ID is a dense registry-assigned identifier.
	ID int
	// Kind classifies the object's origin.
	Kind Kind
	// Name identifies the object: the symbol name (static), the allocation
	// site (dynamic), or the group label.
	Name string
	// StackID is the allocation call stack (dynamic objects; 0 otherwise).
	StackID uint32
	// Range is the address span [Lo, Hi). For groups it covers first to
	// last wrapped address, exactly like the paper's manual wrapping.
	Range interval.Interval
	// Bytes is the allocated payload: for groups, the sum of member sizes
	// (Range.Len() may exceed it due to allocator rounding).
	Bytes uint64
	// Members counts the allocations absorbed (1 unless a group).
	Members uint64
	// Live reports whether the object is still allocated.
	Live bool

	// Reference accounting, filled by Record.
	Refs       uint64
	Loads      uint64
	Stores     uint64
	LatencySum uint64
	Sources    [memhier.NumSources]uint64
}

// MeanLatency returns the average sampled access cost (0 when unreferenced).
func (o *Object) MeanLatency() float64 {
	if o.Refs == 0 {
		return 0
	}
	return float64(o.LatencySum) / float64(o.Refs)
}

// Config parameterizes the registry.
type Config struct {
	// MinTrackSize is the tracking threshold: individual dynamic
	// allocations smaller than this are not registered (the paper's
	// "allocations below the threshold"). Groups absorb allocations of any
	// size. 0 tracks everything.
	MinTrackSize uint64
	// Namer renders a dynamic allocation's identity from its call stack id;
	// defaults to "alloc_<stackID>".
	Namer func(stackID uint32) string
}

// Stats aggregates registry activity.
type Stats struct {
	// AllocsSeen counts allocation events observed.
	AllocsSeen uint64
	// AllocsTracked counts allocations registered individually.
	AllocsTracked uint64
	// AllocsGrouped counts allocations absorbed into groups.
	AllocsGrouped uint64
	// AllocsBelowThreshold counts allocations skipped by MinTrackSize.
	AllocsBelowThreshold uint64
	// Resolved and Unresolved count Record outcomes.
	Resolved   uint64
	Unresolved uint64
}

// Registry is the object table. Registration (allocation hooks, groups,
// binary scans) is single-threaded — it happens during problem setup —
// but one registry may be shared by the monitors of a multi-core Machine,
// whose sampling paths call Record/Resolve concurrently; those paths are
// serialized by an internal mutex. Samples are rare (one per PEBS period),
// so the lock is uncontended and never touches the non-sampled fast path.
type Registry struct {
	cfg    Config
	mu     sync.Mutex
	tree   interval.Tree[*Object]
	objs   []*Object
	byAddr map[uint64]*Object // live dynamic objects by base address
	group  *Object            // open group, if any
	stats  Stats
}

// NewRegistry creates an empty registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.Namer == nil {
		cfg.Namer = func(id uint32) string { return fmt.Sprintf("alloc_%d", id) }
	}
	return &Registry{cfg: cfg, byAddr: make(map[uint64]*Object)}
}

// Stats returns a copy of the counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

func (r *Registry) add(o *Object) *Object {
	o.ID = len(r.objs)
	r.objs = append(r.objs, o)
	// Insert errors only on empty ranges, which the callers exclude.
	if err := r.tree.Insert(o.Range, o); err != nil {
		panic(fmt.Sprintf("objects: inserting %v: %v", o.Range, err))
	}
	return o
}

// AddStatic registers a static data object by name.
func (r *Registry) AddStatic(obj prog.StaticObject) (*Object, error) {
	if obj.Size == 0 {
		return nil, fmt.Errorf("objects: static object %q has zero size", obj.Name)
	}
	o := &Object{
		Kind:    KindStatic,
		Name:    obj.Name,
		Range:   interval.Interval{Lo: obj.Addr, Hi: obj.Addr + obj.Size},
		Bytes:   obj.Size,
		Members: 1,
		Live:    true,
	}
	return r.add(o), nil
}

// ScanBinary registers every static data object of the binary, as Extrae's
// binary scan does at startup.
func (r *Registry) ScanBinary(b *prog.Binary) error {
	for _, s := range b.StaticObjects() {
		if _, err := r.AddStatic(s); err != nil {
			return err
		}
	}
	return nil
}

// BeginGroup opens a manual allocation group. Until EndGroup, every
// allocation is absorbed into a single object named name. Groups model the
// paper's manual wrapping of the first and last addresses of a run of small
// allocations. Only one group may be open at a time.
func (r *Registry) BeginGroup(name string) error {
	if r.group != nil {
		return fmt.Errorf("objects: group %q already open", r.group.Name)
	}
	r.group = &Object{Kind: KindGroup, Name: name, Live: true}
	return nil
}

// EndGroup closes the open group and registers its wrapped range.
func (r *Registry) EndGroup() (*Object, error) {
	if r.group == nil {
		return nil, fmt.Errorf("objects: no group open")
	}
	g := r.group
	r.group = nil
	if g.Members == 0 {
		return nil, fmt.Errorf("objects: group %q absorbed no allocations", g.Name)
	}
	return r.add(g), nil
}

// OnAlloc handles one allocation event (wire it to prog.Hooks.OnAlloc).
func (r *Registry) OnAlloc(info prog.AllocInfo) {
	r.stats.AllocsSeen++
	if r.group != nil {
		g := r.group
		if g.Members == 0 || info.Addr < g.Range.Lo {
			g.Range.Lo = info.Addr
		}
		if end := info.Addr + info.Size; end > g.Range.Hi {
			g.Range.Hi = end
		}
		g.Bytes += info.Size
		g.Members++
		if g.StackID == 0 {
			g.StackID = info.StackID
		}
		r.stats.AllocsGrouped++
		return
	}
	if r.cfg.MinTrackSize > 0 && info.Size < r.cfg.MinTrackSize {
		r.stats.AllocsBelowThreshold++
		return
	}
	o := &Object{
		Kind:    KindDynamic,
		Name:    r.cfg.Namer(info.StackID),
		StackID: info.StackID,
		Range:   interval.Interval{Lo: info.Addr, Hi: info.Addr + info.Size},
		Bytes:   info.Size,
		Members: 1,
		Live:    true,
	}
	r.add(o)
	r.byAddr[info.Addr] = o
	r.stats.AllocsTracked++
}

// OnFree handles one free event (wire it to prog.Hooks.OnFree). Freed
// dynamic objects are marked dead and removed from address resolution but
// keep their accumulated accounting; group members are never individually
// freed in the modelled workloads, so groups stay live.
func (r *Registry) OnFree(info prog.AllocInfo) {
	o, ok := r.byAddr[info.Addr]
	if !ok {
		return
	}
	delete(r.byAddr, info.Addr)
	o.Live = false
	// Remove from the tree so stale ranges cannot shadow reused addresses.
	if err := r.tree.Delete(o.Range); err != nil {
		panic(fmt.Sprintf("objects: deleting %v: %v", o.Range, err))
	}
}

// Resolve finds the object containing addr.
func (r *Registry) Resolve(addr uint64) (*Object, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, o, ok := r.tree.Stab(addr)
	return o, ok
}

// Record resolves addr and accumulates reference accounting. It returns the
// object, or ok=false when the address belongs to no tracked object (the
// unresolved case that dominated the paper's preliminary HPCG analysis).
// Safe for concurrent use by several monitors sharing the registry.
func (r *Registry) Record(addr uint64, latency uint64, store bool, src memhier.DataSource) (*Object, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, o, ok := r.tree.Stab(addr)
	if !ok {
		r.stats.Unresolved++
		return nil, false
	}
	r.stats.Resolved++
	o.Refs++
	if store {
		o.Stores++
	} else {
		o.Loads++
	}
	o.LatencySum += latency
	if src >= 0 && int(src) < len(o.Sources) {
		o.Sources[src]++
	}
	return o, true
}

// ResolutionRate returns Resolved/(Resolved+Unresolved), the headline metric
// of the paper's grouping experiment (1 when no references recorded).
func (r *Registry) ResolutionRate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.stats.Resolved + r.stats.Unresolved
	if total == 0 {
		return 1
	}
	return float64(r.stats.Resolved) / float64(total)
}

// Objects returns all registered objects in registration order.
func (r *Registry) Objects() []*Object { return r.objs }

// TopByRefs returns the n most referenced objects (all if n <= 0 or larger
// than the table).
func (r *Registry) TopByRefs(n int) []*Object {
	out := make([]*Object, len(r.objs))
	copy(out, r.objs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Refs > out[j].Refs })
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Label renders the paper-style object annotation "name|size MB".
func (o *Object) Label() string {
	mb := float64(o.Bytes) / (1 << 20)
	switch {
	case mb >= 1:
		return fmt.Sprintf("%s|%.0f MB", o.Name, mb)
	case o.Bytes >= 1<<10:
		return fmt.Sprintf("%s|%.0f KB", o.Name, float64(o.Bytes)/(1<<10))
	default:
		return fmt.Sprintf("%s|%d B", o.Name, o.Bytes)
	}
}
