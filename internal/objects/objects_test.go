package objects

import (
	"strings"
	"testing"

	"repro/internal/memhier"
	"repro/internal/prog"
)

func TestKindString(t *testing.T) {
	if KindStatic.String() != "static" || KindDynamic.String() != "dynamic" ||
		KindGroup.String() != "group" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name")
	}
}

func TestAddStaticAndResolve(t *testing.T) {
	r := NewRegistry(Config{})
	o, err := r.AddStatic(prog.StaticObject{Name: "table", Addr: 0x600000, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindStatic || o.Name != "table" || !o.Live {
		t.Errorf("object = %+v", o)
	}
	got, ok := r.Resolve(0x600800)
	if !ok || got != o {
		t.Error("Resolve failed")
	}
	if _, ok := r.Resolve(0x700000); ok {
		t.Error("Resolve false positive")
	}
	if _, err := r.AddStatic(prog.StaticObject{Name: "z", Size: 0}); err == nil {
		t.Error("zero-size static accepted")
	}
}

func TestScanBinary(t *testing.T) {
	b := prog.NewBinary()
	b.AddStaticData("a", 100)
	b.AddStaticData("b", 200)
	r := NewRegistry(Config{})
	if err := r.ScanBinary(b); err != nil {
		t.Fatal(err)
	}
	if len(r.Objects()) != 2 {
		t.Errorf("scanned %d objects", len(r.Objects()))
	}
}

func TestDynamicAllocTracking(t *testing.T) {
	r := NewRegistry(Config{MinTrackSize: 1024,
		Namer: func(id uint32) string { return "site" }})
	// Below threshold: skipped.
	r.OnAlloc(prog.AllocInfo{Addr: 0x1000, Size: 100, StackID: 1})
	if _, ok := r.Resolve(0x1000); ok {
		t.Error("below-threshold allocation tracked")
	}
	// At/above threshold: tracked.
	r.OnAlloc(prog.AllocInfo{Addr: 0x2000, Size: 4096, StackID: 2})
	o, ok := r.Resolve(0x2100)
	if !ok || o.Kind != KindDynamic || o.Name != "site" || o.StackID != 2 {
		t.Fatalf("tracked object = %+v, %v", o, ok)
	}
	st := r.Stats()
	if st.AllocsSeen != 2 || st.AllocsTracked != 1 || st.AllocsBelowThreshold != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFreeRemovesResolution(t *testing.T) {
	r := NewRegistry(Config{})
	info := prog.AllocInfo{Addr: 0x2000, Size: 64, StackID: 1}
	r.OnAlloc(info)
	o, _ := r.Resolve(0x2000)
	r.OnFree(info)
	if _, ok := r.Resolve(0x2000); ok {
		t.Error("freed object still resolvable")
	}
	if o.Live {
		t.Error("freed object still live")
	}
	// Unknown free is ignored.
	r.OnFree(prog.AllocInfo{Addr: 0x9999, Size: 1})
	// Accounting survives the free.
	if len(r.Objects()) != 1 {
		t.Error("object history lost")
	}
}

func TestGroupAbsorbsSmallAllocations(t *testing.T) {
	// The paper's scenario: many consecutive small allocations below the
	// threshold, wrapped into one group.
	r := NewRegistry(Config{MinTrackSize: 1024})
	if err := r.BeginGroup("124_GenerateProblem_ref.cpp"); err != nil {
		t.Fatal(err)
	}
	base := uint64(0x10000)
	var total uint64
	for i := uint64(0); i < 100; i++ {
		size := uint64(216) // well below threshold
		r.OnAlloc(prog.AllocInfo{Addr: base, Size: size, StackID: 9})
		base += 224
		total += size
	}
	g, err := r.EndGroup()
	if err != nil {
		t.Fatal(err)
	}
	if g.Members != 100 || g.Bytes != total {
		t.Errorf("group members/bytes = %d/%d", g.Members, g.Bytes)
	}
	if g.Range.Lo != 0x10000 || g.Range.Hi != 0x10000+99*224+216 {
		t.Errorf("group range = %v", g.Range)
	}
	// Every member address resolves to the group, including allocator
	// padding between members (first-to-last wrapping).
	for _, a := range []uint64{0x10000, 0x10000 + 50*224 + 10, g.Range.Hi - 1} {
		o, ok := r.Resolve(a)
		if !ok || o != g {
			t.Errorf("Resolve(%#x) missed the group", a)
		}
	}
	if r.Stats().AllocsGrouped != 100 {
		t.Errorf("AllocsGrouped = %d", r.Stats().AllocsGrouped)
	}
}

func TestGroupErrors(t *testing.T) {
	r := NewRegistry(Config{})
	if _, err := r.EndGroup(); err == nil {
		t.Error("EndGroup without BeginGroup accepted")
	}
	r.BeginGroup("g")
	if err := r.BeginGroup("h"); err == nil {
		t.Error("nested group accepted")
	}
	if _, err := r.EndGroup(); err == nil {
		t.Error("empty group accepted")
	}
	// After the failed EndGroup the group is closed.
	if err := r.BeginGroup("i"); err != nil {
		t.Errorf("BeginGroup after empty group: %v", err)
	}
}

func TestRecordAccounting(t *testing.T) {
	r := NewRegistry(Config{})
	r.OnAlloc(prog.AllocInfo{Addr: 0x1000, Size: 4096, StackID: 1})
	r.Record(0x1100, 230, false, memhier.SrcDRAM)
	r.Record(0x1200, 4, true, memhier.SrcL1)
	o, ok := r.Record(0x1300, 36, false, memhier.SrcL3)
	if !ok {
		t.Fatal("Record failed to resolve")
	}
	if o.Refs != 3 || o.Loads != 2 || o.Stores != 1 {
		t.Errorf("refs/loads/stores = %d/%d/%d", o.Refs, o.Loads, o.Stores)
	}
	if o.LatencySum != 270 {
		t.Errorf("latency sum = %d", o.LatencySum)
	}
	if o.Sources[memhier.SrcDRAM] != 1 || o.Sources[memhier.SrcL1] != 1 || o.Sources[memhier.SrcL3] != 1 {
		t.Errorf("sources = %v", o.Sources)
	}
	if got := o.MeanLatency(); got != 90 {
		t.Errorf("MeanLatency = %g", got)
	}
	// Unresolved reference.
	if _, ok := r.Record(0xdead0000, 1, false, memhier.SrcL1); ok {
		t.Error("unresolved Record returned ok")
	}
	if rate := r.ResolutionRate(); rate != 0.75 {
		t.Errorf("ResolutionRate = %g, want 0.75", rate)
	}
}

func TestResolutionRateEmpty(t *testing.T) {
	r := NewRegistry(Config{})
	if r.ResolutionRate() != 1 {
		t.Error("empty registry rate should be 1")
	}
	var o Object
	if o.MeanLatency() != 0 {
		t.Error("unreferenced MeanLatency should be 0")
	}
}

func TestTopByRefs(t *testing.T) {
	r := NewRegistry(Config{})
	r.OnAlloc(prog.AllocInfo{Addr: 0x1000, Size: 64, StackID: 1})
	r.OnAlloc(prog.AllocInfo{Addr: 0x2000, Size: 64, StackID: 2})
	r.OnAlloc(prog.AllocInfo{Addr: 0x3000, Size: 64, StackID: 3})
	for i := 0; i < 5; i++ {
		r.Record(0x2000, 1, false, memhier.SrcL1)
	}
	r.Record(0x3000, 1, false, memhier.SrcL1)
	top := r.TopByRefs(2)
	if len(top) != 2 || top[0].Range.Lo != 0x2000 || top[1].Range.Lo != 0x3000 {
		t.Errorf("TopByRefs = %+v", top)
	}
	if all := r.TopByRefs(0); len(all) != 3 {
		t.Errorf("TopByRefs(0) len = %d", len(all))
	}
}

func TestDefaultNamer(t *testing.T) {
	r := NewRegistry(Config{})
	r.OnAlloc(prog.AllocInfo{Addr: 0x1000, Size: 64, StackID: 42})
	o, _ := r.Resolve(0x1000)
	if o.Name != "alloc_42" {
		t.Errorf("default name = %q", o.Name)
	}
}

func TestLabel(t *testing.T) {
	big := &Object{Name: "124_GenerateProblem_ref.cpp", Bytes: 617 << 20}
	if got := big.Label(); got != "124_GenerateProblem_ref.cpp|617 MB" {
		t.Errorf("Label = %q", got)
	}
	mid := &Object{Name: "x", Bytes: 4 << 10}
	if got := mid.Label(); got != "x|4 KB" {
		t.Errorf("Label = %q", got)
	}
	small := &Object{Name: "y", Bytes: 17}
	if got := small.Label(); got != "y|17 B" {
		t.Errorf("Label = %q", got)
	}
}

func TestEndToEndWithAddressSpace(t *testing.T) {
	// Wire a real address space's hooks to the registry, as the monitor does.
	as := prog.NewAddressSpace(0x7f0000000000)
	r := NewRegistry(Config{MinTrackSize: 512})
	as.SetHooks(prog.Hooks{OnAlloc: r.OnAlloc, OnFree: r.OnFree})

	big, _ := as.Alloc(1<<20, 1)
	r.BeginGroup("rows")
	for i := 0; i < 50; i++ {
		as.Alloc(216, 2)
	}
	g, err := r.EndGroup()
	if err != nil {
		t.Fatal(err)
	}
	o, ok := r.Resolve(big + 100)
	if !ok || o.Kind != KindDynamic {
		t.Error("big allocation not resolved")
	}
	if g.Members != 50 {
		t.Errorf("group members = %d", g.Members)
	}
	// A small allocation outside any group is invisible.
	small, _ := as.Alloc(64, 3)
	if _, ok := r.Resolve(small); ok {
		t.Error("small un-grouped allocation resolved")
	}
	// Realloc of the big object: moves, old range dies, new resolves.
	big2, _ := as.Realloc(big, 2<<20, 1)
	if _, ok := r.Resolve(big + 100); ok && big2 != big {
		t.Error("stale range still resolvable after realloc move")
	}
	if _, ok := r.Resolve(big2 + 100); !ok {
		t.Error("moved object unresolvable")
	}
	if !strings.Contains(g.Label(), "rows|") {
		t.Errorf("group label = %q", g.Label())
	}
}
