package objects

import (
	"fmt"

	"repro/internal/memhier"
)

// Checkpoint support. Registration is deterministic — rebuilt from the
// binary scan, the allocation hooks and the grouping calls of the replayed
// setup — so the snapshot carries only what sampling mutates at run time:
// the per-object reference accounting (in registration order) and the
// registry statistics.

// ObjectCounts is the sampled reference accounting of one object.
type ObjectCounts struct {
	Refs       uint64
	Loads      uint64
	Stores     uint64
	LatencySum uint64
	Sources    [memhier.NumSources]uint64
}

// RegistryState is the serializable run-time state of a registry.
type RegistryState struct {
	Counts []ObjectCounts // registration order
	Stats  Stats
}

// State copies the run-time accounting of every registered object.
func (r *Registry) State() RegistryState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RegistryState{Counts: make([]ObjectCounts, len(r.objs)), Stats: r.stats}
	for i, o := range r.objs {
		st.Counts[i] = ObjectCounts{
			Refs:       o.Refs,
			Loads:      o.Loads,
			Stores:     o.Stores,
			LatencySum: o.LatencySum,
			Sources:    o.Sources,
		}
	}
	return st
}

// RestoreState overwrites the run-time accounting of a registry rebuilt by
// an identical setup (same object count in the same order).
func (r *Registry) RestoreState(st RegistryState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(st.Counts) != len(r.objs) {
		return fmt.Errorf("objects: snapshot has %d objects, rebuilt registry has %d", len(st.Counts), len(r.objs))
	}
	for i, o := range r.objs {
		c := st.Counts[i]
		o.Refs = c.Refs
		o.Loads = c.Loads
		o.Stores = c.Stores
		o.LatencySum = c.LatencySum
		o.Sources = c.Sources
	}
	r.stats = st.Stats
	return nil
}
