package paraver_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/pebs"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// These goldens pin the PRV/PCF trace emission byte-exactly — the
// multi-thread output format introduced with the Machine is an interchange
// surface (Paraver, cmd/folding, cmd/memview all parse it), so format
// drift must be a deliberate, reviewed diff. Refresh with
// `go test ./internal/paraver -update`.

var update = flag.Bool("update", false, "rewrite the golden trace files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d vs %d bytes);\ngot:\n%s", name, len(got), len(want), got)
	}
}

// prvCase is one synthetic record stream with its writer geometry.
type prvCase struct {
	name     string
	nTasks   int
	nThreads int
	dur      uint64
	records  []trace.Record
}

func prvCases() []prvCase {
	sample := []trace.TypeValue{
		{Type: trace.TypeSampleAddr, Value: 0x2adf00001040},
		{Type: trace.TypeSampleLatency, Value: 230},
		{Type: trace.TypeSampleSource, Value: 3},
		{Type: trace.TypeSampleStore, Value: 0},
		{Type: trace.TypeSampleIP, Value: 0x400404},
		{Type: trace.TypeSampleStack, Value: 1},
		{Type: trace.TypeSampleSize, Value: 8},
		{Type: trace.TypeCounterBase, Value: 1500},
		{Type: trace.TypeCounterBase + 1, Value: 4200},
	}
	return []prvCase{
		{
			name: "single_thread", nTasks: 1, nThreads: 1, dur: 100,
			records: []trace.Record{
				{TimeNs: 0, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 5}}},
				{TimeNs: 40, Task: 1, Thread: 1, Pairs: sample},
				{TimeNs: 100, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 0}}},
			},
		},
		{
			// Two threads interleaved, with a same-timestamp collision (the
			// merge orders by task then thread) and an allocation record.
			name: "two_threads", nTasks: 1, nThreads: 2, dur: 120,
			records: trace.Merge(
				[]trace.Record{
					{TimeNs: 0, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 5}}},
					{TimeNs: 30, Task: 1, Thread: 1, Pairs: sample},
					{TimeNs: 90, Task: 1, Thread: 1, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 0}}},
				},
				[]trace.Record{
					{TimeNs: 0, Task: 1, Thread: 2, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 5}}},
					{TimeNs: 30, Task: 1, Thread: 2, Pairs: []trace.TypeValue{
						{Type: trace.TypeAllocAddr, Value: 0x2adf00002000},
						{Type: trace.TypeAllocSize, Value: 65536},
						{Type: trace.TypeAllocStack, Value: 2},
					}},
					{TimeNs: 120, Task: 1, Thread: 2, Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: 0}}},
				},
			),
		},
	}
}

// TestPRVGolden pins the PRV text emission for hand-built streams.
func TestPRVGolden(t *testing.T) {
	for _, tc := range prvCases() {
		t.Run(tc.name, func(t *testing.T) {
			var prv bytes.Buffer
			w, err := trace.NewWriter(&prv, tc.nTasks, tc.nThreads, tc.dur)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range tc.records {
				if err := w.Write(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name+".prv.golden", prv.Bytes())
		})
	}
}

// TestPCFGolden pins the PCF label emission (type and value tables, sorted
// sections).
func TestPCFGolden(t *testing.T) {
	l := trace.NewLabels()
	l.SetType(trace.TypeRegion, "User function")
	l.SetValue(trace.TypeRegion, 0, "End")
	l.SetValue(trace.TypeRegion, 5, "stream_triad")
	l.SetType(trace.TypeSampleAddr, "Sampled address")
	l.SetType(trace.TypeSampleSource, "Sample data source")
	l.SetValue(trace.TypeSampleSource, 0, "L1")
	l.SetValue(trace.TypeSampleSource, 3, "DRAM")
	var pcf bytes.Buffer
	if err := l.WritePCF(&pcf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "labels.pcf.golden", pcf.Bytes())
}

// TestMachineTraceGolden pins the full multi-thread emission end to end: a
// deterministic 2-thread Machine STREAM run (sequential schedule) written
// through Machine.WriteTrace. This is the PR-2 output surface — per-thread
// streams merged into one PRV with a 2-thread header plus the shared PCF.
func TestMachineTraceGolden(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Monitor.MuxQuantumNs = 0
	cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.Monitor.PEBS.Period = 600
	cfg.Monitor.PEBS.Randomize = false
	cfg.Monitor.PEBS.LatencyThreshold = 0
	res, err := core.RunWorkloadSequential(nil, cfg, workloads.NewStream(1<<12), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prv, pcf bytes.Buffer
	if err := res.Machine.WriteTrace(&prv, &pcf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "machine_stream_2t.prv.golden", prv.Bytes())
	checkGolden(t, "machine_stream_2t.pcf.golden", pcf.Bytes())
}

// TestNUMATraceGolden pins the NUMA trace-format extension end to end: a
// deterministic 2-socket, 2-thread (one core per socket) interleaved
// STREAM run. The PRV must carry RemoteDRAM samples (source value 4) and
// the REMOTE_DRAM counter pair on every record, and the PCF must label
// both — the extension surface that single-socket traces (pinned above,
// byte-identical to the pre-NUMA format) never emit.
func TestNUMATraceGolden(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Monitor.MuxQuantumNs = 0
	cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.Monitor.PEBS.Period = 600
	// Randomized (seeded, deterministic) gaps: a fixed period divisible by
	// the 8-element line run would alias in lockstep with the sweep and
	// never sample the line-resolving first op of a line — the exact
	// aliasing pathology the randomization models.
	cfg.Monitor.PEBS.Randomize = true
	cfg.Monitor.PEBS.Seed = 3
	cfg.Monitor.PEBS.LatencyThreshold = 0
	// The undersized hierarchy keeps the sweep DRAM-bound, so sampled ops
	// land on remote line fills often enough for source-4 records to
	// appear in a short trace.
	cfg.Cache.Levels = []memhier.LevelConfig{
		{Name: "L1D", Size: 8 << 10, LineSize: 64, Assoc: 4, HitLatency: 4},
		{Name: "L2", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 12},
		{Name: "L3", Size: 128 << 10, LineSize: 64, Assoc: 8, HitLatency: 36},
	}
	cfg.NUMA = numa.Config{Sockets: 2, Policy: numa.Interleave}
	res, err := core.RunWorkloadSequential(nil, cfg, workloads.NewStream(1<<13), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var remote uint64
	for _, th := range res.Machine.Threads {
		remote += th.Hier.RemoteDRAMAccesses()
	}
	if remote == 0 {
		t.Fatal("interleaved 2-socket run produced no remote fills")
	}
	var prv, pcf bytes.Buffer
	if err := res.Machine.WriteTrace(&prv, &pcf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prv.Bytes(), []byte(":32000003:4:")) {
		t.Error("PRV carries no RemoteDRAM-sourced sample (source value 4)")
	}
	checkGolden(t, "machine_stream_numa_2s2t.prv.golden", prv.Bytes())
	checkGolden(t, "machine_stream_numa_2s2t.pcf.golden", pcf.Bytes())
}
