// Package paraver provides trace-analysis utilities in the spirit of the
// Paraver browser: reconstructing region timelines (which instrumented
// region was active when), extracting counter time series, computing
// region profiles (time share, instance counts) and windowing a trace to a
// time interval. The report layer uses these to present the raw
// (pre-folding) view of a run, and the folding pipeline uses the region
// profile to pick the dominant foldable region.
package paraver

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Span is one contiguous activation of a region.
type Span struct {
	Region int64
	T0, T1 uint64
	// Depth is the nesting depth at which the region ran (0 = outermost).
	Depth int
}

// DurationNs returns the span length.
func (s Span) DurationNs() uint64 { return s.T1 - s.T0 }

// Timeline reconstructs the region activation spans of one (task, thread)
// from a chronological record stream. Nested regions produce nested spans
// with increasing Depth. Unclosed regions at end-of-trace are closed at the
// last record's timestamp.
func Timeline(records []trace.Record, task, thread int) ([]Span, error) {
	type open struct {
		region int64
		t0     uint64
	}
	var stack []open
	var out []Span
	var lastT uint64
	for i := range records {
		rec := &records[i]
		if rec.Task != task || rec.Thread != thread {
			continue
		}
		lastT = rec.TimeNs
		v, ok := rec.Get(trace.TypeRegion)
		if !ok {
			continue
		}
		if v != 0 {
			stack = append(stack, open{region: v, t0: rec.TimeNs})
			continue
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("paraver: region end without begin at %d ns", rec.TimeNs)
		}
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, Span{Region: top.region, T0: top.t0, T1: rec.TimeNs, Depth: len(stack)})
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, Span{Region: top.region, T0: top.t0, T1: lastT, Depth: len(stack)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].T0 != out[j].T0 {
			return out[i].T0 < out[j].T0
		}
		return out[i].Depth < out[j].Depth
	})
	return out, nil
}

// ProfileRow summarizes one region's activity.
type ProfileRow struct {
	Region    int64
	Instances int
	TotalNs   uint64
	MeanNs    float64
	MinNs     uint64
	MaxNs     uint64
}

// Profile aggregates spans into per-region statistics, sorted by total time
// descending. Nested time is attributed to both levels, as in Paraver's
// default region profile.
func Profile(spans []Span) []ProfileRow {
	agg := make(map[int64]*ProfileRow)
	for _, s := range spans {
		row, ok := agg[s.Region]
		if !ok {
			row = &ProfileRow{Region: s.Region, MinNs: ^uint64(0)}
			agg[s.Region] = row
		}
		d := s.DurationNs()
		row.Instances++
		row.TotalNs += d
		if d < row.MinNs {
			row.MinNs = d
		}
		if d > row.MaxNs {
			row.MaxNs = d
		}
	}
	out := make([]ProfileRow, 0, len(agg))
	for _, row := range agg {
		row.MeanNs = float64(row.TotalNs) / float64(row.Instances)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// CounterPoint is one (time, value) observation of a counter.
type CounterPoint struct {
	TimeNs uint64
	Value  int64
}

// CounterSeries extracts the time series of one counter type from the
// record stream (records lacking the type are skipped).
func CounterSeries(records []trace.Record, task, thread int, typ uint32) []CounterPoint {
	var out []CounterPoint
	for i := range records {
		rec := &records[i]
		if rec.Task != task || rec.Thread != thread {
			continue
		}
		if v, ok := rec.Get(typ); ok {
			out = append(out, CounterPoint{TimeNs: rec.TimeNs, Value: v})
		}
	}
	return out
}

// RatePoint is an interval rate derived from a cumulative counter.
type RatePoint struct {
	TimeNs uint64 // interval midpoint
	Rate   float64
}

// Rates differentiates a cumulative counter series into interval rates in
// events/second. Non-monotone steps (multiplexing estimates can regress
// slightly) are clamped to zero.
func Rates(series []CounterPoint) []RatePoint {
	if len(series) < 2 {
		return nil
	}
	out := make([]RatePoint, 0, len(series)-1)
	for i := 1; i < len(series); i++ {
		dt := float64(series[i].TimeNs-series[i-1].TimeNs) / 1e9
		if dt <= 0 {
			continue
		}
		dv := float64(series[i].Value - series[i-1].Value)
		if dv < 0 {
			dv = 0
		}
		out = append(out, RatePoint{
			TimeNs: (series[i].TimeNs + series[i-1].TimeNs) / 2,
			Rate:   dv / dt,
		})
	}
	return out
}

// Window returns the records with TimeNs in [t0, t1), preserving order.
func Window(records []trace.Record, t0, t1 uint64) []trace.Record {
	var out []trace.Record
	for _, r := range records {
		if r.TimeNs >= t0 && r.TimeNs < t1 {
			out = append(out, r)
		}
	}
	return out
}

// SpanOf returns the span of region covering time t, preferring the deepest
// (innermost) match.
func SpanOf(spans []Span, t uint64) (Span, bool) {
	var best Span
	found := false
	for _, s := range spans {
		if t >= s.T0 && t < s.T1 {
			if !found || s.Depth > best.Depth {
				best = s
				found = true
			}
		}
	}
	return best, found
}
