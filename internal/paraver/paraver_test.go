package paraver

import (
	"testing"

	"repro/internal/trace"
)

func regionRec(t uint64, v int64) trace.Record {
	return trace.Record{TimeNs: t, Task: 1, Thread: 1,
		Pairs: []trace.TypeValue{{Type: trace.TypeRegion, Value: v}}}
}

func counterRec(t uint64, typ uint32, v int64) trace.Record {
	return trace.Record{TimeNs: t, Task: 1, Thread: 1,
		Pairs: []trace.TypeValue{{Type: typ, Value: v}}}
}

func TestTimelineFlat(t *testing.T) {
	recs := []trace.Record{
		regionRec(10, 5), regionRec(20, 0),
		regionRec(30, 6), regionRec(50, 0),
	}
	spans, err := Timeline(recs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Region != 5 || spans[0].T0 != 10 || spans[0].T1 != 20 || spans[0].Depth != 0 {
		t.Errorf("span0 = %+v", spans[0])
	}
	if spans[1].DurationNs() != 20 {
		t.Errorf("span1 duration = %d", spans[1].DurationNs())
	}
}

func TestTimelineNested(t *testing.T) {
	recs := []trace.Record{
		regionRec(0, 1),  // outer
		regionRec(10, 2), // inner
		regionRec(20, 0), // inner end
		regionRec(30, 0), // outer end
	}
	spans, err := Timeline(recs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Region != 1 || spans[0].Depth != 0 {
		t.Errorf("outer = %+v", spans[0])
	}
	if spans[1].Region != 2 || spans[1].Depth != 1 || spans[1].T0 != 10 || spans[1].T1 != 20 {
		t.Errorf("inner = %+v", spans[1])
	}
}

func TestTimelineUnclosedAndErrors(t *testing.T) {
	// Unclosed region closes at last record time.
	recs := []trace.Record{regionRec(0, 1), counterRec(100, trace.TypeCounterBase, 5)}
	spans, err := Timeline(recs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].T1 != 100 {
		t.Errorf("unclosed span = %+v", spans)
	}
	// End without begin is an error.
	if _, err := Timeline([]trace.Record{regionRec(5, 0)}, 1, 1); err == nil {
		t.Error("unbalanced end accepted")
	}
	// Other threads are ignored.
	other := regionRec(5, 0)
	other.Thread = 2
	if spans, err := Timeline([]trace.Record{other}, 1, 1); err != nil || len(spans) != 0 {
		t.Errorf("cross-thread filtering: %v, %v", spans, err)
	}
}

func TestProfile(t *testing.T) {
	spans := []Span{
		{Region: 1, T0: 0, T1: 10},
		{Region: 1, T0: 20, T1: 40},
		{Region: 2, T0: 40, T1: 45},
	}
	prof := Profile(spans)
	if len(prof) != 2 {
		t.Fatalf("profile = %+v", prof)
	}
	if prof[0].Region != 1 || prof[0].Instances != 2 || prof[0].TotalNs != 30 {
		t.Errorf("row0 = %+v", prof[0])
	}
	if prof[0].MeanNs != 15 || prof[0].MinNs != 10 || prof[0].MaxNs != 20 {
		t.Errorf("row0 stats = %+v", prof[0])
	}
	if prof[1].Region != 2 {
		t.Errorf("row1 = %+v", prof[1])
	}
}

func TestCounterSeriesAndRates(t *testing.T) {
	typ := trace.TypeCounterBase + 0
	recs := []trace.Record{
		counterRec(0, typ, 0),
		counterRec(1_000_000, typ, 1_000_000), // 1e6 events in 1 ms = 1e9/s
		counterRec(2_000_000, typ, 1_500_000),
		regionRec(3_000_000, 1), // no counter: skipped
	}
	series := CounterSeries(recs, 1, 1, typ)
	if len(series) != 3 {
		t.Fatalf("series = %+v", series)
	}
	rates := Rates(series)
	if len(rates) != 2 {
		t.Fatalf("rates = %+v", rates)
	}
	if rates[0].Rate != 1e9 {
		t.Errorf("rate0 = %g", rates[0].Rate)
	}
	if rates[0].TimeNs != 500_000 {
		t.Errorf("rate0 midpoint = %d", rates[0].TimeNs)
	}
	if rates[1].Rate != 5e8 {
		t.Errorf("rate1 = %g", rates[1].Rate)
	}
	// Degenerate and clamped cases.
	if Rates(series[:1]) != nil {
		t.Error("short series should give nil")
	}
	neg := []CounterPoint{{0, 100}, {1000, 50}}
	if r := Rates(neg); r[0].Rate != 0 {
		t.Errorf("negative delta not clamped: %+v", r)
	}
}

func TestWindow(t *testing.T) {
	recs := []trace.Record{
		counterRec(5, 1, 1), counterRec(15, 1, 2), counterRec(25, 1, 3),
	}
	w := Window(recs, 10, 25)
	if len(w) != 1 || w[0].TimeNs != 15 {
		t.Errorf("window = %+v", w)
	}
}

func TestSpanOf(t *testing.T) {
	spans := []Span{
		{Region: 1, T0: 0, T1: 100, Depth: 0},
		{Region: 2, T0: 10, T1: 50, Depth: 1},
	}
	s, ok := SpanOf(spans, 20)
	if !ok || s.Region != 2 {
		t.Errorf("SpanOf(20) = %+v (want innermost)", s)
	}
	s, ok = SpanOf(spans, 60)
	if !ok || s.Region != 1 {
		t.Errorf("SpanOf(60) = %+v", s)
	}
	if _, ok := SpanOf(spans, 200); ok {
		t.Error("SpanOf(200) matched")
	}
}
