// Package pebs simulates Intel Precise Event-Based Sampling for memory
// instructions. The engine observes every memory operation executed by a
// simulated core (via the core's memory hook), selects every N-th eligible
// operation per event (loads and stores count independently, as the
// hardware's separate PEBS counters do), applies the load-latency threshold
// (the ldlat facility), and accumulates precise sample records — IP,
// referenced address, access latency, data source, timestamp and call-stack
// id — into a buffer that is drained through a callback, mirroring the PEBS
// buffer interrupt that hands samples to Extrae.
package pebs

import (
	"fmt"
	"math/rand"

	"repro/internal/cpu"
	"repro/internal/memhier"
)

// EventMask selects which memory instruction classes are sampled.
type EventMask uint8

const (
	// SampleLoads enables sampling of load instructions
	// (MEM_TRANS_RETIRED.LOAD_LATENCY on real hardware).
	SampleLoads EventMask = 1 << iota
	// SampleStores enables sampling of store instructions
	// (MEM_UOPS_RETIRED.ALL_STORES).
	SampleStores
)

// Has reports whether the mask includes all events in q.
func (m EventMask) Has(q EventMask) bool { return m&q == q }

func (m EventMask) String() string {
	switch {
	case m.Has(SampleLoads | SampleStores):
		return "loads+stores"
	case m.Has(SampleLoads):
		return "loads"
	case m.Has(SampleStores):
		return "stores"
	}
	return "none"
}

// Sample is one PEBS record, extended with the call-stack id Extrae attaches
// when it processes the hardware buffer.
type Sample struct {
	// TimeNs is the simulated wall-clock timestamp.
	TimeNs uint64
	// IP is the instruction pointer of the sampled memory instruction.
	IP uint64
	// Addr is the referenced data address.
	Addr uint64
	// Size is the access width in bytes.
	Size int
	// Store distinguishes store samples from load samples.
	Store bool
	// Latency is the access cost in cycles (PEBS weight). Stores report 0
	// on real hardware before Skylake; we keep the measured value but tests
	// exercise both conventions via Config.StoreLatency.
	Latency uint64
	// Source is the memory-hierarchy level that served the data.
	Source memhier.DataSource
	// StackID is the interned call stack active at the sample.
	StackID uint32
}

// Config parameterizes the sampling engine.
type Config struct {
	// Period samples every Period-th eligible operation per event class.
	Period uint64
	// Randomize perturbs each inter-sample gap by ±25% to avoid lockstep
	// aliasing with loop structure, as production PEBS configurations do.
	Randomize bool
	// Seed drives the randomized gaps (ignored unless Randomize).
	Seed int64
	// LatencyThreshold discards load samples with latency below the
	// threshold (the ldlat= facility); 0 keeps everything.
	LatencyThreshold uint64
	// Events selects the sampled instruction classes.
	Events EventMask
	// BufferSize is the number of samples the hardware buffer holds before
	// the drain callback fires (the PEBS interrupt). Must be positive.
	BufferSize int
	// RecordStoreLatency controls whether store samples carry the measured
	// latency (post-Skylake behaviour) or zero (Haswell, the paper's
	// hardware reports no store latency).
	RecordStoreLatency bool
}

// DefaultConfig returns a configuration close to the paper's setup: both
// event classes, period 1000, small latency threshold, 64-sample buffer,
// Haswell store-latency semantics.
func DefaultConfig() Config {
	return Config{
		Period:           1000,
		Randomize:        true,
		Seed:             1,
		LatencyThreshold: 3,
		Events:           SampleLoads | SampleStores,
		BufferSize:       64,
	}
}

// Stats aggregates engine activity.
type Stats struct {
	// Eligible counts observed operations matching the event mask.
	Eligible uint64
	// Fired counts operations selected by the period counter.
	Fired uint64
	// BelowThreshold counts fired loads dropped by the latency threshold.
	BelowThreshold uint64
	// Recorded counts samples written to the buffer.
	Recorded uint64
	// Drains counts buffer-full callbacks.
	Drains uint64
}

// Engine is the PEBS simulator. Not safe for concurrent use; one engine is
// attached per simulated hardware thread.
type Engine struct {
	cfg   Config
	drain func([]Sample)
	rng   *rand.Rand
	span  uint64 // precomputed randomization window (Period/2; 0 disables)

	nextLoad  uint64 // ops remaining until next load sample
	nextStore uint64
	buf       []Sample
	stats     Stats
	draws     uint64 // RNG draws made by gap(), for checkpoint restore
}

// New validates the configuration and creates an engine. drain receives the
// buffer contents at each overflow and at Flush; the slice is reused, so the
// callback must copy anything it keeps.
func New(cfg Config, drain func([]Sample)) (*Engine, error) {
	if cfg.Period == 0 {
		return nil, fmt.Errorf("pebs: period must be positive")
	}
	if cfg.BufferSize <= 0 {
		return nil, fmt.Errorf("pebs: buffer size must be positive")
	}
	if cfg.Events == 0 {
		return nil, fmt.Errorf("pebs: no events selected")
	}
	if drain == nil {
		return nil, fmt.Errorf("pebs: nil drain callback")
	}
	e := &Engine{
		cfg:   cfg,
		drain: drain,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		buf:   make([]Sample, 0, cfg.BufferSize),
	}
	if cfg.Randomize {
		e.span = cfg.Period / 2
	}
	e.nextLoad = e.gap()
	e.nextStore = e.gap()
	return e, nil
}

// gap returns the next inter-sample distance (Period ± 25% when
// randomized; the window is precomputed at construction so the sampled-op
// path draws straight from the generator).
//
//repro:noalloc
func (e *Engine) gap() uint64 {
	if e.span == 0 {
		return e.cfg.Period
	}
	e.draws++
	return e.cfg.Period - e.span/2 + uint64(e.rng.Int63n(int64(e.span)+1))
}

// Events returns the currently sampled event classes.
func (e *Engine) Events() EventMask { return e.cfg.Events }

// SetEvents reprograms the sampled event classes; the monitoring layer uses
// this to multiplex loads and stores within a single run.
func (e *Engine) SetEvents(m EventMask) { e.cfg.Events = m }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Pending returns the number of samples waiting in the buffer.
func (e *Engine) Pending() int { return len(e.buf) }

// Observe feeds one retired memory operation into the engine. timeNs is the
// simulated wall clock; stackID identifies the active call stack. It reports
// whether the operation was recorded as a sample, so the caller can attach
// sample-time context (e.g. a PMU snapshot) before the buffer drains: a full
// buffer is drained at the *next* observation (or at Flush), never inside
// the call that recorded the final sample.
//
//repro:noalloc
func (e *Engine) Observe(op cpu.MemOp, timeNs uint64, stackID uint32) bool {
	if len(e.buf) >= e.cfg.BufferSize {
		e.flushBuffer()
	}
	if op.Store {
		if !e.cfg.Events.Has(SampleStores) {
			return false
		}
		e.stats.Eligible++
		e.nextStore--
		if e.nextStore > 0 {
			return false
		}
		e.nextStore = e.gap()
	} else {
		if !e.cfg.Events.Has(SampleLoads) {
			return false
		}
		e.stats.Eligible++
		e.nextLoad--
		if e.nextLoad > 0 {
			return false
		}
		e.nextLoad = e.gap()
	}
	e.stats.Fired++
	if !op.Store && e.cfg.LatencyThreshold > 0 && op.Latency < e.cfg.LatencyThreshold {
		e.stats.BelowThreshold++
		return false
	}
	lat := op.Latency
	if op.Store && !e.cfg.RecordStoreLatency {
		lat = 0
	}
	e.buf = append(e.buf, Sample{
		TimeNs:  timeNs,
		IP:      op.IP,
		Addr:    op.Addr,
		Size:    op.Size,
		Store:   op.Store,
		Latency: lat,
		Source:  op.Source,
		StackID: stackID,
	})
	e.stats.Recorded++
	return true
}

// Countdowns returns the operations remaining until the next load and
// store sample. The countdown-gated monitoring path exports these to the
// core, which decrements them inline — in bulk for batched line runs,
// whose splitter guarantees the op on which a countdown reaches zero is
// issued through the precise per-op path — and calls back only when one
// fires. Together with ObserveSampled's draw-order guarantee this is what
// keeps randomized sampling bit-identical across the per-op and line-run
// issue paths.
func (e *Engine) Countdowns() (load, store uint64) { return e.nextLoad, e.nextStore }

// AddEligible credits n mask-matching operations observed outside the
// engine. The gated path computes eligibility arithmetically from the
// core's load/store counters instead of counting per op.
func (e *Engine) AddEligible(n uint64) { e.stats.Eligible += n }

// ObserveSampled processes an operation already selected by an external
// countdown (the core's sample gate): it draws the next inter-sample gap
// for the op's class — in the same order the per-op path would, keeping
// randomized runs reproducible across both paths — applies the latency
// threshold, and records the sample. It returns whether the op was
// recorded and the new countdown for the op's class.
//
//repro:noalloc
func (e *Engine) ObserveSampled(op cpu.MemOp, timeNs uint64, stackID uint32) (recorded bool, nextGap uint64) {
	if len(e.buf) >= e.cfg.BufferSize {
		e.flushBuffer()
	}
	nextGap = e.gap()
	if op.Store {
		e.nextStore = nextGap
	} else {
		e.nextLoad = nextGap
	}
	e.stats.Fired++
	if !op.Store && e.cfg.LatencyThreshold > 0 && op.Latency < e.cfg.LatencyThreshold {
		e.stats.BelowThreshold++
		return false, nextGap
	}
	lat := op.Latency
	if op.Store && !e.cfg.RecordStoreLatency {
		lat = 0
	}
	e.buf = append(e.buf, Sample{
		TimeNs:  timeNs,
		IP:      op.IP,
		Addr:    op.Addr,
		Size:    op.Size,
		Store:   op.Store,
		Latency: lat,
		Source:  op.Source,
		StackID: stackID,
	})
	e.stats.Recorded++
	return true, nextGap
}

// BufferSize returns the configured hardware buffer capacity.
func (e *Engine) BufferSize() int { return e.cfg.BufferSize }

// Flush drains any buffered samples to the callback.
func (e *Engine) Flush() {
	if len(e.buf) > 0 {
		e.flushBuffer()
	}
}

func (e *Engine) flushBuffer() {
	e.stats.Drains++
	e.drain(e.buf)
	e.buf = e.buf[:0]
}
