package pebs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/memhier"
)

func load(addr uint64, lat uint64) cpu.MemOp {
	return cpu.MemOp{IP: 0x400000, Addr: addr, Size: 8, Latency: lat, Source: memhier.SrcL1}
}

func store(addr uint64, lat uint64) cpu.MemOp {
	op := load(addr, lat)
	op.Store = true
	return op
}

func collect(dst *[]Sample) func([]Sample) {
	return func(s []Sample) {
		*dst = append(*dst, append([]Sample(nil), s...)...)
	}
}

func TestConfigValidation(t *testing.T) {
	drain := func([]Sample) {}
	cases := []Config{
		{Period: 0, BufferSize: 8, Events: SampleLoads},
		{Period: 10, BufferSize: 0, Events: SampleLoads},
		{Period: 10, BufferSize: 8, Events: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, drain); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil drain accepted")
	}
	if _, err := New(DefaultConfig(), drain); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestEventMaskString(t *testing.T) {
	cases := map[EventMask]string{
		SampleLoads:                "loads",
		SampleStores:               "stores",
		SampleLoads | SampleStores: "loads+stores",
		0:                          "none",
	}
	for m, w := range cases {
		if m.String() != w {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), w)
		}
	}
}

func TestDeterministicPeriod(t *testing.T) {
	var got []Sample
	e, err := New(Config{Period: 10, Events: SampleLoads, BufferSize: 1000}, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Observe(load(uint64(i), 5), uint64(i), 0)
	}
	e.Flush()
	if len(got) != 10 {
		t.Fatalf("got %d samples from 100 ops at period 10, want 10", len(got))
	}
	// Without randomization samples land on every 10th op: indices 9, 19, ...
	for i, s := range got {
		if s.Addr != uint64(i*10+9) {
			t.Errorf("sample %d addr = %d, want %d", i, s.Addr, i*10+9)
		}
	}
}

func TestEventFiltering(t *testing.T) {
	var got []Sample
	e, _ := New(Config{Period: 1, Events: SampleStores, BufferSize: 1000}, collect(&got))
	e.Observe(load(1, 5), 0, 0)
	e.Observe(store(2, 5), 1, 0)
	e.Flush()
	if len(got) != 1 || !got[0].Store {
		t.Fatalf("store-only sampling got %+v", got)
	}
	if e.Stats().Eligible != 1 {
		t.Errorf("eligible = %d, want 1 (loads not eligible)", e.Stats().Eligible)
	}
}

func TestLatencyThresholdLoadsOnly(t *testing.T) {
	var got []Sample
	e, _ := New(Config{Period: 1, Events: SampleLoads | SampleStores,
		LatencyThreshold: 30, BufferSize: 1000}, collect(&got))
	e.Observe(load(1, 4), 0, 0)   // below threshold: dropped
	e.Observe(load(2, 100), 1, 0) // above: kept
	e.Observe(store(3, 4), 2, 0)  // stores bypass ldlat
	e.Flush()
	if len(got) != 2 {
		t.Fatalf("got %d samples, want 2", len(got))
	}
	if got[0].Addr != 2 || got[1].Addr != 3 {
		t.Errorf("samples = %+v", got)
	}
	if e.Stats().BelowThreshold != 1 {
		t.Errorf("BelowThreshold = %d", e.Stats().BelowThreshold)
	}
}

func TestStoreLatencySemantics(t *testing.T) {
	var got []Sample
	e, _ := New(Config{Period: 1, Events: SampleStores, BufferSize: 10}, collect(&got))
	e.Observe(store(1, 77), 0, 0)
	e.Flush()
	if got[0].Latency != 0 {
		t.Errorf("Haswell semantics: store latency = %d, want 0", got[0].Latency)
	}
	got = nil
	e2, _ := New(Config{Period: 1, Events: SampleStores, BufferSize: 10,
		RecordStoreLatency: true}, collect(&got))
	e2.Observe(store(1, 77), 0, 0)
	e2.Flush()
	if got[0].Latency != 77 {
		t.Errorf("Skylake semantics: store latency = %d, want 77", got[0].Latency)
	}
}

func TestBufferDrain(t *testing.T) {
	var drains int
	var total int
	e, _ := New(Config{Period: 1, Events: SampleLoads, BufferSize: 4},
		func(s []Sample) { drains++; total += len(s) })
	for i := 0; i < 10; i++ {
		e.Observe(load(uint64(i), 5), uint64(i), 0)
	}
	if drains != 2 {
		t.Errorf("drains = %d, want 2 (buffer of 4, 10 samples)", drains)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.Flush()
	if total != 10 {
		t.Errorf("total drained = %d, want 10", total)
	}
	if e.Stats().Drains != 3 {
		t.Errorf("Drains stat = %d, want 3", e.Stats().Drains)
	}
	// Flush with empty buffer is a no-op.
	e.Flush()
	if e.Stats().Drains != 3 {
		t.Error("empty flush drained")
	}
}

func TestIndependentLoadStoreCounters(t *testing.T) {
	// Loads and stores count down independently, like separate PEBS counters.
	var got []Sample
	e, _ := New(Config{Period: 3, Events: SampleLoads | SampleStores,
		BufferSize: 100}, collect(&got))
	// 2 loads then 1 store, repeated: loads fire every 3 loads (every 4.5
	// ops), stores every 3 stores (every 9 ops).
	for i := 0; i < 18; i++ {
		if i%3 == 2 {
			e.Observe(store(uint64(i), 5), uint64(i), 0)
		} else {
			e.Observe(load(uint64(i), 5), uint64(i), 0)
		}
	}
	e.Flush()
	var loads, stores int
	for _, s := range got {
		if s.Store {
			stores++
		} else {
			loads++
		}
	}
	if loads != 4 || stores != 2 {
		t.Errorf("loads/stores sampled = %d/%d, want 4/2", loads, stores)
	}
}

func TestRandomizedPeriodMeanApproximatesPeriod(t *testing.T) {
	var got []Sample
	cfg := Config{Period: 100, Randomize: true, Seed: 42,
		Events: SampleLoads, BufferSize: 1 << 20}
	e, _ := New(cfg, collect(&got))
	const n = 200000
	for i := 0; i < n; i++ {
		e.Observe(load(uint64(i), 5), uint64(i), 0)
	}
	e.Flush()
	mean := float64(n) / float64(len(got))
	if math.Abs(mean-100)/100 > 0.05 {
		t.Errorf("mean sampling gap = %.1f, want ~100", mean)
	}
	// Determinism: same seed, same samples.
	var got2 []Sample
	e2, _ := New(cfg, collect(&got2))
	for i := 0; i < n; i++ {
		e2.Observe(load(uint64(i), 5), uint64(i), 0)
	}
	e2.Flush()
	if len(got) != len(got2) {
		t.Fatalf("same seed produced %d vs %d samples", len(got), len(got2))
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("sample %d differs between identical runs", i)
		}
	}
}

func TestSetEventsMidStream(t *testing.T) {
	var got []Sample
	e, _ := New(Config{Period: 1, Events: SampleLoads, BufferSize: 100}, collect(&got))
	e.Observe(load(1, 5), 0, 0)
	e.Observe(store(2, 5), 1, 0) // not sampled
	e.SetEvents(SampleStores)
	if e.Events() != SampleStores {
		t.Error("SetEvents did not take")
	}
	e.Observe(load(3, 5), 2, 0) // not sampled
	e.Observe(store(4, 5), 3, 0)
	e.Flush()
	if len(got) != 2 || got[0].Addr != 1 || got[1].Addr != 4 {
		t.Errorf("mux samples = %+v", got)
	}
}

func TestSampleCarriesContext(t *testing.T) {
	var got []Sample
	e, _ := New(Config{Period: 1, Events: SampleLoads, BufferSize: 10}, collect(&got))
	op := cpu.MemOp{IP: 0x12345, Addr: 0xfeed, Size: 4,
		Latency: 230, Source: memhier.SrcDRAM}
	e.Observe(op, 999, 7)
	e.Flush()
	s := got[0]
	if s.IP != 0x12345 || s.Addr != 0xfeed || s.Size != 4 ||
		s.Latency != 230 || s.Source != memhier.SrcDRAM ||
		s.TimeNs != 999 || s.StackID != 7 {
		t.Errorf("sample = %+v", s)
	}
}

func TestPropertySampleCountBounded(t *testing.T) {
	// For any op stream, recorded samples <= eligible/period + 1 per class.
	f := func(seed int64, nOps uint16) bool {
		var got []Sample
		cfg := Config{Period: 7, Randomize: seed%2 == 0, Seed: seed,
			Events: SampleLoads | SampleStores, BufferSize: 64}
		e, err := New(cfg, collect(&got))
		if err != nil {
			return false
		}
		n := int(nOps)%5000 + 1
		for i := 0; i < n; i++ {
			if (int64(i)+seed)%3 == 0 {
				e.Observe(store(uint64(i), 10), uint64(i), 0)
			} else {
				e.Observe(load(uint64(i), 10), uint64(i), 0)
			}
		}
		e.Flush()
		st := e.Stats()
		if st.Recorded != uint64(len(got)) {
			return false
		}
		// With ±25% randomization min gap is ~period/2+... be generous: the
		// count can never exceed eligible/(period/2)+2.
		maxSamples := st.Eligible/(cfg.Period/2) + 4
		return st.Recorded <= maxSamples && st.Fired >= st.Recorded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
