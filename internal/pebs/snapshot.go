package pebs

import (
	"fmt"
	"math/rand"
)

// Checkpoint support. Snapshots are taken at instance boundaries, after the
// monitoring layer has flushed the sample buffer, so an EngineState never
// carries buffered samples — only the countdowns, the statistics, the
// currently multiplexed event mask, and the number of RNG draws made so
// far. math/rand generators are not serializable, but the draw sequence is
// a pure function of (seed, draw count): restore re-seeds and discards.

// maxReplayDraws bounds the RNG replay loop on restore; see RestoreState.
const maxReplayDraws = 1 << 30

// EngineState is the serializable mutable state of a PEBS engine.
type EngineState struct {
	NextLoad  uint64
	NextStore uint64
	Stats     Stats
	Events    EventMask
	Draws     uint64
}

// State copies the engine's mutable state. It refuses to snapshot an engine
// with buffered samples: checkpoints happen after a Flush, and silently
// dropping pending samples would desynchronize the resumed monitor log.
func (e *Engine) State() (EngineState, error) {
	if len(e.buf) != 0 {
		return EngineState{}, fmt.Errorf("pebs: cannot snapshot with %d buffered samples (flush first)", len(e.buf))
	}
	return EngineState{
		NextLoad:  e.nextLoad,
		NextStore: e.nextStore,
		Stats:     e.stats,
		Events:    e.cfg.Events,
		Draws:     e.draws,
	}, nil
}

// RestoreState overwrites the mutable state of an engine built from the
// same Config, reconstructing the RNG by replaying the recorded number of
// draws from the configured seed. Construction itself draws twice (the
// initial countdowns), so a valid snapshot never records fewer draws than a
// fresh engine has already made.
func (e *Engine) RestoreState(st EngineState) error {
	if st.Events == 0 {
		return fmt.Errorf("pebs: snapshot has no events selected")
	}
	if e.span > 0 {
		if st.Draws < 2 {
			return fmt.Errorf("pebs: snapshot records %d RNG draws, construction makes 2", st.Draws)
		}
		// One draw per fired sample: even a -paper scale run stays far under
		// this, so anything larger is a corrupt or hostile snapshot, and
		// rejecting it bounds the replay loop below.
		if st.Draws > maxReplayDraws {
			return fmt.Errorf("pebs: snapshot records %d RNG draws (max %d)", st.Draws, uint64(maxReplayDraws))
		}
		rng := rand.New(rand.NewSource(e.cfg.Seed))
		for i := uint64(0); i < st.Draws; i++ {
			rng.Int63n(int64(e.span) + 1)
		}
		e.rng = rng
	}
	e.nextLoad = st.NextLoad
	e.nextStore = st.NextStore
	e.stats = st.Stats
	e.cfg.Events = st.Events
	e.draws = st.Draws
	e.buf = e.buf[:0]
	return nil
}
