// Package profiling is the cmd/ tools' shared pprof harness: one call
// starts the optional CPU profile and arranges the optional allocation
// profile, so perf PRs can profile real scenario runs instead of only
// microbenchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start starts a CPU profile at cpuPath (when non-empty) and returns a
// stop function that finishes it and, when memPath is non-empty, writes
// the allocation profile there. tool prefixes error messages. Errors
// writing the memprofile at exit are reported to stderr, not fatal — the
// run's results already printed.
func Start(tool, cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", tool, err)
			return
		}
		defer f.Close()
		runtime.GC() // settle heap state so the profile reflects the run
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", tool, err)
		}
	}, nil
}
