// Package prog models the monitored program: a virtual address space with a
// hookable allocator (the stand-in for malloc/realloc interposition), a
// synthetic binary image with symbol and source-line tables (the stand-in
// for the DWARF/ELF metadata Extrae scans for static data objects and IP to
// source-line resolution), and interned call stacks (the identifiers Extrae
// assigns to dynamically allocated objects).
package prog

import (
	"errors"
	"fmt"
	"sort"
)

// Alignment of all allocations, matching glibc malloc's 16-byte alignment.
const allocAlign = 16

// AllocInfo describes one live allocation.
type AllocInfo struct {
	// Addr is the first byte of the user region.
	Addr uint64
	// Size is the requested size in bytes.
	Size uint64
	// StackID identifies the interned allocation call stack.
	StackID uint32
}

// Hooks receives allocator events, exactly like the interposition wrappers
// Extrae installs around malloc/realloc/free.
type Hooks struct {
	// OnAlloc fires after a successful allocation (including the new region
	// of a realloc).
	OnAlloc func(AllocInfo)
	// OnFree fires before a region is released (including the old region of
	// a realloc).
	OnFree func(AllocInfo)
}

// Allocator errors.
var (
	ErrNotAllocated = errors.New("prog: address is not the start of a live allocation")
	ErrZeroSize     = errors.New("prog: zero-size allocation")
)

// AddressSpace is a simulated heap: a bump allocator with a size-segregated
// free list, starting at a configurable base. A deterministic base keeps
// traces reproducible; an ASLR-style randomized base can be requested by the
// monitoring layer to demonstrate why cross-run address comparison fails.
type AddressSpace struct {
	base  uint64
	brk   uint64 // next never-used address
	live  map[uint64]AllocInfo
	frees map[uint64][]uint64 // rounded size -> freed addrs (LIFO)
	hooks Hooks

	liveBytes  uint64
	peakBytes  uint64
	allocCount uint64
}

// NewAddressSpace creates a heap whose first allocation lands at base
// (rounded up to the allocation alignment).
func NewAddressSpace(base uint64) *AddressSpace {
	base = (base + allocAlign - 1) &^ uint64(allocAlign-1)
	return &AddressSpace{
		base:  base,
		brk:   base,
		live:  make(map[uint64]AllocInfo),
		frees: make(map[uint64][]uint64),
	}
}

// SetHooks installs allocator event hooks (pass zero-value Hooks to clear).
func (as *AddressSpace) SetHooks(h Hooks) { as.hooks = h }

// Base returns the lowest heap address.
func (as *AddressSpace) Base() uint64 { return as.base }

// Brk returns the high-water mark: the first address never handed out.
func (as *AddressSpace) Brk() uint64 { return as.brk }

// LiveBytes returns the sum of sizes of live allocations.
func (as *AddressSpace) LiveBytes() uint64 { return as.liveBytes }

// PeakBytes returns the maximum LiveBytes observed.
func (as *AddressSpace) PeakBytes() uint64 { return as.peakBytes }

// AllocCount returns the total number of allocations performed.
func (as *AddressSpace) AllocCount() uint64 { return as.allocCount }

func roundSize(size uint64) uint64 {
	return (size + allocAlign - 1) &^ uint64(allocAlign-1)
}

// Alloc reserves size bytes and reports the allocation to the hooks.
// stackID identifies the allocation site call stack.
func (as *AddressSpace) Alloc(size uint64, stackID uint32) (uint64, error) {
	if size == 0 {
		return 0, ErrZeroSize
	}
	rs := roundSize(size)
	var addr uint64
	if lst := as.frees[rs]; len(lst) > 0 {
		addr = lst[len(lst)-1]
		as.frees[rs] = lst[:len(lst)-1]
	} else {
		addr = as.brk
		as.brk += rs
	}
	info := AllocInfo{Addr: addr, Size: size, StackID: stackID}
	as.live[addr] = info
	as.liveBytes += size
	if as.liveBytes > as.peakBytes {
		as.peakBytes = as.liveBytes
	}
	as.allocCount++
	if as.hooks.OnAlloc != nil {
		as.hooks.OnAlloc(info)
	}
	return addr, nil
}

// Free releases the allocation starting at addr.
func (as *AddressSpace) Free(addr uint64) error {
	info, ok := as.live[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, addr)
	}
	if as.hooks.OnFree != nil {
		as.hooks.OnFree(info)
	}
	delete(as.live, addr)
	as.liveBytes -= info.Size
	rs := roundSize(info.Size)
	as.frees[rs] = append(as.frees[rs], addr)
	return nil
}

// Realloc grows or shrinks the allocation at addr, returning the (possibly
// moved) new address. Like glibc, a grow moves the region; a shrink keeps it
// in place. Both the free of the old region and the allocation of the new
// are reported to the hooks, which is what lets the monitoring layer retire
// and re-register the data object like Extrae's realloc wrapper does.
func (as *AddressSpace) Realloc(addr, newSize uint64, stackID uint32) (uint64, error) {
	if newSize == 0 {
		return 0, ErrZeroSize
	}
	info, ok := as.live[addr]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrNotAllocated, addr)
	}
	if roundSize(newSize) == roundSize(info.Size) {
		// Same rounded block: update size in place, report both events so the
		// object registry sees the size change.
		if as.hooks.OnFree != nil {
			as.hooks.OnFree(info)
		}
		as.liveBytes += newSize - info.Size
		if as.liveBytes > as.peakBytes {
			as.peakBytes = as.liveBytes
		}
		ni := AllocInfo{Addr: addr, Size: newSize, StackID: stackID}
		as.live[addr] = ni
		if as.hooks.OnAlloc != nil {
			as.hooks.OnAlloc(ni)
		}
		return addr, nil
	}
	if err := as.Free(addr); err != nil {
		return 0, err
	}
	return as.Alloc(newSize, stackID)
}

// Live returns the live allocations sorted by address. Intended for the
// object registry's initial scan and for tests.
func (as *AddressSpace) Live() []AllocInfo {
	out := make([]AllocInfo, 0, len(as.live))
	for _, info := range as.live {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Owns reports whether addr falls inside any live allocation, returning it.
func (as *AddressSpace) Owns(addr uint64) (AllocInfo, bool) {
	// Linear probe over map would be O(n); keep a sorted cache? The object
	// registry maintains its own interval tree, so this method is only used
	// in tests and for debugging; a scan is acceptable.
	for _, info := range as.live {
		if addr >= info.Addr && addr < info.Addr+info.Size {
			return info, true
		}
	}
	return AllocInfo{}, false
}
