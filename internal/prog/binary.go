package prog

import (
	"fmt"
	"sort"
)

// ipStride is the synthetic code-address distance between consecutive source
// lines: each line of a registered function owns a 16-byte IP range.
const ipStride = 16

// textBase is the base address of the synthetic text segment, placed well
// below the heap like a non-PIE Linux binary.
const textBase = 0x400000

// dataBase is the base address of the synthetic .data/.bss segment holding
// static data objects.
const dataBase = 0x600000

// Function describes one registered function of the synthetic binary.
type Function struct {
	// Name is the (demangled) function name.
	Name string
	// File is the source file that defines the function.
	File string
	// StartLine is the first source line of the body.
	StartLine int
	// Lines is the number of source lines the body spans.
	Lines int
	// LowIP is the first code address; the function occupies
	// [LowIP, LowIP+Lines*ipStride).
	LowIP uint64
}

// HighIP returns one past the last code address of the function.
func (f *Function) HighIP() uint64 { return f.LowIP + uint64(f.Lines)*ipStride }

// IPForLine returns the code address corresponding to an absolute source
// line within the function body.
func (f *Function) IPForLine(line int) (uint64, error) {
	off := line - f.StartLine
	if off < 0 || off >= f.Lines {
		return 0, fmt.Errorf("prog: line %d outside %s (%s:%d..%d)",
			line, f.Name, f.File, f.StartLine, f.StartLine+f.Lines-1)
	}
	return f.LowIP + uint64(off)*ipStride, nil
}

// StaticObject is a named static data symbol (the .data/.bss objects Extrae
// discovers by scanning the binary's symbol table).
type StaticObject struct {
	Name string
	Addr uint64
	Size uint64
}

// Location is a resolved code address.
type Location struct {
	Function string
	File     string
	Line     int
}

func (l Location) String() string {
	return fmt.Sprintf("%s (%s:%d)", l.Function, l.File, l.Line)
}

// Binary is the synthetic program image: functions with line tables and
// static data objects. It provides the IP→source and symbol→address
// resolution that the real tools obtain from DWARF and the ELF symtab.
type Binary struct {
	funcs   []*Function
	byName  map[string]*Function
	statics []StaticObject
	nextIP  uint64
	nextDat uint64
}

// NewBinary creates an empty synthetic binary image.
func NewBinary() *Binary {
	return &Binary{
		byName:  make(map[string]*Function),
		nextIP:  textBase,
		nextDat: dataBase,
	}
}

// AddFunction registers a function spanning nLines source lines starting at
// startLine of file, assigning it a fresh IP range.
func (b *Binary) AddFunction(name, file string, startLine, nLines int) (*Function, error) {
	if name == "" || file == "" {
		return nil, fmt.Errorf("prog: function needs a name and a file")
	}
	if nLines <= 0 || startLine <= 0 {
		return nil, fmt.Errorf("prog: function %s needs positive startLine and nLines", name)
	}
	if _, dup := b.byName[name]; dup {
		return nil, fmt.Errorf("prog: duplicate function %s", name)
	}
	f := &Function{Name: name, File: file, StartLine: startLine, Lines: nLines, LowIP: b.nextIP}
	b.nextIP += uint64(nLines) * ipStride
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f, nil
}

// Function returns the registered function with the given name.
func (b *Binary) Function(name string) (*Function, bool) {
	f, ok := b.byName[name]
	return f, ok
}

// Functions returns all registered functions in registration order.
func (b *Binary) Functions() []*Function { return b.funcs }

// AddStaticData reserves a static data symbol of the given size and returns
// it. Static objects are identified by name, as in the paper.
func (b *Binary) AddStaticData(name string, size uint64) (StaticObject, error) {
	if name == "" || size == 0 {
		return StaticObject{}, fmt.Errorf("prog: static object needs a name and a size")
	}
	obj := StaticObject{Name: name, Addr: b.nextDat, Size: size}
	b.nextDat += roundSize(size)
	b.statics = append(b.statics, obj)
	return obj, nil
}

// StaticObjects returns all registered static data objects.
func (b *Binary) StaticObjects() []StaticObject { return b.statics }

// Lookup resolves a code address to its function, file and line.
func (b *Binary) Lookup(ip uint64) (Location, bool) {
	// Functions are allocated in ascending IP order; binary-search the start.
	i := sort.Search(len(b.funcs), func(i int) bool { return b.funcs[i].HighIP() > ip })
	if i == len(b.funcs) || ip < b.funcs[i].LowIP {
		return Location{}, false
	}
	f := b.funcs[i]
	line := f.StartLine + int((ip-f.LowIP)/ipStride)
	return Location{Function: f.Name, File: f.File, Line: line}, true
}
