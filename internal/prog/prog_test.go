package prog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	as := NewAddressSpace(0x10000)
	a1, err := as.Alloc(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != 0x10000 {
		t.Errorf("first alloc at %#x, want %#x", a1, 0x10000)
	}
	a2, err := as.Alloc(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1+112 { // 100 rounded to 112 (16-byte alignment)
		t.Errorf("second alloc at %#x, want %#x", a2, a1+112)
	}
	if a2%16 != 0 {
		t.Error("allocation not 16-byte aligned")
	}
	if as.LiveBytes() != 108 {
		t.Errorf("LiveBytes = %d, want 108", as.LiveBytes())
	}
	if as.AllocCount() != 2 {
		t.Errorf("AllocCount = %d", as.AllocCount())
	}
}

func TestAllocZeroSize(t *testing.T) {
	as := NewAddressSpace(0)
	if _, err := as.Alloc(0, 0); err != ErrZeroSize {
		t.Errorf("zero alloc err = %v", err)
	}
	if _, err := as.Realloc(0, 0, 0); err != ErrZeroSize {
		t.Errorf("zero realloc err = %v", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	as := NewAddressSpace(0x1000)
	a, _ := as.Alloc(64, 0)
	if err := as.Free(a); err != nil {
		t.Fatal(err)
	}
	if as.LiveBytes() != 0 {
		t.Errorf("LiveBytes after free = %d", as.LiveBytes())
	}
	// Same-size alloc reuses the freed block.
	b, _ := as.Alloc(64, 0)
	if b != a {
		t.Errorf("freed block not reused: %#x vs %#x", b, a)
	}
	if err := as.Free(0xdead); err == nil {
		t.Error("freeing unknown address must fail")
	}
	as.Free(b)
	if err := as.Free(b); err == nil {
		t.Error("double free must fail")
	}
}

func TestReallocGrowMoves(t *testing.T) {
	as := NewAddressSpace(0x1000)
	a, _ := as.Alloc(64, 5)
	b, err := as.Realloc(a, 4096, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Error("grow realloc should move the block")
	}
	if as.LiveBytes() != 4096 {
		t.Errorf("LiveBytes = %d, want 4096", as.LiveBytes())
	}
	if _, err := as.Realloc(0xbeef, 10, 0); err == nil {
		t.Error("realloc of unknown address must fail")
	}
}

func TestReallocSameBlockInPlace(t *testing.T) {
	as := NewAddressSpace(0x1000)
	a, _ := as.Alloc(60, 5)
	b, err := as.Realloc(a, 64, 5) // both round to 64
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("in-place realloc moved: %#x vs %#x", b, a)
	}
	if as.LiveBytes() != 64 {
		t.Errorf("LiveBytes = %d, want 64", as.LiveBytes())
	}
}

func TestHooksFire(t *testing.T) {
	as := NewAddressSpace(0x1000)
	var allocs, frees []AllocInfo
	as.SetHooks(Hooks{
		OnAlloc: func(i AllocInfo) { allocs = append(allocs, i) },
		OnFree:  func(i AllocInfo) { frees = append(frees, i) },
	})
	a, _ := as.Alloc(100, 7)
	if len(allocs) != 1 || allocs[0].Addr != a || allocs[0].StackID != 7 {
		t.Fatalf("alloc hook = %+v", allocs)
	}
	as.Realloc(a, 5000, 8)
	if len(frees) != 1 || frees[0].Addr != a {
		t.Fatalf("realloc did not fire free hook: %+v", frees)
	}
	if len(allocs) != 2 || allocs[1].StackID != 8 {
		t.Fatalf("realloc did not fire alloc hook: %+v", allocs)
	}
}

func TestPeakBytes(t *testing.T) {
	as := NewAddressSpace(0)
	a, _ := as.Alloc(1000, 0)
	as.Alloc(2000, 0)
	as.Free(a)
	as.Alloc(100, 0)
	if as.PeakBytes() != 3000 {
		t.Errorf("PeakBytes = %d, want 3000", as.PeakBytes())
	}
}

func TestLiveSortedAndOwns(t *testing.T) {
	as := NewAddressSpace(0x1000)
	as.Alloc(64, 1)
	b, _ := as.Alloc(64, 2)
	as.Alloc(64, 3)
	live := as.Live()
	if len(live) != 3 {
		t.Fatalf("Live len = %d", len(live))
	}
	for i := 1; i < len(live); i++ {
		if live[i-1].Addr >= live[i].Addr {
			t.Fatal("Live not sorted")
		}
	}
	info, ok := as.Owns(b + 10)
	if !ok || info.Addr != b {
		t.Errorf("Owns(%#x) = %+v, %v", b+10, info, ok)
	}
	if _, ok := as.Owns(0xffffffff); ok {
		t.Error("Owns matched an unallocated address")
	}
}

func TestPropertyAllocationsDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(0x100000)
		var addrs []uint64
		for i := 0; i < 100; i++ {
			switch {
			case len(addrs) > 0 && rng.Intn(3) == 0:
				i := rng.Intn(len(addrs))
				if as.Free(addrs[i]) != nil {
					return false
				}
				addrs = append(addrs[:i], addrs[i+1:]...)
			default:
				a, err := as.Alloc(uint64(1+rng.Intn(500)), 0)
				if err != nil {
					return false
				}
				addrs = append(addrs, a)
			}
		}
		// All live allocations must be pairwise disjoint.
		live := as.Live()
		for i := 1; i < len(live); i++ {
			prevEnd := live[i-1].Addr + roundSize(live[i-1].Size)
			if live[i].Addr < prevEnd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBinaryFunctions(t *testing.T) {
	b := NewBinary()
	f, err := b.AddFunction("ComputeSPMV_ref", "ComputeSPMV_ref.cpp", 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := f.IPForLine(75)
	if err != nil {
		t.Fatal(err)
	}
	loc, ok := b.Lookup(ip)
	if !ok {
		t.Fatal("Lookup failed")
	}
	if loc.Function != "ComputeSPMV_ref" || loc.File != "ComputeSPMV_ref.cpp" || loc.Line != 75 {
		t.Errorf("Lookup = %+v", loc)
	}
	if _, err := f.IPForLine(59); err == nil {
		t.Error("line before function accepted")
	}
	if _, err := f.IPForLine(90); err == nil {
		t.Error("line after function accepted")
	}
	if got := loc.String(); !strings.Contains(got, "ComputeSPMV_ref.cpp:75") {
		t.Errorf("Location.String = %q", got)
	}
}

func TestBinaryValidation(t *testing.T) {
	b := NewBinary()
	if _, err := b.AddFunction("", "f.c", 1, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := b.AddFunction("f", "f.c", 0, 1); err == nil {
		t.Error("zero start line accepted")
	}
	b.AddFunction("f", "f.c", 1, 5)
	if _, err := b.AddFunction("f", "g.c", 1, 5); err == nil {
		t.Error("duplicate function accepted")
	}
	if _, ok := b.Function("f"); !ok {
		t.Error("Function lookup failed")
	}
	if _, ok := b.Function("missing"); ok {
		t.Error("missing function found")
	}
	if len(b.Functions()) != 1 {
		t.Error("Functions() wrong length")
	}
}

func TestBinaryLookupMiss(t *testing.T) {
	b := NewBinary()
	f1, _ := b.AddFunction("a", "a.c", 10, 3)
	b.AddFunction("b", "b.c", 1, 3)
	if _, ok := b.Lookup(0); ok {
		t.Error("Lookup(0) matched")
	}
	if _, ok := b.Lookup(f1.HighIP() + 1000); ok {
		t.Error("Lookup far past end matched")
	}
	// Boundary: HighIP of last function is exclusive.
	last := b.Functions()[1]
	if _, ok := b.Lookup(last.HighIP()); ok {
		t.Error("HighIP should be exclusive")
	}
	if loc, ok := b.Lookup(last.HighIP() - 1); !ok || loc.Line != 3 {
		t.Errorf("last byte of last line = %+v, %v", loc, ok)
	}
}

func TestStaticData(t *testing.T) {
	b := NewBinary()
	o1, err := b.AddStaticData("global_table", 4096)
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := b.AddStaticData("flags", 8)
	if o2.Addr < o1.Addr+4096 {
		t.Error("static objects overlap")
	}
	if len(b.StaticObjects()) != 2 {
		t.Error("StaticObjects wrong length")
	}
	if _, err := b.AddStaticData("", 4); err == nil {
		t.Error("unnamed static accepted")
	}
	if _, err := b.AddStaticData("x", 0); err == nil {
		t.Error("zero-size static accepted")
	}
}

func TestCallStack(t *testing.T) {
	var cs CallStack
	if cs.Top() != 0 || cs.Depth() != 0 {
		t.Error("empty stack state")
	}
	cs.Push(100)
	cs.Push(200)
	if cs.Top() != 200 || cs.Depth() != 2 {
		t.Errorf("Top/Depth = %d/%d", cs.Top(), cs.Depth())
	}
	snap := cs.Snapshot()
	cs.Pop()
	if cs.Top() != 100 {
		t.Error("Pop wrong")
	}
	if len(snap) != 2 || snap[0] != 100 || snap[1] != 200 {
		t.Errorf("Snapshot = %v (must be unaffected by Pop)", snap)
	}
	defer func() {
		if recover() == nil {
			t.Error("Pop of empty stack did not panic")
		}
	}()
	cs.Pop()
	cs.Pop()
}

func TestStackTableIntern(t *testing.T) {
	st := NewStackTable()
	if st.Len() != 1 {
		t.Fatal("table must start with empty stack id 0")
	}
	id1 := st.Intern([]uint64{1, 2, 3})
	id2 := st.Intern([]uint64{1, 2, 3})
	id3 := st.Intern([]uint64{1, 2})
	if id1 != id2 {
		t.Error("identical stacks got different ids")
	}
	if id1 == id3 {
		t.Error("different stacks share an id")
	}
	if id0 := st.Intern(nil); id0 != 0 {
		t.Errorf("empty stack id = %d, want 0", id0)
	}
	fr := st.Frames(id1)
	if len(fr) != 3 || fr[2] != 3 {
		t.Errorf("Frames = %v", fr)
	}
	if st.Frames(9999) != nil {
		t.Error("unknown id should give nil frames")
	}
}

func TestStackFormatAndSiteName(t *testing.T) {
	b := NewBinary()
	fMain, _ := b.AddFunction("main", "main.cpp", 1, 50)
	fGen, _ := b.AddFunction("GenerateProblem", "GenerateProblem_ref.cpp", 100, 60)
	ipMain, _ := fMain.IPForLine(10)
	ipGen, _ := fGen.IPForLine(108)
	st := NewStackTable()
	id := st.Intern([]uint64{ipMain, ipGen})
	s := st.Format(id, b)
	if !strings.Contains(s, "main (main.cpp:10)") || !strings.Contains(s, "GenerateProblem_ref.cpp:108") {
		t.Errorf("Format = %q", s)
	}
	site := st.SiteName(id, b)
	if site != "108_GenerateProblem_ref.cpp" {
		t.Errorf("SiteName = %q, want 108_GenerateProblem_ref.cpp", site)
	}
	if st.SiteName(0, b) != "unknown" {
		t.Error("empty stack site name")
	}
	// Unresolvable IP falls back to hex.
	idBad := st.Intern([]uint64{0xdead0000})
	if got := st.SiteName(idBad, b); !strings.HasPrefix(got, "ip_") {
		t.Errorf("unresolvable site = %q", got)
	}
	if got := st.Format(idBad, b); !strings.Contains(got, "0xdead0000") {
		t.Errorf("unresolvable format = %q", got)
	}
	if st.Format(0, b) != "<empty>" {
		t.Error("empty stack format")
	}
}

func TestPropertyStackInternRoundTrip(t *testing.T) {
	f := func(frames []uint64) bool {
		st := NewStackTable()
		id := st.Intern(frames)
		got := st.Frames(id)
		if len(got) != len(frames) {
			return len(frames) == 0 && got == nil
		}
		for i := range frames {
			if got[i] != frames[i] {
				return false
			}
		}
		// Interning again must return the same id.
		return st.Intern(frames) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
