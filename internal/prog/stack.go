package prog

import (
	"fmt"
	"strings"
)

// CallStack tracks the active call chain of a simulated thread as frame
// entry IPs. The monitoring layer snapshots it when a PEBS sample fires and
// when an allocation is made (the allocation call stack is the identity of a
// dynamic data object in the paper).
type CallStack struct {
	frames []uint64
}

// Push enters a frame identified by its call-site IP.
func (cs *CallStack) Push(ip uint64) { cs.frames = append(cs.frames, ip) }

// Pop leaves the innermost frame. Popping an empty stack is a programming
// error and panics, as it indicates unbalanced instrumentation.
func (cs *CallStack) Pop() {
	if len(cs.frames) == 0 {
		panic("prog: CallStack.Pop on empty stack (unbalanced instrumentation)")
	}
	cs.frames = cs.frames[:len(cs.frames)-1]
}

// Depth returns the number of active frames.
func (cs *CallStack) Depth() int { return len(cs.frames) }

// Top returns the innermost frame IP (0 when empty).
func (cs *CallStack) Top() uint64 {
	if len(cs.frames) == 0 {
		return 0
	}
	return cs.frames[len(cs.frames)-1]
}

// Snapshot returns a copy of the frames, outermost first.
func (cs *CallStack) Snapshot() []uint64 {
	out := make([]uint64, len(cs.frames))
	copy(out, cs.frames)
	return out
}

// StackTable interns call stacks, assigning each distinct chain a compact
// uint32 id, like Extrae's callstack identifier tables. ID 0 is reserved for
// the empty stack.
type StackTable struct {
	ids    map[string]uint32
	stacks [][]uint64
}

// NewStackTable creates an empty table with id 0 bound to the empty stack.
func NewStackTable() *StackTable {
	st := &StackTable{ids: make(map[string]uint32)}
	st.stacks = append(st.stacks, nil) // id 0
	st.ids[""] = 0
	return st
}

func stackKey(frames []uint64) string {
	if len(frames) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, f := range frames {
		fmt.Fprintf(&sb, "%x;", f)
	}
	return sb.String()
}

// Intern returns the id for the frame chain, registering it if new.
func (st *StackTable) Intern(frames []uint64) uint32 {
	key := stackKey(frames)
	if id, ok := st.ids[key]; ok {
		return id
	}
	id := uint32(len(st.stacks))
	cp := make([]uint64, len(frames))
	copy(cp, frames)
	st.stacks = append(st.stacks, cp)
	st.ids[key] = id
	return id
}

// Frames returns the frame chain for an id (nil for unknown or empty).
func (st *StackTable) Frames(id uint32) []uint64 {
	if int(id) >= len(st.stacks) {
		return nil
	}
	return st.stacks[id]
}

// Len returns the number of interned stacks, including the empty stack.
func (st *StackTable) Len() int { return len(st.stacks) }

// Stacks returns a deep copy of every interned chain, index = id (the
// checkpoint serialization of the table; the key map is derivable).
func (st *StackTable) Stacks() [][]uint64 {
	out := make([][]uint64, len(st.stacks))
	for i, s := range st.stacks {
		out[i] = append([]uint64(nil), s...)
	}
	return out
}

// RestoreStacks replaces the table's contents with the given chains. The
// table as rebuilt by setup must be a prefix of the snapshot (runtime
// interning only appends); a mismatch means the snapshot belongs to a
// different configuration and is rejected.
func (st *StackTable) RestoreStacks(stacks [][]uint64) error {
	if len(stacks) == 0 || len(stacks[0]) != 0 {
		return fmt.Errorf("prog: stack snapshot must reserve id 0 for the empty stack")
	}
	if len(stacks) < len(st.stacks) {
		return fmt.Errorf("prog: stack snapshot has %d chains, rebuilt table already has %d", len(stacks), len(st.stacks))
	}
	ids := make(map[string]uint32, len(stacks))
	chains := make([][]uint64, 0, len(stacks))
	for i, s := range stacks {
		var cp []uint64
		if len(s) > 0 {
			cp = append([]uint64(nil), s...)
		}
		key := stackKey(cp)
		if prev, ok := ids[key]; ok {
			return fmt.Errorf("prog: stack snapshot chains %d and %d are duplicates", prev, i)
		}
		if i < len(st.stacks) && key != stackKey(st.stacks[i]) {
			return fmt.Errorf("prog: stack snapshot chain %d does not match the rebuilt table", i)
		}
		ids[key] = uint32(i)
		chains = append(chains, cp)
	}
	st.ids = ids
	st.stacks = chains
	return nil
}

// Format renders the stack id as a human-readable chain using the binary's
// line tables, innermost frame last, e.g.
// "main (hpcg.cpp:42) > GenerateProblem (GenerateProblem_ref.cpp:108)".
func (st *StackTable) Format(id uint32, b *Binary) string {
	frames := st.Frames(id)
	if len(frames) == 0 {
		return "<empty>"
	}
	parts := make([]string, 0, len(frames))
	for _, ip := range frames {
		if loc, ok := b.Lookup(ip); ok {
			parts = append(parts, loc.String())
		} else {
			parts = append(parts, fmt.Sprintf("%#x", ip))
		}
	}
	return strings.Join(parts, " > ")
}

// SiteName renders the innermost frame of the stack as the short allocation
// site label the paper uses, e.g. "108_GenerateProblem_ref.cpp" for an
// allocation at line 108 of that file.
func (st *StackTable) SiteName(id uint32, b *Binary) string {
	frames := st.Frames(id)
	if len(frames) == 0 {
		return "unknown"
	}
	ip := frames[len(frames)-1]
	loc, ok := b.Lookup(ip)
	if !ok {
		return fmt.Sprintf("ip_%#x", ip)
	}
	return fmt.Sprintf("%d_%s", loc.Line, loc.File)
}
