// Package report renders the three-perspective analysis the paper's
// Figure 1 presents: source-code lines over folded time (top panel),
// referenced addresses over folded time with data-object annotations
// (middle panel), and hardware-counter rates over folded time (bottom
// panel) — as plain-text charts and CSV series, plus the object, phase and
// bandwidth tables quoted in the paper's text.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Canvas is a character raster for scatter/line charts.
type Canvas struct {
	W, H  int
	cells []byte
}

// NewCanvas creates a blank canvas of the given size.
func NewCanvas(w, h int) *Canvas {
	c := &Canvas{W: w, H: h, cells: make([]byte, w*h)}
	for i := range c.cells {
		c.cells[i] = ' '
	}
	return c
}

// Plot sets the cell at column x, row y (row 0 is the top). Out-of-range
// coordinates are ignored. Existing marks are only overwritten by "heavier"
// characters so stores ('#') stay visible over loads ('.').
func (c *Canvas) Plot(x, y int, ch byte) {
	if x < 0 || x >= c.W || y < 0 || y >= c.H {
		return
	}
	i := y*c.W + x
	if weight(ch) >= weight(c.cells[i]) {
		c.cells[i] = ch
	}
}

func weight(ch byte) int {
	switch ch {
	case ' ':
		return 0
	case '.':
		return 1
	case '+':
		return 2
	case '*':
		return 3
	case '#':
		return 4
	}
	return 5
}

// Row returns row y as a string.
func (c *Canvas) Row(y int) string { return string(c.cells[y*c.W : (y+1)*c.W]) }

// WriteTo writes the canvas with an optional per-row label function.
func (c *Canvas) WriteTo(w io.Writer, label func(row int) string) error {
	for y := 0; y < c.H; y++ {
		l := ""
		if label != nil {
			l = label(y)
		}
		if _, err := fmt.Fprintf(w, "%14s |%s|\n", l, c.Row(y)); err != nil {
			return err
		}
	}
	axis := strings.Repeat("-", c.W)
	_, err := fmt.Fprintf(w, "%14s +%s+\n%14s  0%*s\n", "", axis, "", c.W-1, "1")
	return err
}

// XForSigma maps normalized time to a column.
func (c *Canvas) XForSigma(sigma float64) int {
	x := int(sigma * float64(c.W))
	if x >= c.W {
		x = c.W - 1
	}
	if x < 0 {
		x = 0
	}
	return x
}

// YForValue maps a value in [lo, hi] to a row (hi at the top).
func (c *Canvas) YForValue(v, lo, hi float64) int {
	if hi <= lo {
		return c.H - 1
	}
	y := int((hi - v) / (hi - lo) * float64(c.H))
	if y >= c.H {
		y = c.H - 1
	}
	if y < 0 {
		y = 0
	}
	return y
}
