package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cpu"
	"repro/internal/folding"
)

// WriteLinesCSV emits the top panel's data: sigma, ip, function, line.
func WriteLinesCSV(w io.Writer, f *Figure1) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sigma", "ip", "function", "file", "line"}); err != nil {
		return err
	}
	for _, lp := range f.Folded.Lines {
		fn, file, line := "", "", 0
		if loc, ok := f.Binary.Lookup(lp.IP); ok {
			fn, file, line = loc.Function, loc.File, loc.Line
		}
		rec := []string{
			formatFloat(lp.Sigma),
			fmt.Sprintf("%#x", lp.IP),
			fn, file, strconv.Itoa(line),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMemCSV emits the middle panel's data: sigma, addr, kind, latency,
// source, and the owning object (resolved through the registry snapshot).
func WriteMemCSV(w io.Writer, f *Figure1, objectOf func(addr uint64) string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sigma", "addr", "kind", "latency", "source", "object"}); err != nil {
		return err
	}
	for _, mp := range f.Folded.Mem {
		kind := "load"
		if mp.Store {
			kind = "store"
		}
		obj := ""
		if objectOf != nil {
			obj = objectOf(mp.Addr)
		}
		rec := []string{
			formatFloat(mp.Sigma),
			fmt.Sprintf("%#x", mp.Addr),
			kind,
			strconv.FormatUint(mp.Latency, 10),
			mp.Source.String(),
			obj,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCountersCSV emits the bottom panel's series: sigma, MIPS and the
// per-instruction ratios.
func WriteCountersCSV(w io.Writer, f *folding.Folded) error {
	cw := csv.NewWriter(w)
	header := []string{"sigma", "mips", "branches_per_instr",
		"l1d_miss_per_instr", "l2_miss_per_instr", "l3_miss_per_instr"}
	if err := cw.Write(header); err != nil {
		return err
	}
	mips := f.MIPS()
	br := f.PerInstruction(cpu.CtrBranches)
	l1 := f.PerInstruction(cpu.CtrL1DMiss)
	l2 := f.PerInstruction(cpu.CtrL2Miss)
	l3 := f.PerInstruction(cpu.CtrL3Miss)
	for i, g := range f.Grid {
		rec := []string{
			formatFloat(g), formatFloat(mips[i]), formatFloat(br[i]),
			formatFloat(l1[i]), formatFloat(l2[i]), formatFloat(l3[i]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePhasesCSV emits the phase table.
func WritePhasesCSV(w io.Writer, f *folding.Folded) error {
	cw := csv.NewWriter(w)
	header := []string{"phase", "lo", "hi", "direction", "duration_ns",
		"mips", "l1d_miss_per_instr", "l3_miss_per_instr", "span_bandwidth_mb_s",
		"loads", "stores"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, p := range f.Phases {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i)
		}
		rec := []string{
			name, formatFloat(p.Lo), formatFloat(p.Hi), p.Direction.String(),
			formatFloat(p.DurationNs), formatFloat(p.MIPSMean),
			formatFloat(p.PerInstr[cpu.CtrL1DMiss]),
			formatFloat(p.PerInstr[cpu.CtrL3Miss]),
			formatFloat(p.SpanBandwidth / 1e6),
			strconv.Itoa(p.Loads), strconv.Itoa(p.Stores),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
