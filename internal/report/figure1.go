package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/memhier"
	"repro/internal/objects"
	"repro/internal/prog"
)

// Figure1 bundles the inputs of the three-panel report.
type Figure1 struct {
	Folded  *folding.Folded
	Binary  *prog.Binary
	Objects []*objects.Object
	// Width and Height control each panel's raster (defaults 100×24).
	Width, Height int
}

func (f *Figure1) dims() (int, int) {
	w, h := f.Width, f.Height
	if w <= 0 {
		w = 100
	}
	if h <= 0 {
		h = 24
	}
	return w, h
}

// Render writes all three panels and the companion tables.
func (f *Figure1) Render(w io.Writer) error {
	if err := f.RenderCodeLines(w); err != nil {
		return err
	}
	if err := f.RenderAddresses(w); err != nil {
		return err
	}
	if err := f.RenderCounters(w); err != nil {
		return err
	}
	if err := f.RenderPhaseTable(w); err != nil {
		return err
	}
	return f.RenderObjectTable(w)
}

// RenderCodeLines draws the top panel: sampled source position (function ×
// line, encoded by IP) against folded time.
func (f *Figure1) RenderCodeLines(w io.Writer) error {
	width, height := f.dims()
	fmt.Fprintf(w, "\n== Figure 1 (top): code line vs folded time — region folded over %d instances ==\n",
		f.Folded.InstancesUsed)
	if len(f.Folded.Lines) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	lo, hi := f.Folded.Lines[0].IP, f.Folded.Lines[0].IP
	for _, lp := range f.Folded.Lines {
		if lp.IP < lo {
			lo = lp.IP
		}
		if lp.IP > hi {
			hi = lp.IP
		}
	}
	c := NewCanvas(width, height)
	for _, lp := range f.Folded.Lines {
		c.Plot(c.XForSigma(lp.Sigma), c.YForValue(float64(lp.IP), float64(lo), float64(hi+1)), '*')
	}
	return c.WriteTo(w, func(row int) string {
		// Label rows with the function owning the row's IP midpoint.
		ip := hi - (hi-lo)*uint64(row)/uint64(height)
		if loc, ok := f.Binary.Lookup(ip); ok {
			name := loc.Function
			if len(name) > 14 {
				name = name[:14]
			}
			return name
		}
		return ""
	})
}

// RenderAddresses draws the middle panel: referenced addresses against
// folded time; loads are '.', stores '#'. Object ranges referenced by the
// samples are annotated below, paper-style ("name|size").
func (f *Figure1) RenderAddresses(w io.Writer) error {
	width, height := f.dims()
	fmt.Fprintf(w, "\n== Figure 1 (middle): addresses referenced vs folded time ==\n")
	if len(f.Folded.Mem) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	addrs := make([]float64, len(f.Folded.Mem))
	for i, mp := range f.Folded.Mem {
		addrs[i] = float64(mp.Addr)
	}
	sort.Float64s(addrs)
	lo := addrs[int(0.005*float64(len(addrs)))]
	hi := addrs[len(addrs)-1-int(0.005*float64(len(addrs)))]
	c := NewCanvas(width, height)
	for _, mp := range f.Folded.Mem {
		ch := byte('.')
		if mp.Store {
			ch = '#'
		}
		c.Plot(c.XForSigma(mp.Sigma), c.YForValue(float64(mp.Addr), lo, hi), ch)
	}
	if err := c.WriteTo(w, func(row int) string {
		v := hi - (hi-lo)*float64(row)/float64(height)
		return fmt.Sprintf("%#x", uint64(v))
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "   legend: '.' load, '#' store")
	// Object annotations: most-referenced objects overlapping the panel.
	fmt.Fprintln(w, "   objects:")
	for _, o := range topObjects(f.Objects, 6) {
		fmt.Fprintf(w, "     %-40s  range %s  refs %d (loads %d, stores %d)\n",
			o.Label(), o.Range, o.Refs, o.Loads, o.Stores)
	}
	return nil
}

func topObjects(objs []*objects.Object, n int) []*objects.Object {
	out := make([]*objects.Object, 0, len(objs))
	for _, o := range objs {
		if o.Refs > 0 {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Refs > out[j].Refs })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// RenderCounters draws the bottom panel: MIPS plus per-instruction counter
// ratios over folded time, one line chart per series.
func (f *Figure1) RenderCounters(w io.Writer) error {
	width, _ := f.dims()
	fmt.Fprintf(w, "\n== Figure 1 (bottom): counters / instruction and MIPS vs folded time ==\n")
	mips := f.Folded.MIPS()
	if err := renderSeries(w, "MIPS", f.Folded.Grid, mips, width, 10); err != nil {
		return err
	}
	for _, ctr := range []cpu.CounterID{cpu.CtrBranches, cpu.CtrL1DMiss, cpu.CtrL2Miss, cpu.CtrL3Miss} {
		series := f.Folded.PerInstruction(ctr)
		name := fmt.Sprintf("%s/instr", counterShort(ctr))
		if err := renderSeries(w, name, f.Folded.Grid, series, width, 8); err != nil {
			return err
		}
	}
	return nil
}

func counterShort(c cpu.CounterID) string {
	switch c {
	case cpu.CtrBranches:
		return "Branches"
	case cpu.CtrL1DMiss:
		return "L1D miss"
	case cpu.CtrL2Miss:
		return "L2 miss"
	case cpu.CtrL3Miss:
		return "L3 miss"
	}
	return c.String()
}

func renderSeries(w io.Writer, name string, grid, ys []float64, width, height int) error {
	if len(ys) == 0 {
		return nil
	}
	lo, hi := ys[0], ys[0]
	for _, v := range ys {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	c := NewCanvas(width, height)
	for i, g := range grid {
		c.Plot(c.XForSigma(g), c.YForValue(ys[i], lo, hi), '*')
	}
	fmt.Fprintf(w, "\n-- %s (min %.4g, max %.4g) --\n", name, lo, hi)
	return c.WriteTo(w, func(row int) string {
		v := hi - (hi-lo)*float64(row)/float64(height)
		return fmt.Sprintf("%.4g", v)
	})
}

// RenderPhaseTable writes the detected phase structure with the paper's
// derived metrics: per-phase MIPS, miss ratios, sweep direction and the
// traversal-bandwidth approximation.
func (f *Figure1) RenderPhaseTable(w io.Writer) error {
	fmt.Fprintf(w, "\n== Detected phases ==\n")
	fmt.Fprintf(w, "%-28s %7s %7s %9s %9s %10s %10s %12s\n",
		"phase", "from", "to", "dir", "MIPS", "L1Dm/ins", "L3m/ins", "span BW MB/s")
	for i, p := range f.Folded.Phases {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i)
		}
		if len(name) > 28 {
			name = name[:28]
		}
		fmt.Fprintf(w, "%-28s %7.3f %7.3f %9s %9.0f %10.4f %10.4f %12.0f\n",
			name, p.Lo, p.Hi, p.Direction, p.MIPSMean,
			p.PerInstr[cpu.CtrL1DMiss], p.PerInstr[cpu.CtrL3Miss],
			p.SpanBandwidth/1e6)
	}
	fmt.Fprintf(w, "mean IPC over region: %.3f\n", f.Folded.MeanIPC())
	return nil
}

// RenderObjectTable writes the referenced-object accounting. Figure1 is
// only assembled from flat Session runs (NUMA machines render
// MachineFigure instead), so the mix keeps the historical 4-source
// encoding — the remote bucket is structurally zero here.
func (f *Figure1) RenderObjectTable(w io.Writer) error {
	fmt.Fprintf(w, "\n== Data objects by sampled references ==\n")
	fmt.Fprintf(w, "%-42s %-8s %10s %10s %10s %9s  %s\n",
		"object", "kind", "refs", "loads", "stores", "avg lat", "source mix (L1/L2/L3/DRAM)")
	for _, o := range topObjects(f.Objects, 12) {
		mix := make([]string, memhier.SrcDRAMRemote)
		for i := range mix {
			mix[i] = fmt.Sprintf("%d", o.Sources[i])
		}
		fmt.Fprintf(w, "%-42s %-8s %10d %10d %10d %9.1f  %s\n",
			o.Label(), o.Kind, o.Refs, o.Loads, o.Stores, o.MeanLatency(),
			strings.Join(mix, "/"))
	}
	return nil
}
