package report

import (
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/folding"
)

// ThreadFigure is one simulated hardware thread's folded view of a
// multi-threaded run.
type ThreadFigure struct {
	// Thread is the 1-based thread id.
	Thread int
	// Folded is the thread's folded region.
	Folded *folding.Folded
	// PaperLabels holds the paper letter of each detected phase, aligned
	// with Folded.Phases ("-" for unlettered phases; nil omits the column).
	PaperLabels []string
}

// L3ThreadRow is one thread's share of the shared-L3 traffic.
type L3ThreadRow struct {
	// Thread is the 1-based thread id.
	Thread int
	// Accesses is the thread's lookups that reached the L3 (its L2 misses).
	Accesses uint64
	// Misses is the thread's share of L3 misses (its DRAM fills).
	Misses uint64
}

// L3Attribution summarizes the shared last-level cache: per-thread demand
// attribution plus the cache-wide counters that no single core owns.
type L3Attribution struct {
	PerThread []L3ThreadRow
	// Writebacks, Prefetches and PrefHits are cache-wide totals.
	Writebacks, Prefetches, PrefHits uint64
}

// NUMASocketRow is one socket's DRAM traffic as issued by its cores.
type NUMASocketRow struct {
	// Socket is the socket index.
	Socket int
	// Threads lists the 1-based thread ids pinned to the socket.
	Threads []int
	// L3Misses counts the socket cores' DRAM fills (local + remote).
	L3Misses uint64
	// RemoteFills counts the fills served by another socket's node.
	RemoteFills uint64
	// L3Writebacks counts the socket L3's dirty evictions.
	L3Writebacks uint64
}

// NUMANodeRow is one memory node's controller accounting (fills served,
// by origin, plus absorbed writebacks and homed pages).
type NUMANodeRow struct {
	Node        int
	FillsLocal  uint64
	FillsRemote uint64
	Writebacks  uint64
	Pages       uint64
}

// NUMASection is the per-socket traffic / remote-miss report of a
// NUMA-routed Machine run.
type NUMASection struct {
	// Policy and PageSize describe the placement.
	Policy   string
	PageSize uint64
	Sockets  []NUMASocketRow
	Nodes    []NUMANodeRow
}

// MachineFigure renders the cross-thread aggregate of a Machine run: one
// folded MIPS curve and phase table per thread, the shared-L3 miss
// attribution — the multi-threaded analogue of Figure 1's bottom panel,
// which Paraver would show as one timeline row per thread — and, on a
// NUMA-routed machine, the per-socket traffic section.
type MachineFigure struct {
	Threads []ThreadFigure
	L3      L3Attribution
	// NUMA is the per-socket traffic section (nil on flat machines).
	NUMA *NUMASection
	// Width controls the raster width (default 100).
	Width int
}

// Render writes all panels.
func (f *MachineFigure) Render(w io.Writer) error {
	if err := f.RenderMIPS(w); err != nil {
		return err
	}
	if err := f.RenderPhaseTables(w); err != nil {
		return err
	}
	if err := f.RenderL3(w); err != nil {
		return err
	}
	return f.RenderNUMA(w)
}

// RenderMIPS draws each thread's folded instruction-rate curve.
func (f *MachineFigure) RenderMIPS(w io.Writer) error {
	width := f.Width
	if width <= 0 {
		width = 100
	}
	fmt.Fprintf(w, "\n== Per-thread folded MIPS vs folded time ==\n")
	for _, th := range f.Threads {
		name := fmt.Sprintf("thread %d MIPS (%d instances)", th.Thread, th.Folded.InstancesUsed)
		if err := renderSeries(w, name, th.Folded.Grid, th.Folded.MIPS(), width, 8); err != nil {
			return err
		}
	}
	return nil
}

// RenderPhaseTables writes one detected-phase table per thread, with the
// paper letters when provided.
func (f *MachineFigure) RenderPhaseTables(w io.Writer) error {
	for _, th := range f.Threads {
		fmt.Fprintf(w, "\n== Thread %d detected phases ==\n", th.Thread)
		fmt.Fprintf(w, "%-6s %-28s %7s %7s %9s %9s %10s %12s\n",
			"paper", "phase", "from", "to", "dir", "MIPS", "L1Dm/ins", "span BW MB/s")
		for i, p := range th.Folded.Phases {
			label := "-"
			if i < len(th.PaperLabels) {
				label = th.PaperLabels[i]
			}
			name := p.Name
			if name == "" {
				name = fmt.Sprintf("phase%d", i)
			}
			if len(name) > 28 {
				name = name[:28]
			}
			fmt.Fprintf(w, "%-6s %-28s %7.3f %7.3f %9s %9.0f %10.4f %12.0f\n",
				label, name, p.Lo, p.Hi, p.Direction, p.MIPSMean,
				p.PerInstr[cpu.CtrL1DMiss], p.SpanBandwidth/1e6)
		}
		fmt.Fprintf(w, "thread %d mean IPC: %.3f\n", th.Thread, th.Folded.MeanIPC())
	}
	return nil
}

// RenderL3 writes the shared-L3 attribution table.
func (f *MachineFigure) RenderL3(w io.Writer) error {
	fmt.Fprintf(w, "\n== Shared L3: per-thread miss attribution ==\n")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %10s\n", "thread", "accesses", "hits", "misses", "miss%")
	var acc, miss uint64
	for _, row := range f.L3.PerThread {
		acc += row.Accesses
		miss += row.Misses
		pct := 0.0
		if row.Accesses > 0 {
			pct = 100 * float64(row.Misses) / float64(row.Accesses)
		}
		fmt.Fprintf(w, "%-8d %12d %12d %12d %9.1f%%\n",
			row.Thread, row.Accesses, row.Accesses-row.Misses, row.Misses, pct)
	}
	pct := 0.0
	if acc > 0 {
		pct = 100 * float64(miss) / float64(acc)
	}
	fmt.Fprintf(w, "%-8s %12d %12d %12d %9.1f%%\n", "total", acc, acc-miss, miss, pct)
	fmt.Fprintf(w, "cache-wide: writebacks %d, prefetches %d, prefetch hits %d\n",
		f.L3.Writebacks, f.L3.Prefetches, f.L3.PrefHits)
	return nil
}

// RenderNUMA writes the per-socket traffic and per-node controller tables
// of a NUMA-routed run (a no-op when the section is absent).
func (f *MachineFigure) RenderNUMA(w io.Writer) error {
	n := f.NUMA
	if n == nil {
		return nil
	}
	fmt.Fprintf(w, "\n== NUMA: per-socket DRAM traffic (policy %s, %d B pages) ==\n",
		n.Policy, n.PageSize)
	fmt.Fprintf(w, "%-8s %-12s %12s %12s %9s %12s\n",
		"socket", "threads", "L3 misses", "remote", "remote%", "L3 wbacks")
	for _, row := range n.Sockets {
		pct := 0.0
		if row.L3Misses > 0 {
			pct = 100 * float64(row.RemoteFills) / float64(row.L3Misses)
		}
		fmt.Fprintf(w, "%-8d %-12s %12d %12d %8.1f%% %12d\n",
			row.Socket, threadList(row.Threads), row.L3Misses, row.RemoteFills, pct,
			row.L3Writebacks)
	}
	fmt.Fprintf(w, "\n%-8s %14s %14s %12s %10s\n",
		"node", "fills local", "fills remote", "writebacks", "pages")
	for _, row := range n.Nodes {
		fmt.Fprintf(w, "%-8d %14d %14d %12d %10d\n",
			row.Node, row.FillsLocal, row.FillsRemote, row.Writebacks, row.Pages)
	}
	return nil
}

// threadList renders a compact 1-based thread id list ("-" when the socket
// holds memory only).
func threadList(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", id)
	}
	return s
}
