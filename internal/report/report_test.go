package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/interval"
	"repro/internal/memhier"
	"repro/internal/objects"
	"repro/internal/prog"
	"repro/internal/stats"
)

func TestCanvasPlotAndWeights(t *testing.T) {
	c := NewCanvas(10, 4)
	c.Plot(2, 1, '.')
	c.Plot(2, 1, '#') // heavier wins
	c.Plot(2, 1, '.') // lighter does not overwrite
	if c.Row(1)[2] != '#' {
		t.Errorf("cell = %q, want '#'", c.Row(1)[2])
	}
	// Out of range ignored.
	c.Plot(-1, 0, '#')
	c.Plot(10, 0, '#')
	c.Plot(0, 4, '#')
	if strings.Count(c.Row(0), "#") != 0 {
		t.Error("out-of-range plot landed")
	}
}

func TestCanvasMapping(t *testing.T) {
	c := NewCanvas(100, 20)
	if c.XForSigma(0) != 0 || c.XForSigma(1) != 99 {
		t.Errorf("XForSigma ends = %d, %d", c.XForSigma(0), c.XForSigma(1))
	}
	if c.XForSigma(-0.5) != 0 {
		t.Error("negative sigma not clamped")
	}
	if c.YForValue(10, 0, 10) != 0 {
		t.Errorf("max value should map to top row, got %d", c.YForValue(10, 0, 10))
	}
	if c.YForValue(0, 0, 10) != 19 {
		t.Errorf("min value should map to bottom row, got %d", c.YForValue(0, 0, 10))
	}
	if c.YForValue(5, 5, 5) != 19 {
		t.Error("degenerate range should map to bottom")
	}
}

func TestCanvasWriteTo(t *testing.T) {
	c := NewCanvas(20, 3)
	c.Plot(5, 1, '*')
	var buf bytes.Buffer
	if err := c.WriteTo(&buf, func(row int) string { return "L" }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "L |") {
		t.Errorf("canvas output:\n%s", out)
	}
}

// synthFigure builds a small folded result plus matching binary/objects.
func synthFigure(t *testing.T) *Figure1 {
	t.Helper()
	bin := prog.NewBinary()
	fa, _ := bin.AddFunction("kernelA", "a.c", 10, 10)
	ipA, _ := fa.IPForLine(12)
	var instances []folding.Instance
	for k := 0; k < 8; k++ {
		in := folding.Instance{T0: uint64(k) * 1000, T1: uint64(k)*1000 + 500}
		in.C1[cpu.CtrInstructions] = 10000
		in.C1[cpu.CtrCycles] = 20000
		in.C1[cpu.CtrBranches] = 500
		in.C1[cpu.CtrL1DMiss] = 300
		for i := 0; i < 30; i++ {
			sigma := (float64(i) + 0.5) / 30
			s := folding.Sample{
				TimeNs: in.T0 + uint64(sigma*500),
				Addr:   0x10000 + uint64(sigma*8000),
				IP:     ipA,
				Store:  i%3 == 0,
				Source: memhier.SrcL2,
			}
			s.Counters[cpu.CtrInstructions] = uint64(sigma * 10000)
			s.Counters[cpu.CtrCycles] = uint64(sigma * 20000)
			s.Counters[cpu.CtrBranches] = uint64(sigma * 500)
			s.Counters[cpu.CtrL1DMiss] = uint64(sigma * 300)
			in.Samples = append(in.Samples, s)
		}
		instances = append(instances, in)
	}
	f, err := folding.Fold(instances, folding.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	obj := &objects.Object{
		Name: "124_GenerateProblem_ref.cpp", Kind: objects.KindGroup,
		Range: interval.Interval{Lo: 0x10000, Hi: 0x18000},
		Bytes: 0x8000, Refs: 100, Loads: 70, Stores: 30,
	}
	return &Figure1{Folded: f, Binary: bin, Objects: []*objects.Object{obj},
		Width: 60, Height: 10}
}

func TestFigure1Render(t *testing.T) {
	fig := synthFigure(t)
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 1 (top)", "Figure 1 (middle)", "Figure 1 (bottom)",
		"kernelA", "124_GenerateProblem_ref.cpp", "MIPS",
		"Detected phases", "Data objects",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFigure1EmptySamples(t *testing.T) {
	fig := synthFigure(t)
	fig.Folded.Lines = nil
	fig.Folded.Mem = nil
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no samples)") {
		t.Error("empty panels not flagged")
	}
}

func TestCSVOutputs(t *testing.T) {
	fig := synthFigure(t)
	var lines, mem, ctrs, phases bytes.Buffer
	if err := WriteLinesCSV(&lines, fig); err != nil {
		t.Fatal(err)
	}
	if err := WriteMemCSV(&mem, fig, func(addr uint64) string { return "obj" }); err != nil {
		t.Fatal(err)
	}
	if err := WriteCountersCSV(&ctrs, fig.Folded); err != nil {
		t.Fatal(err)
	}
	if err := WritePhasesCSV(&phases, fig.Folded); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(lines.String(), "sigma,ip,function,file,line") {
		t.Errorf("lines header: %q", firstLine(lines.String()))
	}
	if !strings.Contains(lines.String(), "kernelA") {
		t.Error("lines CSV missing function")
	}
	if !strings.Contains(mem.String(), "store") || !strings.Contains(mem.String(), "obj") {
		t.Error("mem CSV missing fields")
	}
	// Counters CSV has one row per grid point plus header.
	rows := strings.Count(ctrs.String(), "\n")
	if rows != len(fig.Folded.Grid)+1 {
		t.Errorf("counters CSV rows = %d, want %d", rows, len(fig.Folded.Grid)+1)
	}
	if !strings.Contains(phases.String(), "forward") && !strings.Contains(phases.String(), "flat") {
		t.Error("phases CSV missing direction")
	}
	// Nil object resolver is allowed.
	if err := WriteMemCSV(&bytes.Buffer{}, fig, nil); err != nil {
		t.Fatal(err)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestRenderSeriesDegenerate(t *testing.T) {
	var buf bytes.Buffer
	// Constant series must not divide by zero.
	grid := stats.UniformGrid(0, 1, 10)
	ys := make([]float64, 10)
	if err := renderSeries(&buf, "flat", grid, ys, 40, 5); err != nil {
		t.Fatal(err)
	}
	if err := renderSeries(&buf, "empty", nil, nil, 40, 5); err != nil {
		t.Fatal(err)
	}
}
