// Package reuse implements the follow-on analyses the paper motivates in
// its introduction: understanding memory access patterns "may offer
// additional insights … by helping prefetch mechanisms, calculating reuse
// distances, tuning cache organization and envision the usage of hybrid
// memory systems". It provides
//
//   - an exact LRU stack-distance (reuse-distance) analyzer over a line
//     address stream, using the classic timestamp + Fenwick-tree algorithm
//     (O(log n) per access);
//   - reuse-distance histograms and the derived cache hit-ratio curve
//     (P[distance ≤ capacity]), the what-if tool for "tuning cache
//     organization";
//   - a hybrid-memory placement advisor over the data-object accounting,
//     operationalizing the paper's conclusion that HPCG's read-only matrix
//     region "might benefit from memory technologies where loads are
//     faster than stores".
package reuse

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/folding"
	"repro/internal/objects"
)

// Infinite is the distance reported for cold (first-touch) accesses.
const Infinite = -1

// fenwick is a binary indexed tree over access timestamps; a 1 marks a
// timestamp that is the *most recent* access of some line.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the count in [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Analyzer computes exact LRU stack distances over a stream of addresses.
// Distances are measured in distinct cache lines touched since the
// previous access to the same line.
type Analyzer struct {
	lineShift uint
	lastTime  map[uint64]int // line -> timestamp of its latest access
	marked    []bool         // timestamp -> is latest access of its line
	bit       *fenwick
	now       int

	hist *Histogram
}

// NewAnalyzer creates an analyzer for the given cache-line size (a power
// of two; 64 is typical).
func NewAnalyzer(lineSize int) (*Analyzer, error) {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("reuse: line size %d not a power of two", lineSize)
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	// marked and the Fenwick tree must start at the same capacity: Touch
	// grows both when a.now outruns len(a.marked), so a shorter marked
	// would discard the pre-sized tree on the first access.
	const initialTimestamps = 1024
	return &Analyzer{
		lineShift: shift,
		lastTime:  make(map[uint64]int),
		marked:    make([]bool, initialTimestamps),
		bit:       newFenwick(initialTimestamps),
		hist:      NewHistogram(),
	}, nil
}

// Touch processes one access and returns its reuse distance in distinct
// lines (Infinite for a first touch).
func (a *Analyzer) Touch(addr uint64) int {
	line := addr >> a.lineShift
	if a.now >= len(a.marked) {
		a.growTo(a.now*2 + 16)
	}
	dist := Infinite
	if last, seen := a.lastTime[line]; seen {
		// Distinct lines touched strictly after `last`: the number of
		// marked timestamps in (last, now).
		dist = a.bit.sum(a.now-1) - a.bit.sum(last)
		a.marked[last] = false
		a.bit.add(last, -1)
	}
	a.lastTime[line] = a.now
	a.marked[a.now] = true
	a.bit.add(a.now, 1)
	a.now++
	a.hist.Add(dist)
	return dist
}

// growTo resizes the timestamp structures, rebuilding the Fenwick tree.
func (a *Analyzer) growTo(n int) {
	marked := make([]bool, n)
	copy(marked, a.marked)
	a.marked = marked
	a.bit = newFenwick(n)
	for t, m := range a.marked {
		if m {
			a.bit.add(t, 1)
		}
	}
}

// Accesses returns the number of accesses processed.
func (a *Analyzer) Accesses() int { return a.now }

// Lines returns the number of distinct lines seen.
func (a *Analyzer) Lines() int { return len(a.lastTime) }

// Histogram returns the accumulated reuse-distance histogram.
func (a *Analyzer) Histogram() *Histogram { return a.hist }

// Histogram buckets reuse distances in powers of two, plus a cold bucket.
type Histogram struct {
	// Cold counts first-touch accesses.
	Cold uint64
	// Buckets[b] counts distances d with bits.Len64(d) == b: bucket 0 holds
	// exactly distance 0, bucket b >= 1 holds [2^(b-1), 2^b). Every bucket
	// therefore has the exact upper edge 2^b (exclusive), so HitRatio is
	// precise at power-of-two capacities — in particular a distance-0
	// re-reference hits in any cache with at least one line.
	Buckets []uint64
	// Total counts all accesses.
	Total uint64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one distance (Infinite for cold).
func (h *Histogram) Add(dist int) {
	h.Total++
	if dist == Infinite {
		h.Cold++
		return
	}
	// bits.Len64 is the exact bucket index for every uint distance, unlike
	// the float64 rounding of math.Log2 above 2^53.
	b := bits.Len64(uint64(dist))
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
}

// HitRatio returns the fraction of accesses whose reuse distance fits an
// LRU cache holding `lines` cache lines (cold misses count as misses).
// Bucket granularity makes this an estimate accurate to a factor-2 bucket.
func (h *Histogram) HitRatio(lines int) float64 {
	if h.Total == 0 || lines <= 0 {
		return 0
	}
	var hits uint64
	for b, c := range h.Buckets {
		// Bucket b holds distances below 2^b; a distance-d access hits in a
		// cache of d+1 lines, so the bucket fits when 2^b <= lines.
		if b < 63 && 1<<b <= lines {
			hits += c
		}
	}
	return float64(hits) / float64(h.Total)
}

// HitRatioCurve evaluates HitRatio at each capacity (in lines).
func (h *Histogram) HitRatioCurve(lineCapacities []int) []float64 {
	out := make([]float64, len(lineCapacities))
	for i, c := range lineCapacities {
		out[i] = h.HitRatio(c)
	}
	return out
}

// FromFolded replays a folded region's memory samples (in sigma order)
// through a fresh analyzer — the sampled approximation of the full-stream
// reuse profile, which is exactly what a PEBS-based tool can offer.
func FromFolded(f *folding.Folded, lineSize int) (*Analyzer, error) {
	a, err := NewAnalyzer(lineSize)
	if err != nil {
		return nil, err
	}
	for _, mp := range f.Mem {
		a.Touch(mp.Addr)
	}
	return a, nil
}

// Tier is a hybrid-memory placement recommendation class.
type Tier int

const (
	// TierLoadOptimized suits read-only, heavily loaded regions (the
	// paper's suggestion for HPCG's matrix: "memory technologies where
	// loads are faster than stores", e.g. NVM read tiers).
	TierLoadOptimized Tier = iota
	// TierBandwidth suits hot, mixed-access regions (HBM/MCDRAM).
	TierBandwidth
	// TierCapacity suits rarely referenced data (plain or slow DRAM).
	TierCapacity
)

func (t Tier) String() string {
	switch t {
	case TierLoadOptimized:
		return "load-optimized"
	case TierBandwidth:
		return "bandwidth"
	case TierCapacity:
		return "capacity"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Placement is one object's recommendation.
type Placement struct {
	Object *objects.Object
	Tier   Tier
	Reason string
}

// AdvisorConfig tunes the placement heuristics.
type AdvisorConfig struct {
	// HotRefShare is the cumulative reference share that defines "hot"
	// objects (default 0.9): objects are considered in descending
	// reference order until this share is covered.
	HotRefShare float64
}

// Advise classifies each referenced object into a memory tier from its
// sampled accounting. The heuristic follows the paper's reasoning: regions
// that are only read during the execution phase tolerate slow stores;
// remaining hot regions want bandwidth; cold regions want capacity.
func Advise(objs []*objects.Object, cfg AdvisorConfig) []Placement {
	if cfg.HotRefShare == 0 {
		cfg.HotRefShare = 0.9
	}
	sorted := make([]*objects.Object, 0, len(objs))
	var totalRefs uint64
	for _, o := range objs {
		if o.Refs > 0 {
			sorted = append(sorted, o)
			totalRefs += o.Refs
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Refs > sorted[j].Refs })
	var out []Placement
	var cum uint64
	for _, o := range sorted {
		hot := float64(cum) < cfg.HotRefShare*float64(totalRefs)
		cum += o.Refs
		switch {
		case hot && o.Stores == 0:
			out = append(out, Placement{o, TierLoadOptimized,
				"read-only during execution phase; loads dominate"})
		case hot:
			out = append(out, Placement{o, TierBandwidth,
				fmt.Sprintf("hot mixed access (%d loads, %d stores)", o.Loads, o.Stores)})
		default:
			out = append(out, Placement{o, TierCapacity,
				fmt.Sprintf("cold (%d refs)", o.Refs)})
		}
	}
	return out
}
