package reuse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/objects"
)

func mustAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := NewAnalyzer(64)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAnalyzerValidation(t *testing.T) {
	for _, bad := range []int{0, -8, 48, 100} {
		if _, err := NewAnalyzer(bad); err == nil {
			t.Errorf("line size %d accepted", bad)
		}
	}
	if _, err := NewAnalyzer(64); err != nil {
		t.Fatal(err)
	}
}

func TestTouchDistances(t *testing.T) {
	a := mustAnalyzer(t)
	// Lines A B C A: A's reuse distance is 2 (B and C in between).
	if d := a.Touch(0x000); d != Infinite {
		t.Errorf("first touch A = %d", d)
	}
	if d := a.Touch(0x040); d != Infinite {
		t.Errorf("first touch B = %d", d)
	}
	if d := a.Touch(0x080); d != Infinite {
		t.Errorf("first touch C = %d", d)
	}
	if d := a.Touch(0x000); d != 2 {
		t.Errorf("reuse of A = %d, want 2", d)
	}
	// Immediate re-touch: distance 0.
	if d := a.Touch(0x000); d != 0 {
		t.Errorf("immediate reuse = %d, want 0", d)
	}
	// Same line, different offset.
	if d := a.Touch(0x020); d != 0 {
		t.Errorf("same-line offset reuse = %d, want 0", d)
	}
	if a.Accesses() != 6 || a.Lines() != 3 {
		t.Errorf("accesses/lines = %d/%d", a.Accesses(), a.Lines())
	}
}

func TestTouchRepeatedSweep(t *testing.T) {
	// Sweeping N lines twice: second pass distances are all N-1.
	a := mustAnalyzer(t)
	const n = 100
	for i := 0; i < n; i++ {
		a.Touch(uint64(i) * 64)
	}
	for i := 0; i < n; i++ {
		if d := a.Touch(uint64(i) * 64); d != n-1 {
			t.Fatalf("second-pass distance = %d, want %d", d, n-1)
		}
	}
}

// bruteDistance is a reference implementation via an explicit LRU stack.
type bruteDistance struct {
	stack []uint64
}

func (b *bruteDistance) touch(line uint64) int {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if b.stack[i] == line {
			d := len(b.stack) - 1 - i
			b.stack = append(b.stack[:i], b.stack[i+1:]...)
			b.stack = append(b.stack, line)
			return d
		}
	}
	b.stack = append(b.stack, line)
	return Infinite
}

func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAnalyzer(64)
		if err != nil {
			return false
		}
		var br bruteDistance
		for i := 0; i < 2000; i++ {
			line := uint64(rng.Intn(200))
			if a.Touch(line*64) != br.touch(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(Infinite)
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(100)
	if h.Cold != 1 || h.Total != 6 {
		t.Errorf("cold/total = %d/%d", h.Cold, h.Total)
	}
	// Bucket 0 holds exactly distance 0; bucket 1 exactly distance 1;
	// bucket 2 spans [2,4); 100 lands in bucket bits.Len64(100) = 7.
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 2 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Buckets[7] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
}

// TestHitRatioSingleLine is the off-by-one regression test: a distance-0
// re-reference hits in any cache with at least one line, so HitRatio(1)
// must report it — the old bucketing conflated distances 0 and 1 and
// returned 0.
func TestHitRatioSingleLine(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 3; i++ {
		h.Add(0)
	}
	h.Add(1)
	if r := h.HitRatio(1); r != 0.75 {
		t.Errorf("HitRatio(1) = %g, want 0.75 (distance-0 hits a 1-line cache)", r)
	}
	if r := h.HitRatio(2); r != 1.0 {
		t.Errorf("HitRatio(2) = %g, want 1", r)
	}
	// The analyzer agrees end to end: touch the same line repeatedly.
	a := mustAnalyzer(t)
	for i := 0; i < 10; i++ {
		a.Touch(0x40)
	}
	// 9 distance-0 reuses, 1 cold miss.
	if r := a.Histogram().HitRatio(1); r != 0.9 {
		t.Errorf("analyzer HitRatio(1) = %g, want 0.9", r)
	}
}

// TestHistogramBucketEdges pins the exact power-of-two edges of the
// bits.Len64 bucketing: distance 2^k-1 fits a 2^k-line cache, distance
// 2^k needs 2^(k+1) under bucket granularity.
func TestHistogramBucketEdges(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10} {
		h := NewHistogram()
		h.Add(1<<k - 1)
		if r := h.HitRatio(1 << k); r != 1 {
			t.Errorf("dist %d in %d lines: ratio %g, want 1", 1<<k-1, 1<<k, r)
		}
		if r := h.HitRatio(1<<k - 1); r != 0 {
			t.Errorf("dist %d in %d lines: ratio %g, want 0", 1<<k-1, 1<<k-1, r)
		}
	}
}

func TestHitRatio(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 80; i++ {
		h.Add(1) // fits any cache with >= 2 lines
	}
	for i := 0; i < 20; i++ {
		h.Add(1000) // needs ~1024 lines
	}
	if r := h.HitRatio(4); r != 0.8 {
		t.Errorf("HitRatio(4) = %g, want 0.8", r)
	}
	if r := h.HitRatio(4096); r != 1.0 {
		t.Errorf("HitRatio(4096) = %g, want 1", r)
	}
	if r := h.HitRatio(0); r != 0 {
		t.Errorf("HitRatio(0) = %g", r)
	}
	if NewHistogram().HitRatio(100) != 0 {
		t.Error("empty histogram hit ratio")
	}
	curve := h.HitRatioCurve([]int{4, 4096})
	if curve[0] != 0.8 || curve[1] != 1.0 {
		t.Errorf("curve = %v", curve)
	}
}

// TestAnalyzerPreallocatedTree is the regression test for the discarded
// Fenwick tree: the analyzer starts with marked and the tree at the same
// capacity, so the first growth happens only when the pre-sized capacity
// is genuinely exhausted, and distances stay exact across growth.
func TestAnalyzerPreallocatedTree(t *testing.T) {
	a := mustAnalyzer(t)
	if got := len(a.marked); got != len(a.bit.tree)-1 {
		t.Fatalf("marked capacity %d != fenwick capacity %d", got, len(a.bit.tree)-1)
	}
	initial := len(a.marked)
	if initial < 1024 {
		t.Fatalf("initial capacity %d, want the pre-sized 1024", initial)
	}
	var br bruteDistance
	// Touch well past the initial capacity to force growth, comparing
	// against the brute-force reference throughout.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3*initial; i++ {
		line := uint64(rng.Intn(700))
		if got, want := a.Touch(line*64), br.touch(line); got != want {
			t.Fatalf("access %d: distance %d, want %d", i, got, want)
		}
		if i < initial && len(a.marked) != initial {
			t.Fatalf("grew at access %d despite capacity %d", i, initial)
		}
	}
	if len(a.marked) <= initial {
		t.Error("never grew past the initial capacity")
	}
	if len(a.marked) != len(a.bit.tree)-1 {
		t.Errorf("marked %d and fenwick %d diverged after growth",
			len(a.marked), len(a.bit.tree)-1)
	}
}

func TestHitRatioCurveMonotone(t *testing.T) {
	// Hit ratio must be non-decreasing in capacity for any stream.
	a := mustAnalyzer(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		a.Touch(uint64(rng.Intn(1<<14)) * 8)
	}
	caps := []int{2, 8, 32, 128, 512, 2048, 8192}
	curve := a.Histogram().HitRatioCurve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("hit-ratio curve not monotone: %v", curve)
		}
	}
}

func makeObj(name string, refs, loads, stores uint64) *objects.Object {
	return &objects.Object{
		Name: name, Refs: refs, Loads: loads, Stores: stores,
		Range: interval.Interval{Lo: 0x1000, Hi: 0x2000}, Bytes: 0x1000,
	}
}

func TestAdvise(t *testing.T) {
	objs := []*objects.Object{
		makeObj("matrix", 8000, 8000, 0),   // hot read-only
		makeObj("vector", 1900, 1600, 300), // hot mixed
		makeObj("aux", 10, 10, 0),          // cold
		makeObj("unused", 0, 0, 0),         // never referenced: excluded
	}
	placements := Advise(objs, AdvisorConfig{})
	if len(placements) != 3 {
		t.Fatalf("placements = %d, want 3 (unused excluded)", len(placements))
	}
	byName := map[string]Tier{}
	for _, p := range placements {
		byName[p.Object.Name] = p.Tier
		if p.Reason == "" {
			t.Errorf("placement for %s lacks a reason", p.Object.Name)
		}
	}
	if byName["matrix"] != TierLoadOptimized {
		t.Errorf("matrix tier = %v, want load-optimized (the paper's conclusion)", byName["matrix"])
	}
	if byName["vector"] != TierBandwidth {
		t.Errorf("vector tier = %v", byName["vector"])
	}
	if byName["aux"] != TierCapacity {
		t.Errorf("aux tier = %v", byName["aux"])
	}
}

func TestTierString(t *testing.T) {
	if TierLoadOptimized.String() != "load-optimized" ||
		TierBandwidth.String() != "bandwidth" ||
		TierCapacity.String() != "capacity" {
		t.Error("tier names")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Error("unknown tier")
	}
}
