package scenario

import (
	"repro/internal/hpcg"
	"repro/internal/workloads"
)

// The built-in scenario matrix. Sizes are chosen so the whole registry —
// run twice per golden test, fast and reference path — stays inside a few
// seconds, while each scenario still exercises a distinct corner: every
// workload, both Machine thread counts, the three named hierarchies, and
// the randomized/multiplexed sampling mode.
func init() {
	// STREAM triad: linear sweeps, batched stream issue.
	mustRegister(Scenario{
		Name:        "stream_triad_1t",
		Description: "STREAM triad, 8K doubles, Haswell hierarchy, 1 thread",
		Hierarchy:   "haswell",
		Threads:     1, Iters: 12, Period: 150,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 13) },
	})
	mustRegister(Scenario{
		Name:        "stream_triad_4t",
		Description: "STREAM triad, 16K doubles, shared L3, 4 threads (sequential schedule)",
		Hierarchy:   "haswell",
		Threads:     4, Iters: 8, Period: 100,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 14) },
	})
	mustRegister(Scenario{
		Name:        "stream_triad_smallcache_1t",
		Description: "STREAM triad on the undersized hierarchy: every array spills",
		Hierarchy:   "small",
		Threads:     1, Iters: 10, Period: 150,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 13) },
	})

	// GUPS random access: DRAM-dominated latencies.
	mustRegister(Scenario{
		Name:        "random_access_1t",
		Description: "GUPS random updates over a 16K-word table, 1 thread",
		Hierarchy:   "haswell",
		Threads:     1, Iters: 6, Period: 120,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewRandomAccess(1<<14, 3000, 11) },
	})
	mustRegister(Scenario{
		Name:        "random_access_2t",
		Description: "GUPS split into two disjoint blocks, shared L3, 2 threads",
		Hierarchy:   "haswell",
		Threads:     2, Iters: 6, Period: 120,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewRandomAccess(1<<14, 3000, 11) },
	})
	mustRegister(Scenario{
		Name:        "random_access_noprefetch_1t",
		Description: "GUPS with the next-line prefetcher disabled",
		Hierarchy:   "noprefetch",
		Threads:     1, Iters: 6, Period: 120,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewRandomAccess(1<<14, 3000, 11) },
	})

	// Pointer chase: dependency-chained loads, full memory latency.
	mustRegister(Scenario{
		Name:        "pointer_chase_1t",
		Description: "pointer chase over a 4K-node Sattolo cycle, 1 thread",
		Hierarchy:   "haswell",
		Threads:     1, Iters: 8, Period: 100,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewPointerChase(1<<12, 5) },
	})
	mustRegister(Scenario{
		Name:        "pointer_chase_2t",
		Description: "pointer chase, two threads walking overlapping stretches of one cycle (read-only)",
		Hierarchy:   "haswell",
		Threads:     2, Iters: 6, Period: 100,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewPointerChase(1<<13, 5) },
	})

	// Dense matmul: cache-friendly A rows, strided B columns.
	mustRegister(Scenario{
		Name:        "matmul_1t",
		Description: "naive 24x24 dense multiply (ijk), 1 thread",
		Hierarchy:   "haswell",
		Threads:     1, Iters: 3, Period: 150,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewMatMul(24) },
	})
	mustRegister(Scenario{
		Name:        "matmul_2t",
		Description: "24x24 dense multiply row-partitioned across 2 threads",
		Hierarchy:   "haswell",
		Threads:     2, Iters: 3, Period: 150,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewMatMul(24) },
	})

	// CSR SpMV (7-point stencil): streamed values/columns + x gather.
	mustRegister(Scenario{
		Name:        "spmv_csr_1t",
		Description: "CSR SpMV of the 7-point stencil on a 16^3 grid, 1 thread",
		Hierarchy:   "haswell",
		Threads:     1, Iters: 4, Period: 150,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewSpMV(16, 16, 16) },
	})
	mustRegister(Scenario{
		Name:        "spmv_csr_4t",
		Description: "CSR SpMV row-partitioned across 4 threads, shared L3",
		Hierarchy:   "haswell",
		Threads:     4, Iters: 4, Period: 120,
		Workload: func() workloads.PartitionedWorkload { return workloads.NewSpMV(16, 16, 16) },
	})

	// NUMA: the 2-socket machine with page placement. STREAM under
	// first-touch (each thread's block lands on its own socket, sequential
	// schedule) vs interleave (pages striped across both nodes, so every
	// thread fills ~half its lines remotely): the pair of goldens must
	// differ in remote-DRAM fill counts — the policy axis, pinned live.
	mustRegister(Scenario{
		Name:        "stream_numa_ft_2s4t",
		Description: "STREAM triad, 16K doubles, 2 sockets x 2 threads, first-touch placement",
		Hierarchy:   "haswell",
		Threads:     4, Iters: 8, Period: 100,
		Sockets: 2, Placement: "first-touch",
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 14) },
	})
	mustRegister(Scenario{
		Name:        "stream_numa_il_2s4t",
		Description: "STREAM triad, 16K doubles, 2 sockets x 2 threads, interleaved pages",
		Hierarchy:   "haswell",
		Threads:     4, Iters: 8, Period: 100,
		Sockets: 2, Placement: "interleave",
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(1 << 14) },
	})

	// NUMA HPCG: one worker on socket 0 of a 2-socket machine. Under
	// first-touch the serial problem generation homes everything on socket
	// 0 (all fills local); under interleave half the pages are remote —
	// the classic serial-init placement story, deterministically pinned.
	mustRegister(Scenario{
		Name:        "hpcg_numa_ft_2s1t",
		Description: "HPCG 8^3 on a 2-socket machine, first-touch (serial init homes all pages on socket 0)",
		Hierarchy:   "haswell",
		Threads:     1, Period: 150,
		Sockets: 2, Placement: "first-touch",
		HPCG: &hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3},
	})
	mustRegister(Scenario{
		Name:        "hpcg_numa_il_2s1t",
		Description: "HPCG 8^3 on a 2-socket machine, interleaved pages (~half the fills remote)",
		Hierarchy:   "haswell",
		Threads:     1, Period: 150,
		Sockets: 2, Placement: "interleave",
		HPCG: &hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3},
	})

	// HPCG: the paper's evaluation at regression scale.
	mustRegister(Scenario{
		Name:        "hpcg_8_1t",
		Description: "HPCG 8^3, 2 MG levels, 3 CG iterations, deterministic sampling",
		Hierarchy:   "haswell",
		Threads:     1, Period: 150,
		HPCG: &hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3},
	})
	mustRegister(Scenario{
		Name:        "hpcg_8_mux_1t",
		Description: "HPCG 8^3 with randomized sampling gaps and load/store multiplexing (seeded)",
		Hierarchy:   "haswell",
		Threads:     1, Period: 150,
		MuxQuantumNs: 25_000, Randomize: true, Seed: 7, LatencyThreshold: 3,
		HPCG: &hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 3},
	})
}
