package scenario

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/hpcg"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden metrics files")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenMetrics is the regression harness: every registered scenario
// must reproduce its pinned golden JSON byte for byte, on both the fast
// and the per-op reference simulation paths. Refresh with
// `go test ./internal/scenario -update` (or `simrun -update-golden`) and
// justify the diff in the PR that carries it — a changed golden is a
// changed simulation result.
//
// The goldens were generated on amd64. Go may fuse a*b+c into FMA on
// architectures with fused multiply-add (arm64, ppc64), which perturbs the
// float64 reductions feeding the metrics (CG residuals, folded curves), so
// the byte-exact comparison is scoped to amd64; run-to-run determinism
// (TestRunDeterminism) holds on every architecture.
func TestGoldenMetrics(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		if *update {
			t.Fatalf("refusing to regenerate goldens on %s: they must be amd64-generated (FMA fusion perturbs float64 reductions and amd64 CI would reject the result)", runtime.GOARCH)
		}
		t.Skipf("goldens are amd64-generated; FMA fusion on %s perturbs float64 reductions", runtime.GOARCH)
	}
	for _, sc := range All() {
		t.Run(sc.Name, func(t *testing.T) {
			m, err := Run(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.JSON()
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(sc.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fast path diverges from golden %s:\n%s", path, firstDiff(got, want))
			}

			ref, err := Run(sc, Options{Reference: true})
			if err != nil {
				t.Fatal(err)
			}
			gotRef, err := ref.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotRef, want) {
				t.Errorf("reference path diverges from golden %s:\n%s", path, firstDiff(gotRef, want))
			}
		})
	}
}

// firstDiff renders the first differing line of two serializations.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length differs: got %d lines, want %d", len(gl), len(wl))
}

// TestRunDeterminism pins the harness's core property directly: two runs of
// the same scenario are byte-identical, including a multi-thread Machine
// scenario under the sequential schedule.
func TestRunDeterminism(t *testing.T) {
	for _, name := range []string{"stream_triad_4t", "hpcg_8_mux_1t"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		a, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := a.JSON()
		bj, _ := b.JSON()
		if !bytes.Equal(aj, bj) {
			t.Errorf("%s: repeated runs differ:\n%s", name, firstDiff(aj, bj))
		}
	}
}

// TestRegistryShape pins the matrix's advertised coverage: at least 8
// scenarios, every workload family present, both Machine thread counts and
// every named hierarchy exercised.
func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) < 8 {
		t.Fatalf("registry has %d scenarios, want >= 8", len(all))
	}
	multi := false
	hier := map[string]bool{}
	families := map[string]bool{}
	for _, sc := range all {
		if sc.Threads > 1 {
			multi = true
		}
		hier[sc.Hierarchy] = true
		if sc.HPCG != nil {
			families["hpcg"] = true
		} else {
			families[sc.Workload().Name()] = true
		}
	}
	if !multi {
		t.Error("no multi-thread scenario registered")
	}
	for _, h := range HierarchyNames() {
		if !hier[h] {
			t.Errorf("hierarchy %q not exercised by any scenario", h)
		}
	}
	for _, f := range []string{"stream_triad", "random_access", "pointer_chase", "matmul", "spmv_csr", "hpcg"} {
		if !families[f] {
			t.Errorf("workload family %q not in the matrix", f)
		}
	}
}

// TestThreadsOverride checks the -threads override path used by simrun.
func TestThreadsOverride(t *testing.T) {
	sc, ok := Get("stream_triad_1t")
	if !ok {
		t.Fatal("stream_triad_1t not registered")
	}
	m, err := Run(sc, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Threads != 2 || len(m.PerThread) != 2 {
		t.Fatalf("threads=%d per_thread=%d, want 2/2", m.Threads, len(m.PerThread))
	}
	if m.SharedL3 == nil {
		t.Error("multi-thread run missing shared L3 metrics")
	}
}

// TestHPCGMultiThreadRejected documents why HPCG goldens are single-thread.
func TestHPCGMultiThreadRejected(t *testing.T) {
	sc, ok := Get("hpcg_8_1t")
	if !ok {
		t.Fatal("hpcg_8_1t not registered")
	}
	if _, err := Run(sc, Options{Threads: 2}); err == nil {
		t.Error("multi-thread HPCG scenario should be rejected (no deterministic schedule)")
	}
}

// TestRegisterValidation covers the registry's error paths.
func TestRegisterValidation(t *testing.T) {
	if err := Register(Scenario{}); err == nil {
		t.Error("empty scenario accepted")
	}
	if err := Register(Scenario{Name: "stream_triad_1t", Threads: 1}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := Register(Scenario{Name: "x_no_body", Threads: 1}); err == nil {
		t.Error("scenario without workload or HPCG accepted")
	}
	if err := Register(Scenario{Name: "x_bad_hier", Threads: 1, Hierarchy: "nope",
		Workload: func() workloads.PartitionedWorkload { return workloads.NewStream(8) }}); err == nil {
		t.Error("unknown hierarchy accepted")
	}
	if err := Register(Scenario{Name: "x_hpcg_4t", Threads: 4,
		HPCG: &hpcg.Params{NX: 8, NY: 8, NZ: 8, MGLevels: 2, MaxIters: 1}}); err == nil {
		t.Error("multi-thread HPCG scenario accepted at registration")
	}
}
