package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machspec"
	"repro/internal/memhier"
)

// legacyHierarchyConfigs is the frozen pre-machspec table: the exact
// Go-struct values HierarchyConfig returned before the named hierarchies
// became checked-in spec files. The goldens were generated against these
// values, so the spec resolution must reproduce them field for field — the
// goldenkey discipline applied to machine configuration.
func legacyHierarchyConfigs() map[string]memhier.Config {
	haswell := memhier.Config{
		Levels: []memhier.LevelConfig{
			{Name: "L1D", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 4},
			{Name: "L2", Size: 256 << 10, LineSize: 64, Assoc: 8, HitLatency: 12},
			{Name: "L3", Size: 2560 << 10, LineSize: 64, Assoc: 20, HitLatency: 36},
		},
		DRAMLatency:      230,
		NextLinePrefetch: true,
	}
	noprefetch := haswell
	noprefetch.Levels = append([]memhier.LevelConfig(nil), haswell.Levels...)
	noprefetch.NextLinePrefetch = false
	return map[string]memhier.Config{
		"haswell": haswell,
		"small": {
			Levels: []memhier.LevelConfig{
				{Name: "L1D", Size: 8 << 10, LineSize: 64, Assoc: 4, HitLatency: 4},
				{Name: "L2", Size: 32 << 10, LineSize: 64, Assoc: 8, HitLatency: 12},
				{Name: "L3", Size: 128 << 10, LineSize: 64, Assoc: 8, HitLatency: 36},
			},
			DRAMLatency:      230,
			NextLinePrefetch: true,
		},
		"noprefetch": noprefetch,
	}
}

// TestNamedSpecsMatchLegacyConfigs is the spec-lint gate: every named
// hierarchy — resolved through the embedded machspec files, the same path
// a -machine file takes — must equal the frozen legacy configuration, and
// the legacy "haswell" must still be memhier.DefaultConfig (the cmds'
// no-flag default). A diff here means the checked-in spec files changed
// the simulated machine, which would silently invalidate every golden.
func TestNamedSpecsMatchLegacyConfigs(t *testing.T) {
	legacy := legacyHierarchyConfigs()
	if def := memhier.DefaultConfig(); !reflect.DeepEqual(legacy["haswell"], def) {
		t.Fatalf("legacy haswell table drifted from memhier.DefaultConfig:\n%+v\nvs\n%+v", legacy["haswell"], def)
	}
	for _, name := range HierarchyNames() {
		want, ok := legacy[name]
		if !ok {
			t.Fatalf("hierarchy %q has no frozen legacy config; add it to the table", name)
		}
		got, err := HierarchyConfig(name)
		if err != nil {
			t.Fatalf("HierarchyConfig(%q): %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("spec-resolved %q differs from the legacy config:\n got %+v\nwant %+v", name, got, want)
		}
	}
	// "" still spells haswell.
	got, err := HierarchyConfig("")
	if err != nil || !reflect.DeepEqual(got, legacy["haswell"]) {
		t.Errorf(`HierarchyConfig("") = %+v, %v; want the haswell config`, got, err)
	}
	if _, err := HierarchyConfig("jureca"); err == nil || !strings.Contains(err.Error(), `unknown hierarchy "jureca"`) {
		t.Errorf("unknown hierarchy error = %v", err)
	}
	// Every named spec is also reachable as a machine reference, and the
	// embedded set covers exactly the scenario hierarchy names.
	if got, want := machspec.Names(), []string{"haswell", "noprefetch", "small"}; !reflect.DeepEqual(got, want) {
		t.Errorf("machspec.Names() = %v, want %v", got, want)
	}
}

// TestMachineSpecNamedEqualsScenarioRun: running a scenario under
// Options.Machine with the spec of its own hierarchy must reproduce the
// golden bytes — the spec path and the named path are the same machine.
func TestMachineSpecNamedEqualsScenarioRun(t *testing.T) {
	if b, _ := os.ReadFile(goldenPath("stream_triad_1t")); b == nil {
		t.Skip("golden files not present")
	}
	for _, name := range []string{"stream_triad_1t", "stream_triad_smallcache_1t", "random_access_noprefetch_1t"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		spec, err := machspec.Named(sc.Hierarchy)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(sc, Options{Machine: spec})
		if err != nil {
			t.Fatalf("%s under -machine %s: %v", name, sc.Hierarchy, err)
		}
		got, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		golden, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, golden) {
			t.Errorf("%s via machine spec differs from golden (%d vs %d bytes)", name, len(got), len(golden))
		}
	}
}

// TestMachineSpecOverride exercises a spec that changes the machine: a
// 2-socket interleaved topology applied to a flat scenario must produce a
// NUMA-routed run with the spec's page size, and the spec's sampling
// section must override the scenario's.
func TestMachineSpecOverride(t *testing.T) {
	doc := `{
  "version": 1, "name": "dual", "sockets": 2, "placement": "interleave", "page_size": 8192,
  "cache": {
    "levels": [
      {"name": "L1D", "size": 32768, "line_size": 64, "assoc": 8, "hit_latency": 4},
      {"name": "L2", "size": 262144, "line_size": 64, "assoc": 8, "hit_latency": 12},
      {"name": "L3", "size": 2621440, "line_size": 64, "assoc": 20, "hit_latency": 36}
    ],
    "next_line_prefetch": true
  },
  "dram": {"latency": 230, "remote_latency": 370},
  "sampling": {"period": 50}
}`
	spec, err := machspec.Decode(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := Get("stream_triad_4t")
	if !ok {
		t.Fatal("scenario missing")
	}
	m, err := Run(sc, Options{Machine: spec})
	if err != nil {
		t.Fatal(err)
	}
	if m.Hierarchy != "dual" || m.Sockets != 2 || m.Placement != "interleave" || m.PageSize != 8192 {
		t.Fatalf("spec topology not applied: hierarchy=%q sockets=%d placement=%q page=%d",
			m.Hierarchy, m.Sockets, m.Placement, m.PageSize)
	}
	if m.NUMA == nil || len(m.NUMA.Nodes) != 2 {
		t.Fatalf("expected a 2-node NUMA breakdown, got %+v", m.NUMA)
	}
	var remote uint64
	for _, n := range m.NUMA.Nodes {
		remote += n.FillsRemote
	}
	if remote == 0 {
		t.Error("interleaved 2-socket run produced no remote fills")
	}
	// Period 50 vs the scenario's 100: more samples fired than the named
	// run records.
	base, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.PerThread[0].SamplesFired <= base.PerThread[0].SamplesFired {
		t.Errorf("spec sampling period override inert: %d fired vs base %d",
			m.PerThread[0].SamplesFired, base.PerThread[0].SamplesFired)
	}

	// Explicit overrides still win on top of the spec.
	m2, err := Run(sc, Options{Machine: spec, Placement: "first-touch"})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Placement != "first-touch" {
		t.Errorf("explicit placement did not override the spec: %q", m2.Placement)
	}
}

// TestSkipReason pins the matrix-driver skip logic: the exact override
// combinations that cannot apply to a scenario, and nothing else. The two
// table rows mirroring `simrun -run all -sockets 2` and `-run all
// -placement interleave` are the regression tests for the matrix-abort
// bug: every registered scenario must either skip or run cleanly.
func TestSkipReason(t *testing.T) {
	flat, ok := Get("stream_triad_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	numaSc, ok := Get("stream_numa_ft_2s4t")
	if !ok {
		t.Fatal("scenario missing")
	}
	hpcgSc, ok := Get("hpcg_8_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	dual, err := machspec.Named("haswell")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		sc   Scenario
		opts Options
		want string // substring; "" = runnable
	}{
		{"no overrides", flat, Options{}, ""},
		{"sockets override", flat, Options{Sockets: 2}, ""},
		{"placement on flat", flat, Options{Placement: "interleave"}, "requires a NUMA topology"},
		{"placement with sockets", flat, Options{Sockets: 2, Placement: "interleave"}, ""},
		{"placement on numa scenario", numaSc, Options{Placement: "interleave"}, ""},
		{"threads on hpcg", hpcgSc, Options{Threads: 4}, "single-thread"},
		{"sockets on hpcg", hpcgSc, Options{Sockets: 2}, ""},
		{"placement via flat machine spec", flat, Options{Machine: dual, Placement: "interleave"}, "requires a NUMA topology"},
		{"flat machine spec resets numa scenario", numaSc, Options{Machine: dual, Placement: "interleave"}, "requires a NUMA topology"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SkipReason(tc.sc, tc.opts)
			if tc.want == "" && got != "" {
				t.Fatalf("SkipReason = %q, want runnable", got)
			}
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Fatalf("SkipReason = %q, want mention of %q", got, tc.want)
			}
		})
	}
}

// TestMatrixOverridesNeverAbort is the -run all regression: for the
// -sockets 2 and -placement interleave override matrices, every registered
// scenario either reports a skip reason or runs to completion — a matrix
// run never dies midway on an inapplicable override.
func TestMatrixOverridesNeverAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry under two override matrices")
	}
	for _, opts := range []Options{
		{Sockets: 2},
		{Placement: "interleave"},
	} {
		for _, sc := range All() {
			if reason := SkipReason(sc, opts); reason != "" {
				continue
			}
			if _, err := Run(sc, opts); err != nil {
				t.Errorf("scenario %s under %+v: %v", sc.Name, opts, err)
			}
		}
	}
}

func TestMachineSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.json")
	doc := `{
  "version": 1,
  "cache": {"levels": [{"name": "L1D", "size": 4096, "line_size": 64, "assoc": 4, "hit_latency": 4}], "next_line_prefetch": false},
  "dram": {"latency": 100}
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := machspec.Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := Get("stream_triad_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	m, err := Run(sc, Options{Machine: spec})
	if err != nil {
		t.Fatal(err)
	}
	if m.Hierarchy != "tiny" {
		t.Errorf("hierarchy label = %q, want the file's base name", m.Hierarchy)
	}
	if len(m.PerThread[0].Levels) != 1 {
		t.Fatalf("expected a 1-level hierarchy, got %d levels", len(m.PerThread[0].Levels))
	}
}
