package scenario

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/memhier"
	"repro/internal/objects"
	"repro/internal/pebs"
)

// Metrics is the canonical, fully-deterministic result of one scenario run:
// everything the pipeline measures — per-thread PMU ground truth, cache
// hierarchy statistics, PEBS sampling activity, the folded analysis with its
// detected phases and bandwidths, and the data-object accounting —
// flattened into fixed-order structs so the JSON serialization is stable
// byte for byte. The golden regression files under testdata/golden pin one
// Metrics per scenario; the fast and reference simulation paths must both
// reproduce it exactly.
type Metrics struct {
	Scenario  string `json:"scenario"`
	Workload  string `json:"workload"`
	Hierarchy string `json:"hierarchy"`
	Threads   int    `json:"threads"`
	Iters     int    `json:"iters"`

	// CG is present for HPCG scenarios only.
	CG *CGMetrics `json:"cg,omitempty"`

	PerThread []ThreadMetrics `json:"per_thread"`
	// SharedL3 aggregates the machine-wide shared LLC counters
	// (multi-thread scenarios only; single-thread runs report the LLC as
	// the last private level).
	SharedL3 *LevelMetrics   `json:"shared_l3,omitempty"`
	Objects  []ObjectMetrics `json:"objects"`
}

// CGMetrics records the solver outcome of an HPCG scenario.
type CGMetrics struct {
	Iterations    int       `json:"iterations"`
	Residuals     []float64 `json:"residuals"`
	FinalError    float64   `json:"final_error"`
	FinalResidual float64   `json:"final_residual"`
}

// ThreadMetrics is one simulated hardware thread's view of the run.
type ThreadMetrics struct {
	Thread int `json:"thread"`

	// PMU ground-truth event totals.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	Branches     uint64 `json:"branches"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	L1DMisses    uint64 `json:"l1d_misses"`
	L2Misses     uint64 `json:"l2_misses"`
	L3Misses     uint64 `json:"l3_misses"`

	// Cache hierarchy, one entry per level as seen by this thread; the
	// last entry of a Machine thread attributes its share of the shared
	// L3. DRAMFills counts accesses that fell through every level.
	Levels    []LevelMetrics `json:"levels"`
	DRAMFills uint64         `json:"dram_fills"`

	// PEBS engine activity.
	SamplesEligible  uint64 `json:"samples_eligible"`
	SamplesFired     uint64 `json:"samples_fired"`
	SamplesBelowThr  uint64 `json:"samples_below_threshold"`
	SamplesRecorded  uint64 `json:"samples_recorded"`
	SampleDrains     uint64 `json:"sample_drains"`
	TraceRecordCount int    `json:"trace_records"`

	// Folding of the workload region.
	InstancesUsed  int     `json:"instances_used"`
	InstancesTotal int     `json:"instances_total"`
	MeanDurationNs float64 `json:"mean_duration_ns"`
	MeanIPC        float64 `json:"mean_ipc"`
	FoldedSamples  int     `json:"folded_samples"`
	FoldedLoads    int     `json:"folded_loads"`
	FoldedStores   int     `json:"folded_stores"`

	Phases []PhaseMetrics `json:"phases"`
}

// LevelMetrics is one cache level's counters.
type LevelMetrics struct {
	Name         string  `json:"name"`
	Accesses     uint64  `json:"accesses"`
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	MissRatio    float64 `json:"miss_ratio"`
	Writebacks   uint64  `json:"writebacks"`
	Prefetches   uint64  `json:"prefetches"`
	PrefetchHits uint64  `json:"prefetch_hits"`
}

// PhaseMetrics is one detected phase of the folded region.
type PhaseMetrics struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"` // paper letter (HPCG scenarios)

	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Direction  string  `json:"direction"`
	DurationNs float64 `json:"duration_ns"`
	Loads      int     `json:"loads"`
	Stores     int     `json:"stores"`
	MIPSMean   float64 `json:"mips_mean"`
	// BandwidthMBps is the paper's traversal-bandwidth approximation.
	BandwidthMBps float64 `json:"bandwidth_mbps"`

	L1DMissPerInstr float64 `json:"l1d_miss_per_instr"`
	L2MissPerInstr  float64 `json:"l2_miss_per_instr"`
	L3MissPerInstr  float64 `json:"l3_miss_per_instr"`
}

// ObjectMetrics is one data object's reference accounting.
type ObjectMetrics struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Bytes       uint64  `json:"bytes"`
	Members     uint64  `json:"members"`
	Refs        uint64  `json:"refs"`
	Loads       uint64  `json:"loads"`
	Stores      uint64  `json:"stores"`
	MeanLatency float64 `json:"mean_latency"`
	SrcL1       uint64  `json:"src_l1"`
	SrcL2       uint64  `json:"src_l2"`
	SrcL3       uint64  `json:"src_l3"`
	SrcDRAM     uint64  `json:"src_dram"`
}

// JSON returns the canonical serialization: two-space indented, fixed field
// order, trailing newline. Two runs of the same scenario must produce
// byte-identical output.
func (m *Metrics) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// threadMetrics assembles one thread's metrics from its simulation stack
// and folded analysis. levelNames carries the configured cache level names
// (the hierarchy reports stats by index only).
func threadMetrics(thread int, c *cpu.Core, hier *memhier.Hierarchy,
	eng pebs.Stats, nRecords int, folded *folding.Folded, levelNames []string) ThreadMetrics {
	pmu := c.PMU().TrueSnapshot()
	tm := ThreadMetrics{
		Thread:       thread,
		Instructions: pmu[cpu.CtrInstructions],
		Cycles:       pmu[cpu.CtrCycles],
		Branches:     pmu[cpu.CtrBranches],
		Loads:        pmu[cpu.CtrLoads],
		Stores:       pmu[cpu.CtrStores],
		L1DMisses:    pmu[cpu.CtrL1DMiss],
		L2Misses:     pmu[cpu.CtrL2Miss],
		L3Misses:     pmu[cpu.CtrL3Miss],

		DRAMFills: hier.DRAMAccesses(),

		SamplesEligible:  eng.Eligible,
		SamplesFired:     eng.Fired,
		SamplesBelowThr:  eng.BelowThreshold,
		SamplesRecorded:  eng.Recorded,
		SampleDrains:     eng.Drains,
		TraceRecordCount: nRecords,
	}
	for i := 0; i < hier.Levels(); i++ {
		st := hier.LevelStats(i)
		name := ""
		if i < len(levelNames) {
			name = levelNames[i]
		}
		tm.Levels = append(tm.Levels, levelMetrics(name, st))
	}
	if folded != nil {
		tm.InstancesUsed = folded.InstancesUsed
		tm.InstancesTotal = folded.InstancesTotal
		tm.MeanDurationNs = folded.MeanDurationNs
		tm.MeanIPC = folded.MeanIPC()
		tm.FoldedSamples = len(folded.Mem)
		for _, mp := range folded.Mem {
			if mp.Store {
				tm.FoldedStores++
			} else {
				tm.FoldedLoads++
			}
		}
		for _, p := range folded.Phases {
			tm.Phases = append(tm.Phases, phaseMetrics(p, ""))
		}
	}
	return tm
}

func levelMetrics(name string, st memhier.LevelStats) LevelMetrics {
	return LevelMetrics{
		Name:         name,
		Accesses:     st.Accesses,
		Hits:         st.Hits,
		Misses:       st.Misses,
		MissRatio:    st.MissRatio(),
		Writebacks:   st.Writebacks,
		Prefetches:   st.Prefetches,
		PrefetchHits: st.PrefHits,
	}
}

func phaseMetrics(p folding.Phase, label string) PhaseMetrics {
	return PhaseMetrics{
		Name:            p.Name,
		Label:           label,
		Lo:              p.Lo,
		Hi:              p.Hi,
		Direction:       p.Direction.String(),
		DurationNs:      p.DurationNs,
		Loads:           p.Loads,
		Stores:          p.Stores,
		MIPSMean:        p.MIPSMean,
		BandwidthMBps:   p.SpanBandwidth / 1e6,
		L1DMissPerInstr: p.PerInstr[cpu.CtrL1DMiss],
		L2MissPerInstr:  p.PerInstr[cpu.CtrL2Miss],
		L3MissPerInstr:  p.PerInstr[cpu.CtrL3Miss],
	}
}

func objectMetrics(objs []*objects.Object) []ObjectMetrics {
	out := make([]ObjectMetrics, 0, len(objs))
	for _, o := range objs {
		out = append(out, ObjectMetrics{
			Name:        o.Name,
			Kind:        o.Kind.String(),
			Bytes:       o.Bytes,
			Members:     o.Members,
			Refs:        o.Refs,
			Loads:       o.Loads,
			Stores:      o.Stores,
			MeanLatency: o.MeanLatency(),
			SrcL1:       o.Sources[memhier.SrcL1],
			SrcL2:       o.Sources[memhier.SrcL2],
			SrcL3:       o.Sources[memhier.SrcL3],
			SrcDRAM:     o.Sources[memhier.SrcDRAM],
		})
	}
	return out
}

// sessionMetrics collects the single-thread (Session) view.
func sessionMetrics(s *core.Session, folded *folding.Folded, levelNames []string) ThreadMetrics {
	return threadMetrics(1, s.Core, s.Hier, s.Mon.Engine().Stats(), len(s.Mon.Records()), folded, levelNames)
}

// machineMetrics collects per-thread metrics plus the shared-L3 aggregate.
func machineMetrics(m *core.Machine, foldedOf func(thread int) *folding.Folded, levelNames []string) ([]ThreadMetrics, *LevelMetrics) {
	var out []ThreadMetrics
	for i, th := range m.Threads {
		out = append(out, threadMetrics(i+1, th.Core, th.Hier, th.Mon.Engine().Stats(),
			len(th.Mon.Records()), foldedOf(i+1), levelNames))
	}
	llc := levelMetrics(m.L3.Config().Name+" (shared)", m.L3.Stats())
	return out, &llc
}

// paperPhaseMetrics converts labeled HPCG phases.
func paperPhaseMetrics(paper []core.PaperPhase) []PhaseMetrics {
	out := make([]PhaseMetrics, 0, len(paper))
	for _, pp := range paper {
		out = append(out, phaseMetrics(pp.Phase, pp.Label))
	}
	return out
}
