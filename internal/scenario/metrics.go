package scenario

import (
	"encoding/json"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/folding"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/objects"
	"repro/internal/pebs"
)

// Metrics is the canonical, fully-deterministic result of one scenario run:
// everything the pipeline measures — per-thread PMU ground truth, cache
// hierarchy statistics, PEBS sampling activity, the folded analysis with its
// detected phases and bandwidths, and the data-object accounting —
// flattened into fixed-order structs so the JSON serialization is stable
// byte for byte. The golden regression files under testdata/golden pin one
// Metrics per scenario; the fast and reference simulation paths must both
// reproduce it exactly.
type Metrics struct {
	Scenario  string `json:"scenario"`
	Workload  string `json:"workload"`
	Hierarchy string `json:"hierarchy"`
	Threads   int    `json:"threads"`
	Iters     int    `json:"iters"`

	// Sockets, Placement and PageSize describe the NUMA topology of a
	// routed scenario (absent on the historical flat-DRAM runs, keeping
	// their serialization byte-identical).
	Sockets   int    `json:"sockets,omitempty"`
	Placement string `json:"placement,omitempty"`
	PageSize  uint64 `json:"page_size,omitempty"`

	// CG is present for HPCG scenarios only.
	CG *CGMetrics `json:"cg,omitempty"`

	PerThread []ThreadMetrics `json:"per_thread"`
	// SharedL3 aggregates the machine-wide shared LLC counters of a flat
	// multi-thread run. Single-thread Session runs report the LLC as the
	// last private level instead, and NUMA-routed runs (any socket count)
	// report one L3 per socket in the NUMA section — never both.
	SharedL3 *LevelMetrics `json:"shared_l3,omitempty"`
	// NUMA is the per-socket / per-node breakdown of a routed scenario.
	NUMA    *NUMAMetrics    `json:"numa,omitempty"`
	Objects []ObjectMetrics `json:"objects"`

	// Partial marks metrics from a run stopped at an instance boundary
	// (cancellation, injected fault, contained panic); Fault carries the
	// cause and FaultCursor the first instance that did not run. All
	// omitempty: completed runs serialize exactly as before.
	Partial     bool   `json:"partial,omitempty"`
	Fault       string `json:"fault,omitempty"`
	FaultCursor string `json:"fault_cursor,omitempty"`
}

// NUMAMetrics is the per-socket and per-memory-node view of a NUMA run.
type NUMAMetrics struct {
	Sockets []SocketMetrics `json:"sockets"`
	Nodes   []NodeMetrics   `json:"nodes"`
}

// SocketMetrics is one socket's shared L3 plus the DRAM traffic its cores
// issued.
type SocketMetrics struct {
	Socket int `json:"socket"`
	// Threads lists the 1-based thread ids grouped onto the socket.
	Threads []int `json:"threads"`
	// L3 is the socket's shared last-level cache (accesses/misses are the
	// socket cores' demand attribution; writebacks and prefetches are
	// cache-wide).
	L3 LevelMetrics `json:"l3"`
	// DRAMFills counts the socket cores' fills; RemoteDRAMFills the subset
	// served by another socket's memory node.
	DRAMFills       uint64 `json:"dram_fills"`
	RemoteDRAMFills uint64 `json:"remote_dram_fills"`
}

// NodeMetrics is one memory node's controller accounting.
type NodeMetrics struct {
	Node        int    `json:"node"`
	FillsLocal  uint64 `json:"fills_local"`
	FillsRemote uint64 `json:"fills_remote"`
	Writebacks  uint64 `json:"writebacks"`
	Pages       uint64 `json:"pages"`
}

// CGMetrics records the solver outcome of an HPCG scenario.
type CGMetrics struct {
	Iterations    int       `json:"iterations"`
	Residuals     []float64 `json:"residuals"`
	FinalError    float64   `json:"final_error"`
	FinalResidual float64   `json:"final_residual"`
}

// ThreadMetrics is one simulated hardware thread's view of the run.
type ThreadMetrics struct {
	Thread int `json:"thread"`

	// PMU ground-truth event totals.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	Branches     uint64 `json:"branches"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	L1DMisses    uint64 `json:"l1d_misses"`
	L2Misses     uint64 `json:"l2_misses"`
	L3Misses     uint64 `json:"l3_misses"`

	// Cache hierarchy, one entry per level as seen by this thread; the
	// last entry of a Machine thread attributes its share of the shared
	// L3. DRAMFills counts accesses that fell through every level;
	// RemoteDRAMFills is the subset served by a remote socket's node —
	// capability-keyed presence: set (0 included — first-touch's zero is
	// the policy's headline result) exactly when the thread's hierarchy
	// can serve remote fills, absent on flat stacks.
	Levels          []LevelMetrics `json:"levels"`
	DRAMFills       uint64         `json:"dram_fills"`
	RemoteDRAMFills *uint64        `json:"remote_dram_fills,omitempty"`

	// PEBS engine activity.
	SamplesEligible  uint64 `json:"samples_eligible"`
	SamplesFired     uint64 `json:"samples_fired"`
	SamplesBelowThr  uint64 `json:"samples_below_threshold"`
	SamplesRecorded  uint64 `json:"samples_recorded"`
	SampleDrains     uint64 `json:"sample_drains"`
	TraceRecordCount int    `json:"trace_records"`

	// Folding of the workload region.
	InstancesUsed  int     `json:"instances_used"`
	InstancesTotal int     `json:"instances_total"`
	MeanDurationNs float64 `json:"mean_duration_ns"`
	MeanIPC        float64 `json:"mean_ipc"`
	FoldedSamples  int     `json:"folded_samples"`
	FoldedLoads    int     `json:"folded_loads"`
	FoldedStores   int     `json:"folded_stores"`

	Phases []PhaseMetrics `json:"phases"`
}

// LevelMetrics is one cache level's counters.
type LevelMetrics struct {
	Name         string  `json:"name"`
	Accesses     uint64  `json:"accesses"`
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	MissRatio    float64 `json:"miss_ratio"`
	Writebacks   uint64  `json:"writebacks"`
	Prefetches   uint64  `json:"prefetches"`
	PrefetchHits uint64  `json:"prefetch_hits"`
}

// PhaseMetrics is one detected phase of the folded region.
type PhaseMetrics struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"` // paper letter (HPCG scenarios)

	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Direction  string  `json:"direction"`
	DurationNs float64 `json:"duration_ns"`
	Loads      int     `json:"loads"`
	Stores     int     `json:"stores"`
	MIPSMean   float64 `json:"mips_mean"`
	// BandwidthMBps is the paper's traversal-bandwidth approximation.
	BandwidthMBps float64 `json:"bandwidth_mbps"`

	L1DMissPerInstr float64 `json:"l1d_miss_per_instr"`
	L2MissPerInstr  float64 `json:"l2_miss_per_instr"`
	L3MissPerInstr  float64 `json:"l3_miss_per_instr"`
	// RemoteDRAMPerInstr is the remote-fill rate; present (0 included)
	// exactly on remote-capable stacks.
	RemoteDRAMPerInstr *float64 `json:"remote_dram_per_instr,omitempty"`
}

// ObjectMetrics is one data object's reference accounting.
type ObjectMetrics struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Bytes       uint64  `json:"bytes"`
	Members     uint64  `json:"members"`
	Refs        uint64  `json:"refs"`
	Loads       uint64  `json:"loads"`
	Stores      uint64  `json:"stores"`
	MeanLatency float64 `json:"mean_latency"`
	SrcL1       uint64  `json:"src_l1"`
	SrcL2       uint64  `json:"src_l2"`
	SrcL3       uint64  `json:"src_l3"`
	SrcDRAM     uint64  `json:"src_dram"`
	// SrcDRAMRemote counts samples served by a remote socket's node, and
	// PagesPerNode the object's placed pages by home node — both present
	// (0 included) exactly on multi-node placements.
	SrcDRAMRemote *uint64  `json:"src_dram_remote,omitempty"`
	PagesPerNode  []uint64 `json:"pages_per_node,omitempty"`
}

// JSON returns the canonical serialization: two-space indented, fixed field
// order, trailing newline. Two runs of the same scenario must produce
// byte-identical output.
func (m *Metrics) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// threadMetrics assembles one thread's metrics from its simulation stack
// and folded analysis. levelNames carries the configured cache level names
// (the hierarchy reports stats by index only).
func threadMetrics(thread int, c *cpu.Core, hier *memhier.Hierarchy,
	eng pebs.Stats, nRecords int, folded *folding.Folded, levelNames []string) ThreadMetrics {
	pmu := c.PMU().TrueSnapshot()
	tm := ThreadMetrics{
		Thread:       thread,
		Instructions: pmu[cpu.CtrInstructions],
		Cycles:       pmu[cpu.CtrCycles],
		Branches:     pmu[cpu.CtrBranches],
		Loads:        pmu[cpu.CtrLoads],
		Stores:       pmu[cpu.CtrStores],
		L1DMisses:    pmu[cpu.CtrL1DMiss],
		L2Misses:     pmu[cpu.CtrL2Miss],
		L3Misses:     pmu[cpu.CtrL3Miss],

		DRAMFills: hier.DRAMAccesses(),

		SamplesEligible:  eng.Eligible,
		SamplesFired:     eng.Fired,
		SamplesBelowThr:  eng.BelowThreshold,
		SamplesRecorded:  eng.Recorded,
		SampleDrains:     eng.Drains,
		TraceRecordCount: nRecords,
	}
	remoteCapable := hier.RemoteDRAMPossible()
	if remoteCapable {
		remote := hier.RemoteDRAMAccesses()
		tm.RemoteDRAMFills = &remote
	}
	for i := 0; i < hier.Levels(); i++ {
		st := hier.LevelStats(i)
		name := ""
		if i < len(levelNames) {
			name = levelNames[i]
		}
		tm.Levels = append(tm.Levels, levelMetrics(name, st))
	}
	if folded != nil {
		tm.InstancesUsed = folded.InstancesUsed
		tm.InstancesTotal = folded.InstancesTotal
		tm.MeanDurationNs = folded.MeanDurationNs
		tm.MeanIPC = folded.MeanIPC()
		tm.FoldedSamples = len(folded.Mem)
		for _, mp := range folded.Mem {
			if mp.Store {
				tm.FoldedStores++
			} else {
				tm.FoldedLoads++
			}
		}
		for _, p := range folded.Phases {
			tm.Phases = append(tm.Phases, phaseMetrics(p, "", remoteCapable))
		}
	}
	return tm
}

func levelMetrics(name string, st memhier.LevelStats) LevelMetrics {
	return LevelMetrics{
		Name:         name,
		Accesses:     st.Accesses,
		Hits:         st.Hits,
		Misses:       st.Misses,
		MissRatio:    st.MissRatio(),
		Writebacks:   st.Writebacks,
		Prefetches:   st.Prefetches,
		PrefetchHits: st.PrefHits,
	}
}

func phaseMetrics(p folding.Phase, label string, remoteCapable bool) PhaseMetrics {
	pm := PhaseMetrics{
		Name:            p.Name,
		Label:           label,
		Lo:              p.Lo,
		Hi:              p.Hi,
		Direction:       p.Direction.String(),
		DurationNs:      p.DurationNs,
		Loads:           p.Loads,
		Stores:          p.Stores,
		MIPSMean:        p.MIPSMean,
		BandwidthMBps:   p.SpanBandwidth / 1e6,
		L1DMissPerInstr: p.PerInstr[cpu.CtrL1DMiss],
		L2MissPerInstr:  p.PerInstr[cpu.CtrL2Miss],
		L3MissPerInstr:  p.PerInstr[cpu.CtrL3Miss],
	}
	if remoteCapable {
		remote := p.PerInstr[cpu.CtrRemoteDRAM]
		pm.RemoteDRAMPerInstr = &remote
	}
	return pm
}

// objectMetrics flattens the registry's accounting; placement (nil on flat
// runs) adds the per-node page breakdown of each object's address range.
func objectMetrics(objs []*objects.Object, placement *numa.Placement) []ObjectMetrics {
	out := make([]ObjectMetrics, 0, len(objs))
	for _, o := range objs {
		om := ObjectMetrics{
			Name:        o.Name,
			Kind:        o.Kind.String(),
			Bytes:       o.Bytes,
			Members:     o.Members,
			Refs:        o.Refs,
			Loads:       o.Loads,
			Stores:      o.Stores,
			MeanLatency: o.MeanLatency(),
			SrcL1:       o.Sources[memhier.SrcL1],
			SrcL2:       o.Sources[memhier.SrcL2],
			SrcL3:       o.Sources[memhier.SrcL3],
			SrcDRAM:     o.Sources[memhier.SrcDRAM],
		}
		if placement != nil && placement.Nodes() > 1 {
			remote := o.Sources[memhier.SrcDRAMRemote]
			om.SrcDRAMRemote = &remote
			om.PagesPerNode = placement.PagesIn(o.Range.Lo, o.Range.Hi)
		}
		out = append(out, om)
	}
	return out
}

// sessionMetrics collects the single-thread (Session) view.
func sessionMetrics(s *core.Session, folded *folding.Folded, levelNames []string) ThreadMetrics {
	return threadMetrics(1, s.Core, s.Hier, s.Mon.Engine().Stats(), len(s.Mon.Records()), folded, levelNames)
}

// machineMetrics collects per-thread metrics, the shared-L3 aggregate
// (single-socket machines) and the NUMA breakdown (routed machines).
func machineMetrics(m *core.Machine, foldedOf func(thread int) *folding.Folded, levelNames []string) ([]ThreadMetrics, *LevelMetrics, *NUMAMetrics) {
	var out []ThreadMetrics
	for i, th := range m.Threads {
		out = append(out, threadMetrics(i+1, th.Core, th.Hier, th.Mon.Engine().Stats(),
			len(th.Mon.Records()), foldedOf(i+1), levelNames))
	}
	var shared *LevelMetrics
	if m.Sockets == 1 && m.Placement == nil {
		// Flat machine: the single L3 goes in shared_l3. Routed machines
		// (any socket count) report their L3s in the NUMA section instead
		// — never both, so the two fields cannot drift apart.
		llc := levelMetrics(m.L3.Config().Name+" (shared)", m.L3.Stats())
		shared = &llc
	}
	return out, shared, numaMetrics(m)
}

// numaMetrics assembles the per-socket / per-node view of a routed machine
// (nil on the flat machine). The traffic aggregation is Machine.NUMAReport
// — one aggregator feeds both the rendered report and the scenario JSON —
// with the socket L3s' LevelMetrics (accesses/hits need the per-thread
// demand attribution) layered on top.
func numaMetrics(m *core.Machine) *NUMAMetrics {
	rep := m.NUMAReport()
	if rep == nil {
		return nil
	}
	nm := &NUMAMetrics{}
	llcLevel := m.Primary().Hier.Levels() - 1
	for _, row := range rep.Sockets {
		sm := SocketMetrics{
			Socket:          row.Socket,
			Threads:         row.Threads,
			DRAMFills:       row.L3Misses,
			RemoteDRAMFills: row.RemoteFills,
		}
		if sm.Threads == nil {
			sm.Threads = []int{} // memory-only socket: serialize as []
		}
		var acc, misses uint64
		for t, th := range m.Threads {
			if m.SocketOf[t] != row.Socket {
				continue
			}
			st := th.Hier.LevelStats(llcLevel)
			acc += st.Accesses
			misses += st.Misses
		}
		llc := m.L3s[row.Socket].Stats()
		llc.Accesses, llc.Misses = acc, misses
		llc.Hits = acc - misses
		sm.L3 = levelMetrics(m.L3s[row.Socket].Config().Name+" (shared)", llc)
		nm.Sockets = append(nm.Sockets, sm)
	}
	for _, n := range rep.Nodes {
		nm.Nodes = append(nm.Nodes, NodeMetrics{
			Node:        n.Node,
			FillsLocal:  n.FillsLocal,
			FillsRemote: n.FillsRemote,
			Writebacks:  n.Writebacks,
			Pages:       n.Pages,
		})
	}
	return nm
}

// paperPhaseMetrics converts labeled HPCG phases.
func paperPhaseMetrics(paper []core.PaperPhase, remoteCapable bool) []PhaseMetrics {
	out := make([]PhaseMetrics, 0, len(paper))
	for _, pp := range paper {
		out = append(out, phaseMetrics(pp.Phase, pp.Label, remoteCapable))
	}
	return out
}
