package scenario

import (
	"testing"
)

// remoteFills sums a run's per-thread remote DRAM fills.
func remoteFills(m *Metrics) (total, remote uint64) {
	for _, tm := range m.PerThread {
		total += tm.DRAMFills
		if tm.RemoteDRAMFills != nil {
			remote += *tm.RemoteDRAMFills
		}
	}
	return total, remote
}

// TestNUMAPolicyAxisLive pins the acceptance criterion of the NUMA
// subsystem directly: the first-touch and interleave STREAM scenarios
// differ in remote-DRAM fill counts — the placement policy is observable
// end to end (hierarchy → PMU → metrics), not just a config knob.
func TestNUMAPolicyAxisLive(t *testing.T) {
	ft, err := RunByName("stream_numa_ft_2s4t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	il, err := RunByName("stream_numa_il_2s4t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ftTotal, ftRemote := remoteFills(ft)
	ilTotal, ilRemote := remoteFills(il)
	if ftTotal == 0 || ilTotal == 0 {
		t.Fatalf("no DRAM fills: ft=%d il=%d", ftTotal, ilTotal)
	}
	if ilRemote == 0 {
		t.Fatal("interleave scenario recorded no remote fills")
	}
	if ftRemote >= ilRemote {
		t.Fatalf("first-touch remote fills (%d) not below interleave (%d)", ftRemote, ilRemote)
	}
	// The per-node controllers and the per-socket L3 views must both
	// conserve the issued traffic.
	for _, m := range []*Metrics{ft, il} {
		if m.NUMA == nil || len(m.NUMA.Sockets) != 2 || len(m.NUMA.Nodes) != 2 {
			t.Fatalf("%s: malformed NUMA section", m.Scenario)
		}
		total, remote := remoteFills(m)
		var served, servedRemote, socketFills uint64
		for _, n := range m.NUMA.Nodes {
			served += n.FillsLocal + n.FillsRemote
			servedRemote += n.FillsRemote
		}
		for _, s := range m.NUMA.Sockets {
			socketFills += s.DRAMFills
		}
		if served != total || servedRemote != remote || socketFills != total {
			t.Errorf("%s: nodes served %d (%d remote), sockets issued %d, threads saw %d (%d remote)",
				m.Scenario, served, servedRemote, socketFills, total, remote)
		}
	}
}

// TestNUMAHPCGFirstTouchVsInterleave pins the serial-init placement story:
// first-touch homes every page on the generating socket (zero remote),
// interleave pushes roughly half the fills across the interconnect.
func TestNUMAHPCGFirstTouchVsInterleave(t *testing.T) {
	ft, err := RunByName("hpcg_numa_ft_2s1t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	il, err := RunByName("hpcg_numa_il_2s1t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ftRemote := remoteFills(ft)
	ilTotal, ilRemote := remoteFills(il)
	if ftRemote != 0 {
		t.Errorf("first-touch HPCG recorded %d remote fills (serial init must home all pages locally)", ftRemote)
	}
	if ilRemote == 0 || ilRemote >= ilTotal {
		t.Errorf("interleave HPCG remote fills %d of %d implausible", ilRemote, ilTotal)
	}
	if ft.CG.FinalResidual != il.CG.FinalResidual {
		// Placement moves pages, not values: the solve is bit-identical.
		t.Errorf("CG residual differs across placements: %g vs %g",
			ft.CG.FinalResidual, il.CG.FinalResidual)
	}
}

// TestNUMASocketsOverride checks the simrun -sockets/-placement override
// path: a flat scenario forced onto 2 interleaved sockets reports a NUMA
// section and remote fills.
func TestNUMASocketsOverride(t *testing.T) {
	m, err := RunByName("stream_triad_4t", Options{Sockets: 2, Placement: "interleave"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sockets != 2 || m.Placement != "interleave" || m.NUMA == nil {
		t.Fatalf("override not applied: sockets=%d placement=%q numa=%v", m.Sockets, m.Placement, m.NUMA != nil)
	}
	if _, remote := remoteFills(m); remote == 0 {
		t.Error("interleaved override produced no remote fills")
	}
	// A bare placement override on a flat scenario is inert and rejected.
	if _, err := RunByName("stream_triad_4t", Options{Placement: "interleave"}); err == nil {
		t.Error("placement override without a NUMA topology accepted")
	}
}
