package scenario

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// BenchmarkRunObserved measures the cost of the observability layer on a
// figure-scale run: the same scenario unobserved, with a Progress mailbox
// attached (instance-boundary atomic stores), and with the mailbox both
// attached and aggressively polled by a concurrent observer. The
// EXPERIMENTS.md overhead claim (<1%) is this benchmark's off-vs-polled
// delta.
func BenchmarkRunObserved(b *testing.B) {
	sc, ok := Get("hpcg_8_1t")
	if !ok {
		b.Fatal("scenario hpcg_8_1t not registered")
	}

	b.Run("progress=off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(sc, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("progress=on", func(b *testing.B) {
		b.ReportAllocs()
		var p telemetry.Progress
		for i := 0; i < b.N; i++ {
			if _, err := Run(sc, Options{Progress: &p}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("progress=polled", func(b *testing.B) {
		b.ReportAllocs()
		var p telemetry.Progress
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			// Poll far harder than any real observer (simrun repaints at
			// 200ms; SSE at 1s) to bound the contention cost from above.
			defer close(done)
			t := time.NewTicker(100 * time.Microsecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					_ = p.Snapshot()
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(sc, Options{Progress: &p}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		<-done
	})
}
