package scenario

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// TestProgressObservationIsInert pins the capability-keying rule for the
// observability layer: attaching a Progress mailbox changes nothing about
// the result. The observed run's metrics are byte-identical to the
// unobserved run's, on session, machine and HPCG paths alike, and the
// mailbox ends at 100% with the run's real totals.
func TestProgressObservationIsInert(t *testing.T) {
	for _, name := range []string{"stream_triad_1t", "stream_triad_4t", "hpcg_8_1t"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := Get(name)
			if !ok {
				t.Fatalf("scenario %s not registered", name)
			}
			plain, err := Run(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var p telemetry.Progress
			observed, err := Run(sc, Options{Progress: &p})
			if err != nil {
				t.Fatal(err)
			}
			pj, _ := plain.JSON()
			oj, _ := observed.JSON()
			if !bytes.Equal(pj, oj) {
				t.Errorf("%s: observed run diverges from unobserved:\n%s", name, firstDiff(oj, pj))
			}

			s := p.Snapshot()
			if s.InstancesTotal == 0 {
				t.Fatalf("%s: no total published", name)
			}
			if sc.HPCG == nil && s.InstancesDone != s.InstancesTotal {
				t.Errorf("%s: finished run reports %d/%d instances", name, s.InstancesDone, s.InstancesTotal)
			}
			if sc.HPCG != nil && (s.InstancesDone == 0 || s.InstancesDone > s.InstancesTotal) {
				// HPCG converges early: done lands in (0, MaxIters].
				t.Errorf("%s: CG progress %d/%d out of range", name, s.InstancesDone, s.InstancesTotal)
			}
			if s.Cycles == 0 || s.Instructions == 0 {
				t.Errorf("%s: no CPU progress published (%d cycles, %d instructions)", name, s.Cycles, s.Instructions)
			}
			if s.NumLevels == 0 {
				t.Errorf("%s: no cache levels published", name)
			}
			for i := 0; i < s.NumLevels; i++ {
				if s.Levels[i].Hits == 0 && s.Levels[i].Fills == 0 {
					t.Errorf("%s: level %d published no activity", name, i)
				}
			}

			// The published totals are the run's real ones, not estimates:
			// cycles must match the per-thread metric sum.
			var wantCycles uint64
			for _, tm := range observed.PerThread {
				wantCycles += tm.Cycles
			}
			if s.Cycles != wantCycles {
				t.Errorf("%s: progress cycles %d != metrics cycles %d", name, s.Cycles, wantCycles)
			}
		})
	}
}

// TestProgressOnNUMAParallelHPCG pins the documented degradation: the
// barrier-coupled parallel solve has no instance boundaries, so a
// progress-only run is accepted (unlike checkpointing, which errors) and
// simply leaves the mailbox at its published total.
func TestProgressOnNUMAParallelHPCG(t *testing.T) {
	sc, ok := Get("hpcg_numa_ft_2s1t")
	if !ok {
		t.Skip("NUMA HPCG scenario not registered")
	}
	var p telemetry.Progress
	if _, err := Run(sc, Options{Progress: &p}); err != nil {
		t.Fatalf("progress-only run rejected on NUMA HPCG path: %v", err)
	}
	if p.Snapshot().InstancesTotal == 0 {
		t.Error("no total published")
	}
}
