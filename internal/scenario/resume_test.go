package scenario

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machspec"
)

// TestKillAndResumeMatchesGolden is the end-to-end fault-tolerance
// acceptance test: kill a scenario run at an instance boundary via the
// fault-injection harness, resume it from the last snapshot (round-tripped
// through the binary codec, as simrun -checkpoint/-resume would), and
// require the resumed run's Metrics JSON to equal the checked-in golden
// file byte for byte. The subset covers every checkpointable path: the
// single-thread Session, the sequential Machine, the NUMA-routed Machine
// (page placement state) and the HPCG solver (CG vector state).
func TestKillAndResumeMatchesGolden(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("goldens are amd64-generated; FMA fusion on %s perturbs float64 reductions", runtime.GOARCH)
	}
	cases := []struct {
		name  string
		every int
		// killAt is the 1-based instance hit that fails; it must land past
		// the first snapshot (every) so there is something to resume.
		killAt uint64
	}{
		{name: "stream_triad_1t", every: 3, killAt: 7},
		{name: "spmv_csr_4t", every: 5, killAt: 14},
		{name: "stream_numa_ft_2s4t", every: 5, killAt: 14},
		// hpcg_8_1t runs 3 CG iterations: snapshot after the second, kill
		// entering the third.
		{name: "hpcg_8_1t", every: 2, killAt: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := Get(tc.name)
			if !ok {
				t.Fatalf("scenario %q not registered", tc.name)
			}
			golden, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatal(err)
			}

			var lastEnc []byte
			opts := Options{
				CheckpointEvery: tc.every,
				CheckpointSink: func(s *checkpoint.Snapshot) error {
					var buf bytes.Buffer
					if err := checkpoint.Write(&buf, s); err != nil {
						return err
					}
					lastEnc = buf.Bytes()
					return nil
				},
			}
			faultinject.Enable(faultinject.PointInstance, tc.killAt, nil)
			m, err := Run(sc, opts)
			faultinject.Reset()
			var rerr *core.RunError
			if !errors.As(err, &rerr) {
				t.Fatalf("killed run: got %T %v, want *core.RunError", err, err)
			}
			if m == nil || !m.Partial || m.Fault == "" || m.FaultCursor == "" {
				t.Fatalf("killed run's metrics not marked partial: %+v", m)
			}
			if lastEnc == nil {
				t.Fatal("no snapshot emitted before the kill")
			}

			snap, err := checkpoint.Read(bytes.NewReader(lastEnc))
			if err != nil {
				t.Fatalf("decoding snapshot: %v", err)
			}
			resumed, err := Run(sc, Options{Resume: snap})
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			got, err := resumed.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, golden) {
				t.Errorf("resumed metrics differ from golden %s (%d vs %d bytes)", tc.name, len(got), len(golden))
			}
		})
	}
}

// TestResumeWrongScenarioRejected pins the tag validation: a snapshot from
// one scenario must not silently resume another.
func TestResumeWrongScenarioRejected(t *testing.T) {
	sc, ok := Get("stream_triad_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	var last *checkpoint.Snapshot
	opts := Options{
		CheckpointEvery: 3,
		CheckpointSink:  func(s *checkpoint.Snapshot) error { last = s; return nil },
	}
	if _, err := Run(sc, opts); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no snapshot emitted")
	}
	other, ok := Get("random_access_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	if _, err := Run(other, Options{Resume: last}); err == nil {
		t.Fatal("snapshot resumed under the wrong scenario")
	}
}

// TestResumeThenTimeoutEmitsPartial is the timeout-clock regression: a
// resumed run whose deadline expires must still stop at an instance
// boundary with clearly-marked partial metrics — the resume read happening
// before the clock starts (simrun orders them that way) must not change
// the abort path's behavior. The already-cancelled context stands in for a
// deadline that expired the moment dispatch began.
func TestResumeThenTimeoutEmitsPartial(t *testing.T) {
	sc, ok := Get("stream_triad_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	var last *checkpoint.Snapshot
	opts := Options{
		CheckpointEvery: 3,
		CheckpointSink:  func(s *checkpoint.Snapshot) error { last = s; return nil },
	}
	if _, err := Run(sc, opts); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no snapshot emitted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := Run(sc, Options{Resume: last, Context: ctx})
	var rerr *core.RunError
	if !errors.As(err, &rerr) {
		t.Fatalf("cancelled resume: got %T %v, want *core.RunError", err, err)
	}
	if m == nil || !m.Partial || m.FaultCursor == "" {
		t.Fatalf("cancelled resume's metrics not marked partial: %+v", m)
	}
}

// TestResumeUnderDifferentMachineRejected pins the checkpoint tag: a
// snapshot taken on the scenario's own machine must not resume under a
// -machine override (the simulated hardware differs, so the state is
// meaningless there).
func TestResumeUnderDifferentMachineRejected(t *testing.T) {
	sc, ok := Get("stream_triad_1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	var last *checkpoint.Snapshot
	opts := Options{
		CheckpointEvery: 3,
		CheckpointSink:  func(s *checkpoint.Snapshot) error { last = s; return nil },
	}
	if _, err := Run(sc, opts); err != nil {
		t.Fatal(err)
	}
	spec, err := machspec.Named("small")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc, Options{Resume: last, Machine: spec}); err == nil {
		t.Fatal("snapshot resumed under a different machine spec")
	}
}

// TestNUMAHPCGCheckpointRejected pins the documented limitation: the
// barrier-coupled parallel HPCG path has no instance-boundary snapshot
// point and must refuse, not silently ignore, a checkpoint request.
func TestNUMAHPCGCheckpointRejected(t *testing.T) {
	sc, ok := Get("hpcg_numa_ft_2s1t")
	if !ok {
		t.Fatal("scenario missing")
	}
	_, err := Run(sc, Options{CheckpointEvery: 2, CheckpointSink: func(*checkpoint.Snapshot) error { return nil }})
	if err == nil {
		t.Fatal("NUMA HPCG accepted a checkpoint request")
	}
}
