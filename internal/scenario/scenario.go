// Package scenario is the deterministic scenario matrix of the repository:
// a registry of named, fully-reproducible runs — workload × cache hierarchy
// × thread count × sampling configuration — each producing a canonical
// Metrics struct with a stable JSON serialization. The golden files under
// testdata/golden pin every scenario's metrics; the regression tests replay
// each scenario on both the fast and the reference simulation paths and
// require byte-identical output, turning every combination into a diffable
// reproduction artifact in the spirit of the paper's Figure 1 tables.
//
// Determinism is by construction: sampling randomization is seeded, the
// simulated clocks are integer cycle counters, and multi-thread scenarios
// run under core.RunWorkloadSequential's fixed schedule (thread t completes
// before thread t+1 starts), which fixes the shared-L3 fill order that a
// goroutine schedule would leave to the Go runtime. cmd/simrun is the CLI
// front end; hpcgrepro remains the concurrent-schedule reproduction tool.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/folding"
	"repro/internal/hpcg"
	"repro/internal/machspec"
	"repro/internal/memhier"
	"repro/internal/numa"
	"repro/internal/pebs"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Scenario is one registered, deterministic experiment configuration.
type Scenario struct {
	// Name is the registry key (unique).
	Name string
	// Description is the one-line -list summary.
	Description string
	// Hierarchy names the cache configuration (see HierarchyNames).
	Hierarchy string
	// Threads is the simulated hardware thread count (>= 1).
	Threads int
	// Iters is the instrumented iteration count (workload scenarios).
	Iters int
	// Period is the PEBS sampling period.
	Period uint64
	// MuxQuantumNs enables load/store multiplexing (0: sample both always).
	MuxQuantumNs uint64
	// Randomize perturbs sampling gaps (deterministically, from Seed).
	Randomize bool
	// Seed drives the randomized gaps.
	Seed int64
	// LatencyThreshold drops load samples below the threshold.
	LatencyThreshold uint64
	// Sockets > 0 routes the run through a NUMA Machine with that many
	// sockets (0 keeps the historical flat-DRAM stack). NUMA scenarios
	// always run on a Machine — even single-thread HPCG, which uses the
	// 1-worker parallel solve (deterministic: one goroutine).
	Sockets int
	// Placement names the page placement policy for NUMA scenarios
	// ("first-touch", "interleave"; "" = first-touch).
	Placement string
	// Workload builds the kernel; nil for HPCG scenarios.
	Workload func() workloads.PartitionedWorkload
	// HPCG, when non-nil, makes this an HPCG reproduction scenario.
	HPCG *hpcg.Params
}

// Options adjusts a scenario run without changing its identity.
type Options struct {
	// Reference selects the per-operation reference simulation path. The
	// metrics must be identical to the fast path's — the golden tests pin
	// both.
	Reference bool
	// Threads overrides the scenario's thread count when > 0.
	Threads int
	// Sockets overrides the scenario's socket count when > 0 (simrun
	// -sockets).
	Sockets int
	// Placement overrides the scenario's placement policy when non-empty
	// (simrun -placement).
	Placement string
	// Context cancels the run at the next instance boundary (nil: never).
	// A cancelled run returns partial, Partial-marked metrics alongside a
	// *core.RunError.
	Context context.Context
	// CheckpointEvery snapshots the full simulation state every N completed
	// instances (0: never). Requires a deterministic schedule: sequential
	// workload scenarios and flat single-thread HPCG.
	CheckpointEvery int
	// CheckpointSink receives each snapshot.
	CheckpointSink func(*checkpoint.Snapshot) error
	// CheckpointDemand, when non-nil, is polled at every instance boundary;
	// returning true snapshots there, feeds the snapshot to CheckpointSink,
	// and stops the run with core.ErrCheckpointDemanded — the drain
	// primitive of the simulation server. Requires the same deterministic
	// schedules as CheckpointEvery (see CheckpointSupported).
	CheckpointDemand func() bool
	// Resume restores a snapshot (validated against the scenario's
	// fingerprint) and continues from its cursor; the completed run is
	// byte-identical to an uninterrupted one.
	Resume *checkpoint.Snapshot
	// Progress, when non-nil, receives live instance/cycle/cache counters
	// at the run's existing instance boundaries (atomic stores only — see
	// core.Session.ObserveProgress). Unlike checkpointing it imposes no
	// schedule constraints: any scenario accepts it, and paths without
	// instance boundaries (the NUMA parallel HPCG solve) simply leave the
	// mailbox at its totals. Progress never appears in Metrics, so observed
	// and unobserved runs produce byte-identical golden output.
	Progress *telemetry.Progress
	// Machine, when non-nil, replaces the scenario's named hierarchy and
	// NUMA topology with a declarative machine spec (simrun -machine,
	// cmd/sweep): the spec's cache levels, socket count, placement and
	// page size become the run's machine, and its sampling section (if
	// present) overrides the scenario's sampling identity. The explicit
	// Sockets/Placement overrides still apply on top of the spec.
	Machine *machspec.Spec
	// Sampling overrides individual sampling knobs (set fields win over
	// both the scenario and the spec — the sweep engine's sampling axis).
	Sampling *machspec.Sampling
}

// HierarchyNames lists the named cache configurations of the matrix.
func HierarchyNames() []string { return []string{"haswell", "small", "noprefetch"} }

// HierarchyConfig resolves a named cache configuration. The names are
// checked-in machine spec files embedded in internal/machspec — the same
// resolution path a -machine file takes — pinned byte-identical to the
// legacy Go-struct values by TestNamedSpecsMatchLegacyConfigs.
func HierarchyConfig(name string) (memhier.Config, error) {
	if name == "" {
		name = "haswell"
	}
	sp, err := machspec.Named(name)
	if err != nil {
		return memhier.Config{}, fmt.Errorf("scenario: unknown hierarchy %q (have %v)", name, HierarchyNames())
	}
	return sp.Memhier(), nil
}

// Config assembles the core configuration for a run of the scenario.
func (sc Scenario) Config(reference bool) (core.Config, error) {
	return sc.configWith(reference, nil)
}

// configWith assembles the core configuration, resolving the machine from
// the spec when one is given (the scenario's named hierarchy otherwise).
// The caller has already folded the spec's topology into sc.Sockets /
// sc.Placement; the spec contributes the cache levels, page size and
// remote latency here.
func (sc Scenario) configWith(reference bool, spec *machspec.Spec) (core.Config, error) {
	var cache memhier.Config
	if spec != nil {
		cache = spec.Memhier()
	} else {
		var err error
		if cache, err = HierarchyConfig(sc.Hierarchy); err != nil {
			return core.Config{}, err
		}
	}
	cfg := core.DefaultConfig()
	cfg.Cache = cache
	cfg.Reference = reference
	cfg.Monitor.PEBS.Period = sc.Period
	if cfg.Monitor.PEBS.Period == 0 {
		cfg.Monitor.PEBS.Period = 200
	}
	cfg.Monitor.PEBS.Events = pebs.SampleLoads | pebs.SampleStores
	cfg.Monitor.PEBS.Randomize = sc.Randomize
	cfg.Monitor.PEBS.Seed = sc.Seed
	cfg.Monitor.PEBS.LatencyThreshold = sc.LatencyThreshold
	cfg.Monitor.MuxQuantumNs = sc.MuxQuantumNs
	if sc.Sockets > 0 {
		policy, err := numa.ParsePolicy(sc.Placement)
		if err != nil {
			return core.Config{}, err
		}
		cfg.NUMA = numa.Config{Sockets: sc.Sockets, Policy: policy}
		if spec != nil {
			cfg.NUMA.PageSize = spec.PageSize
			cfg.NUMA.RemoteDRAMLatency = spec.DRAM.RemoteLatency
		}
	}
	return cfg, nil
}

// applySampling folds a sampling override into the scenario identity (set
// fields win, nil fields inherit).
func applySampling(sc *Scenario, sp *machspec.Sampling) {
	if sp == nil {
		return
	}
	if sp.Period != nil {
		sc.Period = *sp.Period
	}
	if sp.MuxQuantumNs != nil {
		sc.MuxQuantumNs = *sp.MuxQuantumNs
	}
	if sp.Randomize != nil {
		sc.Randomize = *sp.Randomize
	}
	if sp.Seed != nil {
		sc.Seed = *sp.Seed
	}
	if sp.LatencyThreshold != nil {
		sc.LatencyThreshold = *sp.LatencyThreshold
	}
}

// SkipReason reports why a global override combination cannot apply to a
// scenario — the matrix driver (simrun -run all, the sweep engine) skips
// such points with a notice instead of aborting a half-finished matrix.
// Empty string: the combination is runnable.
func SkipReason(sc Scenario, opts Options) string {
	threads := sc.Threads
	if opts.Threads > 0 {
		threads = opts.Threads
	}
	if sc.HPCG != nil && threads > 1 {
		return "HPCG scenarios are single-thread (no deterministic parallel schedule); -threads override ignored"
	}
	sockets := sc.Sockets
	if opts.Machine != nil {
		sockets = opts.Machine.Sockets
	}
	if opts.Sockets > 0 {
		sockets = opts.Sockets
	}
	if opts.Placement != "" && sockets == 0 {
		return fmt.Sprintf("placement %q requires a NUMA topology (no socket override and the machine has none)", opts.Placement)
	}
	return ""
}

// CheckpointSupported reports whether Run(sc, opts) accepts a Checkpointer
// (periodic, demand or resume): the deterministic instance-boundary
// schedules — sequential workload runs (the built-in workloads are all
// ResumableWorkload) and flat HPCG. The NUMA HPCG path runs the 1-worker
// parallel solve, which has no instance-boundary snapshot point. A server
// consults this before attaching a drain checkpointer to a job; jobs on
// unsupported paths are cancelled at the drain deadline instead.
func CheckpointSupported(sc Scenario, opts Options) bool {
	sockets := sc.Sockets
	if opts.Machine != nil {
		sockets = opts.Machine.Sockets
	}
	if opts.Sockets > 0 {
		sockets = opts.Sockets
	}
	if sc.HPCG != nil {
		return sockets == 0
	}
	_, resumable := sc.Workload().(workloads.ResumableWorkload)
	return resumable
}

// registry holds the scenarios in registration order; names is the
// uniqueness index.
var (
	registry []Scenario
	names    = map[string]int{}
)

// Register adds a scenario to the registry.
func Register(sc Scenario) error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if _, dup := names[sc.Name]; dup {
		return fmt.Errorf("scenario: duplicate name %q", sc.Name)
	}
	if (sc.Workload == nil) == (sc.HPCG == nil) {
		return fmt.Errorf("scenario %q: exactly one of Workload and HPCG must be set", sc.Name)
	}
	if sc.Threads < 1 {
		return fmt.Errorf("scenario %q: Threads must be >= 1", sc.Name)
	}
	if sc.HPCG != nil && sc.Threads != 1 {
		// Run would reject this on every invocation; fail at registration
		// like the other invariants.
		return fmt.Errorf("scenario %q: HPCG scenarios are single-thread (no deterministic parallel schedule)", sc.Name)
	}
	if sc.Sockets < 0 {
		return fmt.Errorf("scenario %q: negative socket count", sc.Name)
	}
	if sc.Sockets > 0 {
		if _, err := numa.ParsePolicy(sc.Placement); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	} else if sc.Placement != "" {
		return fmt.Errorf("scenario %q: placement %q without sockets", sc.Name, sc.Placement)
	}
	if _, err := HierarchyConfig(sc.Hierarchy); err != nil {
		return err
	}
	names[sc.Name] = len(registry)
	registry = append(registry, sc)
	return nil
}

// mustRegister is Register for the built-in table.
func mustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// All returns the registered scenarios sorted by name.
func All() []Scenario {
	out := append([]Scenario(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	i, ok := names[name]
	if !ok {
		return Scenario{}, false
	}
	return registry[i], true
}

// Run executes the scenario deterministically and collects its canonical
// metrics. Single-thread flat scenarios run through a Session (the
// canonical pipeline); multi-thread — and every NUMA-routed — scenario
// runs on a Machine under a deterministic schedule (the sequential
// workload schedule, or the 1-worker parallel HPCG solve), so repeated
// runs — and the fast vs. reference paths — are byte-identical.
func Run(sc Scenario, opts Options) (*Metrics, error) {
	spec := opts.Machine
	if spec != nil {
		// The spec replaces the whole machine: hierarchy, topology and (if
		// it carries a sampling section) the sampling identity. Explicit
		// Sockets/Placement overrides still apply on top below.
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		sc.Sockets = spec.Sockets
		sc.Placement = spec.Placement
		applySampling(&sc, spec.Sampling)
	}
	applySampling(&sc, opts.Sampling)
	threads := sc.Threads
	if opts.Threads > 0 {
		threads = opts.Threads
	}
	if opts.Sockets > 0 {
		sc.Sockets = opts.Sockets
	}
	if opts.Placement != "" {
		sc.Placement = opts.Placement
		if err := machspec.ValidateTopology(sc.Sockets, sc.Placement, 0); err != nil {
			// The shared topology validation (machspec, simrun and
			// hpcgrepro surface the same message): a placement with no
			// NUMA topology is inert and must not silently run.
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	cfg, err := sc.configWith(opts.Reference, spec)
	if err != nil {
		return nil, err
	}
	levelNames := make([]string, len(cfg.Cache.Levels))
	for i, lv := range cfg.Cache.Levels {
		levelNames[i] = lv.Name
	}
	hierarchy := sc.Hierarchy
	if hierarchy == "" {
		hierarchy = "haswell"
	}
	if spec != nil {
		hierarchy = spec.Name
		if hierarchy == "" {
			hierarchy = "custom"
		}
	}
	numaOn := sc.Sockets > 0

	m := &Metrics{
		Scenario:  sc.Name,
		Hierarchy: hierarchy,
		Threads:   threads,
		Iters:     sc.Iters,
	}
	if numaOn {
		m.Sockets = sc.Sockets
		// sc.Config already parsed sc.Placement into cfg.NUMA.
		m.Placement = cfg.NUMA.Policy.String()
		m.PageSize = cfg.NUMA.PageSize
		if m.PageSize == 0 {
			m.PageSize = numa.DefaultPageSize
		}
	}

	var ck *core.Checkpointer
	wantCheckpoint := opts.CheckpointEvery > 0 || opts.Resume != nil || opts.CheckpointDemand != nil
	if wantCheckpoint || opts.Progress != nil {
		tagName := sc.Name
		if spec != nil {
			// A machine-spec override changes the simulated hardware: make
			// the snapshot tag reject resuming under a different machine.
			tagName = sc.Name + "|machine:" + hierarchy
		}
		ck = &core.Checkpointer{
			Every:    opts.CheckpointEvery,
			Tag:      core.CheckpointTag(tagName, threads, cfg),
			Sink:     opts.CheckpointSink,
			Resume:   opts.Resume,
			Demand:   opts.CheckpointDemand,
			Progress: opts.Progress,
		}
	}
	if opts.Progress != nil {
		if sc.HPCG != nil {
			opts.Progress.SetTotal(uint64(sc.HPCG.MaxIters))
		} else {
			opts.Progress.SetTotal(uint64(threads * sc.Iters))
		}
	}

	if sc.HPCG != nil {
		if threads != 1 {
			return nil, fmt.Errorf("scenario %q: HPCG golden scenarios are single-thread (the barrier-coupled parallel solve has no deterministic schedule); use hpcgrepro -threads for the concurrent run", sc.Name)
		}
		m.Workload = "hpcg"
		m.Iters = sc.HPCG.MaxIters
		if numaOn {
			if wantCheckpoint {
				return nil, fmt.Errorf("scenario %q: checkpointing is not supported on the NUMA HPCG path (the barrier-coupled parallel solve has no instance-boundary snapshot point)", sc.Name)
			}
			// The 1-worker parallel solve is deterministic (one goroutine)
			// and runs on a Machine, which is what carries the NUMA layer.
			run, err := core.RunHPCGParallel(opts.Context, cfg, *sc.HPCG, 1)
			if err != nil {
				if rerr := asRunError(err); rerr != nil && run != nil {
					markPartial(m, rerr)
					return m, err
				}
				return nil, err
			}
			m.CG = cgMetrics(run.CG)
			mach := run.Machine
			folded := func(thread int) *folding.Folded { return run.Threads[thread-1].Folded }
			m.PerThread, m.SharedL3, m.NUMA = machineMetrics(mach, folded, levelNames)
			m.PerThread[0].Phases = paperPhaseMetrics(run.Threads[0].Paper,
				mach.Primary().Hier.RemoteDRAMPossible())
			m.Objects = objectMetrics(mach.Primary().Mon.Registry().Objects(), mach.Placement)
			return m, nil
		}
		run, err := core.RunHPCGCheckpointed(opts.Context, cfg, *sc.HPCG, ck)
		if err != nil {
			if rerr := asRunError(err); rerr != nil && run != nil {
				markPartial(m, rerr)
				if run.CG != nil && len(run.CG.Residuals) > 0 {
					m.CG = cgMetrics(run.CG)
				}
				return m, err
			}
			return nil, err
		}
		m.CG = cgMetrics(run.CG)
		m.Objects = objectMetrics(run.Session.Mon.Registry().Objects(), nil)
		tm := sessionMetrics(run.Session, run.Folded, levelNames)
		tm.Phases = paperPhaseMetrics(run.Paper, false)
		m.PerThread = []ThreadMetrics{tm}
		return m, nil
	}

	w := sc.Workload()
	m.Workload = w.Name()
	if threads == 1 && !numaOn {
		res, err := core.RunWorkloadCheckpointed(opts.Context, cfg, w, sc.Iters, ck)
		if err != nil {
			if rerr := asRunError(err); rerr != nil && res != nil {
				markPartial(m, rerr)
				return m, err
			}
			return nil, err
		}
		m.PerThread = []ThreadMetrics{sessionMetrics(res.Session, res.Folded, levelNames)}
		m.Objects = objectMetrics(res.Session.Mon.Registry().Objects(), nil)
		return m, nil
	}
	res, err := core.RunWorkloadSequentialCheckpointed(opts.Context, cfg, w, sc.Iters, threads, ck)
	if err != nil {
		if rerr := asRunError(err); rerr != nil && res != nil {
			markPartial(m, rerr)
			return m, err
		}
		return nil, err
	}
	folded := func(thread int) *folding.Folded { return res.Threads[thread-1].Folded }
	m.PerThread, m.SharedL3, m.NUMA = machineMetrics(res.Machine, folded, levelNames)
	m.Objects = objectMetrics(res.Machine.Primary().Mon.Registry().Objects(), res.Machine.Placement)
	return m, nil
}

// asRunError unwraps a clean instance-boundary stop (nil for hard
// failures).
func asRunError(err error) *core.RunError {
	var rerr *core.RunError
	if errors.As(err, &rerr) {
		return rerr
	}
	return nil
}

// markPartial stamps metrics from an interrupted run: consumers (and the
// JSON artifact) see explicitly that these numbers cover only a prefix of
// the schedule. The fields are omitempty, so completed runs serialize
// exactly as before.
func markPartial(m *Metrics, rerr *core.RunError) {
	m.Partial = true
	m.Fault = rerr.Cause.Error()
	m.FaultCursor = fmt.Sprintf("thread %d, iter %d", rerr.Cursor.Thread, rerr.Cursor.Iter)
}

// cgMetrics flattens a CG solve result.
func cgMetrics(cg *hpcg.CGResult) *CGMetrics {
	return &CGMetrics{
		Iterations:    cg.Iterations,
		Residuals:     cg.Residuals,
		FinalError:    cg.FinalError,
		FinalResidual: cg.Residuals[len(cg.Residuals)-1],
	}
}

// RunByName resolves and runs a registered scenario.
func RunByName(name string, opts Options) (*Metrics, error) {
	sc, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (run -list for the registry)", name)
	}
	return Run(sc, opts)
}
