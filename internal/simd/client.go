package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// Client talks to a simd server with the retry discipline the server's
// admission control expects: shed responses (429/503) are retried after the
// server's Retry-After hint, transient failures (5xx, network errors) are
// retried with exponential backoff and jitter, and hard rejections
// (400/413) fail immediately — retrying a malformed request is noise.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (nil: a default client with no overall timeout —
	// per-attempt deadlines come from ctx).
	HTTP *http.Client
	// Retries bounds the retry attempts after the first try (<0: 0; default
	// when zero: 8).
	Retries int
	// BaseDelay seeds the exponential backoff (0: 100ms); MaxDelay caps it
	// (0: 5s). The actual sleep is jittered to half-to-full of the step so
	// synchronized clients do not re-stampede a recovering server.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Log, when non-nil, receives one line per retry.
	Log func(format string, args ...any)
}

// RunResult is a completed remote job.
type RunResult struct {
	// Metrics holds the canonical metrics bytes exactly as the server
	// stored them (partial-marked when Partial is set).
	Metrics []byte
	// Key is the job's content-hash identity.
	Key string
	// Source reports how the server produced the bytes: "simulated",
	// "cache" or "coalesced".
	Source string
	// Partial marks a deadline-expired job: Metrics covers a prefix of the
	// schedule.
	Partial bool
}

// ErrPartial accompanies a RunResult whose metrics are partial.
var ErrPartial = errors.New("simd: job deadline expired; metrics are partial")

// retryableStatus reports whether an HTTP status is worth another attempt.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	}
	return code >= 500 && code != http.StatusGatewayTimeout
}

func (c *Client) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Run submits a job and blocks until the server returns its result,
// retrying shed and transient failures. The returned metrics are the
// server's stored bytes verbatim.
func (c *Client) Run(ctx context.Context, req Request) (*RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("simd client: %w", err)
	}
	retries := c.Retries
	if retries == 0 {
		retries = 8
	}
	if retries < 0 {
		retries = 0
	}
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}

	var lastErr error
	delay := base
	for attempt := 0; ; attempt++ {
		res, retryable, hint, err := c.attempt(ctx, body)
		if err == nil || errors.Is(err, ErrPartial) {
			return res, err
		}
		lastErr = err
		if !retryable || attempt >= retries {
			return nil, fmt.Errorf("simd client: %w", lastErr)
		}
		sleep := hint
		if sleep <= 0 {
			// Exponential backoff with jitter in [delay/2, delay]: spread, but
			// never sooner than half the intended step.
			sleep = delay/2 + rand.N(delay/2+1)
			delay *= 2
			if delay > maxDelay {
				delay = maxDelay
			}
		}
		c.logf("simd client: attempt %d failed (%v), retrying in %s", attempt+1, err, sleep)
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("simd client: %w (last attempt: %v)", context.Cause(ctx), lastErr)
		}
	}
}

// attempt performs one blocking submit. It returns the result on success
// (or partial), whether a failure is retryable, and the server's
// Retry-After hint if it sent one.
func (c *Client) attempt(ctx context.Context, body []byte) (*RunResult, bool, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		return nil, false, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		// Network-level failure: retryable unless the context is done.
		return nil, ctx.Err() == nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, ctx.Err() == nil, 0, err
	}

	res := &RunResult{
		Metrics: b,
		Key:     resp.Header.Get("X-Simd-Key"),
		Source:  resp.Header.Get("X-Simd-Source"),
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return res, false, 0, nil
	case resp.StatusCode == http.StatusGatewayTimeout:
		res.Partial = true
		return res, false, 0, ErrPartial
	}
	hint := retryAfterHint(resp)
	err = fmt.Errorf("server returned %s: %s", resp.Status, compactError(b))
	return nil, retryableStatus(resp.StatusCode), hint, err
}

// retryAfterHint parses the Retry-After header (seconds form; the server
// only sends that form).
func retryAfterHint(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// compactError extracts the message from an error envelope, falling back to
// a truncated raw body.
func compactError(b []byte) string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &env) == nil && env.Error != "" {
		return env.Error
	}
	const limit = 200
	s := string(b)
	if len(s) > limit {
		s = s[:limit] + "…"
	}
	return s
}
