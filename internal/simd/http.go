package simd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// maxRequestBody bounds a job document (an inline machine spec is at most a
// few KB; anything larger is not a simulation request).
const maxRequestBody = 1 << 20

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs             submit a job; ?wait=1 blocks for the result
//	GET  /v1/jobs/{key}       job status envelope
//	GET  /v1/jobs/{key}/result canonical metrics bytes, exactly as stored
//	GET  /v1/jobs/{key}/events server-sent status events until terminal
//	GET  /v1/stats            server counters
//	GET  /metrics             Prometheus text exposition (v0.0.4)
//	GET  /healthz             200 serving / 503 draining
//
// With Config.EnablePprof the standard profiling endpoints are mounted
// under /debug/pprof/.
//
// Result bodies are the stored bytes verbatim — the transport never
// re-encodes metrics JSON, so a server result is byte-identical to the
// simrun artifact for the same job.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{key}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{key}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// writeError speaks a *Error (or wraps any error as a 500), attaching
// Retry-After when the failure is retryable.
func writeError(w http.ResponseWriter, err error) {
	se, ok := err.(*Error)
	if !ok {
		se = &Error{Code: http.StatusInternalServerError, Msg: err.Error()}
	}
	if se.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(se.RetryAfter)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(se.Code)
	json.NewEncoder(w).Encode(map[string]string{"error": se.Msg})
}

// retryAfterSeconds rounds a hint up to whole seconds (the header's unit),
// never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, &Error{Code: http.StatusBadRequest, Msg: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	f, coalesced, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("wait") == "" {
		// Fire-and-poll: answer immediately with the job envelope. A
		// cache-hit flight is already terminal, so the client can fetch the
		// result at once.
		st := f.status()
		w.Header().Set("Location", "/v1/jobs/"+f.key)
		code := http.StatusAccepted
		if terminalState(st.State) {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
		return
	}
	// Blocking submit: wait for the flight (bounded by the client hanging
	// up) and serve the outcome in one round trip.
	select {
	case <-f.done:
	case <-r.Context().Done():
		// Client hung up mid-wait; the job keeps running (another request
		// may be coalesced on it). Nothing useful to write.
		return
	}
	s.writeOutcome(w, f, coalesced)
}

// writeOutcome serves a terminal flight: raw metrics bytes on success and
// on deadline partials, a structured error otherwise.
func (s *Server) writeOutcome(w http.ResponseWriter, f *flight, coalesced bool) {
	state, metrics, err := f.result()
	h := w.Header()
	h.Set("X-Simd-Key", f.key)
	h.Set("X-Simd-Status", state)
	source := f.status().Source
	if coalesced {
		source = SourceCoalesced
	}
	if source != "" {
		h.Set("X-Simd-Source", source)
	}
	switch state {
	case StateDone:
		h.Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(metrics)
	case StatePartial:
		// The job deadline fired: the partial-marked metrics are the body,
		// the 504 says they cover only a prefix of the schedule.
		h.Set("Content-Type", "application/json")
		h.Set("X-Simd-Partial", "1")
		w.WriteHeader(http.StatusGatewayTimeout)
		if len(metrics) > 0 {
			w.Write(metrics)
		} else {
			fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", errString(err))
		}
	case StateCheckpointed:
		// Parked by a drain; the job resumes when a server restarts over
		// the state directory — retry there.
		writeError(w, &Error{
			Code:       http.StatusServiceUnavailable,
			Msg:        "job checkpointed by server drain; retry after restart",
			RetryAfter: s.cfg.RetryAfter,
		})
	default:
		writeError(w, &Error{Code: http.StatusInternalServerError, Msg: errString(err)})
	}
}

func errString(err error) string {
	if err == nil {
		return "unknown failure"
	}
	return err.Error()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	f, ok := s.Lookup(r.PathValue("key"))
	if !ok {
		writeError(w, &Error{Code: http.StatusNotFound, Msg: "unknown job key"})
		return
	}
	writeJSON(w, http.StatusOK, f.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	f, ok := s.Lookup(r.PathValue("key"))
	if !ok {
		writeError(w, &Error{Code: http.StatusNotFound, Msg: "unknown job key"})
		return
	}
	if !f.terminal() {
		writeError(w, &Error{Code: http.StatusConflict, Msg: "job still running", RetryAfter: s.cfg.RetryAfter})
		return
	}
	s.writeOutcome(w, f, false)
}

// handleEvents streams the job's status as server-sent events until it
// reaches a terminal state: one event per observed change plus a final
// terminal event. Progress comes from the flight's telemetry mailbox, which
// the simulation refreshes at every instance boundary — instances done and
// total, simulated cycles and instructions advance live.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	f, ok := s.Lookup(r.PathValue("key"))
	if !ok {
		writeError(w, &Error{Code: http.StatusNotFound, Msg: "unknown job key"})
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	send := func(st Status) {
		b, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: status\ndata: %s\n\n", b)
		if canFlush {
			fl.Flush()
		}
	}
	last := f.status()
	send(last)
	if terminalState(last.State) {
		return
	}
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-f.done:
			send(f.status())
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			st := f.status()
			if st != last {
				last = st
				send(st)
			}
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the Prometheus text exposition. The scrape snapshots
// instrument values while writing — running jobs are never blocked on it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	w.WriteHeader(http.StatusOK)
	s.WriteMetrics(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, &Error{Code: http.StatusServiceUnavailable, Msg: "draining", RetryAfter: s.cfg.RetryAfter})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
