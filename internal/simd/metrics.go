package simd

import (
	"io"

	"repro/internal/telemetry"
)

// serverMetrics is the server's instrument panel: every counter the old
// ad-hoc stats struct carried, re-homed onto the telemetry registry so one
// set of atomics backs both the legacy /v1/stats JSON and the Prometheus
// /metrics exposition. Queue depth, running count and drain state are
// GaugeFuncs — they live under s.mu and are read only when a scrape asks.
type serverMetrics struct {
	reg *telemetry.Registry

	accepted    *telemetry.Counter
	coalesced   *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	shed429     *telemetry.Counter
	shed503     *telemetry.Counter
	rejected400 *telemetry.Counter
	rejected413 *telemetry.Counter

	done         *telemetry.Counter // jobs_total{outcome=...}
	partial      *telemetry.Counter
	failed       *telemetry.Counter
	checkpointed *telemetry.Counter

	panics  *telemetry.Counter
	parked  *telemetry.Counter
	resumed *telemetry.Counter

	queueWait *telemetry.Histogram
	runTime   *telemetry.Histogram
	ckWrite   *telemetry.Histogram
	ckBytes   *telemetry.Counter
}

func newServerMetrics(s *Server) *serverMetrics {
	r := telemetry.NewRegistry()
	m := &serverMetrics{reg: r}

	m.accepted = r.Counter("simd_jobs_accepted_total", "Jobs admitted into the queue.")
	m.coalesced = r.Counter("simd_jobs_coalesced_total", "Submissions attached to an in-flight job with the same key (coalesce fan-in).")
	m.cacheHits = r.Counter("simd_cache_hits_total", "Submissions answered from the shared metrics cache.")
	m.cacheMisses = r.Counter("simd_cache_misses_total", "Submissions that missed the shared metrics cache.")
	m.shed429 = r.Counter("simd_shed_total", "Submissions shed by admission control.", "code", "429")
	m.shed503 = r.Counter("simd_shed_total", "Submissions shed by admission control.", "code", "503")
	m.rejected400 = r.Counter("simd_rejected_total", "Submissions rejected as invalid or over budget.", "code", "400")
	m.rejected413 = r.Counter("simd_rejected_total", "Submissions rejected as invalid or over budget.", "code", "413")

	m.done = r.Counter("simd_jobs_total", "Terminal job outcomes.", "outcome", "done")
	m.partial = r.Counter("simd_jobs_total", "Terminal job outcomes.", "outcome", "partial")
	m.failed = r.Counter("simd_jobs_total", "Terminal job outcomes.", "outcome", "failed")
	m.checkpointed = r.Counter("simd_jobs_total", "Terminal job outcomes.", "outcome", "checkpointed")

	m.panics = r.Counter("simd_panics_total", "Worker panics contained to their job.")
	m.parked = r.Counter("simd_jobs_parked_total", "Jobs parked to the state directory by a drain.")
	m.resumed = r.Counter("simd_jobs_resumed_total", "Parked jobs re-admitted at startup.")

	m.queueWait = r.Histogram("simd_queue_wait_seconds", "Time from admission to worker start.", telemetry.DefBuckets)
	m.runTime = r.Histogram("simd_run_seconds", "Wall time of one simulation attempt.", telemetry.DefBuckets)
	m.ckWrite = r.Histogram("simd_checkpoint_write_seconds", "Latency of drain-checkpoint snapshot writes.", telemetry.DefBuckets)
	m.ckBytes = r.Counter("simd_checkpoint_bytes_total", "Bytes of drain-checkpoint snapshots written.")

	r.GaugeFunc("simd_queue_depth", "Jobs waiting for a worker.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue))
	})
	r.GaugeFunc("simd_jobs_running", "Simulations currently executing.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.running))
	})
	r.GaugeFunc("simd_draining", "1 while admission is stopped by a drain.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return 1
		}
		return 0
	})
	return m
}

// WriteMetrics writes the server's Prometheus text exposition — the same
// registry the /metrics endpoint serves.
func (s *Server) WriteMetrics(w io.Writer) error { return s.met.reg.WriteText(w) }

// countingWriter measures checkpoint snapshot sizes on their way to disk.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
