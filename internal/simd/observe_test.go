package simd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// scrapeMetrics fetches /metrics and runs it through the strict exposition
// parser — every scrape in these tests is also a format-compliance check.
func scrapeMetrics(t *testing.T, baseURL string) []telemetry.Family {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	return fams
}

// metricValue finds one sample (family, sample name, exact label block) or
// fails the test.
func metricValue(t *testing.T, fams []telemetry.Family, family, sample, labels string) float64 {
	t.Helper()
	for _, f := range fams {
		if f.Name != family {
			continue
		}
		if s, ok := f.Sample(sample, labels); ok {
			return s.Value
		}
		t.Fatalf("family %s has no sample %s{%s}", family, sample, labels)
	}
	t.Fatalf("no family %s in exposition", family)
	return 0
}

// TestMetricsEndpointCountsJobLifecycle pins the /metrics surface: the
// exposition is format-valid, and the counters advance exactly as jobs move
// through accept → run → done and the cache answers a repeat.
func TestMetricsEndpointCountsJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})
	c := &Client{BaseURL: ts.URL}

	if _, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"}); err != nil {
		t.Fatal(err)
	}
	fams := scrapeMetrics(t, ts.URL)
	checks := []struct {
		family, sample, labels string
		want                   float64
	}{
		{"simd_jobs_accepted_total", "simd_jobs_accepted_total", "", 1},
		{"simd_jobs_total", "simd_jobs_total", `outcome="done"`, 1},
		{"simd_cache_misses_total", "simd_cache_misses_total", "", 1},
		{"simd_cache_hits_total", "simd_cache_hits_total", "", 0},
		{"simd_run_seconds", "simd_run_seconds_count", "", 1},
		{"simd_queue_wait_seconds", "simd_queue_wait_seconds_count", "", 1},
		{"simd_jobs_running", "simd_jobs_running", "", 0},
		{"simd_draining", "simd_draining", "", 0},
	}
	for _, ck := range checks {
		if got := metricValue(t, fams, ck.family, ck.sample, ck.labels); got != ck.want {
			t.Errorf("%s{%s} = %g, want %g", ck.sample, ck.labels, got, ck.want)
		}
	}

	// The identical request is a cache hit: hits advance, accepted does not
	// (a cache answer never enters the queue).
	if _, err := c.Run(context.Background(), Request{Scenario: "simd_test_fast"}); err != nil {
		t.Fatal(err)
	}
	fams = scrapeMetrics(t, ts.URL)
	if got := metricValue(t, fams, "simd_cache_hits_total", "simd_cache_hits_total", ""); got != 1 {
		t.Errorf("cache_hits after repeat = %g, want 1", got)
	}
	if got := metricValue(t, fams, "simd_jobs_accepted_total", "simd_jobs_accepted_total", ""); got != 1 {
		t.Errorf("accepted after cache hit = %g, want still 1", got)
	}
}

// syncBuffer lets the test read log output that handler goroutines are
// still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestJobLifecycleSpans pins the structured log contract: one submit → run →
// done span sequence per job, every record keyed by the job's content hash.
func TestJobLifecycleSpans(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	res, err := (&Client{BaseURL: ts.URL}).Run(context.Background(), Request{Scenario: "simd_test_fast"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Key == "" {
		t.Fatal("no job key in response")
	}

	var msgs []string
	sc := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for sc.Scan() {
		var rec struct {
			Msg      string `json:"msg"`
			Key      string `json:"key"`
			Scenario string `json:"scenario"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		if rec.Key != res.Key {
			continue
		}
		if rec.Scenario != "simd_test_fast" {
			t.Errorf("span %q carries scenario %q", rec.Msg, rec.Scenario)
		}
		msgs = append(msgs, rec.Msg)
	}
	want := []string{"job submitted", "job running", "job done"}
	if strings.Join(msgs, ",") != strings.Join(want, ",") {
		t.Errorf("span sequence for %s = %v, want %v", res.Key, msgs, want)
	}
}

// TestConcurrentScrapeDuringDrain hammers every read-side endpoint —
// /v1/stats, /metrics, and the /v1/jobs/{key}/events stream — while a drain
// checkpoints a running job and parks a queued one. Run under -race this
// pins that observation never races with the state machine, and that every
// mid-drain exposition still parses.
func TestConcurrentScrapeDuringDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 4, StateDir: t.TempDir()})

	resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_slow"}, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("running job: %s", resp.Status)
	}
	var running Status
	if err := json.NewDecoder(resp.Body).Decode(&running); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Running == 1 })
	if resp := submitRaw(t, ts.URL, Request{Scenario: "simd_test_slow", Sampling: samplingSeed(7)}, false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: %s", resp.Status)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrapeErr := make(chan error, 64)
	wg.Add(2)
	//repro:spawn-ok test goroutine joined via wg before the test returns
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				return // server closing down ends the scrape loop
			}
			_, perr := telemetry.ParseText(resp.Body)
			resp.Body.Close()
			if perr != nil {
				select {
				case scrapeErr <- perr:
				default:
				}
			}
		}
	}()
	//repro:spawn-ok test goroutine joined via wg before the test returns
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				return
			}
			var st Stats
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				select {
				case scrapeErr <- err:
				default:
				}
			}
			resp.Body.Close()
		}
	}()

	// One events subscriber rides the running job through the drain.
	ectx, ecancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer ecancel()
	ereq, _ := http.NewRequestWithContext(ectx, http.MethodGet, ts.URL+"/v1/jobs/"+running.Key+"/events", nil)
	eresp, err := http.DefaultClient.Do(ereq)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	events := make(chan string, 1)
	wg.Add(1)
	//repro:spawn-ok test goroutine joined via wg before the test returns
	go func() {
		defer wg.Done()
		last := ""
		sc := bufio.NewScanner(eresp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				var st Status
				if json.Unmarshal([]byte(data), &st) == nil {
					last = st.State
				}
			}
		}
		events <- last
	}()

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	// The events stream ends itself: the handler sends the terminal status
	// once the job settles, then returns. Only time it out as a last resort.
	select {
	case last := <-events:
		if last != StateCheckpointed {
			t.Errorf("events stream ended on state %q, want %q", last, StateCheckpointed)
		}
	case <-time.After(10 * time.Second):
		t.Error("events stream did not terminate after drain")
	}
	ecancel()
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Errorf("mid-drain scrape failed: %v", err)
	default:
	}

	fams := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, fams, "simd_draining", "simd_draining", ""); got != 1 {
		t.Errorf("simd_draining after drain = %g, want 1", got)
	}
	if got := metricValue(t, fams, "simd_jobs_total", "simd_jobs_total", `outcome="checkpointed"`); got < 2 {
		t.Errorf("checkpointed outcome = %g, want both jobs (2)", got)
	}
	if got := metricValue(t, fams, "simd_jobs_parked_total", "simd_jobs_parked_total", ""); got < 1 {
		t.Errorf("parked = %g, want >= 1", got)
	}
	if got := metricValue(t, fams, "simd_checkpoint_bytes_total", "simd_checkpoint_bytes_total", ""); got <= 0 {
		t.Errorf("checkpoint bytes = %g, want > 0", got)
	}
	if got := metricValue(t, fams, "simd_checkpoint_write_seconds", "simd_checkpoint_write_seconds_count", ""); got < 1 {
		t.Errorf("checkpoint write count = %g, want >= 1", got)
	}
}
