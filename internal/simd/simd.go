// Package simd is the simulation server: a long-running HTTP/JSON service
// that accepts (machine spec | named machine, scenario, placement, sampling)
// jobs, streams progress events, and returns the canonical Metrics JSON a
// local simrun would produce — byte for byte. Its headline property is
// robustness under load and failure, composed from the repository's earlier
// fault-tolerance layers:
//
//   - Admission control. A bounded session scheduler (MaxConcurrent
//     simulations × MaxQueued waiting jobs) sheds excess load with 429 +
//     Retry-After instead of collapsing; a per-job instance budget rejects
//     over-sized sessions up front (413), so total memory is bounded by
//     MaxConcurrent × the per-job cap.
//   - Deadlines and cancellation. Every job carries a deadline plumbed into
//     the PR-6 context path; an expired or cancelled job returns structured,
//     clearly-marked partial metrics exactly like `simrun -timeout`.
//   - Request coalescing. Jobs are keyed by the sweep cache content hash
//     (resolved machine spec, scenario, placement, sampling, path).
//     Identical concurrent requests attach to the one in-flight run;
//     identical later requests are served from the shared on-disk cache in
//     one lookup. One key simulates exactly once.
//   - Graceful drain. Drain stops admission, lets in-flight runs finish up
//     to a deadline, parks queued jobs, and demand-checkpoints runs that
//     cannot finish (reusing internal/checkpoint); a restarted server
//     resumes parked jobs to byte-exact results. A worker panic poisons
//     only its job, never the server.
//   - Observability. Every counter lives on an internal/telemetry registry
//     served as Prometheus text exposition at GET /metrics; the job
//     lifecycle is structured log/slog spans keyed by the sweep hash; and
//     each running flight carries a telemetry.Progress mailbox the
//     simulation updates at instance boundaries, feeding live progress into
//     job status and the /v1/jobs/{key}/events SSE stream.
//
// Fault coverage comes from the internal/faultinject server points
// (accept, enqueue, run, cache-write, drain-checkpoint) driven by the
// package's -race soak test.
package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machspec"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Request is the wire format of one simulation job. Its fields are exactly
// the axes of a sweep point, so the job's identity key is the sweep cache
// key: a job submitted to the server and the same point run by cmd/sweep
// share cache entries and coalesce against each other.
type Request struct {
	// Scenario names a registered scenario (required).
	Scenario string `json:"scenario"`
	// Machine names an embedded machine spec ("haswell", "small",
	// "noprefetch"). File paths are not accepted over the wire — a client
	// with a spec file sends its content inline via Spec.
	Machine string `json:"machine,omitempty"`
	// Spec is an inline machine spec document (strict machspec JSON).
	// Mutually exclusive with Machine.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Placement overrides the NUMA page placement policy.
	Placement string `json:"placement,omitempty"`
	// Sampling overrides individual sampling knobs (set fields win).
	Sampling *machspec.Sampling `json:"sampling,omitempty"`
	// Reference selects the per-op reference simulation path.
	Reference bool `json:"reference,omitempty"`
	// TimeoutMs is the job deadline in milliseconds (0: the server
	// default). An expired job returns partial-marked metrics.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Job states. A job is terminal in StateDone, StatePartial, StateFailed or
// StateCheckpointed; StateCheckpointed means the job was parked by a drain
// and will resume when a server restarts over the same state directory.
const (
	StateQueued       = "queued"
	StateRunning      = "running"
	StateDone         = "done"
	StatePartial      = "partial"
	StateFailed       = "failed"
	StateCheckpointed = "checkpointed"
)

// Result sources reported to clients.
const (
	SourceSimulated = "simulated"
	SourceCache     = "cache"
	SourceCoalesced = "coalesced"
)

// Status is the externally visible snapshot of a job. The progress fields
// (Instances, InstancesTotal, Cycles, Instructions) are sampled from the
// flight's telemetry mailbox, which the simulation updates at instance
// boundaries — a polling SSE client sees them advance while the job runs.
type Status struct {
	Key       string `json:"key"`
	Scenario  string `json:"scenario"`
	Machine   string `json:"machine,omitempty"`
	State     string `json:"state"`
	Source    string `json:"source,omitempty"`
	Instances uint64 `json:"instances_done,omitempty"`
	// InstancesTotal is the job's expected instance count (0 until the run
	// publishes it).
	InstancesTotal uint64 `json:"instances_total,omitempty"`
	// Cycles and Instructions are the running simulated totals.
	Cycles       uint64 `json:"cycles,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Error        string `json:"error,omitempty"`
	// Resumed marks a job restored from a drain checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// Error is a structured admission or execution failure carrying the HTTP
// status the transport layer should speak and an optional back-off hint.
type Error struct {
	Code       int // HTTP status
	Msg        string
	RetryAfter time.Duration
}

func (e *Error) Error() string { return e.Msg }

// Config tunes a Server. The zero value is usable: 2 concurrent
// simulations, 8 queued, no cache, no state directory (drain cancels
// instead of checkpointing), no default deadline.
type Config struct {
	// MaxConcurrent bounds simultaneously running simulations (<=0: 2).
	MaxConcurrent int
	// MaxQueued bounds jobs waiting for a worker (<=0: 8). Beyond it the
	// server sheds load with 429 + Retry-After. Coalesced duplicates do
	// not consume queue slots.
	MaxQueued int
	// CacheDir is the shared metrics cache directory ("" keeps completed
	// results in memory only). The directory may be shared with cmd/sweep
	// and with other servers; writes are atomic and corrupt entries are
	// evicted on read.
	CacheDir string
	// StateDir persists drain checkpoints and parked job requests so a
	// restarted server can resume them ("" disables parking: drained jobs
	// that cannot finish are cancelled with partial results).
	StateDir string
	// DefaultTimeout is the per-job deadline applied when a request does
	// not carry one (0: none). MaxTimeout caps the request value (0: no
	// cap).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobInstances rejects jobs whose instance count (threads × iters,
	// or CG iterations) exceeds the budget (0: unlimited) — the
	// per-session resource bound that keeps one request from monopolizing
	// the fleet.
	MaxJobInstances int
	// RetryAfter is the back-off hint attached to shed responses (<=0: 1s).
	RetryAfter time.Duration
	// Logger receives structured job-lifecycle spans (nil: silent). Every
	// event carries the job's sweep-hash key, so one key's records form a
	// submit→run→outcome span across restarts.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the handler.
	// Off by default: profiling endpoints are a debugging surface, not part
	// of the public API.
	EnablePprof bool
}

// Stats is a point-in-time view of the server counters.
type Stats struct {
	Running   int    `json:"running"`
	Queued    int    `json:"queued"`
	Draining  bool   `json:"draining"`
	Accepted  uint64 `json:"accepted"`
	Coalesced uint64 `json:"coalesced"`
	CacheHits uint64 `json:"cache_hits"`
	Shed      uint64 `json:"shed"`
	Rejected  uint64 `json:"rejected"`
	Simulated uint64 `json:"simulated"`
	Partial   uint64 `json:"partial"`
	Failed    uint64 `json:"failed"`
	Panics    uint64 `json:"panics"`
	Parked    uint64 `json:"parked"`
	Resumed   uint64 `json:"resumed"`
}

// flight is one admitted job: the single execution every coalesced request
// for its key attaches to.
type flight struct {
	key     string
	req     Request
	sc      scenario.Scenario
	opts    scenario.Options // identity options; ctx/checkpoint wired at run time
	machine string           // display name
	timeout time.Duration

	checkpointable bool
	resume         *checkpoint.Snapshot // set when restored from a parked .ck
	resumed        bool
	enqueued       time.Time // admission time (queue-wait histogram)

	instances atomic.Uint64      // instance-boundary heartbeat (demand polls)
	drain     atomic.Bool        // demand-checkpoint trigger
	progress  telemetry.Progress // live run counters, written at instance boundaries

	mu      sync.Mutex
	state   string
	source  string
	metrics []byte
	err     error
	cancel  context.CancelCauseFunc // non-nil while running
	done    chan struct{}
}

func (f *flight) status() Status {
	ps := f.progress.Snapshot()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Key:            f.key,
		Scenario:       f.sc.Name,
		Machine:        f.machine,
		State:          f.state,
		Source:         f.source,
		Instances:      ps.InstancesDone,
		InstancesTotal: ps.InstancesTotal,
		Cycles:         ps.Cycles,
		Instructions:   ps.Instructions,
		Resumed:        f.resumed,
	}
	if st.Instances == 0 {
		// Before the run publishes exact progress, fall back to the demand
		// poll heartbeat (checkpointable runs only).
		st.Instances = f.instances.Load()
	}
	if f.err != nil {
		st.Error = f.err.Error()
	}
	return st
}

// terminal reports whether the flight reached a final state.
func (f *flight) terminal() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return terminalState(f.state)
}

func terminalState(s string) bool {
	return s == StateDone || s == StatePartial || s == StateFailed || s == StateCheckpointed
}

// finish moves the flight to a terminal state exactly once.
func (f *flight) finish(state string, metrics []byte, err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if terminalState(f.state) {
		return false
	}
	if state == StateDone && f.source == "" {
		f.source = SourceSimulated
	}
	f.state, f.metrics, f.err, f.cancel = state, metrics, err, nil
	close(f.done)
	return true
}

// result returns the terminal outcome (call after done is closed).
func (f *flight) result() (state string, metrics []byte, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state, f.metrics, f.err
}

// errDrainCancelled is the cancel cause of a hard drain-deadline stop.
var errDrainCancelled = errors.New("simd: server draining, drain deadline reached")

// Server is the simulation service. Create with New, serve via Handler,
// stop with Drain.
type Server struct {
	cfg   Config
	cache *sweep.Cache
	log   *slog.Logger
	met   *serverMetrics

	mu       sync.Mutex
	flights  map[string]*flight
	order    []string // terminal-flight retention ring (oldest first)
	queue    []*flight
	running  map[*flight]struct{}
	draining bool
	wg       sync.WaitGroup
}

// maxRetainedFlights bounds the in-memory record of terminal jobs; results
// beyond it live only in the on-disk cache. Keeps a long-running server's
// memory independent of its request history.
const maxRetainedFlights = 1024

// New builds a server. The cache and state directories are created as
// needed.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		flights: make(map[string]*flight),
		running: make(map[*flight]struct{}),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.met = newServerMetrics(s)
	if cfg.CacheDir != "" {
		c, err := sweep.OpenCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("simd: %w", err)
		}
		c.Notice = func(key string, err error) {
			s.log.Warn("cache entry evicted", "key", key, "err", err)
		}
		s.cache = c
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("simd: %w", err)
		}
	}
	return s, nil
}

// Stats snapshots the counters. The values are read from the same telemetry
// instruments that back /metrics, so the two views can never disagree.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	running, queued, draining := len(s.running), len(s.queue), s.draining
	s.mu.Unlock()
	m := s.met
	return Stats{
		Running:   running,
		Queued:    queued,
		Draining:  draining,
		Accepted:  m.accepted.Value(),
		Coalesced: m.coalesced.Value(),
		CacheHits: m.cacheHits.Value(),
		Shed:      m.shed429.Value() + m.shed503.Value(),
		Rejected:  m.rejected400.Value() + m.rejected413.Value(),
		Simulated: m.done.Value(),
		Partial:   m.partial.Value(),
		Failed:    m.failed.Value(),
		Panics:    m.panics.Value(),
		Parked:    m.parked.Value(),
		Resumed:   m.resumed.Value(),
	}
}

// Draining reports whether admission has been stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// resolve validates a request and builds the flight template. All
// rejections are *Error with a 4xx code.
func (s *Server) resolve(req Request) (*flight, error) {
	sc, ok := scenario.Get(req.Scenario)
	if !ok {
		return nil, &Error{Code: 400, Msg: fmt.Sprintf("unknown scenario %q", req.Scenario)}
	}
	if req.Machine != "" && len(req.Spec) > 0 {
		return nil, &Error{Code: 400, Msg: "machine and spec are mutually exclusive"}
	}
	var spec *machspec.Spec
	switch {
	case len(req.Spec) > 0:
		sp, err := machspec.Decode(bytes.NewReader(req.Spec))
		if err != nil {
			return nil, &Error{Code: 400, Msg: fmt.Sprintf("inline machine spec: %v", err)}
		}
		spec = sp
	case req.Machine != "":
		// Named specs only: resolving client-supplied file paths would turn
		// the API into a file-read oracle.
		sp, err := machspec.Named(req.Machine)
		if err != nil {
			return nil, &Error{Code: 400, Msg: fmt.Sprintf("unknown machine %q (send spec files inline via \"spec\")", req.Machine)}
		}
		spec = sp
	}
	opts := scenario.Options{
		Reference: req.Reference,
		Placement: req.Placement,
		Machine:   spec,
		Sampling:  req.Sampling,
	}
	if reason := scenario.SkipReason(sc, opts); reason != "" {
		return nil, &Error{Code: 400, Msg: fmt.Sprintf("unrunnable combination: %s", reason)}
	}
	if budget := s.cfg.MaxJobInstances; budget > 0 {
		if est := estimateInstances(sc); est > budget {
			return nil, &Error{Code: 413, Msg: fmt.Sprintf(
				"job would run %d instances, over the per-session budget of %d", est, budget)}
		}
	}
	key, err := sweep.Key(spec, sc.Name, req.Placement, req.Sampling, req.Reference)
	if err != nil {
		return nil, &Error{Code: 400, Msg: err.Error()}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	machine := ""
	if spec != nil {
		machine = spec.Name
		if machine == "" {
			machine = "custom"
		}
	}
	f := &flight{
		key:     key,
		req:     req,
		sc:      sc,
		opts:    opts,
		machine: machine,
		timeout: timeout,
		state:   StateQueued,
		done:    make(chan struct{}),
	}
	// Demand checkpointing needs the deterministic schedules and somewhere
	// to put the snapshot.
	f.checkpointable = s.cfg.StateDir != "" && scenario.CheckpointSupported(sc, opts)
	return f, nil
}

// estimateInstances is the admission-time cost model: the number of
// instance-boundary units the job will execute.
func estimateInstances(sc scenario.Scenario) int {
	if sc.HPCG != nil {
		return sc.HPCG.MaxIters
	}
	return sc.Threads * sc.Iters
}

// Submit admits a job: it returns the flight serving the key and whether
// this request coalesced onto an already-admitted execution. Shed load and
// invalid requests return *Error.
func (s *Server) Submit(req Request) (*flight, bool, error) {
	if err := faultinject.Hit(faultinject.PointServerAccept); err != nil {
		s.met.failed.Inc()
		return nil, false, &Error{Code: 500, Msg: err.Error(), RetryAfter: s.cfg.RetryAfter}
	}
	f, err := s.resolve(req)
	if err != nil {
		var se *Error
		if errors.As(err, &se) && se.Code == 413 {
			s.met.rejected413.Inc()
		} else {
			s.met.rejected400.Inc()
		}
		s.log.Warn("job rejected", "scenario", req.Scenario, "err", err)
		return nil, false, err
	}
	// Shared-cache lookup before admission: identical later requests cost
	// one cache read, no queue slot.
	if b, ok := s.cacheGet(f.key); ok {
		s.met.cacheHits.Inc()
		f.state, f.source, f.metrics = StateDone, SourceCache, b
		close(f.done)
		s.remember(f)
		s.log.Info("job cache hit", "key", f.key, "scenario", f.sc.Name)
		return f, false, nil
	}
	if s.cache != nil {
		s.met.cacheMisses.Inc()
	}
	return s.admit(f, false)
}

// admit inserts a resolved flight under the admission rules. resumeRun
// bypasses the drain check (startup resume of parked jobs).
func (s *Server) admit(f *flight, resumeRun bool) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.flights[f.key]; ok && !cur.terminal() {
		// Coalesce: attach to the in-flight execution. Duplicates are free —
		// no queue slot, no simulation.
		s.met.coalesced.Inc()
		s.log.Info("job coalesced", "key", f.key, "scenario", f.sc.Name)
		return cur, true, nil
	}
	if s.draining && !resumeRun {
		s.met.shed503.Inc()
		s.log.Warn("job shed", "key", f.key, "scenario", f.sc.Name, "code", 503)
		return nil, false, &Error{Code: 503, Msg: "server is draining", RetryAfter: s.cfg.RetryAfter}
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		s.met.shed429.Inc()
		s.log.Warn("job shed", "key", f.key, "scenario", f.sc.Name, "code", 429,
			"running", len(s.running), "queued", len(s.queue))
		return nil, false, &Error{
			Code:       429,
			Msg:        fmt.Sprintf("%d jobs running and %d queued; try again later", len(s.running), len(s.queue)),
			RetryAfter: s.cfg.RetryAfter,
		}
	}
	if err := faultinject.Hit(faultinject.PointServerEnqueue); err != nil {
		s.met.failed.Inc()
		return nil, false, &Error{Code: 500, Msg: err.Error(), RetryAfter: s.cfg.RetryAfter}
	}
	s.met.accepted.Inc()
	f.enqueued = time.Now()
	s.flights[f.key] = f
	s.queue = append(s.queue, f)
	s.log.Info("job submitted", "key", f.key, "scenario", f.sc.Name, "machine", f.machine,
		"resumed", f.resumed, "queued", len(s.queue))
	s.dispatchLocked()
	return f, false, nil
}

// remember records a terminal flight for status queries, evicting the
// oldest record beyond the retention cap.
func (s *Server) remember(f *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rememberLocked(f)
}

func (s *Server) rememberLocked(f *flight) {
	if _, ok := s.flights[f.key]; !ok {
		s.flights[f.key] = f
	}
	s.order = append(s.order, f.key)
	for len(s.order) > maxRetainedFlights {
		oldest := s.order[0]
		s.order = s.order[1:]
		if old, ok := s.flights[oldest]; ok && old.terminal() {
			delete(s.flights, oldest)
		}
	}
}

// Lookup returns the flight serving key, if the server still remembers it.
func (s *Server) Lookup(key string) (*flight, bool) {
	s.mu.Lock()
	f, ok := s.flights[key]
	s.mu.Unlock()
	if ok {
		return f, true
	}
	// Fall back to the shared cache: a result computed before a restart
	// (or by another server) is still addressable.
	if b, hit := s.cacheGet(key); hit {
		f := &flight{key: key, state: StateDone, source: SourceCache, metrics: b, done: make(chan struct{})}
		close(f.done)
		return f, true
	}
	return nil, false
}

func (s *Server) cacheGet(key string) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	b, ok, err := s.cache.Get(key)
	if err != nil {
		s.log.Warn("cache read failed", "key", key, "err", err)
		return nil, false
	}
	return b, ok
}

// dispatchLocked starts queued flights while worker slots are free. Caller
// holds s.mu. While draining no new flight starts — the drain parks them.
func (s *Server) dispatchLocked() {
	for !s.draining && len(s.queue) > 0 && len(s.running) < s.cfg.MaxConcurrent {
		f := s.queue[0]
		s.queue = s.queue[1:]
		s.running[f] = struct{}{}
		s.wg.Add(1)
		go s.runFlight(f)
	}
}

// runFlight executes one admitted job. Any panic below the scenario stack
// is contained here: it fails this flight and releases its slot, leaving
// the server — and every other session — untouched.
func (s *Server) runFlight(f *flight) {
	defer s.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Inc()
			s.met.failed.Inc()
			f.finish(StateFailed, nil, fmt.Errorf("simd: job panicked: %v", rec))
			s.log.Error("job panicked", "key", f.key, "scenario", f.sc.Name, "panic", fmt.Sprint(rec))
		}
		s.mu.Lock()
		delete(s.running, f)
		if f.terminal() {
			s.rememberLocked(f)
		}
		s.dispatchLocked()
		s.mu.Unlock()
	}()

	if !f.enqueued.IsZero() {
		s.met.queueWait.Observe(time.Since(f.enqueued).Seconds())
	}
	if err := faultinject.Hit(faultinject.PointServerRun); err != nil {
		s.met.failed.Inc()
		f.finish(StateFailed, nil, err)
		return
	}

	base := context.Background()
	var timeoutCancel context.CancelFunc
	if f.timeout > 0 {
		base, timeoutCancel = context.WithTimeout(base, f.timeout)
		defer timeoutCancel()
	}
	ctx, cancel := context.WithCancelCause(base)
	defer cancel(nil)
	f.mu.Lock()
	f.state, f.cancel = StateRunning, cancel
	f.mu.Unlock()
	s.log.Info("job running", "key", f.key, "scenario", f.sc.Name, "resumed", f.resumed)

	opts := f.opts
	opts.Context = ctx
	opts.Progress = &f.progress
	if f.checkpointable {
		opts.CheckpointDemand = func() bool {
			f.instances.Add(1)
			return f.drain.Load()
		}
		opts.CheckpointSink = func(snap *checkpoint.Snapshot) error {
			if err := faultinject.Hit(faultinject.PointServerDrain); err != nil {
				return err
			}
			ckStart := time.Now()
			cw := &countingWriter{}
			err := atomicio.WriteFile(s.snapPath(f.key), func(w io.Writer) error {
				cw.w = w
				return checkpoint.Write(cw, snap)
			})
			if err == nil {
				s.met.ckBytes.Add(uint64(cw.n))
				s.met.ckWrite.Observe(time.Since(ckStart).Seconds())
			}
			return err
		}
		opts.Resume = f.resume
	}

	runStart := time.Now()
	m, err := scenario.Run(f.sc, opts)
	elapsed := time.Since(runStart)
	s.met.runTime.Observe(elapsed.Seconds())
	switch {
	case err == nil:
		b, jerr := m.JSON()
		if jerr != nil {
			s.met.failed.Inc()
			f.finish(StateFailed, nil, jerr)
			return
		}
		s.cachePut(f.key, b)
		s.met.done.Inc()
		f.finish(StateDone, b, nil)
		s.clearParked(f.key)
		s.log.Info("job done", "key", f.key, "scenario", f.sc.Name,
			"elapsed", elapsed, "instances", f.progress.Snapshot().InstancesDone)

	case errors.Is(err, core.ErrCheckpointDemanded):
		// Drain checkpoint taken at an instance boundary; park the request
		// so a restarted server resumes it.
		if perr := s.park(f); perr != nil {
			s.met.failed.Inc()
			f.finish(StateFailed, nil, fmt.Errorf("simd: parking drained job: %w", perr))
			return
		}
		s.met.parked.Inc()
		s.met.checkpointed.Inc()
		f.finish(StateCheckpointed, nil, err)
		s.log.Info("job checkpointed", "key", f.key, "scenario", f.sc.Name,
			"instances", f.progress.Snapshot().InstancesDone)

	case errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), errDrainCancelled):
		// Hard drain stop of a non-checkpointable run: park the request for
		// a from-scratch re-run after restart (when a state dir exists).
		if s.cfg.StateDir != "" {
			if perr := s.park(f); perr == nil {
				s.met.parked.Inc()
				s.met.checkpointed.Inc()
				f.finish(StateCheckpointed, nil, err)
				s.log.Info("job parked", "key", f.key, "scenario", f.sc.Name, "reason", "drain deadline")
				return
			}
		}
		s.met.partial.Inc()
		f.finish(StatePartial, partialBytes(m), err)
		s.log.Warn("job partial", "key", f.key, "scenario", f.sc.Name, "err", err)

	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The job's own deadline (or a client cancel): partial metrics,
		// clearly marked, exactly like simrun -timeout.
		s.met.partial.Inc()
		f.finish(StatePartial, partialBytes(m), err)
		s.log.Warn("job partial", "key", f.key, "scenario", f.sc.Name, "err", err)

	default:
		s.met.failed.Inc()
		f.finish(StateFailed, nil, err)
		s.log.Error("job failed", "key", f.key, "scenario", f.sc.Name, "err", err)
	}
}

// partialBytes serializes partial-marked metrics (nil when the run died
// before producing any).
func partialBytes(m *scenario.Metrics) []byte {
	if m == nil {
		return nil
	}
	b, err := m.JSON()
	if err != nil {
		return nil
	}
	return b
}

func (s *Server) cachePut(key string, b []byte) {
	if s.cache == nil {
		return
	}
	if err := faultinject.Hit(faultinject.PointServerCacheWrite); err != nil {
		// The result is good; only the next lookup loses its hit.
		s.log.Warn("cache write failed", "key", key, "err", err)
		return
	}
	if err := s.cache.Put(key, b); err != nil {
		s.log.Warn("cache write failed", "key", key, "err", err)
	}
}

// State-directory layout: one <key>.job request document per parked job,
// plus <key>.ck when a drain checkpoint was taken. Both written atomically.
func (s *Server) jobPath(key string) string  { return filepath.Join(s.cfg.StateDir, key+".job") }
func (s *Server) snapPath(key string) string { return filepath.Join(s.cfg.StateDir, key+".ck") }

// park persists a job's request so a restarted server re-admits it. The
// snapshot (if any) was already written by the checkpoint sink.
func (s *Server) park(f *flight) error {
	if s.cfg.StateDir == "" {
		return fmt.Errorf("no state directory")
	}
	b, err := json.Marshal(f.req)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(s.jobPath(f.key), func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	})
}

// clearParked removes a completed job's parked state, if any.
func (s *Server) clearParked(key string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(s.jobPath(key))
	os.Remove(s.snapPath(key))
}

// Resume re-admits every job parked in the state directory: jobs with a
// drain checkpoint continue from their instance boundary (byte-exact with
// an uninterrupted run), jobs without one re-run from scratch, and jobs
// whose key already has a cache entry are completed by one lookup. Call it
// once, after New and before serving traffic. It returns the number of
// jobs re-admitted.
func (s *Server) Resume() (int, error) {
	if s.cfg.StateDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return 0, fmt.Errorf("simd: %w", err)
	}
	resumed := 0
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".job" {
			continue
		}
		key := name[:len(name)-len(".job")]
		b, err := os.ReadFile(s.jobPath(key))
		if err != nil {
			s.log.Warn("resume failed", "key", key, "err", err)
			continue
		}
		var req Request
		if err := json.Unmarshal(b, &req); err != nil {
			// A torn .job (written without atomicio by an older build, or
			// tampered with) cannot be resumed; drop it with a notice
			// rather than refusing to start.
			s.log.Warn("resume dropped corrupt job file", "key", key, "err", err)
			s.clearParked(key)
			continue
		}
		if b, ok := s.cacheGet(key); ok {
			// Someone (another server, a sweep) finished this key already.
			f := &flight{key: key, state: StateDone, source: SourceCache, metrics: b, done: make(chan struct{})}
			close(f.done)
			s.remember(f)
			s.clearParked(key)
			continue
		}
		f, rerr := s.resolve(req)
		if rerr != nil {
			s.log.Warn("resume failed", "key", key, "err", rerr)
			s.clearParked(key)
			continue
		}
		if snap, ok := s.readSnapshot(key); ok && f.checkpointable {
			f.resume = snap
			f.resumed = true
		}
		if _, _, err := s.admit(f, true); err != nil {
			s.log.Warn("resume failed", "key", key, "err", err)
			continue
		}
		s.met.resumed.Inc()
		s.log.Info("job resumed", "key", key, "scenario", req.Scenario, "checkpoint", f.resumed)
		resumed++
	}
	return resumed, nil
}

// readSnapshot loads a drain checkpoint; a corrupt snapshot is dropped (the
// job re-runs from scratch — slower, never wrong).
func (s *Server) readSnapshot(key string) (*checkpoint.Snapshot, bool) {
	fh, err := os.Open(s.snapPath(key))
	if err != nil {
		return nil, false
	}
	defer fh.Close()
	snap, err := checkpoint.Read(fh)
	if err != nil {
		s.log.Warn("resume dropped corrupt checkpoint, re-running from scratch", "key", key, "err", err)
		os.Remove(s.snapPath(key))
		return nil, false
	}
	return snap, true
}

// Drain gracefully stops the server: admission stops immediately (new jobs
// get 503 + Retry-After), queued jobs are parked, and in-flight jobs run up
// to ctx's deadline — checkpointable runs stop at their next instance
// boundary with a snapshot, the rest either finish or are hard-cancelled at
// the deadline with partial results. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	queued := s.queue
	s.queue = nil
	running := make([]*flight, 0, len(s.running))
	for f := range s.running {
		running = append(running, f)
	}
	s.mu.Unlock()
	if !alreadyDraining {
		s.log.Info("drain started", "running", len(running), "queued", len(queued))
	}

	for _, f := range queued {
		// Queued jobs never started; park the request (or cancel when there
		// is nowhere to park it).
		if s.cfg.StateDir != "" {
			if err := s.park(f); err == nil {
				s.met.parked.Inc()
				s.met.checkpointed.Inc()
				f.finish(StateCheckpointed, nil, errors.New("simd: parked by drain before starting"))
				s.remember(f)
				s.log.Info("job parked", "key", f.key, "scenario", f.sc.Name, "reason", "queued at drain")
				continue
			}
		}
		s.met.partial.Inc()
		f.finish(StatePartial, nil, errDrainCancelled)
		s.remember(f)
		s.log.Warn("job cancelled by drain", "key", f.key, "scenario", f.sc.Name)
	}
	for _, f := range running {
		// Checkpointable runs observe this at their next instance boundary.
		f.drain.Store(true)
	}

	done := make(chan struct{})
	//repro:spawn-ok waits on the worker WaitGroup and closes a channel; no simulation code runs here
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline: hard-cancel whatever is still running; those jobs
	// surface partial results (and are parked for re-run when possible).
	for _, f := range running {
		f.mu.Lock()
		cancel := f.cancel
		f.mu.Unlock()
		if cancel != nil {
			cancel(errDrainCancelled)
		}
	}
	<-done
	return nil
}
